// Property sweeps: invariants of the simulation substrate over many random
// design points and all 17 workload profiles — the contracts the learning
// stack depends on (labels finite/positive/bounded, decompositions exact,
// hierarchy containment).
#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "sim/power_model.hpp"

namespace sim = metadse::sim;
namespace data = metadse::data;
namespace arch = metadse::arch;
namespace wl = metadse::workload;
namespace mt = metadse::tensor;

namespace {
const wl::SpecSuite& suite() {
  static wl::SpecSuite s;
  return s;
}
}  // namespace

class SimProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimProperties, AnalyticalInvariantsHoldSpaceWide) {
  const auto& space = arch::DesignSpace::table1();
  sim::CpuModel cpu;
  mt::Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const auto cfg = arch::to_cpu_config(space, space.random_config(rng));
    for (const auto& w : suite().workloads()) {
      const auto st = cpu.simulate(cfg, w.base());
      ASSERT_TRUE(std::isfinite(st.ipc));
      EXPECT_GT(st.ipc, 0.0);
      EXPECT_LE(st.ipc, cfg.width);
      // Exact CPI decomposition.
      EXPECT_NEAR(1.0 / st.ipc,
                  st.base_cpi + st.branch_cpi + st.memory_cpi + st.icache_cpi,
                  1e-9);
      // Hierarchy containment and non-negativity.
      EXPECT_GE(st.branch_mpki, 0.0);
      EXPECT_GE(st.l1d_mpki, 0.0);
      EXPECT_LE(st.l2_mpki, st.l1d_mpki + 1e-9);
      EXPECT_GE(st.effective_window, 1.0);
      EXPECT_LE(st.effective_window, cfg.rob_size + 1e-9);
    }
  }
}

TEST_P(SimProperties, PowerInvariantsHoldSpaceWide) {
  const auto& space = arch::DesignSpace::table1();
  sim::CpuModel cpu;
  sim::PowerModel pm;
  mt::Rng rng(GetParam() + 100);
  for (int i = 0; i < 40; ++i) {
    const auto cfg = arch::to_cpu_config(space, space.random_config(rng));
    const auto st = cpu.simulate(cfg, suite().workloads()[i % 17].base());
    const auto p = pm.evaluate(cfg, st);
    ASSERT_TRUE(std::isfinite(p.total));
    EXPECT_GT(p.core_dynamic, 0.0);
    EXPECT_GT(p.frontend_dynamic, 0.0);
    EXPECT_GT(p.cache_dynamic, 0.0);
    EXPECT_GT(p.leakage, 0.0);
    EXPECT_NEAR(p.total,
                p.core_dynamic + p.frontend_dynamic + p.cache_dynamic +
                    p.leakage,
                1e-9);
    EXPECT_GT(pm.area(cfg), 0.0);
    // Sane absolute scale for the Table I space (model units).
    EXPECT_LT(p.total, 100.0);
  }
}

TEST_P(SimProperties, DatasetLabelsBoundedAcrossSuite) {
  data::DatasetGenerator gen(arch::DesignSpace::table1());
  mt::Rng rng(GetParam() + 200);
  for (const auto& w : suite().workloads()) {
    const auto ds = gen.generate(w, 8, rng);
    for (const auto& s : ds.samples) {
      EXPECT_GT(s.ipc, 0.0F);
      EXPECT_LT(s.ipc, 12.0F);
      EXPECT_GT(s.power, 0.5F);
      EXPECT_LT(s.power, 50.0F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimProperties,
                         ::testing::Values(1, 2, 3, 4));

TEST(SimProperties, FrequencySweepTradeoff) {
  // Along the frequency axis: power strictly increases; IPC (per-cycle)
  // never increases (fixed-time memory costs more cycles).
  const auto& space = arch::DesignSpace::table1();
  sim::CpuModel cpu;
  sim::PowerModel pm;
  mt::Rng rng(9);
  const size_t f_idx = space.param_index("core_freq_ghz");
  for (int trial = 0; trial < 10; ++trial) {
    auto c = space.random_config(rng);
    double prev_power = -1.0;
    double prev_ipc = 1e9;
    for (size_t fi = 0; fi < space.spec(f_idx).cardinality(); ++fi) {
      c[f_idx] = fi;
      const auto cfg = arch::to_cpu_config(space, c);
      const auto st = cpu.simulate(cfg, suite().by_name("605.mcf_s").base());
      const double power = pm.evaluate(cfg, st).total;
      EXPECT_GT(power, prev_power);
      EXPECT_LE(st.ipc, prev_ipc + 1e-12);
      prev_power = power;
      prev_ipc = st.ipc;
    }
  }
}
