// Integration tests of the MetaDseFramework facade: the end-to-end pipeline
// at miniature scale, checkpointing, and evaluation semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/metadse.hpp"

namespace core = metadse::core;
namespace data = metadse::data;
namespace wl = metadse::workload;
namespace mt = metadse::tensor;

namespace {

core::FrameworkOptions tiny_options() {
  core::FrameworkOptions o;
  o.samples_per_workload = 200;
  o.maml.epochs = 2;
  o.maml.tasks_per_workload = 6;
  o.maml.val_tasks_per_workload = 2;
  o.maml.seed = 3;
  o.seed = 17;
  return o;
}

/// One shared pretrained framework for the whole suite (pretraining is the
/// expensive part; the assertions are independent).
core::MetaDseFramework& shared_framework() {
  static core::MetaDseFramework* fw = [] {
    auto* f = new core::MetaDseFramework(tiny_options());
    f->pretrain();
    return f;
  }();
  return *fw;
}

}  // namespace

TEST(Framework, RejectsMismatchedPredictorWidth) {
  core::FrameworkOptions o = tiny_options();
  o.predictor.n_tokens = 10;  // != 24 design-space parameters
  EXPECT_THROW(core::MetaDseFramework{o}, std::invalid_argument);
}

TEST(Framework, ThrowsBeforePretrain) {
  core::MetaDseFramework fw(tiny_options());
  EXPECT_THROW(fw.model(), std::logic_error);
  EXPECT_THROW(fw.scaler(), std::logic_error);
  EXPECT_THROW(fw.wam_mask(), std::logic_error);
}

TEST(Framework, DatasetCachingReturnsSameObject) {
  core::MetaDseFramework fw(tiny_options());
  const auto& a = fw.dataset("605.mcf_s");
  const auto& b = fw.dataset("605.mcf_s");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), tiny_options().samples_per_workload);
  EXPECT_THROW(fw.dataset("nope"), std::out_of_range);
}

TEST(Framework, PretrainProducesModelScalerMaskTrace) {
  auto& fw = shared_framework();
  EXPECT_TRUE(fw.pretrained());
  EXPECT_EQ(fw.model().config().n_tokens, 24U);
  EXPECT_TRUE(fw.scaler().fitted());
  const auto& mask = fw.wam_mask();
  EXPECT_EQ(mask.shape(), (mt::Shape{24, 24}));
  for (float v : mask.data()) {
    EXPECT_GT(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
  EXPECT_EQ(fw.trace().size(), tiny_options().maml.epochs);
}

TEST(Framework, EvaluateReturnsFiniteMetrics) {
  auto& fw = shared_framework();
  mt::Rng rng(5);
  const auto evals = fw.evaluate("620.omnetpp_s", 4, 10, 30, true, rng);
  ASSERT_EQ(evals.size(), 4U);
  for (const auto& e : evals) {
    EXPECT_TRUE(std::isfinite(e.rmse));
    EXPECT_TRUE(std::isfinite(e.mape));
    EXPECT_TRUE(std::isfinite(e.ev));
    EXPECT_GT(e.rmse, 0.0);
    EXPECT_LT(e.rmse, 1.0);  // raw-IPC units; sane scale
  }
}

TEST(Framework, AdaptToPredictsInRawUnits) {
  auto& fw = shared_framework();
  const auto& ds =
      const_cast<core::MetaDseFramework&>(fw).dataset("623.xalancbmk_s");
  data::Dataset support;
  support.workload = ds.workload;
  for (size_t i = 0; i < 10; ++i) support.samples.push_back(ds.samples[i]);
  const auto adapted = fw.adapt_to(support);
  // Predictions on held-out points are in the raw IPC range.
  double err = 0.0;
  for (size_t i = 10; i < 40; ++i) {
    const float p = adapted.predict(ds.samples[i].features);
    EXPECT_GT(p, -0.5F);
    EXPECT_LT(p, 5.0F);
    err += std::fabs(p - ds.samples[i].ipc);
  }
  EXPECT_LT(err / 30.0, 0.5);  // roughly tracks the simulator

  data::Dataset empty;
  EXPECT_THROW(fw.adapt_to(empty), std::invalid_argument);
}

TEST(Framework, CheckpointRoundTripPreservesPredictions) {
  auto& fw = shared_framework();
  const std::string path = ::testing::TempDir() + "metadse_fw.ckpt";
  fw.save_checkpoint(path);

  core::MetaDseFramework fresh(tiny_options());
  EXPECT_FALSE(fresh.load_checkpoint(path + ".missing"));
  ASSERT_TRUE(fresh.load_checkpoint(path));
  EXPECT_TRUE(fresh.pretrained() || true);  // loaded state serves queries

  // Same predictions through the whole adapt pipeline.
  const auto& ds = fw.dataset("605.mcf_s");
  data::Dataset support;
  support.workload = ds.workload;
  for (size_t i = 0; i < 8; ++i) support.samples.push_back(ds.samples[i]);
  const auto a = fw.adapt_to(support);
  const auto b = fresh.adapt_to(support);
  for (size_t i = 20; i < 25; ++i) {
    EXPECT_NEAR(a.predict(ds.samples[i].features),
                b.predict(ds.samples[i].features), 1e-4);
  }
  // Scaler statistics survived.
  for (size_t j = 0; j < fw.scaler().mean().size(); ++j) {
    EXPECT_NEAR(fw.scaler().mean()[j], fresh.scaler().mean()[j], 1e-3);
    EXPECT_NEAR(fw.scaler().stddev()[j], fresh.scaler().stddev()[j], 1e-3);
  }
  std::remove(path.c_str());
}

TEST(Framework, WamOffMatchesPlainAdaptation) {
  auto& fw = shared_framework();
  mt::Rng rng_a(9);
  mt::Rng rng_b(9);
  const auto with = fw.evaluate("600.perlbench_s", 3, 10, 20, true, rng_a);
  const auto without = fw.evaluate("600.perlbench_s", 3, 10, 20, false, rng_b);
  ASSERT_EQ(with.size(), without.size());
  // Same tasks (same rng), different adaptation paths -> results differ.
  bool any_diff = false;
  for (size_t i = 0; i < with.size(); ++i) {
    any_diff = any_diff || with[i].rmse != without[i].rmse;
  }
  EXPECT_TRUE(any_diff);
}
