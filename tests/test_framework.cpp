// Integration tests of the MetaDseFramework facade: the end-to-end pipeline
// at miniature scale, checkpointing, evaluation semantics, and the guarded /
// journaled DSE loop (run_dse).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>

#include "core/metadse.hpp"
#include "explore/guarded.hpp"
#include "explore/run_report.hpp"
#include "sim/fault_injection.hpp"

namespace core = metadse::core;
namespace data = metadse::data;
namespace wl = metadse::workload;
namespace mt = metadse::tensor;

namespace {

core::FrameworkOptions tiny_options() {
  core::FrameworkOptions o;
  o.samples_per_workload = 200;
  o.maml.epochs = 2;
  o.maml.tasks_per_workload = 6;
  o.maml.val_tasks_per_workload = 2;
  o.maml.seed = 3;
  o.seed = 17;
  return o;
}

/// One shared pretrained framework for the whole suite (pretraining is the
/// expensive part; the assertions are independent).
core::MetaDseFramework& shared_framework() {
  static core::MetaDseFramework* fw = [] {
    auto* f = new core::MetaDseFramework(tiny_options());
    f->pretrain();
    return f;
  }();
  return *fw;
}

}  // namespace

TEST(Framework, RejectsMismatchedPredictorWidth) {
  core::FrameworkOptions o = tiny_options();
  o.predictor.n_tokens = 10;  // != 24 design-space parameters
  EXPECT_THROW(core::MetaDseFramework{o}, std::invalid_argument);
}

TEST(Framework, ThrowsBeforePretrain) {
  core::MetaDseFramework fw(tiny_options());
  EXPECT_THROW(fw.model(), std::logic_error);
  EXPECT_THROW(fw.scaler(), std::logic_error);
  EXPECT_THROW(fw.wam_mask(), std::logic_error);
}

TEST(Framework, DatasetCachingReturnsSameObject) {
  core::MetaDseFramework fw(tiny_options());
  const auto& a = fw.dataset("605.mcf_s");
  const auto& b = fw.dataset("605.mcf_s");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), tiny_options().samples_per_workload);
  EXPECT_THROW(fw.dataset("nope"), std::out_of_range);
}

TEST(Framework, PretrainProducesModelScalerMaskTrace) {
  auto& fw = shared_framework();
  EXPECT_TRUE(fw.pretrained());
  EXPECT_EQ(fw.model().config().n_tokens, 24U);
  EXPECT_TRUE(fw.scaler().fitted());
  const auto& mask = fw.wam_mask();
  EXPECT_EQ(mask.shape(), (mt::Shape{24, 24}));
  for (float v : mask.data()) {
    EXPECT_GT(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
  EXPECT_EQ(fw.trace().size(), tiny_options().maml.epochs);
}

TEST(Framework, EvaluateReturnsFiniteMetrics) {
  auto& fw = shared_framework();
  mt::Rng rng(5);
  const auto evals = fw.evaluate("620.omnetpp_s", 4, 10, 30, true, rng);
  ASSERT_EQ(evals.size(), 4U);
  for (const auto& e : evals) {
    EXPECT_TRUE(std::isfinite(e.rmse));
    EXPECT_TRUE(std::isfinite(e.mape));
    EXPECT_TRUE(std::isfinite(e.ev));
    EXPECT_GT(e.rmse, 0.0);
    EXPECT_LT(e.rmse, 1.0);  // raw-IPC units; sane scale
  }
}

TEST(Framework, AdaptToPredictsInRawUnits) {
  auto& fw = shared_framework();
  const auto& ds =
      const_cast<core::MetaDseFramework&>(fw).dataset("623.xalancbmk_s");
  data::Dataset support;
  support.workload = ds.workload;
  for (size_t i = 0; i < 10; ++i) support.samples.push_back(ds.samples[i]);
  const auto adapted = fw.adapt_to(support);
  // Predictions on held-out points are in the raw IPC range.
  double err = 0.0;
  for (size_t i = 10; i < 40; ++i) {
    const float p = adapted.predict(ds.samples[i].features);
    EXPECT_GT(p, -0.5F);
    EXPECT_LT(p, 5.0F);
    err += std::fabs(p - ds.samples[i].ipc);
  }
  EXPECT_LT(err / 30.0, 0.5);  // roughly tracks the simulator

  data::Dataset empty;
  EXPECT_THROW(fw.adapt_to(empty), std::invalid_argument);
}

TEST(Framework, CheckpointRoundTripPreservesPredictions) {
  auto& fw = shared_framework();
  const std::string path = ::testing::TempDir() + "metadse_fw.ckpt";
  fw.save_checkpoint(path);

  core::MetaDseFramework fresh(tiny_options());
  EXPECT_FALSE(fresh.load_checkpoint(path + ".missing"));
  ASSERT_TRUE(fresh.load_checkpoint(path));
  EXPECT_TRUE(fresh.pretrained() || true);  // loaded state serves queries

  // Same predictions through the whole adapt pipeline.
  const auto& ds = fw.dataset("605.mcf_s");
  data::Dataset support;
  support.workload = ds.workload;
  for (size_t i = 0; i < 8; ++i) support.samples.push_back(ds.samples[i]);
  const auto a = fw.adapt_to(support);
  const auto b = fresh.adapt_to(support);
  for (size_t i = 20; i < 25; ++i) {
    EXPECT_NEAR(a.predict(ds.samples[i].features),
                b.predict(ds.samples[i].features), 1e-4);
  }
  // Scaler statistics survived.
  for (size_t j = 0; j < fw.scaler().mean().size(); ++j) {
    EXPECT_NEAR(fw.scaler().mean()[j], fresh.scaler().mean()[j], 1e-3);
    EXPECT_NEAR(fw.scaler().stddev()[j], fresh.scaler().stddev()[j], 1e-3);
  }
  std::remove(path.c_str());
}

TEST(Framework, WamOffMatchesPlainAdaptation) {
  auto& fw = shared_framework();
  mt::Rng rng_a(9);
  mt::Rng rng_b(9);
  const auto with = fw.evaluate("600.perlbench_s", 3, 10, 20, true, rng_a);
  const auto without = fw.evaluate("600.perlbench_s", 3, 10, 20, false, rng_b);
  ASSERT_EQ(with.size(), without.size());
  // Same tasks (same rng), different adaptation paths -> results differ.
  bool any_diff = false;
  for (size_t i = 0; i < with.size(); ++i) {
    any_diff = any_diff || with[i].rmse != without[i].rmse;
  }
  EXPECT_TRUE(any_diff);
}

// -- run_dse: guarded, journaled exploration ----------------------------------

namespace {

namespace ex = metadse::explore;

data::Dataset small_support(core::MetaDseFramework& fw,
                            const std::string& workload, size_t k) {
  const auto& ds = fw.dataset(workload);
  data::Dataset support;
  support.workload = workload;
  for (size_t i = 0; i < k; ++i) support.samples.push_back(ds.samples[i]);
  return support;
}

core::MetaDseFramework::DseOptions small_dse(const std::string& journal = "") {
  core::MetaDseFramework::DseOptions dse;
  dse.explorer = {.initial_samples = 8, .iterations = 16,
                  .mutations_per_step = 2, .seed = 13, .eval_batch = 4};
  // A tiny meta-trained surrogate can legitimately predict slightly below 0;
  // widen the band so the clean-run tests stay clean.
  dse.guard.ipc_min = -128.0;
  dse.journal_path = journal;
  return dse;
}

void expect_same_front(const ex::ParetoArchive& a, const ex::ParetoArchive& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].config, b.entries()[i].config);
    EXPECT_EQ(std::bit_cast<uint64_t>(a.entries()[i].objective.ipc),
              std::bit_cast<uint64_t>(b.entries()[i].objective.ipc));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.entries()[i].objective.power),
              std::bit_cast<uint64_t>(b.entries()[i].objective.power));
  }
}

}  // namespace

TEST(RunDse, CleanRunEvaluatesEveryPointOnTheSurrogate) {
  auto& fw = shared_framework();
  const auto support = small_support(fw, "605.mcf_s", 10);
  const auto predictor = fw.adapt_to(support);
  const auto front = predictor.model
                         ? fw.run_dse(predictor, support, "605.mcf_s",
                                      small_dse())
                         : ex::ParetoArchive{};
  const auto& rep = fw.run_report();
  EXPECT_GT(front.size(), 0U);
  EXPECT_EQ(rep.evaluated, 24U);  // initial_samples + iterations
  EXPECT_EQ(rep.dropped(), 0U);
  EXPECT_FALSE(rep.degraded());
  EXPECT_EQ(rep.final_level, ex::DegradeLevel::kSurrogate);
}

TEST(RunDse, JournaledRunResumesBitwiseIdentical) {
  auto& fw = shared_framework();
  const auto support = small_support(fw, "605.mcf_s", 10);
  const auto predictor = fw.adapt_to(support);
  const std::string path = ::testing::TempDir() + "mdse_rundse.journal";
  std::remove(path.c_str());
  std::remove((path + ".snapshot").c_str());

  const auto reference =
      fw.run_dse(predictor, support, "605.mcf_s", small_dse(path));
  // Force the record-by-record replay path (no snapshot fast-forward).
  std::remove((path + ".snapshot").c_str());

  auto dse = small_dse(path);
  dse.resume = true;
  const auto resumed = fw.run_dse(predictor, support, "605.mcf_s", dse);
  const auto& rep = fw.run_report();
  expect_same_front(reference, resumed);
  EXPECT_TRUE(rep.resumed);
  EXPECT_EQ(rep.replayed, 24U);
  EXPECT_EQ(rep.evaluated, 0U) << "a completed journal answers every point";
  std::remove(path.c_str());
  std::remove((path + ".snapshot").c_str());
}

TEST(RunDse, RefusesToClobberAnExistingJournal) {
  auto& fw = shared_framework();
  const auto support = small_support(fw, "605.mcf_s", 10);
  const auto predictor = fw.adapt_to(support);
  const std::string path = ::testing::TempDir() + "mdse_rundse_clobber.journal";
  std::remove(path.c_str());
  std::remove((path + ".snapshot").c_str());
  fw.run_dse(predictor, support, "605.mcf_s", small_dse(path));
  // resume defaults to false: re-running onto live records must throw.
  EXPECT_THROW(fw.run_dse(predictor, support, "605.mcf_s", small_dse(path)),
               std::runtime_error);
  std::remove(path.c_str());
  std::remove((path + ".snapshot").c_str());
}

TEST(RunDse, FaultySimulatorDegradesDownTheLadder) {
  auto& fw = shared_framework();
  const auto support = small_support(fw, "605.mcf_s", 10);
  const auto predictor = fw.adapt_to(support);
  // Every simulator call fails persistently: the surrogate rung (whose power
  // leg needs the simulator) collapses, the breaker opens, and the forest
  // baseline — whose generator is never fault-armed — answers the rest.
  metadse::sim::FaultPlan plan;
  plan.fail_rate = 1.0;
  plan.persistent_fraction = 1.0;
  fw.set_fault_plan(plan);
  auto dse = small_dse();
  dse.guard.max_retries = 1;
  dse.guard.breaker_threshold = 2;
  const auto front = fw.run_dse(predictor, support, "605.mcf_s", dse);
  fw.set_fault_plan({});  // disarm for later tests
  const auto& rep = fw.run_report();
  EXPECT_TRUE(rep.degraded());
  EXPECT_EQ(rep.final_level, ex::DegradeLevel::kBaseline);
  EXPECT_GE(rep.breaker_trips, 1U);
  EXPECT_GT(rep.baseline_evals, 0U);
  EXPECT_GT(front.size(), 0U) << "the baseline rung must keep the run alive";
  // Accounting invariant: every point lands in exactly one bucket.
  EXPECT_EQ(rep.evaluated + rep.baseline_evals + rep.dropped() + rep.replayed,
            24U);
}

TEST(RunDse, FailFastPolicyAbortsButJournalPreservesProgress) {
  auto& fw = shared_framework();
  const auto support = small_support(fw, "605.mcf_s", 10);
  const auto predictor = fw.adapt_to(support);
  const std::string path = ::testing::TempDir() + "mdse_rundse_abort.journal";
  std::remove(path.c_str());
  std::remove((path + ".snapshot").c_str());

  const auto reference =
      fw.run_dse(predictor, support, "605.mcf_s", small_dse());

  metadse::sim::FaultPlan plan;
  plan.fail_rate = 1.0;
  plan.persistent_fraction = 1.0;
  fw.set_fault_plan(plan);
  auto dse = small_dse(path);
  dse.guard.max_retries = 0;
  dse.guard.breaker_threshold = 2;
  dse.guard.policy = ex::DegradePolicy::kFailFast;
  EXPECT_THROW(fw.run_dse(predictor, support, "605.mcf_s", dse),
               ex::ExplorationAborted);

  // Fix the farm, resume: the run completes to the clean-run front.
  fw.set_fault_plan({});
  auto resume = small_dse(path);
  resume.resume = true;
  const auto resumed = fw.run_dse(predictor, support, "605.mcf_s", resume);
  expect_same_front(reference, resumed);
  std::remove(path.c_str());
  std::remove((path + ".snapshot").c_str());
}
