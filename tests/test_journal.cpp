// Durability contract of the exploration journal: a run interrupted at any
// record boundary resumes to a final archive bitwise-identical to an
// uninterrupted run; any corruption of the journal or snapshot costs at most
// the damaged suffix — never a crash, an over-allocation, or a bad record in
// the archive (the style of test_serialize_corruption, one layer up).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "data/dataset.hpp"
#include "explore/explorer.hpp"
#include "explore/journal.hpp"
#include "explore/run_report.hpp"
#include "nn/serialize.hpp"

namespace ex = metadse::explore;
namespace arch = metadse::arch;
namespace nn = metadse::nn;

namespace {

constexpr size_t kHeaderBytes = 68;  // magic, version, identity, base, crc
constexpr size_t kRecordBytes = 44;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void remove_run_files(const std::string& journal) {
  std::remove(journal.c_str());
  std::remove((journal + ".snapshot").c_str());
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

ex::RunJournal::Identity identity(uint64_t seed = 7) {
  return {.seed = seed,
          .initial_samples = 8,
          .iterations = 16,
          .mutations_per_step = 2,
          .eval_batch = 1,
          .num_params = 24};
}

ex::JournalRecord record(uint32_t i) {
  return {.gen = i,
          .flags = 0,
          .config_id = 1000 + i,
          .ipc = 1.5 + i,
          .power = 10.0 + i,
          .cursor = 50ULL * i};
}

bool same_record(const ex::JournalRecord& a, const ex::JournalRecord& b) {
  return a.gen == b.gen && a.flags == b.flags && a.config_id == b.config_id &&
         std::bit_cast<uint64_t>(a.ipc) == std::bit_cast<uint64_t>(b.ipc) &&
         std::bit_cast<uint64_t>(a.power) == std::bit_cast<uint64_t>(b.power) &&
         a.cursor == b.cursor;
}

/// Writes a journal with @p n records and returns its raw bytes.
std::string make_journal(const std::string& path, size_t n) {
  remove_run_files(path);
  ex::RunJournal j(path, identity(), /*resume=*/false);
  for (uint32_t i = 0; i < n; ++i) j.append(record(i));
  j.sync();
  return slurp(path);
}

// -- exploration fixtures -----------------------------------------------------

/// Deterministic oracle on the analytical simulator (shared, read-only).
ex::BatchEvaluator oracle(size_t* calls = nullptr, size_t throw_after = SIZE_MAX) {
  static metadse::workload::SpecSuite suite;
  static metadse::data::DatasetGenerator gen(arch::DesignSpace::table1());
  static const metadse::workload::Workload& wl = suite.by_name("621.wrf_s");
  return [calls, throw_after](const std::vector<arch::Config>& batch) {
    if (calls != nullptr && *calls + batch.size() > throw_after) {
      throw std::runtime_error("chaos: simulated crash");
    }
    std::vector<ex::Objective> out;
    out.reserve(batch.size());
    for (const auto& c : batch) {
      const auto [ipc, power] = gen.evaluate(c, wl);
      out.push_back({ipc, power});
    }
    if (calls != nullptr) *calls += batch.size();
    return out;
  };
}

ex::ExplorerOptions small_options(size_t eval_batch = 1) {
  return {.initial_samples = 8,
          .iterations = 16,
          .mutations_per_step = 2,
          .seed = 7,
          .eval_batch = eval_batch};
}

void expect_bitwise_equal(const ex::ParetoArchive& a,
                          const ex::ParetoArchive& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].config, b.entries()[i].config) << "entry " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(a.entries()[i].objective.ipc),
              std::bit_cast<uint64_t>(b.entries()[i].objective.ipc))
        << "entry " << i;
    EXPECT_EQ(std::bit_cast<uint64_t>(a.entries()[i].objective.power),
              std::bit_cast<uint64_t>(b.entries()[i].objective.power))
        << "entry " << i;
  }
}

}  // namespace

// -- RunJournal unit tests -----------------------------------------------------

TEST(RunJournal, RoundTripRecordsBitwise) {
  const auto path = temp_path("mdse_journal_rt.journal");
  make_journal(path, 5);
  ex::RunJournal j(path, identity(), /*resume=*/true);
  ASSERT_EQ(j.records().size(), 5U);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(same_record(j.records()[i], record(i))) << "record " << i;
  }
  remove_run_files(path);
}

TEST(RunJournal, RefusesToClobberWithoutResume) {
  const auto path = temp_path("mdse_journal_clobber.journal");
  make_journal(path, 3);
  EXPECT_THROW(ex::RunJournal(path, identity(), /*resume=*/false),
               std::runtime_error);
  // The refusal must not have damaged the file.
  ex::RunJournal j(path, identity(), /*resume=*/true);
  EXPECT_EQ(j.records().size(), 3U);
  remove_run_files(path);
}

TEST(RunJournal, IdentityMismatchThrows) {
  const auto path = temp_path("mdse_journal_ident.journal");
  make_journal(path, 2);
  EXPECT_THROW(ex::RunJournal(path, identity(/*seed=*/8), /*resume=*/true),
               std::runtime_error);
  remove_run_files(path);
}

TEST(RunJournal, TruncatedTailRecoversLongestPrefix) {
  const auto path = temp_path("mdse_journal_trunc.journal");
  const std::string bytes = make_journal(path, 4);
  ASSERT_EQ(bytes.size(), kHeaderBytes + 4 * kRecordBytes);
  // Every possible truncation point, including mid-header and mid-record.
  for (size_t len = 0; len <= bytes.size(); ++len) {
    spit(path, bytes.substr(0, len));
    ex::RunJournal j(path, identity(), /*resume=*/true);
    const size_t expect =
        len < kHeaderBytes ? 0 : (len - kHeaderBytes) / kRecordBytes;
    ASSERT_EQ(j.records().size(), expect) << "truncated to " << len;
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_TRUE(same_record(j.records()[i], record(static_cast<uint32_t>(i))));
    }
  }
  remove_run_files(path);
}

TEST(RunJournal, FlippedByteDropsOnlyTheDamagedSuffix) {
  const auto path = temp_path("mdse_journal_flip.journal");
  const std::string bytes = make_journal(path, 4);
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x40);
    spit(path, damaged);
    ex::RunJournal j(path, identity(), /*resume=*/true);
    // A header flip starts fresh; a flip in record r kills its frame CRC and
    // everything after it. Never more records than the valid prefix.
    const size_t expect =
        pos < kHeaderBytes ? 0 : (pos - kHeaderBytes) / kRecordBytes;
    ASSERT_EQ(j.records().size(), expect) << "flipped byte " << pos;
    for (size_t i = 0; i < j.records().size(); ++i) {
      EXPECT_TRUE(same_record(j.records()[i], record(static_cast<uint32_t>(i))))
          << "flipped byte " << pos << ", record " << i;
    }
  }
  remove_run_files(path);
}

TEST(RunJournal, InterleavedGarbageDropsSuffix) {
  const auto path = temp_path("mdse_journal_garbage.journal");
  const std::string bytes = make_journal(path, 4);
  // Foreign bytes wedged between records 2 and 3 misalign every later frame.
  std::string damaged = bytes.substr(0, kHeaderBytes + 2 * kRecordBytes);
  damaged += "\xde\xad\xbe\xef!!!";
  damaged += bytes.substr(kHeaderBytes + 2 * kRecordBytes);
  spit(path, damaged);
  ex::RunJournal j(path, identity(), /*resume=*/true);
  ASSERT_EQ(j.records().size(), 2U);
  EXPECT_TRUE(same_record(j.records()[0], record(0)));
  EXPECT_TRUE(same_record(j.records()[1], record(1)));
  remove_run_files(path);
}

TEST(RunJournal, TruncateToDiscardsOnDiskAndAppendsContinue) {
  const auto path = temp_path("mdse_journal_truncto.journal");
  make_journal(path, 5);
  {
    ex::RunJournal j(path, identity(), /*resume=*/true);
    j.truncate_to(2);
    EXPECT_EQ(j.records().size(), 2U);
    j.append(record(77));
  }
  ex::RunJournal j(path, identity(), /*resume=*/true);
  ASSERT_EQ(j.records().size(), 3U);
  EXPECT_TRUE(same_record(j.records()[2], record(77)));
  remove_run_files(path);
}

TEST(RunJournal, SnapshotRoundTrip) {
  const auto path = temp_path("mdse_journal_snap.journal");
  make_journal(path, 4);
  ex::RunJournal j(path, identity(), /*resume=*/true);
  ex::RunJournal::Snapshot s;
  s.records_consumed = 3;
  s.it = 1;
  s.gen = 2;
  s.rng_state = "12 345 678";
  s.entries = {{9, 1.25, 8.5}, {11, 2.5, 9.75}};
  j.write_snapshot(s);
  const auto back = j.load_snapshot();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->records_consumed, 3U);
  EXPECT_EQ(back->it, 1U);
  EXPECT_EQ(back->gen, 2U);
  EXPECT_EQ(back->rng_state, "12 345 678");
  ASSERT_EQ(back->entries.size(), 2U);
  EXPECT_EQ(back->entries[1].config_id, 11U);
  EXPECT_EQ(std::bit_cast<uint64_t>(back->entries[1].ipc),
            std::bit_cast<uint64_t>(2.5));
  remove_run_files(path);
}

TEST(RunJournal, CorruptSnapshotIsIgnoredNeverThrows) {
  const auto path = temp_path("mdse_journal_snapbad.journal");
  make_journal(path, 4);
  ex::RunJournal j(path, identity(), /*resume=*/true);
  ex::RunJournal::Snapshot s;
  s.records_consumed = 2;
  s.rng_state = "1 2";
  s.entries = {{9, 1.0, 8.0}};
  j.write_snapshot(s);
  const std::string good = slurp(j.snapshot_path());
  // Any single flipped byte breaks the whole-file CRC.
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x01);
    spit(j.snapshot_path(), bad);
    EXPECT_FALSE(j.load_snapshot().has_value()) << "flipped byte " << pos;
  }
  // Every truncation is rejected too.
  for (size_t len = 0; len < good.size(); ++len) {
    spit(j.snapshot_path(), good.substr(0, len));
    EXPECT_FALSE(j.load_snapshot().has_value()) << "truncated to " << len;
  }
  spit(j.snapshot_path(), good);
  EXPECT_TRUE(j.load_snapshot().has_value());
  remove_run_files(path);
}

TEST(RunJournal, SnapshotAheadOfJournalIsIgnored) {
  const auto path = temp_path("mdse_journal_snapahead.journal");
  make_journal(path, 2);
  ex::RunJournal j(path, identity(), /*resume=*/true);
  ex::RunJournal::Snapshot s;
  s.records_consumed = 10;  // claims records the journal does not hold
  s.rng_state = "1 2";
  j.write_snapshot(s);
  EXPECT_FALSE(j.load_snapshot().has_value());
  remove_run_files(path);
}

// -- journaled exploration ----------------------------------------------------

TEST(JournaledExplore, ValidatesJournalOptions) {
  ex::EvolutionaryExplorer evo(small_options());
  const auto& space = arch::DesignSpace::table1();
  EXPECT_THROW(evo.explore(space, oracle(), ex::JournalOptions{.path = ""}),
               std::invalid_argument);
  EXPECT_THROW(
      evo.explore(space, oracle(),
                  ex::JournalOptions{.path = temp_path("x.journal"),
                                     .snapshot_period = 0}),
      std::invalid_argument);
}

TEST(JournaledExplore, FreshRunMatchesPlainRunBitwise) {
  for (size_t eval_batch : {size_t{1}, size_t{4}}) {
    ex::EvolutionaryExplorer evo(small_options(eval_batch));
    const auto& space = arch::DesignSpace::table1();
    const auto plain = evo.explore(space, oracle());

    const auto path = temp_path("mdse_journal_fresh.journal");
    remove_run_files(path);
    ex::RunReport rep;
    const auto journaled =
        evo.explore(space, oracle(), ex::JournalOptions{.path = path}, &rep);
    expect_bitwise_equal(plain, journaled);
    EXPECT_EQ(rep.journal_records, evo.budget());
    EXPECT_EQ(rep.replayed, 0U);
    EXPECT_FALSE(rep.resumed);
    remove_run_files(path);
  }
}

TEST(JournaledExplore, ResumeOfCompletedRunIsPureReplay) {
  ex::EvolutionaryExplorer evo(small_options());
  const auto& space = arch::DesignSpace::table1();
  const auto path = temp_path("mdse_journal_pure.journal");
  remove_run_files(path);
  const auto reference =
      evo.explore(space, oracle(), ex::JournalOptions{.path = path});
  // Snapshot restore would skip the replay accounting; force the slow path.
  std::remove((path + ".snapshot").c_str());

  size_t calls = 0;
  ex::RunReport rep;
  const auto resumed = evo.explore(
      space, oracle(&calls), ex::JournalOptions{.path = path}, &rep);
  expect_bitwise_equal(reference, resumed);
  EXPECT_EQ(calls, 0U) << "a completed journal must answer every point";
  EXPECT_EQ(rep.replayed, evo.budget());
  EXPECT_TRUE(rep.resumed);
  EXPECT_FALSE(rep.snapshot_restored);
  remove_run_files(path);
}

TEST(JournaledExplore, SnapshotFastPathMatchesFullReplay) {
  ex::EvolutionaryExplorer evo(small_options(/*eval_batch=*/4));
  const auto& space = arch::DesignSpace::table1();
  const auto path = temp_path("mdse_journal_fast.journal");
  remove_run_files(path);
  const ex::JournalOptions jopts{.path = path, .snapshot_period = 2};
  const auto reference = evo.explore(space, oracle(), jopts);

  ex::RunReport rep;
  const auto resumed = evo.explore(space, oracle(), jopts, &rep);
  expect_bitwise_equal(reference, resumed);
  EXPECT_TRUE(rep.snapshot_restored);
  EXPECT_LT(rep.replayed, evo.budget());
  remove_run_files(path);
}

TEST(JournaledExplore, CorruptSnapshotFallsBackToFullReplay) {
  ex::EvolutionaryExplorer evo(small_options(/*eval_batch=*/4));
  const auto& space = arch::DesignSpace::table1();
  const auto path = temp_path("mdse_journal_fallback.journal");
  remove_run_files(path);
  const ex::JournalOptions jopts{.path = path, .snapshot_period = 2};
  const auto reference = evo.explore(space, oracle(), jopts);

  std::string snap = slurp(path + ".snapshot");
  ASSERT_FALSE(snap.empty());
  snap[snap.size() / 2] = static_cast<char>(snap[snap.size() / 2] ^ 0x10);
  spit(path + ".snapshot", snap);

  ex::RunReport rep;
  const auto resumed = evo.explore(space, oracle(), jopts, &rep);
  expect_bitwise_equal(reference, resumed);
  EXPECT_FALSE(rep.snapshot_restored);
  EXPECT_EQ(rep.replayed, evo.budget());
  remove_run_files(path);
}

TEST(JournaledExplore, ResumeAfterCrashAtEveryRecordBoundary) {
  // The tentpole chaos drill: interrupt a journaled run after every possible
  // number of evaluations, resume, and demand a bitwise-identical archive.
  ex::EvolutionaryExplorer evo(small_options());
  const auto& space = arch::DesignSpace::table1();
  const auto reference = evo.explore(space, oracle());
  const auto path = temp_path("mdse_journal_chaos.journal");
  // A large period keeps snapshots out of the way: this drill pins down the
  // record-by-record replay accounting (snapshots get their own tests).
  const ex::JournalOptions jopts{.path = path, .snapshot_period = 1000};

  for (size_t k = 0; k <= evo.budget(); ++k) {
    remove_run_files(path);
    size_t calls = 0;
    if (k < evo.budget()) {
      EXPECT_THROW(evo.explore(space, oracle(&calls, k), jopts),
                   std::runtime_error)
          << "crash at " << k;
    } else {
      evo.explore(space, oracle(&calls, k), jopts);
    }
    size_t resumed_calls = 0;
    ex::RunReport rep;
    const auto resumed =
        evo.explore(space, oracle(&resumed_calls), jopts, &rep);
    expect_bitwise_equal(reference, resumed);
    // Nothing evaluated before the crash is ever evaluated again.
    EXPECT_EQ(resumed_calls, evo.budget() - k) << "crash at " << k;
    EXPECT_EQ(rep.replayed, k) << "crash at " << k;
    EXPECT_EQ(rep.journal_records, evo.budget() - k) << "crash at " << k;
  }
  remove_run_files(path);
}

TEST(JournaledExplore, BatchedCrashResumeLosesAtMostOneGeneration) {
  // Batched generations journal whole flushes; a crash mid-batch costs only
  // that generation's records, and resume still converges bitwise.
  ex::EvolutionaryExplorer evo(small_options(/*eval_batch=*/4));
  const auto& space = arch::DesignSpace::table1();
  const auto reference = evo.explore(space, oracle());
  const auto path = temp_path("mdse_journal_chaosb.journal");
  const ex::JournalOptions jopts{.path = path, .snapshot_period = 2};

  for (size_t k = 2; k < evo.budget(); k += 5) {
    remove_run_files(path);
    size_t calls = 0;
    EXPECT_THROW(evo.explore(space, oracle(&calls, k), jopts),
                 std::runtime_error);
    ex::RunReport rep;
    const auto resumed = evo.explore(space, oracle(), jopts, &rep);
    expect_bitwise_equal(reference, resumed);
    // A crash before the first completed generation leaves nothing durable.
    EXPECT_EQ(rep.resumed, k >= 4) << "crash at " << k;
  }
  remove_run_files(path);
}

TEST(JournaledExplore, SemanticCorruptionTruncatesAndReEvaluates) {
  // A record with a valid CRC but the wrong config (foreign tail / bit rot
  // that recomputed the checksum) must be caught by replay verification.
  ex::EvolutionaryExplorer evo(small_options());
  const auto& space = arch::DesignSpace::table1();
  const auto path = temp_path("mdse_journal_semantic.journal");
  remove_run_files(path);
  const auto reference =
      evo.explore(space, oracle(), ex::JournalOptions{.path = path});
  std::remove((path + ".snapshot").c_str());

  // Rewrite record 5's config_id and re-frame it with a correct CRC.
  std::string bytes = slurp(path);
  const size_t off = kHeaderBytes + 5 * kRecordBytes;
  uint64_t config_id = 0;
  std::memcpy(&config_id, bytes.data() + off + 8, 8);
  ++config_id;
  std::memcpy(bytes.data() + off + 8, &config_id, 8);
  const uint32_t crc = nn::crc32(bytes.data() + off, kRecordBytes - 4);
  std::memcpy(bytes.data() + off + kRecordBytes - 4, &crc, 4);
  spit(path, bytes);

  size_t calls = 0;
  ex::RunReport rep;
  const auto resumed = evo.explore(
      space, oracle(&calls), ex::JournalOptions{.path = path}, &rep);
  expect_bitwise_equal(reference, resumed);
  EXPECT_EQ(rep.replayed, 5U);
  EXPECT_EQ(calls, evo.budget() - 5);
  remove_run_files(path);
}

TEST(JournaledExplore, SnapshotCorruptionFuzzFallsBackToFullReplay) {
  // Serving-PR satellite: fuzz the .snapshot sidecar byte by byte. Every
  // single-byte flip and every truncation must be rejected silently — the
  // resume falls back to full journal replay and still converges to a
  // bitwise-identical archive. No corruption of the *snapshot* may ever
  // surface as an error or a different front.
  ex::EvolutionaryExplorer evo(small_options(/*eval_batch=*/4));
  const auto& space = arch::DesignSpace::table1();
  const auto path = temp_path("mdse_journal_snapfuzz.journal");
  remove_run_files(path);
  const ex::JournalOptions jopts{.path = path, .snapshot_period = 2};
  const auto reference = evo.explore(space, oracle(), jopts);
  const std::string journal_bytes = slurp(path);
  const std::string good = slurp(path + ".snapshot");
  ASSERT_FALSE(good.empty());

  auto resume_expect_full_replay = [&](const std::string& label) {
    ex::RunReport rep;
    const auto resumed = evo.explore(space, oracle(), jopts, &rep);
    expect_bitwise_equal(reference, resumed);
    EXPECT_FALSE(rep.snapshot_restored) << label;
    EXPECT_EQ(rep.replayed, evo.budget()) << label;
  };

  for (size_t pos = 0; pos < good.size(); ++pos) {
    // The resume itself rewrites both files; restore the originals so each
    // probe corrupts the same reference snapshot.
    spit(path, journal_bytes);
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x80);
    spit(path + ".snapshot", bad);
    resume_expect_full_replay("flipped byte " + std::to_string(pos));
  }
  for (size_t len = 0; len < good.size(); len += 7) {
    spit(path, journal_bytes);
    spit(path + ".snapshot", good.substr(0, len));
    resume_expect_full_replay("truncated to " + std::to_string(len));
  }
  remove_run_files(path);
}

TEST(JournaledExplore, CooperativeStopFlushesSnapshotAndResumes) {
  // Serving-PR satellite: a cooperative stop (SIGTERM, server shutdown)
  // lands at a generation boundary, flushes journal + snapshot, and throws
  // StopRequested; resuming without the stop probe finishes the run
  // bitwise-identically to one that was never interrupted.
  const auto& space = arch::DesignSpace::table1();
  const auto reference =
      ex::EvolutionaryExplorer(small_options()).explore(space, oracle());
  const auto path = temp_path("mdse_journal_coopstop.journal");
  remove_run_files(path);
  const ex::JournalOptions jopts{.path = path, .snapshot_period = 2};

  // Stop deep in the mutation loop (seeding makes 8 generation probes with
  // eval_batch 1), so the flushed state includes a snapshot.
  auto opts = small_options();
  size_t polls = 0;
  opts.stop_check = [&polls] { return ++polls > 12; };
  size_t calls_before = 0;
  EXPECT_THROW(ex::EvolutionaryExplorer(opts).explore(
                   space, oracle(&calls_before), jopts),
               ex::StopRequested);
  EXPECT_LT(calls_before, ex::EvolutionaryExplorer(opts).budget());
  EXPECT_TRUE(std::filesystem::exists(path + ".snapshot"))
      << "a mutation-loop stop must flush a snapshot";

  size_t calls_after = 0;
  ex::RunReport rep;
  const auto resumed = ex::EvolutionaryExplorer(small_options())
                           .explore(space, oracle(&calls_after), jopts, &rep);
  expect_bitwise_equal(reference, resumed);
  EXPECT_TRUE(rep.resumed);
  EXPECT_EQ(calls_before + calls_after,
            ex::EvolutionaryExplorer(small_options()).budget())
      << "nothing evaluated before the stop is evaluated again";

  // A stop during seeding flushes the journal only (snapshots are legal only
  // once the mutation loop owns the archive); resume still converges.
  remove_run_files(path);
  polls = 0;
  opts.stop_check = [&polls] { return ++polls > 3; };
  EXPECT_THROW(ex::EvolutionaryExplorer(opts).explore(space, oracle(), jopts),
               ex::StopRequested);
  EXPECT_FALSE(std::filesystem::exists(path + ".snapshot"));
  const auto resumed2 = ex::EvolutionaryExplorer(small_options())
                            .explore(space, oracle(), jopts);
  expect_bitwise_equal(reference, resumed2);
  remove_run_files(path);
}

// -- journal rotation (compaction) --------------------------------------------

TEST(RunJournal, CompactRebasesTheJournalToAnEmptyGeneration) {
  const auto path = temp_path("mdse_journal_compact.journal");
  make_journal(path, 5);

  {
    ex::RunJournal j(path, identity(), /*resume=*/true);
    ASSERT_EQ(j.records().size(), 5U);
    // The snapshot must cover exactly the durable journal; anything else is
    // a caller bug, not a degradation.
    EXPECT_THROW(j.compact(3), std::logic_error);
    EXPECT_THROW(j.compact(6), std::logic_error);

    ASSERT_TRUE(j.compact(5));
    EXPECT_EQ(j.base(), 5U);
    EXPECT_TRUE(j.records().empty());
    EXPECT_EQ(j.logical_end(), 5U);
    EXPECT_EQ(j.compactions(), 1U);
    EXPECT_EQ(std::filesystem::file_size(path), kHeaderBytes)
        << "a rebased generation is header-only";

    // Appends continue under the new base; physical record 0 is logical 5.
    j.append(record(5));
    j.sync();
    EXPECT_EQ(j.logical_end(), 6U);
  }
  ex::RunJournal back(path, identity(), /*resume=*/true);
  EXPECT_EQ(back.base(), 5U);
  ASSERT_EQ(back.records().size(), 1U);
  EXPECT_TRUE(same_record(back.records()[0], record(5)));
  remove_run_files(path);
}

TEST(RunJournal, ResetFreshAbandonsTheRotatedGeneration) {
  const auto path = temp_path("mdse_journal_resetfresh.journal");
  make_journal(path, 4);
  ex::RunJournal j(path, identity(), /*resume=*/true);
  ASSERT_TRUE(j.compact(4));
  ASSERT_EQ(j.base(), 4U);

  // The escape hatch for "rotated journal, snapshot gone": nothing left to
  // replay against, so the run restarts from scratch.
  j.reset_fresh();
  EXPECT_EQ(j.base(), 0U);
  EXPECT_TRUE(j.records().empty());
  EXPECT_FALSE(std::filesystem::exists(j.snapshot_path()));
  j.append(record(0));
  j.sync();
  ex::RunJournal back(path, identity(), /*resume=*/true);
  EXPECT_EQ(back.base(), 0U);
  EXPECT_EQ(back.records().size(), 1U);
  remove_run_files(path);
}

TEST(JournaledExplore, RotationKeepsDiskBoundedAndBitwiseEquivalence) {
  ex::EvolutionaryExplorer evo(small_options(/*eval_batch=*/4));
  const auto& space = arch::DesignSpace::table1();
  const auto plain = evo.explore(space, oracle());

  const auto path = temp_path("mdse_journal_rotate.journal");
  remove_run_files(path);
  const ex::JournalOptions jopts{.path = path,
                                 .snapshot_period = 2,
                                 .compact_after_records = 8};
  ex::RunReport rep;
  const auto journaled = evo.explore(space, oracle(), jopts, &rep);
  expect_bitwise_equal(plain, journaled);
  EXPECT_GE(rep.journal_compactions, 2U) << "rotation never triggered";

  // Disk stays bounded: the surviving file holds at most one rotation
  // window plus the records since the last snapshot, never the full run.
  const std::string bytes = slurp(path);
  ASSERT_GE(bytes.size(), kHeaderBytes);
  EXPECT_LT(bytes.size(), kHeaderBytes + evo.budget() * kRecordBytes / 2);
  uint64_t base = 0;
  std::memcpy(&base, bytes.data() + 56, 8);
  EXPECT_GT(base, 0U) << "the final generation must be rebased";

  // Resume of the completed rotated run: the snapshot covers the base, so
  // restore + tail replay reproduces the archive without re-evaluating.
  size_t calls = 0;
  ex::RunReport rep2;
  const auto resumed = evo.explore(space, oracle(&calls), jopts, &rep2);
  expect_bitwise_equal(plain, resumed);
  EXPECT_EQ(calls, 0U);
  EXPECT_TRUE(rep2.snapshot_restored);
  remove_run_files(path);
}

TEST(JournaledExplore, RotatedJournalWithLostSnapshotRestartsFresh) {
  ex::EvolutionaryExplorer evo(small_options(/*eval_batch=*/4));
  const auto& space = arch::DesignSpace::table1();
  const auto path = temp_path("mdse_journal_rotlost.journal");
  remove_run_files(path);
  const ex::JournalOptions jopts{.path = path,
                                 .snapshot_period = 2,
                                 .compact_after_records = 8};
  const auto reference = evo.explore(space, oracle(), jopts);
  // The compacted prefix lives only inside the snapshot; losing it leaves
  // nothing to replay the rotated base against.
  std::remove((path + ".snapshot").c_str());

  size_t calls = 0;
  ex::RunReport rep;
  const auto resumed = evo.explore(space, oracle(&calls), jopts, &rep);
  expect_bitwise_equal(reference, resumed);
  EXPECT_TRUE(rep.journal_reset) << "the reset must be reported";
  EXPECT_EQ(calls, evo.budget()) << "everything must be re-evaluated";
  remove_run_files(path);
}

TEST(JournaledExplore, CrashResumeAcrossRotationBoundaries) {
  // The rotation analogue of ResumeAfterCrashAtEveryRecordBoundary: with
  // aggressive rotation armed, interrupt after every possible number of
  // evaluations — including mid-window and exactly at generation handoffs —
  // and demand a bitwise-identical archive on resume.
  ex::EvolutionaryExplorer evo(small_options(/*eval_batch=*/4));
  const auto& space = arch::DesignSpace::table1();
  const auto reference = evo.explore(space, oracle());
  const auto path = temp_path("mdse_journal_rotcrash.journal");
  const ex::JournalOptions jopts{.path = path,
                                 .snapshot_period = 2,
                                 .compact_after_records = 8};

  size_t rotated_resumes = 0;
  for (size_t k = 0; k < evo.budget(); ++k) {
    remove_run_files(path);
    size_t calls = 0;
    EXPECT_THROW(evo.explore(space, oracle(&calls, k), jopts),
                 std::runtime_error)
        << "crash at " << k;
    ex::RunReport rep;
    const auto resumed = evo.explore(space, oracle(), jopts, &rep);
    expect_bitwise_equal(reference, resumed);
    if (rep.resumed && rep.snapshot_restored) ++rotated_resumes;
  }
  EXPECT_GT(rotated_resumes, 0U)
      << "no crash point ever landed after a snapshot";
  remove_run_files(path);
}

TEST(JournaledExplore, TruncationFuzzAcrossARotatedJournal) {
  // Every-byte fuzz across a rotation boundary: complete a run that rotated
  // at least once, then truncate the surviving (rebased) journal at every
  // length. Every resume — torn tail record, header-only file, even a
  // destroyed header — must converge to a bitwise-identical archive.
  ex::EvolutionaryExplorer evo(small_options(/*eval_batch=*/4));
  const auto& space = arch::DesignSpace::table1();
  const auto path = temp_path("mdse_journal_rotfuzz.journal");
  remove_run_files(path);
  const ex::JournalOptions jopts{.path = path,
                                 .snapshot_period = 2,
                                 .compact_after_records = 8};
  ex::RunReport ref_rep;
  const auto reference = evo.explore(space, oracle(), jopts, &ref_rep);
  ASSERT_GE(ref_rep.journal_compactions, 1U);
  const std::string journal_bytes = slurp(path);
  const std::string snapshot_bytes = slurp(path + ".snapshot");
  ASSERT_FALSE(snapshot_bytes.empty());

  for (size_t len = 0; len <= journal_bytes.size(); ++len) {
    spit(path, journal_bytes.substr(0, len));
    spit(path + ".snapshot", snapshot_bytes);
    ex::RunReport rep;
    const auto resumed = evo.explore(space, oracle(), jopts, &rep);
    expect_bitwise_equal(reference, resumed);
  }
  remove_run_files(path);
}
