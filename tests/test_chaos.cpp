// The fault-domain contract, bottom to top: ChaosEngine schedules are a pure
// function of (rule, eligible-hit index) — deterministic, scopable, and fully
// accounted; core::io turns a fired probe into the exact failure a real disk
// produces (EIO/ENOSPC/torn write) while atomic publication stays
// all-or-nothing; and RunJournal absorbs those failures by degrading to
// in-memory buffering with bounded recovery — correctness is never lost, only
// durability, and only observably so. Rotation (compact) is exercised at the
// primitive level here; the explorer-driven rotation fuzz lives in
// test_journal.cpp.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "core/io.hpp"
#include "explore/journal.hpp"

namespace chaos = metadse::core::chaos;
namespace io = metadse::core::io;
namespace ex = metadse::explore;
namespace fs = std::filesystem;

namespace {

/// Every test starts and ends with a disarmed engine: the registry is a
/// process-wide singleton, so leaked rules would bleed into other suites.
struct ChaosReset {
  ChaosReset() { chaos::ChaosEngine::instance().reset(); }
  ~ChaosReset() { chaos::ChaosEngine::instance().reset(); }
};

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Fires @p point @p n times and returns the 0/1 firing pattern.
std::vector<int> pattern(const char* point, size_t n) {
  std::vector<int> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(chaos::fire(point).has_value() ? 1 : 0);
  }
  return out;
}

ex::RunJournal::Identity identity(uint64_t seed = 7) {
  ex::RunJournal::Identity id;
  id.seed = seed;
  id.initial_samples = 8;
  id.iterations = 16;
  id.mutations_per_step = 2;
  id.eval_batch = 1;
  id.num_params = 24;
  return id;
}

ex::JournalRecord record(size_t i) {
  ex::JournalRecord r;
  r.gen = static_cast<uint32_t>(i / 4);
  r.config_id = 1000 + i;
  r.ipc = 1.5 + 0.01 * static_cast<double>(i);
  r.power = 40.0 - 0.1 * static_cast<double>(i);
  r.cursor = 17 * i;
  return r;
}

void remove_run_files(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".snapshot").c_str());
  std::remove((path + ".snapshot.tmp").c_str());
}

}  // namespace

// -- ChaosEngine schedules ----------------------------------------------------

TEST(ChaosEngine, DisarmedProbeIsInertAndUncounted) {
  ChaosReset reset;
  auto& eng = chaos::ChaosEngine::instance();
  EXPECT_FALSE(eng.armed());
  EXPECT_FALSE(chaos::fire("never.armed").has_value());
  EXPECT_TRUE(eng.report().empty());
  EXPECT_TRUE(eng.all_armed_fired()) << "vacuously true with nothing armed";
}

TEST(ChaosEngine, NthHitFiresExactlyOnce) {
  ChaosReset reset;
  auto& eng = chaos::ChaosEngine::instance();
  chaos::FaultRule rule;
  rule.schedule = chaos::FaultRule::Schedule::kNthHit;
  rule.n = 3;
  rule.fault = {io::kEio, 0};
  eng.arm("p.nth", rule);
  EXPECT_TRUE(eng.armed());

  const auto got = pattern("p.nth", 6);
  EXPECT_EQ(got, (std::vector<int>{0, 0, 1, 0, 0, 0}));
  const auto rep = eng.report().at("p.nth");
  EXPECT_EQ(rep.hits, 6U);
  EXPECT_EQ(rep.eligible, 6U) << "unscoped rules see every hit";
  EXPECT_EQ(rep.fired, 1U);
  EXPECT_TRUE(eng.all_armed_fired());
}

TEST(ChaosEngine, EveryNthRespectsTheFiringBudget) {
  ChaosReset reset;
  auto& eng = chaos::ChaosEngine::instance();
  chaos::FaultRule rule;
  rule.schedule = chaos::FaultRule::Schedule::kEveryNth;
  rule.n = 2;
  rule.max_fires = 2;
  eng.arm("p.every", rule);

  // Fires on hits 2 and 4; hit 6 would fire but the budget is spent.
  EXPECT_EQ(pattern("p.every", 7), (std::vector<int>{0, 1, 0, 1, 0, 0, 0}));
  EXPECT_EQ(eng.report().at("p.every").fired, 2U);
}

TEST(ChaosEngine, FiredFaultCarriesTheArmedSpec) {
  ChaosReset reset;
  auto& eng = chaos::ChaosEngine::instance();
  chaos::FaultRule rule;
  rule.fault = {io::kShortWrite, 13};
  eng.arm("p.spec", rule);
  const auto fault = chaos::fire("p.spec");
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, io::kShortWrite);
  EXPECT_EQ(fault->arg, 13U);
}

TEST(ChaosEngine, ProbabilityScheduleIsSeedDeterministic) {
  ChaosReset reset;
  auto& eng = chaos::ChaosEngine::instance();
  chaos::FaultRule rule;
  rule.schedule = chaos::FaultRule::Schedule::kProbability;
  rule.probability = 0.35;
  rule.seed = 0xFEED;

  eng.arm("p.prob", rule);
  const auto first = pattern("p.prob", 200);
  const size_t fired = eng.report().at("p.prob").fired;
  EXPECT_GT(fired, 0U);
  EXPECT_LT(fired, 200U);

  // Re-arming the identical rule replays the identical decision stream:
  // the schedule depends only on (seed, point, eligible-hit index).
  eng.arm("p.prob", rule);
  EXPECT_EQ(pattern("p.prob", 200), first);
}

TEST(ChaosEngine, ScopedRuleOnlySeesMatchingSessions) {
  ChaosReset reset;
  auto& eng = chaos::ChaosEngine::instance();
  chaos::FaultRule rule;
  rule.schedule = chaos::FaultRule::Schedule::kEveryNth;
  rule.n = 1;  // every eligible hit fires
  rule.scope_mod = 3;
  rule.scope_match = 1;
  eng.arm("p.scoped", rule);

  // Outside any scope: counted but never eligible.
  EXPECT_FALSE(chaos::fire("p.scoped").has_value());
  {
    chaos::ChaosScope non_matching(5);  // 5 % 3 == 2
    EXPECT_FALSE(chaos::fire("p.scoped").has_value());
    {
      chaos::ChaosScope inner(4);  // nested; innermost wins, 4 % 3 == 1
      EXPECT_TRUE(chaos::fire("p.scoped").has_value());
    }
    EXPECT_FALSE(chaos::fire("p.scoped").has_value());
  }
  {
    chaos::ChaosScope matching(7);  // 7 % 3 == 1
    EXPECT_TRUE(chaos::fire("p.scoped").has_value());
  }
  const auto rep = eng.report().at("p.scoped");
  EXPECT_EQ(rep.hits, 5U);
  EXPECT_EQ(rep.eligible, 2U);
  EXPECT_EQ(rep.fired, 2U);
}

TEST(ChaosEngine, AllArmedFiredDemandsEveryPoint) {
  ChaosReset reset;
  auto& eng = chaos::ChaosEngine::instance();
  eng.arm("p.one", {});
  eng.arm("p.two", {});
  EXPECT_FALSE(eng.all_armed_fired());
  EXPECT_TRUE(chaos::fire("p.one").has_value());
  EXPECT_FALSE(eng.all_armed_fired()) << "p.two never fired";
  EXPECT_TRUE(chaos::fire("p.two").has_value());
  EXPECT_TRUE(eng.all_armed_fired());
  EXPECT_NE(eng.summary().find("p.one"), std::string::npos);

  eng.reset();
  EXPECT_FALSE(eng.armed());
  EXPECT_TRUE(eng.report().empty());
}

TEST(ChaosEngine, RearmResetsCountersAndDisarmStopsFiring) {
  ChaosReset reset;
  auto& eng = chaos::ChaosEngine::instance();
  chaos::FaultRule rule;
  rule.schedule = chaos::FaultRule::Schedule::kEveryNth;
  rule.n = 1;
  eng.arm("p.rearm", rule);
  (void)pattern("p.rearm", 3);
  EXPECT_EQ(eng.report().at("p.rearm").hits, 3U);

  eng.arm("p.rearm", rule);  // re-arm: counters restart
  EXPECT_EQ(eng.report().at("p.rearm").hits, 0U);

  eng.disarm("p.rearm");
  EXPECT_FALSE(chaos::fire("p.rearm").has_value());
}

// -- core::io under injected faults -------------------------------------------

TEST(ChaosIo, AtomicWriteFailureLeavesTargetUntouchedAndNoTmp) {
  ChaosReset reset;
  const std::string path = temp_path("mdse_chaos_atomic.txt");
  std::remove(path.c_str());
  io::atomic_write_file(path, "old contents");

  chaos::FaultRule rule;
  rule.fault = {io::kEnospc, 0};
  chaos::ChaosEngine::instance().arm("io.write", rule);
  try {
    io::atomic_write_file(path, "new contents");
    FAIL() << "injected ENOSPC must throw";
  } catch (const io::IoError& e) {
    EXPECT_EQ(e.code(), ENOSPC);
  }
  EXPECT_EQ(slurp(path), "old contents");
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "failed publication left a tmp";
  std::remove(path.c_str());
}

TEST(ChaosIo, RenameFaultAlsoLeavesTargetUntouched) {
  ChaosReset reset;
  const std::string path = temp_path("mdse_chaos_rename.txt");
  std::remove(path.c_str());
  io::atomic_write_file(path, "old contents");

  chaos::FaultRule rule;
  rule.fault = {io::kEio, 0};
  chaos::ChaosEngine::instance().arm("io.rename", rule);
  EXPECT_THROW(io::atomic_write_file(path, "new contents"), io::IoError);
  EXPECT_EQ(slurp(path), "old contents");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(ChaosIo, ShortWriteLandsTheTornPrefixBeforeFailing) {
  ChaosReset reset;
  const std::string path = temp_path("mdse_chaos_short.bin");
  std::remove(path.c_str());

  chaos::FaultRule rule;
  rule.fault = {io::kShortWrite, 5};
  chaos::ChaosEngine::instance().arm("io.write", rule);
  io::File f(path, "wb", "io.write");
  const std::string payload = "0123456789";
  EXPECT_THROW(f.write(payload.data(), payload.size()), io::IoError);
  f.close();
  EXPECT_EQ(slurp(path), "01234")
      << "a torn write must leave exactly arg bytes, like a real crash";
  std::remove(path.c_str());
}

TEST(ChaosIo, EmptyChaosPointOptsOutOfInjection) {
  ChaosReset reset;
  const std::string path = temp_path("mdse_chaos_optout.bin");
  std::remove(path.c_str());
  chaos::FaultRule rule;
  rule.fault = {io::kEio, 0};
  chaos::ChaosEngine::instance().arm("io.write", rule);

  io::File f(path, "wb", /*chaos_point=*/"");
  const std::string payload = "safe";
  f.write(payload.data(), payload.size());  // must not throw
  f.close();
  EXPECT_EQ(slurp(path), "safe");
  std::remove(path.c_str());
}

TEST(ChaosIo, OrphanTmpSweepRemovesOnlyTmpFiles) {
  const std::string dir = temp_path("mdse_chaos_sweep");
  fs::remove_all(dir);
  fs::create_directories(dir);
  io::atomic_write_file(dir + "/keep.txt", "kept");
  { std::ofstream(dir + "/a.tmp") << "orphan"; }
  { std::ofstream(dir + "/b.tmp") << "orphan"; }

  EXPECT_EQ(io::remove_orphan_tmp_files(dir), 2U);
  EXPECT_TRUE(fs::exists(dir + "/keep.txt"));
  EXPECT_FALSE(fs::exists(dir + "/a.tmp"));
  EXPECT_FALSE(fs::exists(dir + "/b.tmp"));
  EXPECT_EQ(io::remove_orphan_tmp_files(dir), 0U) << "sweep is idempotent";
  EXPECT_EQ(io::remove_orphan_tmp_files(dir + "/missing"), 0U);
  fs::remove_all(dir);
}

// -- RunJournal disk-fault degradation ----------------------------------------

TEST(ChaosJournal, TransientEnospcBuffersThenRecoversEveryRecord) {
  ChaosReset reset;
  const std::string path = temp_path("mdse_chaos_journal.journal");
  remove_run_files(path);

  // The first three journal writes fail (the append and two recovery
  // attempts), then the disk heals.
  chaos::FaultRule rule;
  rule.fault = {io::kEnospc, 0};
  rule.schedule = chaos::FaultRule::Schedule::kEveryNth;
  rule.n = 1;
  rule.max_fires = 3;

  {
    ex::RunJournal j(path, identity(), /*resume=*/false);
    chaos::ChaosEngine::instance().arm("journal.write", rule);
    j.append(record(0));  // write fails: degrade, buffer record 0
    EXPECT_TRUE(j.disk_degraded());
    EXPECT_EQ(j.buffered_records(), 1U);
    j.append(record(1));  // buffered; recovery attempt fails
    j.append(record(2));  // buffered; recovery attempt fails
    EXPECT_EQ(j.buffered_records(), 3U);
    EXPECT_EQ(j.disk_errors(), 3U);
    j.append(record(3));  // recovery succeeds: the full buffer drains
    EXPECT_FALSE(j.disk_degraded());
    EXPECT_EQ(j.buffered_records(), 0U);
    EXPECT_EQ(j.disk_errors(), 3U);
    j.sync();
  }

  // Nothing was lost: all four records are durable under the same identity.
  ex::RunJournal back(path, identity(), /*resume=*/true);
  ASSERT_EQ(back.records().size(), 4U);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(back.records()[i].config_id, record(i).config_id) << i;
  }
  remove_run_files(path);
}

TEST(ChaosJournal, PersistentFaultGivesUpAfterBoundedRetries) {
  ChaosReset reset;
  const std::string path = temp_path("mdse_chaos_giveup.journal");
  remove_run_files(path);

  chaos::FaultRule rule;
  rule.fault = {io::kEnospc, 0};
  rule.schedule = chaos::FaultRule::Schedule::kEveryNth;
  rule.n = 1;  // the disk never heals

  {
    ex::RunJournal j(path, identity(), /*resume=*/false);
    chaos::ChaosEngine::instance().arm("journal.write", rule);
    const size_t n = 2 + ex::RunJournal::kMaxRecoverAttempts;
    for (size_t i = 0; i < n; ++i) j.append(record(i));
    EXPECT_TRUE(j.disk_degraded());
    EXPECT_EQ(j.buffered_records(), n) << "every record stays buffered";
    // 1 failed append + kMaxRecoverAttempts failed recoveries, then the
    // journal stops touching the disk: appends keep buffering but the
    // error count freezes.
    EXPECT_EQ(j.disk_errors(), 1 + ex::RunJournal::kMaxRecoverAttempts);
    j.append(record(n));
    EXPECT_EQ(j.disk_errors(), 1 + ex::RunJournal::kMaxRecoverAttempts);
    EXPECT_EQ(j.buffered_records(), n + 1);
  }
  remove_run_files(path);
}

TEST(ChaosJournal, DegradedJournalRefusesToCompact) {
  ChaosReset reset;
  const std::string path = temp_path("mdse_chaos_nocompact.journal");
  remove_run_files(path);

  ex::RunJournal j(path, identity(), /*resume=*/false);
  for (size_t i = 0; i < 3; ++i) j.append(record(i));

  chaos::FaultRule rule;
  rule.fault = {io::kEnospc, 0};
  rule.schedule = chaos::FaultRule::Schedule::kEveryNth;
  rule.n = 1;
  chaos::ChaosEngine::instance().arm("journal.write", rule);
  j.append(record(3));  // degrades; record 3 is buffered, not durable
  ASSERT_TRUE(j.disk_degraded());
  EXPECT_EQ(j.logical_end(), 3U) << "buffered records are not durable";

  // compact() must refuse: rewriting the generation would silently drop
  // the buffered tail's durability story.
  EXPECT_FALSE(j.compact(3));
  EXPECT_EQ(j.compactions(), 0U);
  remove_run_files(path);
}

TEST(ChaosJournal, CompactionFaultLeavesTheOldGenerationIntact) {
  ChaosReset reset;
  const std::string path = temp_path("mdse_chaos_compactfault.journal");
  remove_run_files(path);

  {
    ex::RunJournal j(path, identity(), /*resume=*/false);
    for (size_t i = 0; i < 4; ++i) j.append(record(i));
    j.sync();

    // The handoff's tmp-file write is the next journal.write hit; failing
    // it must leave the old generation fully intact on disk.
    chaos::FaultRule rule;
    rule.fault = {io::kEio, 0};
    chaos::ChaosEngine::instance().arm("journal.write", rule);
    EXPECT_FALSE(j.compact(4));
    EXPECT_EQ(j.compactions(), 0U);
    chaos::ChaosEngine::instance().reset();
    EXPECT_EQ(j.base(), 0U);
    EXPECT_EQ(j.logical_end(), 4U) << "old generation must stay durable";

    // The journal reopened for append; post-fault appends still land.
    j.append(record(4));
    j.sync();
  }
  ex::RunJournal back(path, identity(), /*resume=*/true);
  EXPECT_EQ(back.base(), 0U);
  ASSERT_EQ(back.records().size(), 5U);
  EXPECT_EQ(back.records()[4].config_id, record(4).config_id);
  remove_run_files(path);
}
