// Unit tests for forward semantics of the differentiable op library.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace mt = metadse::tensor;

namespace {
mt::Tensor t2x3() {
  return mt::Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
}
}  // namespace

TEST(Ops, AddBroadcastBias) {
  auto x = t2x3();
  auto b = mt::Tensor::from_vector({3}, {10, 20, 30});
  auto y = mt::add(x, b);
  EXPECT_EQ(y.shape(), (mt::Shape{2, 3}));
  EXPECT_FLOAT_EQ(y.at({0, 0}), 11.0F);
  EXPECT_FLOAT_EQ(y.at({1, 2}), 36.0F);
}

TEST(Ops, AddIncompatibleThrows) {
  auto x = t2x3();
  auto b = mt::Tensor::from_vector({2}, {1, 2});
  EXPECT_THROW(mt::add(x, b), std::invalid_argument);
}

TEST(Ops, MulScalarAndDiv) {
  auto x = t2x3();
  auto y = mt::mul(x, 2.0F);
  EXPECT_FLOAT_EQ(y.at({1, 1}), 10.0F);
  auto z = mt::div(y, 4.0F);
  EXPECT_FLOAT_EQ(z.at({1, 1}), 2.5F);
}

TEST(Ops, SubNeg) {
  auto x = t2x3();
  auto y = mt::sub(x, 1.0F);
  EXPECT_FLOAT_EQ(y.at({0, 0}), 0.0F);
  auto n = mt::neg(x);
  EXPECT_FLOAT_EQ(n.at({1, 2}), -6.0F);
}

TEST(Ops, Matmul2D) {
  auto a = mt::Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  auto b = mt::Tensor::from_vector({3, 2}, {7, 8, 9, 10, 11, 12});
  auto c = mt::matmul(a, b);
  EXPECT_EQ(c.shape(), (mt::Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0F);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0F);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0F);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0F);
}

TEST(Ops, MatmulBatchedBroadcast) {
  // a: [2, 2, 2] batch of two, b: [2, 2] broadcast over batch.
  auto a = mt::Tensor::from_vector({2, 2, 2}, {1, 0, 0, 1, 2, 0, 0, 2});
  auto b = mt::Tensor::from_vector({2, 2}, {5, 6, 7, 8});
  auto c = mt::matmul(a, b);
  EXPECT_EQ(c.shape(), (mt::Shape{2, 2, 2}));
  EXPECT_FLOAT_EQ(c.at({0, 0, 0}), 5.0F);
  EXPECT_FLOAT_EQ(c.at({0, 1, 1}), 8.0F);
  EXPECT_FLOAT_EQ(c.at({1, 0, 0}), 10.0F);
  EXPECT_FLOAT_EQ(c.at({1, 1, 1}), 16.0F);
}

TEST(Ops, MatmulInnerDimMismatchThrows) {
  auto a = mt::Tensor::zeros({2, 3});
  auto b = mt::Tensor::zeros({4, 2});
  EXPECT_THROW(mt::matmul(a, b), std::invalid_argument);
}

TEST(Ops, ReluGeluTanhSigmoidValues) {
  auto x = mt::Tensor::from_vector({3}, {-1.0F, 0.0F, 2.0F});
  auto r = mt::relu(x);
  EXPECT_FLOAT_EQ(r.at({0}), 0.0F);
  EXPECT_FLOAT_EQ(r.at({2}), 2.0F);

  auto g = mt::gelu(x);
  EXPECT_NEAR(g.at({1}), 0.0F, 1e-6);
  EXPECT_NEAR(g.at({2}), 1.9545977F, 1e-4);  // gelu(2) via tanh approx

  auto t = mt::tanh(x);
  EXPECT_NEAR(t.at({2}), std::tanh(2.0F), 1e-6);

  auto s = mt::sigmoid(x);
  EXPECT_NEAR(s.at({1}), 0.5F, 1e-6);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  auto x = mt::Tensor::from_vector({2, 4}, {1, 2, 3, 4, -1, 0, 1, 100});
  auto y = mt::softmax_lastdim(x);
  for (size_t r = 0; r < 2; ++r) {
    float s = 0.0F;
    for (size_t c = 0; c < 4; ++c) s += y.at({r, c});
    EXPECT_NEAR(s, 1.0F, 1e-5);
  }
  // Large logit dominates without overflow.
  EXPECT_NEAR(y.at({1, 3}), 1.0F, 1e-5);
}

TEST(Ops, LayerNormZeroMeanUnitVar) {
  auto x = mt::Tensor::from_vector({2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  auto y = mt::layer_norm_lastdim(x);
  for (size_t r = 0; r < 2; ++r) {
    float mu = 0.0F;
    float var = 0.0F;
    for (size_t c = 0; c < 4; ++c) mu += y.at({r, c});
    mu /= 4.0F;
    for (size_t c = 0; c < 4; ++c) {
      var += (y.at({r, c}) - mu) * (y.at({r, c}) - mu);
    }
    var /= 4.0F;
    EXPECT_NEAR(mu, 0.0F, 1e-5);
    EXPECT_NEAR(var, 1.0F, 1e-3);
  }
}

TEST(Ops, Reductions) {
  auto x = t2x3();
  EXPECT_FLOAT_EQ(mt::sum(x).item(), 21.0F);
  EXPECT_FLOAT_EQ(mt::mean(x).item(), 3.5F);

  auto s0 = mt::sum_axis(x, 0);
  EXPECT_EQ(s0.shape(), (mt::Shape{3}));
  EXPECT_FLOAT_EQ(s0.at({0}), 5.0F);
  EXPECT_FLOAT_EQ(s0.at({2}), 9.0F);

  auto s1 = mt::sum_axis(x, 1, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), (mt::Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1.at({0, 0}), 6.0F);
  EXPECT_FLOAT_EQ(s1.at({1, 0}), 15.0F);

  auto m1 = mt::mean_axis(x, 1);
  EXPECT_FLOAT_EQ(m1.at({0}), 2.0F);
  EXPECT_FLOAT_EQ(m1.at({1}), 5.0F);
}

TEST(Ops, ReshapePermuteTranspose) {
  auto x = t2x3();
  auto r = mt::reshape(x, {3, 2});
  EXPECT_FLOAT_EQ(r.at({1, 1}), 4.0F);
  EXPECT_THROW(mt::reshape(x, {4, 2}), std::invalid_argument);

  auto t = mt::transpose_last(x);
  EXPECT_EQ(t.shape(), (mt::Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at({2, 1}), 6.0F);
  EXPECT_FLOAT_EQ(t.at({0, 1}), 4.0F);

  auto x3 = mt::Tensor::from_vector({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  auto p = mt::permute(x3, {1, 0, 2});
  EXPECT_FLOAT_EQ(p.at({0, 1, 0}), 4.0F);
  EXPECT_FLOAT_EQ(p.at({1, 0, 1}), 3.0F);
}

TEST(Ops, ConcatRows) {
  auto a = mt::Tensor::from_vector({1, 2}, {1, 2});
  auto b = mt::Tensor::from_vector({2, 2}, {3, 4, 5, 6});
  auto c = mt::concat_rows({a, b});
  EXPECT_EQ(c.shape(), (mt::Shape{3, 2}));
  EXPECT_FLOAT_EQ(c.at({0, 1}), 2.0F);
  EXPECT_FLOAT_EQ(c.at({2, 0}), 5.0F);
  auto bad = mt::Tensor::from_vector({1, 3}, {1, 2, 3});
  EXPECT_THROW(mt::concat_rows({a, bad}), std::invalid_argument);
}

TEST(Ops, Losses) {
  auto p = mt::Tensor::from_vector({4}, {1, 2, 3, 4});
  auto t = mt::Tensor::from_vector({4}, {1, 2, 3, 8});
  EXPECT_FLOAT_EQ(mt::mse_loss(p, t).item(), 4.0F);   // 16/4
  EXPECT_FLOAT_EQ(mt::l1_loss(p, t).item(), 1.0F);    // 4/4
  auto bad = mt::Tensor::zeros({3});
  EXPECT_THROW(mt::mse_loss(p, bad), std::invalid_argument);
}

TEST(Ops, DropoutTrainVsEval) {
  mt::Rng rng(3);
  auto x = mt::Tensor::full({1000}, 1.0F);
  auto eval = mt::dropout(x, 0.5F, rng, /*train=*/false);
  for (float v : eval.data()) EXPECT_EQ(v, 1.0F);

  auto train = mt::dropout(x, 0.5F, rng, /*train=*/true);
  size_t zeros = 0;
  float sum = 0.0F;
  for (float v : train.data()) {
    if (v == 0.0F) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0F);  // inverted dropout rescale
    }
    sum += v;
  }
  EXPECT_GT(zeros, 350U);
  EXPECT_LT(zeros, 650U);
  EXPECT_NEAR(sum / 1000.0F, 1.0F, 0.15F);
  EXPECT_THROW(mt::dropout(x, 1.0F, rng, true), std::invalid_argument);
}
