// The determinism contract of the thread-pool subsystem: for every thread
// count, parallel execution produces *bitwise* the same results as the
// serial code path — MAML epoch traces and final weights, generated
// datasets (including injected-fault quarantine accounting and the
// backoff-hook call sequence), ensemble fits, and the blocked GEMM kernel
// (forward and gradients, checked against a naive reference).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/design_space.hpp"
#include "baselines/ensembles.hpp"
#include "core/parallel.hpp"
#include "data/dataset.hpp"
#include "explore/explorer.hpp"
#include "explore/guarded.hpp"
#include "meta/maml.hpp"
#include "sim/fault_injection.hpp"
#include "tensor/ops.hpp"
#include "workload/spec_suite.hpp"

namespace core = metadse::core;
namespace meta = metadse::meta;
namespace data = metadse::data;
namespace nn = metadse::nn;
namespace mt = metadse::tensor;
namespace arch = metadse::arch;
namespace sim = metadse::sim;
namespace baselines = metadse::baselines;

namespace {

/// The sweep every equivalence test runs: the serial path plus two pool
/// widths (one under, one over this host's core count).
const std::vector<size_t> kThreadSweep = {1, 2, 8};

/// Restores the serial default when a test exits, pass or fail.
struct ThreadGuard {
  ~ThreadGuard() { metadse::set_threads(1); }
};

// -- pool primitives ---------------------------------------------------------

TEST(ParallelFor, PartitionCoversRangeExactlyOnce) {
  ThreadGuard guard;
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{64},
                     size_t{1000}}) {
      for (size_t grain : {size_t{1}, size_t{7}}) {
        std::vector<int> hits(n, 0);
        std::mutex m;
        core::parallel_for_blocks(n, grain, [&](size_t lo, size_t hi) {
          EXPECT_LE(lo, hi);
          EXPECT_LE(hi, n);
          std::lock_guard<std::mutex> lk(m);
          for (size_t i = lo; i < hi; ++i) ++hits[i];
        });
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[i], 1) << "n=" << n << " grain=" << grain
                                << " threads=" << threads << " i=" << i;
        }
      }
    }
  }
}

TEST(ParallelFor, RethrowsBlockExceptionOnCaller) {
  ThreadGuard guard;
  metadse::set_threads(8);
  EXPECT_THROW(
      core::parallel_for_blocks(64, 1,
                                [&](size_t lo, size_t) {
                                  if (lo >= 32) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
      std::runtime_error);
  // The pool must still be usable after a failed batch.
  size_t total = 0;
  std::mutex m;
  core::parallel_for_blocks(100, 1, [&](size_t lo, size_t hi) {
    std::lock_guard<std::mutex> lk(m);
    total += hi - lo;
  });
  EXPECT_EQ(total, 100U);
}

TEST(ParallelFor, NestedRegionsRunInline) {
  ThreadGuard guard;
  metadse::set_threads(8);
  EXPECT_FALSE(core::in_parallel_region());
  std::mutex m;
  size_t inner_total = 0;
  core::parallel_for_blocks(8, 1, [&](size_t, size_t) {
    EXPECT_TRUE(core::in_parallel_region());
    // A nested region must degrade to one inline block, not deadlock.
    core::parallel_for_blocks(10, 1, [&](size_t lo, size_t hi) {
      EXPECT_EQ(lo, 0U);
      EXPECT_EQ(hi, 10U);
      std::lock_guard<std::mutex> lk(m);
      inner_total += hi - lo;
    });
  });
  EXPECT_FALSE(core::in_parallel_region());
  EXPECT_EQ(inner_total, 80U);
}

TEST(ParallelMapReduce, ReducesInAscendingIndexOrder) {
  ThreadGuard guard;
  metadse::set_threads(8);
  std::vector<size_t> order;
  core::parallel_map_reduce<size_t>(
      200, [](size_t i) { return i * 3; },
      [&](size_t i, size_t v) {
        EXPECT_EQ(v, i * 3);
        order.push_back(i);
      });
  ASSERT_EQ(order.size(), 200U);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ParallelConfig, ThreadsKnobClampsAndDefaults) {
  ThreadGuard guard;
  metadse::set_threads(3);
  EXPECT_EQ(metadse::threads(), 3U);
  metadse::set_threads(0);  // hardware/env default
  EXPECT_GE(metadse::threads(), 1U);
  EXPECT_GE(metadse::hardware_threads(), 1U);
}

// -- blocked GEMM vs naive reference ----------------------------------------

/// One multiply-accumulate with the forward-GEMM MAC contract: a single
/// fused fmaf rounding when the kernel was built with FMA, separate mul+add
/// roundings otherwise. tensor::ops.cpp's gemm_mac makes the same choice, so
/// the naive reference below stays bitwise comparable on every build.
float naive_mac(float acc, float a, float b) {
#if defined(__FMA__)
  return __builtin_fmaf(a, b, acc);
#else
  return acc + a * b;
#endif
}

/// The pre-blocking triple loop (m, k, n with ascending-k accumulation),
/// batched with the same broadcast offsets as tensor::matmul.
std::vector<float> naive_matmul(const std::vector<float>& a,
                                const std::vector<float>& b,
                                const mt::Shape& sa, const mt::Shape& sb) {
  const size_t M = sa[sa.size() - 2];
  const size_t K = sa[sa.size() - 1];
  const size_t N = sb[sb.size() - 1];
  const mt::Shape a_batch(sa.begin(), sa.end() - 2);
  const mt::Shape b_batch(sb.begin(), sb.end() - 2);
  const mt::Shape batch = mt::broadcast_shape(a_batch, b_batch);
  const auto stra = mt::broadcast_strides(a_batch, batch);
  const auto strb = mt::broadcast_strides(b_batch, batch);
  const size_t nb = mt::numel(batch);
  std::vector<float> out(nb * M * N, 0.0F);
  std::vector<size_t> idx(batch.size(), 0);
  for (size_t bi = 0; bi < nb; ++bi) {
    size_t oa = 0;
    size_t ob = 0;
    for (size_t d = 0; d < batch.size(); ++d) {
      oa += idx[d] * stra[d];
      ob += idx[d] * strb[d];
    }
    const float* pa = a.data() + oa * M * K;
    const float* pb = b.data() + ob * K * N;
    float* po = out.data() + bi * M * N;
    for (size_t m = 0; m < M; ++m) {
      for (size_t k = 0; k < K; ++k) {
        for (size_t n = 0; n < N; ++n) {
          po[m * N + n] = naive_mac(po[m * N + n], pa[m * K + k], pb[k * N + n]);
        }
      }
    }
    for (size_t d = batch.size(); d-- > 0;) {
      if (++idx[d] < batch[d]) break;
      idx[d] = 0;
    }
  }
  return out;
}

/// Shape pairs covering square, non-square, tall/wide, 1xN / Nx1, empty,
/// K wider than one reduction tile, batched, and broadcast-batched GEMMs.
std::vector<std::pair<mt::Shape, mt::Shape>> gemm_shapes() {
  return {
      {{4, 4}, {4, 4}},
      {{3, 7}, {7, 5}},
      {{1, 9}, {9, 6}},
      {{9, 1}, {1, 4}},
      {{1, 1}, {1, 1}},
      {{0, 4}, {4, 3}},        // no rows
      {{5, 0}, {0, 2}},        // empty reduction: all zeros
      {{6, 130}, {130, 3}},    // K spans multiple 64-wide tiles
      {{2, 3, 4}, {2, 4, 5}},  // batched
      {{3, 4}, {2, 4, 5}},     // a broadcast over b's batch
      {{2, 3, 4}, {4, 5}},     // b broadcast over a's batch
  };
}

TEST(BlockedGemm, ForwardMatchesNaiveReferenceBitwise) {
  ThreadGuard guard;
  for (const auto& [sa, sb] : gemm_shapes()) {
    mt::Rng rng(11);
    auto a = mt::Tensor::randn(sa, rng);
    auto b = mt::Tensor::randn(sb, rng);
    const auto ref = naive_matmul(a.data(), b.data(), sa, sb);
    for (size_t threads : kThreadSweep) {
      metadse::set_threads(threads);
      const auto got = mt::matmul(a, b).data();
      ASSERT_EQ(got.size(), ref.size());
      for (size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(got[i], ref[i])
            << "threads=" << threads << " shape=" << mt::shape_str(sa)
            << "x" << mt::shape_str(sb) << " i=" << i;
      }
    }
  }
}

TEST(BlockedGemm, GradientsIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  for (const auto& [sa, sb] : gemm_shapes()) {
    std::vector<float> ref_da;
    std::vector<float> ref_db;
    for (size_t threads : kThreadSweep) {
      metadse::set_threads(threads);
      mt::Rng rng(13);
      auto a = mt::Tensor::randn(sa, rng, 1.0F, /*requires_grad=*/true);
      auto b = mt::Tensor::randn(sb, rng, 1.0F, /*requires_grad=*/true);
      // sum(square(.)) gives every output element a distinct gradient.
      auto loss = mt::sum(mt::square(mt::matmul(a, b)));
      loss.backward();
      if (threads == 1) {
        ref_da = a.grad();
        ref_db = b.grad();
        continue;
      }
      ASSERT_EQ(a.grad(), ref_da)
          << "threads=" << threads << " shape=" << mt::shape_str(sa);
      ASSERT_EQ(b.grad(), ref_db)
          << "threads=" << threads << " shape=" << mt::shape_str(sb);
    }
  }
}

// -- MAML meta-batch ---------------------------------------------------------

constexpr size_t kFeatures = 4;

data::Dataset family_dataset(float a, float b, float c, float d, size_t n,
                             uint64_t seed) {
  data::Dataset ds;
  ds.workload = "synthetic";
  mt::Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    data::Sample s;
    s.features.resize(kFeatures);
    for (auto& f : s.features) f = rng.uniform(0.0F, 1.0F);
    s.ipc = a * std::sin(3.14159F * s.features[0]) + b * s.features[1] +
            c * s.features[2] * s.features[3] + d;
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

meta::MamlOptions equivalence_opts(meta::MetaAlgorithm algo) {
  meta::MamlOptions o;
  o.epochs = 3;
  o.tasks_per_workload = 5;  // 10 tasks/epoch: exercises a partial final batch
  o.support = 5;
  o.query = 15;
  o.inner_steps = 2;
  o.inner_lr = 0.05F;
  o.outer_lr = 2e-3F;
  o.meta_batch = 4;
  o.val_tasks_per_workload = 3;
  o.seed = 7;
  o.algorithm = algo;
  return o;
}

struct MamlRun {
  std::vector<meta::EpochTrace> trace;
  std::vector<float> best_params;
  std::vector<float> live_params;
  std::vector<double> attention_sum;
  size_t attention_count = 0;
};

MamlRun run_maml(meta::MetaAlgorithm algo, size_t threads) {
  metadse::set_threads(threads);
  nn::TransformerConfig cfg{.n_tokens = kFeatures, .d_model = 8, .n_heads = 2,
                            .n_layers = 1, .d_ff = 16, .n_outputs = 1};
  meta::MamlTrainer trainer(cfg, equivalence_opts(algo));
  const std::vector<data::Dataset> train = {
      family_dataset(1.0F, 0.5F, 0.8F, 0.2F, 60, 1),
      family_dataset(0.6F, 1.0F, 0.2F, 0.5F, 60, 2)};
  const std::vector<data::Dataset> val = {
      family_dataset(0.8F, 0.8F, 1.0F, 0.3F, 60, 3)};
  trainer.train(train, val);
  MamlRun run;
  run.trace = trainer.trace();
  run.best_params = trainer.best_model().flatten_parameters();
  run.live_params = trainer.model().flatten_parameters();
  run.attention_sum = trainer.attention_sum();
  run.attention_count = trainer.attention_count();
  return run;
}

void expect_same_run(const MamlRun& ref, const MamlRun& got, size_t threads) {
  ASSERT_EQ(got.trace.size(), ref.trace.size()) << "threads=" << threads;
  for (size_t e = 0; e < ref.trace.size(); ++e) {
    // Bitwise: these are doubles produced by the same serial reduction.
    EXPECT_EQ(got.trace[e].train_meta_loss, ref.trace[e].train_meta_loss)
        << "threads=" << threads << " epoch=" << e;
    EXPECT_EQ(got.trace[e].val_loss, ref.trace[e].val_loss)
        << "threads=" << threads << " epoch=" << e;
    EXPECT_EQ(got.trace[e].skipped_tasks, ref.trace[e].skipped_tasks);
    EXPECT_EQ(got.trace[e].skipped_batches, ref.trace[e].skipped_batches);
    EXPECT_EQ(got.trace[e].rolled_back, ref.trace[e].rolled_back);
    EXPECT_EQ(got.trace[e].outer_lr, ref.trace[e].outer_lr);
  }
  EXPECT_EQ(got.best_params, ref.best_params) << "threads=" << threads;
  EXPECT_EQ(got.live_params, ref.live_params) << "threads=" << threads;
  EXPECT_EQ(got.attention_sum, ref.attention_sum) << "threads=" << threads;
  EXPECT_EQ(got.attention_count, ref.attention_count) << "threads=" << threads;
}

TEST(ParallelEquivalence, MamlFomamlBitwiseIdenticalAcrossThreads) {
  ThreadGuard guard;
  const MamlRun ref = run_maml(meta::MetaAlgorithm::kFomaml, 1);
  for (size_t threads : kThreadSweep) {
    if (threads == 1) continue;
    expect_same_run(ref, run_maml(meta::MetaAlgorithm::kFomaml, threads),
                    threads);
  }
}

TEST(ParallelEquivalence, MamlReptileBitwiseIdenticalAcrossThreads) {
  ThreadGuard guard;
  const MamlRun ref = run_maml(meta::MetaAlgorithm::kReptile, 1);
  expect_same_run(ref, run_maml(meta::MetaAlgorithm::kReptile, 8), 8);
}

TEST(ParallelEquivalence, MamlAnilBitwiseIdenticalAcrossThreads) {
  ThreadGuard guard;
  const MamlRun ref = run_maml(meta::MetaAlgorithm::kAnil, 1);
  expect_same_run(ref, run_maml(meta::MetaAlgorithm::kAnil, 8), 8);
}

// -- dataset generation under fault injection --------------------------------

struct GenRun {
  data::Dataset ds;
  data::GenerationReport report;
  std::vector<size_t> backoffs;
};

GenRun run_generate(size_t threads) {
  metadse::set_threads(threads);
  const auto& space = arch::DesignSpace::table1();
  metadse::workload::SpecSuite suite;
  data::DatasetGenerator gen(space);
  sim::FaultPlan plan;
  plan.fail_rate = 0.2;
  plan.timeout_rate = 0.1;
  plan.nan_rate = 0.1;
  plan.garbage_rate = 0.1;
  plan.persistent_fraction = 0.5;
  plan.seed = 0xFA17;
  gen.set_fault_plan(plan);
  gen.set_retry_policy({.max_attempts = 3, .backoff_base_ms = 10,
                        .backoff_cap_ms = 1000});
  GenRun run;
  gen.set_backoff_hook([&](size_t ms) { run.backoffs.push_back(ms); });
  mt::Rng rng(2025);
  run.ds = gen.generate(suite.by_name("605.mcf_s"), 60, rng,
                        /*latin_hypercube=*/true, &run.report);
  return run;
}

TEST(ParallelEquivalence, FaultyDatasetGenerationIdenticalAcrossThreads) {
  ThreadGuard guard;
  const GenRun ref = run_generate(1);
  ASSERT_GT(ref.report.dropped() + ref.report.retries, 0U)
      << "fault plan too weak to exercise the quarantine path";
  for (size_t threads : kThreadSweep) {
    if (threads == 1) continue;
    const GenRun got = run_generate(threads);
    ASSERT_EQ(got.ds.samples.size(), ref.ds.samples.size());
    for (size_t i = 0; i < ref.ds.samples.size(); ++i) {
      EXPECT_EQ(got.ds.samples[i].config, ref.ds.samples[i].config);
      EXPECT_EQ(got.ds.samples[i].features, ref.ds.samples[i].features);
      EXPECT_EQ(got.ds.samples[i].ipc, ref.ds.samples[i].ipc);
      EXPECT_EQ(got.ds.samples[i].power, ref.ds.samples[i].power);
    }
    EXPECT_EQ(got.report.generated, ref.report.generated);
    EXPECT_EQ(got.report.retries, ref.report.retries);
    EXPECT_EQ(got.report.failures, ref.report.failures);
    EXPECT_EQ(got.report.timeouts, ref.report.timeouts);
    EXPECT_EQ(got.report.nonfinite_labels, ref.report.nonfinite_labels);
    EXPECT_EQ(got.report.implausible_labels, ref.report.implausible_labels);
    EXPECT_EQ(got.report.backoff_ms, ref.report.backoff_ms);
    ASSERT_EQ(got.report.quarantined.size(), ref.report.quarantined.size());
    for (size_t i = 0; i < ref.report.quarantined.size(); ++i) {
      EXPECT_EQ(got.report.quarantined[i], ref.report.quarantined[i]);
    }
    EXPECT_EQ(got.backoffs, ref.backoffs) << "threads=" << threads;
  }
}

// -- tree ensembles ----------------------------------------------------------

void make_regression_data(baselines::FeatureMatrix& x, std::vector<float>& y,
                          size_t n, uint64_t seed) {
  mt::Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> row(6);
    for (auto& v : row) v = rng.uniform();
    y.push_back(2.0F * row[0] - row[3] + 0.5F * row[5]);
    x.push_back(std::move(row));
  }
}

TEST(ParallelEquivalence, RandomForestIdenticalAcrossThreads) {
  ThreadGuard guard;
  baselines::FeatureMatrix x;
  std::vector<float> y;
  make_regression_data(x, y, 120, 21);
  std::vector<float> ref;
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    baselines::ForestOptions opts;
    opts.n_trees = 12;
    baselines::RandomForest forest(opts);
    forest.fit(x, y);
    std::vector<float> preds;
    for (const auto& row : x) preds.push_back(forest.predict(row));
    if (threads == 1) {
      ref = preds;
      continue;
    }
    EXPECT_EQ(preds, ref) << "threads=" << threads;
  }
}

// -- guarded, journaled exploration -------------------------------------------

namespace ex = metadse::explore;

struct DseRun {
  ex::ParetoArchive front;
  ex::RunReport report;
};

/// A guarded + journaled exploration whose primary does real parallel work
/// (a RandomForest fit + per-batch predictions go through the pool) under a
/// deterministic fault injector. deadline_ms stays 0: wall clocks are the
/// one knob that cannot be reproduced across runs.
DseRun run_guarded_dse(size_t threads, const std::string& journal_path) {
  metadse::set_threads(threads);
  const auto& space = arch::DesignSpace::table1();
  metadse::workload::SpecSuite suite;
  const auto& wl = suite.by_name("605.mcf_s");
  data::DatasetGenerator gen(space);

  // Surrogate rung: a forest fitted on simulator labels (parallel fit).
  baselines::FeatureMatrix x;
  std::vector<float> y;
  mt::Rng rng(31);
  for (const auto& c : space.sample_latin_hypercube(80, rng)) {
    x.push_back(space.normalize(c));
    y.push_back(static_cast<float>(gen.evaluate(c, wl).first));
    x.back().shrink_to_fit();
  }
  baselines::ForestOptions fopts;
  fopts.n_trees = 8;
  auto forest = std::make_shared<baselines::RandomForest>(fopts);
  forest->fit(x, y);

  sim::FaultInjector injector(
      {.fail_rate = 0.15, .timeout_rate = 0.1, .persistent_fraction = 0.4,
       .seed = 0xFA17});

  DseRun run;
  ex::GuardedEvaluator guard(
      [&](const arch::Config& c, size_t attempt) {
        const uint64_t key = sim::FaultInjector::point_key(c);
        switch (injector.outcome(key, attempt)) {
          case sim::FaultOutcome::kFail:
            throw sim::SimulationFailure("injected");
          case sim::FaultOutcome::kTimeout:
            throw sim::SimulationTimeout("injected");
          default:
            break;
        }
        const auto [ipc, power] = gen.evaluate(c, wl);
        (void)ipc;
        return ex::Objective{
            static_cast<double>(forest->predict(space.normalize(c))), power};
      },
      ex::GuardOptions{.max_retries = 1, .breaker_threshold = 3},
      &run.report,
      [&](const arch::Config& c) {
        const auto [ipc, power] = gen.evaluate(c, wl);
        return ex::Objective{ipc, power};
      });

  ex::EvolutionaryExplorer evo({.initial_samples = 12, .iterations = 24,
                                .mutations_per_step = 2, .seed = 9,
                                .eval_batch = 4});
  std::remove(journal_path.c_str());
  std::remove((journal_path + ".snapshot").c_str());
  run.front = evo.explore(space, guard.as_batch_evaluator(),
                          ex::JournalOptions{.path = journal_path},
                          &run.report);
  std::remove(journal_path.c_str());
  std::remove((journal_path + ".snapshot").c_str());
  return run;
}

TEST(ParallelEquivalence, GuardedJournaledDseIdenticalAcrossThreads) {
  ThreadGuard guard;
  const std::string path =
      ::testing::TempDir() + "mdse_parallel_guarded.journal";
  const DseRun ref = run_guarded_dse(1, path);
  ASSERT_GT(ref.report.retries + ref.report.dropped() +
                ref.report.baseline_evals,
            0U)
      << "fault plan too weak to exercise the ladder";
  for (size_t threads : kThreadSweep) {
    if (threads == 1) continue;
    const DseRun got = run_guarded_dse(threads, path);
    ASSERT_EQ(got.front.size(), ref.front.size()) << "threads=" << threads;
    for (size_t i = 0; i < ref.front.size(); ++i) {
      EXPECT_EQ(got.front.entries()[i].config, ref.front.entries()[i].config);
      EXPECT_EQ(got.front.entries()[i].objective.ipc,
                ref.front.entries()[i].objective.ipc);
      EXPECT_EQ(got.front.entries()[i].objective.power,
                ref.front.entries()[i].objective.power);
    }
    // The full event sequence — not just the archive — must be identical.
    EXPECT_EQ(got.report.evaluated, ref.report.evaluated);
    EXPECT_EQ(got.report.retries, ref.report.retries);
    EXPECT_EQ(got.report.failures, ref.report.failures);
    EXPECT_EQ(got.report.timeouts, ref.report.timeouts);
    EXPECT_EQ(got.report.backoff_ms, ref.report.backoff_ms);
    EXPECT_EQ(got.report.breaker_trips, ref.report.breaker_trips);
    EXPECT_EQ(got.report.baseline_evals, ref.report.baseline_evals);
    EXPECT_EQ(got.report.final_level, ref.report.final_level);
    EXPECT_EQ(got.report.journal_records, ref.report.journal_records);
    ASSERT_EQ(got.report.quarantined.size(), ref.report.quarantined.size());
    for (size_t i = 0; i < ref.report.quarantined.size(); ++i) {
      EXPECT_EQ(got.report.quarantined[i], ref.report.quarantined[i]);
    }
  }
}

TEST(ParallelEquivalence, GbrtIdenticalAcrossThreads) {
  ThreadGuard guard;
  baselines::FeatureMatrix x;
  std::vector<float> y;
  make_regression_data(x, y, 120, 22);
  std::vector<float> ref;
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    baselines::GbrtOptions opts;
    opts.n_rounds = 15;
    baselines::Gbrt model(opts);
    model.fit(x, y);
    std::vector<float> preds;
    for (const auto& row : x) preds.push_back(model.predict(row));
    if (threads == 1) {
      ref = preds;
      continue;
    }
    EXPECT_EQ(preds, ref) << "threads=" << threads;
  }
}

}  // namespace
