// Reduced-precision serving tier (DESIGN.md §15): bf16 conversion semantics
// (RNE, NaN quieting), int8 weight packing against an exact int32 reference
// GEMM, row-partition and attention-group bitwise invariance (the
// thread-count determinism claim), the fast fp32 row kernels against eager
// references, per-precision plan keys, calibration capture + checkpoint
// round-trip (with corruption rejection), the Spearman rank-correlation
// error contract across every workload in the suite at bf16 and int8, the
// forced-contract-trip fp32 fallback (archive bitwise-identical to a plain
// fp32 run), ServerStats quant accounting, and served int8 fronts that are
// byte-identical at threads 1/2/8.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/metadse.hpp"
#include "core/parallel.hpp"
#include "nn/plan.hpp"
#include "nn/serialize.hpp"
#include "nn/transformer.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "tensor/kernels.hpp"
#include "tensor/quant.hpp"

namespace core = metadse::core;
namespace data = metadse::data;
namespace ex = metadse::explore;
namespace nn = metadse::nn;
namespace serve = metadse::serve;
namespace t = metadse::tensor;
namespace q = metadse::tensor::quant;
namespace kern = metadse::tensor::kern;

namespace {

std::vector<float> random_vec(size_t n, uint64_t seed, float lo = -1.0F,
                              float hi = 1.0F) {
  t::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

void expect_bitwise(const std::vector<float>& got,
                    const std::vector<float>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    uint32_t g;
    uint32_t w;
    std::memcpy(&g, &got[i], 4);
    std::memcpy(&w, &want[i], 4);
    EXPECT_EQ(g, w) << what << " element " << i;
  }
}

void expect_near(const std::vector<float>& got, const std::vector<float>& want,
                 float tol, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol) << what << " element " << i;
  }
}

}  // namespace

// -- bf16 conversion ----------------------------------------------------------

TEST(QuantBf16, RoundTripSpecialsAndRounding) {
  // Values exactly representable in bf16 survive the round trip bitwise.
  for (float v : {0.0F, -0.0F, 1.0F, -2.5F, 0.15625F, 65280.0F}) {
    EXPECT_EQ(q::f32_from_bf16(q::bf16_from_f32(v)), v);
  }
  // Round-to-nearest-even at the 8-bit mantissa boundary: 1 + 2^-9 is
  // exactly halfway between 1.0 and 1 + 2^-8 and must round to the even
  // candidate (1.0); 1 + 3*2^-9 rounds up to 1 + 2^-7.
  EXPECT_EQ(q::f32_from_bf16(q::bf16_from_f32(1.0F + 0x1.0p-9F)), 1.0F);
  EXPECT_EQ(q::f32_from_bf16(q::bf16_from_f32(1.0F + 0x3.0p-9F)),
            1.0F + 0x1.0p-7F);
  // Infinities pass through; NaNs stay NaN (quieted, never collapse to Inf).
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(q::f32_from_bf16(q::bf16_from_f32(inf)), inf);
  EXPECT_EQ(q::f32_from_bf16(q::bf16_from_f32(-inf)), -inf);
  float payload_nan;
  uint32_t bits = 0x7F800001U;  // signaling NaN whose payload truncates to 0
  std::memcpy(&payload_nan, &bits, 4);
  EXPECT_TRUE(std::isnan(q::f32_from_bf16(q::bf16_from_f32(payload_nan))));

  // Bulk encode/decode agrees with the scalar helpers.
  const auto src = random_vec(257, 11, -8.0F, 8.0F);
  std::vector<uint16_t> enc(src.size());
  std::vector<float> dec(src.size());
  q::bf16_encode(src.data(), src.size(), enc.data());
  q::bf16_decode(enc.data(), src.size(), dec.data());
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(enc[i], q::bf16_from_f32(src[i])) << "element " << i;
    EXPECT_EQ(dec[i], q::f32_from_bf16(enc[i])) << "element " << i;
    EXPECT_NEAR(dec[i], src[i], std::fabs(src[i]) / 128.0F + 1e-6F);
  }
}

// -- int8 packing and GEMM ----------------------------------------------------

namespace {

/// Scalar reference of the packed-weight quantization contract.
int8_t ref_quant_w(float w, float scale) {
  const long r = lrintf(w / scale);
  return static_cast<int8_t>(r < -127 ? -127 : (r > 127 ? 127 : r));
}

}  // namespace

TEST(QuantInt8, WeightPackingLayoutAndColComp) {
  const size_t K = 5;
  const size_t N = 3;
  const auto w = random_vec(K * N, 21, -2.0F, 2.0F);
  q::QuantizedWeight qw;
  q::quantize_weight_kn(w.data(), K, N, &qw);
  ASSERT_EQ(qw.K, K);
  ASSERT_EQ(qw.N, N);
  ASSERT_EQ(qw.K4, (K + 3) / 4);
  ASSERT_EQ(qw.packed.size(), qw.K4 * 4 * N);
  ASSERT_EQ(qw.col_comp.size(), N);
  EXPECT_FLOAT_EQ(qw.scale, q::scale_for(q::absmax(w.data(), K * N)));
  for (size_t n = 0; n < N; ++n) {
    int32_t colsum = 0;
    for (size_t k = 0; k < qw.K4 * 4; ++k) {
      const int8_t want =
          k < K ? ref_quant_w(w[k * N + n], qw.scale) : int8_t{0};
      EXPECT_EQ(qw.packed[(k / 4) * N * 4 + n * 4 + (k % 4)], want)
          << "k=" << k << " n=" << n;
      colsum += want;
    }
    EXPECT_EQ(qw.col_comp[n], 128 * colsum) << "n=" << n;
  }
}

TEST(QuantInt8, ActQuantClampOffsetAndPadding) {
  const size_t M = 2;
  const size_t K = 5;
  const size_t ldq = 8;  // K4*4 for K=5
  const std::vector<float> a = {0.0F,  1.0F,  -1.0F, 900.0F, -900.0F,
                                0.25F, -0.5F, 2.0F,  -2.0F,  0.49F};
  std::vector<uint8_t> out(M * ldq, 7);
  const float scale = 1.0F;
  q::quantize_act_u8(a.data(), M, K, scale, out.data(), ldq);
  const std::vector<uint8_t> want_row0 = {128, 129, 127, 255, 1, 128, 128, 128};
  const std::vector<uint8_t> want_row1 = {128, 128, 130, 126, 128,
                                          128, 128, 128};
  for (size_t j = 0; j < ldq; ++j) {
    EXPECT_EQ(out[j], want_row0[j]) << "row 0 col " << j;
    EXPECT_EQ(out[ldq + j], want_row1[j]) << "row 1 col " << j;
  }
}

TEST(QuantInt8, GemmMatchesExactInt32Reference) {
  const size_t M = 13;
  const size_t K = 10;
  const size_t N = 19;  // exercises the vector N loop plus a scalar tail
  const auto a = random_vec(M * K, 31, -3.0F, 3.0F);
  const auto w = random_vec(K * N, 32, -1.5F, 1.5F);
  const auto bias = random_vec(N, 33);
  const auto res = random_vec(M * N, 34);

  q::QuantizedWeight qw;
  q::quantize_weight_kn(w.data(), K, N, &qw);
  const float as = q::scale_for(q::absmax(a.data(), M * K));
  const size_t ldq = qw.K4 * 4;
  std::vector<uint8_t> aq(M * ldq);
  q::quantize_act_u8(a.data(), M, K, as, aq.data(), ldq);
  const float dq = as * qw.scale;

  // Exact int32 reference through the same dequant algebra.
  std::vector<float> ref(M * N);
  for (size_t m = 0; m < M; ++m) {
    for (size_t n = 0; n < N; ++n) {
      int32_t acc = 0;
      for (size_t k = 0; k < ldq; ++k) {
        const int8_t wq =
            k < K ? ref_quant_w(w[k * N + n], qw.scale) : int8_t{0};
        acc += static_cast<int32_t>(aq[m * ldq + k]) * wq;
      }
      ref[m * N + n] = static_cast<float>(acc - qw.col_comp[n]) * dq;
    }
  }

  // epi 0 (no epilogue) must reproduce the reference bitwise: int32
  // accumulation is exact, dequant is one fp32 multiply.
  std::vector<float> out(M * N);
  q::gemm_u8s8(aq.data(), ldq, qw, dq, nullptr, nullptr, N, 0, out.data(), 0,
               M);
  expect_bitwise(out, ref, "epi0");

  // Epilogues track the executor's fp32 rounding steps.
  std::vector<float> want(M * N);
  q::gemm_u8s8(aq.data(), ldq, qw, dq, bias.data(), nullptr, N, 1, out.data(),
               0, M);
  for (size_t m = 0; m < M; ++m) {
    for (size_t n = 0; n < N; ++n) want[m * N + n] = ref[m * N + n] + bias[n];
  }
  expect_near(out, want, 1e-5F, "epi1");

  q::gemm_u8s8(aq.data(), ldq, qw, dq, bias.data(), res.data(), N, 2,
               out.data(), 0, M);
  for (size_t m = 0; m < M; ++m) {
    for (size_t n = 0; n < N; ++n) {
      want[m * N + n] = res[m * N + n] + (ref[m * N + n] + bias[n]);
    }
  }
  expect_near(out, want, 1e-5F, "epi2");

  // epi 3 is gelu(bias + x) via the tier's fast row kernel: applying that
  // kernel to the epi-0 output must reproduce the fused path bitwise.
  want = ref;
  for (size_t m = 0; m < M; ++m) {
    q::gelu_bias_row_fast(want.data() + m * N, bias.data(), N);
  }
  q::gemm_u8s8(aq.data(), ldq, qw, dq, bias.data(), nullptr, N, 3, out.data(),
               0, M);
  expect_bitwise(out, want, "epi3 vs gelu_bias_row_fast(epi0)");
}

TEST(QuantInt8, GemmRowPartitionInvariance) {
  const size_t M = 37;
  const size_t K = 32;
  const size_t N = 32;
  const auto a = random_vec(M * K, 41, -2.0F, 2.0F);
  const auto w = random_vec(K * N, 42);
  const auto bias = random_vec(N, 43);
  q::QuantizedWeight qw;
  q::quantize_weight_kn(w.data(), K, N, &qw);
  const float as = q::scale_for(q::absmax(a.data(), M * K));
  const size_t ldq = qw.K4 * 4;
  std::vector<uint8_t> aq(M * ldq);
  q::quantize_act_u8(a.data(), M, K, as, aq.data(), ldq);

  std::vector<float> whole(M * N);
  q::gemm_u8s8(aq.data(), ldq, qw, as * qw.scale, bias.data(), nullptr, N, 3,
               whole.data(), 0, M);
  std::vector<float> split(M * N, -1.0F);
  for (auto [m0, m1] : {std::pair<size_t, size_t>{0, 13},
                        std::pair<size_t, size_t>{13, 29},
                        std::pair<size_t, size_t>{29, 37}}) {
    q::gemm_u8s8(aq.data(), ldq, qw, as * qw.scale, bias.data(), nullptr, N, 3,
                 split.data(), m0, m1);
  }
  expect_bitwise(split, whole, "row-partitioned gemm_u8s8");
}

TEST(QuantBf16, GemmMatchesDecodedReferenceAndPartitions) {
  const size_t M = 21;
  const size_t K = 32;
  const size_t N = 19;
  const auto a = random_vec(M * K, 51, -2.0F, 2.0F);
  const auto w = random_vec(K * N, 52);
  const auto bias = random_vec(N, 53);
  q::Bf16Weight bw;
  q::bf16_pack_weight(w.data(), K, N, &bw);
  ASSERT_EQ(bw.bytes(), K * N * 2);

  // fp32 reference over the decoded bf16 weights, ascending-k accumulate.
  std::vector<float> wd(K * N);
  q::bf16_decode(bw.w.data(), K * N, wd.data());
  std::vector<float> ref(M * N);
  for (size_t m = 0; m < M; ++m) {
    for (size_t n = 0; n < N; ++n) {
      float acc = 0.0F;
      for (size_t k = 0; k < K; ++k) {
        acc = std::fma(a[m * K + k], wd[k * N + n], acc);
      }
      ref[m * N + n] = acc + bias[n];
    }
  }
  std::vector<float> out(M * N);
  q::gemm_bf16(a.data(), bw, bias.data(), nullptr, N, 1, out.data(), 0, M);
  expect_near(out, ref, 1e-5F, "gemm_bf16 epi1");

  std::vector<float> split(M * N, -1.0F);
  q::gemm_bf16(a.data(), bw, bias.data(), nullptr, N, 1, split.data(), 0, 7);
  q::gemm_bf16(a.data(), bw, bias.data(), nullptr, N, 1, split.data(), 7, 21);
  expect_bitwise(split, out, "row-partitioned gemm_bf16");
}

// -- fast fp32 row kernels ----------------------------------------------------

TEST(QuantKernels, FastRowKernelsTrackEagerMath) {
  const size_t rows = 33;
  const size_t n = 32;
  const auto x = random_vec(rows * n, 61, -4.0F, 4.0F);
  const auto gamma = random_vec(n, 62, 0.5F, 1.5F);
  const auto beta = random_vec(n, 63);
  const float eps = 1e-5F;
  std::vector<float> fast(rows * n);
  q::layer_norm_affine_rows_fast(x.data(), gamma.data(), beta.data(),
                                 fast.data(), rows, n, eps);
  std::vector<float> ref(rows * n);
  for (size_t r = 0; r < rows; ++r) {
    double mu = 0.0;
    for (size_t j = 0; j < n; ++j) mu += x[r * n + j];
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double d = x[r * n + j] - mu;
      var += d * d;
    }
    var /= static_cast<double>(n);
    const double rstd = 1.0 / std::sqrt(var + eps);
    for (size_t j = 0; j < n; ++j) {
      ref[r * n + j] = static_cast<float>((x[r * n + j] - mu) * rstd) *
                           gamma[j] +
                       beta[j];
    }
  }
  expect_near(fast, ref, 2e-4F, "layer_norm_affine_rows_fast");

  const size_t gw = 37;  // full lane + masked tail
  auto row = random_vec(gw, 64, -5.0F, 5.0F);
  const auto bias = random_vec(gw, 65);
  std::vector<float> gref(gw);
  for (size_t j = 0; j < gw; ++j) gref[j] = kern::gelu_fwd(row[j] + bias[j]);
  q::gelu_bias_row_fast(row.data(), bias.data(), gw);
  expect_near(row, gref, 2e-5F, "gelu_bias_row_fast");
}

TEST(QuantKernels, FattnTracksEagerAndIsGroupPartitionInvariant) {
  // The planner's fused-attention shapes: B groups of (S=24, Dh=8, H=4).
  const size_t B = 6;
  const size_t S = 24;
  const size_t Dh = 8;
  const size_t H = 4;
  const size_t D = H * Dh;
  const size_t G = B * H;
  const float scale = std::sqrt(static_cast<float>(Dh));
  const float eps = 1e-9F;
  const auto qv = random_vec(B * S * D, 71);
  const auto kv = random_vec(B * S * D, 72);
  const auto vv = random_vec(B * S * D, 73);
  auto mask = random_vec(S * S, 74, 0.0F, 1.0F);
  for (auto& m : mask) m = m > 0.3F ? 1.0F : 0.0F;

  // Eager reference per (batch, head) group via the bitwise row kernels.
  std::vector<float> ref(B * S * D);
  std::vector<float> sc(S * S);
  for (size_t g = 0; g < G; ++g) {
    const size_t bb = g / H;
    const size_t h = g % H;
    const float* qs = qv.data() + bb * S * D + h * Dh;
    const float* ks = kv.data() + bb * S * D + h * Dh;
    const float* vs = vv.data() + bb * S * D + h * Dh;
    float* os = ref.data() + bb * S * D + h * Dh;
    for (size_t m = 0; m < S; ++m) {
      for (size_t n = 0; n < S; ++n) {
        float acc = 0.0F;
        for (size_t d = 0; d < Dh; ++d) {
          acc += qs[m * D + d] * ks[n * D + d];
        }
        sc[m * S + n] = acc / scale;
      }
      kern::softmax_row(sc.data() + m * S, sc.data() + m * S, S);
      kern::masked_renorm_row(sc.data() + m * S, mask.data() + m * S,
                              sc.data() + m * S, S, eps);
    }
    for (size_t m = 0; m < S; ++m) {
      for (size_t d = 0; d < Dh; ++d) {
        float acc = 0.0F;
        for (size_t n = 0; n < S; ++n) {
          acc += sc[m * S + n] * vs[n * D + d];
        }
        os[m * D + d] = acc;
      }
    }
  }

  std::vector<float> out(B * S * D);
  q::fattn_rows_fast(S, Dh, D, H, scale, eps, qv.data(), kv.data(), vv.data(),
                     mask.data(), out.data(), 0, G);
  expect_near(out, ref, 5e-4F, "fattn_rows_fast masked");

  // Group partitioning (what parallel_for_blocks dispatches) is bitwise.
  std::vector<float> split(B * S * D, -1.0F);
  q::fattn_rows_fast(S, Dh, D, H, scale, eps, qv.data(), kv.data(), vv.data(),
                     mask.data(), split.data(), 0, 5);
  q::fattn_rows_fast(S, Dh, D, H, scale, eps, qv.data(), kv.data(), vv.data(),
                     mask.data(), split.data(), 5, 17);
  q::fattn_rows_fast(S, Dh, D, H, scale, eps, qv.data(), kv.data(), vv.data(),
                     mask.data(), split.data(), 17, G);
  expect_bitwise(split, out, "group-partitioned fattn_rows_fast");

  // Unmasked variant against plain softmax rows.
  for (size_t g = 0; g < G; ++g) {
    const size_t bb = g / H;
    const size_t h = g % H;
    const float* qs = qv.data() + bb * S * D + h * Dh;
    const float* ks = kv.data() + bb * S * D + h * Dh;
    const float* vs = vv.data() + bb * S * D + h * Dh;
    float* os = ref.data() + bb * S * D + h * Dh;
    for (size_t m = 0; m < S; ++m) {
      for (size_t n = 0; n < S; ++n) {
        float acc = 0.0F;
        for (size_t d = 0; d < Dh; ++d) {
          acc += qs[m * D + d] * ks[n * D + d];
        }
        sc[m * S + n] = acc / scale;
      }
      kern::softmax_row(sc.data() + m * S, sc.data() + m * S, S);
    }
    for (size_t m = 0; m < S; ++m) {
      for (size_t d = 0; d < Dh; ++d) {
        float acc = 0.0F;
        for (size_t n = 0; n < S; ++n) {
          acc += sc[m * S + n] * vs[n * D + d];
        }
        os[m * D + d] = acc;
      }
    }
  }
  q::fattn_rows_fast(S, Dh, D, H, scale, eps, qv.data(), kv.data(), vv.data(),
                     nullptr, out.data(), 0, G);
  expect_near(out, ref, 5e-4F, "fattn_rows_fast unmasked");
}

// -- planner keys and calibration ---------------------------------------------

namespace {

nn::TransformerConfig small_cfg() {
  return {.n_tokens = 24, .d_model = 32, .n_heads = 4,
          .n_layers = 2, .d_ff = 64, .n_outputs = 1};
}

t::Tensor random_input(size_t batch, size_t n_tokens, uint64_t seed) {
  t::Rng rng(seed);
  return t::Tensor::uniform({batch, n_tokens}, rng, 0.0F, 1.0F);
}

}  // namespace

TEST(QuantPlan, PerPrecisionPlanKeysAreDistinct) {
  t::Rng rng(5);
  nn::TransformerRegressor model(small_cfg(), rng);
  const auto fp32 = nn::plan::predict_plan_key(model, 32, true);
  const auto bf16 =
      nn::plan::predict_plan_key(model, 32, true, q::Precision::kBf16);
  const auto int8 =
      nn::plan::predict_plan_key(model, 32, true, q::Precision::kInt8);
  // fp32 keys keep the pre-quantization format so existing registries and
  // journal tooling see unchanged identifiers.
  EXPECT_EQ(fp32.find(":q"), std::string::npos) << fp32;
  EXPECT_NE(bf16.find(":q"), std::string::npos) << bf16;
  EXPECT_NE(int8.find(":q"), std::string::npos) << int8;
  EXPECT_NE(bf16, int8);
  EXPECT_NE(fp32, bf16);
  // Keys separate by batch as before.
  EXPECT_NE(int8, nn::plan::predict_plan_key(model, 64, true,
                                             q::Precision::kInt8));
}

TEST(QuantCalib, CaptureSerializeRoundTripAndCorruption) {
  t::Rng rng(6);
  nn::TransformerRegressor model(small_cfg(), rng);
  EXPECT_FALSE(model.has_quant_calibration());
  const auto x = random_input(8, 24, 9);
  const auto gen0 = model.quant_calibration_gen();
  ASSERT_TRUE(nn::plan::capture_calibration(model, x.data().data(), 8));
  ASSERT_TRUE(model.has_quant_calibration());
  EXPECT_GT(model.quant_calibration_gen(), gen0);
  const auto& table = model.quant_calibration();
  ASSERT_FALSE(table.empty());
  for (float s : table) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GT(s, 0.0F) << "absmax scales must be positive";
  }
  // Re-capturing on the same support batch is deterministic.
  t::Rng rng2(6);
  nn::TransformerRegressor model2(small_cfg(), rng2);
  ASSERT_TRUE(nn::plan::capture_calibration(model2, x.data().data(), 8));
  expect_bitwise(model2.quant_calibration(), table, "re-captured table");

  const std::string dir = ::testing::TempDir() + "quant_calib";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/model.calib";
  nn::save_calibration(table, path);
  expect_bitwise(nn::load_calibration(path), table, "calibration round-trip");

  // A truncated sidecar must be rejected, not silently half-loaded.
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() > 5 ? bytes.size() - 5
                                                            : 0));
  }
  EXPECT_THROW((void)nn::load_calibration(path), std::runtime_error);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a calibration table";
  }
  EXPECT_THROW((void)nn::load_calibration(path), std::runtime_error);
  std::filesystem::remove_all(dir);
}

// -- error contract across the workload suite ---------------------------------

namespace {

core::FrameworkOptions tiny_options() {
  core::FrameworkOptions o;
  o.samples_per_workload = 200;
  o.maml.epochs = 2;
  o.maml.tasks_per_workload = 6;
  o.maml.val_tasks_per_workload = 2;
  o.maml.seed = 3;
  o.seed = 17;
  return o;
}

core::MetaDseFramework& shared_framework() {
  static core::MetaDseFramework* fw = [] {
    auto* f = new core::MetaDseFramework(tiny_options());
    f->pretrain();
    return f;
  }();
  return *fw;
}

data::Dataset support_of(core::MetaDseFramework& fw, const std::string& name,
                         size_t n = 8) {
  const auto& ds = fw.dataset(name);
  data::Dataset support;
  support.workload = name;
  for (size_t i = 0; i < n && i < ds.samples.size(); ++i) {
    support.samples.push_back(ds.samples[i]);
  }
  return support;
}

core::MetaDseFramework::DseOptions small_dse() {
  core::MetaDseFramework::DseOptions opts;
  opts.explorer = {.initial_samples = 8, .iterations = 16,
                   .mutations_per_step = 2, .seed = 13, .eval_batch = 4};
  opts.guard.ipc_min = -128.0;  // a tiny surrogate may dip below zero
  return opts;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// config-id column of a formatted front.
std::set<std::string> front_ids(const std::string& front) {
  std::set<std::string> ids;
  std::istringstream lines(front);
  std::string line;
  while (std::getline(lines, line)) {
    const auto sp = line.find(' ');
    if (sp != std::string::npos) ids.insert(line.substr(0, sp));
  }
  return ids;
}

}  // namespace

TEST(QuantContractSuite, SpearmanHoldsAcrossAllWorkloads) {
  auto& fw = shared_framework();
  const auto& workloads = fw.suite().workloads();
  ASSERT_GE(workloads.size(), 17U);
  for (const auto& wl : workloads) {
    const auto support = support_of(fw, wl.name());
    const auto predictor = fw.adapt_to(support);
    ASSERT_TRUE(predictor.model->has_quant_calibration()) << wl.name();
    for (auto prec : {q::Precision::kBf16, q::Precision::kInt8}) {
      const auto contract =
          core::check_quant_contract(predictor, fw.space(), prec);
      EXPECT_TRUE(contract.passed)
          << wl.name() << " " << q::to_string(prec) << " rho=" << contract.rho;
      EXPECT_GE(contract.rho, 0.99)
          << wl.name() << " " << q::to_string(prec);
      EXPECT_EQ(contract.n_points, 128U);
    }
    // fp32 trivially passes with perfect rank agreement.
    const auto fp32 = core::check_quant_contract(predictor, fw.space(),
                                                 q::Precision::kFp32);
    EXPECT_TRUE(fp32.passed) << wl.name();
    EXPECT_DOUBLE_EQ(fp32.rho, 1.0) << wl.name();
  }
}

TEST(QuantContractSuite, ForcedTripFallsBackToBitwiseFp32Run) {
  auto& fw = shared_framework();
  const std::string workload = "605.mcf_s";
  const auto support = support_of(fw, workload);
  const auto predictor = fw.adapt_to(support);

  auto opts = small_dse();
  const auto fp32_archive = fw.run_dse(predictor, support, workload, opts);
  EXPECT_FALSE(fw.run_report().quant_contract_tripped);
  const auto fp32_front = serve::MetaDseSessionEngine::format_front(
      fw.space(), fp32_archive);

  // min_rho = 1.1 is unsatisfiable (rho <= 1), so the contract must trip
  // and the run must serve fp32 — bitwise-identical to the plain fp32 run.
  opts.precision = q::Precision::kInt8;
  opts.quant_contract_min_rho = 1.1;
  const auto tripped_archive = fw.run_dse(predictor, support, workload, opts);
  EXPECT_TRUE(fw.run_report().quant_contract_tripped);
  EXPECT_EQ(serve::MetaDseSessionEngine::format_front(fw.space(),
                                                      tripped_archive),
            fp32_front);

  // With the real threshold the contract holds. Rank agreement at rho >=
  // 0.99 does not pin every Pareto dominance decision on near-tied points,
  // so the quantized front is required to share a majority of the fp32
  // design points, not the exact set (the engine-level fixture below holds
  // the exact set for its adapted model).
  opts.quant_contract_min_rho = 0.99;
  const auto int8_archive = fw.run_dse(predictor, support, workload, opts);
  EXPECT_FALSE(fw.run_report().quant_contract_tripped);
  const auto int8_ids = front_ids(serve::MetaDseSessionEngine::format_front(
      fw.space(), int8_archive));
  const auto fp32_ids = front_ids(fp32_front);
  size_t shared = 0;
  for (const auto& id : int8_ids) shared += fp32_ids.count(id);
  EXPECT_GE(2 * shared, fp32_ids.size())
      << "int8 front shares " << shared << "/" << fp32_ids.size()
      << " fp32 design points";
}

// -- serving integration ------------------------------------------------------

TEST(QuantServe, ServerStatsCountQuantizedAndFallbackSessions) {
  serve::ServeOptions options;
  options.replicas = 1;
  options.workers = 1;
  options.queue_capacity = 8;
  options.degrade_at = 2.0;
  options.watchdog_period_ms = 0;
  serve::SessionExecutor executor =
      [](const serve::SessionRequest& r,
         const serve::ExecContext&) -> serve::ExecResult {
    serve::ExecResult out;
    if (r.id % 2 == 0) {
      out.quantized = true;
    } else {
      out.quant_fallback = true;  // requested a tier, contract tripped
    }
    return out;
  };
  serve::ServerCore server(options, executor);
  std::vector<std::future<serve::SessionResult>> futures;
  for (uint64_t id = 0; id < 4; ++id) {
    serve::SessionRequest r;
    r.id = id;
    r.seed = id;
    futures.push_back(server.submit(r));
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, serve::SessionStatus::kOk);
  }
  server.stop(serve::ServerCore::StopMode::kDrain);
  const auto s = server.stats();
  EXPECT_EQ(s.ok, 4U);
  EXPECT_EQ(s.quant_sessions, 2U);
  EXPECT_EQ(s.quant_fallbacks, 2U);
}

namespace {

constexpr size_t kQuantSessions = 2;

/// Runs kQuantSessions engine sessions at @p precision and returns the
/// concatenated front + journal bytes (the coalesce test's discipline).
std::string run_quant_sessions(core::MetaDseFramework& fw,
                               const data::Dataset& support,
                               q::Precision precision, size_t session_threads,
                               const std::string& dir, size_t* quantized) {
  std::filesystem::create_directories(dir);
  serve::MetaDseSessionEngine::Options opts;
  opts.dse = small_dse();
  opts.dse.precision = precision;
  opts.front_dir = dir;
  serve::MetaDseSessionEngine engine(fw, kQuantSessions, opts);
  engine.add_workload(support.workload, support);
  auto executor = engine.executor();

  std::atomic<size_t> next{0};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> served_quantized{0};
  std::vector<std::thread> threads;
  for (size_t tix = 0; tix < session_threads; ++tix) {
    threads.emplace_back([&] {
      core::SerialRegionGuard serial;
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= kQuantSessions) return;
        serve::SessionRequest request;
        request.id = i;
        request.workload = support.workload;
        request.seed = 100 + i;
        request.journal_path = dir + "/s" + std::to_string(i) + ".journal";
        serve::ExecContext ctx;
        ctx.replica = i;
        ctx.budget = std::make_shared<ex::DeadlineBudget>(0);  // unlimited
        try {
          const auto exec = executor(request, ctx);
          EXPECT_FALSE(exec.quant_fallback)
              << "session " << i << ": contract must hold on this fixture";
          if (exec.quantized) served_quantized.fetch_add(1);
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0U);
  if (quantized != nullptr) *quantized = served_quantized.load();

  std::string bytes;
  for (size_t i = 0; i < kQuantSessions; ++i) {
    bytes += slurp(dir + "/front_" + std::to_string(i) + ".txt");
    bytes += slurp(dir + "/s" + std::to_string(i) + ".journal");
  }
  return bytes;
}

}  // namespace

TEST(QuantServe, Int8FrontsAreThreadInvariantAndShareFp32DesignPoints) {
  auto& fw = shared_framework();
  const auto support = support_of(fw, "605.mcf_s");

  const std::string base = ::testing::TempDir() + "quant_serve";
  std::filesystem::remove_all(base);

  size_t fp32_quantized = ~size_t{0};
  const std::string fp32_bytes =
      run_quant_sessions(fw, support, q::Precision::kFp32, 1, base + "/fp32",
                         &fp32_quantized);
  ASSERT_FALSE(fp32_bytes.empty());
  EXPECT_EQ(fp32_quantized, 0U) << "fp32 sessions never count as quantized";

  const size_t saved_threads = core::threads();
  std::string reference;
  for (size_t threads : {1U, 2U, 8U}) {
    core::set_threads(threads);
    size_t quantized = 0;
    const std::string got = run_quant_sessions(
        fw, support, q::Precision::kInt8, threads,
        base + "/int8_t" + std::to_string(threads), &quantized);
    EXPECT_EQ(quantized, kQuantSessions)
        << "every int8 session must serve quantized (threads=" << threads
        << ")";
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference)
          << "int8 fronts/journals must be byte-identical at threads="
          << threads;
    }
  }
  core::set_threads(saved_threads);
  ASSERT_FALSE(reference.empty());

  // The quantized tier publishes the same design points the fp32 search
  // finds (the contract's rank-agreement bar, observed end to end).
  const std::string fp32_front = slurp(base + "/fp32/front_0.txt");
  const std::string int8_front = slurp(base + "/int8_t1/front_0.txt");
  EXPECT_EQ(front_ids(int8_front), front_ids(fp32_front));
  std::filesystem::remove_all(base);
}
