// Tests for the uncertainty-aware adaptation extension: adapted ensembles
// (disagreement-based uncertainty) and active support selection.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "meta/ensemble_adapt.hpp"

namespace meta = metadse::meta;
namespace data = metadse::data;
namespace arch = metadse::arch;
namespace nn = metadse::nn;
namespace mt = metadse::tensor;

namespace {

nn::TransformerConfig cfg24() {
  return {.n_tokens = 24, .d_model = 16, .n_heads = 2, .n_layers = 1,
          .d_ff = 32, .n_outputs = 1};
}

meta::EnsembleAdaptOptions fast_opts() {
  meta::EnsembleAdaptOptions o;
  o.n_members = 3;
  o.adapt.steps = 4;
  o.adapt.use_wam = false;
  return o;
}

}  // namespace

TEST(AdaptedEnsemble, ValidatesOptions) {
  mt::Rng rng(1);
  nn::TransformerRegressor model(cfg24(), rng);
  auto x = mt::Tensor::uniform({8, 24}, rng, 0.0F, 1.0F);
  auto y = mt::Tensor::randn({8, 1}, rng);
  auto bad = fast_opts();
  bad.n_members = 0;
  EXPECT_THROW(meta::AdaptedEnsemble::create(model, {}, x, y, bad),
               std::invalid_argument);
  bad = fast_opts();
  bad.bootstrap_fraction = 1.5;
  EXPECT_THROW(meta::AdaptedEnsemble::create(model, {}, x, y, bad),
               std::invalid_argument);
}

TEST(AdaptedEnsemble, MembersDisagreeAndMeanIsFinite) {
  mt::Rng rng(2);
  nn::TransformerRegressor model(cfg24(), rng);
  auto x = mt::Tensor::uniform({12, 24}, rng, 0.0F, 1.0F);
  auto y = mt::Tensor::randn({12, 1}, rng);
  const auto ens =
      meta::AdaptedEnsemble::create(model, {}, x, y, fast_opts());
  EXPECT_EQ(ens.size(), 3U);
  std::vector<float> probe(24, 0.5F);
  const auto p = ens.predict(probe);
  EXPECT_TRUE(std::isfinite(p.mean));
  EXPECT_GE(p.stddev, 0.0F);
  // Different bootstrap subsets + noisy labels: members should disagree at
  // least slightly somewhere in the space.
  mt::Rng prng(3);
  float max_std = 0.0F;
  for (int i = 0; i < 10; ++i) {
    std::vector<float> f(24);
    for (auto& v : f) v = prng.uniform();
    max_std = std::max(max_std, ens.predict(f).stddev);
  }
  EXPECT_GT(max_std, 0.0F);
}

TEST(ActiveSelection, RespectsBudgetAndUniqueness) {
  mt::Rng rng(4);
  nn::TransformerRegressor model(cfg24(), rng);
  const auto& space = arch::DesignSpace::table1();
  const auto pool = space.sample_uniform(40, rng);

  data::Scaler scaler;
  scaler.fit({{0.0F}, {1.0F}});  // identity-ish scaling for the test

  size_t oracle_calls = 0;
  auto oracle = [&](const arch::Config& c) {
    ++oracle_calls;
    const auto f = space.normalize(c);
    return std::pair<double, double>(2.0 * f[0] + f[5], 5.0);
  };

  auto opts = fast_opts();
  opts.adapt.steps = 2;
  const auto support = meta::select_support_actively(
      model, {}, scaler, space, pool, oracle, 8, opts);
  EXPECT_EQ(support.size(), 8U);
  EXPECT_EQ(oracle_calls, 8U);  // exactly the simulation budget
  // All selected configs are distinct pool members.
  std::set<uint64_t> ids;
  for (const auto& s : support.samples) ids.insert(space.encode(s.config));
  EXPECT_EQ(ids.size(), 8U);
  // Labels came from the oracle.
  for (const auto& s : support.samples) {
    const auto f = space.normalize(s.config);
    EXPECT_NEAR(s.ipc, 2.0F * f[0] + f[5], 1e-5);
    EXPECT_FLOAT_EQ(s.power, 5.0F);
  }
}

TEST(ActiveSelection, Validation) {
  mt::Rng rng(5);
  nn::TransformerRegressor model(cfg24(), rng);
  const auto& space = arch::DesignSpace::table1();
  const auto pool = space.sample_uniform(5, rng);
  data::Scaler scaler;
  scaler.fit({{0.0F}, {1.0F}});
  auto oracle = [](const arch::Config&) {
    return std::pair<double, double>(1.0, 1.0);
  };
  EXPECT_THROW(meta::select_support_actively(model, {}, scaler, space, pool,
                                             oracle, 2, fast_opts()),
               std::invalid_argument);
  EXPECT_THROW(meta::select_support_actively(model, {}, scaler, space, pool,
                                             oracle, 10, fast_opts()),
               std::invalid_argument);
}
