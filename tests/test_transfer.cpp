// Transfer-learning baseline tests: TrEnDSE similarity selection, transfer
// set composition, the transformer variant, and linear fitting.
#include <gtest/gtest.h>

#include "baselines/linear_fit.hpp"
#include "baselines/signature.hpp"
#include "baselines/trendse.hpp"
#include "eval/metrics.hpp"

namespace bl = metadse::baselines;
namespace data = metadse::data;
namespace arch = metadse::arch;
namespace wl = metadse::workload;
namespace mt = metadse::tensor;

namespace {

/// Shared fixture data: small datasets for three sources + one target.
class TransferTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    suite_ = new wl::SpecSuite();
    gen_ = new data::DatasetGenerator(arch::DesignSpace::table1());
    mt::Rng rng(77);
    for (const char* name :
         {"619.lbm_s", "602.gcc_s", "631.deepsjeng_s"}) {
      sources_->push_back(gen_->generate(suite_->by_name(name), 250, rng));
    }
    // Target: omnetpp (pointer-heavy, closest to gcc among the sources).
    *target_full_ = gen_->generate(suite_->by_name("620.omnetpp_s"), 300, rng);
    target_support_->workload = target_full_->workload;
    for (size_t i = 0; i < 10; ++i) {
      target_support_->samples.push_back(target_full_->samples[i]);
    }
  }
  static void TearDownTestSuite() {
    delete suite_;
    delete gen_;
  }

  static wl::SpecSuite* suite_;
  static data::DatasetGenerator* gen_;
  static std::vector<data::Dataset>* sources_;
  static data::Dataset* target_full_;
  static data::Dataset* target_support_;
};

wl::SpecSuite* TransferTest::suite_ = nullptr;
data::DatasetGenerator* TransferTest::gen_ = nullptr;
std::vector<data::Dataset>* TransferTest::sources_ =
    new std::vector<data::Dataset>();
data::Dataset* TransferTest::target_full_ = new data::Dataset();
data::Dataset* TransferTest::target_support_ = new data::Dataset();

double query_rmse(const std::function<float(const std::vector<float>&)>& f,
                  const data::Dataset& ds, size_t skip = 10) {
  std::vector<float> actual;
  std::vector<float> pred;
  for (size_t i = skip; i < ds.size(); ++i) {
    actual.push_back(ds.samples[i].ipc);
    pred.push_back(f(ds.samples[i].features));
  }
  return metadse::eval::rmse(actual, pred);
}

}  // namespace

TEST_F(TransferTest, BuildTransferSetComposition) {
  bl::TrEnDseOptions opts;
  opts.top_k_sources = 2;
  opts.samples_per_source = 50;
  opts.target_replication = 4;
  auto ts = bl::build_transfer_set(*sources_, *target_support_,
                                   data::TargetMetric::kIpc, opts);
  EXPECT_EQ(ts.similarities.size(), 3U);
  // Sorted ascending by distance.
  EXPECT_LE(ts.similarities[0].wasserstein, ts.similarities[1].wasserstein);
  EXPECT_LE(ts.similarities[1].wasserstein, ts.similarities[2].wasserstein);
  // 2 sources x 50 + 10 support x 4 replicas.
  EXPECT_EQ(ts.x.size(), 2U * 50U + 10U * 4U);
  EXPECT_EQ(ts.x.size(), ts.y.size());
}

TEST_F(TransferTest, SimilarityRanksSelfFirst) {
  // When the target itself is among the sources, it must rank most similar.
  auto sources = *sources_;
  sources.push_back(*target_full_);
  bl::TrEnDseOptions opts;
  auto ts = bl::build_transfer_set(sources, *target_support_,
                                   data::TargetMetric::kIpc, opts);
  EXPECT_EQ(ts.similarities.front().workload, target_full_->workload);
}

TEST_F(TransferTest, BuildTransferSetValidation) {
  bl::TrEnDseOptions opts;
  data::Dataset empty;
  EXPECT_THROW(bl::build_transfer_set({}, *target_support_,
                                      data::TargetMetric::kIpc, opts),
               std::invalid_argument);
  EXPECT_THROW(bl::build_transfer_set(*sources_, empty,
                                      data::TargetMetric::kIpc, opts),
               std::invalid_argument);
  EXPECT_THROW(bl::build_transfer_set(*sources_, *target_support_,
                                      data::TargetMetric::kBoth, opts),
               std::invalid_argument);
}

TEST_F(TransferTest, TrEnDseLearnsTarget) {
  bl::TrEnDseOptions opts;
  opts.model.n_rounds = 60;
  bl::TrEnDse model(opts);
  EXPECT_THROW(model.predict({0.0F}), std::logic_error);
  model.fit(*sources_, *target_support_, data::TargetMetric::kIpc);
  EXPECT_EQ(model.similarities().size(), 3U);
  const double r = query_rmse(
      [&](const std::vector<float>& f) { return model.predict(f); },
      *target_full_);
  // The method's claim: transferred source data beats training the same
  // ensemble on the ten target samples alone.
  bl::FeatureMatrix sup_x;
  std::vector<float> sup_y;
  for (const auto& s : target_support_->samples) {
    sup_x.push_back(s.features);
    sup_y.push_back(s.ipc);
  }
  bl::Gbrt few_shot(opts.model);
  few_shot.fit(sup_x, sup_y);
  const double few_shot_rmse = query_rmse(
      [&](const std::vector<float>& f) { return few_shot.predict(f); },
      *target_full_);
  EXPECT_LT(r, few_shot_rmse);
}

TEST_F(TransferTest, TrEnDseTransformerSmoke) {
  bl::TrEnDseTransformerOptions opts;
  opts.selection.samples_per_source = 40;
  opts.selection.top_k_sources = 2;
  opts.predictor = {.n_tokens = 24, .d_model = 16, .n_heads = 2,
                    .n_layers = 1, .d_ff = 32, .n_outputs = 1};
  opts.epochs = 6;
  bl::TrEnDseTransformer model(opts);
  EXPECT_THROW(model.predict({}), std::logic_error);
  model.fit(*sources_, *target_support_, data::TargetMetric::kIpc);
  const double r = query_rmse(
      [&](const std::vector<float>& f) { return model.predict(f); },
      *target_full_);
  EXPECT_LT(r, 1.0);  // sane scale after label destandardization
  EXPECT_TRUE(std::isfinite(r));
}

TEST(LeastSquares, SolvesExactSystem) {
  // y = 2a - b + 3 on three points.
  std::vector<std::vector<double>> A{{1, 0, 1}, {0, 1, 1}, {1, 1, 1}};
  std::vector<double> b{5, 2, 4};
  const auto w = bl::least_squares(A, b, 0.0);
  ASSERT_EQ(w.size(), 3U);
  EXPECT_NEAR(w[0], 2.0, 1e-9);
  EXPECT_NEAR(w[1], -1.0, 1e-9);
  EXPECT_NEAR(w[2], 3.0, 1e-9);
  EXPECT_THROW(bl::least_squares({}, {}), std::invalid_argument);
  // Singular without ridge; solvable with it.
  std::vector<std::vector<double>> S{{1, 1}, {2, 2}};
  std::vector<double> sb{1, 2};
  EXPECT_THROW(bl::least_squares(S, sb, 0.0), std::runtime_error);
  EXPECT_NO_THROW(bl::least_squares(S, sb, 1e-3));
}

TEST(Signature, VectorAndDistance) {
  metadse::sim::WorkloadCharacteristics w;
  const auto sig = bl::signature_of(w);
  EXPECT_EQ(sig.size(), 18U);
  for (double v : sig) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 3.0);
  }
  EXPECT_DOUBLE_EQ(bl::signature_distance(sig, sig), 0.0);
  auto other = sig;
  other[0] += 0.5;
  EXPECT_NEAR(bl::signature_distance(sig, other), 0.5, 1e-12);
  EXPECT_THROW(bl::signature_distance(sig, {1.0}), std::invalid_argument);
}

TEST_F(TransferTest, SignatureTransferSelectsNearestAndCalibrates) {
  // Signatures of the three sources plus the target.
  std::vector<std::vector<double>> sigs;
  for (const char* name : {"619.lbm_s", "602.gcc_s", "631.deepsjeng_s"}) {
    sigs.push_back(bl::signature_of(suite_->by_name(name).base()));
  }
  const auto target_sig =
      bl::signature_of(suite_->by_name("620.omnetpp_s").base());

  bl::SignatureTransferOptions opts;
  opts.source_model.n_rounds = 40;
  bl::SignatureTransfer st(opts);
  EXPECT_THROW(st.adapt(*target_support_, target_sig,
                        data::TargetMetric::kIpc),
               std::logic_error);
  st.fit_sources(*sources_, sigs, data::TargetMetric::kIpc);
  st.adapt(*target_support_, target_sig, data::TargetMetric::kIpc);
  // omnetpp (pointer-heavy int code) is behaviourally closest to gcc.
  EXPECT_EQ(st.selected_source(), "602.gcc_s");
  const double r = query_rmse(
      [&](const std::vector<float>& f) { return st.predict(f); },
      *target_full_);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_LT(r, 0.5);
  // Mismatched signature/source counts throw.
  bl::SignatureTransfer bad(opts);
  EXPECT_THROW(bad.fit_sources(*sources_, {sigs[0]},
                               data::TargetMetric::kIpc),
               std::invalid_argument);
}

TEST_F(TransferTest, LinearFitRecoversLinearCombination) {
  bl::LinearFitOptions opts;
  opts.source_model.n_rounds = 40;
  bl::LinearFit lf(opts);
  EXPECT_THROW(lf.adapt(*target_support_, data::TargetMetric::kIpc),
               std::logic_error);
  lf.fit_sources(*sources_, data::TargetMetric::kIpc);
  lf.adapt(*target_support_, data::TargetMetric::kIpc);
  EXPECT_EQ(lf.coefficients().size(), sources_->size() + 1);
  const double r = query_rmse(
      [&](const std::vector<float>& f) { return lf.predict(f); },
      *target_full_);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_LT(r, 1.0);
}
