// The static-execution-plan contract: a compiled plan changes where
// intermediates live (one static arena, computed once) and which kernel
// bodies run (plan-time fused/specialized instructions) — never the
// arithmetic. Planned predicts, planned inner steps, and whole planned
// meta-training epochs must be bitwise identical to the eager tape at any
// thread count; any shape or mode the compiler rejects must fall back to
// eager with identical results; and steady-state planned predicts must be
// allocation-free (served entirely from the plan's arena).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/chaos.hpp"
#include "core/parallel.hpp"
#include "data/dataset.hpp"
#include "meta/maml.hpp"
#include "nn/plan.hpp"
#include "nn/transformer.hpp"
#include "tensor/ops.hpp"
#include "tensor/pool.hpp"
#include "tensor/tensor.hpp"

namespace t = metadse::tensor;
namespace nn = metadse::nn;
namespace meta = metadse::meta;
namespace data = metadse::data;
namespace plan = metadse::nn::plan;

namespace {

const std::vector<size_t> kThreadSweep = {1, 2, 8};

struct ThreadGuard {
  ~ThreadGuard() { metadse::set_threads(1); }
};

/// Every suite starts from an empty process-wide registry so plan counters
/// and cache contents are deterministic regardless of test order.
struct RegistryReset {
  RegistryReset() { plan::PlanRegistry::instance().reset(); }
  ~RegistryReset() { plan::PlanRegistry::instance().reset(); }
};

nn::TransformerConfig small_cfg() {
  return {.n_tokens = 24, .d_model = 32, .n_heads = 4,
          .n_layers = 2, .d_ff = 64, .n_outputs = 1};
}

std::vector<std::vector<float>> feature_rows(size_t n, size_t width,
                                             uint64_t seed) {
  t::Rng rng(seed);
  std::vector<std::vector<float>> rows(n, std::vector<float>(width));
  for (auto& r : rows) {
    for (auto& v : r) v = rng.uniform(0.0F, 1.0F);
  }
  return rows;
}

void expect_same_floats(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at element " << i;
  }
}

/// One synthetic "workload": y = a*sin(pi*x0) + b*x1 + c*x2*x3 + d.
data::Dataset family_dataset(float a, float b, float c, float d, size_t n,
                             uint64_t seed) {
  data::Dataset ds;
  ds.workload = "synthetic";
  t::Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    data::Sample s;
    s.features.resize(4);
    for (auto& f : s.features) f = rng.uniform(0.0F, 1.0F);
    s.ipc = a * std::sin(3.14159F * s.features[0]) + b * s.features[1] +
            c * s.features[2] * s.features[3] + d;
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

}  // namespace

// -- planned predicts are bitwise identical to eager, any thread count -------

TEST(PlanEquivalence, PredictOneMatchesEagerAcrossThreads) {
  ThreadGuard guard;
  RegistryReset reset;
  const auto rows = feature_rows(6, 24, 71);
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    t::Rng rng(41);
    nn::TransformerRegressor model(small_cfg(), rng);
    for (const auto& row : rows) {
      std::vector<float> eager;
      std::vector<float> planned;
      {
        plan::PlanModeGuard off(false);
        eager = model.predict_one(row);
      }
      {
        plan::PlanModeGuard on(true);
        planned = model.predict_one(row);
      }
      expect_same_floats(eager, planned, "predict_one planned vs eager");
    }
  }
}

TEST(PlanEquivalence, PredictBatchMatchesEagerAcrossThreads) {
  ThreadGuard guard;
  RegistryReset reset;
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    t::Rng rng(43);
    nn::TransformerRegressor model(small_cfg(), rng);
    for (size_t batch : {1UL, 5UL, 32UL}) {
      const auto rows = feature_rows(batch, 24, 100 + batch);
      std::vector<std::vector<float>> eager;
      std::vector<std::vector<float>> planned;
      {
        plan::PlanModeGuard off(false);
        eager = model.predict_batch(rows);
      }
      {
        plan::PlanModeGuard on(true);
        planned = model.predict_batch(rows);
      }
      ASSERT_EQ(eager.size(), planned.size());
      for (size_t i = 0; i < eager.size(); ++i) {
        expect_same_floats(eager[i], planned[i],
                           "predict_batch planned vs eager");
      }
    }
  }
}

TEST(PlanEquivalence, PredictWithInstalledMasksMatchesEager) {
  ThreadGuard guard;
  RegistryReset reset;
  t::Rng rng(47);
  nn::TransformerRegressor model(small_cfg(), rng);
  t::Rng mr(5);
  std::vector<float> m(24 * 24);
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] = (i % 7 == 3) ? 0.0F : mr.uniform(0.05F, 1.0F);
  }
  model.install_mask_all_layers(t::Tensor::from_vector({24, 24}, std::move(m)));
  const auto rows = feature_rows(8, 24, 53);
  std::vector<std::vector<float>> eager;
  std::vector<std::vector<float>> planned;
  {
    plan::PlanModeGuard off(false);
    eager = model.predict_batch(rows);
  }
  {
    plan::PlanModeGuard on(true);
    planned = model.predict_batch(rows);
  }
  for (size_t i = 0; i < eager.size(); ++i) {
    expect_same_floats(eager[i], planned[i], "masked predict planned vs eager");
  }
}

// -- planned inner steps: tape replay equals the eager loop ------------------

TEST(PlanEquivalence, TapePlanInnerStepsMatchEagerAcrossThreads) {
  ThreadGuard guard;
  RegistryReset reset;
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    t::Rng rng(59);
    nn::TransformerRegressor base(small_cfg(), rng);
    t::Rng xr(3);
    auto x = t::Tensor::uniform({5, 24}, xr, 0.0F, 1.0F);
    auto y = t::Tensor::randn({5, 1}, xr);

    auto run_loop = [&](bool planned) {
      auto clone = base.clone();
      nn::Sgd inner(clone->parameters(), 1e-2F);
      t::Rng fwd(0);
      plan::PlanModeGuard mode(planned);
      plan::TapePlan tape;
      std::vector<float> losses;
      for (int step = 0; step < 4; ++step) {
        inner.zero_grad();
        float lv = 0.0F;
        if (!planned ||
            !tape.step(*clone, x, y, fwd, lv,
                       /*skip_backward_nonfinite=*/true)) {
          auto loss = t::mse_loss(clone->forward(x, fwd, /*train=*/true), y);
          lv = loss.item();
          loss.backward();
        }
        losses.push_back(lv);
        inner.clip_and_step(10.0F);
      }
      if (planned) {
        EXPECT_TRUE(tape.replaying()) << "tape never validated a capture";
      }
      auto out = clone->flatten_parameters();
      out.insert(out.end(), losses.begin(), losses.end());
      return out;
    };

    expect_same_floats(run_loop(false), run_loop(true),
                       "inner-loop weights+losses planned vs eager");
  }
}

// -- whole meta-training epochs, planned vs eager, thread sweep --------------

TEST(PlanEquivalence, MamlEpochsBitwiseIdenticalPlannedVsEager) {
  ThreadGuard guard;
  RegistryReset reset;
  std::vector<data::Dataset> train = {
      family_dataset(1.0F, 0.5F, 0.8F, 0.2F, 120, 1),
      family_dataset(0.6F, 1.0F, 0.2F, 0.5F, 120, 2)};
  nn::TransformerConfig cfg{.n_tokens = 4, .d_model = 8, .n_heads = 2,
                            .n_layers = 1, .d_ff = 16, .n_outputs = 1};
  meta::MamlOptions opts;
  opts.epochs = 2;
  opts.tasks_per_workload = 6;
  opts.support = 5;
  opts.query = 10;
  opts.inner_steps = 2;
  opts.meta_batch = 4;
  opts.val_tasks_per_workload = 2;
  opts.seed = 9;

  std::vector<float> ref_weights;
  std::vector<meta::EpochTrace> ref_trace;
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    for (bool planned : {true, false}) {
      plan::PlanModeGuard mode(planned);
      meta::MamlTrainer trainer(cfg, opts);
      trainer.train(train, {});
      auto weights = trainer.model().flatten_parameters();
      const auto& trace = trainer.trace();
      if (ref_weights.empty()) {
        ref_weights = weights;
        ref_trace = trace;
        continue;
      }
      expect_same_floats(ref_weights, weights, "learned weights");
      ASSERT_EQ(ref_trace.size(), trace.size());
      for (size_t e = 0; e < trace.size(); ++e) {
        ASSERT_EQ(ref_trace[e].train_meta_loss, trace[e].train_meta_loss)
            << "epoch " << e;
        ASSERT_EQ(ref_trace[e].val_loss, trace[e].val_loss) << "epoch " << e;
      }
    }
  }
}

// -- unplannable shapes fall back to eager with identical results ------------

TEST(PlanEquivalence, CaptureForcesEagerFallbackWithIdenticalResults) {
  ThreadGuard guard;
  RegistryReset reset;
  metadse::set_threads(1);
  t::Rng rng(61);
  nn::TransformerRegressor model(small_cfg(), rng);
  const auto rows = feature_rows(4, 24, 67);

  std::vector<std::vector<float>> eager;
  {
    plan::PlanModeGuard off(false);
    eager = model.predict_batch(rows);
  }

  // Attention capture records per-forward state the static plan cannot
  // reproduce, so the planner must refuse the trace and run eagerly.
  model.set_capture_attention(true);
  const auto before = plan::PlanRegistry::instance().stats();
  std::vector<std::vector<float>> fallback;
  {
    plan::PlanModeGuard on(true);
    fallback = model.predict_batch(rows);
  }
  const auto after = plan::PlanRegistry::instance().stats();
  model.set_capture_attention(false);

  EXPECT_GT(after.fallbacks, before.fallbacks)
      << "capturing predict was not counted as a fallback";
  EXPECT_EQ(after.cache_hits, before.cache_hits);
  for (size_t i = 0; i < eager.size(); ++i) {
    expect_same_floats(eager[i], fallback[i], "fallback predict vs eager");
  }

  // With capture back off the same model plans again and still agrees.
  std::vector<std::vector<float>> planned;
  {
    plan::PlanModeGuard on(true);
    planned = model.predict_batch(rows);
  }
  for (size_t i = 0; i < eager.size(); ++i) {
    expect_same_floats(eager[i], planned[i], "recovered planned vs eager");
  }
}

// -- plan cache and counters -------------------------------------------------

TEST(PlanEquivalence, RegistrySharesPlansAcrossReplicasAndCountsHits) {
  ThreadGuard guard;
  RegistryReset reset;
  metadse::set_threads(1);
  plan::PlanModeGuard on(true);
  t::Rng rng(73);
  nn::TransformerRegressor model(small_cfg(), rng);
  const auto rows = feature_rows(5, 24, 79);

  (void)model.predict_batch(rows);
  const auto first = plan::PlanRegistry::instance().stats();
  EXPECT_GE(first.plans_compiled, 1U);
  EXPECT_GT(first.static_bytes, 0U);

  // Re-running the same shape and running a same-architecture replica must
  // both be served from the one registered program.
  (void)model.predict_batch(rows);
  auto replica = model.clone();
  (void)replica->predict_batch(rows);
  const auto after = plan::PlanRegistry::instance().stats();
  EXPECT_EQ(after.plans_compiled, first.plans_compiled)
      << "replica recompiled a cached plan shape";
  EXPECT_GE(after.cache_hits, first.cache_hits + 2);
}

// -- steady-state planned predicts never touch the buffer pool ---------------

TEST(PlanEquivalence, PlannedPredictSteadyStateZeroAllocations) {
  ThreadGuard guard;
  RegistryReset reset;
  metadse::set_threads(1);
  plan::PlanModeGuard on(true);
  t::Rng rng(83);
  nn::TransformerRegressor model(small_cfg(), rng);
  const auto rows = feature_rows(16, 24, 89);

  // Warm-up: compiles the plans and sizes their arenas.
  (void)model.predict_batch(rows);
  (void)model.predict_one(rows[0]);

  t::BufferPool::reset_stats();
  for (int i = 0; i < 5; ++i) {
    (void)model.predict_batch(rows);
    (void)model.predict_one(rows[0]);
  }
  const auto stats = t::BufferPool::stats();
  EXPECT_EQ(stats.vec_allocated, 0U)
      << "planned predict allocated float buffers in steady state";
  EXPECT_EQ(stats.idx_allocated, 0U)
      << "planned predict allocated index buffers in steady state";
  EXPECT_EQ(stats.block_allocated, 0U)
      << "planned predict allocated arena blocks in steady state";
  EXPECT_EQ(stats.vec_reused, 0U)
      << "planned predict still cycles pooled buffers (not a static arena)";
  EXPECT_EQ(stats.block_reused, 0U)
      << "planned predict still builds graph nodes";
}

// -- injected compile failure: negative cache + bitwise eager fallback --------

TEST(PlanEquivalence, InjectedCompileFaultNegativeCachesAndFallsBackBitwise) {
  namespace chaos = metadse::core::chaos;
  ThreadGuard guard;
  RegistryReset reset;
  chaos::ChaosEngine::instance().reset();
  metadse::set_threads(1);
  t::Rng rng(97);
  nn::TransformerRegressor model(small_cfg(), rng);
  const auto rows = feature_rows(5, 24, 101);

  std::vector<std::vector<float>> eager;
  {
    plan::PlanModeGuard off(false);
    eager = model.predict_batch(rows);
  }

  // The first (and only) compile attempt for this shape fails by injection.
  chaos::FaultRule rule;  // nth-hit, n = 1
  chaos::ChaosEngine::instance().arm("plan.compile", rule);

  const auto before = plan::PlanRegistry::instance().stats();
  std::vector<std::vector<float>> first;
  {
    plan::PlanModeGuard on(true);
    first = model.predict_batch(rows);
  }
  auto after = plan::PlanRegistry::instance().stats();
  EXPECT_EQ(after.plans_compiled, before.plans_compiled)
      << "a failed compile must not count as compiled";
  EXPECT_GT(after.fallbacks, before.fallbacks);
  for (size_t i = 0; i < eager.size(); ++i) {
    expect_same_floats(eager[i], first[i], "faulted compile vs eager");
  }

  // The failure is negative-cached: the same shape never re-attempts the
  // compile (the probe sees no further hits) and keeps serving eager bits.
  const size_t hits_after_first =
      chaos::ChaosEngine::instance().report().at("plan.compile").hits;
  std::vector<std::vector<float>> second;
  {
    plan::PlanModeGuard on(true);
    second = model.predict_batch(rows);
  }
  EXPECT_EQ(chaos::ChaosEngine::instance().report().at("plan.compile").hits,
            hits_after_first)
      << "negative cache must suppress recompile attempts";
  for (size_t i = 0; i < eager.size(); ++i) {
    expect_same_floats(eager[i], second[i], "negative-cached vs eager");
  }
  EXPECT_TRUE(chaos::ChaosEngine::instance().all_armed_fired());
  chaos::ChaosEngine::instance().reset();

  // A fresh planner (new model instance) on a healed "disk" compiles fine
  // and still agrees bitwise.
  t::Rng rng2(97);
  nn::TransformerRegressor healed(small_cfg(), rng2);
  std::vector<std::vector<float>> planned;
  {
    plan::PlanModeGuard on(true);
    planned = healed.predict_batch(rows);
  }
  for (size_t i = 0; i < eager.size(); ++i) {
    expect_same_floats(eager[i], planned[i], "healed planned vs eager");
  }
}

// -- try-lock contention: concurrent predicts fall back, never block ----------

TEST(PlanEquivalence, ContendedPredictsFallBackEagerWithIdenticalBits) {
  ThreadGuard guard;
  RegistryReset reset;
  metadse::set_threads(1);
  plan::PlanModeGuard on(true);
  t::Rng rng(103);
  nn::TransformerRegressor model(small_cfg(), rng);
  const auto rows = feature_rows(8, 24, 107);

  std::vector<std::vector<float>> eager;
  {
    plan::PlanModeGuard off(false);
    eager = model.predict_batch(rows);
  }
  (void)model.predict_batch(rows);  // warm-up: compile the plan

  // Hammer one model from many threads. The plan arena is single-occupancy
  // behind a try-lock: a contended caller must take the eager path instead
  // of waiting, so every thread's every result is bitwise identical either
  // way. Rounds repeat until contention is actually observed.
  const auto base = plan::PlanRegistry::instance().stats();
  std::atomic<bool> mismatch{false};
  for (int round = 0; round < 50; ++round) {
    constexpr size_t kThreads = 8;
    std::atomic<size_t> start_gate{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t tid = 0; tid < kThreads; ++tid) {
      threads.emplace_back([&] {
        start_gate.fetch_add(1);
        while (start_gate.load() < kThreads) {}
        for (int iter = 0; iter < 20; ++iter) {
          const auto got = model.predict_batch(rows);
          for (size_t i = 0; i < got.size(); ++i) {
            for (size_t j = 0; j < got[i].size(); ++j) {
              if (got[i][j] != eager[i][j]) mismatch.store(true);
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    if (plan::PlanRegistry::instance().stats().fallbacks > base.fallbacks) {
      break;
    }
  }
  EXPECT_FALSE(mismatch.load())
      << "a contended (or planned) predict diverged from eager bits";
  const auto after = plan::PlanRegistry::instance().stats();
  EXPECT_GT(after.fallbacks, base.fallbacks)
      << "no predict ever lost the try-lock race across 50 contended rounds";
  EXPECT_GT(after.cache_hits, base.cache_hits)
      << "winners must keep serving from the compiled plan";
}
