// Multi-objective exploration tests: dominance, the Pareto archive,
// hypervolume, ADRS, and the explorers' behaviour on the real simulator.
#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "explore/explorer.hpp"

namespace ex = metadse::explore;
namespace arch = metadse::arch;
namespace mt = metadse::tensor;

TEST(Dominance, Definition) {
  ex::Objective a{2.0, 5.0};
  ex::Objective b{1.0, 6.0};
  EXPECT_TRUE(ex::dominates(a, b));   // more IPC, less power
  EXPECT_FALSE(ex::dominates(b, a));
  ex::Objective c{2.5, 7.0};          // more IPC but more power
  EXPECT_FALSE(ex::dominates(a, c));
  EXPECT_FALSE(ex::dominates(c, a));
  EXPECT_FALSE(ex::dominates(a, a));  // not strictly better
  ex::Objective d{2.0, 4.0};
  EXPECT_TRUE(ex::dominates(d, a));   // equal IPC, strictly less power
}

TEST(ParetoArchive, InsertEvictsDominated) {
  ex::ParetoArchive ar;
  arch::Config dummy;
  EXPECT_TRUE(ar.insert(dummy, {1.0, 10.0}));
  EXPECT_TRUE(ar.insert(dummy, {2.0, 12.0}));   // tradeoff, both kept
  EXPECT_EQ(ar.size(), 2U);
  EXPECT_FALSE(ar.insert(dummy, {0.5, 11.0}));  // dominated by first
  EXPECT_EQ(ar.size(), 2U);
  EXPECT_TRUE(ar.insert(dummy, {2.5, 9.0}));    // dominates both
  EXPECT_EQ(ar.size(), 1U);
  EXPECT_FALSE(ar.insert(dummy, {2.5, 9.0}));   // duplicate
}

TEST(ParetoArchive, HypervolumeKnownValues) {
  ex::ParetoArchive ar;
  arch::Config dummy;
  ar.insert(dummy, {2.0, 4.0});
  ar.insert(dummy, {3.0, 6.0});
  const ex::Objective ref{1.0, 8.0};
  // Sorted by ipc desc: (3,6): (3-1)*(8-6)=4; (2,4): (2-1)*(6-4)=2. Total 6.
  EXPECT_DOUBLE_EQ(ar.hypervolume(ref), 6.0);
  // A better front strictly increases hypervolume.
  ar.insert(dummy, {3.5, 3.5});
  EXPECT_GT(ar.hypervolume(ref), 6.0);
  EXPECT_DOUBLE_EQ(ex::ParetoArchive().hypervolume(ref), 0.0);
}

TEST(Adrs, ZeroWhenCoveredPositiveOtherwise) {
  std::vector<ex::Objective> ref{{1.0, 5.0}, {2.0, 7.0}};
  EXPECT_DOUBLE_EQ(ex::adrs(ref, ref), 0.0);
  std::vector<ex::Objective> worse{{0.5, 6.0}};
  EXPECT_GT(ex::adrs(ref, worse), 0.0);
  EXPECT_THROW(ex::adrs({}, ref), std::invalid_argument);
  EXPECT_THROW(ex::adrs(ref, {}), std::invalid_argument);
}

namespace {

/// Oracle evaluator backed by the analytical simulator on one workload.
ex::Evaluator oracle() {
  static metadse::workload::SpecSuite suite;
  static metadse::data::DatasetGenerator gen(arch::DesignSpace::table1());
  return [](const arch::Config& c) {
    const auto [ipc, power] =
        gen.evaluate(c, suite.by_name("621.wrf_s"));
    return ex::Objective{ipc, power};
  };
}

}  // namespace

TEST(RandomSearch, ProducesNonDominatedFront) {
  mt::Rng rng(3);
  const auto ar =
      ex::random_search(arch::DesignSpace::table1(), oracle(), 100, rng);
  ASSERT_GT(ar.size(), 1U);
  // Pairwise non-domination.
  const auto objs = ar.objectives();
  for (size_t i = 0; i < objs.size(); ++i) {
    for (size_t j = 0; j < objs.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(ex::dominates(objs[i], objs[j]));
      }
    }
  }
  EXPECT_THROW(ex::random_search(arch::DesignSpace::table1(), oracle(), 0,
                                 rng),
               std::invalid_argument);
}

TEST(EvolutionaryExplorer, BeatsRandomAtEqualBudget) {
  ex::ExplorerOptions opts;
  opts.initial_samples = 64;
  opts.iterations = 192;
  ex::EvolutionaryExplorer evo(opts);
  const auto evo_front = evo.explore(arch::DesignSpace::table1(), oracle());

  mt::Rng rng(5);
  const auto rand_front = ex::random_search(arch::DesignSpace::table1(),
                                            oracle(), evo.budget(), rng);
  const ex::Objective ref{0.0, 30.0};
  EXPECT_GE(evo_front.hypervolume(ref), rand_front.hypervolume(ref));
  EXPECT_THROW(ex::EvolutionaryExplorer(
                   ex::ExplorerOptions{.initial_samples = 0}),
               std::invalid_argument);
}

TEST(EvolutionaryExplorer, DeterministicGivenSeed) {
  ex::ExplorerOptions opts;
  opts.initial_samples = 32;
  opts.iterations = 64;
  ex::EvolutionaryExplorer evo(opts);
  const auto a = evo.explore(arch::DesignSpace::table1(), oracle());
  const auto b = evo.explore(arch::DesignSpace::table1(), oracle());
  ASSERT_EQ(a.size(), b.size());
  const ex::Objective ref{0.0, 30.0};
  EXPECT_DOUBLE_EQ(a.hypervolume(ref), b.hypervolume(ref));
}
