// Multi-objective exploration tests: dominance, the Pareto archive,
// hypervolume, ADRS, the explorers' behaviour on the real simulator, and the
// GuardedEvaluator's containment ladder (retries, breaker, degradation).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "explore/explorer.hpp"
#include "explore/guarded.hpp"
#include "sim/fault_injection.hpp"

namespace ex = metadse::explore;
namespace arch = metadse::arch;
namespace mt = metadse::tensor;

TEST(Dominance, Definition) {
  ex::Objective a{2.0, 5.0};
  ex::Objective b{1.0, 6.0};
  EXPECT_TRUE(ex::dominates(a, b));   // more IPC, less power
  EXPECT_FALSE(ex::dominates(b, a));
  ex::Objective c{2.5, 7.0};          // more IPC but more power
  EXPECT_FALSE(ex::dominates(a, c));
  EXPECT_FALSE(ex::dominates(c, a));
  EXPECT_FALSE(ex::dominates(a, a));  // not strictly better
  ex::Objective d{2.0, 4.0};
  EXPECT_TRUE(ex::dominates(d, a));   // equal IPC, strictly less power
}

TEST(ParetoArchive, InsertEvictsDominated) {
  ex::ParetoArchive ar;
  arch::Config dummy;
  EXPECT_TRUE(ar.insert(dummy, {1.0, 10.0}));
  EXPECT_TRUE(ar.insert(dummy, {2.0, 12.0}));   // tradeoff, both kept
  EXPECT_EQ(ar.size(), 2U);
  EXPECT_FALSE(ar.insert(dummy, {0.5, 11.0}));  // dominated by first
  EXPECT_EQ(ar.size(), 2U);
  EXPECT_TRUE(ar.insert(dummy, {2.5, 9.0}));    // dominates both
  EXPECT_EQ(ar.size(), 1U);
  EXPECT_FALSE(ar.insert(dummy, {2.5, 9.0}));   // duplicate
}

TEST(ParetoArchive, HypervolumeKnownValues) {
  ex::ParetoArchive ar;
  arch::Config dummy;
  ar.insert(dummy, {2.0, 4.0});
  ar.insert(dummy, {3.0, 6.0});
  const ex::Objective ref{1.0, 8.0};
  // Sorted by ipc desc: (3,6): (3-1)*(8-6)=4; (2,4): (2-1)*(6-4)=2. Total 6.
  EXPECT_DOUBLE_EQ(ar.hypervolume(ref), 6.0);
  // A better front strictly increases hypervolume.
  ar.insert(dummy, {3.5, 3.5});
  EXPECT_GT(ar.hypervolume(ref), 6.0);
  EXPECT_DOUBLE_EQ(ex::ParetoArchive().hypervolume(ref), 0.0);
}

TEST(Adrs, ZeroWhenCoveredPositiveOtherwise) {
  std::vector<ex::Objective> ref{{1.0, 5.0}, {2.0, 7.0}};
  EXPECT_DOUBLE_EQ(ex::adrs(ref, ref), 0.0);
  std::vector<ex::Objective> worse{{0.5, 6.0}};
  EXPECT_GT(ex::adrs(ref, worse), 0.0);
  EXPECT_THROW(ex::adrs({}, ref), std::invalid_argument);
  EXPECT_THROW(ex::adrs(ref, {}), std::invalid_argument);
}

namespace {

/// Oracle evaluator backed by the analytical simulator on one workload.
ex::Evaluator oracle() {
  static metadse::workload::SpecSuite suite;
  static metadse::data::DatasetGenerator gen(arch::DesignSpace::table1());
  return [](const arch::Config& c) {
    const auto [ipc, power] =
        gen.evaluate(c, suite.by_name("621.wrf_s"));
    return ex::Objective{ipc, power};
  };
}

}  // namespace

TEST(RandomSearch, ProducesNonDominatedFront) {
  mt::Rng rng(3);
  const auto ar =
      ex::random_search(arch::DesignSpace::table1(), oracle(), 100, rng);
  ASSERT_GT(ar.size(), 1U);
  // Pairwise non-domination.
  const auto objs = ar.objectives();
  for (size_t i = 0; i < objs.size(); ++i) {
    for (size_t j = 0; j < objs.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(ex::dominates(objs[i], objs[j]));
      }
    }
  }
  EXPECT_THROW(ex::random_search(arch::DesignSpace::table1(), oracle(), 0,
                                 rng),
               std::invalid_argument);
}

TEST(EvolutionaryExplorer, BeatsRandomAtEqualBudget) {
  ex::ExplorerOptions opts;
  opts.initial_samples = 64;
  opts.iterations = 192;
  ex::EvolutionaryExplorer evo(opts);
  const auto evo_front = evo.explore(arch::DesignSpace::table1(), oracle());

  mt::Rng rng(5);
  const auto rand_front = ex::random_search(arch::DesignSpace::table1(),
                                            oracle(), evo.budget(), rng);
  const ex::Objective ref{0.0, 30.0};
  EXPECT_GE(evo_front.hypervolume(ref), rand_front.hypervolume(ref));
  EXPECT_THROW(ex::EvolutionaryExplorer(
                   ex::ExplorerOptions{.initial_samples = 0}),
               std::invalid_argument);
}

TEST(EvolutionaryExplorer, RejectsEveryDegenerateBudgetKnob) {
  // Each knob gets its own precise error, not a generic failure downstream.
  EXPECT_THROW(ex::EvolutionaryExplorer({.initial_samples = 0}),
               std::invalid_argument);
  EXPECT_THROW(ex::EvolutionaryExplorer(
                   ex::ExplorerOptions{.iterations = 0}),
               std::invalid_argument);
  EXPECT_THROW(ex::EvolutionaryExplorer(
                   ex::ExplorerOptions{.mutations_per_step = 0}),
               std::invalid_argument);
  try {
    ex::EvolutionaryExplorer(ex::ExplorerOptions{.iterations = 0});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("iterations"), std::string::npos);
  }
}

TEST(EvolutionaryExplorer, DeterministicGivenSeed) {
  ex::ExplorerOptions opts;
  opts.initial_samples = 32;
  opts.iterations = 64;
  ex::EvolutionaryExplorer evo(opts);
  const auto a = evo.explore(arch::DesignSpace::table1(), oracle());
  const auto b = evo.explore(arch::DesignSpace::table1(), oracle());
  ASSERT_EQ(a.size(), b.size());
  const ex::Objective ref{0.0, 30.0};
  EXPECT_DOUBLE_EQ(a.hypervolume(ref), b.hypervolume(ref));
}

// -- GuardedEvaluator ---------------------------------------------------------

namespace {

arch::Config cfg(size_t v) { return arch::Config{v}; }

/// A guard over a scripted primary: @p script(config value, attempt) decides
/// what each attempt does.
struct GuardRig {
  ex::RunReport report;
  ex::GuardedEvaluator guard;

  GuardRig(ex::AttemptEvaluator primary, ex::GuardOptions options,
           ex::Evaluator baseline = {})
      : guard(std::move(primary), options, &report, std::move(baseline)) {}
};

}  // namespace

TEST(GuardedEvaluator, ValidatesConstruction) {
  ex::RunReport rep;
  EXPECT_THROW(ex::GuardedEvaluator(nullptr, {}, &rep),
               std::invalid_argument);
  EXPECT_THROW(ex::GuardedEvaluator(
                   [](const arch::Config&, size_t) {
                     return ex::Objective{1.0, 1.0};
                   },
                   {}, nullptr),
               std::invalid_argument);
  EXPECT_THROW(ex::GuardedEvaluator(
                   [](const arch::Config&, size_t) {
                     return ex::Objective{1.0, 1.0};
                   },
                   ex::GuardOptions{.breaker_threshold = 0}, &rep),
               std::invalid_argument);
}

TEST(GuardedEvaluator, RetryIsADifferentAttemptDraw) {
  // Fails at attempt 0, succeeds at attempt 1 — like a flaky simulator whose
  // retry draws a fresh fault decision.
  GuardRig rig(
      [](const arch::Config& c, size_t attempt) {
        if (attempt == 0) {
          throw metadse::sim::SimulationFailure("flaky");
        }
        return ex::Objective{1.0 + static_cast<double>(c[0]), 10.0};
      },
      ex::GuardOptions{.max_retries = 2});
  const auto out = rig.guard.evaluate({cfg(1), cfg(2)});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_DOUBLE_EQ(out[0].ipc, 2.0);
  EXPECT_DOUBLE_EQ(out[1].ipc, 3.0);
  EXPECT_EQ(rig.report.evaluated, 2U);
  EXPECT_EQ(rig.report.retries, 2U);
  EXPECT_EQ(rig.report.failures, 2U);
  EXPECT_EQ(rig.report.dropped(), 0U);
  EXPECT_EQ(rig.guard.level(), ex::DegradeLevel::kSurrogate);
  // Backoff was charged (base 10ms for the single retry of each point) but
  // only through the hook-free accounting — no real sleeping in tests.
  EXPECT_EQ(rig.report.backoff_ms, 20U);
}

TEST(GuardedEvaluator, BackoffDoublesAndRespectsCap) {
  size_t calls = 0;
  std::vector<size_t> waits;
  GuardRig rig(
      [&calls](const arch::Config&, size_t) -> ex::Objective {
        ++calls;
        throw metadse::sim::SimulationFailure("down");
      },
      ex::GuardOptions{.max_retries = 4, .backoff_base_ms = 10,
                       .backoff_cap_ms = 35, .breaker_threshold = 100,
                       .policy = ex::DegradePolicy::kSkip});
  rig.guard.set_backoff_hook([&waits](size_t ms) { waits.push_back(ms); });
  rig.guard.evaluate({cfg(0)});
  EXPECT_EQ(calls, 5U);  // first attempt + 4 retries
  EXPECT_EQ(waits, (std::vector<size_t>{10, 20, 35, 35}));
  EXPECT_EQ(rig.report.dropped(), 1U);
}

TEST(GuardedEvaluator, RejectsNaNAndOutOfBandObjectives) {
  // One NaN, one absurd IPC, then a sane answer: both bad results must be
  // counted and retried past, never returned.
  size_t attempt_log = 0;
  GuardRig rig(
      [&attempt_log](const arch::Config&, size_t attempt) {
        ++attempt_log;
        if (attempt == 0) {
          return ex::Objective{std::numeric_limits<double>::quiet_NaN(), 1.0};
        }
        if (attempt == 1) return ex::Objective{999.0, 10.0};  // > ipc_max
        return ex::Objective{2.0, 10.0};
      },
      ex::GuardOptions{.max_retries = 2});
  const auto out = rig.guard.evaluate({cfg(0)});
  EXPECT_DOUBLE_EQ(out[0].ipc, 2.0);
  EXPECT_EQ(rig.report.nonfinite, 1U);
  EXPECT_EQ(rig.report.out_of_band, 1U);
  EXPECT_EQ(rig.report.evaluated, 1U);
  EXPECT_EQ(attempt_log, 3U);
}

TEST(GuardedEvaluator, BreakerOpensAndLadderFallsToBaseline) {
  // The primary dies for good; after breaker_threshold exhausted points the
  // level drops to the baseline rung, which answers everything else.
  GuardRig rig(
      [](const arch::Config&, size_t) -> ex::Objective {
        throw metadse::sim::SimulationTimeout("hung");
      },
      ex::GuardOptions{.max_retries = 1, .breaker_threshold = 2},
      [](const arch::Config& c) {
        return ex::Objective{0.5 + static_cast<double>(c[0]), 5.0};
      });
  std::vector<arch::Config> batch;
  for (size_t i = 0; i < 6; ++i) batch.push_back(cfg(i));
  const auto out = rig.guard.evaluate(batch);

  // Points 0-1 exhaust the primary; the ladder answers both via the
  // per-point baseline fallback, and the breaker opens on the second.
  EXPECT_EQ(rig.guard.level(), ex::DegradeLevel::kBaseline);
  EXPECT_EQ(rig.report.breaker_trips, 1U);
  EXPECT_EQ(rig.report.final_level, ex::DegradeLevel::kBaseline);
  EXPECT_EQ(rig.report.evaluated, 0U);
  EXPECT_EQ(rig.report.baseline_evals, 6U);
  EXPECT_EQ(rig.report.dropped(), 0U);
  EXPECT_EQ(rig.report.timeouts, 4U);  // 2 points x (1 try + 1 retry)
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(out[i].ipc, 0.5 + static_cast<double>(i));
  }
}

TEST(GuardedEvaluator, SkipPolicyQuarantinesInsteadOfBaseline) {
  GuardRig rig(
      [](const arch::Config&, size_t) -> ex::Objective {
        throw metadse::sim::SimulationFailure("dead");
      },
      ex::GuardOptions{.max_retries = 0, .breaker_threshold = 2,
                       .policy = ex::DegradePolicy::kSkip},
      [](const arch::Config&) { return ex::Objective{1.0, 1.0}; });
  std::vector<arch::Config> batch{cfg(0), cfg(1), cfg(2), cfg(3)};
  const auto out = rig.guard.evaluate(batch);
  EXPECT_EQ(rig.guard.level(), ex::DegradeLevel::kQuarantine);
  EXPECT_EQ(rig.report.baseline_evals, 0U);
  EXPECT_EQ(rig.report.dropped(), 4U);
  // Quarantined objectives are NaN sentinels the archive refuses.
  ex::ParetoArchive ar;
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(std::isnan(out[i].ipc));
    EXPECT_FALSE(ar.insert(batch[i], out[i]));
  }
  EXPECT_TRUE(ar.empty());
}

TEST(GuardedEvaluator, FailFastPolicyAborts) {
  GuardRig rig(
      [](const arch::Config&, size_t) -> ex::Objective {
        throw metadse::sim::SimulationFailure("dead");
      },
      ex::GuardOptions{.max_retries = 0, .breaker_threshold = 3,
                       .policy = ex::DegradePolicy::kFailFast});
  std::vector<arch::Config> batch{cfg(0), cfg(1), cfg(2), cfg(3)};
  EXPECT_THROW(rig.guard.evaluate(batch), ex::ExplorationAborted);
  EXPECT_EQ(rig.report.breaker_trips, 1U);
}

TEST(GuardedEvaluator, SuccessResetsTheBreaker) {
  // Alternating failure/success never reaches a threshold of 2.
  size_t n = 0;
  GuardRig rig(
      [&n](const arch::Config&, size_t) -> ex::Objective {
        if (n++ % 2 == 0) throw metadse::sim::SimulationFailure("blip");
        return ex::Objective{1.0, 1.0};
      },
      ex::GuardOptions{.max_retries = 0, .breaker_threshold = 2},
      [](const arch::Config&) { return ex::Objective{9.0, 9.0}; });
  std::vector<arch::Config> batch;
  for (size_t i = 0; i < 8; ++i) batch.push_back(cfg(i));
  rig.guard.evaluate(batch);
  EXPECT_EQ(rig.report.breaker_trips, 0U);
  EXPECT_EQ(rig.guard.level(), ex::DegradeLevel::kSurrogate);
}

TEST(GuardedEvaluator, BatchFastPathRetriesOnlyPoisonedPoints) {
  // The batched first attempt answers 3 of 4 points; the poisoned one goes
  // through the scalar retry path alone.
  size_t scalar_calls = 0;
  GuardRig rig(
      [&scalar_calls](const arch::Config& c, size_t) {
        ++scalar_calls;
        return ex::Objective{1.0 + static_cast<double>(c[0]), 10.0};
      },
      ex::GuardOptions{.max_retries = 2});
  rig.guard.set_batch_primary([](const std::vector<arch::Config>& batch) {
    std::vector<ex::Objective> out;
    for (const auto& c : batch) {
      out.push_back(c[0] == 2
                        ? ex::Objective{
                              std::numeric_limits<double>::infinity(), 1.0}
                        : ex::Objective{1.0 + static_cast<double>(c[0]), 10.0});
    }
    return out;
  });
  const auto out =
      rig.guard.evaluate({cfg(0), cfg(1), cfg(2), cfg(3)});
  EXPECT_EQ(scalar_calls, 1U);
  EXPECT_DOUBLE_EQ(out[2].ipc, 3.0);
  EXPECT_EQ(rig.report.nonfinite, 1U);
  EXPECT_EQ(rig.report.evaluated, 4U);
  // Accounting invariant: every point lands in exactly one bucket.
  EXPECT_EQ(rig.report.evaluated + rig.report.baseline_evals +
                rig.report.dropped(),
            4U);
}

TEST(GuardedEvaluator, BatchPrimarySizeMismatchIsContained) {
  GuardRig rig(
      [](const arch::Config& c, size_t) {
        return ex::Objective{1.0 + static_cast<double>(c[0]), 10.0};
      },
      ex::GuardOptions{});
  rig.guard.set_batch_primary(
      [](const std::vector<arch::Config>&) {
        return std::vector<ex::Objective>{};  // liar
      });
  const auto out = rig.guard.evaluate({cfg(0), cfg(1)});
  // The broken batch call counts one failure; every point is then answered
  // by the scalar path.
  EXPECT_EQ(rig.report.failures, 1U);
  EXPECT_EQ(rig.report.evaluated, 2U);
  EXPECT_DOUBLE_EQ(out[1].ipc, 2.0);
}

TEST(GuardedEvaluator, BlownDeadlineCancelsRestOfBatch) {
  // Satellite of the serving PR: once one point blows its per-call deadline,
  // the rest of the batch must not each run to their own overrun — they fall
  // straight down the ladder. The event log pins the exact sequence: the
  // primary is consulted exactly once (the slow point), its retry ladder is
  // abandoned, and every remaining point goes to the baseline in order.
  std::vector<std::string> events;
  GuardRig rig(
      [&events](const arch::Config& c, size_t) {
        events.push_back("primary:" + std::to_string(c[0]));
        if (c[0] == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(80));
        }
        return ex::Objective{1.0, 10.0};
      },
      ex::GuardOptions{.deadline_ms = 20, .max_retries = 2,
                       .breaker_threshold = 100},
      [&events](const arch::Config& c) {
        events.push_back("baseline:" + std::to_string(c[0]));
        return ex::Objective{0.5, 5.0};
      });
  const auto out = rig.guard.evaluate({cfg(0), cfg(1), cfg(2), cfg(3)});

  EXPECT_EQ(events,
            (std::vector<std::string>{"primary:0", "baseline:0", "baseline:1",
                                      "baseline:2", "baseline:3"}));
  EXPECT_EQ(rig.report.deadline_overruns, 1U);
  EXPECT_EQ(rig.report.retries, 0U) << "a doomed point must not retry";
  EXPECT_EQ(rig.report.cancelled, 3U);
  EXPECT_EQ(rig.report.baseline_evals, 4U);
  EXPECT_EQ(rig.report.evaluated, 0U);
  EXPECT_EQ(rig.report.dropped(), 0U);
  for (const auto& o : out) EXPECT_DOUBLE_EQ(o.ipc, 0.5);

  // The abort is per-batch: the next evaluate() starts with a clean flag
  // and the (now fast) primary answers again.
  events.clear();
  rig.guard.evaluate({cfg(1), cfg(2)});
  EXPECT_EQ(events,
            (std::vector<std::string>{"primary:1", "primary:2"}));
  EXPECT_EQ(rig.report.cancelled, 3U);
  EXPECT_EQ(rig.report.evaluated, 2U);
}

TEST(GuardedEvaluator, BlownDeadlineCancelIsOptional) {
  // With the cooperative abort off, every point runs to its own overrun —
  // the pre-PR behaviour stays reachable.
  size_t primary_calls = 0;
  GuardRig rig(
      [&primary_calls](const arch::Config&, size_t) {
        ++primary_calls;
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return ex::Objective{1.0, 10.0};
      },
      ex::GuardOptions{.deadline_ms = 5, .max_retries = 0,
                       .breaker_threshold = 100,
                       .cancel_batch_on_deadline = false},
      [](const arch::Config&) { return ex::Objective{0.5, 5.0}; });
  rig.guard.evaluate({cfg(0), cfg(1)});
  EXPECT_EQ(primary_calls, 2U);
  EXPECT_EQ(rig.report.deadline_overruns, 2U);
  EXPECT_EQ(rig.report.cancelled, 0U);
  EXPECT_EQ(rig.report.baseline_evals, 2U);
}

TEST(GuardedEvaluator, SessionBudgetChargesAttemptsAndBackoff) {
  // The session budget is charge-based: each attempt's wall clock and each
  // computed backoff (whether or not anything really sleeps) drain it.
  auto budget = std::make_shared<ex::DeadlineBudget>(10'000);
  GuardRig rig(
      [](const arch::Config& c, size_t attempt) {
        if (attempt == 0) throw metadse::sim::SimulationFailure("flaky");
        return ex::Objective{1.0 + static_cast<double>(c[0]), 10.0};
      },
      ex::GuardOptions{.max_retries = 2, .backoff_base_ms = 40});
  rig.guard.set_session_budget(budget);
  rig.guard.evaluate({cfg(1)});
  EXPECT_EQ(rig.report.retries, 1U);
  // One 40ms backoff was charged; the two near-instant attempts add noise
  // but never 40ms worth.
  EXPECT_GE(budget->consumed_ms(), 40U);
  EXPECT_LT(budget->consumed_ms(), 100U);
  EXPECT_EQ(budget->remaining_ms(), 10'000U - budget->consumed_ms());
  EXPECT_FALSE(budget->exhausted());
}

TEST(GuardedEvaluator, ExhaustedOrCancelledBudgetAbortsBeforeEvaluating) {
  size_t primary_calls = 0;
  auto primary = [&primary_calls](const arch::Config&, size_t) {
    ++primary_calls;
    return ex::Objective{1.0, 10.0};
  };
  {
    GuardRig rig(primary, ex::GuardOptions{});
    auto budget = std::make_shared<ex::DeadlineBudget>(5);
    budget->charge(6);  // queue wait alone overran the allowance
    rig.guard.set_session_budget(budget);
    EXPECT_THROW(rig.guard.evaluate({cfg(0)}), ex::ExplorationAborted);
    EXPECT_TRUE(rig.report.budget_exhausted);
  }
  {
    GuardRig rig(primary, ex::GuardOptions{});
    auto budget = std::make_shared<ex::DeadlineBudget>(0);  // unlimited...
    budget->cancel();  // ...but cancelled (watchdog / shutdown)
    rig.guard.set_session_budget(budget);
    EXPECT_THROW(rig.guard.evaluate({cfg(0)}), ex::ExplorationAborted);
    EXPECT_TRUE(rig.report.budget_exhausted);
  }
  EXPECT_EQ(primary_calls, 0U) << "a dead budget must not evaluate anything";
}

TEST(GuardedEvaluator, StartLevelBaselineSkipsTheSurrogate) {
  // A load-shedding server dispatches overloaded sessions straight onto the
  // baseline rung: the primary is never consulted.
  size_t primary_calls = 0;
  GuardRig rig(
      [&primary_calls](const arch::Config&, size_t) {
        ++primary_calls;
        return ex::Objective{2.0, 10.0};
      },
      ex::GuardOptions{.start_level = ex::DegradeLevel::kBaseline},
      [](const arch::Config& c) {
        return ex::Objective{0.5 + static_cast<double>(c[0]), 5.0};
      });
  const auto out = rig.guard.evaluate({cfg(0), cfg(1), cfg(2)});
  EXPECT_EQ(primary_calls, 0U);
  EXPECT_EQ(rig.report.baseline_evals, 3U);
  EXPECT_EQ(rig.report.evaluated, 0U);
  EXPECT_EQ(rig.guard.level(), ex::DegradeLevel::kBaseline);
  EXPECT_EQ(rig.report.final_level, ex::DegradeLevel::kBaseline);
  EXPECT_DOUBLE_EQ(out[2].ipc, 2.5);
}

TEST(GuardedEvaluator, StartLevelBaselineRequiresABaseline) {
  ex::RunReport rep;
  EXPECT_THROW(
      ex::GuardedEvaluator(
          [](const arch::Config&, size_t) {
            return ex::Objective{1.0, 1.0};
          },
          ex::GuardOptions{.start_level = ex::DegradeLevel::kBaseline}, &rep),
      std::invalid_argument);
}
