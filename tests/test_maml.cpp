// Meta-learning tests on a synthetic task family: FOMAML mechanics, the
// value of the learned initialization, Reptile, and meta-validation traces.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.hpp"
#include "meta/maml.hpp"
#include "tensor/ops.hpp"

namespace meta = metadse::meta;
namespace data = metadse::data;
namespace nn = metadse::nn;
namespace mt = metadse::tensor;

namespace {

constexpr size_t kFeatures = 4;

/// One synthetic "workload": y = a*sin(pi*x0) + b*x1 + c*x2*x3 + d.
data::Dataset family_dataset(float a, float b, float c, float d, size_t n,
                             uint64_t seed) {
  data::Dataset ds;
  ds.workload = "synthetic";
  mt::Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    data::Sample s;
    s.features.resize(kFeatures);
    for (auto& f : s.features) f = rng.uniform(0.0F, 1.0F);
    s.ipc = a * std::sin(3.14159F * s.features[0]) + b * s.features[1] +
            c * s.features[2] * s.features[3] + d;
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

nn::TransformerConfig tiny_cfg() {
  return {.n_tokens = kFeatures, .d_model = 8, .n_heads = 2, .n_layers = 1,
          .d_ff = 16, .n_outputs = 1};
}

meta::MamlOptions fast_opts() {
  meta::MamlOptions o;
  o.epochs = 4;
  o.tasks_per_workload = 12;
  o.support = 5;
  o.query = 20;
  o.inner_steps = 3;
  o.inner_lr = 0.05F;
  o.outer_lr = 2e-3F;
  o.meta_batch = 4;
  o.val_tasks_per_workload = 4;
  o.seed = 7;
  return o;
}

std::vector<data::Dataset> train_family() {
  return {family_dataset(1.0F, 0.5F, 0.8F, 0.2F, 150, 1),
          family_dataset(0.6F, 1.0F, 0.2F, 0.5F, 150, 2),
          family_dataset(1.4F, 0.2F, 0.5F, 0.0F, 150, 3),
          family_dataset(0.8F, 0.8F, 1.0F, 0.3F, 150, 4)};
}

/// Query RMSE (standardized space) of a model adapted on a task's support.
double adapted_query_rmse(const nn::TransformerRegressor& model,
                          const data::Scaler& scaler, const data::Task& task,
                          size_t steps, float lr) {
  auto sup_y = scaler.transform(task.support_y);
  auto qry_y = scaler.transform(task.query_y);
  auto adapted = meta::MamlTrainer::adapt_clone(model, task.support_x, sup_y,
                                                steps, lr);
  mt::Rng fwd(0);
  auto pred = adapted->forward(task.query_x, fwd);
  return metadse::eval::rmse(qry_y.data(), pred.data());
}

}  // namespace

TEST(MamlTrainer, OptionValidation) {
  auto o = fast_opts();
  o.support = 0;
  EXPECT_THROW(meta::MamlTrainer(tiny_cfg(), o), std::invalid_argument);
  meta::MamlTrainer t(tiny_cfg(), fast_opts());
  EXPECT_THROW(t.train({}, {}), std::invalid_argument);
  EXPECT_THROW(t.mean_attention(), std::logic_error);
}

TEST(MamlTrainer, MetaLossDecreasesAndAttentionAccumulates) {
  auto trains = train_family();
  std::vector<data::Dataset> vals{family_dataset(1.1F, 0.4F, 0.6F, 0.1F, 120, 9)};
  meta::MamlTrainer trainer(tiny_cfg(), fast_opts());
  trainer.train(trains, vals);
  const auto& tr = trainer.trace();
  ASSERT_EQ(tr.size(), fast_opts().epochs);
  EXPECT_LT(tr.back().train_meta_loss, tr.front().train_meta_loss);
  EXPECT_GT(trainer.attention_count(),
            fast_opts().epochs * fast_opts().tasks_per_workload);
  const auto attn = trainer.mean_attention();
  EXPECT_EQ(attn.shape(), (mt::Shape{kFeatures, kFeatures}));
  // Attention rows average to a stochastic map.
  for (size_t r = 0; r < kFeatures; ++r) {
    float s = 0.0F;
    for (size_t c = 0; c < kFeatures; ++c) s += attn.at({r, c});
    EXPECT_NEAR(s, 1.0F, 1e-3);
  }
}

TEST(MamlTrainer, MetaInitAdaptsBetterThanRandomInit) {
  auto trains = train_family();
  std::vector<data::Dataset> vals{
      family_dataset(0.9F, 0.6F, 0.4F, 0.4F, 120, 10)};
  auto opts = fast_opts();
  opts.epochs = 6;
  meta::MamlTrainer trainer(tiny_cfg(), opts);
  trainer.train(trains, vals);

  // Unseen task from the same family.
  auto test_ds = family_dataset(1.2F, 0.7F, 0.6F, 0.25F, 200, 11);
  data::TaskSampler sampler(test_ds, 10, 40, data::TargetMetric::kIpc);

  mt::Rng rng(12);
  nn::TransformerRegressor random_init(tiny_cfg(), rng);

  mt::Rng task_rng(13);
  double meta_err = 0.0;
  double rand_err = 0.0;
  const int n_tasks = 8;
  for (int k = 0; k < n_tasks; ++k) {
    auto task = sampler.sample(task_rng);
    meta_err += adapted_query_rmse(trainer.model(), trainer.scaler(), task,
                                   10, 0.05F);
    rand_err += adapted_query_rmse(random_init, trainer.scaler(), task, 10,
                                   0.05F);
  }
  EXPECT_LT(meta_err, rand_err * 0.8)
      << "meta " << meta_err / n_tasks << " rand " << rand_err / n_tasks;
}

TEST(MamlTrainer, AnilAlsoLearns) {
  auto trains = train_family();
  auto opts = fast_opts();
  opts.algorithm = meta::MetaAlgorithm::kAnil;
  meta::MamlTrainer trainer(tiny_cfg(), opts);
  trainer.train(trains, {});
  const auto& tr = trainer.trace();
  EXPECT_LT(tr.back().train_meta_loss, tr.front().train_meta_loss);
}

TEST(MamlTrainer, AdaptCloneHeadOnlyFreezesEncoder) {
  mt::Rng rng(30);
  nn::TransformerRegressor model(tiny_cfg(), rng);
  auto ds = family_dataset(1.0F, 0.5F, 0.3F, 0.1F, 60, 31);
  data::TaskSampler sampler(ds, 10, 20, data::TargetMetric::kIpc);
  mt::Rng trng(32);
  auto task = sampler.sample(trng);
  auto adapted = meta::MamlTrainer::adapt_clone(
      model, task.support_x, task.support_y, 5, 0.05F, /*head_only=*/true);
  // Head params changed, encoder params identical.
  const auto before = model.parameters();
  const auto after = adapted->parameters();
  const size_t n_head = model.head_parameters().size();
  size_t changed = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    changed += before[i].data() != after[i].data();
  }
  EXPECT_EQ(changed, n_head);
}

TEST(MamlTrainer, ReptileAlsoLearns) {
  auto trains = train_family();
  auto opts = fast_opts();
  opts.algorithm = meta::MetaAlgorithm::kReptile;
  opts.reptile_step = 0.4F;
  meta::MamlTrainer trainer(tiny_cfg(), opts);
  trainer.train(trains, {});
  const auto& tr = trainer.trace();
  EXPECT_LT(tr.back().train_meta_loss, tr.front().train_meta_loss);
}

TEST(MamlTrainer, AdaptCloneReducesSupportLoss) {
  mt::Rng rng(20);
  nn::TransformerRegressor model(tiny_cfg(), rng);
  auto ds = family_dataset(1.0F, 0.5F, 0.3F, 0.1F, 60, 21);
  data::TaskSampler sampler(ds, 10, 20, data::TargetMetric::kIpc);
  mt::Rng trng(22);
  auto task = sampler.sample(trng);
  mt::Rng fwd(0);
  auto before =
      mt::mse_loss(model.forward(task.support_x, fwd), task.support_y).item();
  auto adapted = meta::MamlTrainer::adapt_clone(model, task.support_x,
                                                task.support_y, 20, 0.05F);
  auto after = mt::mse_loss(adapted->forward(task.support_x, fwd),
                            task.support_y)
                   .item();
  EXPECT_LT(after, before);
  // The original model is untouched.
  auto still =
      mt::mse_loss(model.forward(task.support_x, fwd), task.support_y).item();
  EXPECT_FLOAT_EQ(still, before);
}
