// The inference fast path's contract: disabling grad mode changes
// bookkeeping, never arithmetic. Forward values must be bitwise identical to
// grad-mode forwards (transformer, attention with the WAM mask installed,
// ensembles), batched evaluation must be bitwise identical to the per-point
// loop (predict_batch, explorer), for any thread count — and the structural
// shortcuts (matmul_nt, direct mean, buffer-stealing reshape, the buffer
// pool) must preserve values and gradients.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arch/design_space.hpp"
#include "core/parallel.hpp"
#include "explore/explorer.hpp"
#include "meta/ensemble_adapt.hpp"
#include "nn/plan.hpp"
#include "nn/transformer.hpp"
#include "tensor/gradcheck.hpp"
#include "tensor/ops.hpp"
#include "tensor/pool.hpp"

namespace t = metadse::tensor;
namespace nn = metadse::nn;
namespace arch = metadse::arch;
namespace explore = metadse::explore;
namespace meta = metadse::meta;

namespace {

const std::vector<size_t> kThreadSweep = {1, 8};

struct ThreadGuard {
  ~ThreadGuard() { metadse::set_threads(1); }
};

nn::TransformerConfig small_cfg() {
  return {.n_tokens = 24, .d_model = 32, .n_heads = 4,
          .n_layers = 2, .d_ff = 64, .n_outputs = 1};
}

t::Tensor random_input(size_t batch, size_t n_tokens, uint64_t seed) {
  t::Rng rng(seed);
  return t::Tensor::uniform({batch, n_tokens}, rng, 0.0F, 1.0F);
}

// -- grad-vs-no-grad bitwise identity ----------------------------------------

TEST(NoGradEquivalence, TransformerForwardBitwiseAcrossThreads) {
  ThreadGuard guard;
  t::Rng rng(17);
  nn::TransformerRegressor model(small_cfg(), rng);
  auto x = random_input(5, 24, 3);
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    t::Rng fwd_a(0);
    auto with_grad = model.forward(x, fwd_a);
    ASSERT_TRUE(with_grad.requires_grad());
    std::vector<float> no_grad_vals;
    {
      t::NoGradGuard no_grad;
      t::Rng fwd_b(0);
      auto y = model.forward(x, fwd_b);
      EXPECT_FALSE(y.requires_grad());
      EXPECT_TRUE(y.node()->parents.empty());
      no_grad_vals = y.data();
    }
    EXPECT_EQ(with_grad.data(), no_grad_vals) << "threads=" << threads;
  }
}

TEST(NoGradEquivalence, AttentionWithWamMaskBitwiseAcrossThreads) {
  ThreadGuard guard;
  t::Rng rng(23);
  nn::TransformerRegressor model(small_cfg(), rng);
  auto mask = t::Tensor::uniform({24, 24}, rng, 0.0F, 1.0F);
  model.install_mask_all_layers(mask);
  auto x = random_input(3, 24, 7);
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    t::Rng fwd_a(0);
    auto with_grad = model.forward(x, fwd_a);
    std::vector<float> no_grad_vals;
    {
      t::NoGradGuard no_grad;
      t::Rng fwd_b(0);
      no_grad_vals = model.forward(x, fwd_b).data();
    }
    EXPECT_EQ(with_grad.data(), no_grad_vals) << "threads=" << threads;
  }
}

TEST(NoGradEquivalence, PredictBatchMatchesPredictOneBitwise) {
  ThreadGuard guard;
  t::Rng rng(29);
  nn::TransformerRegressor model(small_cfg(), rng);
  std::vector<std::vector<float>> rows;
  for (size_t i = 0; i < 9; ++i) {
    std::vector<float> r(24);
    for (auto& v : r) v = rng.uniform();
    rows.push_back(std::move(r));
  }
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    const auto batched = model.predict_batch(rows);
    ASSERT_EQ(batched.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(batched[i], model.predict_one(rows[i]))
          << "row " << i << " threads=" << threads;
    }
  }
}

TEST(NoGradEquivalence, EnsemblePredictBatchBitwiseAcrossThreads) {
  ThreadGuard guard;
  t::Rng rng(31);
  nn::TransformerRegressor pretrained(small_cfg(), rng);
  auto sx = t::Tensor::uniform({8, 24}, rng, 0.0F, 1.0F);
  auto sy = t::Tensor::uniform({8, 1}, rng, -1.0F, 1.0F);
  meta::EnsembleAdaptOptions opts;
  opts.n_members = 3;
  opts.adapt.steps = 2;
  opts.adapt.use_wam = false;
  const auto ens =
      meta::AdaptedEnsemble::create(pretrained, t::Tensor(), sx, sy, opts);

  std::vector<std::vector<float>> rows;
  for (size_t i = 0; i < 6; ++i) {
    std::vector<float> r(24);
    for (auto& v : r) v = rng.uniform();
    rows.push_back(std::move(r));
  }
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    const auto batched = ens.predict_batch(rows);
    ASSERT_EQ(batched.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto one = ens.predict(rows[i]);
      EXPECT_EQ(batched[i].mean, one.mean) << "row " << i;
      EXPECT_EQ(batched[i].stddev, one.stddev) << "row " << i;
    }
  }
}

// -- batched explorer == per-point loop --------------------------------------

TEST(NoGradEquivalence, ExplorerBatchedVsScalarIdenticalAcrossThreads) {
  ThreadGuard guard;
  const auto& space = arch::DesignSpace::table1();
  t::Rng rng(37);
  nn::TransformerRegressor model(small_cfg(), rng);

  auto power_of = [](const arch::Config& c) {
    double p = 1.0;
    for (size_t v : c) p += static_cast<double>(v);
    return p;
  };
  explore::Evaluator scalar_eval = [&](const arch::Config& c) {
    const float ipc = model.predict_one(space.normalize(c)).front();
    return explore::Objective{static_cast<double>(ipc), power_of(c)};
  };
  explore::BatchEvaluator batch_eval =
      [&](const std::vector<arch::Config>& batch) {
        std::vector<std::vector<float>> feats;
        feats.reserve(batch.size());
        for (const auto& c : batch) feats.push_back(space.normalize(c));
        const auto preds = model.predict_batch(feats);
        std::vector<explore::Objective> objs;
        objs.reserve(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          objs.push_back({static_cast<double>(preds[i].front()),
                          power_of(batch[i])});
        }
        return objs;
      };

  auto expect_same = [](const explore::ParetoArchive& a,
                        const explore::ParetoArchive& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.entries()[i].config, b.entries()[i].config) << "entry " << i;
      EXPECT_EQ(a.entries()[i].objective.ipc, b.entries()[i].objective.ipc);
      EXPECT_EQ(a.entries()[i].objective.power,
                b.entries()[i].objective.power);
    }
  };

  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    explore::ExplorerOptions opts{.initial_samples = 16, .iterations = 32,
                                  .seed = 5, .eval_batch = 4};
    explore::EvolutionaryExplorer explorer(opts);
    const auto scalar_front = explorer.explore(space, scalar_eval);
    const auto batch_front = explorer.explore(space, batch_eval);
    expect_same(scalar_front, batch_front);

    t::Rng rs_a(9);
    t::Rng rs_b(9);
    const auto rs_scalar = explore::random_search(space, scalar_eval, 40, rs_a);
    const auto rs_batch =
        explore::random_search(space, batch_eval, 40, rs_b, 6);
    expect_same(rs_scalar, rs_batch);
  }
}

// -- structural shortcuts ----------------------------------------------------

TEST(NoGradEquivalence, MatmulNtMatchesMatmulTransposeBitwise) {
  ThreadGuard guard;
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    t::Rng rng(41);
    auto a = t::Tensor::uniform({2, 3, 5, 4}, rng, -1.0F, 1.0F, true);
    auto b = t::Tensor::uniform({2, 3, 6, 4}, rng, -1.0F, 1.0F, true);
    auto a2 = t::Tensor::from_vector(a.shape(), a.data(), true);
    auto b2 = t::Tensor::from_vector(b.shape(), b.data(), true);

    auto nt = t::matmul_nt(a, b);
    auto ref = t::matmul(a2, t::transpose_last(b2));
    ASSERT_EQ(nt.shape(), ref.shape());
    EXPECT_EQ(nt.data(), ref.data()) << "threads=" << threads;

    // Gradients accumulate the same terms in the same order on both routes.
    t::sum(nt).backward();
    t::sum(ref).backward();
    EXPECT_EQ(a.grad(), a2.grad());
    EXPECT_EQ(b.grad(), b2.grad());
  }
}

TEST(NoGradEquivalence, MatmulNtGradcheck) {
  t::Rng rng(43);
  auto a = t::Tensor::uniform({3, 4}, rng, -1.0F, 1.0F, true);
  auto b = t::Tensor::uniform({5, 4}, rng, -1.0F, 1.0F, true);
  auto res = t::grad_check([&] { return t::mean(t::matmul_nt(a, b)); },
                           {a, b});
  EXPECT_TRUE(res.ok()) << "violations=" << res.violations;
}

TEST(NoGradEquivalence, MeanDirectGradcheck) {
  t::Rng rng(47);
  auto a = t::Tensor::uniform({4, 6}, rng, -2.0F, 2.0F, true);
  auto r1 = t::grad_check([&] { return t::mean(a); }, {a});
  EXPECT_TRUE(r1.ok());
  auto r2 = t::grad_check([&] { return t::mean(t::mean_axis(a, 1)); }, {a});
  EXPECT_TRUE(r2.ok());
  auto r3 = t::grad_check(
      [&] { return t::mean(t::mean_axis(a, 0, /*keepdim=*/true)); }, {a});
  EXPECT_TRUE(r3.ok());
}

TEST(NoGradEquivalence, MeanMatchesSumDivComposition) {
  t::Rng rng(53);
  auto a = t::Tensor::uniform({7, 3}, rng, -1.0F, 1.0F);
  EXPECT_EQ(t::mean(a).item(),
            t::div(t::sum(a), static_cast<float>(a.size())).item());
  auto direct = t::mean_axis(a, 1);
  auto composed = t::div(t::sum_axis(a, 1), 3.0F);
  EXPECT_EQ(direct.data(), composed.data());
}

TEST(NoGradEquivalence, ReshapeRvalueStealsBufferInNoGradMode) {
  t::NoGradGuard no_grad;
  t::Rng rng(59);
  auto x = t::Tensor::uniform({4, 6}, rng, 0.0F, 1.0F);
  const std::vector<float> expected = x.data();
  const float* buf = x.data().data();
  auto r = t::reshape(std::move(x), {3, 8});
  EXPECT_EQ(r.data().data(), buf);  // stolen, not copied
  EXPECT_EQ(r.data(), expected);
  EXPECT_EQ(r.shape(), (t::Shape{3, 8}));
}

TEST(NoGradEquivalence, ReshapeRvalueFallsBackWhenShared) {
  t::NoGradGuard no_grad;
  t::Rng rng(61);
  auto x = t::Tensor::uniform({4, 6}, rng, 0.0F, 1.0F);
  auto alias = x;  // second owner: stealing would corrupt it
  auto r = t::reshape(std::move(x), {24});
  EXPECT_NE(r.data().data(), alias.data().data());
  EXPECT_EQ(r.data(), alias.data());
}

TEST(NoGradEquivalence, BufferPoolSteadyStateZeroAllocations) {
  ThreadGuard guard;
  metadse::set_threads(1);
  // This test asserts the *eager* pooled fast path; with planning enabled
  // predict_one is served from a static arena and never touches the pool
  // (that property is asserted in test_plan_equivalence.cpp).
  nn::plan::PlanModeGuard eager_only(false);
  t::Rng rng(67);
  nn::TransformerRegressor model(small_cfg(), rng);
  std::vector<float> features(24);
  for (auto& f : features) f = rng.uniform();
  // Warm the thread-local pool, then demand that further forwards are served
  // entirely from it.
  for (int i = 0; i < 3; ++i) (void)model.predict_one(features);
  t::BufferPool::reset_stats();
  const auto before = model.predict_one(features);
  const auto stats = t::BufferPool::stats();
  EXPECT_EQ(stats.vec_allocated, 0U)
      << "reused=" << stats.vec_reused;
  EXPECT_EQ(stats.block_allocated, 0U)
      << "reused=" << stats.block_reused;
  EXPECT_GT(stats.vec_reused, 0U);
  // And the values keep matching the grad-mode forward.
  auto x = t::Tensor::from_vector({1, 24}, features);
  t::Rng fwd(0);
  EXPECT_EQ(model.forward(x, fwd).data(), before);
}

}  // namespace
