// Fault-injection contract: the injector is a pure function of its seeds,
// dataset generation survives (and accounts for) every failure mode, and
// meta-training stays finite when bad labels slip through anyway.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/metadse.hpp"
#include "sim/fault_injection.hpp"
#include "tensor/guard.hpp"

namespace core = metadse::core;
namespace data = metadse::data;
namespace meta = metadse::meta;
namespace sim = metadse::sim;
namespace mt = metadse::tensor;

namespace {

core::FrameworkOptions tiny() {
  core::FrameworkOptions o;
  o.samples_per_workload = 150;
  o.maml.epochs = 1;
  o.maml.tasks_per_workload = 4;
  o.maml.val_tasks_per_workload = 2;
  o.maml.seed = 5;
  o.seed = 55;
  return o;
}

sim::FaultPlan issue_plan() {  // the acceptance-criteria plan: 5% NaN + 5% fail
  sim::FaultPlan p;
  p.fail_rate = 0.05;
  p.nan_rate = 0.05;
  return p;
}

}  // namespace

TEST(FaultInjector, RejectsInvalidRates) {
  sim::FaultPlan p;
  p.fail_rate = 1.5;
  EXPECT_THROW(sim::FaultInjector{p}, std::invalid_argument);
  p.fail_rate = -0.1;
  EXPECT_THROW(sim::FaultInjector{p}, std::invalid_argument);
  p.fail_rate = 0.0;
  p.persistent_fraction = 2.0;
  EXPECT_THROW(sim::FaultInjector{p}, std::invalid_argument);
}

TEST(FaultInjector, OutcomeIsPureFunctionOfSeedKeyAttempt) {
  sim::FaultPlan p;
  p.fail_rate = 0.2;
  p.timeout_rate = 0.1;
  p.nan_rate = 0.1;
  p.garbage_rate = 0.1;
  sim::FaultInjector a(p);
  sim::FaultInjector b(p);
  for (uint64_t key = 0; key < 200; ++key) {
    for (size_t attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(a.outcome(key, attempt), b.outcome(key, attempt));
    }
  }
  // A different seed reshuffles the outcomes.
  p.seed = 12345;
  sim::FaultInjector c(p);
  size_t differs = 0;
  for (uint64_t key = 0; key < 200; ++key) {
    if (a.outcome(key, 0) != c.outcome(key, 0)) ++differs;
  }
  EXPECT_GT(differs, 0U);
}

TEST(FaultInjector, RatesAreApproximatelyHonoured) {
  sim::FaultPlan p;
  p.fail_rate = 0.5;
  sim::FaultInjector inj(p);
  size_t fails = 0;
  const size_t n = 4000;
  for (uint64_t key = 0; key < n; ++key) {
    if (inj.outcome(sim::FaultInjector::point_key({key, key + 1}), 0) ==
        sim::FaultOutcome::kFail) {
      ++fails;
    }
  }
  const double rate = static_cast<double>(fails) / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.5, 0.05);
}

TEST(FaultInjector, PersistentPointsFailOnEveryAttempt) {
  sim::FaultPlan p;
  p.fail_rate = 0.5;
  p.persistent_fraction = 1.0;  // every hit point is persistent
  sim::FaultInjector inj(p);
  size_t persistent_seen = 0;
  for (uint64_t key = 0; key < 500; ++key) {
    if (inj.outcome(key, 0) != sim::FaultOutcome::kFail) continue;
    ++persistent_seen;
    for (size_t attempt = 1; attempt < 5; ++attempt) {
      EXPECT_EQ(inj.outcome(key, attempt), sim::FaultOutcome::kFail);
    }
  }
  EXPECT_GT(persistent_seen, 0U);
}

TEST(FaultInjector, TransientFaultsCanClearOnRetry) {
  sim::FaultPlan p;
  p.fail_rate = 0.5;  // persistent_fraction = 0: all faults transient
  sim::FaultInjector inj(p);
  bool cleared = false;
  for (uint64_t key = 0; key < 500 && !cleared; ++key) {
    if (inj.outcome(key, 0) != sim::FaultOutcome::kFail) continue;
    for (size_t attempt = 1; attempt < 5; ++attempt) {
      if (inj.outcome(key, attempt) == sim::FaultOutcome::kOk) cleared = true;
    }
  }
  EXPECT_TRUE(cleared);
}

TEST(FaultInjector, CorruptLabelsMatchOutcome) {
  sim::FaultPlan p;
  p.nan_rate = 0.5;
  p.garbage_rate = 0.5;
  sim::FaultInjector inj(p);
  const auto [ni, np] = inj.corrupt_labels(sim::FaultOutcome::kNanLabel, 7, 0);
  EXPECT_TRUE(std::isnan(ni));
  EXPECT_TRUE(std::isnan(np));
  const auto [gi, gp] = inj.corrupt_labels(sim::FaultOutcome::kGarbage, 7, 0);
  EXPECT_TRUE(std::isfinite(gi));
  EXPECT_TRUE(std::isfinite(gp));
  // Garbage is wild: far outside any physical IPC/power range.
  EXPECT_TRUE(std::abs(gi) > 128.0 || std::abs(gp) > 1e5);
}

TEST(DatasetGenerator, RejectsZeroAttemptRetryPolicy) {
  core::MetaDseFramework fw(tiny());
  data::DatasetGenerator gen(fw.space());
  data::RetryPolicy rp;
  rp.max_attempts = 0;
  EXPECT_THROW(gen.set_retry_policy(rp), std::invalid_argument);
}

TEST(DatasetGenerator, FaultFreePlanLeavesGenerationUntouched) {
  core::MetaDseFramework a(tiny());
  core::MetaDseFramework b(tiny());
  b.set_fault_plan(sim::FaultPlan{});  // all-zero rates: disarmed
  const auto& da = a.dataset("605.mcf_s");
  const auto& db = b.dataset("605.mcf_s");
  ASSERT_EQ(da.size(), db.size());
  for (size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da.samples[i].ipc, db.samples[i].ipc);
    EXPECT_EQ(da.samples[i].power, db.samples[i].power);
  }
  const auto& report = b.generation_report("605.mcf_s");
  EXPECT_EQ(report.generated, report.requested);
  EXPECT_EQ(report.dropped(), 0U);
  EXPECT_FALSE(report.degraded());
}

TEST(DatasetGenerator, SurvivesFaultsWithAccounting) {
  core::MetaDseFramework fw(tiny());
  sim::FaultPlan p;
  p.fail_rate = 0.10;
  p.timeout_rate = 0.05;
  p.nan_rate = 0.05;
  p.garbage_rate = 0.05;
  p.persistent_fraction = 0.3;
  fw.set_fault_plan(p);
  const auto& ds = fw.dataset("605.mcf_s");
  const auto& report = fw.generation_report("605.mcf_s");

  EXPECT_EQ(report.requested, tiny().samples_per_workload);
  EXPECT_EQ(report.generated, ds.size());
  EXPECT_EQ(report.generated + report.dropped(), report.requested);
  // At these rates some attempts must have failed and been retried.
  EXPECT_GT(report.failures + report.timeouts + report.nonfinite_labels +
                report.implausible_labels,
            0U);
  EXPECT_GT(report.retries, 0U);
  EXPECT_FALSE(report.summary().empty());
  // Every surviving label is genuine: finite and physically plausible.
  for (const auto& s : ds.samples) {
    EXPECT_TRUE(std::isfinite(s.ipc));
    EXPECT_TRUE(std::isfinite(s.power));
    EXPECT_GE(s.ipc, 0.0F);
    EXPECT_LT(s.ipc, 128.0F);
    EXPECT_GE(s.power, 0.0F);
    EXPECT_LT(s.power, 1e5F);
  }
}

TEST(DatasetGenerator, BackoffHookObservesExponentialSchedule) {
  core::MetaDseFramework fw(tiny());
  data::DatasetGenerator gen(fw.space());
  sim::FaultPlan p;
  p.fail_rate = 0.3;
  gen.set_fault_plan(p);
  data::RetryPolicy rp;
  rp.max_attempts = 4;
  rp.backoff_base_ms = 10;
  rp.backoff_cap_ms = 15;
  gen.set_retry_policy(rp);
  std::vector<size_t> waits;
  gen.set_backoff_hook([&](size_t ms) { waits.push_back(ms); });
  mt::Rng rng(7);
  data::GenerationReport report;
  gen.generate(fw.suite().by_name("605.mcf_s"), 100, rng, true, &report);
  ASSERT_FALSE(waits.empty());
  size_t total = 0;
  for (size_t w : waits) {
    EXPECT_TRUE(w == 10 || w == 15) << w;  // base, then capped double
    total += w;
  }
  EXPECT_EQ(total, report.backoff_ms);
}

TEST(Determinism, FaultInjectedPipelineIsSeedPure) {
  core::MetaDseFramework a(tiny());
  core::MetaDseFramework b(tiny());
  sim::FaultPlan p;
  p.fail_rate = 0.08;
  p.nan_rate = 0.05;
  p.garbage_rate = 0.03;
  p.persistent_fraction = 0.5;
  a.set_fault_plan(p);
  b.set_fault_plan(p);

  const auto& da = a.dataset("605.mcf_s");
  const auto& db = b.dataset("605.mcf_s");
  ASSERT_EQ(da.size(), db.size());
  for (size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da.samples[i].config, db.samples[i].config);
    EXPECT_EQ(da.samples[i].ipc, db.samples[i].ipc);
    EXPECT_EQ(da.samples[i].power, db.samples[i].power);
  }
  const auto& ra = a.generation_report("605.mcf_s");
  const auto& rb = b.generation_report("605.mcf_s");
  EXPECT_EQ(ra.retries, rb.retries);
  EXPECT_EQ(ra.failures, rb.failures);
  EXPECT_EQ(ra.nonfinite_labels, rb.nonfinite_labels);
  EXPECT_EQ(ra.backoff_ms, rb.backoff_ms);
  ASSERT_EQ(ra.quarantined.size(), rb.quarantined.size());
  for (size_t i = 0; i < ra.quarantined.size(); ++i) {
    EXPECT_EQ(ra.quarantined[i], rb.quarantined[i]);
  }

  // Meta-training on fault-degraded datasets is still seed-pure.
  a.pretrain();
  b.pretrain();
  EXPECT_EQ(a.model().flatten_parameters(), b.model().flatten_parameters());
  ASSERT_EQ(a.trace().size(), b.trace().size());
  for (size_t e = 0; e < a.trace().size(); ++e) {
    EXPECT_EQ(a.trace()[e].train_meta_loss, b.trace()[e].train_meta_loss);
    EXPECT_EQ(a.trace()[e].val_loss, b.trace()[e].val_loss);
    EXPECT_EQ(a.trace()[e].skipped_tasks, b.trace()[e].skipped_tasks);
  }
}

TEST(MamlRobustness, RecoversFromNanLabelsInTrainingData) {
  // Hand-corrupt a fraction of one source dataset with NaN labels: the
  // scaler must skip them and the trainer must skip the poisoned tasks,
  // ending with finite parameters.
  core::MetaDseFramework fw(tiny());
  auto train = fw.datasets({"605.mcf_s", "627.cam4_s"});
  for (size_t i = 0; i < train[0].size(); i += 7) {
    train[0].samples[i].ipc = std::numeric_limits<float>::quiet_NaN();
  }

  meta::MamlOptions mo = tiny().maml;
  mo.epochs = 2;
  mo.tasks_per_workload = 6;
  meta::MamlTrainer trainer(tiny().predictor, mo);
  trainer.train(train, {});

  EXPECT_FALSE(mt::has_nonfinite(trainer.model().flatten_parameters()));
  size_t skipped = 0;
  for (const auto& tr : trainer.trace()) skipped += tr.skipped_tasks;
  EXPECT_GT(skipped, 0U);  // the poison was seen and dropped, not averaged in
  // At least one task per epoch still contributed a finite meta-loss.
  for (const auto& tr : trainer.trace()) {
    EXPECT_TRUE(std::isfinite(tr.train_meta_loss));
  }
}

TEST(Scaler, FitSkipsNonFiniteRowsAndThrowsWhenNoneSurvive) {
  data::Scaler sc;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  sc.fit(std::vector<std::vector<float>>{{1.0F}, {nan}, {3.0F}});
  EXPECT_FLOAT_EQ(sc.mean()[0], 2.0F);  // the NaN row is not averaged in
  data::Scaler bad;
  EXPECT_THROW(
      bad.fit(std::vector<std::vector<float>>{{nan}, {nan}}),
      std::invalid_argument);
  EXPECT_FALSE(bad.fitted());
}

TEST(FaultTolerance, FaultyPretrainStaysWithinRmseBudget) {
  // The headline robustness claim: 5% NaN labels + 5% simulator failures
  // degrade the dataset, not the science. Same seeds, with and without the
  // fault plan; adapted-task RMSE must stay within 15%.
  core::MetaDseFramework clean(tiny());
  core::MetaDseFramework faulty(tiny());
  faulty.set_fault_plan(issue_plan());

  clean.pretrain();
  faulty.pretrain();

  EXPECT_FALSE(mt::has_nonfinite(faulty.model().flatten_parameters()));
  EXPECT_FALSE(faulty.generation_reports().empty());
  bool any_event = false;
  for (const auto& [wl, report] : faulty.generation_reports()) {
    if (report.retries > 0 || report.degraded()) any_event = true;
  }
  EXPECT_TRUE(any_event);

  auto mean_rmse = [](core::MetaDseFramework& fw) {
    mt::Rng rng(9);
    const auto evals = fw.evaluate("623.xalancbmk_s", 4, 8, 20, true, rng);
    double sum = 0.0;
    for (const auto& e : evals) sum += e.rmse;
    return sum / static_cast<double>(evals.size());
  };
  const double rc = mean_rmse(clean);
  const double rf = mean_rmse(faulty);
  EXPECT_TRUE(std::isfinite(rf));
  EXPECT_LE(rf, rc * 1.15) << "clean=" << rc << " faulty=" << rf;
}
