// Reproducibility contract: the entire pipeline is a pure function of its
// seeds. Two frameworks with identical options must produce bit-identical
// datasets, meta-trained parameters, WAM masks, and adapted predictions.
#include <gtest/gtest.h>

#include "core/metadse.hpp"

namespace core = metadse::core;
namespace data = metadse::data;
namespace mt = metadse::tensor;

namespace {

core::FrameworkOptions tiny() {
  core::FrameworkOptions o;
  o.samples_per_workload = 150;
  o.maml.epochs = 1;
  o.maml.tasks_per_workload = 4;
  o.maml.val_tasks_per_workload = 2;
  o.maml.seed = 5;
  o.seed = 55;
  return o;
}

}  // namespace

TEST(Determinism, EndToEndPipelineIsSeedPure) {
  core::MetaDseFramework a(tiny());
  core::MetaDseFramework b(tiny());

  // Datasets.
  const auto& da = a.dataset("605.mcf_s");
  const auto& db = b.dataset("605.mcf_s");
  ASSERT_EQ(da.size(), db.size());
  for (size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da.samples[i].config, db.samples[i].config);
    EXPECT_EQ(da.samples[i].ipc, db.samples[i].ipc);
    EXPECT_EQ(da.samples[i].power, db.samples[i].power);
  }

  // Meta-training.
  a.pretrain();
  b.pretrain();
  EXPECT_EQ(a.model().flatten_parameters(), b.model().flatten_parameters());
  EXPECT_EQ(a.wam_mask().data(), b.wam_mask().data());
  EXPECT_EQ(a.mean_attention().data(), b.mean_attention().data());
  ASSERT_EQ(a.trace().size(), b.trace().size());
  for (size_t e = 0; e < a.trace().size(); ++e) {
    EXPECT_EQ(a.trace()[e].train_meta_loss, b.trace()[e].train_meta_loss);
    EXPECT_EQ(a.trace()[e].val_loss, b.trace()[e].val_loss);
  }

  // Adaptation + prediction.
  data::Dataset support;
  support.workload = da.workload;
  for (size_t i = 0; i < 8; ++i) support.samples.push_back(da.samples[i]);
  const auto pa = a.adapt_to(support);
  const auto pb = b.adapt_to(support);
  for (size_t i = 20; i < 26; ++i) {
    EXPECT_EQ(pa.predict(da.samples[i].features),
              pb.predict(da.samples[i].features));
  }

  // Evaluation (same rng seed -> identical task draws and metrics).
  mt::Rng ra(9);
  mt::Rng rb(9);
  const auto ea = a.evaluate("627.cam4_s", 3, 8, 20, true, ra);
  const auto eb = b.evaluate("627.cam4_s", 3, 8, 20, true, rb);
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].rmse, eb[i].rmse);
    EXPECT_EQ(ea[i].mape, eb[i].mape);
    EXPECT_EQ(ea[i].ev, eb[i].ev);
  }
}
