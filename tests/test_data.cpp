// Data-layer tests: dataset generation, task sampling, label scaling, CSV.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "data/dataset.hpp"

namespace data = metadse::data;
namespace arch = metadse::arch;
namespace wl = metadse::workload;
namespace mt = metadse::tensor;

namespace {
const wl::SpecSuite& suite() {
  static wl::SpecSuite s;
  return s;
}
data::Dataset small_dataset(size_t n = 120, uint64_t seed = 5) {
  data::DatasetGenerator gen(arch::DesignSpace::table1());
  mt::Rng rng(seed);
  return gen.generate(suite().by_name("605.mcf_s"), n, rng);
}
}  // namespace

TEST(TargetMetric, WidthAndSelection) {
  data::Sample s;
  s.ipc = 1.5F;
  s.power = 8.0F;
  EXPECT_EQ(data::target_width(data::TargetMetric::kIpc), 1U);
  EXPECT_EQ(data::target_width(data::TargetMetric::kBoth), 2U);
  EXPECT_EQ(data::target_of(s, data::TargetMetric::kIpc),
            std::vector<float>{1.5F});
  EXPECT_EQ(data::target_of(s, data::TargetMetric::kPower),
            std::vector<float>{8.0F});
  EXPECT_EQ(data::target_of(s, data::TargetMetric::kBoth),
            (std::vector<float>{1.5F, 8.0F}));
}

TEST(DatasetGenerator, ProducesLabelledNormalizedSamples) {
  auto ds = small_dataset();
  EXPECT_EQ(ds.workload, "605.mcf_s");
  EXPECT_EQ(ds.size(), 120U);
  const auto& space = arch::DesignSpace::table1();
  for (const auto& s : ds.samples) {
    EXPECT_TRUE(space.valid(s.config));
    EXPECT_EQ(s.features.size(), space.num_params());
    for (float f : s.features) {
      EXPECT_GE(f, 0.0F);
      EXPECT_LE(f, 1.0F);
    }
    EXPECT_GT(s.ipc, 0.0F);
    EXPECT_GT(s.power, 0.0F);
  }
}

TEST(DatasetGenerator, EvaluateMatchesGenerateLabels) {
  data::DatasetGenerator gen(arch::DesignSpace::table1());
  auto ds = small_dataset(10, 9);
  const auto& w = suite().by_name("605.mcf_s");
  for (const auto& s : ds.samples) {
    const auto [ipc, power] = gen.evaluate(s.config, w);
    EXPECT_FLOAT_EQ(s.ipc, static_cast<float>(ipc));
    EXPECT_FLOAT_EQ(s.power, static_cast<float>(power));
  }
}

TEST(DatasetGenerator, DeterministicPerSeed) {
  auto a = small_dataset(50, 42);
  auto b = small_dataset(50, 42);
  auto c = small_dataset(50, 43);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.samples[7].ipc, b.samples[7].ipc);
  EXPECT_EQ(a.samples[7].config, b.samples[7].config);
  bool any_diff = false;
  for (size_t i = 0; i < 50; ++i) {
    any_diff = any_diff || a.samples[i].config != c.samples[i].config;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TaskSampler, ShapesAndDisjointness) {
  auto ds = small_dataset();
  data::TaskSampler sampler(ds, 5, 45, data::TargetMetric::kIpc);
  mt::Rng rng(3);
  auto task = sampler.sample(rng);
  EXPECT_EQ(task.support_x.shape(), (mt::Shape{5, 24}));
  EXPECT_EQ(task.support_y.shape(), (mt::Shape{5, 1}));
  EXPECT_EQ(task.query_x.shape(), (mt::Shape{45, 24}));
  EXPECT_EQ(task.query_y.shape(), (mt::Shape{45, 1}));
  // Support and query rows are disjoint: no feature row repeats.
  std::set<std::vector<float>> rows;
  for (size_t i = 0; i < 5; ++i) {
    std::vector<float> r(task.support_x.data().begin() + i * 24,
                         task.support_x.data().begin() + (i + 1) * 24);
    rows.insert(std::move(r));
  }
  for (size_t i = 0; i < 45; ++i) {
    std::vector<float> r(task.query_x.data().begin() + i * 24,
                         task.query_x.data().begin() + (i + 1) * 24);
    EXPECT_EQ(rows.count(r), 0U);
  }
}

TEST(TaskSampler, ValidatesSizes) {
  auto ds = small_dataset(20);
  EXPECT_THROW(data::TaskSampler(ds, 0, 5, data::TargetMetric::kIpc),
               std::invalid_argument);
  EXPECT_THROW(data::TaskSampler(ds, 10, 15, data::TargetMetric::kIpc),
               std::invalid_argument);
}

TEST(TaskSampler, SplitAllCoversDataset) {
  auto ds = small_dataset(30);
  data::TaskSampler sampler(ds, 10, 5, data::TargetMetric::kBoth);
  mt::Rng rng(4);
  auto task = sampler.split_all(rng);
  EXPECT_EQ(task.support_x.dim(0), 10U);
  EXPECT_EQ(task.query_x.dim(0), 20U);  // the rest, not just `query`
  EXPECT_EQ(task.support_y.dim(1), 2U);
}

TEST(Scaler, RoundTripAndConstantColumns) {
  data::Scaler sc;
  sc.fit({{1.0F, 5.0F}, {3.0F, 5.0F}, {5.0F, 5.0F}});
  EXPECT_TRUE(sc.fitted());
  EXPECT_FLOAT_EQ(sc.mean()[0], 3.0F);
  EXPECT_FLOAT_EQ(sc.mean()[1], 5.0F);
  const auto t = sc.transform({3.0F, 5.0F});
  EXPECT_FLOAT_EQ(t[0], 0.0F);
  EXPECT_FLOAT_EQ(t[1], 0.0F);  // constant column: identity scale, no NaN
  const auto back = sc.inverse(sc.transform({4.2F, 5.0F}));
  EXPECT_NEAR(back[0], 4.2F, 1e-5);
  EXPECT_THROW(sc.transform({1.0F}), std::invalid_argument);
  EXPECT_THROW(data::Scaler().fit(std::vector<std::vector<float>>{}),
               std::invalid_argument);
}

TEST(Scaler, TensorTransformMatchesRowTransform) {
  auto ds = small_dataset(60);
  data::Scaler sc;
  sc.fit({ds}, data::TargetMetric::kIpc);
  auto y = mt::Tensor::from_vector({3, 1},
                                   {ds.samples[0].ipc, ds.samples[1].ipc,
                                    ds.samples[2].ipc});
  auto t = sc.transform(y);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(t.data()[i], sc.transform({ds.samples[i].ipc})[0]);
  }
  auto back = sc.inverse(t);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(back.data()[i], ds.samples[i].ipc, 1e-4);
  }
}

TEST(WriteCsv, ProducesParseableFile) {
  auto ds = small_dataset(10);
  const std::string path = ::testing::TempDir() + "metadse_ds.csv";
  data::write_csv(ds, arch::DesignSpace::table1(), path);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string header;
  std::getline(is, header);
  EXPECT_NE(header.find("core_freq_ghz"), std::string::npos);
  EXPECT_NE(header.find("ipc,power"), std::string::npos);
  size_t lines = 0;
  std::string line;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 10U);
  std::remove(path.c_str());
}

TEST(DatasetGenerator, TraceDrivenBackend) {
  data::DatasetGenerator gen(arch::DesignSpace::table1());
  data::TraceBackendOptions topt;
  topt.instructions = 8000;
  topt.max_phases = 2;
  gen.set_backend(data::SimBackend::kTraceDriven, topt);
  EXPECT_EQ(gen.backend(), data::SimBackend::kTraceDriven);
  mt::Rng rng(31);
  const auto ds = gen.generate(suite().by_name("605.mcf_s"), 4, rng);
  for (const auto& s : ds.samples) {
    EXPECT_GT(s.ipc, 0.0F);
    EXPECT_LT(s.ipc, 12.0F);
    EXPECT_GT(s.power, 0.0F);
  }
  // Deterministic.
  mt::Rng rng2(31);
  const auto ds2 = gen.generate(suite().by_name("605.mcf_s"), 4, rng2);
  EXPECT_EQ(ds.samples[0].ipc, ds2.samples[0].ipc);
  EXPECT_THROW(gen.set_backend(data::SimBackend::kTraceDriven,
                               {.instructions = 0}),
               std::invalid_argument);
}

TEST(MakeTask, RejectsEmptyDataset) {
  data::Dataset empty;
  EXPECT_THROW(data::make_task(empty, {0}, {1}, data::TargetMetric::kIpc),
               std::invalid_argument);
}
