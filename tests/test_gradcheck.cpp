// Finite-difference verification of every differentiable op's backward pass.
// These are the load-bearing tests for the whole learning stack: if these
// pass, MAML's unrolled gradients are trustworthy.
#include <gtest/gtest.h>

#include "core/parallel.hpp"
#include "tensor/gradcheck.hpp"
#include "tensor/ops.hpp"

namespace mt = metadse::tensor;

namespace {

/// Checks d(reduce(f(params...)))/d(params) against finite differences.
void expect_grad_ok(const std::function<mt::Tensor()>& loss,
                    const std::vector<mt::Tensor>& params,
                    double rtol = 5e-2) {
  const auto res = mt::grad_check(loss, params, 1e-3F, 5e-3, rtol);
  EXPECT_TRUE(res.ok()) << res.violations << " violations, worst score "
                        << res.worst_score << ", max abs err "
                        << res.max_abs_err;
}

}  // namespace

class OpGradTest : public ::testing::Test {
 protected:
  mt::Rng rng{1234};
  mt::Tensor a = mt::Tensor::randn({3, 4}, rng, 0.8F, true);
  mt::Tensor b = mt::Tensor::randn({3, 4}, rng, 0.8F, true);
  mt::Tensor bias = mt::Tensor::randn({4}, rng, 0.8F, true);
};

TEST_F(OpGradTest, AddSameShape) {
  expect_grad_ok([&] { return mt::sum(mt::square(mt::add(a, b))); }, {a, b});
}

TEST_F(OpGradTest, AddBroadcast) {
  expect_grad_ok([&] { return mt::sum(mt::square(mt::add(a, bias))); },
                 {a, bias});
}

TEST_F(OpGradTest, SubMulDivBroadcast) {
  // Offset the divisor away from zero.
  mt::Tensor d = mt::Tensor::uniform({4}, rng, 1.0F, 2.0F, true);
  expect_grad_ok([&] { return mt::sum(mt::square(mt::sub(a, bias))); },
                 {a, bias});
  expect_grad_ok([&] { return mt::sum(mt::square(mt::mul(a, bias))); },
                 {a, bias});
  expect_grad_ok([&] { return mt::sum(mt::square(mt::div(a, d))); }, {a, d});
}

TEST_F(OpGradTest, Matmul2D) {
  mt::Tensor w = mt::Tensor::randn({4, 2}, rng, 0.8F, true);
  expect_grad_ok([&] { return mt::sum(mt::square(mt::matmul(a, w))); },
                 {a, w});
}

TEST_F(OpGradTest, MatmulBatchedBroadcast) {
  mt::Tensor x = mt::Tensor::randn({2, 3, 4}, rng, 0.8F, true);
  mt::Tensor w = mt::Tensor::randn({4, 3}, rng, 0.8F, true);
  expect_grad_ok([&] { return mt::sum(mt::square(mt::matmul(x, w))); },
                 {x, w});
  mt::Tensor y = mt::Tensor::randn({2, 4, 3}, rng, 0.8F, true);
  expect_grad_ok([&] { return mt::sum(mt::square(mt::matmul(x, y))); },
                 {x, y});
}

TEST_F(OpGradTest, MatmulDegenerateAndTiledShapes) {
  // 1xN row vector times matrix.
  mt::Tensor r = mt::Tensor::randn({1, 6}, rng, 0.8F, true);
  mt::Tensor w = mt::Tensor::randn({6, 3}, rng, 0.8F, true);
  expect_grad_ok([&] { return mt::sum(mt::square(mt::matmul(r, w))); },
                 {r, w});
  // Nx1 column vector times row vector (outer product).
  mt::Tensor col = mt::Tensor::randn({5, 1}, rng, 0.8F, true);
  mt::Tensor row = mt::Tensor::randn({1, 4}, rng, 0.8F, true);
  expect_grad_ok([&] { return mt::sum(mt::square(mt::matmul(col, row))); },
                 {col, row});
  // K wide enough to span several reduction tiles of the blocked kernel.
  mt::Tensor p = mt::Tensor::randn({2, 130}, rng, 0.1F, true);
  mt::Tensor q = mt::Tensor::randn({130, 2}, rng, 0.1F, true);
  expect_grad_ok([&] { return mt::sum(mt::square(mt::matmul(p, q))); },
                 {p, q});
}

TEST_F(OpGradTest, MatmulGradThreadInvariant) {
  // The finite-difference check under a pool wider than the host: the
  // blocked kernels must stay correct (not just self-consistent) when rows
  // are split across workers.
  metadse::set_threads(8);
  mt::Tensor x = mt::Tensor::randn({2, 3, 4}, rng, 0.8F, true);
  mt::Tensor w = mt::Tensor::randn({4, 3}, rng, 0.8F, true);
  expect_grad_ok([&] { return mt::sum(mt::square(mt::matmul(x, w))); },
                 {x, w});
  metadse::set_threads(1);
}

TEST_F(OpGradTest, Activations) {
  // Keep relu inputs away from the kink.
  mt::Tensor x = mt::Tensor::uniform({3, 4}, rng, 0.2F, 1.5F, true);
  mt::Tensor xn = mt::Tensor::uniform({3, 4}, rng, -1.5F, -0.2F, true);
  expect_grad_ok([&] { return mt::sum(mt::relu(x)); }, {x});
  expect_grad_ok([&] { return mt::sum(mt::relu(xn)); }, {xn});
  expect_grad_ok([&] { return mt::sum(mt::gelu(x)); }, {x});
  expect_grad_ok([&] { return mt::sum(mt::tanh(x)); }, {x});
  expect_grad_ok([&] { return mt::sum(mt::sigmoid(x)); }, {x});
  expect_grad_ok([&] { return mt::sum(mt::exp(x)); }, {x});
  expect_grad_ok([&] { return mt::sum(mt::log(x)); }, {x});
  expect_grad_ok([&] { return mt::sum(mt::square(x)); }, {x});
}

TEST_F(OpGradTest, SoftmaxComposedLoss) {
  expect_grad_ok(
      [&] {
        auto s = mt::softmax_lastdim(a);
        return mt::sum(mt::mul(s, b.detach()));
      },
      {a});
}

TEST_F(OpGradTest, LayerNorm) {
  expect_grad_ok(
      [&] {
        auto y = mt::layer_norm_lastdim(a);
        return mt::sum(mt::mul(y, b.detach()));
      },
      {a});
}

TEST_F(OpGradTest, Reductions) {
  expect_grad_ok([&] { return mt::mean(mt::square(a)); }, {a});
  expect_grad_ok([&] { return mt::sum(mt::square(mt::sum_axis(a, 0))); }, {a});
  expect_grad_ok(
      [&] { return mt::sum(mt::square(mt::mean_axis(a, 1, true))); }, {a});
}

TEST_F(OpGradTest, ShapeOps) {
  expect_grad_ok(
      [&] { return mt::sum(mt::square(mt::reshape(a, {4, 3}))); }, {a});
  expect_grad_ok(
      [&] { return mt::sum(mt::square(mt::transpose_last(a))); }, {a});
  mt::Tensor x = mt::Tensor::randn({2, 3, 4}, rng, 0.8F, true);
  mt::Tensor w = mt::Tensor::randn({4, 2, 3}, rng, 0.8F);
  expect_grad_ok(
      [&] {
        auto p = mt::permute(x, {2, 0, 1});
        return mt::sum(mt::mul(p, w));
      },
      {x});
}

TEST_F(OpGradTest, ConcatRows) {
  expect_grad_ok(
      [&] {
        auto c = mt::concat_rows({a, b});
        return mt::sum(mt::square(c));
      },
      {a, b});
}

TEST_F(OpGradTest, Losses) {
  expect_grad_ok([&] { return mt::mse_loss(a, b.detach()); }, {a});
  // l1 away from zero-crossings: targets far from predictions.
  mt::Tensor far = mt::Tensor::full({3, 4}, 10.0F);
  expect_grad_ok([&] { return mt::l1_loss(a, far); }, {a});
}

TEST_F(OpGradTest, AttentionBlockEndToEnd) {
  // A miniature single-head attention: the exact composite the predictor uses.
  mt::Tensor x = mt::Tensor::randn({2, 5, 6}, rng, 0.5F, true);
  mt::Tensor wq = mt::Tensor::randn({6, 6}, rng, 0.4F, true);
  mt::Tensor wk = mt::Tensor::randn({6, 6}, rng, 0.4F, true);
  mt::Tensor wv = mt::Tensor::randn({6, 6}, rng, 0.4F, true);
  mt::Tensor mask = mt::Tensor::uniform({5, 5}, rng, 0.5F, 1.0F, true);
  expect_grad_ok(
      [&] {
        auto q = mt::matmul(x, wq);
        auto k = mt::matmul(x, wk);
        auto v = mt::matmul(x, wv);
        auto scores = mt::div(mt::matmul(q, mt::transpose_last(k)),
                              std::sqrt(6.0F));
        auto attn = mt::softmax_lastdim(scores);
        auto masked = mt::mul(attn, mask);
        auto renorm = mt::div(masked, mt::add(mt::sum_axis(masked, 2, true),
                                              1e-6F));
        auto out = mt::matmul(renorm, v);
        return mt::mean(mt::square(out));
      },
      {x, wq, wk, wv, mask}, 1e-1);
}
