// Unit tests for modules, layers, attention (capture + mask), transformer,
// and parameter plumbing (clone/copy/flatten).
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "nn/attention.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"
#include "nn/serialize.hpp"
#include "nn/transformer.hpp"
#include "tensor/gradcheck.hpp"
#include "tensor/ops.hpp"

namespace nn = metadse::nn;
namespace mt = metadse::tensor;

TEST(Linear, ShapesAndForward) {
  mt::Rng rng(1);
  nn::Linear lin(3, 2, rng);
  EXPECT_EQ(lin.parameters().size(), 2U);
  EXPECT_EQ(lin.parameter_count(), 8U);

  auto x = mt::Tensor::from_vector({2, 3}, {1, 0, 0, 0, 1, 0});
  auto y = lin.forward(x);
  EXPECT_EQ(y.shape(), (mt::Shape{2, 2}));
  // Row 0 selects weight row 0 (+ bias which is zero-initialized).
  EXPECT_FLOAT_EQ(y.at({0, 0}), lin.weight().at({0, 0}));
  EXPECT_FLOAT_EQ(y.at({1, 1}), lin.weight().at({1, 1}));

  auto bad = mt::Tensor::zeros({2, 4});
  EXPECT_THROW(lin.forward(bad), std::invalid_argument);
  EXPECT_THROW(nn::Linear(0, 2, rng), std::invalid_argument);
}

TEST(Linear, BatchedRank3Input) {
  mt::Rng rng(2);
  nn::Linear lin(4, 5, rng);
  auto x = mt::Tensor::randn({2, 3, 4}, rng);
  auto y = lin.forward(x);
  EXPECT_EQ(y.shape(), (mt::Shape{2, 3, 5}));
}

TEST(LayerNormModule, NormalizesAndScales) {
  mt::Rng rng(3);
  nn::LayerNorm ln(4);
  auto x = mt::Tensor::from_vector({1, 4}, {2, 4, 6, 8});
  auto y = ln.forward(x);
  float mu = 0.0F;
  for (size_t c = 0; c < 4; ++c) mu += y.at({0, c});
  EXPECT_NEAR(mu, 0.0F, 1e-5);
  // Non-unit gamma rescales.
  auto gamma = ln.gamma();  // Tensor handles alias the underlying node
  gamma.data().assign(4, 2.0F);
  auto y2 = ln.forward(x);
  EXPECT_NEAR(y2.at({0, 3}), 2.0F * y.at({0, 3}), 1e-5);
}

TEST(Module, ParameterOrderingStableAcrossInstances) {
  mt::Rng r1(1);
  mt::Rng r2(2);
  nn::TransformerConfig cfg{.n_tokens = 5, .d_model = 8, .n_heads = 2,
                            .n_layers = 2, .d_ff = 16, .n_outputs = 1};
  nn::TransformerRegressor a(cfg, r1);
  nn::TransformerRegressor b(cfg, r2);
  auto pa = a.parameters();
  auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i].shape(), pb[i].shape());
}

TEST(Module, CopyFlattenRoundTrip) {
  mt::Rng r1(1);
  mt::Rng r2(2);
  nn::Linear a(3, 4, r1);
  nn::Linear b(3, 4, r2);
  b.copy_parameters_from(a);
  EXPECT_EQ(a.flatten_parameters(), b.flatten_parameters());

  auto flat = a.flatten_parameters();
  for (auto& v : flat) v += 1.0F;
  a.unflatten_parameters(flat);
  EXPECT_EQ(a.flatten_parameters(), flat);

  std::vector<float> wrong(3);
  EXPECT_THROW(a.unflatten_parameters(wrong), std::invalid_argument);

  nn::Linear c(4, 3, r2);
  EXPECT_THROW(c.copy_parameters_from(a), std::invalid_argument);
}

TEST(Attention, OutputShapeAndThrows) {
  mt::Rng rng(5);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  auto x = mt::Tensor::randn({3, 5, 8}, rng);
  auto y = attn.forward(x);
  EXPECT_EQ(y.shape(), (mt::Shape{3, 5, 8}));
  EXPECT_THROW(nn::MultiHeadSelfAttention(7, 2, rng), std::invalid_argument);
  auto bad = mt::Tensor::randn({3, 5, 6}, rng);
  EXPECT_THROW(attn.forward(bad), std::invalid_argument);
}

TEST(Attention, CaptureProducesRowStochasticMap) {
  mt::Rng rng(6);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  EXPECT_THROW(attn.last_attention(), std::logic_error);
  attn.set_capture_attention(true);
  auto x = mt::Tensor::randn({4, 5, 8}, rng);
  attn.forward(x);
  const auto& m = attn.last_attention();
  EXPECT_EQ(m.shape(), (mt::Shape{5, 5}));
  for (size_t r = 0; r < 5; ++r) {
    float s = 0.0F;
    for (size_t c = 0; c < 5; ++c) {
      EXPECT_GE(m.at({r, c}), 0.0F);
      s += m.at({r, c});
    }
    EXPECT_NEAR(s, 1.0F, 1e-4);
  }
}

TEST(Attention, IdentityMaskIsNoOp) {
  mt::Rng rng(7);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  auto x = mt::Tensor::randn({2, 4, 8}, rng);
  auto y0 = attn.forward(x);
  attn.install_mask(mt::Tensor::full({4, 4}, 1.0F));
  ASSERT_TRUE(attn.has_mask());
  auto y1 = attn.forward(x);
  for (size_t i = 0; i < y0.size(); ++i) {
    EXPECT_NEAR(y0.data()[i], y1.data()[i], 1e-4);
  }
  attn.clear_mask();
  EXPECT_FALSE(attn.has_mask());
  EXPECT_THROW(attn.mask(), std::logic_error);
}

TEST(Attention, MaskSuppressesInteraction) {
  mt::Rng rng(8);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  attn.set_capture_attention(true);
  auto x = mt::Tensor::randn({2, 4, 8}, rng);
  // Mask that zeroes attention from token 0 to token 3.
  auto mask = mt::Tensor::full({4, 4}, 1.0F);
  mask.data()[0 * 4 + 3] = 0.0F;
  attn.install_mask(mask);
  attn.forward(x);
  EXPECT_NEAR(attn.last_attention().at({0, 3}), 0.0F, 1e-6);
  // Rows still (approximately) sum to one after renormalization.
  float s = 0.0F;
  for (size_t c = 0; c < 4; ++c) s += attn.last_attention().at({0, c});
  EXPECT_NEAR(s, 1.0F, 1e-4);
}

TEST(Attention, WrongMaskShapeThrows) {
  mt::Rng rng(9);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  EXPECT_THROW(attn.install_mask(mt::Tensor::zeros({3, 4})),
               std::invalid_argument);
  attn.install_mask(mt::Tensor::full({3, 3}, 1.0F));
  auto x = mt::Tensor::randn({1, 4, 8}, rng);  // seq=4, mask=3x3
  EXPECT_THROW(attn.forward(x), std::invalid_argument);
}

TEST(Transformer, ForwardShapeAndDeterminism) {
  mt::Rng rng(10);
  nn::TransformerConfig cfg{.n_tokens = 6, .d_model = 16, .n_heads = 4,
                            .n_layers = 2, .d_ff = 32, .n_outputs = 2};
  nn::TransformerRegressor model(cfg, rng);
  auto x = mt::Tensor::randn({3, 6}, rng);
  mt::Rng fwd(0);
  auto y1 = model.forward(x, fwd);
  EXPECT_EQ(y1.shape(), (mt::Shape{3, 2}));
  auto y2 = model.forward(x, fwd);
  EXPECT_EQ(y1.data(), y2.data());  // eval mode is deterministic

  auto bad = mt::Tensor::zeros({3, 5});
  EXPECT_THROW(model.forward(bad, fwd), std::invalid_argument);
}

TEST(Transformer, PredictOneMatchesBatchForward) {
  mt::Rng rng(11);
  nn::TransformerConfig cfg{.n_tokens = 4, .d_model = 8, .n_heads = 2,
                            .n_layers = 1, .d_ff = 16, .n_outputs = 1};
  nn::TransformerRegressor model(cfg, rng);
  std::vector<float> feat{0.1F, 0.5F, 0.9F, 0.3F};
  auto single = model.predict_one(feat);
  auto x = mt::Tensor::from_vector({1, 4}, std::vector<float>(feat));
  mt::Rng fwd(0);
  auto batch = model.forward(x, fwd);
  ASSERT_EQ(single.size(), 1U);
  EXPECT_FLOAT_EQ(single[0], batch.data()[0]);
}

TEST(Transformer, CloneIsDeepAndIncludesMask) {
  mt::Rng rng(12);
  nn::TransformerConfig cfg{.n_tokens = 4, .d_model = 8, .n_heads = 2,
                            .n_layers = 2, .d_ff = 16, .n_outputs = 1};
  nn::TransformerRegressor model(cfg, rng);
  model.last_attention_layer().install_mask(mt::Tensor::full({4, 4}, 0.7F));
  auto copy = model.clone();
  EXPECT_EQ(copy->flatten_parameters(), model.flatten_parameters());
  EXPECT_TRUE(copy->last_attention_layer().has_mask());
  // Mutating the clone leaves the original untouched.
  auto flat = copy->flatten_parameters();
  for (auto& v : flat) v = 0.0F;
  copy->unflatten_parameters(flat);
  EXPECT_NE(copy->flatten_parameters(), model.flatten_parameters());
}

TEST(Transformer, GradientsFlowToAllParameters) {
  mt::Rng rng(13);
  nn::TransformerConfig cfg{.n_tokens = 4, .d_model = 8, .n_heads = 2,
                            .n_layers = 1, .d_ff = 16, .n_outputs = 1};
  nn::TransformerRegressor model(cfg, rng);
  auto x = mt::Tensor::randn({5, 4}, rng);
  auto target = mt::Tensor::randn({5, 1}, rng);
  mt::Rng fwd(0);
  auto loss = mt::mse_loss(model.forward(x, fwd, true), target);
  loss.backward();
  size_t nonzero_params = 0;
  for (auto p : model.parameters()) {
    bool any = false;
    for (float g : p.grad()) any = any || g != 0.0F;
    nonzero_params += any;
  }
  // Every parameter tensor should receive some gradient.
  EXPECT_EQ(nonzero_params, model.parameters().size());
}

TEST(Transformer, GradCheckEndToEnd) {
  mt::Rng rng(14);
  nn::TransformerConfig cfg{.n_tokens = 3, .d_model = 4, .n_heads = 2,
                            .n_layers = 1, .d_ff = 8, .n_outputs = 1};
  nn::TransformerRegressor model(cfg, rng);
  auto x = mt::Tensor::randn({4, 3}, rng, 0.5F);
  auto target = mt::Tensor::randn({4, 1}, rng, 0.5F);
  mt::Rng fwd(0);
  auto res = mt::grad_check(
      [&] { return mt::mse_loss(model.forward(x, fwd), target); },
      model.parameters(), 1e-3F, 2e-2, 1e-1);
  EXPECT_TRUE(res.ok()) << res.violations << " violations, worst "
                        << res.worst_score;
}

TEST(Serialize, RoundTripAndValidation) {
  mt::Rng rng(15);
  nn::TransformerConfig cfg{.n_tokens = 4, .d_model = 8, .n_heads = 2,
                            .n_layers = 1, .d_ff = 16, .n_outputs = 1};
  nn::TransformerRegressor a(cfg, rng);
  nn::TransformerRegressor b(cfg, rng);
  const std::string path = ::testing::TempDir() + "metadse_params.bin";
  nn::save_parameters(a, path);
  nn::load_parameters(b, path);
  EXPECT_EQ(a.flatten_parameters(), b.flatten_parameters());

  nn::TransformerConfig other = cfg;
  other.d_model = 16;
  mt::Rng r2(16);
  nn::TransformerRegressor c(other, r2);
  EXPECT_THROW(nn::load_parameters(c, path), std::runtime_error);
  EXPECT_THROW(nn::load_parameters(b, path + ".missing"), std::runtime_error);
  std::remove(path.c_str());
}
