// The training fast path's contract: the fused forward+backward kernels
// (layer_norm_affine, softmax_masked_lastdim, bias_gelu), the fused
// optimizer updates (Sgd/Adam clip_and_step), and the pooled tape arena
// change where intermediate results live and how many passes run — never
// the arithmetic. Learned weights and epoch traces must be identical to the
// composed path for any thread count, the fused kernels must pass gradcheck,
// and steady-state inner loops must run allocation-free (every buffer served
// from the warm BufferPool).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/parallel.hpp"
#include "meta/maml.hpp"
#include "nn/fused.hpp"
#include "nn/optim.hpp"
#include "nn/transformer.hpp"
#include "tensor/gradcheck.hpp"
#include "tensor/guard.hpp"
#include "tensor/ops.hpp"
#include "tensor/pool.hpp"

namespace t = metadse::tensor;
namespace nn = metadse::nn;
namespace meta = metadse::meta;
namespace data = metadse::data;

namespace {

const std::vector<size_t> kThreadSweep = {1, 2, 8};

struct ThreadGuard {
  ~ThreadGuard() { metadse::set_threads(1); }
};

nn::TransformerConfig small_cfg() {
  return {.n_tokens = 24, .d_model = 32, .n_heads = 4,
          .n_layers = 2, .d_ff = 64, .n_outputs = 1};
}

/// One synthetic "workload": y = a*sin(pi*x0) + b*x1 + c*x2*x3 + d.
data::Dataset family_dataset(float a, float b, float c, float d, size_t n,
                             uint64_t seed) {
  data::Dataset ds;
  ds.workload = "synthetic";
  t::Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    data::Sample s;
    s.features.resize(4);
    for (auto& f : s.features) f = rng.uniform(0.0F, 1.0F);
    s.ipc = a * std::sin(3.14159F * s.features[0]) + b * s.features[1] +
            c * s.features[2] * s.features[3] + d;
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

void expect_same_floats(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at element " << i;
  }
}

/// A WAM-shaped mask: mostly in (0, 1] with a few exact zeros.
t::Tensor wam_mask(size_t s, uint64_t seed) {
  t::Rng rng(seed);
  std::vector<float> m(s * s);
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] = (i % 7 == 3) ? 0.0F : rng.uniform(0.05F, 1.0F);
  }
  return t::Tensor::from_vector({s, s}, std::move(m));
}

}  // namespace

// -- fused kernels vs composed graphs: bitwise forward and backward ----------

TEST(TrainFastPathEquivalence, LayerNormAffineMatchesComposedAcrossThreads) {
  ThreadGuard guard;
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    t::Rng rng(11);
    auto x1 = t::Tensor::randn({5, 24, 32}, rng, 1.0F, true);
    auto g1 = t::Tensor::uniform({32}, rng, 0.5F, 1.5F, true);
    auto b1 = t::Tensor::uniform({32}, rng, -0.5F, 0.5F, true);
    auto x2 = x1.detach();
    x2.set_requires_grad(true);
    auto g2 = g1.detach();
    g2.set_requires_grad(true);
    auto b2 = b1.detach();
    b2.set_requires_grad(true);

    auto fused = t::sum(t::mul(t::layer_norm_affine(x1, g1, b1),
                               t::layer_norm_affine(x1, g1, b1)));
    fused.backward();
    auto composed = t::sum(t::mul(
        t::add(t::mul(t::layer_norm_lastdim(x2), g2), b2),
        t::add(t::mul(t::layer_norm_lastdim(x2), g2), b2)));
    composed.backward();

    ASSERT_EQ(fused.item(), composed.item());
    expect_same_floats(x1.grad(), x2.grad(), "layer_norm dx");
    expect_same_floats(g1.grad(), g2.grad(), "layer_norm dgamma");
    expect_same_floats(b1.grad(), b2.grad(), "layer_norm dbeta");
  }
}

TEST(TrainFastPathEquivalence, SoftmaxMaskedMatchesComposedAcrossThreads) {
  ThreadGuard guard;
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    t::Rng rng(13);
    auto s1 = t::Tensor::randn({20, 24, 24}, rng, 1.0F, true);
    auto m1 = wam_mask(24, 5);
    m1.set_requires_grad(true);
    auto s2 = s1.detach();
    s2.set_requires_grad(true);
    auto m2 = m1.detach();
    m2.set_requires_grad(true);

    auto fused = t::sum(t::mul(t::softmax_masked_lastdim(s1, m1),
                               t::softmax_masked_lastdim(s1, m1)));
    fused.backward();
    auto renorm = [](const t::Tensor& sc, const t::Tensor& mk) {
      auto masked = t::mul(t::softmax_lastdim(sc), mk);
      auto row_sum = t::add(t::sum_axis(masked, 2, true), 1e-6F);
      return t::div(masked, row_sum);
    };
    auto composed = t::sum(t::mul(renorm(s2, m2), renorm(s2, m2)));
    composed.backward();

    ASSERT_EQ(fused.item(), composed.item());
    expect_same_floats(s1.grad(), s2.grad(), "softmax_masked dscores");
    expect_same_floats(m1.grad(), m2.grad(), "softmax_masked dmask");
  }
}

TEST(TrainFastPathEquivalence, BiasGeluMatchesComposedAcrossThreads) {
  ThreadGuard guard;
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    t::Rng rng(17);
    auto x1 = t::Tensor::randn({120, 64}, rng, 1.0F, true);
    auto b1 = t::Tensor::uniform({64}, rng, -0.5F, 0.5F, true);
    auto x2 = x1.detach();
    x2.set_requires_grad(true);
    auto b2 = b1.detach();
    b2.set_requires_grad(true);

    auto fused = t::sum(t::mul(t::bias_gelu(x1, b1), t::bias_gelu(x1, b1)));
    fused.backward();
    auto composed = t::sum(t::mul(t::gelu(t::add(x2, b2)),
                                  t::gelu(t::add(x2, b2))));
    composed.backward();

    ASSERT_EQ(fused.item(), composed.item());
    expect_same_floats(x1.grad(), x2.grad(), "bias_gelu dx");
    expect_same_floats(b1.grad(), b2.grad(), "bias_gelu db");
  }
}

// -- gradcheck for every fused kernel ----------------------------------------

TEST(TrainFastPathEquivalence, LayerNormAffineGradcheck) {
  t::Rng rng(23);
  auto x = t::Tensor::randn({3, 8}, rng, 1.0F, true);
  auto g = t::Tensor::uniform({8}, rng, 0.5F, 1.5F, true);
  auto b = t::Tensor::uniform({8}, rng, -0.5F, 0.5F, true);
  auto res = t::grad_check(
      [&] { return t::mean(t::mul(t::layer_norm_affine(x, g, b),
                                  t::layer_norm_affine(x, g, b))); },
      {x, g, b});
  EXPECT_TRUE(res.ok()) << res.violations << " violations, max abs err "
                        << res.max_abs_err;
}

TEST(TrainFastPathEquivalence, SoftmaxMaskedGradcheckIncludingMask) {
  t::Rng rng(29);
  auto s = t::Tensor::randn({4, 6, 6}, rng, 1.0F, true);
  auto m = wam_mask(6, 31);
  m.set_requires_grad(true);
  auto res = t::grad_check(
      [&] { return t::mean(t::mul(t::softmax_masked_lastdim(s, m),
                                  t::softmax_masked_lastdim(s, m))); },
      {s, m});
  EXPECT_TRUE(res.ok()) << res.violations << " violations, max abs err "
                        << res.max_abs_err;
}

TEST(TrainFastPathEquivalence, BiasGeluGradcheck) {
  t::Rng rng(37);
  auto x = t::Tensor::randn({6, 10}, rng, 1.0F, true);
  auto b = t::Tensor::uniform({10}, rng, -0.5F, 0.5F, true);
  auto res = t::grad_check(
      [&] { return t::mean(t::mul(t::bias_gelu(x, b), t::bias_gelu(x, b))); },
      {x, b});
  EXPECT_TRUE(res.ok()) << res.violations << " violations, max abs err "
                        << res.max_abs_err;
}

// -- whole-model fused-vs-composed (includes the masked-attention path) ------

TEST(TrainFastPathEquivalence, MaskedModelForwardBackwardMatchesComposed) {
  ThreadGuard guard;
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    t::Rng rng(41);
    nn::TransformerRegressor model(small_cfg(), rng);
    model.install_mask_all_layers(wam_mask(24, 7));
    auto peer = model.clone();
    t::Rng xr(3);
    auto x = t::Tensor::uniform({5, 24}, xr, 0.0F, 1.0F);
    auto y = t::Tensor::randn({5, 1}, xr);

    float fused_loss = 0.0F;
    std::vector<std::vector<float>> fused_grads;
    {
      nn::FusedKernelsGuard on(true);
      t::Rng fwd(0);
      auto loss = t::mse_loss(model.forward(x, fwd, true), y);
      loss.backward();
      fused_loss = loss.item();
      for (auto& p : model.parameters()) fused_grads.push_back(p.grad());
    }
    {
      nn::FusedKernelsGuard off(false);
      t::Rng fwd(0);
      auto loss = t::mse_loss(peer->forward(x, fwd, true), y);
      loss.backward();
      ASSERT_EQ(fused_loss, loss.item());
      auto params = peer->parameters();
      ASSERT_EQ(fused_grads.size(), params.size());
      for (size_t i = 0; i < params.size(); ++i) {
        expect_same_floats(fused_grads[i], params[i].grad(), "model grad");
      }
    }
  }
}

// -- fused optimizer updates -------------------------------------------------

TEST(TrainFastPathEquivalence, SgdClipAndStepMatchesSeparatePasses) {
  for (float max_norm : {1e-3F, 1e6F}) {  // clip active / clip no-op
    t::Rng rng(43);
    auto a1 = t::Tensor::randn({7, 5}, rng, 1.0F, true);
    auto b1 = t::Tensor::randn({5}, rng, 1.0F, true);
    auto a2 = a1.detach();
    a2.set_requires_grad(true);
    auto b2 = b1.detach();
    b2.set_requires_grad(true);
    auto fill = [&](std::vector<t::Tensor> ps) {
      t::Rng gr(51);
      for (auto& p : ps) {
        p.node()->ensure_grad();
        for (auto& g : p.node()->grad) g = gr.normal(0.0F, 2.0F);
      }
    };
    fill({a1, b1});
    fill({a2, b2});

    nn::Sgd fused({a1, b1}, 0.05F);
    const double norm = fused.clip_and_step(max_norm);
    nn::Sgd plain({a2, b2}, 0.05F);
    const double ref_norm = t::clip_global_grad_norm({a2, b2}, max_norm);
    plain.step();

    ASSERT_EQ(norm, ref_norm);
    expect_same_floats(a1.data(), a2.data(), "sgd values");
    expect_same_floats(a1.grad(), a2.grad(), "sgd grads (post-clip)");
    expect_same_floats(b1.data(), b2.data(), "sgd bias values");
    expect_same_floats(b1.grad(), b2.grad(), "sgd bias grads");
  }
}

TEST(TrainFastPathEquivalence, AdamClipAndStepMatchesSeparatePasses) {
  for (float max_norm : {1e-3F, 1e6F}) {
    t::Rng rng(47);
    auto a1 = t::Tensor::randn({7, 5}, rng, 1.0F, true);
    auto a2 = a1.detach();
    a2.set_requires_grad(true);
    nn::Adam fused({a1}, 1e-3F);
    nn::Adam plain({a2}, 1e-3F);
    for (int step = 0; step < 3; ++step) {  // moments must track bitwise too
      t::Rng gr(61 + step);
      for (auto* p : {&a1, &a2}) {
        p->node()->ensure_grad();
        for (auto& g : p->node()->grad) g = gr.normal(0.0F, 2.0F);
        gr = t::Rng(61 + step);
      }
      const double norm = fused.clip_and_step(max_norm);
      const double ref_norm = t::clip_global_grad_norm({a2}, max_norm);
      plain.step();
      ASSERT_EQ(norm, ref_norm);
      expect_same_floats(a1.data(), a2.data(), "adam values");
      expect_same_floats(a1.grad(), a2.grad(), "adam grads (post-clip)");
    }
  }
}

// -- end-to-end: meta-training epochs, fused vs composed, thread sweep -------

TEST(TrainFastPathEquivalence, MamlEpochsBitwiseIdenticalAcrossPaths) {
  ThreadGuard guard;
  std::vector<data::Dataset> train = {
      family_dataset(1.0F, 0.5F, 0.8F, 0.2F, 120, 1),
      family_dataset(0.6F, 1.0F, 0.2F, 0.5F, 120, 2)};
  nn::TransformerConfig cfg{.n_tokens = 4, .d_model = 8, .n_heads = 2,
                            .n_layers = 1, .d_ff = 16, .n_outputs = 1};
  meta::MamlOptions opts;
  opts.epochs = 2;
  opts.tasks_per_workload = 6;
  opts.support = 5;
  opts.query = 10;
  opts.inner_steps = 2;
  opts.meta_batch = 4;
  opts.val_tasks_per_workload = 2;
  opts.seed = 9;

  std::vector<float> ref_weights;
  std::vector<meta::EpochTrace> ref_trace;
  for (size_t threads : kThreadSweep) {
    metadse::set_threads(threads);
    for (bool fused : {true, false}) {
      nn::FusedKernelsGuard g(fused);
      meta::MamlTrainer trainer(cfg, opts);
      trainer.train(train, {});
      auto weights = trainer.model().flatten_parameters();
      const auto& trace = trainer.trace();
      if (ref_weights.empty()) {
        ref_weights = weights;
        ref_trace = trace;
        continue;
      }
      expect_same_floats(ref_weights, weights, "learned weights");
      ASSERT_EQ(ref_trace.size(), trace.size());
      for (size_t e = 0; e < trace.size(); ++e) {
        ASSERT_EQ(ref_trace[e].train_meta_loss, trace[e].train_meta_loss)
            << "epoch " << e;
        ASSERT_EQ(ref_trace[e].val_loss, trace[e].val_loss) << "epoch " << e;
      }
    }
  }
}

// -- steady-state inner loops are allocation-free ----------------------------

TEST(TrainFastPathEquivalence, InnerLoopSteadyStateIsAllocationFree) {
  metadse::set_threads(1);
  t::Rng rng(53);
  nn::TransformerRegressor model(small_cfg(), rng);
  auto clone = model.clone();
  const auto params = clone->parameters();
  t::Rng xr(3);
  auto x = t::Tensor::uniform({5, 24}, xr, 0.0F, 1.0F);
  auto y = t::Tensor::randn({5, 1}, xr);
  nn::Sgd inner(params, 1e-2F);

  auto one_step = [&] {
    inner.zero_grad();
    t::Rng fwd(0);
    auto loss = t::mse_loss(clone->forward(x, fwd, true), y);
    loss.backward();
    inner.clip_and_step(10.0F);
  };
  for (int i = 0; i < 3; ++i) one_step();  // warm the pool

  t::BufferPool::reset_stats();
  for (int i = 0; i < 5; ++i) one_step();
  const auto stats = t::BufferPool::stats();
  EXPECT_EQ(stats.vec_allocated, 0U)
      << "inner step allocated float buffers in steady state";
  EXPECT_EQ(stats.idx_allocated, 0U)
      << "inner step allocated index buffers in steady state";
  EXPECT_EQ(stats.block_allocated, 0U)
      << "inner step allocated arena blocks in steady state";
  EXPECT_GT(stats.vec_reused, 0U);
}

TEST(TrainFastPathEquivalence, AdaptCloneSteadyStateIsAllocationFree) {
  metadse::set_threads(1);
  t::Rng rng(59);
  nn::TransformerRegressor model(small_cfg(), rng);
  t::Rng xr(3);
  auto sx = t::Tensor::uniform({5, 24}, xr, 0.0F, 1.0F);
  auto sy = t::Tensor::randn({5, 1}, xr);

  // First adaptation warms the pool (clone storage, tape arena, scratch).
  auto warm = meta::MamlTrainer::adapt_clone(model, sx, sy, 5, 1e-2F);
  warm.reset();
  t::BufferPool::reset_stats();
  auto adapted = meta::MamlTrainer::adapt_clone(model, sx, sy, 5, 1e-2F);
  const auto stats = t::BufferPool::stats();
  EXPECT_EQ(stats.vec_allocated, 0U)
      << "adapt_clone allocated float buffers in steady state";
  EXPECT_EQ(stats.block_allocated, 0U)
      << "adapt_clone allocated arena blocks in steady state";
  EXPECT_GT(stats.vec_reused, 0U);
  ASSERT_NE(adapted, nullptr);
}
