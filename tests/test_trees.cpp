// Tree and ensemble baseline tests: exact behaviour on separable data,
// growth-limit enforcement, and learning quality on nonlinear functions.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/ensembles.hpp"
#include "eval/metrics.hpp"
#include "tensor/rng.hpp"

namespace bl = metadse::baselines;
namespace mt = metadse::tensor;

namespace {

/// Nonlinear two-feature target with an interaction term.
float truth(float x0, float x1) {
  return std::sin(3.0F * x0) + 0.5F * x0 * x1 + 0.3F * x1;
}

struct Problem {
  bl::FeatureMatrix x_train, x_test;
  std::vector<float> y_train, y_test;
};

Problem make_problem(size_t n_train = 400, size_t n_test = 200,
                     uint64_t seed = 21) {
  mt::Rng rng(seed);
  Problem p;
  auto gen = [&](bl::FeatureMatrix& x, std::vector<float>& y, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const float a = rng.uniform(-1.0F, 1.0F);
      const float b = rng.uniform(-1.0F, 1.0F);
      x.push_back({a, b});
      y.push_back(truth(a, b));
    }
  };
  gen(p.x_train, p.y_train, n_train);
  gen(p.x_test, p.y_test, n_test);
  return p;
}

double test_rmse(const bl::Regressor& model, const Problem& p) {
  const auto pred = model.predict_batch(p.x_test);
  return metadse::eval::rmse(p.y_test, pred);
}

double mean_baseline_rmse(const Problem& p) {
  float mean = 0.0F;
  for (float v : p.y_train) mean += v;
  mean /= static_cast<float>(p.y_train.size());
  std::vector<float> pred(p.y_test.size(), mean);
  return metadse::eval::rmse(p.y_test, pred);
}

}  // namespace

TEST(DecisionTree, FitsStepFunctionExactly) {
  bl::FeatureMatrix x{{0.1F}, {0.2F}, {0.3F}, {0.7F}, {0.8F}, {0.9F}};
  std::vector<float> y{1, 1, 1, 5, 5, 5};
  bl::DecisionTree tree(bl::TreeOptions{.max_depth = 3, .min_samples_leaf = 1,
                                        .min_samples_split = 2});
  tree.fit(x, y);
  EXPECT_FLOAT_EQ(tree.predict({0.0F}), 1.0F);
  EXPECT_FLOAT_EQ(tree.predict({1.0F}), 5.0F);
  EXPECT_FLOAT_EQ(tree.predict({0.45F}), 1.0F);  // threshold between .3/.7
}

TEST(DecisionTree, RespectsDepthLimit) {
  auto p = make_problem();
  bl::DecisionTree shallow(bl::TreeOptions{.max_depth = 2});
  shallow.fit(p.x_train, p.y_train);
  EXPECT_LE(shallow.depth(), 2U);
  EXPECT_LE(shallow.node_count(), 7U);  // complete depth-2 binary tree
  bl::DecisionTree deep(bl::TreeOptions{.max_depth = 10});
  deep.fit(p.x_train, p.y_train);
  EXPECT_GT(deep.node_count(), shallow.node_count());
  EXPECT_LT(test_rmse(deep, p), test_rmse(shallow, p));
}

TEST(DecisionTree, InputValidation) {
  bl::DecisionTree tree;
  EXPECT_THROW(tree.predict({1.0F}), std::logic_error);  // not fitted
  EXPECT_THROW(tree.fit({}, {}), std::invalid_argument);
  bl::FeatureMatrix ragged{{1.0F, 2.0F}, {3.0F}};
  EXPECT_THROW(tree.fit(ragged, {1.0F, 2.0F}), std::invalid_argument);
  bl::FeatureMatrix ok{{1.0F}, {2.0F}};
  tree.fit(ok, {1.0F, 2.0F});
  EXPECT_THROW(tree.predict({1.0F, 2.0F}), std::invalid_argument);
  EXPECT_THROW(bl::DecisionTree(bl::TreeOptions{.max_depth = 0}),
               std::invalid_argument);
}

TEST(DecisionTree, ConstantLabelsGiveSingleLeaf) {
  bl::FeatureMatrix x{{0.0F}, {0.5F}, {1.0F}};
  std::vector<float> y{2.0F, 2.0F, 2.0F};
  bl::DecisionTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1U);
  EXPECT_FLOAT_EQ(tree.predict({0.3F}), 2.0F);
}

TEST(RandomForest, BeatsMeanAndIsDeterministic) {
  auto p = make_problem();
  bl::ForestOptions opts;
  opts.n_trees = 30;
  opts.tree.feature_subsample = 1;
  bl::RandomForest rf(opts);
  rf.fit(p.x_train, p.y_train);
  EXPECT_EQ(rf.tree_count(), 30U);
  EXPECT_LT(test_rmse(rf, p), 0.5 * mean_baseline_rmse(p));

  bl::RandomForest rf2(opts);
  rf2.fit(p.x_train, p.y_train);
  EXPECT_FLOAT_EQ(rf.predict(p.x_test[0]), rf2.predict(p.x_test[0]));
  EXPECT_THROW(bl::RandomForest(bl::ForestOptions{.n_trees = 0}),
               std::invalid_argument);
  EXPECT_THROW(bl::RandomForest().predict({0.0F}), std::logic_error);
}

TEST(Gbrt, BeatsSingleTreeAndForestOnSmoothTarget) {
  auto p = make_problem();
  bl::DecisionTree tree(bl::TreeOptions{.max_depth = 3});
  tree.fit(p.x_train, p.y_train);
  bl::Gbrt gbrt;
  gbrt.fit(p.x_train, p.y_train);
  EXPECT_LT(test_rmse(gbrt, p), test_rmse(tree, p));
  EXPECT_LT(test_rmse(gbrt, p), 0.25 * mean_baseline_rmse(p));
}

TEST(Gbrt, OptionValidationAndNotFitted) {
  EXPECT_THROW(bl::Gbrt(bl::GbrtOptions{.n_rounds = 0}),
               std::invalid_argument);
  EXPECT_THROW(bl::Gbrt(bl::GbrtOptions{.learning_rate = -0.1F}),
               std::invalid_argument);
  EXPECT_THROW(bl::Gbrt(bl::GbrtOptions{.subsample = 1.5F}),
               std::invalid_argument);
  EXPECT_THROW(bl::Gbrt().predict({0.0F}), std::logic_error);
}

class GbrtRoundsSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(GbrtRoundsSweep, MoreRoundsNeverMuchWorse) {
  auto p = make_problem(300, 150, 5);
  bl::GbrtOptions few;
  few.n_rounds = 10;
  bl::GbrtOptions many;
  many.n_rounds = GetParam();
  bl::Gbrt a(few);
  a.fit(p.x_train, p.y_train);
  bl::Gbrt b(many);
  b.fit(p.x_train, p.y_train);
  EXPECT_LT(test_rmse(b, p), test_rmse(a, p) * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Rounds, GbrtRoundsSweep,
                         ::testing::Values(40, 80, 160));
