// Workload-suite tests: suite composition (the paper's split), SimPoint-style
// phase structure, determinism, and behavioural distinctiveness.
#include <gtest/gtest.h>

#include <set>

#include "workload/spec_suite.hpp"

namespace wl = metadse::workload;

TEST(SpecSuite, SeventeenWorkloadsWithPaperSplit) {
  wl::SpecSuite suite;
  EXPECT_EQ(suite.size(), 17U);
  const auto train = suite.names(wl::SplitRole::kTrain);
  const auto val = suite.names(wl::SplitRole::kValidation);
  const auto test = suite.names(wl::SplitRole::kTest);
  EXPECT_EQ(train.size(), 7U);
  EXPECT_EQ(val.size(), 5U);
  EXPECT_EQ(test.size(), 5U);
  // The paper's five evaluation datasets (Table II caption).
  const std::set<std::string> expected{"600.perlbench_s", "605.mcf_s",
                                       "620.omnetpp_s", "623.xalancbmk_s",
                                       "627.cam4_s"};
  EXPECT_EQ(std::set<std::string>(test.begin(), test.end()), expected);
  // No overlap between splits.
  std::set<std::string> all;
  for (const auto& n : train) all.insert(n);
  for (const auto& n : val) all.insert(n);
  for (const auto& n : test) all.insert(n);
  EXPECT_EQ(all.size(), 17U);
}

TEST(SpecSuite, LookupAndRoles) {
  wl::SpecSuite suite;
  EXPECT_EQ(suite.by_name("605.mcf_s").name(), "605.mcf_s");
  EXPECT_EQ(suite.role_of("605.mcf_s"), wl::SplitRole::kTest);
  EXPECT_EQ(suite.role_of("619.lbm_s"), wl::SplitRole::kTrain);
  EXPECT_THROW(suite.by_name("999.missing"), std::out_of_range);
}

TEST(Workload, PhasesAreSimPointLike) {
  wl::SpecSuite suite;
  for (const auto& w : suite.workloads()) {
    const auto& phases = w.phases();
    EXPECT_GE(phases.size(), 10U) << w.name();
    EXPECT_LE(phases.size(), 30U) << w.name();  // "at most 30 clusters"
    double total = 0.0;
    for (const auto& p : phases) {
      EXPECT_GT(p.weight, 0.0);
      EXPECT_NO_THROW(p.behavior.validate());
      total += p.weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << w.name();
  }
}

TEST(Workload, DeterministicAcrossInstances) {
  wl::SpecSuite a;
  wl::SpecSuite b;
  for (size_t i = 0; i < a.size(); ++i) {
    const auto& pa = a.workloads()[i].phases();
    const auto& pb = b.workloads()[i].phases();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t j = 0; j < pa.size(); ++j) {
      EXPECT_EQ(pa[j].weight, pb[j].weight);
      EXPECT_EQ(pa[j].behavior.dcache_ws_kb, pb[j].behavior.dcache_ws_kb);
      EXPECT_EQ(pa[j].behavior.f_load, pb[j].behavior.f_load);
    }
  }
}

TEST(Workload, ProfilesAreBehaviourallyDistinct) {
  wl::SpecSuite suite;
  const auto& mcf = suite.by_name("605.mcf_s").base();
  const auto& lbm = suite.by_name("619.lbm_s").base();
  const auto& perl = suite.by_name("600.perlbench_s").base();
  // mcf: memory-bound with low MLP; lbm: streaming with high MLP.
  EXPECT_GT(mcf.dcache_ws2_kb, 2000.0);
  EXPECT_LT(mcf.mlp, 2.0);
  EXPECT_GT(lbm.streaming, 0.8);
  EXPECT_GT(lbm.mlp, 4.0);
  // perlbench: branchy with many indirect calls; lbm is the opposite.
  EXPECT_GT(perl.f_branch, 3.0 * lbm.f_branch);
  EXPECT_GT(perl.indirect_frac, 5.0 * lbm.indirect_frac);
  // FP suites are FP-heavy.
  EXPECT_GT(lbm.f_fp_alu + lbm.f_fp_mul, 0.4);
  EXPECT_LT(perl.f_fp_alu + perl.f_fp_mul, 0.05);
}

TEST(Workload, PhasePerturbationsStayNearBase) {
  wl::SpecSuite suite;
  const auto& w = suite.by_name("602.gcc_s");
  for (const auto& p : w.phases()) {
    // Phases are variations of the program, not different programs.
    EXPECT_GT(p.behavior.dcache_ws_kb, w.base().dcache_ws_kb / 4.0);
    EXPECT_LT(p.behavior.dcache_ws_kb, w.base().dcache_ws_kb * 4.0);
    EXPECT_NEAR(p.behavior.branch_entropy, w.base().branch_entropy, 0.3);
  }
}
