// Design-space tests: Table I fidelity, codecs, normalization, samplers.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "arch/design_space.hpp"

namespace arch = metadse::arch;
namespace mt = metadse::tensor;

TEST(DesignSpace, Table1HasThePaperParameters) {
  const auto& s = arch::DesignSpace::table1();
  EXPECT_EQ(s.num_params(), 24U);
  // Spot-check the ranges of Table I.
  EXPECT_EQ(s.spec(s.param_index("core_freq_ghz")).cardinality(), 5U);
  EXPECT_EQ(s.spec(s.param_index("pipeline_width")).cardinality(), 12U);
  EXPECT_EQ(s.spec(s.param_index("fetch_queue_uops")).cardinality(), 11U);
  EXPECT_EQ(s.spec(s.param_index("branch_predictor")).cardinality(), 2U);
  EXPECT_EQ(s.spec(s.param_index("ras_size")).cardinality(), 13U);
  EXPECT_EQ(s.spec(s.param_index("rob_size")).cardinality(), 15U);
  EXPECT_EQ(s.spec(s.param_index("int_rf")).cardinality(), 25U);
  EXPECT_EQ(s.spec(s.param_index("iq_size")).cardinality(), 9U);
  EXPECT_EQ(s.spec(s.param_index("lq_size")).cardinality(), 8U);
  EXPECT_EQ(s.spec(s.param_index("int_alu")).cardinality(), 6U);
  EXPECT_EQ(s.spec(s.param_index("l2_kb")).cardinality(), 2U);
  // Range endpoints.
  const auto& rob = s.spec(s.param_index("rob_size")).values;
  EXPECT_EQ(rob.front(), 32.0);
  EXPECT_EQ(rob.back(), 256.0);
  EXPECT_THROW(s.param_index("nonexistent"), std::out_of_range);
  // The full space is large (> 10^14 points).
  EXPECT_GT(s.total_points(), 1e14);
}

TEST(DesignSpace, ConstructorRejectsBadSpecs) {
  EXPECT_THROW(arch::DesignSpace(std::vector<arch::ParamSpec>{}),
               std::invalid_argument);
  EXPECT_THROW(arch::DesignSpace(std::vector<arch::ParamSpec>{{"p", "d", {}}}),
               std::invalid_argument);
  EXPECT_THROW(arch::DesignSpace(
                   std::vector<arch::ParamSpec>{{"p", "d", {3.0, 1.0}}}),
               std::invalid_argument);
}

TEST(DesignSpace, ValidationAndValues) {
  const auto& s = arch::DesignSpace::table1();
  arch::Config c(s.num_params(), 0);
  EXPECT_TRUE(s.valid(c));
  const auto v = s.values_of(c);
  EXPECT_EQ(v[s.param_index("core_freq_ghz")], 1.0);
  EXPECT_EQ(v[s.param_index("rob_size")], 32.0);

  arch::Config wrong_len(3, 0);
  EXPECT_FALSE(s.valid(wrong_len));
  EXPECT_THROW(s.validate(wrong_len), std::invalid_argument);
  arch::Config out_of_range(s.num_params(), 0);
  out_of_range[0] = 99;
  EXPECT_FALSE(s.valid(out_of_range));
  EXPECT_THROW(s.validate(out_of_range), std::invalid_argument);
}

TEST(DesignSpace, NormalizeBounds) {
  const auto& s = arch::DesignSpace::table1();
  mt::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto c = s.random_config(rng);
    const auto f = s.normalize(c);
    ASSERT_EQ(f.size(), s.num_params());
    for (float v : f) {
      EXPECT_GE(v, 0.0F);
      EXPECT_LE(v, 1.0F);
    }
  }
  // Min config maps to all zeros, max to all ones.
  arch::Config lo(s.num_params(), 0);
  for (float v : s.normalize(lo)) EXPECT_EQ(v, 0.0F);
  arch::Config hi(s.num_params());
  for (size_t i = 0; i < s.num_params(); ++i) {
    hi[i] = s.spec(i).cardinality() - 1;
  }
  for (float v : s.normalize(hi)) EXPECT_EQ(v, 1.0F);
}

class EncodeDecodeRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodeDecodeRoundTrip, RandomConfigsSurvive) {
  const auto& s = arch::DesignSpace::table1();
  mt::Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const auto c = s.random_config(rng);
    EXPECT_EQ(s.decode(s.encode(c)), c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodeDecodeRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(DesignSpace, EncodeIsInjectiveOnSample) {
  const auto& s = arch::DesignSpace::table1();
  mt::Rng rng(11);
  std::set<uint64_t> ids;
  const auto configs = s.sample_uniform(500, rng);
  for (const auto& c : configs) ids.insert(s.encode(c));
  // Uniform sampling over 10^14 points: collisions are absurdly unlikely.
  EXPECT_EQ(ids.size(), configs.size());
}

TEST(DesignSpace, LatinHypercubeCoversMarginals) {
  const auto& s = arch::DesignSpace::table1();
  mt::Rng rng(13);
  const size_t n = 200;
  const auto configs = s.sample_latin_hypercube(n, rng);
  ASSERT_EQ(configs.size(), n);
  // Every parameter should see both halves of its range.
  for (size_t p = 0; p < s.num_params(); ++p) {
    const size_t card = s.spec(p).cardinality();
    size_t lo = 0;
    size_t hi = 0;
    for (const auto& c : configs) {
      EXPECT_LT(c[p], card);
      (c[p] * 2 < card ? lo : hi) += 1;
    }
    if (card > 1) {
      EXPECT_GT(lo, n / 5) << "param " << s.spec(p).name;
      EXPECT_GT(hi, n / 5) << "param " << s.spec(p).name;
    }
  }
}

TEST(DesignSpace, OaFoldoverMirrorsHalves) {
  const auto& s = arch::DesignSpace::table1();
  mt::Rng rng(17);
  const auto configs = s.sample_oa_foldover(20, rng);
  ASSERT_EQ(configs.size(), 20U);
  // Consecutive pairs are foldover mirrors: where one picks the low half,
  // the other picks the high half (for parameters with > 1 candidate).
  for (size_t i = 0; i + 1 < configs.size(); i += 2) {
    for (size_t p = 0; p < s.num_params(); ++p) {
      const size_t card = s.spec(p).cardinality();
      if (card < 2) continue;
      const bool a_high = configs[i][p] * 2 >= card;
      const bool b_high = configs[i + 1][p] * 2 >= card;
      EXPECT_NE(a_high, b_high) << "param " << s.spec(p).name;
    }
  }
}

TEST(CpuConfig, DecodesTypedView) {
  const auto& s = arch::DesignSpace::table1();
  arch::Config c(s.num_params(), 0);
  c[s.param_index("core_freq_ghz")] = 4;        // 3 GHz
  c[s.param_index("pipeline_width")] = 7;       // 8-wide
  c[s.param_index("branch_predictor")] = 1;     // tournament
  c[s.param_index("rob_size")] = 14;            // 256
  const auto cfg = arch::to_cpu_config(s, c);
  EXPECT_DOUBLE_EQ(cfg.freq_ghz, 3.0);
  EXPECT_EQ(cfg.width, 8);
  EXPECT_EQ(cfg.branch_predictor, arch::BranchPredictorType::kTournament);
  EXPECT_EQ(cfg.rob_size, 256);
  EXPECT_EQ(cfg.l1i_kb, 16);
  EXPECT_EQ(cfg.l2_kb, 128);
}
