// Metric tests: the paper's Eq. 1-3 plus aggregation and Wasserstein.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.hpp"
#include "eval/table.hpp"

namespace ev = metadse::eval;

TEST(Rmse, KnownValuesAndErrors) {
  std::vector<float> a{1, 2, 3, 4};
  std::vector<float> p{1, 2, 3, 8};
  EXPECT_DOUBLE_EQ(ev::rmse(a, p), 2.0);  // sqrt(16/4)
  EXPECT_DOUBLE_EQ(ev::rmse(a, a), 0.0);
  std::vector<float> bad{1, 2};
  EXPECT_THROW(ev::rmse(a, bad), std::invalid_argument);
  EXPECT_THROW(ev::rmse({}, {}), std::invalid_argument);
}

TEST(Mape, FractionOfActual) {
  std::vector<float> a{2, 4};
  std::vector<float> p{1, 5};
  // |2-1|/2 = .5, |4-5|/4 = .25 -> mean .375
  EXPECT_NEAR(ev::mape(a, p), 0.375, 1e-12);
  // Zero actuals are guarded, not infinite.
  std::vector<float> z{0.0F};
  std::vector<float> pz{1.0F};
  EXPECT_TRUE(std::isfinite(ev::mape(z, pz)));
}

TEST(ExplainedVariance, PerfectAndMeanPredictor) {
  std::vector<float> a{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ev::explained_variance(a, a), 1.0);
  std::vector<float> mean_pred(4, 2.5F);
  EXPECT_NEAR(ev::explained_variance(a, mean_pred), 0.0, 1e-12);
  // Worse than the mean predictor: negative EV (as in the paper's Table II).
  std::vector<float> bad{4, 3, 2, 1};
  EXPECT_LT(ev::explained_variance(a, bad), 0.0);
  // Constant actuals.
  std::vector<float> c{2, 2};
  EXPECT_DOUBLE_EQ(ev::explained_variance(c, c), 1.0);
  std::vector<float> cw{3, 3};
  EXPECT_LT(ev::explained_variance(c, cw), -1e8);
}

TEST(Geomean, ValuesAndGuards) {
  std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(ev::geomean(v), 4.0, 1e-12);
  std::vector<double> bad{1.0, 0.0};
  EXPECT_THROW(ev::geomean(bad), std::invalid_argument);
  EXPECT_THROW(ev::geomean(std::vector<double>{}), std::invalid_argument);
}

TEST(MeanCi, NormalApproximation) {
  std::vector<double> v{1, 2, 3, 4, 5};
  const auto mc = ev::mean_ci(v);
  EXPECT_DOUBLE_EQ(mc.mean, 3.0);
  // sd = sqrt(2.5), ci = 1.96 * sd / sqrt(5)
  EXPECT_NEAR(mc.ci95, 1.96 * std::sqrt(2.5 / 5.0), 1e-12);
  const auto single = ev::mean_ci(std::vector<double>{7.0});
  EXPECT_DOUBLE_EQ(single.mean, 7.0);
  EXPECT_DOUBLE_EQ(single.ci95, 0.0);
}

TEST(Wasserstein, MetricProperties) {
  std::vector<float> a{0, 1, 2, 3};
  std::vector<float> b{0, 1, 2, 3};
  EXPECT_NEAR(ev::wasserstein1(a, b), 0.0, 1e-9);
  // Translation by c moves W1 by exactly |c|.
  std::vector<float> shifted{2, 3, 4, 5};
  EXPECT_NEAR(ev::wasserstein1(a, shifted), 2.0, 1e-6);
  // Symmetry.
  std::vector<float> c{0, 0, 10, 10};
  EXPECT_NEAR(ev::wasserstein1(a, c), ev::wasserstein1(c, a), 1e-9);
  // Different sizes are supported (quantile interpolation). {0,1,2,3} and
  // {0,3} both interpolate to Uniform[0,3] -> distance ~0.
  std::vector<float> same_law{0, 3};
  EXPECT_NEAR(ev::wasserstein1(a, same_law), 0.0, 0.05);
  // Whereas {0,1} is Uniform[0,1]: E|3q - q| = 1.
  std::vector<float> narrower{0, 1};
  EXPECT_NEAR(ev::wasserstein1(a, narrower), 1.0, 0.05);
  EXPECT_THROW(ev::wasserstein1({}, a), std::invalid_argument);
}

TEST(FormatMeanCi, RendersPlusMinus) {
  ev::MeanCi mc;
  mc.mean = 0.12345;
  mc.ci95 = 0.005;
  EXPECT_EQ(ev::format_mean_ci(mc, 3), "0.123±0.005");
}

TEST(TextTable, AlignsAndValidates) {
  ev::TextTable t({"model", "rmse"});
  t.add_row({"RF", "0.44"});
  t.add_row({"MetaDSE", "0.22"});
  const auto out = t.render();
  EXPECT_NE(out.find("| model "), std::string::npos);
  EXPECT_NE(out.find("| MetaDSE | 0.22"), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "many", "cols"}), std::invalid_argument);
  EXPECT_THROW(ev::TextTable({}), std::invalid_argument);
}

TEST(Heatmap, RendersSquareMatrix) {
  std::vector<std::string> labels{"a", "b"};
  std::vector<std::vector<double>> m{{0.0, 1.0}, {1.0, 0.0}};
  const auto out = ev::render_heatmap(labels, m);
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  std::vector<std::vector<double>> ragged{{0.0}, {1.0, 2.0}};
  EXPECT_THROW(ev::render_heatmap(labels, ragged), std::invalid_argument);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(ev::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(ev::fmt(2.0, 1), "2.0");
}
