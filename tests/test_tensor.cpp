// Unit tests for the tensor container, shape utilities, and autograd plumbing.
#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/ops.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace mt = metadse::tensor;

TEST(Shape, NumelAndStrides) {
  EXPECT_EQ(mt::numel({}), 1U);
  EXPECT_EQ(mt::numel({3}), 3U);
  EXPECT_EQ(mt::numel({2, 3, 4}), 24U);
  const auto st = mt::row_major_strides({2, 3, 4});
  ASSERT_EQ(st.size(), 3U);
  EXPECT_EQ(st[0], 12U);
  EXPECT_EQ(st[1], 4U);
  EXPECT_EQ(st[2], 1U);
}

TEST(Shape, BroadcastRules) {
  EXPECT_EQ(mt::broadcast_shape({3, 1}, {1, 4}), (mt::Shape{3, 4}));
  EXPECT_EQ(mt::broadcast_shape({5, 3, 4}, {4}), (mt::Shape{5, 3, 4}));
  EXPECT_EQ(mt::broadcast_shape({}, {2, 2}), (mt::Shape{2, 2}));
  EXPECT_THROW(mt::broadcast_shape({3}, {4}), std::invalid_argument);
}

TEST(Shape, BroadcastStridesZeroOnExpandedDims) {
  const auto st = mt::broadcast_strides({3, 1}, {3, 4});
  EXPECT_EQ(st[0], 1U);
  EXPECT_EQ(st[1], 0U);
  const auto st2 = mt::broadcast_strides({4}, {2, 3, 4});
  EXPECT_EQ(st2[0], 0U);
  EXPECT_EQ(st2[1], 0U);
  EXPECT_EQ(st2[2], 1U);
}

TEST(Tensor, Factories) {
  auto z = mt::Tensor::zeros({2, 3});
  EXPECT_EQ(z.size(), 6U);
  for (float v : z.data()) EXPECT_EQ(v, 0.0F);

  auto f = mt::Tensor::full({4}, 2.5F);
  for (float v : f.data()) EXPECT_EQ(v, 2.5F);

  auto s = mt::Tensor::scalar(7.0F);
  EXPECT_EQ(s.item(), 7.0F);
  EXPECT_EQ(s.rank(), 0U);

  mt::Rng rng(1);
  auto r = mt::Tensor::randn({100}, rng, 2.0F);
  EXPECT_EQ(r.size(), 100U);
}

TEST(Tensor, FromVectorValidatesSize) {
  EXPECT_THROW(mt::Tensor::from_vector({2, 2}, {1.0F, 2.0F}),
               std::invalid_argument);
}

TEST(Tensor, AtBoundsChecked) {
  auto t = mt::Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({0, 1}), 2.0F);
  EXPECT_EQ(t.at({1, 0}), 3.0F);
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0}), std::invalid_argument);
}

TEST(Tensor, ItemRequiresScalar) {
  auto t = mt::Tensor::zeros({2});
  EXPECT_THROW(t.item(), std::logic_error);
}

TEST(Tensor, BackwardRequiresScalarRoot) {
  auto t = mt::Tensor::zeros({3}, true);
  EXPECT_THROW(t.backward(), std::logic_error);
}

TEST(Tensor, DetachCutsGraph) {
  auto a = mt::Tensor::full({2}, 3.0F, true);
  auto b = mt::mul(a, 2.0F);
  auto d = b.detach();
  EXPECT_FALSE(d.requires_grad());
  auto loss = mt::sum(d);
  EXPECT_FALSE(loss.requires_grad());
}

TEST(Tensor, SimpleChainGradient) {
  // loss = sum((2a)^2), d loss / d a_i = 8 a_i
  auto a = mt::Tensor::from_vector({3}, {1.0F, -2.0F, 0.5F}, true);
  auto loss = mt::sum(mt::square(mt::mul(a, 2.0F)));
  loss.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 8.0F);
  EXPECT_FLOAT_EQ(a.grad()[1], -16.0F);
  EXPECT_FLOAT_EQ(a.grad()[2], 4.0F);
}

TEST(Tensor, GradAccumulatesAcrossBackwardCalls) {
  auto a = mt::Tensor::scalar(3.0F, true);
  mt::mul(a, 2.0F).backward();
  mt::mul(a, 2.0F).backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0F);  // 2 + 2
  a.zero_grad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0F);
}

TEST(Tensor, DiamondGraphAccumulates) {
  // loss = a*a + a  => dloss/da = 2a + 1
  auto a = mt::Tensor::scalar(5.0F, true);
  auto loss = mt::add(mt::mul(a, a), a);
  loss.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 11.0F);
}

TEST(Tensor, DeepChainDoesNotOverflowStack) {
  auto a = mt::Tensor::scalar(1.0F, true);
  mt::Tensor x = a;
  for (int i = 0; i < 20000; ++i) x = mt::add(x, 0.0F);
  x.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0F);
}

TEST(Rng, DeterministicAcrossInstances) {
  mt::Rng a(42);
  mt::Rng b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.normal(), b.normal());
}

TEST(Rng, ForkProducesIndependentStream) {
  mt::Rng a(42);
  mt::Rng f = a.fork();
  // The fork advances the parent; identical seeds still give deterministic
  // (but distinct) streams.
  EXPECT_NE(a.normal(), f.normal());
}

TEST(Rng, UniformIndexInRange) {
  mt::Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_LT(r.uniform_index(10), 10U);
  EXPECT_THROW(r.uniform_index(0), std::invalid_argument);
}
