// Corruption contract for the persistence layer: any truncation or bit flip
// of a parameter file or checkpoint must surface as std::runtime_error —
// never a crash, a huge allocation, or silently-wrong weights — and legacy
// v1 images (no checksums) must keep loading. Also covers the autosave /
// resume path built on top of checkpoints.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/metadse.hpp"
#include "nn/serialize.hpp"
#include "nn/transformer.hpp"
#include "tensor/guard.hpp"

namespace core = metadse::core;
namespace nn = metadse::nn;
namespace mt = metadse::tensor;

namespace {

core::FrameworkOptions tiny() {
  core::FrameworkOptions o;
  o.samples_per_workload = 150;
  o.maml.epochs = 1;
  o.maml.tasks_per_workload = 4;
  o.maml.val_tasks_per_workload = 2;
  o.maml.seed = 5;
  o.seed = 55;
  return o;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
void put(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void put_vec(std::string& out, const std::vector<float>& v) {
  put(out, static_cast<uint64_t>(v.size()));
  out.append(reinterpret_cast<const char*>(v.data()),
             v.size() * sizeof(float));
}

nn::TransformerRegressor make_model() {
  nn::TransformerConfig cfg = tiny().predictor;
  mt::Rng rng(3);
  return nn::TransformerRegressor(cfg, rng);
}

}  // namespace

TEST(SerializeCorruption, ParameterRoundTripSurvives) {
  const auto path = temp_path("metadse_params_ok.bin");
  auto m = make_model();
  nn::save_parameters(m, path);
  auto n = make_model();
  // Perturb so the load has to do real work.
  auto flat = n.flatten_parameters();
  for (auto& f : flat) f += 1.0F;
  n.unflatten_parameters(flat);
  nn::load_parameters(n, path);
  EXPECT_EQ(m.flatten_parameters(), n.flatten_parameters());
  std::remove(path.c_str());
}

TEST(SerializeCorruption, TruncatedParameterFileAlwaysThrows) {
  const auto path = temp_path("metadse_params_trunc.bin");
  auto m = make_model();
  nn::save_parameters(m, path);
  const std::string good = slurp(path);
  ASSERT_GT(good.size(), 64U);
  // Cut at structural boundaries and arbitrary interior points.
  const size_t cuts[] = {0,  1,  4,  8,  12, 16, 21, good.size() / 4,
                         good.size() / 2, good.size() - 5, good.size() - 1};
  for (size_t cut : cuts) {
    spit(path, good.substr(0, cut));
    auto n = make_model();
    EXPECT_THROW(nn::load_parameters(n, path), std::runtime_error)
        << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(SerializeCorruption, BitFlippedParameterFileAlwaysThrows) {
  const auto path = temp_path("metadse_params_flip.bin");
  auto m = make_model();
  nn::save_parameters(m, path);
  const std::string good = slurp(path);
  // Flip one bit in each region: magic, version, count, first record's
  // rank/shape/data/crc, mid-file data, and the footer itself.
  const size_t offsets[] = {0,  5,  9,  17, 21, 29, 64, good.size() / 2,
                            good.size() - 3};
  for (size_t off : offsets) {
    std::string bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0x10);
    spit(path, bad);
    auto n = make_model();
    EXPECT_THROW(nn::load_parameters(n, path), std::runtime_error)
        << "flip at " << off;
  }
  std::remove(path.c_str());
}

TEST(SerializeCorruption, LegacyV1ParameterFileStillLoads) {
  // v1 layout: magic, version=1, count, then per tensor rank/dims/floats —
  // no checksums, no footer. Hand-written so the compatibility promise is
  // pinned to bytes, not to whatever save_parameters emits today.
  auto m = make_model();
  std::string out;
  put(out, static_cast<uint32_t>(0x4D44'5345));  // "MDSE"
  put(out, static_cast<uint32_t>(1));
  const auto params = m.parameters();
  put(out, static_cast<uint64_t>(params.size()));
  for (const auto& p : params) {
    put(out, static_cast<uint32_t>(p.shape().size()));
    for (size_t d : p.shape()) put(out, static_cast<uint64_t>(d));
    out.append(reinterpret_cast<const char*>(p.data().data()),
               p.data().size() * sizeof(float));
  }
  const auto path = temp_path("metadse_params_v1.bin");
  spit(path, out);
  auto n = make_model();
  auto flat = n.flatten_parameters();
  for (auto& f : flat) f += 1.0F;
  n.unflatten_parameters(flat);
  nn::load_parameters(n, path);
  EXPECT_EQ(m.flatten_parameters(), n.flatten_parameters());
  std::remove(path.c_str());
}

TEST(SerializeCorruption, CorruptShapeNeverSizesAnAllocation) {
  // Blow the first record's rank and first dim up to absurd values: the
  // loader must reject from the module's expected shape, not allocate.
  const auto path = temp_path("metadse_params_shape.bin");
  auto m = make_model();
  nn::save_parameters(m, path);
  std::string bad = slurp(path);
  const uint32_t huge_rank = 0x7FFFFFFF;
  std::memcpy(bad.data() + 16, &huge_rank, sizeof(huge_rank));
  spit(path, bad);
  auto n = make_model();
  EXPECT_THROW(nn::load_parameters(n, path), std::runtime_error);
  std::remove(path.c_str());
}

namespace {

/// A hand-written legacy (v1, "MDK2") checkpoint for the tiny architecture.
std::string v1_checkpoint_bytes(const nn::TransformerRegressor& model) {
  const auto cfg = tiny().predictor;
  std::string out;
  put(out, static_cast<uint32_t>(0x4D44'4B32));  // "MDK2"
  put(out, static_cast<uint64_t>(cfg.n_tokens));
  put(out, static_cast<uint64_t>(cfg.d_model));
  put(out, static_cast<uint64_t>(cfg.n_layers));
  put_vec(out, {1.0F});  // scaler mean (width 1: kIpc)
  put_vec(out, {0.5F});  // scaler stddev
  put_vec(out, std::vector<float>(cfg.n_tokens * cfg.n_tokens, 0.25F));
  put_vec(out, model.flatten_parameters());
  return out;
}

}  // namespace

TEST(CheckpointCorruption, LegacyV1CheckpointStillLoads) {
  auto model = make_model();
  const auto path = temp_path("metadse_ckpt_v1.bin");
  spit(path, v1_checkpoint_bytes(model));
  core::MetaDseFramework fw(tiny());
  ASSERT_TRUE(fw.load_checkpoint(path));
  EXPECT_EQ(fw.model().flatten_parameters(), model.flatten_parameters());
  EXPECT_FLOAT_EQ(fw.scaler().mean()[0], 1.0F);
  EXPECT_FLOAT_EQ(fw.scaler().stddev()[0], 0.5F);
  EXPECT_TRUE(fw.wam_mask().defined());
  std::remove(path.c_str());
}

TEST(CheckpointCorruption, MissingFileReturnsFalse) {
  core::MetaDseFramework fw(tiny());
  EXPECT_FALSE(fw.load_checkpoint(temp_path("metadse_ckpt_nonexistent.bin")));
}

TEST(CheckpointCorruption, FuzzedV2CheckpointAlwaysThrows) {
  // Build a valid v2 checkpoint from loaded v1 state (no training needed),
  // then truncate and bit-flip it everywhere that matters.
  auto model = make_model();
  const auto v1_path = temp_path("metadse_ckpt_seed.bin");
  spit(v1_path, v1_checkpoint_bytes(model));
  core::MetaDseFramework fw(tiny());
  ASSERT_TRUE(fw.load_checkpoint(v1_path));
  std::remove(v1_path.c_str());

  const auto path = temp_path("metadse_ckpt_v2.bin");
  fw.save_checkpoint(path);
  const std::string good = slurp(path);
  ASSERT_GT(good.size(), 128U);

  // Round-trips cleanly first.
  core::MetaDseFramework fresh(tiny());
  ASSERT_TRUE(fresh.load_checkpoint(path));
  EXPECT_EQ(fresh.model().flatten_parameters(), model.flatten_parameters());

  const size_t cuts[] = {0,  3,  7,  11, 30, 60, good.size() / 3,
                         good.size() / 2, good.size() - 4, good.size() - 1};
  for (size_t cut : cuts) {
    spit(path, good.substr(0, cut));
    core::MetaDseFramework victim(tiny());
    EXPECT_THROW(victim.load_checkpoint(path), std::runtime_error)
        << "cut at " << cut;
  }
  const size_t flips[] = {0,  5,  9,  17, 25, 33, 41, 52, good.size() / 2,
                          good.size() - 2};
  for (size_t off : flips) {
    std::string bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0x08);
    spit(path, bad);
    core::MetaDseFramework victim(tiny());
    EXPECT_THROW(victim.load_checkpoint(path), std::runtime_error)
        << "flip at " << off;
  }
  std::remove(path.c_str());
}

TEST(CheckpointCorruption, ImplausibleTraceLengthIsRejectedBeforeAllocation) {
  auto model = make_model();
  const auto v1_path = temp_path("metadse_ckpt_seed2.bin");
  spit(v1_path, v1_checkpoint_bytes(model));
  core::MetaDseFramework fw(tiny());
  ASSERT_TRUE(fw.load_checkpoint(v1_path));
  std::remove(v1_path.c_str());

  const auto path = temp_path("metadse_ckpt_trace.bin");
  fw.save_checkpoint(path);
  std::string bad = slurp(path);
  // Trace count lives after magic(4) + version(4) + 4 u64 header fields +
  // best_val f64 = offset 48. A checksum fix-up keeps the footer valid so
  // the length bound itself must do the rejecting.
  const uint64_t huge = 0xFFFF'FFFF'FFFFULL;
  std::memcpy(bad.data() + 48, &huge, sizeof(huge));
  const uint32_t crc = nn::crc32(bad.data(), bad.size() - 4);
  std::memcpy(bad.data() + bad.size() - 4, &crc, sizeof(crc));
  spit(path, bad);
  core::MetaDseFramework victim(tiny());
  EXPECT_THROW(victim.load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CheckpointResume, AutosaveResumesAnInterruptedPretrain) {
  const auto path = temp_path("metadse_autosave.ckpt");
  std::remove(path.c_str());

  // Reference: an uninterrupted 2-epoch run (no autosave).
  auto opts = tiny();
  opts.maml.epochs = 2;

  // Interrupted run: first invocation only completes epoch 1.
  auto first = opts;
  first.maml.epochs = 1;
  first.autosave_path = path;
  core::MetaDseFramework fw1(first);
  fw1.pretrain();
  ASSERT_EQ(fw1.trace().size(), 1U);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Second invocation with the full epoch budget resumes at epoch 2 —
  // epoch 1's trace entry must be preserved, not recomputed.
  auto second = opts;
  second.autosave_path = path;
  core::MetaDseFramework fw2(second);
  fw2.pretrain();
  ASSERT_EQ(fw2.trace().size(), 2U);
  EXPECT_EQ(fw2.trace()[0].train_meta_loss, fw1.trace()[0].train_meta_loss);
  EXPECT_EQ(fw2.trace()[0].val_loss, fw1.trace()[0].val_loss);
  EXPECT_FALSE(mt::has_nonfinite(fw2.model().flatten_parameters()));

  // A third invocation sees a finished run and loads it outright, without
  // retraining: identical parameters and trace.
  core::MetaDseFramework fw3(second);
  fw3.pretrain();
  EXPECT_EQ(fw3.model().flatten_parameters(), fw2.model().flatten_parameters());
  ASSERT_EQ(fw3.trace().size(), 2U);
  EXPECT_EQ(fw3.trace()[1].train_meta_loss, fw2.trace()[1].train_meta_loss);
  std::remove(path.c_str());
}

TEST(CheckpointResume, AutosaveIsNeverAPartialFile) {
  // The autosave is written atomically: no .tmp residue survives a
  // completed write, and the file parses at every epoch boundary.
  const auto path = temp_path("metadse_autosave_atomic.ckpt");
  std::remove(path.c_str());
  auto opts = tiny();
  opts.maml.epochs = 2;
  opts.autosave_path = path;
  core::MetaDseFramework fw(opts);
  fw.pretrain();
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  core::MetaDseFramework reader(opts);
  EXPECT_TRUE(reader.load_checkpoint(path));
  std::remove(path.c_str());
}
