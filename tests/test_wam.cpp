// WAM tests: mask generation from attention statistics (Fig. 4) and the
// Algorithm 2 adaptation procedure (mask installation, learnability).
#include <gtest/gtest.h>

#include <algorithm>

#include "meta/wam.hpp"
#include "tensor/ops.hpp"

namespace meta = metadse::meta;
namespace nn = metadse::nn;
namespace mt = metadse::tensor;
namespace data = metadse::data;

namespace {

constexpr size_t kN = 6;

/// Attention map with a strong (0 -> 1) and (2 -> 3) interaction.
mt::Tensor structured_attention(mt::Rng& rng) {
  std::vector<float> a(kN * kN);
  for (size_t r = 0; r < kN; ++r) {
    float row_sum = 0.0F;
    for (size_t c = 0; c < kN; ++c) {
      float v = rng.uniform(0.01F, 0.05F);
      if ((r == 0 && c == 1) || (r == 2 && c == 3)) v = 0.6F;
      a[r * kN + c] = v;
      row_sum += v;
    }
    for (size_t c = 0; c < kN; ++c) a[r * kN + c] /= row_sum;
  }
  return mt::Tensor::from_vector({kN, kN}, std::move(a));
}

nn::TransformerConfig cfg6() {
  return {.n_tokens = kN, .d_model = 8, .n_heads = 2, .n_layers = 2,
          .d_ff = 16, .n_outputs = 1};
}

}  // namespace

TEST(WamGenerator, ValidatesInputs) {
  EXPECT_THROW(meta::WamGenerator(0), std::invalid_argument);
  meta::WamGenerator gen(kN);
  EXPECT_THROW(gen.accumulate(mt::Tensor::zeros({3, 3})),
               std::invalid_argument);
  EXPECT_THROW(gen.generate(), std::logic_error);  // nothing accumulated
  EXPECT_THROW(
      meta::WamGenerator::from_mean_attention(mt::Tensor::zeros({2, 3})),
      std::invalid_argument);
}

TEST(WamGenerator, KeepsHighFrequencyInteractions) {
  meta::WamGenerator gen(kN);
  mt::Rng rng(3);
  for (int i = 0; i < 20; ++i) gen.accumulate(structured_attention(rng));
  EXPECT_EQ(gen.count(), 20U);
  meta::WamOptions opts;
  opts.mode = meta::WamMode::kBinary;
  opts.keep_fraction = 0.1;
  opts.suppressed_value = 0.2F;
  const auto mask = gen.generate(opts);
  EXPECT_EQ(mask.shape(), (mt::Shape{kN, kN}));
  // The two planted interactions survive at full strength.
  EXPECT_FLOAT_EQ(mask.at({0, 1}), 1.0F);
  EXPECT_FLOAT_EQ(mask.at({2, 3}), 1.0F);
  // Diagonal always kept.
  for (size_t i = 0; i < kN; ++i) EXPECT_FLOAT_EQ(mask.at({i, i}), 1.0F);
  // Every entry is either kept or suppressed.
  size_t suppressed = 0;
  for (float v : mask.data()) {
    EXPECT_TRUE(v == 1.0F || v == 0.2F);
    suppressed += v == 0.2F;
  }
  EXPECT_GT(suppressed, kN * kN / 2);  // most interactions filtered
}

TEST(WamGenerator, KeepFractionControlsDensity) {
  meta::WamGenerator gen(kN);
  mt::Rng rng(4);
  for (int i = 0; i < 10; ++i) gen.accumulate(structured_attention(rng));
  auto count_kept = [&](double frac) {
    meta::WamOptions o;
    o.mode = meta::WamMode::kBinary;
    o.keep_fraction = frac;
    const auto m = gen.generate(o);
    size_t kept = 0;
    for (float v : m.data()) kept += v == 1.0F;
    return kept;
  };
  EXPECT_LT(count_kept(0.1), count_kept(0.5));
  EXPECT_LE(count_kept(0.5), count_kept(1.0));
  EXPECT_EQ(count_kept(1.0), kN * kN);  // keep everything
  meta::WamOptions bad;
  bad.keep_fraction = 0.0;
  EXPECT_THROW(gen.generate(bad), std::invalid_argument);
  bad.keep_fraction = 0.5;
  bad.suppressed_value = 2.0F;
  EXPECT_THROW(gen.generate(bad), std::invalid_argument);
}

TEST(WamGenerator, FromMeanAttentionMatchesStructure) {
  mt::Rng rng(5);
  const auto mask = meta::WamGenerator::from_mean_attention(
      structured_attention(rng),
      {.keep_fraction = 0.1, .mode = meta::WamMode::kBinary});
  EXPECT_FLOAT_EQ(mask.at({0, 1}), 1.0F);
  EXPECT_FLOAT_EQ(mask.at({2, 3}), 1.0F);
}

TEST(WamGenerator, ContinuousModeProfile) {
  mt::Rng rng(15);
  meta::WamOptions opts;
  opts.mode = meta::WamMode::kContinuous;
  opts.suppressed_value = 0.3F;
  const auto mask = meta::WamGenerator::from_mean_attention(
      structured_attention(rng), opts);
  // Planted strong interactions sit at (or very near) the row maximum -> 1.
  EXPECT_NEAR(mask.at({0, 1}), 1.0F, 1e-5);
  EXPECT_NEAR(mask.at({2, 3}), 1.0F, 1e-5);
  // Diagonal always kept.
  for (size_t i = 0; i < kN; ++i) EXPECT_FLOAT_EQ(mask.at({i, i}), 1.0F);
  // All weights live in [floor, 1]; weak interactions sit near the floor.
  float min_v = 1.0F;
  for (float v : mask.data()) {
    EXPECT_GE(v, 0.3F - 1e-6F);
    EXPECT_LE(v, 1.0F + 1e-6F);
    min_v = std::min(min_v, v);
  }
  EXPECT_LT(min_v, 0.45F);
}

TEST(WamAdapt, ReducesSupportLossWithAndWithoutMask) {
  mt::Rng rng(6);
  nn::TransformerRegressor model(cfg6(), rng);
  auto x = mt::Tensor::uniform({12, kN}, rng, 0.0F, 1.0F);
  std::vector<float> ys(12);
  for (size_t i = 0; i < 12; ++i) {
    ys[i] = 2.0F * x.at({i, 0}) - x.at({i, 1});
  }
  auto y = mt::Tensor::from_vector({12, 1}, std::move(ys));
  mt::Rng fwd(0);
  const double before = mt::mse_loss(model.forward(x, fwd), y).item();

  const auto mask =
      meta::WamGenerator::from_mean_attention(structured_attention(rng));
  meta::AdaptOptions opts;
  opts.steps = 25;
  opts.lr = 0.05F;

  auto with_mask = meta::wam_adapt(model, mask, x, y, opts);
  EXPECT_TRUE(with_mask->last_attention_layer().has_mask());
  EXPECT_LT(mt::mse_loss(with_mask->forward(x, fwd), y).item(), before);

  opts.use_wam = false;
  auto without_mask = meta::wam_adapt(model, {}, x, y, opts);
  EXPECT_FALSE(without_mask->last_attention_layer().has_mask());
  EXPECT_LT(mt::mse_loss(without_mask->forward(x, fwd), y).item(), before);

  // Original untouched.
  EXPECT_FLOAT_EQ(mt::mse_loss(model.forward(x, fwd), y).item(),
                  static_cast<float>(before));
}

TEST(WamAdapt, MaskIsLearnedWhenRequested) {
  mt::Rng rng(7);
  nn::TransformerRegressor model(cfg6(), rng);
  auto x = mt::Tensor::uniform({10, kN}, rng, 0.0F, 1.0F);
  auto y = mt::Tensor::uniform({10, 1}, rng, -1.0F, 1.0F);
  const auto mask =
      meta::WamGenerator::from_mean_attention(structured_attention(rng));

  meta::AdaptOptions learn;
  learn.steps = 10;
  learn.lr = 0.05F;
  learn.learn_mask = true;
  auto learned = meta::wam_adapt(model, mask, x, y, learn);
  const auto& m_learned = learned->last_attention_layer().mask();
  bool changed = false;
  for (size_t i = 0; i < m_learned.size(); ++i) {
    changed = changed || m_learned.data()[i] != mask.data()[i];
  }
  EXPECT_TRUE(changed);

  meta::AdaptOptions frozen = learn;
  frozen.learn_mask = false;
  auto fixed = meta::wam_adapt(model, mask, x, y, frozen);
  EXPECT_EQ(fixed->last_attention_layer().mask().data(), mask.data());
}

TEST(WamAdapt, Validation) {
  mt::Rng rng(8);
  nn::TransformerRegressor model(cfg6(), rng);
  auto x = mt::Tensor::zeros({4, kN});
  auto y = mt::Tensor::zeros({4, 1});
  meta::AdaptOptions opts;
  opts.steps = 0;
  EXPECT_THROW(meta::wam_adapt(model, {}, x, y, opts), std::invalid_argument);
  opts.steps = 5;
  opts.use_wam = true;
  EXPECT_THROW(meta::wam_adapt(model, {}, x, y, opts), std::invalid_argument);
}
