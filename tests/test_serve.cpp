// Serving-core behaviour: replica pool leasing, admission policies under a
// full queue (block / reject / shed-oldest), deadline budgets expiring in the
// queue and propagating into the executor, load-aware forced degradation,
// the watchdog's wedged-replica breaker, drain/now shutdown semantics, and a
// 1000+-session interleaved soak pinning the accounting invariant
//   submitted == ok + rejected + shed + deadline + stopped + failed.
//
// Executors here are synthetic (the bench's sleeper pattern): they poll the
// same cooperative-cancellation hooks as the real DSE loop, so the tests
// exercise ServerCore's control plane without touching the simulator.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/chaos.hpp"
#include "core/io.hpp"
#include "explore/explorer.hpp"
#include "explore/guarded.hpp"
#include "serve/coalesce.hpp"
#include "serve/replica.hpp"
#include "serve/server.hpp"

namespace ex = metadse::explore;
namespace serve = metadse::serve;

namespace {

using Clock = std::chrono::steady_clock;

void sleep_ms(size_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// A latch the test controls: gated sessions spin inside the executor —
/// polling the same stop/budget hooks as the real DSE loop — until opened.
struct Gate {
  std::atomic<bool> open{false};
  std::atomic<size_t> entered{0};

  /// Blocks until @p n sessions are spinning inside the executor.
  void await_entered(size_t n) const {
    while (entered.load() < n) sleep_ms(1);
  }
};

/// Executor that waits on @p gate. Checks stop_requested before the budget,
/// mirroring the explorer (stop_check at the generation boundary runs before
/// the evaluator's budget check).
serve::SessionExecutor gated_executor(Gate& gate) {
  return [&gate](const serve::SessionRequest&,
                 const serve::ExecContext& ctx) -> serve::ExecResult {
    gate.entered.fetch_add(1);
    while (!gate.open.load()) {
      if (ctx.stop_requested && ctx.stop_requested()) {
        throw ex::StopRequested("gated session stopped");
      }
      if (ctx.budget->cancelled() || ctx.budget->exhausted()) {
        throw ex::ExplorationAborted("gated session: budget gone");
      }
      sleep_ms(1);
    }
    return {};
  };
}

/// A request with only the id (and seed) set — what every test needs.
serve::SessionRequest req(uint64_t id) {
  serve::SessionRequest r;
  r.id = id;
  r.seed = id;
  return r;
}

bool ready(const std::future<serve::SessionResult>& fut) {
  return fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

/// Options tuned for tests: one worker/replica, tiny queue, no watchdog.
serve::ServeOptions small_options() {
  serve::ServeOptions o;
  o.replicas = 1;
  o.workers = 1;
  o.queue_capacity = 1;
  o.degrade_at = 2.0;  // load-aware degradation off unless a test wants it
  o.watchdog_period_ms = 0;
  return o;
}

void expect_invariant(const serve::ServerStats& s) {
  EXPECT_EQ(s.submitted,
            s.ok + s.rejected + s.shed + s.deadline + s.stopped + s.failed);
  // Every condemned replica resolves into exactly one bucket (pending
  // covers slots abandoned mid-rebuild by shutdown).
  EXPECT_EQ(s.replicas_condemned,
            s.replicas_rebuilt + s.replicas_quarantined +
                s.replicas_pending_rebuild);
}

}  // namespace

// -- ReplicaPool --------------------------------------------------------------

TEST(ServeReplicaPool, LeasesAreExclusiveAndAbortable) {
  serve::ReplicaPool pool(3);
  std::vector<serve::ReplicaPool::Lease> held;
  std::set<size_t> ids;
  for (size_t i = 0; i < 3; ++i) {
    auto lease = pool.acquire();
    ASSERT_TRUE(lease.has_value());
    ids.insert(lease->id());
    held.push_back(std::move(*lease));
  }
  EXPECT_EQ(ids.size(), 3U) << "three leases must cover three distinct slots";
  // Every slot is busy: an acquire with an abort hook must give up, not hang.
  EXPECT_FALSE(pool.acquire([] { return true; }).has_value());
  held.clear();  // releases wake the pool
  EXPECT_TRUE(pool.acquire().has_value());
}

TEST(ServeReplicaPool, CondemnedSlotParksForTheSupervisorOnRelease) {
  serve::ReplicaPool pool(2);
  auto wedged = pool.acquire();
  ASSERT_TRUE(wedged.has_value());
  const size_t bad = wedged->id();

  EXPECT_TRUE(pool.condemn(bad));
  EXPECT_FALSE(pool.condemn(bad)) << "second condemn is not a transition";
  EXPECT_FALSE(pool.healthy(bad));
  EXPECT_EQ(pool.state(bad), serve::ReplicaPool::SlotState::kCondemnedBusy);
  EXPECT_EQ(pool.pending_rebuilds(), 1U);

  // The sweep must land on the other slot, and then find nothing at all.
  auto other = pool.acquire();
  ASSERT_TRUE(other.has_value());
  EXPECT_NE(other->id(), bad);
  EXPECT_FALSE(pool.acquire([] { return true; }).has_value());

  // Releasing the condemned lease parks the slot for the supervisor — it
  // does NOT rejoin dispatch on its own.
  wedged.reset();
  EXPECT_EQ(pool.state(bad), serve::ReplicaPool::SlotState::kAwaitingRebuild);
  EXPECT_FALSE(pool.acquire([] { return true; }).has_value());

  // Supervisor intake -> rebuild -> readmit makes it dispatchable again.
  auto take = pool.take_for_rebuild([] { return false; });
  ASSERT_TRUE(take.has_value());
  EXPECT_EQ(*take, bad);
  EXPECT_EQ(pool.state(bad), serve::ReplicaPool::SlotState::kRebuilding);
  pool.readmit(bad);
  EXPECT_TRUE(pool.healthy(bad));
  EXPECT_EQ(pool.pending_rebuilds(), 0U);
  auto back = pool.acquire();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id(), bad);
}

TEST(ServeReplicaPool, AcquireFailsFastWhenEverySlotIsQuarantined) {
  serve::ReplicaPool pool(1);
  ASSERT_TRUE(pool.condemn(0));  // idle slot parks immediately
  auto take = pool.take_for_rebuild([] { return false; });
  ASSERT_TRUE(take.has_value());
  pool.quarantine(*take);
  EXPECT_TRUE(pool.all_quarantined());
  EXPECT_EQ(pool.quarantined_count(), 1U);
  // No abort hook: without the fail-fast this would block forever.
  EXPECT_FALSE(pool.acquire().has_value());
  // A quarantined slot cannot be condemned again.
  EXPECT_FALSE(pool.condemn(0));
}

// -- admission ----------------------------------------------------------------

TEST(ServeAdmission, ValidatesOptions) {
  auto noop = [](const serve::SessionRequest&, const serve::ExecContext&) {
    return serve::ExecResult{};
  };
  EXPECT_THROW(serve::ServerCore(small_options(), nullptr),
               std::invalid_argument);
  auto bad_workers = small_options();
  bad_workers.workers = 0;
  EXPECT_THROW(serve::ServerCore(bad_workers, noop), std::invalid_argument);
  auto bad_queue = small_options();
  bad_queue.queue_capacity = 0;
  EXPECT_THROW(serve::ServerCore(bad_queue, noop), std::invalid_argument);
}

TEST(ServeAdmission, RejectSettlesImmediatelyWithRetryAfter) {
  Gate gate;
  auto options = small_options();
  options.admission = serve::AdmissionPolicy::kReject;
  options.retry_after_ms = 77;
  serve::ServerCore server(options, gated_executor(gate));

  auto running = server.submit(req(0));
  gate.await_entered(1);            // session 0 holds the only worker
  auto queued = server.submit(req(1));  // fills the queue (capacity 1)
  auto refused = server.submit(req(2));

  ASSERT_TRUE(ready(refused)) << "kReject must settle without waiting";
  const auto r = refused.get();
  EXPECT_EQ(r.status, serve::SessionStatus::kRejected);
  EXPECT_EQ(r.id, 2U);
  EXPECT_EQ(r.retry_after_ms, 77U);

  gate.open.store(true);
  EXPECT_EQ(running.get().status, serve::SessionStatus::kOk);
  EXPECT_EQ(queued.get().status, serve::SessionStatus::kOk);
  const auto s = server.stats();
  EXPECT_EQ(s.ok, 2U);
  EXPECT_EQ(s.rejected, 1U);
  EXPECT_EQ(s.queue_high_water, 1U);
  expect_invariant(s);
}

TEST(ServeAdmission, ShedOldestEvictsTheQueuedSession) {
  Gate gate;
  auto options = small_options();
  options.admission = serve::AdmissionPolicy::kShedOldest;
  serve::ServerCore server(options, gated_executor(gate));

  auto running = server.submit(req(0));
  gate.await_entered(1);
  auto victim = server.submit(req(1));    // queued
  auto newcomer = server.submit(req(2));  // evicts session 1

  ASSERT_TRUE(ready(victim)) << "the shed victim must settle immediately";
  const auto v = victim.get();
  EXPECT_EQ(v.status, serve::SessionStatus::kShed);
  EXPECT_EQ(v.id, 1U);

  gate.open.store(true);
  EXPECT_EQ(running.get().status, serve::SessionStatus::kOk);
  EXPECT_EQ(newcomer.get().status, serve::SessionStatus::kOk);
  const auto s = server.stats();
  EXPECT_EQ(s.ok, 2U);
  EXPECT_EQ(s.shed, 1U);
  expect_invariant(s);
}

TEST(ServeAdmission, BlockWaitsForSpaceInsteadOfFailing) {
  Gate gate;
  auto options = small_options();
  options.admission = serve::AdmissionPolicy::kBlock;
  serve::ServerCore server(options, gated_executor(gate));

  auto running = server.submit(req(0));
  gate.await_entered(1);
  auto queued = server.submit(req(1));

  std::atomic<bool> admitted{false};
  std::future<serve::SessionResult> blocked;
  std::thread submitter([&] {
    blocked = server.submit(req(2));  // queue full: must wait, not fail
    admitted.store(true);
  });
  sleep_ms(30);
  EXPECT_FALSE(admitted.load()) << "kBlock must hold the submitter";

  gate.open.store(true);  // worker drains; space frees; submitter resumes
  submitter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(running.get().status, serve::SessionStatus::kOk);
  EXPECT_EQ(queued.get().status, serve::SessionStatus::kOk);
  EXPECT_EQ(blocked.get().status, serve::SessionStatus::kOk);
  const auto s = server.stats();
  EXPECT_EQ(s.ok, 3U);
  EXPECT_EQ(s.rejected + s.shed, 0U);
  expect_invariant(s);
}

// -- deadline budgets ---------------------------------------------------------

TEST(ServeDeadline, ExpiresInQueueWithoutDispatching) {
  Gate gate;
  auto options = small_options();
  options.queue_capacity = 4;
  options.session_deadline_ms = 40;
  serve::ServerCore server(options, gated_executor(gate));

  auto running = server.submit(req(0));
  gate.await_entered(1);
  auto starved = server.submit(req(1));
  sleep_ms(120);  // well past session 1's whole allowance
  gate.open.store(true);

  EXPECT_EQ(running.get().status, serve::SessionStatus::kOk);
  const auto r = starved.get();
  EXPECT_EQ(r.status, serve::SessionStatus::kDeadline);
  EXPECT_GE(r.queued_ms, 40U);
  EXPECT_EQ(r.service_ms, 0U) << "an expired session must never dispatch";
  const auto s = server.stats();
  EXPECT_EQ(s.deadline, 1U);
  expect_invariant(s);
}

TEST(ServeDeadline, BudgetReachesTheExecutorPreChargedWithQueueWait) {
  std::atomic<size_t> seen_total{0};
  std::atomic<size_t> seen_consumed{SIZE_MAX};
  auto options = small_options();
  options.session_deadline_ms = 5000;
  serve::ServerCore server(
      options, [&](const serve::SessionRequest&,
                   const serve::ExecContext& ctx) -> serve::ExecResult {
        seen_total.store(ctx.budget->total_ms());
        seen_consumed.store(ctx.budget->consumed_ms());
        ctx.budget->charge(100);
        return {};
      });
  EXPECT_EQ(server.submit(req(7)).get().status, serve::SessionStatus::kOk);
  EXPECT_EQ(seen_total.load(), 5000U);
  EXPECT_LT(seen_consumed.load(), 5000U)
      << "queue wait is charged before dispatch, not the whole allowance";
}

TEST(ServeDeadline, ExecutorAbortOnExhaustedBudgetIsDeadline) {
  auto options = small_options();
  options.session_deadline_ms = 10;
  serve::ServerCore server(
      options, [](const serve::SessionRequest&,
                  const serve::ExecContext& ctx) -> serve::ExecResult {
        ctx.budget->charge(10'000);  // the run overruns its allowance
        throw ex::ExplorationAborted("budget exhausted mid-run");
      });
  const auto r = server.submit(req(3)).get();
  EXPECT_EQ(r.status, serve::SessionStatus::kDeadline);
  const auto s = server.stats();
  EXPECT_EQ(s.deadline, 1U);
  EXPECT_EQ(s.failed, 0U);
  expect_invariant(s);
}

TEST(ServeDeadline, ExecutorAbortWithHealthyBudgetIsFailure) {
  serve::ServerCore server(
      small_options(), [](const serve::SessionRequest&,
                          const serve::ExecContext&) -> serve::ExecResult {
        throw ex::ExplorationAborted("breaker opened under kFailFast");
      });
  EXPECT_EQ(server.submit(req(4)).get().status,
            serve::SessionStatus::kFailed);
  EXPECT_EQ(server.stats().failed, 1U);
}

// -- load-aware degradation ---------------------------------------------------

TEST(ServeDegrade, BacklogForcesTheBaselineRung) {
  std::atomic<int> baseline_starts{0};
  auto run = [&](double degrade_at) {
    auto options = small_options();
    options.degrade_at = degrade_at;
    baseline_starts.store(0);
    serve::ServerCore server(
        options, [&](const serve::SessionRequest&,
                     const serve::ExecContext& ctx) -> serve::ExecResult {
          if (ctx.start_level == ex::DegradeLevel::kBaseline) {
            baseline_starts.fetch_add(1);
            return {.degraded = true, .detail = "served on the cheap rung"};
          }
          return {};
        });
    const auto r = server.submit(req(0)).get();
    EXPECT_EQ(r.status, serve::SessionStatus::kOk);
    server.stop(serve::ServerCore::StopMode::kDrain);
    return server.stats();
  };

  // Threshold 0: any load at all (even an empty queue behind the dispatch)
  // counts as overload, so the session is forced down and marked degraded.
  const auto hot = run(/*degrade_at=*/0.0);
  EXPECT_EQ(baseline_starts.load(), 1);
  EXPECT_EQ(hot.degraded, 1U);

  // Threshold above 1.0 disables the mechanism entirely.
  const auto cold = run(/*degrade_at=*/2.0);
  EXPECT_EQ(baseline_starts.load(), 0);
  EXPECT_EQ(cold.degraded, 0U);
}

// -- watchdog -----------------------------------------------------------------

TEST(ServeWatchdog, WedgedReplicaIsCancelledAndRecovers) {
  Gate gate;  // never opened for the wedged session: only the watchdog's
              // budget-cancel lets it out
  auto options = small_options();
  options.watchdog_period_ms = 5;
  options.wedged_after_ms = 20;
  serve::ServerCore server(options, gated_executor(gate));

  const auto wedged = server.submit(req(0)).get();
  EXPECT_EQ(wedged.status, serve::SessionStatus::kDeadline)
      << "a cancelled budget maps to kDeadline, detail: " << wedged.detail;
  EXPECT_EQ(server.stats().watchdog_trips, 1U);

  // The lease release parked the condemned slot; the supervisor (default
  // no-op rebuilder) readmitted it, so the server still serves.
  gate.open.store(true);
  EXPECT_EQ(server.submit(req(1)).get().status, serve::SessionStatus::kOk);
  const auto s = server.stats();
  EXPECT_EQ(s.ok, 1U);
  EXPECT_EQ(s.deadline, 1U);
  EXPECT_EQ(s.replicas_condemned, 1U);
  EXPECT_EQ(s.replicas_rebuilt, 1U);
  EXPECT_EQ(s.replicas_quarantined, 0U);
  expect_invariant(s);
}

// -- shutdown -----------------------------------------------------------------

TEST(ServeStop, DrainFinishesEveryQueuedSession) {
  Gate gate;
  gate.open.store(true);  // sessions complete instantly
  auto options = small_options();
  options.queue_capacity = 8;
  serve::ServerCore server(options, gated_executor(gate));

  std::vector<std::future<serve::SessionResult>> futures;
  for (uint64_t id = 0; id < 5; ++id) futures.push_back(server.submit(req(id)));
  server.stop(serve::ServerCore::StopMode::kDrain);
  for (auto& fut : futures) {
    EXPECT_EQ(fut.get().status, serve::SessionStatus::kOk);
  }
  EXPECT_EQ(server.stats().ok, 5U);
}

TEST(ServeStop, NowFlushesQueueAndInterruptsTheRunningSession) {
  Gate gate;
  auto options = small_options();
  options.queue_capacity = 8;
  serve::ServerCore server(options, gated_executor(gate));

  auto running = server.submit(req(0));
  gate.await_entered(1);
  auto q1 = server.submit(req(1));
  auto q2 = server.submit(req(2));

  server.stop(serve::ServerCore::StopMode::kNow);

  // The running session saw stop_requested and threw StopRequested; the
  // queued two were flushed without ever dispatching.
  EXPECT_EQ(running.get().status, serve::SessionStatus::kStopped);
  EXPECT_EQ(q1.get().status, serve::SessionStatus::kStopped);
  EXPECT_EQ(q2.get().status, serve::SessionStatus::kStopped);
  const auto s = server.stats();
  EXPECT_EQ(s.stopped, 3U);
  EXPECT_EQ(s.ok, 0U);
  expect_invariant(s);
}

TEST(ServeStop, SubmissionAfterStopIsRejected) {
  Gate gate;
  gate.open.store(true);
  serve::ServerCore server(small_options(), gated_executor(gate));
  server.stop(serve::ServerCore::StopMode::kDrain);

  const auto r = server.submit(req(9)).get();
  EXPECT_EQ(r.status, serve::SessionStatus::kRejected);
  EXPECT_NE(r.detail.find("stopping"), std::string::npos) << r.detail;
  expect_invariant(server.stats());
}

TEST(ServeStop, StopIsIdempotent) {
  Gate gate;
  gate.open.store(true);
  serve::ServerCore server(small_options(), gated_executor(gate));
  server.stop(serve::ServerCore::StopMode::kDrain);
  server.stop(serve::ServerCore::StopMode::kNow);  // second stop: no-op
  server.stop(serve::ServerCore::StopMode::kDrain);
}

// -- interleaved soak ---------------------------------------------------------

TEST(ServeSoak, ThousandPlusInterleavedSessionsKeepTheInvariant) {
  // Open-loop overload: 1200 sessions thrown at 4 workers with a 32-deep
  // shed-oldest queue, tight deadlines, and load-aware degradation. The
  // acceptance bar: every future settles, every session lands in exactly one
  // terminal bucket, and the queue never exceeds its bound.
  serve::ServeOptions options;
  options.replicas = 4;
  options.workers = 4;
  options.queue_capacity = 32;
  options.admission = serve::AdmissionPolicy::kShedOldest;
  options.degrade_at = 0.5;
  options.session_deadline_ms = 200;
  options.watchdog_period_ms = 10;
  serve::ServerCore server(
      options, [](const serve::SessionRequest& req,
                  const serve::ExecContext& ctx) -> serve::ExecResult {
        if (ctx.budget->cancelled() || ctx.budget->exhausted()) {
          throw ex::ExplorationAborted("soak session: budget gone");
        }
        std::this_thread::sleep_for(
            std::chrono::microseconds(100 + (req.id % 7) * 50));
        ctx.budget->charge(1);
        return {.degraded = ctx.start_level == ex::DegradeLevel::kBaseline,
                .detail = ""};
      });

  constexpr size_t kSessions = 1200;
  std::vector<std::future<serve::SessionResult>> futures;
  futures.reserve(kSessions);
  for (uint64_t id = 0; id < kSessions; ++id) {
    futures.push_back(server.submit(req(id)));
  }
  server.stop(serve::ServerCore::StopMode::kDrain);

  serve::ServerStats from_futures;
  for (auto& fut : futures) {
    ASSERT_TRUE(ready(fut)) << "every future must settle after drain";
    switch (fut.get().status) {
      case serve::SessionStatus::kOk: ++from_futures.ok; break;
      case serve::SessionStatus::kRejected: ++from_futures.rejected; break;
      case serve::SessionStatus::kShed: ++from_futures.shed; break;
      case serve::SessionStatus::kDeadline: ++from_futures.deadline; break;
      case serve::SessionStatus::kStopped: ++from_futures.stopped; break;
      case serve::SessionStatus::kFailed: ++from_futures.failed; break;
    }
  }

  const auto s = server.stats();
  EXPECT_EQ(s.submitted, kSessions);
  expect_invariant(s);
  // The server's buckets and the futures' statuses are the same accounting.
  EXPECT_EQ(s.ok, from_futures.ok);
  EXPECT_EQ(s.rejected, from_futures.rejected);
  EXPECT_EQ(s.shed, from_futures.shed);
  EXPECT_EQ(s.deadline, from_futures.deadline);
  EXPECT_EQ(s.stopped, from_futures.stopped);
  EXPECT_EQ(s.failed, from_futures.failed);
  EXPECT_LE(s.queue_high_water, options.queue_capacity);
  EXPECT_EQ(s.failed, 0U);
  EXPECT_GT(s.ok, 0U);
}

// -- cancelled-points accounting (regression) ---------------------------------

TEST(ServeStats, CancelledPointsFoldIntoDegradedAccounting) {
  // Regression: GuardedEvaluator counts blown-deadline batch diversions in
  // report.cancelled, and the session engine forwards them through
  // ExecResult::cancelled_points — but the serve layer used to drop them on
  // the floor. They must surface in ServerStats::cancelled_points AND flip
  // the session to degraded (a cancelled batch was served off the cheap
  // rung), keeping the self-check cancelled_points > 0 => degraded > 0.
  auto options = small_options();
  serve::ServerCore server(
      options, [](const serve::SessionRequest&,
                  const serve::ExecContext&) -> serve::ExecResult {
        return {.degraded = false, .detail = "3 points diverted",
                .cancelled_points = 3};
      });
  const auto r = server.submit(req(0)).get();
  EXPECT_EQ(r.status, serve::SessionStatus::kOk);
  EXPECT_TRUE(r.degraded)
      << "a session with cancelled points was not served at full quality";
  const auto s = server.stats();
  EXPECT_EQ(s.cancelled_points, 3U);
  EXPECT_EQ(s.degraded, 1U);
  EXPECT_EQ(s.ok, 1U);
  expect_invariant(s);
}

// -- coalescing soak ----------------------------------------------------------

TEST(ServeSoak, CoalescedInterleavedSessionsMatchUncoalescedBitwise) {
  // The 1200-session interleaved soak with cross-session coalescing: every
  // session computes a synthetic "front" (one float per predict row) through
  // one shared BatchCoalescer. Fused batch composition depends on thread
  // timing; the acceptance bar is that every kOk session's front is
  // bitwise-identical to the uncoalesced (direct per-row) computation, no
  // deadline charge is lost while waiting in the coalescer, and both the
  // server and coalescer accounting invariants hold.
  constexpr size_t kSessions = 1200;
  constexpr size_t kRounds = 4;
  constexpr size_t kRowsPerCall = 3;

  const auto row_of = [](uint64_t id, size_t round, size_t k) {
    return std::vector<float>{static_cast<float>(id),
                              static_cast<float>(round),
                              static_cast<float>(k)};
  };
  const auto value_of = [](const std::vector<float>& row) {
    return row[0] * 0.5F + row[1] * 0.25F + row[2] * 2.0F;
  };

  serve::BatchCoalescer coalescer(
      {.max_batch = 64, .wait_ticks = 2, .tick_ms = 1},
      [&](const serve::BatchCoalescer::Rows& rows) {
        std::vector<float> out;
        out.reserve(rows.size());
        for (const auto& r : rows) out.push_back(value_of(r));
        return out;
      });

  std::mutex fronts_m;
  std::map<uint64_t, std::vector<float>> fronts;
  std::map<uint64_t, std::pair<size_t, size_t>> charges;  // waited, consumed

  serve::ServeOptions options;
  options.replicas = 4;
  options.workers = 4;
  options.queue_capacity = 32;
  options.admission = serve::AdmissionPolicy::kShedOldest;
  options.degrade_at = 2.0;  // full quality: fronts must be comparable
  options.session_deadline_ms = 400;
  options.watchdog_period_ms = 10;
  serve::ServerCore server(
      options, [&](const serve::SessionRequest& req,
                   const serve::ExecContext& ctx) -> serve::ExecResult {
        std::vector<float> front;
        size_t waited_ms = 0;
        for (size_t round = 0; round < kRounds; ++round) {
          serve::BatchCoalescer::Rows rows;
          for (size_t k = 0; k < kRowsPerCall; ++k) {
            rows.push_back(row_of(req.id, round, k));
          }
          const auto t0 = Clock::now();
          std::vector<float> vals;
          try {
            vals = coalescer.predict(req.id, std::move(rows), [&] {
              return ctx.budget->cancelled() || ctx.budget->exhausted();
            });
          } catch (const serve::CoalesceCancelled&) {
            throw ex::ExplorationAborted(
                "soak session cancelled while waiting in the coalescer");
          }
          // Wait-in-coalescer is charged to the session budget, exactly as
          // the guard's ChargeOnExit bills a real attempt's wall-clock.
          const size_t ms = static_cast<size_t>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  Clock::now() - t0)
                  .count());
          ctx.budget->charge(ms);
          waited_ms += ms;
          front.insert(front.end(), vals.begin(), vals.end());
        }
        std::lock_guard<std::mutex> lk(fronts_m);
        fronts[req.id] = std::move(front);
        charges[req.id] = {waited_ms, ctx.budget->consumed_ms()};
        return {};
      });
  server.set_coalesce_stats([&] { return coalescer.stats(); });

  std::vector<std::future<serve::SessionResult>> futures;
  futures.reserve(kSessions);
  for (uint64_t id = 0; id < kSessions; ++id) {
    futures.push_back(server.submit(req(id)));
  }
  server.stop(serve::ServerCore::StopMode::kDrain);
  coalescer.flush();  // drain the last assembling batch for the invariant

  size_t ok = 0;
  for (auto& fut : futures) {
    ASSERT_TRUE(ready(fut));
    const auto res = fut.get();
    if (res.status != serve::SessionStatus::kOk) continue;
    ++ok;
    // Bitwise front equivalence vs the direct, uncoalesced computation.
    std::lock_guard<std::mutex> lk(fronts_m);
    const auto& got = fronts.at(res.id);
    ASSERT_EQ(got.size(), kRounds * kRowsPerCall) << "session " << res.id;
    size_t i = 0;
    for (size_t round = 0; round < kRounds; ++round) {
      for (size_t k = 0; k < kRowsPerCall; ++k, ++i) {
        ASSERT_EQ(std::bit_cast<uint32_t>(got[i]),
                  std::bit_cast<uint32_t>(value_of(row_of(res.id, round, k))))
            << "session " << res.id << " row " << i;
      }
    }
    // No deadline charge lost: everything measured while waiting in the
    // coalescer landed in the budget (plus the queue wait charged earlier).
    const auto [waited, consumed] = charges.at(res.id);
    EXPECT_GE(consumed, waited) << "session " << res.id;
  }
  EXPECT_GT(ok, 0U);

  const auto s = server.stats();
  EXPECT_EQ(s.submitted, kSessions);
  expect_invariant(s);
  EXPECT_EQ(s.failed, 0U);
  EXPECT_LE(s.queue_high_water, options.queue_capacity);

  // Coalesce accounting surfaced through ServerStats and self-consistent.
  const auto c = coalescer.stats();
  EXPECT_EQ(s.coalesced_batches, c.coalesced_batches);
  EXPECT_EQ(s.coalesced_points, c.coalesced_points);
  EXPECT_GT(c.coalesced_batches, 0U);
  EXPECT_EQ(c.submitted_points,
            c.coalesced_points + c.cancelled_points + c.failed_points);
  EXPECT_EQ(c.failed_points, 0U);
}

// -- replica supervisor -------------------------------------------------------

namespace {

/// Polls until replica @p id reaches @p want (the supervisor runs on its own
/// thread, so transitions are asynchronous). ~2s ceiling.
bool wait_for_state(const serve::ServerCore& server, size_t id,
                    serve::ReplicaPool::SlotState want) {
  for (int i = 0; i < 2000; ++i) {
    if (server.replica_state(id) == want) return true;
    sleep_ms(1);
  }
  return false;
}

}  // namespace

TEST(ServeSupervisor, CustomRebuilderRestoresACondemnedReplica) {
  std::atomic<size_t> rebuilds{0};
  auto options = small_options();
  serve::ServerCore server(
      options, [](const serve::SessionRequest& request,
                  const serve::ExecContext& ctx) -> serve::ExecResult {
        if (request.id == 0) {
          throw serve::ReplicaFault("injected replica fault on replica " +
                                    std::to_string(ctx.replica));
        }
        return {};
      });
  server.set_replica_rebuilder([&](size_t replica) {
    EXPECT_EQ(replica, 0U);
    rebuilds.fetch_add(1);
    return true;
  });

  EXPECT_EQ(server.submit(req(0)).get().status, serve::SessionStatus::kFailed);
  ASSERT_TRUE(wait_for_state(server, 0, serve::ReplicaPool::SlotState::kIdle))
      << "the supervisor never readmitted the condemned replica";
  EXPECT_EQ(rebuilds.load(), 1U);

  // The readmitted replica serves again.
  EXPECT_EQ(server.submit(req(1)).get().status, serve::SessionStatus::kOk);
  server.stop(serve::ServerCore::StopMode::kDrain);
  const auto s = server.stats();
  EXPECT_EQ(s.replicas_condemned, 1U);
  EXPECT_EQ(s.replicas_rebuilt, 1U);
  EXPECT_EQ(s.replicas_quarantined, 0U);
  expect_invariant(s);
}

TEST(ServeSupervisor, ThrowingRebuilderQuarantinesThePool) {
  auto options = small_options();
  serve::ServerCore server(
      options, [](const serve::SessionRequest&,
                  const serve::ExecContext&) -> serve::ExecResult {
        throw serve::ReplicaFault("injected replica fault");
      });
  server.set_replica_rebuilder(
      [](size_t) -> bool { throw std::runtime_error("rebuild exploded"); });

  EXPECT_EQ(server.submit(req(0)).get().status, serve::SessionStatus::kFailed);
  ASSERT_TRUE(wait_for_state(server, 0,
                             serve::ReplicaPool::SlotState::kQuarantined));

  // The single replica is quarantined: the pool cannot serve, and says so.
  const auto r = server.submit(req(1)).get();
  EXPECT_EQ(r.status, serve::SessionStatus::kFailed);
  EXPECT_NE(r.detail.find("quarantined"), std::string::npos) << r.detail;
  server.stop(serve::ServerCore::StopMode::kDrain);
  const auto s = server.stats();
  EXPECT_EQ(s.replicas_condemned, 1U);
  EXPECT_EQ(s.replicas_rebuilt, 0U);
  EXPECT_EQ(s.replicas_quarantined, 1U);
  expect_invariant(s);
}

TEST(ServeSupervisor, RebuildLimitOpensTheCircuitBreaker) {
  std::atomic<size_t> rebuilds{0};
  auto options = small_options();
  options.replica_rebuild_limit = 1;       // one rebuild per window, then
  options.replica_rebuild_window_ms = 60'000;  // quarantine
  serve::ServerCore server(
      options, [](const serve::SessionRequest& request,
                  const serve::ExecContext&) -> serve::ExecResult {
        if (request.id < 2) throw serve::ReplicaFault("injected fault");
        return {};
      });
  server.set_replica_rebuilder([&](size_t) {
    rebuilds.fetch_add(1);
    return true;
  });

  // First fault: rebuilt and readmitted (the window has budget).
  EXPECT_EQ(server.submit(req(0)).get().status, serve::SessionStatus::kFailed);
  ASSERT_TRUE(wait_for_state(server, 0, serve::ReplicaPool::SlotState::kIdle));
  EXPECT_EQ(rebuilds.load(), 1U);

  // Second fault inside the window: the breaker opens instead of rebuilding
  // a replica that keeps dying.
  EXPECT_EQ(server.submit(req(1)).get().status, serve::SessionStatus::kFailed);
  ASSERT_TRUE(wait_for_state(server, 0,
                             serve::ReplicaPool::SlotState::kQuarantined));
  EXPECT_EQ(rebuilds.load(), 1U) << "quarantine must not rebuild";

  EXPECT_EQ(server.submit(req(2)).get().status, serve::SessionStatus::kFailed);
  server.stop(serve::ServerCore::StopMode::kDrain);
  const auto s = server.stats();
  EXPECT_EQ(s.replicas_condemned, 2U);
  EXPECT_EQ(s.replicas_rebuilt, 1U);
  EXPECT_EQ(s.replicas_quarantined, 1U);
  expect_invariant(s);
}

// -- chaos soak ---------------------------------------------------------------

namespace {

namespace chaos = metadse::core::chaos;
namespace mio = metadse::core::io;
namespace fs = std::filesystem;

std::string slurp_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// One pass of the chaos soak: every session computes a deterministic
/// "front" from its id and publishes it atomically into @p dir under its
/// chaos scope — the same probe layout as the real session engine
/// (replica.fail, replica.wedge, front.publish).
struct SoakPass {
  serve::ServerStats stats;
  std::map<uint64_t, serve::SessionStatus> statuses;
  size_t rebuilds = 0;
};

SoakPass run_soak_pass(const std::string& dir, size_t sessions) {
  fs::remove_all(dir);
  fs::create_directories(dir);

  serve::ServeOptions options;
  options.replicas = 4;
  options.workers = 4;
  options.queue_capacity = 64;
  options.admission = serve::AdmissionPolicy::kBlock;
  options.degrade_at = 2.0;
  options.session_deadline_ms = 20'000;
  options.watchdog_period_ms = 5;
  options.wedged_after_ms = 40;

  std::atomic<size_t> rebuilds{0};
  serve::ServerCore server(
      options, [&dir](const serve::SessionRequest& request,
                      const serve::ExecContext& ctx) -> serve::ExecResult {
        const chaos::ChaosScope scope(request.id);
        if (chaos::fire("replica.fail")) {
          throw serve::ReplicaFault("chaos kill of replica " +
                                    std::to_string(ctx.replica));
        }
        if (chaos::fire("replica.wedge")) {
          // Stall like a hung simulator until the watchdog cancels us.
          while (!ctx.budget->cancelled() && !ctx.budget->exhausted() &&
                 !(ctx.stop_requested && ctx.stop_requested())) {
            sleep_ms(1);
          }
          throw ex::ExplorationAborted("wedged session cancelled");
        }
        std::ostringstream front;
        front << "front " << request.id << " " << request.id * 31 + 7 << "\n";
        try {
          mio::atomic_write_file(
              dir + "/front_" + std::to_string(request.id) + ".txt",
              front.str(), "front.publish");
        } catch (const mio::IoError& e) {
          return {.degraded = true,
                  .detail = "front publication failed: " + std::string(e.what())};
        }
        return {};
      });
  server.set_replica_rebuilder([&rebuilds](size_t) {
    rebuilds.fetch_add(1);
    return true;
  });

  std::vector<std::future<serve::SessionResult>> futures;
  futures.reserve(sessions);
  for (uint64_t id = 0; id < sessions; ++id) {
    futures.push_back(server.submit(req(id)));
  }
  server.stop(serve::ServerCore::StopMode::kDrain);

  SoakPass pass;
  for (auto& fut : futures) {
    EXPECT_TRUE(ready(fut)) << "every session must reach a terminal state";
    const auto res = fut.get();
    pass.statuses[res.id] = res.status;
  }
  pass.stats = server.stats();
  pass.rebuilds = rebuilds.load();
  return pass;
}

}  // namespace

TEST(ServeChaosSoak, ScopedPlanLeavesOutOfScopeSessionsBitwiseUntouched) {
  // The tentpole acceptance soak: 1200 sessions through 4 replicas under an
  // armed chaos plan that kills replicas, wedges a session, and fails front
  // publications — all scoped to sessions with id % 7 in {3, 5, 6}. The
  // bar: every session reaches an accounted terminal state, the replica
  // partition invariant holds, every armed fault point actually fired, and
  // every chaos-untouched session's published front is bitwise identical to
  // the chaos-free control run.
  constexpr size_t kSessions = 1200;
  const std::string dir_control =
      (fs::temp_directory_path() / "mdse_soak_control").string();
  const std::string dir_chaos =
      (fs::temp_directory_path() / "mdse_soak_chaos").string();

  chaos::ChaosEngine::instance().reset();
  const SoakPass control = run_soak_pass(dir_control, kSessions);
  EXPECT_EQ(control.stats.ok, kSessions);
  EXPECT_EQ(control.stats.failed, 0U);
  expect_invariant(control.stats);

  auto& eng = chaos::ChaosEngine::instance();
  {
    chaos::FaultRule kill;
    kill.schedule = chaos::FaultRule::Schedule::kEveryNth;
    kill.n = 4;
    kill.max_fires = 20;
    kill.scope_mod = 7;
    kill.scope_match = 3;
    eng.arm("replica.fail", kill);

    chaos::FaultRule wedge;
    wedge.schedule = chaos::FaultRule::Schedule::kNthHit;
    wedge.n = 3;
    wedge.scope_mod = 7;
    wedge.scope_match = 6;
    eng.arm("replica.wedge", wedge);

    chaos::FaultRule enospc;
    enospc.fault = {mio::kEnospc, 0};
    enospc.schedule = chaos::FaultRule::Schedule::kEveryNth;
    enospc.n = 6;
    enospc.max_fires = 20;
    enospc.scope_mod = 7;
    enospc.scope_match = 5;
    eng.arm("front.publish", enospc);
  }

  const SoakPass chaotic = run_soak_pass(dir_chaos, kSessions);
  EXPECT_TRUE(eng.all_armed_fired()) << eng.summary();
  const auto report = eng.report();
  eng.reset();

  const auto& s = chaotic.stats;
  EXPECT_EQ(s.submitted, kSessions);
  expect_invariant(s);
  // Every chaos kill is a kFailed session (nothing else fails: the rebuilder
  // succeeds and no quarantine limit is set).
  EXPECT_EQ(s.failed, report.at("replica.fail").fired);
  EXPECT_EQ(report.at("replica.fail").fired, 20U);
  // The wedged session was detected, cancelled, and billed as kDeadline.
  EXPECT_EQ(report.at("replica.wedge").fired, 1U);
  EXPECT_GE(s.deadline, 1U);
  EXPECT_GE(s.watchdog_trips, 1U);
  // Failed publications degrade their session but never fail it.
  EXPECT_EQ(report.at("front.publish").fired, 20U);
  EXPECT_GE(s.degraded, report.at("front.publish").fired);
  // Every condemned replica was rebuilt and readmitted (none pending, none
  // quarantined), and the custom rebuilder saw each rebuild.
  EXPECT_EQ(s.replicas_condemned, s.replicas_rebuilt);
  EXPECT_EQ(s.replicas_quarantined, 0U);
  EXPECT_EQ(s.replicas_pending_rebuild, 0U);
  EXPECT_GE(s.replicas_condemned, 1U);
  EXPECT_EQ(chaotic.rebuilds, s.replicas_rebuilt);

  // Chaos-untouched sessions (id % 7 not in {3, 5, 6}) end kOk with a front
  // bitwise identical to the control run's.
  size_t compared = 0;
  for (uint64_t id = 0; id < kSessions; ++id) {
    const uint64_t lane = id % 7;
    if (lane == 3 || lane == 5 || lane == 6) continue;
    ASSERT_EQ(chaotic.statuses.at(id), serve::SessionStatus::kOk)
        << "chaos leaked into out-of-scope session " << id;
    const std::string a =
        slurp_file(dir_control + "/front_" + std::to_string(id) + ".txt");
    const std::string b =
        slurp_file(dir_chaos + "/front_" + std::to_string(id) + ".txt");
    ASSERT_FALSE(a.empty()) << "control front missing for session " << id;
    ASSERT_EQ(a, b) << "front diverged for untouched session " << id;
    ++compared;
  }
  EXPECT_GE(compared, kSessions / 2);

  fs::remove_all(dir_control);
  fs::remove_all(dir_chaos);
}
