// Power-model tests: positivity, breakdown consistency, and the scaling
// behaviours McPAT exhibits (frequency/voltage, structure sizes, activity).
#include <gtest/gtest.h>

#include "sim/power_model.hpp"

namespace sim = metadse::sim;
namespace arch = metadse::arch;

namespace {
sim::SimStats stats_for(const arch::CpuConfig& c,
                        const sim::WorkloadCharacteristics& w) {
  return sim::CpuModel().simulate(c, w);
}
}  // namespace

TEST(PowerModel, BreakdownSumsAndPositivity) {
  arch::CpuConfig c;
  sim::WorkloadCharacteristics w;
  sim::PowerModel pm;
  const auto p = pm.evaluate(c, stats_for(c, w));
  EXPECT_GT(p.core_dynamic, 0.0);
  EXPECT_GT(p.frontend_dynamic, 0.0);
  EXPECT_GT(p.cache_dynamic, 0.0);
  EXPECT_GT(p.leakage, 0.0);
  EXPECT_NEAR(p.total,
              p.core_dynamic + p.frontend_dynamic + p.cache_dynamic +
                  p.leakage,
              1e-12);
}

TEST(PowerModel, HigherFrequencyCostsSuperlinearPower) {
  arch::CpuConfig lo;
  lo.freq_ghz = 1.0;
  arch::CpuConfig hi;
  hi.freq_ghz = 3.0;
  sim::WorkloadCharacteristics w;
  sim::PowerModel pm;
  const double p_lo = pm.evaluate(lo, stats_for(lo, w)).total;
  const double p_hi = pm.evaluate(hi, stats_for(hi, w)).total;
  // 3x frequency with DVFS voltage scaling: more than 3x dynamic power.
  EXPECT_GT(p_hi, p_lo * 2.0);
}

TEST(PowerModel, BiggerStructuresMoreAreaAndLeakage) {
  sim::PowerModel pm;
  arch::CpuConfig small;
  small.rob_size = 32;
  small.iq_size = 16;
  small.l2_kb = 128;
  arch::CpuConfig big;
  big.rob_size = 256;
  big.iq_size = 80;
  big.l2_kb = 256;
  EXPECT_GT(pm.area(big), pm.area(small));
  sim::WorkloadCharacteristics w;
  EXPECT_GT(pm.evaluate(big, stats_for(big, w)).leakage,
            pm.evaluate(small, stats_for(small, w)).leakage);
}

TEST(PowerModel, TournamentPredictorCostsMoreFrontendPower) {
  sim::PowerModel pm;
  sim::WorkloadCharacteristics w;
  arch::CpuConfig bi;
  bi.branch_predictor = arch::BranchPredictorType::kBiMode;
  arch::CpuConfig to = bi;
  to.branch_predictor = arch::BranchPredictorType::kTournament;
  // Compare at identical activity to isolate the structure cost.
  const auto st = stats_for(bi, w);
  EXPECT_GT(pm.evaluate(to, st).frontend_dynamic,
            pm.evaluate(bi, st).frontend_dynamic);
}

TEST(PowerModel, HigherActivityMoreDynamicPower) {
  sim::PowerModel pm;
  arch::CpuConfig c;
  sim::SimStats idle;
  idle.ipc = 0.3;
  sim::SimStats busy;
  busy.ipc = 3.0;
  EXPECT_GT(pm.evaluate(c, busy).core_dynamic,
            pm.evaluate(c, idle).core_dynamic);
}

TEST(PowerModel, RejectsInvalidConfig) {
  sim::PowerModel pm;
  arch::CpuConfig c;
  c.l2_kb = 0;
  sim::SimStats st;
  st.ipc = 1.0;
  EXPECT_THROW(pm.evaluate(c, st), std::invalid_argument);
}

class PowerMonotoneInWidth : public ::testing::TestWithParam<int> {};

TEST_P(PowerMonotoneInWidth, WiderCoreCostsMore) {
  sim::PowerModel pm;
  sim::WorkloadCharacteristics w;
  arch::CpuConfig lo;
  lo.width = GetParam();
  arch::CpuConfig hi = lo;
  hi.width = lo.width + 4;
  const auto st_lo = stats_for(lo, w);
  const auto st_hi = stats_for(hi, w);
  EXPECT_GT(pm.evaluate(hi, st_hi).total, pm.evaluate(lo, st_lo).total);
}

INSTANTIATE_TEST_SUITE_P(Widths, PowerMonotoneInWidth,
                         ::testing::Values(1, 2, 4, 6, 8));
