// Tests for the trace-driven pipeline simulator and its structural models
// (caches, branch predictors, BTB, RAS, trace generation), plus the
// cross-validation against the analytical model.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sim/branch_predictor.hpp"
#include "sim/cache.hpp"
#include "sim/pipeline_sim.hpp"
#include "workload/spec_suite.hpp"

namespace sim = metadse::sim;
namespace arch = metadse::arch;
namespace mt = metadse::tensor;

// ---- SetAssocCache -----------------------------------------------------------

TEST(SetAssocCache, GeometryAndValidation) {
  sim::SetAssocCache c(32 * 1024, 4, 64);
  EXPECT_EQ(c.sets(), 128U);
  EXPECT_EQ(c.assoc(), 4U);
  EXPECT_THROW(sim::SetAssocCache(0, 4, 64), std::invalid_argument);
  EXPECT_THROW(sim::SetAssocCache(128, 4, 64), std::invalid_argument);
}

TEST(SetAssocCache, HitAfterFill) {
  sim::SetAssocCache c(1024, 2, 64);
  EXPECT_FALSE(c.access(0x1000));  // compulsory miss
  EXPECT_TRUE(c.access(0x1000));   // now resident
  EXPECT_TRUE(c.access(0x1004));   // same line
  EXPECT_TRUE(c.probe(0x1000));
  EXPECT_FALSE(c.probe(0x2000));
  EXPECT_EQ(c.hits(), 2U);
  EXPECT_EQ(c.misses(), 1U);
  c.flush();
  EXPECT_FALSE(c.probe(0x1000));
}

TEST(SetAssocCache, LruEviction) {
  // 2-way, line 64, size 128 -> exactly 1 set of 2 ways.
  sim::SetAssocCache c(128, 2, 64);
  EXPECT_EQ(c.sets(), 1U);
  c.access(0x000);          // A
  c.access(0x100);          // B
  c.access(0x000);          // touch A (B becomes LRU)
  c.access(0x200);          // C evicts B
  EXPECT_TRUE(c.probe(0x000));
  EXPECT_FALSE(c.probe(0x100));
  EXPECT_TRUE(c.probe(0x200));
}

TEST(SetAssocCache, WorkingSetLargerThanCacheMisses) {
  sim::SetAssocCache small(4 * 1024, 2, 64);
  sim::SetAssocCache big(64 * 1024, 2, 64);
  mt::Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t a = (rng.engine()() % (32 * 1024)) / 8 * 8;
    small.access(a);
    big.access(a);
  }
  EXPECT_GT(small.miss_rate(), big.miss_rate() * 2.0);
  EXPECT_LT(big.miss_rate(), 0.15);
}

// ---- branch predictors ------------------------------------------------------------

class PredictorAccuracy : public ::testing::TestWithParam<bool> {};

TEST_P(PredictorAccuracy, LearnsBiasedBranches) {
  auto pred = sim::make_predictor(GetParam());
  mt::Rng rng(7);
  // 64 branch sites with strong biases: accuracy should be high.
  std::vector<double> bias(64);
  for (auto& b : bias) b = rng.uniform() < 0.5 ? 0.05 : 0.95;
  int correct = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const size_t site = rng.uniform_index(64);
    const uint64_t pc = 0x400 + site * 16;
    const bool taken = rng.uniform() < bias[site];
    correct += pred->predict(pc) == taken;
    pred->update(pc, taken);
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.85);
}

TEST_P(PredictorAccuracy, NearChanceOnRandomBranches) {
  auto pred = sim::make_predictor(GetParam());
  mt::Rng rng(8);
  int correct = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t pc = 0x400 + rng.uniform_index(64) * 16;
    const bool taken = rng.uniform() < 0.5;
    correct += pred->predict(pc) == taken;
    pred->update(pc, taken);
  }
  EXPECT_NEAR(static_cast<double>(correct) / n, 0.5, 0.05);
}

INSTANTIATE_TEST_SUITE_P(BothPredictors, PredictorAccuracy,
                         ::testing::Values(false, true));

TEST(TournamentPredictor, LearnsGlobalPattern) {
  // Period-4 pattern TTNN at one site: global/local history catches it,
  // a plain bimodal counter cannot.
  sim::TournamentPredictor pred;
  const uint64_t pc = 0x1234;
  int correct_late = 0;
  for (int i = 0; i < 4000; ++i) {
    const bool taken = (i % 4) < 2;
    const bool p = pred.predict(pc);
    if (i >= 2000) correct_late += p == taken;
    pred.update(pc, taken);
  }
  EXPECT_GT(correct_late / 2000.0, 0.9);
}

TEST(Btb, StoresTargetsAndConflicts) {
  sim::Btb btb(16);
  EXPECT_THROW(sim::Btb(0), std::invalid_argument);
  uint64_t t = 0;
  EXPECT_FALSE(btb.lookup(0x40, t));
  btb.update(0x40, 0x999);
  EXPECT_TRUE(btb.lookup(0x40, t));
  EXPECT_EQ(t, 0x999U);
  // Conflicting pc (same index, different tag) evicts.
  btb.update(0x40 + 16, 0x111);
  EXPECT_FALSE(btb.lookup(0x40, t));
}

TEST(ReturnAddressStack, LifoAndOverflow) {
  sim::ReturnAddressStack ras(4);
  EXPECT_THROW(sim::ReturnAddressStack(0), std::invalid_argument);
  EXPECT_EQ(ras.pop(), 0U);  // empty
  ras.push(1);
  ras.push(2);
  ras.push(3);
  EXPECT_EQ(ras.pop(), 3U);
  EXPECT_EQ(ras.pop(), 2U);
  EXPECT_EQ(ras.pop(), 1U);
  // Overflow wraps: pushing 6 onto depth 4 keeps the newest 4.
  for (uint64_t i = 1; i <= 6; ++i) ras.push(i);
  EXPECT_EQ(ras.pop(), 6U);
  EXPECT_EQ(ras.pop(), 5U);
  EXPECT_EQ(ras.pop(), 4U);
  EXPECT_EQ(ras.pop(), 3U);
  EXPECT_EQ(ras.pop(), 0U);  // older entries were overwritten
}

// ---- trace generation --------------------------------------------------------------

TEST(TraceGenerator, MixMatchesCharacteristics) {
  metadse::workload::SpecSuite suite;
  const auto& wl = suite.by_name("619.lbm_s").base();
  sim::TraceGenerator gen(wl);
  mt::Rng rng(9);
  const auto trace = gen.generate(50000, rng);
  ASSERT_EQ(trace.size(), 50000U);
  size_t loads = 0;
  size_t branches = 0;
  size_t fp = 0;
  for (const auto& t : trace) {
    loads += t.op == sim::OpClass::kLoad;
    branches += t.op == sim::OpClass::kBranch;
    fp += t.op == sim::OpClass::kFpAlu || t.op == sim::OpClass::kFpMul;
  }
  EXPECT_NEAR(loads / 50000.0, wl.f_load, 0.05);
  EXPECT_NEAR(branches / 50000.0, wl.f_branch, 0.05);
  EXPECT_NEAR(fp / 50000.0, wl.f_fp_alu + wl.f_fp_mul, 0.05);
  EXPECT_THROW(gen.generate(0, rng), std::invalid_argument);
}

TEST(TraceGenerator, DeterministicGivenSeed) {
  metadse::workload::SpecSuite suite;
  const auto& wl = suite.by_name("602.gcc_s").base();
  sim::TraceGenerator gen(wl);
  mt::Rng r1(3);
  mt::Rng r2(3);
  const auto a = gen.generate(2000, r1);
  const auto b = gen.generate(2000, r2);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pc, b[i].pc);
    EXPECT_EQ(a[i].mem_addr, b[i].mem_addr);
    EXPECT_EQ(a[i].taken, b[i].taken);
  }
}

TEST(TraceGenerator, DependencyDistancesValid) {
  metadse::workload::SpecSuite suite;
  const auto& wl = suite.by_name("605.mcf_s").base();
  sim::TraceGenerator gen(wl);
  mt::Rng rng(11);
  const auto trace = gen.generate(10000, rng);
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_LE(trace[i].dep1, i);
    EXPECT_LE(trace[i].dep2, i);
  }
}

// ---- pipeline simulator ---------------------------------------------------------------

namespace {
sim::PipelineStats run_cfg(const arch::CpuConfig& cfg, const char* wl_name,
                           size_t n = 40000) {
  metadse::workload::SpecSuite suite;
  return sim::simulate_trace(cfg, suite.by_name(wl_name).base(), n, 13);
}
}  // namespace

TEST(PipelineSimulator, BasicSanity) {
  arch::CpuConfig cfg;
  const auto st = run_cfg(cfg, "602.gcc_s");
  EXPECT_GT(st.ipc, 0.0);
  EXPECT_LE(st.ipc, cfg.width);
  // Stats cover the post-warmup region (7/8 of the trace by default).
  EXPECT_EQ(st.instructions, 35000U);
  EXPECT_GT(st.cycles, st.instructions / cfg.width);
  EXPECT_GE(st.predictor_accuracy, 0.5);
  EXPECT_LE(st.predictor_accuracy, 1.0);
  EXPECT_LE(st.l2_mpki, st.l1d_mpki + st.l1i_mpki + 1e-9);
  sim::PipelineSimulator s(cfg);
  EXPECT_THROW(s.run({}), std::invalid_argument);
}

TEST(PipelineSimulator, BiggerCoreIsFaster) {
  // Compute-bound FP workload; the strong core is wider everywhere.
  arch::CpuConfig weak;
  weak.width = 1;
  weak.rob_size = 32;
  weak.iq_size = 16;
  weak.int_alu = 3;
  weak.fp_alu = 1;
  weak.fp_multdiv = 1;
  arch::CpuConfig strong;
  strong.width = 8;
  strong.rob_size = 256;
  strong.iq_size = 80;
  strong.int_alu = 8;
  strong.int_rf = 256;
  strong.fp_rf = 256;
  strong.fp_alu = 4;
  strong.fp_multdiv = 4;
  strong.lq_size = 48;
  strong.sq_size = 48;
  EXPECT_GT(run_cfg(strong, "644.nab_s").ipc,
            run_cfg(weak, "644.nab_s").ipc * 1.3);
}

TEST(PipelineSimulator, TournamentReducesMispredicts) {
  arch::CpuConfig bi;
  bi.branch_predictor = arch::BranchPredictorType::kBiMode;
  arch::CpuConfig to = bi;
  to.branch_predictor = arch::BranchPredictorType::kTournament;
  const auto a = run_cfg(bi, "631.deepsjeng_s");
  const auto b = run_cfg(to, "631.deepsjeng_s");
  EXPECT_GE(b.predictor_accuracy, a.predictor_accuracy - 0.01);
}

TEST(PipelineSimulator, BiggerL1dReducesMisses) {
  arch::CpuConfig small;
  small.l1d_kb = 16;
  arch::CpuConfig big;
  big.l1d_kb = 64;
  EXPECT_LT(run_cfg(big, "605.mcf_s").l1d_mpki,
            run_cfg(small, "605.mcf_s").l1d_mpki);
}

TEST(PipelineSimulator, MemoryBoundCodeHasMoreL2Traffic) {
  arch::CpuConfig cfg;
  EXPECT_GT(run_cfg(cfg, "605.mcf_s").l2_mpki,
            run_cfg(cfg, "644.nab_s").l2_mpki);
}

TEST(PipelineSimulator, CrossValidatesAnalyticalModelRanking) {
  // The two independently built gem5 substitutes must broadly agree on how
  // design points rank (Spearman rank correlation).
  metadse::workload::SpecSuite suite;
  const auto& space = arch::DesignSpace::table1();
  const auto& wl = suite.by_name("605.mcf_s").base();
  sim::CpuModel analytic;
  mt::Rng rng(3);
  std::vector<double> a;
  std::vector<double> p;
  for (int i = 0; i < 16; ++i) {
    const auto cfg = arch::to_cpu_config(space, space.random_config(rng));
    a.push_back(analytic.simulate(cfg, wl).ipc);
    p.push_back(sim::simulate_trace(cfg, wl, 30000, 11).ipc);
  }
  auto ranks = [](const std::vector<double>& v) {
    std::vector<size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (size_t i = 0; i < idx.size(); ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto ra = ranks(a);
  const auto rp = ranks(p);
  double d2 = 0.0;
  const double m = static_cast<double>(a.size());
  for (size_t i = 0; i < a.size(); ++i) d2 += (ra[i] - rp[i]) * (ra[i] - rp[i]);
  const double spearman = 1.0 - 6.0 * d2 / (m * (m * m - 1.0));
  EXPECT_GT(spearman, 0.5);
}
