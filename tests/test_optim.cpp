// Optimizer and LR-schedule tests: convergence on convex problems and exact
// update semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"

namespace nn = metadse::nn;
namespace mt = metadse::tensor;

TEST(Sgd, ExactSingleStep) {
  auto p = mt::Tensor::from_vector({2}, {1.0F, -2.0F}, true);
  nn::Sgd opt({p}, 0.5F);
  p.grad() = {2.0F, 4.0F};
  opt.step();
  EXPECT_FLOAT_EQ(p.data()[0], 0.0F);
  EXPECT_FLOAT_EQ(p.data()[1], -4.0F);
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad()[0], 0.0F);
  EXPECT_THROW(nn::Sgd({}, 0.1F), std::invalid_argument);
}

TEST(Sgd, MinimizesQuadratic) {
  auto p = mt::Tensor::from_vector({1}, {5.0F}, true);
  nn::Sgd opt({p}, 0.1F);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    auto loss = mt::square(p);
    mt::sum(loss).backward();
    opt.step();
  }
  EXPECT_NEAR(p.data()[0], 0.0F, 1e-4);
}

TEST(Adam, MinimizesQuadraticWithOffset) {
  auto p = mt::Tensor::from_vector({2}, {5.0F, -3.0F}, true);
  auto target = mt::Tensor::from_vector({2}, {1.0F, 2.0F});
  nn::Adam opt({p}, 0.1F);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    mt::mse_loss(p, target).backward();
    opt.step();
  }
  EXPECT_NEAR(p.data()[0], 1.0F, 1e-2);
  EXPECT_NEAR(p.data()[1], 2.0F, 1e-2);
  EXPECT_EQ(opt.step_count(), 300U);
}

TEST(Adam, FirstStepIsLrSizedRegardlessOfGradScale) {
  // Bias correction makes the first update approximately lr * sign(grad).
  for (float scale : {1e-3F, 1.0F, 1e3F}) {
    auto p = mt::Tensor::from_vector({1}, {0.0F}, true);
    nn::Adam opt({p}, 0.01F);
    p.grad() = {scale};
    opt.step();
    EXPECT_NEAR(p.data()[0], -0.01F, 1e-4) << "scale=" << scale;
  }
}

TEST(Adam, TrainsLinearRegressionToFit) {
  mt::Rng rng(42);
  nn::Linear lin(3, 1, rng);
  // Ground truth: y = 2x0 - x1 + 0.5x2 + 1
  const size_t n = 64;
  std::vector<float> xs(n * 3);
  std::vector<float> ys(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 3; ++j) xs[i * 3 + j] = rng.uniform(-1.0F, 1.0F);
    ys[i] = 2.0F * xs[i * 3] - xs[i * 3 + 1] + 0.5F * xs[i * 3 + 2] + 1.0F;
  }
  auto x = mt::Tensor::from_vector({n, 3}, std::move(xs));
  auto y = mt::Tensor::from_vector({n, 1}, std::move(ys));
  nn::Adam opt(lin.parameters(), 0.05F);
  float final_loss = 0.0F;
  for (int e = 0; e < 400; ++e) {
    opt.zero_grad();
    auto loss = mt::mse_loss(lin.forward(x), y);
    loss.backward();
    opt.step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 1e-3F);
  EXPECT_NEAR(lin.weight().at({0, 0}), 2.0F, 0.05F);
  EXPECT_NEAR(lin.bias().at({0}), 1.0F, 0.05F);
}

TEST(CosineAnnealing, EndpointsAndMonotonicity) {
  nn::CosineAnnealing sched(1.0F, 10, 0.1F);
  EXPECT_FLOAT_EQ(sched.lr_at(0), 1.0F);
  EXPECT_NEAR(sched.lr_at(10), 0.1F, 1e-6);
  EXPECT_NEAR(sched.lr_at(5), 0.55F, 1e-6);
  for (size_t t = 1; t <= 10; ++t) EXPECT_LE(sched.lr_at(t), sched.lr_at(t - 1));
  // Clamps beyond the horizon.
  EXPECT_NEAR(sched.lr_at(100), 0.1F, 1e-6);
  EXPECT_THROW(nn::CosineAnnealing(1.0F, 0), std::invalid_argument);
}
