// Analytical CPU model tests: physical sanity, determinism, and the
// monotonicity properties a cycle-level simulator would exhibit — the
// invariants DSE depends on.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/cpu_model.hpp"
#include "workload/spec_suite.hpp"

namespace sim = metadse::sim;
namespace arch = metadse::arch;

namespace {

sim::WorkloadCharacteristics typical() {
  sim::WorkloadCharacteristics w;  // defaults are a valid typical mix
  return w;
}

arch::CpuConfig midrange() {
  arch::CpuConfig c;  // defaults are a plausible mid-range core
  return c;
}

}  // namespace

TEST(WorkloadCharacteristics, ValidatesMixAndRanges) {
  auto w = typical();
  EXPECT_NO_THROW(w.validate());
  w.f_load += 0.2;  // mix no longer sums to 1
  EXPECT_THROW(w.validate(), std::invalid_argument);
  w = typical();
  w.branch_entropy = 1.5;
  EXPECT_THROW(w.validate(), std::invalid_argument);
  w = typical();
  w.mlp = 0.2;
  EXPECT_THROW(w.validate(), std::invalid_argument);
}

TEST(CpuModel, RejectsNonPhysicalConfig) {
  sim::CpuModel m;
  auto c = midrange();
  c.rob_size = 0;
  EXPECT_THROW(m.simulate(c, typical()), std::invalid_argument);
  c = midrange();
  c.freq_ghz = -1;
  EXPECT_THROW(m.simulate(c, typical()), std::invalid_argument);
}

TEST(CpuModel, DeterministicAndBounded) {
  sim::CpuModel m;
  const auto a = m.simulate(midrange(), typical());
  const auto b = m.simulate(midrange(), typical());
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_GT(a.ipc, 0.0);
  EXPECT_LE(a.ipc, midrange().width);  // cannot retire more than width
  EXPECT_GE(a.branch_mpki, 0.0);
  EXPECT_GE(a.l1d_mpki, 0.0);
  EXPECT_LE(a.l2_mpki, a.l1d_mpki + 1e-9);  // L2 misses subset of L1 misses
}

TEST(CpuModel, CpiComponentsSumToTotal) {
  sim::CpuModel m;
  const auto st = m.simulate(midrange(), typical());
  const double cpi =
      st.base_cpi + st.branch_cpi + st.memory_cpi + st.icache_cpi;
  EXPECT_NEAR(1.0 / st.ipc, cpi, 1e-9);
}

// ---- monotonicity properties, swept over several base configs ---------------

class SimMonotonicity : public ::testing::TestWithParam<int> {
 protected:
  arch::CpuConfig base() const {
    arch::CpuConfig c;
    // Vary the baseline with the parameter so properties hold space-wide.
    const int k = GetParam();
    c.width = 2 + k;
    c.rob_size = 64 + 32 * k;
    c.iq_size = 24 + 8 * k;
    c.l1d_kb = k % 2 ? 32 : 16;
    return c;
  }
  sim::CpuModel m;
};

TEST_P(SimMonotonicity, BiggerRobNeverHurts) {
  auto lo = base();
  auto hi = base();
  hi.rob_size = lo.rob_size + 64;
  EXPECT_GE(m.simulate(hi, typical()).ipc, m.simulate(lo, typical()).ipc);
}

TEST_P(SimMonotonicity, WiderPipelineNeverHurtsIpc) {
  auto lo = base();
  auto hi = base();
  hi.width = lo.width + 2;
  EXPECT_GE(m.simulate(hi, typical()).ipc - 1e-9,
            m.simulate(lo, typical()).ipc);
}

TEST_P(SimMonotonicity, TournamentBeatsBimodeOnBranchyCode) {
  auto w = typical();
  w.branch_entropy = 0.5;
  auto bi = base();
  bi.branch_predictor = arch::BranchPredictorType::kBiMode;
  auto to = base();
  to.branch_predictor = arch::BranchPredictorType::kTournament;
  EXPECT_GT(m.simulate(to, w).ipc, m.simulate(bi, w).ipc);
  EXPECT_LT(m.simulate(to, w).branch_mpki, m.simulate(bi, w).branch_mpki);
}

TEST_P(SimMonotonicity, BiggerL1dReducesMisses) {
  auto w = typical();
  w.dcache_ws_kb = 48;
  auto lo = base();
  lo.l1d_kb = 16;
  auto hi = base();
  hi.l1d_kb = 64;
  EXPECT_LT(m.simulate(hi, w).l1d_mpki, m.simulate(lo, w).l1d_mpki);
  EXPECT_GE(m.simulate(hi, w).ipc, m.simulate(lo, w).ipc);
}

TEST_P(SimMonotonicity, HigherFrequencyLowersIpcOnMemoryBoundCode) {
  // Memory-bound work: more cycles per fixed-time DRAM access at higher f.
  auto w = typical();
  w.dcache_ws_kb = 200;
  w.dcache_ws2_kb = 5000;
  w.mlp = 1.2;
  auto slow = base();
  slow.freq_ghz = 1.0;
  auto fast = base();
  fast.freq_ghz = 3.0;
  EXPECT_GT(m.simulate(slow, w).ipc, m.simulate(fast, w).ipc);
}

TEST_P(SimMonotonicity, MoreFpUnitsHelpFpCode) {
  auto w = typical();
  w.f_fp_alu = 0.30;
  w.f_fp_mul = 0.20;
  w.f_int_alu = 0.20;
  w.f_load = 0.15;
  w.f_store = 0.05;
  w.f_branch = 0.07;
  w.f_int_mul = 0.03;
  auto lo = base();
  lo.fp_alu = 1;
  lo.fp_multdiv = 1;
  auto hi = base();
  hi.fp_alu = 4;
  hi.fp_multdiv = 4;
  EXPECT_GE(m.simulate(hi, w).ipc, m.simulate(lo, w).ipc);
}

TEST_P(SimMonotonicity, BiggerRasHelpsCallHeavyCode) {
  auto w = typical();
  w.indirect_frac = 0.35;
  w.call_depth = 24;
  auto lo = base();
  lo.ras_size = 16;
  auto hi = base();
  hi.ras_size = 40;
  EXPECT_GT(m.simulate(hi, w).ipc, m.simulate(lo, w).ipc);
}

INSTANTIATE_TEST_SUITE_P(BaseConfigs, SimMonotonicity,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(CpuModel, WorkloadsDifferentiateTheSpace) {
  // The same two configs must rank differently for compute-bound vs
  // memory-bound code — the premise of cross-workload DSE.
  metadse::workload::SpecSuite suite;
  sim::CpuModel m;
  // Config A: strong memory system, narrow core.
  arch::CpuConfig a = midrange();
  a.width = 2;
  a.rob_size = 64;
  a.l1d_kb = 64;
  a.l2_kb = 256;
  a.freq_ghz = 1.5;
  // Config B: wide fast core, weak memory system.
  arch::CpuConfig b = midrange();
  b.width = 8;
  b.rob_size = 256;
  b.iq_size = 80;
  b.int_alu = 8;
  b.l1d_kb = 16;
  b.l2_kb = 128;
  b.freq_ghz = 3.0;

  const auto& mcf = suite.by_name("605.mcf_s").base();        // memory-bound
  const auto& imagick = suite.by_name("638.imagick_s").base();  // compute
  const double mcf_pref = m.simulate(a, mcf).ipc - m.simulate(b, mcf).ipc;
  const double img_pref =
      m.simulate(a, imagick).ipc - m.simulate(b, imagick).ipc;
  // mcf should favor A more than imagick does (different bottlenecks).
  EXPECT_GT(mcf_pref, img_pref);
}
