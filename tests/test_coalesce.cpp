// Cross-session batch coalescing: flush-policy edge cases (max-batch hit
// exactly, wait-tick flush with a straggler, session barrier, empty flush),
// cancellation semantics (mid-assembly drop leaves survivors' values
// bitwise-untouched; in-flight cancel discards the result), the stats
// invariant submitted == coalesced + cancelled + failed, a randomized
// schedule fuzz against a single-threaded reference model (scatter-back is a
// permutation-correct bijection request -> result), and the acceptance bar:
// per-session fronts AND journals through the real serving engine with
// coalescing enabled are bitwise-identical to the uncoalesced path at
// threads 1/2/8.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "core/metadse.hpp"
#include "core/parallel.hpp"
#include "explore/guarded.hpp"
#include "serve/coalesce.hpp"
#include "serve/session.hpp"

namespace core = metadse::core;
namespace data = metadse::data;
namespace ex = metadse::explore;
namespace serve = metadse::serve;

namespace {

using Rows = serve::BatchCoalescer::Rows;

/// Deterministic per-row function both the executor and the checker compute:
/// any scatter or ordering bug shows up as a bitwise mismatch.
float row_value(const std::vector<float>& row) {
  float acc = 0.0F;
  for (size_t i = 0; i < row.size(); ++i) {
    acc = acc * 4096.0F + row[i];
  }
  return acc;
}

/// Executor that records every fused batch it sees and answers row_value.
struct RecordingExec {
  std::vector<Rows> batches;

  serve::BatchCoalescer::Executor fn() {
    return [this](const Rows& rows) {
      batches.push_back(rows);
      std::vector<float> out;
      out.reserve(rows.size());
      for (const auto& r : rows) out.push_back(row_value(r));
      return out;
    };
  }
};

/// Manual-clock options: no ticker thread, tests drive tick()/flush().
serve::CoalesceOptions manual(size_t max_batch, size_t wait_ticks = 2) {
  return {.max_batch = max_batch, .wait_ticks = wait_ticks, .tick_ms = 0};
}

Rows make_rows(uint64_t tag, size_t n) {
  Rows rows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({static_cast<float>(tag), static_cast<float>(i)});
  }
  return rows;
}

std::vector<float> values_of(const Rows& rows) {
  std::vector<float> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(row_value(r));
  return out;
}

void expect_bitwise(const std::vector<float>& got,
                    const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint32_t>(got[i]), std::bit_cast<uint32_t>(want[i]))
        << "row " << i;
  }
}

/// Drained-coalescer accounting: every submitted point landed in exactly one
/// of the three terminal buckets, and every successful batch has a cause.
void expect_coalesce_invariant(const serve::CoalesceStats& s) {
  EXPECT_EQ(s.submitted_points,
            s.coalesced_points + s.cancelled_points + s.failed_points);
  EXPECT_EQ(s.coalesced_batches, s.flush_full + s.flush_tick + s.flush_barrier);
}

}  // namespace

// -- construction -------------------------------------------------------------

TEST(CoalesceFlush, ValidatesOptionsAndExecutor) {
  RecordingExec exec;
  EXPECT_THROW(serve::BatchCoalescer(manual(0), exec.fn()),
               std::invalid_argument);
  EXPECT_THROW(serve::BatchCoalescer(manual(4, 0), exec.fn()),
               std::invalid_argument);
  EXPECT_THROW(serve::BatchCoalescer(manual(4), nullptr),
               std::invalid_argument);
}

// -- flush policy -------------------------------------------------------------

TEST(CoalesceFlush, MaxBatchHitExactlyFlushesInline) {
  RecordingExec exec;
  serve::BatchCoalescer coal(manual(/*max_batch=*/4), exec.fn());
  auto a = coal.submit(1, make_rows(10, 2));
  EXPECT_TRUE(exec.batches.empty()) << "2 of 4 points: no flush yet";
  auto b = coal.submit(2, make_rows(20, 2));  // exactly max_batch: leader flush
  ASSERT_EQ(exec.batches.size(), 1U);
  EXPECT_EQ(exec.batches[0].size(), 4U);
  expect_bitwise(coal.wait(a), values_of(make_rows(10, 2)));
  expect_bitwise(coal.wait(b), values_of(make_rows(20, 2)));
  const auto s = coal.stats();
  EXPECT_EQ(s.flush_full, 1U);
  EXPECT_EQ(s.flush_tick + s.flush_barrier, 0U);
  EXPECT_EQ(s.coalesced_points, 4U);
  EXPECT_EQ(s.max_batch_points, 4U);
  expect_coalesce_invariant(s);
}

TEST(CoalesceFlush, WaitTicksReleaseTheStraggler) {
  RecordingExec exec;
  serve::BatchCoalescer coal(manual(/*max_batch=*/100, /*wait_ticks=*/2),
                             exec.fn());
  auto lone = coal.submit(7, make_rows(70, 3));
  coal.tick();
  EXPECT_TRUE(exec.batches.empty()) << "one tick of age is under wait_ticks";
  coal.tick();
  ASSERT_EQ(exec.batches.size(), 1U) << "two ticks of age must flush";
  expect_bitwise(coal.wait(lone), values_of(make_rows(70, 3)));

  // The age window restarts for the next batch: a fresh straggler is not
  // flushed by the first tick after it lands.
  auto late = coal.submit(7, make_rows(71, 1));
  coal.tick();
  EXPECT_EQ(exec.batches.size(), 1U);
  coal.tick();
  ASSERT_EQ(exec.batches.size(), 2U);
  EXPECT_EQ(exec.batches[1].size(), 1U);
  expect_bitwise(coal.wait(late), values_of(make_rows(71, 1)));
  const auto s = coal.stats();
  EXPECT_EQ(s.flush_tick, 2U);
  expect_coalesce_invariant(s);
}

TEST(CoalesceFlush, BarrierFlushesWhateverIsAssembled) {
  RecordingExec exec;
  serve::BatchCoalescer coal(manual(100), exec.fn());
  auto t = coal.submit(3, make_rows(30, 2));
  coal.flush();
  ASSERT_EQ(exec.batches.size(), 1U);
  expect_bitwise(coal.wait(t), values_of(make_rows(30, 2)));
  EXPECT_EQ(coal.stats().flush_barrier, 1U);
}

TEST(CoalesceFlush, EmptyFlushAndTicksAreNoOps) {
  RecordingExec exec;
  serve::BatchCoalescer coal(manual(4), exec.fn());
  coal.flush();
  for (int i = 0; i < 5; ++i) coal.tick();
  EXPECT_TRUE(exec.batches.empty());
  const auto s = coal.stats();
  EXPECT_EQ(s.coalesced_batches, 0U);
  expect_coalesce_invariant(s);
}

TEST(CoalesceFlush, EmptyRowsResolveImmediately) {
  RecordingExec exec;
  serve::BatchCoalescer coal(manual(4), exec.fn());
  auto t = coal.submit(5, {});
  EXPECT_TRUE(coal.wait(t).empty());
  EXPECT_TRUE(exec.batches.empty());
}

TEST(CoalesceFlush, AssemblyIsOrderedBySessionThenSeq) {
  RecordingExec exec;
  serve::BatchCoalescer coal(manual(100), exec.fn());
  // Submit out of session order, with two requests from session 7.
  auto s7a = coal.submit(7, make_rows(700, 1));
  auto s3 = coal.submit(3, make_rows(300, 1));
  auto s7b = coal.submit(7, make_rows(701, 1));
  auto s1 = coal.submit(1, make_rows(100, 1));
  coal.flush();
  ASSERT_EQ(exec.batches.size(), 1U);
  // Fused order: session 1, session 3, session 7 seq 0, session 7 seq 1.
  Rows want;
  for (uint64_t tag : {100, 300, 700, 701}) {
    want.push_back({static_cast<float>(tag), 0.0F});
  }
  ASSERT_EQ(exec.batches[0].size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(exec.batches[0][i], want[i]) << "fused slot " << i;
  }
  // Scatter-back still routes by request, not by submit order.
  expect_bitwise(coal.wait(s7a), values_of(make_rows(700, 1)));
  expect_bitwise(coal.wait(s3), values_of(make_rows(300, 1)));
  expect_bitwise(coal.wait(s7b), values_of(make_rows(701, 1)));
  expect_bitwise(coal.wait(s1), values_of(make_rows(100, 1)));
}

// -- cancellation -------------------------------------------------------------

TEST(CoalesceCancel, MidAssemblyDropLeavesSurvivorsBitwiseUntouched) {
  // Reference: session 2 rides alone.
  RecordingExec solo_exec;
  serve::BatchCoalescer solo(manual(100), solo_exec.fn());
  auto solo_ticket = solo.submit(2, make_rows(20, 3));
  solo.flush();
  const auto solo_values = solo.wait(solo_ticket);

  // Same rows assembled next to a session that cancels before the flush.
  RecordingExec exec;
  serve::BatchCoalescer coal(manual(100), exec.fn());
  auto doomed = coal.submit(1, make_rows(10, 2));
  auto survivor = coal.submit(2, make_rows(20, 3));
  coal.cancel_session(1);
  coal.flush();
  ASSERT_EQ(exec.batches.size(), 1U);
  EXPECT_EQ(exec.batches[0].size(), 3U)
      << "the cancelled session's rows must not reach the executor";
  expect_bitwise(coal.wait(survivor), solo_values);
  EXPECT_THROW(coal.wait(doomed), serve::CoalesceCancelled);

  const auto s = coal.stats();
  EXPECT_EQ(s.cancelled_points, 2U);
  EXPECT_EQ(s.coalesced_points, 3U);
  expect_coalesce_invariant(s);
}

TEST(CoalesceCancel, WaiterPredicateDropsItsOwnRequest) {
  RecordingExec exec;
  serve::BatchCoalescer coal(manual(100), exec.fn());
  auto t = coal.submit(9, make_rows(90, 2));
  EXPECT_THROW(coal.wait(t, [] { return true; }), serve::CoalesceCancelled);
  coal.flush();
  EXPECT_TRUE(exec.batches.empty());
  const auto s = coal.stats();
  EXPECT_EQ(s.cancelled_points, 2U);
  expect_coalesce_invariant(s);
}

TEST(CoalesceCancel, InFlightCancelDiscardsTheResultAfterTheBatchLands) {
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  serve::BatchCoalescer coal(
      manual(100), [&](const Rows& rows) {
        entered.store(true);
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        std::vector<float> out;
        for (const auto& r : rows) out.push_back(row_value(r));
        return out;
      });
  auto doomed = coal.submit(4, make_rows(40, 2));
  std::thread flusher([&] { coal.flush(); });  // blocks inside the executor
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  coal.cancel_session(4);  // too late to pull the rows: mark for discard
  release.store(true);
  flusher.join();
  EXPECT_THROW(coal.wait(doomed), serve::CoalesceCancelled);
  const auto s = coal.stats();
  // The fused batch completed (its points count as coalesced); only the
  // waiter-visible result was discarded.
  EXPECT_EQ(s.coalesced_points, 2U);
  EXPECT_EQ(s.cancelled_points, 0U);
  expect_coalesce_invariant(s);
}

TEST(CoalesceCancel, ExecutorFailureFailsTheBatchAndTheNextOneRecovers) {
  std::atomic<bool> fail{true};
  serve::BatchCoalescer coal(manual(100), [&](const Rows& rows) {
    if (fail.load()) throw std::runtime_error("fused forward exploded");
    std::vector<float> out;
    for (const auto& r : rows) out.push_back(row_value(r));
    return out;
  });
  auto a = coal.submit(1, make_rows(10, 2));
  auto b = coal.submit(2, make_rows(20, 1));
  coal.flush();
  EXPECT_THROW(coal.wait(a), std::runtime_error);
  EXPECT_THROW(coal.wait(b), std::runtime_error);

  fail.store(false);
  auto c = coal.submit(3, make_rows(30, 2));
  coal.flush();
  expect_bitwise(coal.wait(c), values_of(make_rows(30, 2)));

  const auto s = coal.stats();
  EXPECT_EQ(s.failed_points, 3U);
  EXPECT_EQ(s.failed_batches, 1U);
  EXPECT_EQ(s.coalesced_points, 2U);
  expect_coalesce_invariant(s);
}

TEST(CoalesceCancel, ShutdownCancelsEveryAssemblingRequest) {
  RecordingExec exec;
  serve::BatchCoalescer::Ticket orphan;
  {
    serve::BatchCoalescer coal(manual(100), exec.fn());
    orphan = coal.submit(1, make_rows(10, 2));
  }
  EXPECT_TRUE(exec.batches.empty());
  EXPECT_TRUE(orphan.valid());
}

// -- accounting ---------------------------------------------------------------

TEST(CoalesceAccounting, StatsPartitionEveryPointOnceDrained) {
  RecordingExec exec;
  serve::BatchCoalescer coal(manual(/*max_batch=*/6, /*wait_ticks=*/2),
                             exec.fn());
  // A mix of every path: a full flush, a tick flush, a barrier flush, a
  // cancelled request, and an empty-rows request.
  auto a = coal.submit(1, make_rows(1, 3));
  auto b = coal.submit(2, make_rows(2, 3));  // 6 points: full flush
  auto c = coal.submit(3, make_rows(3, 2));
  coal.tick();
  coal.tick();  // tick flush (2 points)
  auto d = coal.submit(4, make_rows(4, 2));
  auto doomed = coal.submit(5, make_rows(5, 3));  // 5 points: under max_batch
  coal.cancel_session(5);
  coal.flush();  // barrier flush (2 points, session 5's 3 removed)
  auto empty = coal.submit(6, {});

  expect_bitwise(coal.wait(a), values_of(make_rows(1, 3)));
  expect_bitwise(coal.wait(b), values_of(make_rows(2, 3)));
  expect_bitwise(coal.wait(c), values_of(make_rows(3, 2)));
  expect_bitwise(coal.wait(d), values_of(make_rows(4, 2)));
  EXPECT_THROW(coal.wait(doomed), serve::CoalesceCancelled);
  EXPECT_TRUE(coal.wait(empty).empty());

  const auto s = coal.stats();
  EXPECT_EQ(s.submitted_requests, 6U);
  EXPECT_EQ(s.submitted_points, 13U);
  EXPECT_EQ(s.coalesced_points, 10U);
  EXPECT_EQ(s.cancelled_points, 3U);
  EXPECT_EQ(s.failed_points, 0U);
  EXPECT_EQ(s.coalesced_batches, 3U);
  EXPECT_EQ(s.flush_full, 1U);
  EXPECT_EQ(s.flush_tick, 1U);
  EXPECT_EQ(s.flush_barrier, 1U);
  EXPECT_EQ(s.max_batch_points, 6U);
  EXPECT_DOUBLE_EQ(s.mean_batch_points(), 10.0 / 3.0);
  expect_coalesce_invariant(s);
}

// -- randomized schedules vs a reference model --------------------------------

namespace {

/// Single-threaded mirror of the flush policy: same triggers, same
/// (session_id, seq) batch ordering, tracked symbolically.
struct ModelRequest {
  uint64_t session = 0;
  uint64_t seq = 0;
  size_t n_rows = 0;
  enum class State { kPending, kExecuted, kCancelled } state = State::kPending;
};

struct ReferenceModel {
  size_t max_batch = 0;
  size_t wait_ticks = 0;
  uint64_t tick = 0;
  uint64_t open_tick = 0;
  std::vector<ModelRequest> requests;
  std::vector<size_t> assembling;  ///< indices into requests
  size_t assembled_points = 0;
  std::vector<std::vector<size_t>> batches;  ///< executed, in flush order
  std::map<uint64_t, uint64_t> next_seq;

  size_t submit(uint64_t session, size_t n_rows) {
    ModelRequest r;
    r.session = session;
    r.seq = next_seq[session]++;
    r.n_rows = n_rows;
    requests.push_back(r);
    const size_t idx = requests.size() - 1;
    if (n_rows == 0) {
      requests[idx].state = ModelRequest::State::kExecuted;
      return idx;
    }
    if (assembling.empty()) open_tick = tick;
    assembling.push_back(idx);
    assembled_points += n_rows;
    if (assembled_points >= max_batch) flush();
    return idx;
  }

  void tick_once() {
    ++tick;
    if (!assembling.empty() && tick - open_tick >= wait_ticks) flush();
  }

  void flush() {
    if (assembling.empty()) return;
    std::sort(assembling.begin(), assembling.end(),
              [&](size_t a, size_t b) {
                return requests[a].session != requests[b].session
                           ? requests[a].session < requests[b].session
                           : requests[a].seq < requests[b].seq;
              });
    for (size_t idx : assembling) {
      requests[idx].state = ModelRequest::State::kExecuted;
    }
    batches.push_back(assembling);
    assembling.clear();
    assembled_points = 0;
  }

  void cancel_session(uint64_t session) {
    std::vector<size_t> keep;
    for (size_t idx : assembling) {
      if (requests[idx].session == session) {
        requests[idx].state = ModelRequest::State::kCancelled;
        assembled_points -= requests[idx].n_rows;
      } else {
        keep.push_back(idx);
      }
    }
    assembling = std::move(keep);
  }
};

}  // namespace

TEST(CoalesceFuzz, RandomSchedulesMatchTheReferenceModelExactly) {
  // Every row is tagged with its (request, row) identity, so a correct run
  // proves scatter-back is a bijection: each submitted row reaches the
  // executor exactly once (unless its request was cancelled first) and its
  // value comes back to exactly the ticket that submitted it.
  for (uint64_t schedule = 0; schedule < 60; ++schedule) {
    std::mt19937_64 rng(0xC0A1E5CE + schedule);
    const size_t max_batch = 2 + static_cast<size_t>(rng() % 7);
    const size_t wait_ticks = 1 + static_cast<size_t>(rng() % 3);

    RecordingExec exec;
    serve::BatchCoalescer coal(manual(max_batch, wait_ticks), exec.fn());
    ReferenceModel model;
    model.max_batch = max_batch;
    model.wait_ticks = wait_ticks;
    std::vector<serve::BatchCoalescer::Ticket> tickets;
    std::vector<Rows> submitted_rows;

    const size_t ops = 20 + static_cast<size_t>(rng() % 30);
    for (size_t op = 0; op < ops; ++op) {
      const uint64_t kind = rng() % 10;
      if (kind < 6) {  // submit
        const uint64_t session = rng() % 4;
        const size_t n_rows = rng() % 4;  // 0 exercises the immediate path
        const Rows rows =
            make_rows(schedule * 1000 + tickets.size(), n_rows);
        tickets.push_back(coal.submit(session, rows));
        submitted_rows.push_back(rows);
        model.submit(session, n_rows);
      } else if (kind < 8) {
        coal.tick();
        model.tick_once();
      } else if (kind == 8) {
        coal.flush();
        model.flush();
      } else {
        const uint64_t session = rng() % 4;
        coal.cancel_session(session);
        model.cancel_session(session);
      }
    }
    coal.flush();
    model.flush();

    // Same batches, same fused row order.
    ASSERT_EQ(exec.batches.size(), model.batches.size())
        << "schedule " << schedule;
    for (size_t b = 0; b < model.batches.size(); ++b) {
      Rows want;
      for (size_t idx : model.batches[b]) {
        for (const auto& row : submitted_rows[idx]) want.push_back(row);
      }
      ASSERT_EQ(exec.batches[b], want)
          << "schedule " << schedule << " batch " << b;
    }

    // Same terminal state and bit-exact scatter-back per request.
    for (size_t i = 0; i < tickets.size(); ++i) {
      if (model.requests[i].state == ModelRequest::State::kCancelled) {
        EXPECT_THROW(coal.wait(tickets[i]), serve::CoalesceCancelled)
            << "schedule " << schedule << " request " << i;
      } else {
        expect_bitwise(coal.wait(tickets[i]), values_of(submitted_rows[i]));
      }
    }
    expect_coalesce_invariant(coal.stats());
  }
}

// -- concurrent equivalence (TSan target) -------------------------------------

TEST(CoalesceEquivalence, ConcurrentSubmittersGetBitwiseIdenticalValues) {
  // 8 threads hammer one coalescer through the live ticker; every thread
  // checks its own results bit-for-bit against the per-row function. Fused
  // batch composition is timing-dependent; values must not be.
  serve::CoalesceOptions options{.max_batch = 32, .wait_ticks = 2,
                                 .tick_ms = 1};
  std::atomic<size_t> fused_calls{0};
  serve::BatchCoalescer coal(options, [&](const Rows& rows) {
    fused_calls.fetch_add(1);
    std::vector<float> out;
    out.reserve(rows.size());
    for (const auto& r : rows) out.push_back(row_value(r));
    return out;
  });

  constexpr size_t kThreads = 8;
  constexpr size_t kCalls = 120;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kCalls; ++i) {
        const Rows rows = make_rows(t * 100000 + i, 1 + (t + i) % 4);
        const auto got = coal.predict(t, rows);
        const auto want = values_of(rows);
        if (got.size() != want.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t k = 0; k < got.size(); ++k) {
          if (std::bit_cast<uint32_t>(got[k]) !=
              std::bit_cast<uint32_t>(want[k])) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0U);

  const auto s = coal.stats();
  EXPECT_EQ(s.submitted_requests, kThreads * kCalls);
  EXPECT_GT(s.coalesced_batches, 0U);
  EXPECT_EQ(s.coalesced_batches, fused_calls.load());
  EXPECT_LT(s.coalesced_batches, s.submitted_requests)
      << "concurrent submitters must actually fuse";
  expect_coalesce_invariant(s);
}

// -- the acceptance bar: real pipeline, coalesced == uncoalesced --------------

namespace {

core::FrameworkOptions tiny_options() {
  core::FrameworkOptions o;
  o.samples_per_workload = 200;
  o.maml.epochs = 2;
  o.maml.tasks_per_workload = 6;
  o.maml.val_tasks_per_workload = 2;
  o.maml.seed = 3;
  o.seed = 17;
  return o;
}

core::MetaDseFramework& shared_framework() {
  static core::MetaDseFramework* fw = [] {
    auto* f = new core::MetaDseFramework(tiny_options());
    f->pretrain();
    return f;
  }();
  return *fw;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

constexpr size_t kSessions = 4;
constexpr const char* kWorkload = "605.mcf_s";

/// Runs kSessions DSE sessions through the engine's executor on
/// @p session_threads concurrent threads (each under a SerialRegionGuard,
/// exactly like ServerCore workers) and returns the concatenated bytes of
/// every published front and journal.
std::string run_engine_sessions(core::MetaDseFramework& fw,
                                const data::Dataset& support,
                                bool coalesce, size_t session_threads,
                                const std::string& dir) {
  std::filesystem::create_directories(dir);
  serve::MetaDseSessionEngine::Options opts;
  opts.dse.explorer = {.initial_samples = 8, .iterations = 16,
                       .mutations_per_step = 2, .seed = 13, .eval_batch = 4};
  opts.dse.guard.ipc_min = -128.0;  // a tiny surrogate may dip below zero
  opts.front_dir = dir;
  if (coalesce) {
    opts.coalesce = serve::CoalesceOptions{.max_batch = 16, .wait_ticks = 2,
                                           .tick_ms = 1};
  }
  serve::MetaDseSessionEngine engine(fw, kSessions, opts);
  engine.add_workload(kWorkload, support);
  auto executor = engine.executor();

  std::atomic<size_t> next{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < session_threads; ++t) {
    threads.emplace_back([&] {
      metadse::core::SerialRegionGuard serial;
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= kSessions) return;
        serve::SessionRequest request;
        request.id = i;
        request.workload = kWorkload;
        request.seed = 100 + i;
        request.journal_path = dir + "/s" + std::to_string(i) + ".journal";
        serve::ExecContext ctx;
        ctx.replica = i;
        ctx.budget = std::make_shared<ex::DeadlineBudget>(0);  // unlimited
        try {
          executor(request, ctx);
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0U);

  if (coalesce) {
    const auto s = engine.coalesce_stats();
    EXPECT_GT(s.coalesced_batches, 0U);
    expect_coalesce_invariant(s);
  }

  std::string bytes;
  for (size_t i = 0; i < kSessions; ++i) {
    bytes += slurp(dir + "/front_" + std::to_string(i) + ".txt");
    bytes += slurp(dir + "/s" + std::to_string(i) + ".journal");
  }
  return bytes;
}

}  // namespace

TEST(CoalesceEquivalence, ServedFrontsAndJournalsMatchUncoalescedAtThreads128) {
  auto& fw = shared_framework();
  const auto& ds = fw.dataset(kWorkload);
  data::Dataset support;
  support.workload = kWorkload;
  for (size_t i = 0; i < 8; ++i) support.samples.push_back(ds.samples[i]);

  const std::string base = ::testing::TempDir() + "coalesce_eq";
  std::filesystem::remove_all(base);

  // Anchor: single-threaded, uncoalesced — the PR 6 serving path.
  const std::string reference = run_engine_sessions(
      fw, support, /*coalesce=*/false, /*session_threads=*/1, base + "/ref");
  ASSERT_FALSE(reference.empty());

  const size_t saved_threads = metadse::core::threads();
  for (size_t t : {1U, 2U, 8U}) {
    metadse::core::set_threads(t);
    const std::string unc = run_engine_sessions(
        fw, support, false, t, base + "/unc_t" + std::to_string(t));
    const std::string coal = run_engine_sessions(
        fw, support, true, t, base + "/coal_t" + std::to_string(t));
    EXPECT_EQ(unc, reference)
        << "uncoalesced fronts/journals must be thread-count invariant (t="
        << t << ")";
    EXPECT_EQ(coal, reference)
        << "coalesced fronts/journals must match the uncoalesced path "
           "bitwise (t=" << t << ")";
  }
  metadse::core::set_threads(saved_threads);
  std::filesystem::remove_all(base);
}

TEST(CoalesceEquivalence, CancelledSessionAbortsWithoutPerturbingSurvivors) {
  // One session's budget is cancelled while it waits in the coalescer: it
  // must abort as ExplorationAborted (the serve layer maps that to
  // kDeadline) and the surviving sessions' fronts must still match the
  // uncoalesced reference bitwise.
  auto& fw = shared_framework();
  const auto& ds = fw.dataset(kWorkload);
  data::Dataset support;
  support.workload = kWorkload;
  for (size_t i = 0; i < 8; ++i) support.samples.push_back(ds.samples[i]);

  const std::string base = ::testing::TempDir() + "coalesce_cancel";
  std::filesystem::remove_all(base);
  const std::string ref = run_engine_sessions(fw, support, false, 1,
                                              base + "/ref");

  serve::MetaDseSessionEngine::Options opts;
  opts.dse.explorer = {.initial_samples = 8, .iterations = 16,
                       .mutations_per_step = 2, .seed = 13, .eval_batch = 4};
  opts.dse.guard.ipc_min = -128.0;
  opts.front_dir = base + "/live";
  opts.coalesce = serve::CoalesceOptions{.max_batch = 16, .wait_ticks = 2,
                                         .tick_ms = 1};
  std::filesystem::create_directories(opts.front_dir);
  serve::MetaDseSessionEngine engine(fw, kSessions, opts);
  engine.add_workload(kWorkload, support);
  auto executor = engine.executor();

  auto doomed_budget = std::make_shared<ex::DeadlineBudget>(0);
  doomed_budget->cancel();  // dead on arrival: every coalescer wait aborts
  std::atomic<size_t> aborted{0};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      metadse::core::SerialRegionGuard serial;
      serve::SessionRequest request;
      request.id = i;
      request.workload = kWorkload;
      request.seed = 100 + i;
      request.journal_path =
          opts.front_dir + "/s" + std::to_string(i) + ".journal";
      serve::ExecContext ctx;
      ctx.replica = i;
      ctx.budget = i == 0 ? doomed_budget
                          : std::make_shared<ex::DeadlineBudget>(0);
      try {
        executor(request, ctx);
      } catch (const ex::ExplorationAborted&) {
        aborted.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(aborted.load(), 1U)
      << "exactly the cancelled session must abort";
  EXPECT_FALSE(
      std::filesystem::exists(opts.front_dir + "/front_0.txt"))
      << "an aborted session publishes no front";

  // Survivors (sessions 1..3) against the same slice of the reference.
  std::string live, want;
  for (size_t i = 1; i < kSessions; ++i) {
    live += slurp(opts.front_dir + "/front_" + std::to_string(i) + ".txt");
    live += slurp(opts.front_dir + "/s" + std::to_string(i) + ".journal");
    want += slurp(base + "/ref/front_" + std::to_string(i) + ".txt");
    want += slurp(base + "/ref/s" + std::to_string(i) + ".journal");
  }
  EXPECT_EQ(live, want);
  std::filesystem::remove_all(base);
}
