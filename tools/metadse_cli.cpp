// metadse — command-line front-end to the MetaDSE pipeline.
//
//   metadse info                               design space + workload suite
//   metadse generate --workload W --samples N --out F.csv
//   metadse pretrain --ckpt F [--epochs E --tasks T --support S]
//   metadse evaluate --ckpt F --workload W [--tasks N --support K --no-wam]
//   metadse adapt    --ckpt F --workload W [--support K --candidates N]
//   metadse serve    --ckpt F --journal-dir D [--sessions N --replicas R]
//   metadse similarity [--samples N]
//
// Every command is deterministic given --seed (default 2025).
//
// SIGINT/SIGTERM request a cooperative stop: journaled work flushes its WAL
// and snapshot at the next safe point and the process exits with code 3
// ("stopped by signal, state flushed, resumable" — distinct from 1/2).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/trendse.hpp"
#include "core/chaos.hpp"
#include "core/io.hpp"
#include "core/metadse.hpp"
#include "core/parallel.hpp"
#include "eval/metrics.hpp"
#include "eval/table.hpp"
#include "explore/explorer.hpp"
#include "nn/plan.hpp"
#include "nn/serialize.hpp"
#include "serve/server.hpp"
#include "tensor/quant.hpp"
#include "serve/session.hpp"

using namespace metadse;

namespace {

/// Exit code for a signal-interrupted run whose durable state was flushed.
constexpr int kExitStopped = 3;

volatile std::sig_atomic_t g_signal = 0;

extern "C" void handle_stop_signal(int sig) { g_signal = sig; }

/// Installs cooperative SIGINT/SIGTERM handlers. Long-running commands poll
/// stop_requested() (directly or via ExplorerOptions::stop_check).
void install_signal_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

bool stop_requested() { return g_signal != 0; }

/// A malformed command line: main() prints the message plus usage and exits
/// nonzero (distinct from runtime errors, which skip the usage dump).
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

/// Minimal --key value / --flag argument parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw UsageError("unexpected argument '" + key + "'");
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[key] = argv[++i];
      } else {
        kv_[key] = "";
      }
    }
  }

  bool has(const std::string& k) const { return kv_.count(k) > 0; }
  std::string str(const std::string& k, const std::string& dflt = "") const {
    auto it = kv_.find(k);
    return it == kv_.end() ? dflt : it->second;
  }
  long num(const std::string& k, long dflt) const {
    auto it = kv_.find(k);
    if (it == kv_.end()) return dflt;
    const char* s = it->second.c_str();
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(s, &end, 10);
    if (errno != 0 || end == s || *end != '\0') {
      throw UsageError("invalid integer for --" + k + ": '" + it->second +
                       "'");
    }
    return v;
  }
  double real(const std::string& k, double dflt) const {
    auto it = kv_.find(k);
    if (it == kv_.end()) return dflt;
    const char* s = it->second.c_str();
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(s, &end);
    if (errno != 0 || end == s || *end != '\0') {
      throw UsageError("invalid number for --" + k + ": '" + it->second +
                       "'");
    }
    return v;
  }

 private:
  std::map<std::string, std::string> kv_;
};

/// Fault-injection knobs shared by generate/pretrain/evaluate: lets any
/// command rehearse against an unreliable label farm.
sim::FaultPlan fault_plan_from(const Args& args) {
  sim::FaultPlan plan;
  plan.fail_rate = args.real("inject-fail", 0.0);
  plan.timeout_rate = args.real("inject-timeout", 0.0);
  plan.nan_rate = args.real("inject-nan", 0.0);
  plan.garbage_rate = args.real("inject-garbage", 0.0);
  plan.persistent_fraction = args.real("inject-persistent", 0.0);
  plan.seed = static_cast<uint64_t>(args.num("fault-seed", 0xFA17));
  return plan;
}

void print_reports(const core::MetaDseFramework& fw) {
  for (const auto& [wl, rep] : fw.generation_reports()) {
    if (rep.degraded() || rep.retries > 0) {
      std::fprintf(stderr, "[generate] %s: %s\n", wl.c_str(),
                   rep.summary().c_str());
    }
  }
}

/// Applies the global --threads knob (0 or absent-value = hardware
/// concurrency; 1 = the serial code path). Results are bitwise identical
/// for every width — threads only change wall-clock.
void apply_threads(const Args& args) {
  if (!args.has("threads")) return;
  const long v = args.num("threads", 0);
  if (v < 0) {
    throw UsageError("--threads must be >= 0 (0 = hardware concurrency)");
  }
  metadse::set_threads(static_cast<size_t>(v));
}

/// Parses the shared --precision knob (adapt / serve / plan-dump).
tensor::quant::Precision precision_from(const Args& args) {
  const std::string s = args.str("precision", "fp32");
  tensor::quant::Precision p = tensor::quant::Precision::kFp32;
  if (!tensor::quant::parse_precision(s, &p)) {
    throw UsageError("--precision must be fp32, bf16, or int8 (got '" + s +
                     "')");
  }
  return p;
}

core::FrameworkOptions options_from(const Args& args) {
  core::FrameworkOptions o;
  o.seed = args.num("seed", 2025);
  o.samples_per_workload = args.num("dataset-size", 1200);
  o.maml.epochs = args.num("epochs", 6);
  o.maml.tasks_per_workload = args.num("tasks", 40);
  o.maml.support = args.num("pretrain-support", 5);
  o.maml.val_tasks_per_workload = args.num("val-tasks", 6);
  o.maml.verbose = args.has("verbose");
  return o;
}

int require_ckpt(core::MetaDseFramework& fw, const Args& args) {
  const std::string path = args.str("ckpt");
  if (path.empty()) {
    std::fprintf(stderr, "error: --ckpt <file> is required\n");
    return 1;
  }
  if (!fw.load_checkpoint(path)) {
    std::fprintf(stderr,
                 "error: checkpoint '%s' not found (run `metadse pretrain "
                 "--ckpt %s` first)\n",
                 path.c_str(), path.c_str());
    return 1;
  }
  return 0;
}

int cmd_info() {
  const auto& space = arch::DesignSpace::table1();
  std::printf("design space: %zu parameters, %.3e points\n\n",
              space.num_params(), space.total_points());
  eval::TextTable t({"parameter", "candidates", "range"});
  for (const auto& s : space.specs()) {
    t.add_row({s.name, std::to_string(s.cardinality()),
               eval::fmt(s.values.front(), 1) + " .. " +
                   eval::fmt(s.values.back(), 1)});
  }
  std::printf("%s\n", t.render().c_str());

  workload::SpecSuite suite;
  std::printf("workload suite (%zu workloads):\n", suite.size());
  for (auto role : {workload::SplitRole::kTrain,
                    workload::SplitRole::kValidation,
                    workload::SplitRole::kTest}) {
    const char* name = role == workload::SplitRole::kTrain ? "train"
                       : role == workload::SplitRole::kValidation
                           ? "validation"
                           : "test";
    std::printf("  %-10s:", name);
    for (const auto& w : suite.names(role)) std::printf(" %s", w.c_str());
    std::printf("\n");
  }
  return 0;
}

int cmd_generate(const Args& args) {
  const std::string wl = args.str("workload");
  const std::string out = args.str("out");
  if (wl.empty() || out.empty()) {
    throw UsageError(
        "generate requires --workload W --samples N --out file.csv");
  }
  workload::SpecSuite suite;
  data::DatasetGenerator gen(arch::DesignSpace::table1());
  gen.set_fault_plan(fault_plan_from(args));
  tensor::Rng rng(args.num("seed", 2025));
  data::GenerationReport report;
  const auto ds = gen.generate(suite.by_name(wl), args.num("samples", 1000),
                               rng, /*latin_hypercube=*/true, &report);
  data::write_csv(ds, arch::DesignSpace::table1(), out);
  std::printf("wrote %zu labelled design points for %s to %s (%s)\n",
              ds.size(), wl.c_str(), out.c_str(), report.summary().c_str());
  return 0;
}

int cmd_pretrain(const Args& args) {
  const std::string path = args.str("ckpt");
  if (path.empty()) {
    throw UsageError("pretrain requires --ckpt file "
                     "[--epochs E --tasks T --pretrain-support S]");
  }
  auto opts = options_from(args);
  // Auto-checkpoint into the target file after every epoch so a killed run
  // resumes from its last completed epoch (--no-autosave restores the old
  // always-retrain behaviour).
  if (!args.has("no-autosave")) opts.autosave_path = path;
  core::MetaDseFramework fw(opts);
  fw.set_fault_plan(fault_plan_from(args));
  std::printf("meta-training (%zu epochs x %zu tasks/workload)...\n",
              fw.options().maml.epochs, fw.options().maml.tasks_per_workload);
  fw.pretrain();
  print_reports(fw);
  fw.save_checkpoint(path);
  size_t rollbacks = 0;
  for (const auto& tr : fw.trace()) rollbacks += tr.rolled_back ? 1 : 0;
  if (rollbacks > 0) {
    std::fprintf(stderr, "[maml] %zu divergence rollback(s) during training\n",
                 rollbacks);
  }
  std::printf("meta-val loss %.4f -> %.4f; checkpoint saved to %s\n",
              fw.trace().front().val_loss, fw.trace().back().val_loss,
              path.c_str());
  return 0;
}

int cmd_evaluate(const Args& args) {
  core::MetaDseFramework fw(options_from(args));
  fw.set_fault_plan(fault_plan_from(args));
  if (int rc = require_ckpt(fw, args)) return rc;
  const std::string wl = args.str("workload");
  if (wl.empty()) {
    std::fprintf(stderr, "error: --workload <name> is required\n");
    return 1;
  }
  tensor::Rng rng(args.num("seed", 2025));
  const auto evals =
      fw.evaluate(wl, args.num("tasks", 30), args.num("support", 10), 45,
                  !args.has("no-wam"), rng);
  print_reports(fw);
  std::vector<double> rmse;
  std::vector<double> mape;
  std::vector<double> ev;
  for (const auto& e : evals) {
    rmse.push_back(e.rmse);
    mape.push_back(e.mape);
    ev.push_back(e.ev);
  }
  std::printf("%s over %zu tasks (K=%ld%s):\n", wl.c_str(), evals.size(),
              args.num("support", 10), args.has("no-wam") ? ", no WAM" : "");
  std::printf("  RMSE %s\n",
              eval::format_mean_ci(eval::mean_ci(rmse)).c_str());
  std::printf("  MAPE %s\n",
              eval::format_mean_ci(eval::mean_ci(mape)).c_str());
  std::printf("  EV   %s\n", eval::format_mean_ci(eval::mean_ci(ev)).c_str());
  return 0;
}

int cmd_adapt(const Args& args) {
  core::MetaDseFramework fw(options_from(args));
  if (int rc = require_ckpt(fw, args)) return rc;
  // Faults land on run_dse's simulator leg (the framework's generator); the
  // support set below comes from a separate, always-clean generator.
  fw.set_fault_plan(fault_plan_from(args));
  const std::string wl_name = args.str("workload");
  if (wl_name.empty()) {
    std::fprintf(stderr, "error: --workload <name> is required\n");
    return 1;
  }
  const size_t K = args.num("support", 10);
  const size_t n_cand = args.num("candidates", 2000);

  // Validate every DSE knob before the expensive adaptation below, so a
  // typo fails in milliseconds rather than after the support simulations.
  const long batch_arg = args.num("predict-batch", 32);
  if (batch_arg < 1) {
    throw UsageError("--predict-batch must be >= 1 (1 = fully sequential)");
  }
  const long deadline_arg = args.num("eval-deadline-ms", 0);
  if (deadline_arg < 0) {
    throw UsageError("--eval-deadline-ms must be >= 0 (0 = no deadline)");
  }
  const long retries_arg = args.num("eval-retries", 2);
  if (retries_arg < 0) {
    throw UsageError("--eval-retries must be >= 0 (0 = single attempt)");
  }
  const long snap_arg = args.num("snapshot-period", 8);
  if (snap_arg < 1) {
    throw UsageError("--snapshot-period must be >= 1 (generations)");
  }
  const long sleep_arg = args.num("eval-sleep-ms", 0);
  if (sleep_arg < 0) {
    throw UsageError("--eval-sleep-ms must be >= 0");
  }
  const long compact_arg = args.num("journal-compact", 0);
  if (compact_arg < 0) {
    throw UsageError("--journal-compact must be >= 0 (0 = rotation off)");
  }
  if (compact_arg > 0 && !args.has("journal")) {
    throw UsageError("--journal-compact requires --journal <path> (there is "
                     "no journal to rotate)");
  }
  if (args.has("resume") && !args.has("journal")) {
    throw UsageError("--resume requires --journal <path>");
  }
  const tensor::quant::Precision precision = precision_from(args);

  core::MetaDseFramework::DseOptions dse;
  dse.precision = precision;
  dse.explorer = {.initial_samples = n_cand / 4, .iterations = n_cand * 3 / 4,
                  .seed = static_cast<uint64_t>(args.num("seed", 2025)),
                  .eval_batch = static_cast<size_t>(batch_arg)};
  dse.guard.deadline_ms = static_cast<size_t>(deadline_arg);
  dse.guard.max_retries = static_cast<size_t>(retries_arg);
  const std::string policy = args.str("degrade-policy", "ladder");
  if (policy == "ladder") {
    dse.guard.policy = explore::DegradePolicy::kLadder;
  } else if (policy == "skip") {
    dse.guard.policy = explore::DegradePolicy::kSkip;
  } else if (policy == "abort") {
    dse.guard.policy = explore::DegradePolicy::kFailFast;
  } else {
    throw UsageError("--degrade-policy must be ladder, skip, or abort (got '" +
                     policy + "')");
  }
  dse.journal_path = args.str("journal");
  dse.resume = args.has("resume");
  dse.snapshot_period = static_cast<size_t>(snap_arg);
  dse.journal_compact_after = static_cast<size_t>(compact_arg);
  // SIGINT/SIGTERM land here: the run stops at the next generation
  // boundary with its journal + snapshot flushed, and main() exits 3.
  dse.explorer.stop_check = [] { return stop_requested(); };

  // Simulate the K-budget support set, adapt, screen candidates.
  workload::SpecSuite suite;
  data::DatasetGenerator gen(fw.space());
  tensor::Rng rng(args.num("seed", 2025));
  const auto& wl = suite.by_name(wl_name);
  data::Dataset support = gen.generate(wl, K, rng);
  support.workload = wl_name;
  const auto predictor = fw.adapt_to(support);
  std::printf("adapted to %s from %zu simulations; screening %zu "
              "candidates...\n",
              wl_name.c_str(), K, n_cand);
  if (precision == tensor::quant::Precision::kInt8 &&
      predictor.model->has_quant_calibration()) {
    // Persist the adapt-time activation-calibration table alongside the
    // checkpoint so a later serving process can audit or reuse it.
    const std::string calib_path = args.str("ckpt") + ".calib";
    nn::save_calibration(predictor.model->quant_calibration(), calib_path);
    std::printf("calibration table (%zu gemms) written to %s\n",
                predictor.model->quant_calibration().size(),
                calib_path.c_str());
  }

  if (sleep_arg > 0) {
    // Chaos-drill aid: slows each live evaluation so a kill lands mid-run.
    dse.pre_eval_hook = [sleep_arg] {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_arg));
    };
  }

  const auto front = fw.run_dse(predictor, support, wl_name, dse);
  const auto& rep = fw.run_report();
  if (rep.degraded() || rep.retries > 0 || rep.resumed) {
    std::fprintf(stderr, "[dse] %s: %s\n", wl_name.c_str(),
                 rep.summary().c_str());
  }
  if (precision != tensor::quant::Precision::kFp32) {
    std::printf("precision: %s%s\n", tensor::quant::to_string(precision),
                rep.quant_contract_tripped
                    ? " requested — error contract tripped, ran fp32"
                    : " (error contract held)");
  }

  // Machine-readable front for bitwise comparison across interrupted and
  // uninterrupted runs (hexfloat round-trips doubles exactly).
  const std::string front_out = args.str("front-out");
  if (!front_out.empty()) {
    std::FILE* f = std::fopen(front_out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "error: cannot write '%s'\n", front_out.c_str());
      return 1;
    }
    for (const auto& e : front.entries()) {
      std::fprintf(f, "%llu %a %a\n",
                   static_cast<unsigned long long>(fw.space().encode(e.config)),
                   e.objective.ipc, e.objective.power);
    }
    std::fclose(f);
  }

  std::printf("predicted Pareto front (%zu points), validated in the "
              "simulator:\n",
              front.size());
  eval::TextTable t({"pred IPC", "sim IPC", "sim power"});
  size_t shown = 0;
  for (const auto& e : front.entries()) {
    if (++shown > 12) break;
    const auto [ipc, power] = gen.evaluate(e.config, wl);
    t.add_row({eval::fmt(e.objective.ipc), eval::fmt(ipc),
               eval::fmt(power, 2)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}

/// Long-lived multi-session serving: N replicated predictors behind a
/// bounded admission queue. Each session is one journaled DSE run over a
/// test-split workload; finished sessions publish their front atomically to
/// "<journal-dir>/front_<id>.txt". A SIGTERM/SIGINT (or a kill -9, via the
/// per-session journals) mid-traffic is recoverable: rerun with --resume to
/// finish the missing sessions bitwise-identically.
int cmd_serve(const Args& args) {
  core::MetaDseFramework fw(options_from(args));

  const std::string journal_dir = args.str("journal-dir");
  if (journal_dir.empty()) {
    throw UsageError("serve requires --journal-dir <dir> (per-session "
                     "journals and published fronts live there)");
  }
  const long sessions_arg = args.num("sessions", 8);
  const long replicas_arg = args.num("replicas", 2);
  const long workers_arg = args.num("workers", replicas_arg);
  const long queue_arg = args.num("queue-capacity", 16);
  const long arrival_arg = args.num("arrival-ms", 0);
  const long deadline_arg = args.num("session-deadline-ms", 0);
  const long support_arg = args.num("support", 10);
  const long cand_arg = args.num("candidates", 200);
  const long sleep_arg = args.num("eval-sleep-ms", 0);
  const long batch_arg = args.num("predict-batch", 16);
  const long coalesce_arg = args.num("coalesce-max-batch", 0);
  const long coalesce_ticks_arg = args.num("coalesce-wait-ticks", 2);
  const long compact_arg = args.num("journal-compact", 0);
  const long rebuild_limit_arg = args.num("rebuild-limit", 0);
  const long rebuild_window_arg = args.num("rebuild-window-ms", 60000);
  // One precise error per degenerate knob, so a typo names its own flag
  // instead of a lumped "something must be >= 1" guess.
  if (sessions_arg < 1) {
    throw UsageError("serve: --sessions must be >= 1 (got " +
                     std::to_string(sessions_arg) + ")");
  }
  if (replicas_arg < 1) {
    throw UsageError("serve: --replicas must be >= 1 — a pool with zero "
                     "replicas can never dispatch a session (got " +
                     std::to_string(replicas_arg) + ")");
  }
  if (workers_arg < 1) {
    throw UsageError("serve: --workers must be >= 1 (got " +
                     std::to_string(workers_arg) + ")");
  }
  if (queue_arg < 1) {
    throw UsageError("serve: --queue-capacity must be >= 1 (got " +
                     std::to_string(queue_arg) + ")");
  }
  if (support_arg < 1) {
    throw UsageError("serve: --support must be >= 1 (got " +
                     std::to_string(support_arg) + ")");
  }
  if (cand_arg < 4) {
    throw UsageError("serve: --candidates must be >= 4 (got " +
                     std::to_string(cand_arg) + ")");
  }
  if (batch_arg < 1) {
    throw UsageError("serve: --predict-batch must be >= 1 (1 = fully "
                     "sequential; got " + std::to_string(batch_arg) + ")");
  }
  if (coalesce_arg < 0) {
    throw UsageError("serve: --coalesce-max-batch must be >= 0 (0 = "
                     "coalescing off; got " + std::to_string(coalesce_arg) +
                     ")");
  }
  // --coalesce-wait-ticks only means anything with coalescing on; a 0-tick
  // coalescer would flush every tick and never assemble a batch.
  if (coalesce_arg > 0 && coalesce_ticks_arg < 1) {
    throw UsageError("serve: --coalesce-wait-ticks must be >= 1 when "
                     "coalescing is enabled (--coalesce-max-batch > 0); got " +
                     std::to_string(coalesce_ticks_arg));
  }
  if (coalesce_arg == 0 && args.has("coalesce-wait-ticks")) {
    throw UsageError("serve: --coalesce-wait-ticks has no effect without "
                     "--coalesce-max-batch > 0 (coalescing is off)");
  }
  if (arrival_arg < 0) {
    throw UsageError("serve: --arrival-ms must be >= 0 (got " +
                     std::to_string(arrival_arg) + ")");
  }
  if (deadline_arg < 0) {
    throw UsageError("serve: --session-deadline-ms must be >= 0 (0 = "
                     "unlimited; got " + std::to_string(deadline_arg) + ")");
  }
  if (sleep_arg < 0) {
    throw UsageError("serve: --eval-sleep-ms must be >= 0 (got " +
                     std::to_string(sleep_arg) + ")");
  }
  if (compact_arg < 0) {
    throw UsageError("serve: --journal-compact must be >= 0 (0 = rotation "
                     "off; got " + std::to_string(compact_arg) + ")");
  }
  if (rebuild_limit_arg < 0) {
    throw UsageError("serve: --rebuild-limit must be >= 0 (0 = never "
                     "quarantine; got " + std::to_string(rebuild_limit_arg) +
                     ")");
  }
  if (rebuild_window_arg < 1) {
    throw UsageError("serve: --rebuild-window-ms must be >= 1 (got " +
                     std::to_string(rebuild_window_arg) + ")");
  }
  const tensor::quant::Precision precision = precision_from(args);
  const bool chaos_drill = args.has("chaos-drill");
  if (chaos_drill && sessions_arg < 3) {
    throw UsageError("serve: --chaos-drill needs --sessions >= 3 (the "
                     "canned plan scopes faults by session id % 3)");
  }

  serve::ServeOptions sopts;
  sopts.replicas = static_cast<size_t>(replicas_arg);
  sopts.workers = static_cast<size_t>(workers_arg);
  sopts.queue_capacity = static_cast<size_t>(queue_arg);
  sopts.session_deadline_ms = static_cast<size_t>(deadline_arg);
  sopts.retry_after_ms = static_cast<size_t>(args.num("retry-after-ms", 50));
  // Load-aware degradation changes a session's archive, so it defaults OFF
  // here (fronts must be reproducible across reference and resume runs);
  // opt in with --degrade-at F < 1.
  sopts.degrade_at = args.real("degrade-at", 1.0);
  sopts.watchdog_period_ms =
      static_cast<size_t>(args.num("watchdog-ms", 100));
  sopts.wedged_after_ms =
      static_cast<size_t>(args.num("wedged-after-ms", 0));
  sopts.replica_rebuild_limit = static_cast<size_t>(rebuild_limit_arg);
  sopts.replica_rebuild_window_ms = static_cast<size_t>(rebuild_window_arg);
  // Wedge detection rides on the watchdog: declaring a threshold the
  // watchdog can never scan for is a configuration bug, not a choice.
  if (sopts.wedged_after_ms > 0 && sopts.watchdog_period_ms == 0) {
    throw UsageError("serve: --wedged-after-ms needs a running watchdog "
                     "(--watchdog-ms must be > 0)");
  }
  if (sopts.wedged_after_ms > 0 &&
      sopts.wedged_after_ms < sopts.watchdog_period_ms) {
    throw UsageError("serve: --wedged-after-ms (" +
                     std::to_string(sopts.wedged_after_ms) +
                     ") is below the watchdog scan period (--watchdog-ms " +
                     std::to_string(sopts.watchdog_period_ms) +
                     "); a wedge shorter than one scan cannot be detected "
                     "on time — raise it or lower --watchdog-ms");
  }
  const std::string admission = args.str("admission", "block");
  if (admission == "block") {
    sopts.admission = serve::AdmissionPolicy::kBlock;
  } else if (admission == "reject") {
    sopts.admission = serve::AdmissionPolicy::kReject;
  } else if (admission == "shed") {
    sopts.admission = serve::AdmissionPolicy::kShedOldest;
  } else {
    throw UsageError("--admission must be block, reject, or shed (got '" +
                     admission + "')");
  }

  // Every knob is validated; only now pay for the checkpoint load.
  if (int rc = require_ckpt(fw, args)) return rc;

  std::filesystem::create_directories(journal_dir);
  // A crash between tmp write and rename leaves "*.tmp" orphans; sweep them
  // so the directory never accumulates dead bytes across restarts. The
  // checkpoint's directory gets the same sweep: calibration sidecars
  // ("<ckpt>.<workload>.calib") are published there with the same
  // tmp+rename protocol, so a crash can orphan tmp files there too.
  const size_t orphans = core::io::remove_orphan_tmp_files(journal_dir);
  if (orphans > 0) {
    std::fprintf(stderr, "[serve] swept %zu orphaned .tmp file(s) from %s\n",
                 orphans, journal_dir.c_str());
  }
  {
    std::string ckpt_dir =
        std::filesystem::path(args.str("ckpt")).parent_path().string();
    if (ckpt_dir.empty()) ckpt_dir = ".";
    if (!std::filesystem::equivalent(std::filesystem::path(ckpt_dir),
                                     std::filesystem::path(journal_dir))) {
      const size_t ckpt_orphans = core::io::remove_orphan_tmp_files(ckpt_dir);
      if (ckpt_orphans > 0) {
        std::fprintf(stderr,
                     "[serve] swept %zu orphaned .tmp file(s) from %s\n",
                     ckpt_orphans, ckpt_dir.c_str());
      }
    }
  }

  // --chaos-drill: arm a canned, scoped chaos plan against this serve run.
  // Sessions with id % 3 == 1 lose disk (ENOSPC journal bursts + a failed
  // snapshot), id % 3 == 2 wedge a replica once, and one plan compile fails
  // process-wide (value-safe: the eager fallback is bitwise identical).
  // Sessions with id % 3 == 0 are outside every scoped rule — provably
  // untouched. After the run the chaos report is printed and the exit code
  // is nonzero unless every armed point actually fired.
  if (chaos_drill) {
    if (sopts.wedged_after_ms == 0) {
      // The drill injects a wedge; without detection it would hang forever.
      sopts.watchdog_period_ms = 50;
      sopts.wedged_after_ms = 300;
    }
    auto& chaos = core::chaos::ChaosEngine::instance();
    using Rule = core::chaos::FaultRule;
    Rule enospc;
    enospc.fault = {core::io::FaultKind::kEnospc, 0};
    enospc.schedule = Rule::Schedule::kEveryNth;
    enospc.n = 5;
    enospc.max_fires = 40;
    enospc.scope_mod = 3;
    enospc.scope_match = 1;
    chaos.arm("journal.write", enospc);
    Rule snap;
    snap.fault = {core::io::FaultKind::kEio, 0};
    snap.schedule = Rule::Schedule::kNthHit;
    snap.n = 1;
    snap.scope_mod = 3;
    snap.scope_match = 1;
    chaos.arm("snapshot.write", snap);
    Rule wedge;
    wedge.schedule = Rule::Schedule::kNthHit;
    wedge.n = 2;
    wedge.scope_mod = 3;
    wedge.scope_match = 2;
    chaos.arm("replica.wedge", wedge);
    Rule plan_fault;
    plan_fault.schedule = Rule::Schedule::kNthHit;
    plan_fault.n = 1;
    chaos.arm("plan.compile", plan_fault);
    std::fprintf(stderr, "[serve] chaos drill armed: journal.write, "
                 "snapshot.write, replica.wedge, plan.compile\n");
  }

  // Serving workloads: --workload W, or the whole test split round-robin.
  workload::SpecSuite suite;
  std::vector<std::string> names;
  if (args.has("workload")) {
    names.push_back(args.str("workload"));
  } else {
    names = suite.names(workload::SplitRole::kTest);
  }

  serve::MetaDseSessionEngine::Options eopts;
  eopts.front_dir = journal_dir;
  eopts.dse.precision = precision;
  eopts.dse.explorer = {
      .initial_samples = static_cast<size_t>(cand_arg) / 4,
      .iterations = static_cast<size_t>(cand_arg) * 3 / 4,
      .eval_batch = static_cast<size_t>(batch_arg)};
  eopts.dse.guard.deadline_ms =
      static_cast<size_t>(args.num("eval-deadline-ms", 0));
  eopts.dse.snapshot_period =
      static_cast<size_t>(args.num("snapshot-period", 8));
  eopts.dse.journal_compact_after = static_cast<size_t>(compact_arg);
  if (sleep_arg > 0) {
    // Chaos-drill aid: slows each live evaluation so kills land mid-run
    // and deadlines/watchdogs have something to trip on.
    eopts.dse.pre_eval_hook = [sleep_arg] {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_arg));
    };
  }
  if (coalesce_arg > 0) {
    // Cross-session batch coalescing: concurrent sessions' surrogate
    // queries fuse into one forward. Safe to flip on freely — per-row
    // results are bitwise-independent of batch composition, so fronts and
    // journals match the uncoalesced run exactly.
    serve::CoalesceOptions copts;
    copts.max_batch = static_cast<size_t>(coalesce_arg);
    copts.wait_ticks = static_cast<size_t>(coalesce_ticks_arg);
    eopts.coalesce = copts;
  }

  // Support sets are simulated once per workload (clean generator, fixed
  // order) and each workload is adapted once per replica.
  serve::MetaDseSessionEngine engine(fw, sopts.replicas, eopts);
  const uint64_t seed = static_cast<uint64_t>(args.num("seed", 2025));
  tensor::Rng rng(seed);
  data::DatasetGenerator gen(fw.space());
  std::map<std::string, data::Dataset> supports;
  for (const auto& name : names) {
    data::Dataset support =
        gen.generate(suite.by_name(name), static_cast<size_t>(support_arg),
                     rng);
    support.workload = name;
    supports[name] = std::move(support);
  }
  for (const auto& [name, support] : supports) {
    engine.add_workload(name, support);
    if (precision == tensor::quant::Precision::kInt8) {
      // Persist each workload's adapt-time calibration table next to the
      // checkpoint (atomic tmp+rename, CRC'd — same discipline as the
      // checkpoint itself).
      const auto& table = engine.workload_calibration(name);
      if (!table.empty()) {
        nn::save_calibration(table,
                             args.str("ckpt") + "." + name + ".calib");
      }
    }
  }
  std::printf("serving %zu workload(s) on %zu replica(s), %zu worker(s), "
              "queue %zu (%s)\n",
              names.size(), sopts.replicas, sopts.workers,
              sopts.queue_capacity, serve::to_string(sopts.admission));

  serve::ServerCore server(sopts, engine.executor());
  if (engine.coalescing()) {
    server.set_coalesce_stats([&engine] { return engine.coalesce_stats(); });
  }
  server.set_plan_stats([&engine] { return engine.plan_stats(); });
  // Self-healing: a condemned replica is rebuilt warm (one adapt_to per
  // workload off the shared pretrained model) before rejoining dispatch.
  server.set_replica_rebuilder([&engine](size_t replica) {
    engine.rebuild_replica(replica);
    return true;
  });

  // Open-loop (or --arrival-ms-paced) submission: session i targets
  // workload i mod names.size() with seed base+i — the same request stream
  // every run, so a resume pass regenerates exactly the missing sessions.
  const bool resume = args.has("resume");
  std::vector<std::future<serve::SessionResult>> futures;
  size_t skipped = 0;
  for (long i = 0; i < sessions_arg && !stop_requested(); ++i) {
    const uint64_t id = static_cast<uint64_t>(i);
    if (resume && std::filesystem::exists(engine.front_path(id))) {
      ++skipped;  // already published by a previous run
      continue;
    }
    serve::SessionRequest req;
    req.id = id;
    req.workload = names[static_cast<size_t>(i) % names.size()];
    req.seed = seed + id;
    req.journal_path =
        journal_dir + "/session_" + std::to_string(id) + ".journal";
    req.resume = resume;
    futures.push_back(server.submit(std::move(req)));
    if (arrival_arg > 0 && i + 1 < sessions_arg) {
      std::this_thread::sleep_for(std::chrono::milliseconds(arrival_arg));
    }
  }

  // Drain on a clean run; flush-and-interrupt on a signal (journals and
  // snapshots are synced at the next generation boundary, exit 3). The
  // drain is polled, not blocking, so a signal arriving mid-drain still
  // escalates to an immediate stop.
  for (;;) {
    if (stop_requested()) {
      server.stop(serve::ServerCore::StopMode::kNow);
      break;
    }
    bool all_done = true;
    for (auto& fut : futures) {
      if (fut.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      server.stop(serve::ServerCore::StopMode::kDrain);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  const bool verbose = args.has("verbose");
  for (auto& fut : futures) {
    const serve::SessionResult r = fut.get();
    if (verbose || r.status != serve::SessionStatus::kOk) {
      std::fprintf(stderr, "[serve] session %llu: %s%s (%zu ms queued, "
                   "%zu ms service)%s%s\n",
                   static_cast<unsigned long long>(r.id),
                   serve::to_string(r.status), r.degraded ? " (degraded)" : "",
                   r.queued_ms, r.service_ms,
                   r.detail.empty() ? "" : " — ", r.detail.c_str());
    }
  }
  const serve::ServerStats stats = server.stats();
  std::printf("sessions: %zu submitted, %zu ok (%zu degraded), %zu rejected, "
              "%zu shed, %zu deadline, %zu stopped, %zu failed, %zu skipped "
              "(already published)\n",
              stats.submitted, stats.ok, stats.degraded, stats.rejected,
              stats.shed, stats.deadline, stats.stopped, stats.failed,
              skipped);
  std::printf("queue high water %zu/%zu, watchdog trips %zu\n",
              stats.queue_high_water, sopts.queue_capacity,
              stats.watchdog_trips);
  if (stats.replicas_condemned > 0) {
    std::printf("replicas: %zu condemned -> %zu rebuilt, %zu quarantined, "
                "%zu pending\n",
                stats.replicas_condemned, stats.replicas_rebuilt,
                stats.replicas_quarantined, stats.replicas_pending_rebuild);
  }
  std::printf("plans: %zu compiled, %zu cache hits, %zu fallbacks, "
              "%zu static bytes\n",
              stats.plans_compiled, stats.plan_cache_hits,
              stats.plan_fallbacks, stats.plan_static_bytes);
  if (precision != tensor::quant::Precision::kFp32) {
    std::printf("quant: tier %s, %zu sessions served quantized, "
                "%zu contract fallbacks to fp32\n",
                tensor::quant::to_string(precision), stats.quant_sessions,
                stats.quant_fallbacks);
  }
  if (engine.coalescing()) {
    const serve::CoalesceStats cs = engine.coalesce_stats();
    std::printf("coalesce: %zu fused batches, %zu points (mean %.1f "
                "points/batch, max %zu), %zu cancelled\n",
                cs.coalesced_batches, cs.coalesced_points,
                cs.mean_batch_points(), cs.max_batch_points,
                cs.cancelled_points);
  }
  if (chaos_drill) {
    auto& chaos = core::chaos::ChaosEngine::instance();
    std::printf("%s", chaos.summary().c_str());
    if (!chaos.all_armed_fired()) {
      std::fprintf(stderr, "[serve] chaos drill FAILED: an armed fault "
                   "point never fired (plan not exercised)\n");
      return 1;
    }
    std::printf("chaos drill: every armed fault point fired\n");
  }
  if (stop_requested()) {
    std::fprintf(stderr, "[serve] interrupted by signal %d; journals "
                 "flushed — rerun with --resume to finish\n",
                 static_cast<int>(g_signal));
    return kExitStopped;
  }
  return stats.failed == 0 ? 0 : 1;
}

/// Compiles the eval-mode predict plan for the paper's predictor at the
/// requested batch size and prints its registry key, op schedule, buffer
/// reuse map, and static footprint. Plan structure depends only on shapes,
/// never on weights, so a fresh model dumps the exact program every trained
/// replica of the same architecture shares.
int cmd_plan_dump(const Args& args) {
  const long batch_arg = args.num("batch", 1);
  if (batch_arg < 1) throw UsageError("plan-dump: --batch must be >= 1");
  const size_t batch = static_cast<size_t>(batch_arg);
  const bool fuse = !args.has("no-fuse");
  const tensor::quant::Precision precision = precision_from(args);
  core::FrameworkOptions opts;
  tensor::Rng rng(static_cast<uint64_t>(args.num("seed", 2025)));
  nn::TransformerRegressor model(opts.predictor, rng);
  const std::string key =
      nn::plan::predict_plan_key(model, batch, fuse, precision);
  std::string why;
  auto prog = nn::plan::compile_predict(model, batch, fuse, &why);
  if (!prog) {
    std::fprintf(stderr, "plan-dump: unplannable: %s\n", why.c_str());
    return 1;
  }
  std::printf("plan key: %s\n", key.c_str());
  std::ostringstream os;
  prog->dump(os, precision);
  std::fputs(os.str().c_str(), stdout);
  std::printf("fused instructions: %zu of %zu\n", prog->fused_instrs,
              prog->instrs.size());
  std::printf("peak static bytes: %zu (arena %zu floats, consts %zu floats)\n",
              prog->static_bytes(), prog->arena_floats, prog->consts.size());
  return 0;
}

int cmd_similarity(const Args& args) {
  workload::SpecSuite suite;
  data::DatasetGenerator gen(arch::DesignSpace::table1());
  tensor::Rng rng(args.num("seed", 2025));
  const auto configs = arch::DesignSpace::table1().sample_latin_hypercube(
      args.num("samples", 300), rng);
  std::vector<std::string> names;
  std::vector<std::vector<float>> labels;
  for (const auto& wl : suite.workloads()) {
    std::vector<float> y;
    for (const auto& c : configs) {
      y.push_back(static_cast<float>(gen.evaluate(c, wl).first));
    }
    names.push_back(wl.name());
    labels.push_back(std::move(y));
  }
  std::vector<std::vector<double>> d(names.size(),
                                     std::vector<double>(names.size()));
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = 0; j < names.size(); ++j) {
      d[i][j] = eval::wasserstein1(labels[i], labels[j]);
    }
  }
  std::printf("%s", eval::render_heatmap(names, d, 3).c_str());
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "metadse — few-shot meta-learning for cross-workload CPU DSE\n"
      "commands:\n"
      "  info                          design space & workload suite\n"
      "  generate --workload W --samples N --out F.csv\n"
      "  pretrain --ckpt F [--epochs E --tasks T --pretrain-support S\n"
      "                     --no-autosave]\n"
      "  evaluate --ckpt F --workload W [--tasks N --support K --no-wam]\n"
      "  adapt    --ckpt F --workload W [--support K --candidates N\n"
      "                     --predict-batch B]  (B = surrogate queries per\n"
      "                     batched forward; 1 = fully sequential)\n"
      "           durability: --journal F.journal [--resume\n"
      "                     --snapshot-period G --journal-compact N\n"
      "                     --front-out F.txt]  (N > 0 rotates the journal\n"
      "                     against the latest snapshot every N records)\n"
      "           containment: --eval-deadline-ms D --eval-retries R\n"
      "                     --degrade-policy ladder|skip|abort\n"
      "                     --eval-sleep-ms S (chaos drills)\n"
      "           precision: --precision fp32|bf16|int8  (quantized predict\n"
      "                     tier; int8 writes <ckpt>.calib and both tiers\n"
      "                     fall back to fp32 if the rank-correlation error\n"
      "                     contract trips — DESIGN.md §15)\n"
      "  plan-dump [--batch B --no-fuse --precision P]\n"
      "                     compiled predict-plan schedule, per-instruction\n"
      "                     dtypes, buffer reuse map and static footprint\n"
      "  serve    --ckpt F --journal-dir D [--sessions N --replicas R\n"
      "                     --workers W --queue-capacity Q\n"
      "                     --admission block|reject|shed --arrival-ms A\n"
      "                     --session-deadline-ms D --degrade-at F\n"
      "                     --watchdog-ms P --wedged-after-ms W\n"
      "                     --workload W --support K --candidates N\n"
      "                     --eval-sleep-ms S --resume\n"
      "                     --coalesce-max-batch B --coalesce-wait-ticks T\n"
      "                     --journal-compact N --rebuild-limit L\n"
      "                     --rebuild-window-ms W --chaos-drill\n"
      "                     --precision fp32|bf16|int8]\n"
      "           (multi-session serving; fronts publish to\n"
      "            <journal-dir>/front_<id>.txt; exit 3 = interrupted by\n"
      "            signal, journals flushed, rerun with --resume;\n"
      "            B > 0 fuses concurrent sessions' surrogate batches —\n"
      "            fronts stay bitwise-identical to B = 0;\n"
      "            L > 0 quarantines a replica rebuilt > L times in W ms;\n"
      "            --chaos-drill arms a canned scoped fault plan and fails\n"
      "            unless every armed fault point fired)\n"
      "  similarity [--samples N]\n"
      "common flags: --seed S, --dataset-size N, --threads N (0 = auto),\n"
      "  --verbose\n"
      "fault injection (generate/pretrain/evaluate/adapt): --inject-fail R\n"
      "  --inject-timeout R --inject-nan R --inject-garbage R\n"
      "  --inject-persistent R --fault-seed S  (rates in [0,1])\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  install_signal_handlers();
  try {
    Args args(argc, argv, 2);
    apply_threads(args);
    if (cmd == "info") return cmd_info();
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "pretrain") return cmd_pretrain(args);
    if (cmd == "evaluate") return cmd_evaluate(args);
    if (cmd == "adapt") return cmd_adapt(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "plan-dump") return cmd_plan_dump(args);
    if (cmd == "similarity") return cmd_similarity(args);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n\n", e.what());
    usage();
    return 2;
  } catch (const explore::StopRequested& e) {
    // Cooperative signal stop: durable state was flushed before the throw.
    std::fprintf(stderr, "stopped: %s\n", e.what());
    return kExitStopped;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", cmd.c_str());
  usage();
  return 1;
}
