// metadse — command-line front-end to the MetaDSE pipeline.
//
//   metadse info                               design space + workload suite
//   metadse generate --workload W --samples N --out F.csv
//   metadse pretrain --ckpt F [--epochs E --tasks T --support S]
//   metadse evaluate --ckpt F --workload W [--tasks N --support K --no-wam]
//   metadse adapt    --ckpt F --workload W [--support K --candidates N]
//   metadse similarity [--samples N]
//
// Every command is deterministic given --seed (default 2025).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>

#include "baselines/trendse.hpp"
#include "core/metadse.hpp"
#include "core/parallel.hpp"
#include "eval/metrics.hpp"
#include "eval/table.hpp"
#include "explore/explorer.hpp"

using namespace metadse;

namespace {

/// A malformed command line: main() prints the message plus usage and exits
/// nonzero (distinct from runtime errors, which skip the usage dump).
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

/// Minimal --key value / --flag argument parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw UsageError("unexpected argument '" + key + "'");
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[key] = argv[++i];
      } else {
        kv_[key] = "";
      }
    }
  }

  bool has(const std::string& k) const { return kv_.count(k) > 0; }
  std::string str(const std::string& k, const std::string& dflt = "") const {
    auto it = kv_.find(k);
    return it == kv_.end() ? dflt : it->second;
  }
  long num(const std::string& k, long dflt) const {
    auto it = kv_.find(k);
    if (it == kv_.end()) return dflt;
    const char* s = it->second.c_str();
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(s, &end, 10);
    if (errno != 0 || end == s || *end != '\0') {
      throw UsageError("invalid integer for --" + k + ": '" + it->second +
                       "'");
    }
    return v;
  }
  double real(const std::string& k, double dflt) const {
    auto it = kv_.find(k);
    if (it == kv_.end()) return dflt;
    const char* s = it->second.c_str();
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(s, &end);
    if (errno != 0 || end == s || *end != '\0') {
      throw UsageError("invalid number for --" + k + ": '" + it->second +
                       "'");
    }
    return v;
  }

 private:
  std::map<std::string, std::string> kv_;
};

/// Fault-injection knobs shared by generate/pretrain/evaluate: lets any
/// command rehearse against an unreliable label farm.
sim::FaultPlan fault_plan_from(const Args& args) {
  sim::FaultPlan plan;
  plan.fail_rate = args.real("inject-fail", 0.0);
  plan.timeout_rate = args.real("inject-timeout", 0.0);
  plan.nan_rate = args.real("inject-nan", 0.0);
  plan.garbage_rate = args.real("inject-garbage", 0.0);
  plan.persistent_fraction = args.real("inject-persistent", 0.0);
  plan.seed = static_cast<uint64_t>(args.num("fault-seed", 0xFA17));
  return plan;
}

void print_reports(const core::MetaDseFramework& fw) {
  for (const auto& [wl, rep] : fw.generation_reports()) {
    if (rep.degraded() || rep.retries > 0) {
      std::fprintf(stderr, "[generate] %s: %s\n", wl.c_str(),
                   rep.summary().c_str());
    }
  }
}

/// Applies the global --threads knob (0 or absent-value = hardware
/// concurrency; 1 = the serial code path). Results are bitwise identical
/// for every width — threads only change wall-clock.
void apply_threads(const Args& args) {
  if (!args.has("threads")) return;
  const long v = args.num("threads", 0);
  if (v < 0) {
    throw UsageError("--threads must be >= 0 (0 = hardware concurrency)");
  }
  metadse::set_threads(static_cast<size_t>(v));
}

core::FrameworkOptions options_from(const Args& args) {
  core::FrameworkOptions o;
  o.seed = args.num("seed", 2025);
  o.samples_per_workload = args.num("dataset-size", 1200);
  o.maml.epochs = args.num("epochs", 6);
  o.maml.tasks_per_workload = args.num("tasks", 40);
  o.maml.support = args.num("pretrain-support", 5);
  o.maml.val_tasks_per_workload = args.num("val-tasks", 6);
  o.maml.verbose = args.has("verbose");
  return o;
}

int require_ckpt(core::MetaDseFramework& fw, const Args& args) {
  const std::string path = args.str("ckpt");
  if (path.empty()) {
    std::fprintf(stderr, "error: --ckpt <file> is required\n");
    return 1;
  }
  if (!fw.load_checkpoint(path)) {
    std::fprintf(stderr,
                 "error: checkpoint '%s' not found (run `metadse pretrain "
                 "--ckpt %s` first)\n",
                 path.c_str(), path.c_str());
    return 1;
  }
  return 0;
}

int cmd_info() {
  const auto& space = arch::DesignSpace::table1();
  std::printf("design space: %zu parameters, %.3e points\n\n",
              space.num_params(), space.total_points());
  eval::TextTable t({"parameter", "candidates", "range"});
  for (const auto& s : space.specs()) {
    t.add_row({s.name, std::to_string(s.cardinality()),
               eval::fmt(s.values.front(), 1) + " .. " +
                   eval::fmt(s.values.back(), 1)});
  }
  std::printf("%s\n", t.render().c_str());

  workload::SpecSuite suite;
  std::printf("workload suite (%zu workloads):\n", suite.size());
  for (auto role : {workload::SplitRole::kTrain,
                    workload::SplitRole::kValidation,
                    workload::SplitRole::kTest}) {
    const char* name = role == workload::SplitRole::kTrain ? "train"
                       : role == workload::SplitRole::kValidation
                           ? "validation"
                           : "test";
    std::printf("  %-10s:", name);
    for (const auto& w : suite.names(role)) std::printf(" %s", w.c_str());
    std::printf("\n");
  }
  return 0;
}

int cmd_generate(const Args& args) {
  const std::string wl = args.str("workload");
  const std::string out = args.str("out");
  if (wl.empty() || out.empty()) {
    throw UsageError(
        "generate requires --workload W --samples N --out file.csv");
  }
  workload::SpecSuite suite;
  data::DatasetGenerator gen(arch::DesignSpace::table1());
  gen.set_fault_plan(fault_plan_from(args));
  tensor::Rng rng(args.num("seed", 2025));
  data::GenerationReport report;
  const auto ds = gen.generate(suite.by_name(wl), args.num("samples", 1000),
                               rng, /*latin_hypercube=*/true, &report);
  data::write_csv(ds, arch::DesignSpace::table1(), out);
  std::printf("wrote %zu labelled design points for %s to %s (%s)\n",
              ds.size(), wl.c_str(), out.c_str(), report.summary().c_str());
  return 0;
}

int cmd_pretrain(const Args& args) {
  const std::string path = args.str("ckpt");
  if (path.empty()) {
    throw UsageError("pretrain requires --ckpt file "
                     "[--epochs E --tasks T --pretrain-support S]");
  }
  auto opts = options_from(args);
  // Auto-checkpoint into the target file after every epoch so a killed run
  // resumes from its last completed epoch (--no-autosave restores the old
  // always-retrain behaviour).
  if (!args.has("no-autosave")) opts.autosave_path = path;
  core::MetaDseFramework fw(opts);
  fw.set_fault_plan(fault_plan_from(args));
  std::printf("meta-training (%zu epochs x %zu tasks/workload)...\n",
              fw.options().maml.epochs, fw.options().maml.tasks_per_workload);
  fw.pretrain();
  print_reports(fw);
  fw.save_checkpoint(path);
  size_t rollbacks = 0;
  for (const auto& tr : fw.trace()) rollbacks += tr.rolled_back ? 1 : 0;
  if (rollbacks > 0) {
    std::fprintf(stderr, "[maml] %zu divergence rollback(s) during training\n",
                 rollbacks);
  }
  std::printf("meta-val loss %.4f -> %.4f; checkpoint saved to %s\n",
              fw.trace().front().val_loss, fw.trace().back().val_loss,
              path.c_str());
  return 0;
}

int cmd_evaluate(const Args& args) {
  core::MetaDseFramework fw(options_from(args));
  fw.set_fault_plan(fault_plan_from(args));
  if (int rc = require_ckpt(fw, args)) return rc;
  const std::string wl = args.str("workload");
  if (wl.empty()) {
    std::fprintf(stderr, "error: --workload <name> is required\n");
    return 1;
  }
  tensor::Rng rng(args.num("seed", 2025));
  const auto evals =
      fw.evaluate(wl, args.num("tasks", 30), args.num("support", 10), 45,
                  !args.has("no-wam"), rng);
  print_reports(fw);
  std::vector<double> rmse;
  std::vector<double> mape;
  std::vector<double> ev;
  for (const auto& e : evals) {
    rmse.push_back(e.rmse);
    mape.push_back(e.mape);
    ev.push_back(e.ev);
  }
  std::printf("%s over %zu tasks (K=%ld%s):\n", wl.c_str(), evals.size(),
              args.num("support", 10), args.has("no-wam") ? ", no WAM" : "");
  std::printf("  RMSE %s\n",
              eval::format_mean_ci(eval::mean_ci(rmse)).c_str());
  std::printf("  MAPE %s\n",
              eval::format_mean_ci(eval::mean_ci(mape)).c_str());
  std::printf("  EV   %s\n", eval::format_mean_ci(eval::mean_ci(ev)).c_str());
  return 0;
}

int cmd_adapt(const Args& args) {
  core::MetaDseFramework fw(options_from(args));
  if (int rc = require_ckpt(fw, args)) return rc;
  // Faults land on run_dse's simulator leg (the framework's generator); the
  // support set below comes from a separate, always-clean generator.
  fw.set_fault_plan(fault_plan_from(args));
  const std::string wl_name = args.str("workload");
  if (wl_name.empty()) {
    std::fprintf(stderr, "error: --workload <name> is required\n");
    return 1;
  }
  const size_t K = args.num("support", 10);
  const size_t n_cand = args.num("candidates", 2000);

  // Validate every DSE knob before the expensive adaptation below, so a
  // typo fails in milliseconds rather than after the support simulations.
  const long batch_arg = args.num("predict-batch", 32);
  if (batch_arg < 1) {
    throw UsageError("--predict-batch must be >= 1 (1 = fully sequential)");
  }
  const long deadline_arg = args.num("eval-deadline-ms", 0);
  if (deadline_arg < 0) {
    throw UsageError("--eval-deadline-ms must be >= 0 (0 = no deadline)");
  }
  const long retries_arg = args.num("eval-retries", 2);
  if (retries_arg < 0) {
    throw UsageError("--eval-retries must be >= 0 (0 = single attempt)");
  }
  const long snap_arg = args.num("snapshot-period", 8);
  if (snap_arg < 1) {
    throw UsageError("--snapshot-period must be >= 1 (generations)");
  }
  const long sleep_arg = args.num("eval-sleep-ms", 0);
  if (sleep_arg < 0) {
    throw UsageError("--eval-sleep-ms must be >= 0");
  }
  if (args.has("resume") && !args.has("journal")) {
    throw UsageError("--resume requires --journal <path>");
  }

  core::MetaDseFramework::DseOptions dse;
  dse.explorer = {.initial_samples = n_cand / 4, .iterations = n_cand * 3 / 4,
                  .seed = static_cast<uint64_t>(args.num("seed", 2025)),
                  .eval_batch = static_cast<size_t>(batch_arg)};
  dse.guard.deadline_ms = static_cast<size_t>(deadline_arg);
  dse.guard.max_retries = static_cast<size_t>(retries_arg);
  const std::string policy = args.str("degrade-policy", "ladder");
  if (policy == "ladder") {
    dse.guard.policy = explore::DegradePolicy::kLadder;
  } else if (policy == "skip") {
    dse.guard.policy = explore::DegradePolicy::kSkip;
  } else if (policy == "abort") {
    dse.guard.policy = explore::DegradePolicy::kFailFast;
  } else {
    throw UsageError("--degrade-policy must be ladder, skip, or abort (got '" +
                     policy + "')");
  }
  dse.journal_path = args.str("journal");
  dse.resume = args.has("resume");
  dse.snapshot_period = static_cast<size_t>(snap_arg);

  // Simulate the K-budget support set, adapt, screen candidates.
  workload::SpecSuite suite;
  data::DatasetGenerator gen(fw.space());
  tensor::Rng rng(args.num("seed", 2025));
  const auto& wl = suite.by_name(wl_name);
  data::Dataset support = gen.generate(wl, K, rng);
  support.workload = wl_name;
  const auto predictor = fw.adapt_to(support);
  std::printf("adapted to %s from %zu simulations; screening %zu "
              "candidates...\n",
              wl_name.c_str(), K, n_cand);

  if (sleep_arg > 0) {
    // Chaos-drill aid: slows each live evaluation so a kill lands mid-run.
    dse.pre_eval_hook = [sleep_arg] {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_arg));
    };
  }

  const auto front = fw.run_dse(predictor, support, wl_name, dse);
  const auto& rep = fw.run_report();
  if (rep.degraded() || rep.retries > 0 || rep.resumed) {
    std::fprintf(stderr, "[dse] %s: %s\n", wl_name.c_str(),
                 rep.summary().c_str());
  }

  // Machine-readable front for bitwise comparison across interrupted and
  // uninterrupted runs (hexfloat round-trips doubles exactly).
  const std::string front_out = args.str("front-out");
  if (!front_out.empty()) {
    std::FILE* f = std::fopen(front_out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "error: cannot write '%s'\n", front_out.c_str());
      return 1;
    }
    for (const auto& e : front.entries()) {
      std::fprintf(f, "%llu %a %a\n",
                   static_cast<unsigned long long>(fw.space().encode(e.config)),
                   e.objective.ipc, e.objective.power);
    }
    std::fclose(f);
  }

  std::printf("predicted Pareto front (%zu points), validated in the "
              "simulator:\n",
              front.size());
  eval::TextTable t({"pred IPC", "sim IPC", "sim power"});
  size_t shown = 0;
  for (const auto& e : front.entries()) {
    if (++shown > 12) break;
    const auto [ipc, power] = gen.evaluate(e.config, wl);
    t.add_row({eval::fmt(e.objective.ipc), eval::fmt(ipc),
               eval::fmt(power, 2)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_similarity(const Args& args) {
  workload::SpecSuite suite;
  data::DatasetGenerator gen(arch::DesignSpace::table1());
  tensor::Rng rng(args.num("seed", 2025));
  const auto configs = arch::DesignSpace::table1().sample_latin_hypercube(
      args.num("samples", 300), rng);
  std::vector<std::string> names;
  std::vector<std::vector<float>> labels;
  for (const auto& wl : suite.workloads()) {
    std::vector<float> y;
    for (const auto& c : configs) {
      y.push_back(static_cast<float>(gen.evaluate(c, wl).first));
    }
    names.push_back(wl.name());
    labels.push_back(std::move(y));
  }
  std::vector<std::vector<double>> d(names.size(),
                                     std::vector<double>(names.size()));
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = 0; j < names.size(); ++j) {
      d[i][j] = eval::wasserstein1(labels[i], labels[j]);
    }
  }
  std::printf("%s", eval::render_heatmap(names, d, 3).c_str());
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "metadse — few-shot meta-learning for cross-workload CPU DSE\n"
      "commands:\n"
      "  info                          design space & workload suite\n"
      "  generate --workload W --samples N --out F.csv\n"
      "  pretrain --ckpt F [--epochs E --tasks T --pretrain-support S\n"
      "                     --no-autosave]\n"
      "  evaluate --ckpt F --workload W [--tasks N --support K --no-wam]\n"
      "  adapt    --ckpt F --workload W [--support K --candidates N\n"
      "                     --predict-batch B]  (B = surrogate queries per\n"
      "                     batched forward; 1 = fully sequential)\n"
      "           durability: --journal F.journal [--resume\n"
      "                     --snapshot-period G --front-out F.txt]\n"
      "           containment: --eval-deadline-ms D --eval-retries R\n"
      "                     --degrade-policy ladder|skip|abort\n"
      "                     --eval-sleep-ms S (chaos drills)\n"
      "  similarity [--samples N]\n"
      "common flags: --seed S, --dataset-size N, --threads N (0 = auto),\n"
      "  --verbose\n"
      "fault injection (generate/pretrain/evaluate/adapt): --inject-fail R\n"
      "  --inject-timeout R --inject-nan R --inject-garbage R\n"
      "  --inject-persistent R --fault-seed S  (rates in [0,1])\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    Args args(argc, argv, 2);
    apply_threads(args);
    if (cmd == "info") return cmd_info();
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "pretrain") return cmd_pretrain(args);
    if (cmd == "evaluate") return cmd_evaluate(args);
    if (cmd == "adapt") return cmd_adapt(args);
    if (cmd == "similarity") return cmd_similarity(args);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n\n", e.what());
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", cmd.c_str());
  usage();
  return 1;
}
