#!/usr/bin/env python3
"""Turn bench_micro_engine JSON output into BENCH_engine.json.

Usage:
    bench_report.py AFTER.json [--before BEFORE.json] [-o BENCH_engine.json]

AFTER.json is the output of

    bench_micro_engine --benchmark_filter='PredictOne|PredictBatch|ExplorerBatchedEval' \
        --benchmark_min_time=0.5 --benchmark_format=json

BEFORE.json, when given, is a google-benchmark JSON from the pre-fast-path
baseline (the seed's grad-mode forward). The report pairs each fast-path
benchmark with its baseline counterpart and records the speedup:

  - BM_TransformerPredictOneNoGrad   vs baseline BM_TransformerPredictOne
  - BM_TransformerPredictBatchNoGrad/N vs baseline BM_TransformerPredictBatch/N
  - within-run grad vs no-grad ratios as a build-independent cross-check

The headline figure is the single-point no-grad prediction speedup over the
seed grad-mode forward; the CI smoke job only checks that the report can be
produced (numbers from shared runners are not stable enough to gate on).
"""

import argparse
import json
import sys

# fast-path benchmark -> its grad-mode baseline counterpart
PAIRS = {
    "BM_TransformerPredictOneNoGrad": "BM_TransformerPredictOne",
    "BM_TransformerPredictBatchNoGrad/1": "BM_TransformerPredictBatch/1",
    "BM_TransformerPredictBatchNoGrad/16": "BM_TransformerPredictBatch/16",
    "BM_TransformerPredictBatchNoGrad/128": "BM_TransformerPredictBatch/128",
}

HEADLINE = "BM_TransformerPredictOneNoGrad"


def load_times(path):
    """name -> real_time in ns (iteration aggregates only)."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        times[b["name"]] = float(b["real_time"])
    return times, doc.get("context", {})


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("after", help="bench_micro_engine JSON for the current tree")
    ap.add_argument("--before", help="baseline JSON (seed grad-mode forward)")
    ap.add_argument("-o", "--output", default="BENCH_engine.json")
    args = ap.parse_args(argv)

    after, context = load_times(args.after)
    if not after:
        sys.exit(f"{args.after}: no iteration benchmarks found")
    before, before_context = ({}, {})
    if args.before:
        before, before_context = load_times(args.before)

    report = {
        "context": {
            "after": context,
            "before": before_context or None,
        },
        "benchmarks_ns": {name: round(t, 1) for name, t in sorted(after.items())},
        "speedups_vs_before": {},
        "grad_over_nograd_within_run": {},
    }

    for fast, base in PAIRS.items():
        if fast in after and base in before:
            report["speedups_vs_before"][fast] = round(before[base] / after[fast], 2)
        if fast in after and base in after:
            report["grad_over_nograd_within_run"][fast] = round(
                after[base] / after[fast], 2)

    if HEADLINE in report["speedups_vs_before"]:
        report["headline"] = {
            "benchmark": HEADLINE,
            "baseline": PAIRS[HEADLINE],
            "before_ns": round(before[PAIRS[HEADLINE]], 1),
            "after_ns": round(after[HEADLINE], 1),
            "speedup": report["speedups_vs_before"][HEADLINE],
        }

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")

    head = report.get("headline")
    if head:
        print(f"{head['benchmark']}: {head['before_ns'] / 1e3:.1f}us -> "
              f"{head['after_ns'] / 1e3:.1f}us ({head['speedup']}x)")
    else:
        print(f"wrote {args.output} ({len(after)} benchmarks, no baseline)")


if __name__ == "__main__":
    main()
