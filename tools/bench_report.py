#!/usr/bin/env python3
"""Turn bench_micro_engine JSON output into BENCH_engine.json.

Usage:
    bench_report.py AFTER.json [--before BEFORE.json] [--diff BENCH_engine.json]
                    [-o BENCH_engine.json]

AFTER.json is the output of

    bench_micro_engine \
        --benchmark_filter='PredictOne|PredictBatch|ExplorerBatchedEval|Maml' \
        --benchmark_min_time=0.5 --benchmark_format=json

BEFORE.json, when given, is a google-benchmark JSON from the pre-fast-path
baseline. The report pairs each fast-path benchmark with its baseline
counterpart and records the speedup:

  - BM_TransformerPredictOneNoGrad   vs baseline BM_TransformerPredictOne
  - BM_TransformerPredictBatchNoGrad/N vs baseline BM_TransformerPredictBatch/N
  - within-run grad vs no-grad ratios as a build-independent cross-check
  - the training fast path (BM_MamlInnerStep, BM_MamlAdaptClone,
    BM_MamlEpochThreadsSweep) vs the same benchmark in the baseline run

--diff compares AFTER.json against a previously committed BENCH_engine.json
and prints a per-benchmark regression table. By default it is warn-only:
shared runners are far too noisy to gate on, so a slowdown prints a WARN
line and the exit code stays 0. Pass --fail-on-regress to turn any WARN
into a nonzero exit — for quiet dedicated machines where a >15% slowdown
is signal, not noise.

The headline figures are the single-point no-grad prediction speedup and the
K-shot adapt_clone speedup over the seed; the CI smoke job only checks that
the report can be produced.
"""

import argparse
import json
import sys

# fast-path benchmark -> its grad-mode baseline counterpart
PAIRS = {
    "BM_TransformerPredictOneNoGrad": "BM_TransformerPredictOne",
    "BM_TransformerPredictBatchNoGrad/1": "BM_TransformerPredictBatch/1",
    "BM_TransformerPredictBatchNoGrad/16": "BM_TransformerPredictBatch/16",
    "BM_TransformerPredictBatchNoGrad/128": "BM_TransformerPredictBatch/128",
}

# Training fast-path benchmarks: the kernels changed underneath them, so the
# comparison is same-name against the baseline run (before the pooled tapes,
# fused kernels, and register-panel backward).
TRAIN_BENCHES = [
    "BM_MamlInnerStep/1", "BM_MamlInnerStep/2", "BM_MamlInnerStep/8",
    "BM_MamlAdaptClone/1", "BM_MamlAdaptClone/2", "BM_MamlAdaptClone/8",
    "BM_MamlEpochThreadsSweep/1", "BM_MamlEpochThreadsSweep/2",
    "BM_MamlEpochThreadsSweep/4", "BM_MamlEpochThreadsSweep/8",
]

HEADLINE = "BM_TransformerPredictOneNoGrad"
HEADLINE_TRAIN = "BM_MamlAdaptClone/1"

# Reduced-precision serving tier: each quantized batch predict vs the planned
# fp32 path at the same batch, within the same run (DESIGN.md §15).
QUANT_PAIRS = {
    "BM_TransformerPredictBatchQuantInt8/1": "BM_TransformerPredictBatchNoGrad/1",
    "BM_TransformerPredictBatchQuantInt8/16": "BM_TransformerPredictBatchNoGrad/16",
    "BM_TransformerPredictBatchQuantInt8/128": "BM_TransformerPredictBatchNoGrad/128",
    "BM_TransformerPredictBatchQuantBf16/1": "BM_TransformerPredictBatchNoGrad/1",
    "BM_TransformerPredictBatchQuantBf16/16": "BM_TransformerPredictBatchNoGrad/16",
    "BM_TransformerPredictBatchQuantBf16/128": "BM_TransformerPredictBatchNoGrad/128",
}
HEADLINE_QUANT = "BM_TransformerPredictBatchQuantInt8/128"

# Thread-scaling pairs: each benchmark at 8 worker threads vs its serial
# path, within the same run. On the paper's shapes the per-step work is a few
# hundred microseconds, so on narrow machines (CI runners pinned to one or
# two cores) the dispatch overhead inverts the scaling — /8 comes out slower
# than /1. The report records the ratio either way so the inversion is
# visible instead of silently folded into an aggregate; the first pair stays
# the headline.
THREAD_SCALING = (
    ("BM_MamlInnerStep/1", "BM_MamlInnerStep/8"),
    ("BM_MamlAdaptClone/1", "BM_MamlAdaptClone/8"),
)

# --diff warns when a benchmark slows down by more than this factor.
DIFF_WARN_RATIO = 1.15


def load_times(path):
    """name -> real_time in ns (iteration aggregates only)."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        times[b["name"]] = float(b["real_time"])
    return times, doc.get("context", {})


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("after", help="bench_micro_engine JSON for the current tree")
    ap.add_argument("--before", help="baseline JSON (seed grad-mode forward)")
    ap.add_argument("--diff", metavar="REPORT",
                    help="committed BENCH_engine.json to diff against "
                         "(warn-only regression table)")
    ap.add_argument("--fail-on-regress", action="store_true",
                    help="with --diff: exit nonzero when any benchmark is "
                         f"more than {DIFF_WARN_RATIO}x slower than the "
                         "committed report")
    ap.add_argument("-o", "--output", default="BENCH_engine.json")
    args = ap.parse_args(argv)

    after, context = load_times(args.after)
    if not after:
        sys.exit(f"{args.after}: no iteration benchmarks found")
    committed = None
    if args.diff:
        # Load before writing --output: the two paths are usually the same
        # file (the committed report being regenerated).
        with open(args.diff) as f:
            committed = json.load(f).get("benchmarks_ns", {})
    before, before_context = ({}, {})
    if args.before:
        before, before_context = load_times(args.before)

    report = {
        "context": {
            "after": context,
            "before": before_context or None,
        },
        "benchmarks_ns": {name: round(t, 1) for name, t in sorted(after.items())},
        "speedups_vs_before": {},
        "grad_over_nograd_within_run": {},
    }

    for fast, base in PAIRS.items():
        if fast in after and base in before:
            report["speedups_vs_before"][fast] = round(before[base] / after[fast], 2)
        if fast in after and base in after:
            report["grad_over_nograd_within_run"][fast] = round(
                after[base] / after[fast], 2)
    for name in TRAIN_BENCHES:
        if name in after and name in before:
            report["speedups_vs_before"][name] = round(before[name] / after[name], 2)

    if HEADLINE in report["speedups_vs_before"]:
        report["headline"] = {
            "benchmark": HEADLINE,
            "baseline": PAIRS[HEADLINE],
            "before_ns": round(before[PAIRS[HEADLINE]], 1),
            "after_ns": round(after[HEADLINE], 1),
            "speedup": report["speedups_vs_before"][HEADLINE],
        }
    report["quant_speedup_within_run"] = {}
    for quant, fp32 in QUANT_PAIRS.items():
        if quant in after and fp32 in after:
            report["quant_speedup_within_run"][quant] = round(
                after[fp32] / after[quant], 2)
    if HEADLINE_QUANT in report["quant_speedup_within_run"]:
        fp32 = QUANT_PAIRS[HEADLINE_QUANT]
        report["headline_quant"] = {
            "benchmark": HEADLINE_QUANT,
            "baseline": fp32,
            "fp32_ns": round(after[fp32], 1),
            "quant_ns": round(after[HEADLINE_QUANT], 1),
            "speedup": report["quant_speedup_within_run"][HEADLINE_QUANT],
        }

    report["thread_scaling"] = []
    for serial, wide in THREAD_SCALING:
        if serial not in after or wide not in after:
            continue
        ratio = after[wide] / after[serial]
        entry = {
            "benchmark": f"{wide} vs {serial}",
            "serial_ns": round(after[serial], 1),
            "threaded_ns": round(after[wide], 1),
            "threaded_over_serial": round(ratio, 2),
            "inverted": ratio > 1.0,
        }
        report["thread_scaling"].append(entry)
        if "headline_thread_scaling" not in report:
            report["headline_thread_scaling"] = entry
    if HEADLINE_TRAIN in report["speedups_vs_before"]:
        report["headline_training"] = {
            "benchmark": HEADLINE_TRAIN,
            "baseline": HEADLINE_TRAIN,
            "before_ns": round(before[HEADLINE_TRAIN], 1),
            "after_ns": round(after[HEADLINE_TRAIN], 1),
            "speedup": report["speedups_vs_before"][HEADLINE_TRAIN],
        }

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")

    for key in ("headline", "headline_training"):
        head = report.get(key)
        if head:
            print(f"{head['benchmark']}: {head['before_ns'] / 1e3:.1f}us -> "
                  f"{head['after_ns'] / 1e3:.1f}us ({head['speedup']}x)")
    quant = report.get("headline_quant")
    if quant:
        print(f"{quant['benchmark']}: fp32 {quant['fp32_ns'] / 1e3:.1f}us -> "
              f"{quant['quant_ns'] / 1e3:.1f}us ({quant['speedup']}x)")
    for scaling in report["thread_scaling"]:
        verdict = ("inverted — threads hurt" if scaling["inverted"]
                   else "threads help")
        print(f"{scaling['benchmark']}: {scaling['serial_ns'] / 1e3:.1f}us -> "
              f"{scaling['threaded_ns'] / 1e3:.1f}us "
              f"(x{scaling['threaded_over_serial']}, {verdict})")
    # Any /8 arm slower than its /1 sibling is a scaling inversion worth a
    # visible WARN, whether or not the pair is a tracked headline.
    for name in sorted(after):
        if not name.endswith("/8"):
            continue
        sibling = name[:-2] + "/1"
        if sibling in after and after[name] > after[sibling]:
            print(f"WARN thread-scaling inversion: {name} "
                  f"({after[name] / 1e3:.1f}us) exceeds {sibling} "
                  f"({after[sibling] / 1e3:.1f}us)")
    if "headline" not in report and "headline_training" not in report:
        print(f"wrote {args.output} ({len(after)} benchmarks, no baseline)")

    if committed is not None:
        regressions = diff_report(after, committed, args.diff)
        if args.fail_on_regress and regressions:
            sys.exit(f"--fail-on-regress: {len(regressions)} benchmark(s) "
                     f"slower than {DIFF_WARN_RATIO}x the committed report: "
                     f"{', '.join(regressions)}")


def diff_report(after, committed, committed_path):
    """Regression table vs a committed report; returns the regressed names."""
    shared = sorted(set(after) & set(committed))
    if not shared:
        print(f"diff: no benchmarks in common with {committed_path}")
        return []
    regressions = []
    width = max(len(n) for n in shared)
    print(f"\ndiff vs {committed_path} (ratio = now/committed):")
    for name in shared:
        ratio = after[name] / committed[name]
        flag = ""
        if ratio > DIFF_WARN_RATIO:
            flag = "  WARN slower"
            regressions.append(name)
        print(f"  {name:<{width}}  {committed[name] / 1e3:10.1f}us ->"
              f" {after[name] / 1e3:10.1f}us  x{ratio:5.2f}{flag}")
    missing = sorted(set(committed) - set(after))
    if missing:
        print(f"  (not in this run: {', '.join(missing)})")
    return regressions


if __name__ == "__main__":
    main()
