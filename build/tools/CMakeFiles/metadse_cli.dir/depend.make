# Empty dependencies file for metadse_cli.
# This may be replaced when dependencies are built.
