file(REMOVE_RECURSE
  "CMakeFiles/metadse_cli.dir/metadse_cli.cpp.o"
  "CMakeFiles/metadse_cli.dir/metadse_cli.cpp.o.d"
  "metadse"
  "metadse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
