add_test([=[Determinism.EndToEndPipelineIsSeedPure]=]  /root/repo/build/tests/test_determinism [==[--gtest_filter=Determinism.EndToEndPipelineIsSeedPure]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Determinism.EndToEndPipelineIsSeedPure]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_determinism_TESTS Determinism.EndToEndPipelineIsSeedPure)
