# Empty compiler generated dependencies file for test_maml.
# This may be replaced when dependencies are built.
