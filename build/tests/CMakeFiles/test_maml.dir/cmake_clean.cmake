file(REMOVE_RECURSE
  "CMakeFiles/test_maml.dir/test_maml.cpp.o"
  "CMakeFiles/test_maml.dir/test_maml.cpp.o.d"
  "test_maml"
  "test_maml.pdb"
  "test_maml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
