# Empty dependencies file for test_ensemble_adapt.
# This may be replaced when dependencies are built.
