file(REMOVE_RECURSE
  "CMakeFiles/test_ensemble_adapt.dir/test_ensemble_adapt.cpp.o"
  "CMakeFiles/test_ensemble_adapt.dir/test_ensemble_adapt.cpp.o.d"
  "test_ensemble_adapt"
  "test_ensemble_adapt.pdb"
  "test_ensemble_adapt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ensemble_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
