file(REMOVE_RECURSE
  "CMakeFiles/test_serialize_corruption.dir/test_serialize_corruption.cpp.o"
  "CMakeFiles/test_serialize_corruption.dir/test_serialize_corruption.cpp.o.d"
  "test_serialize_corruption"
  "test_serialize_corruption.pdb"
  "test_serialize_corruption[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serialize_corruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
