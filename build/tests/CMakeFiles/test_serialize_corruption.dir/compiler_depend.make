# Empty compiler generated dependencies file for test_serialize_corruption.
# This may be replaced when dependencies are built.
