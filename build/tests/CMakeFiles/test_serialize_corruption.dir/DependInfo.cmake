
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_serialize_corruption.cpp" "tests/CMakeFiles/test_serialize_corruption.dir/test_serialize_corruption.cpp.o" "gcc" "tests/CMakeFiles/test_serialize_corruption.dir/test_serialize_corruption.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/metadse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/metadse_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/metadse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/metadse_data.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/metadse_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/metadse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/metadse_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/metadse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/metadse_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
