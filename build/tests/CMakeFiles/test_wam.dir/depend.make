# Empty dependencies file for test_wam.
# This may be replaced when dependencies are built.
