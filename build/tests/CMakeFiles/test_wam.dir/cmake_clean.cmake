file(REMOVE_RECURSE
  "CMakeFiles/test_wam.dir/test_wam.cpp.o"
  "CMakeFiles/test_wam.dir/test_wam.cpp.o.d"
  "test_wam"
  "test_wam.pdb"
  "test_wam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
