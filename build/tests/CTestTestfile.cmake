# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_gradcheck[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_optim[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_trees[1]_include.cmake")
include("/root/repo/build/tests/test_transfer[1]_include.cmake")
include("/root/repo/build/tests/test_maml[1]_include.cmake")
include("/root/repo/build/tests/test_wam[1]_include.cmake")
include("/root/repo/build/tests/test_framework[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_explore[1]_include.cmake")
include("/root/repo/build/tests/test_sim_properties[1]_include.cmake")
include("/root/repo/build/tests/test_ensemble_adapt[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_fault_injection[1]_include.cmake")
include("/root/repo/build/tests/test_serialize_corruption[1]_include.cmake")
