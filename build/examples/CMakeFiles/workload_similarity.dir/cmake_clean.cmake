file(REMOVE_RECURSE
  "CMakeFiles/workload_similarity.dir/workload_similarity.cpp.o"
  "CMakeFiles/workload_similarity.dir/workload_similarity.cpp.o.d"
  "workload_similarity"
  "workload_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
