# Empty dependencies file for workload_similarity.
# This may be replaced when dependencies are built.
