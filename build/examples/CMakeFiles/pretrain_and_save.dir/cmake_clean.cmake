file(REMOVE_RECURSE
  "CMakeFiles/pretrain_and_save.dir/pretrain_and_save.cpp.o"
  "CMakeFiles/pretrain_and_save.dir/pretrain_and_save.cpp.o.d"
  "pretrain_and_save"
  "pretrain_and_save.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretrain_and_save.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
