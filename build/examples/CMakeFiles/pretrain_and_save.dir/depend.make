# Empty dependencies file for pretrain_and_save.
# This may be replaced when dependencies are built.
