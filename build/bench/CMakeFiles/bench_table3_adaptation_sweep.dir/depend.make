# Empty dependencies file for bench_table3_adaptation_sweep.
# This may be replaced when dependencies are built.
