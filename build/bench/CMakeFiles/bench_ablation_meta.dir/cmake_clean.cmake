file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_meta.dir/bench_ablation_meta.cpp.o"
  "CMakeFiles/bench_ablation_meta.dir/bench_ablation_meta.cpp.o.d"
  "bench_ablation_meta"
  "bench_ablation_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
