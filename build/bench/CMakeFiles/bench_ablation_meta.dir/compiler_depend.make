# Empty compiler generated dependencies file for bench_ablation_meta.
# This may be replaced when dependencies are built.
