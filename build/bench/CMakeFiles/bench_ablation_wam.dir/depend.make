# Empty dependencies file for bench_ablation_wam.
# This may be replaced when dependencies are built.
