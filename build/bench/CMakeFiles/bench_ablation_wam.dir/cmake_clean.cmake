file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wam.dir/bench_ablation_wam.cpp.o"
  "CMakeFiles/bench_ablation_wam.dir/bench_ablation_wam.cpp.o.d"
  "bench_ablation_wam"
  "bench_ablation_wam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
