file(REMOVE_RECURSE
  "CMakeFiles/metadse_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/metadse_bench_common.dir/bench_common.cpp.o.d"
  "libmetadse_bench_common.a"
  "libmetadse_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
