file(REMOVE_RECURSE
  "libmetadse_bench_common.a"
)
