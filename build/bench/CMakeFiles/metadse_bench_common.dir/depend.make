# Empty dependencies file for metadse_bench_common.
# This may be replaced when dependencies are built.
