file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_wasserstein.dir/bench_fig2_wasserstein.cpp.o"
  "CMakeFiles/bench_fig2_wasserstein.dir/bench_fig2_wasserstein.cpp.o.d"
  "bench_fig2_wasserstein"
  "bench_fig2_wasserstein.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_wasserstein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
