file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dse.dir/bench_ablation_dse.cpp.o"
  "CMakeFiles/bench_ablation_dse.dir/bench_ablation_dse.cpp.o.d"
  "bench_ablation_dse"
  "bench_ablation_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
