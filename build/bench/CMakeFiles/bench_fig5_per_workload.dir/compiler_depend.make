# Empty compiler generated dependencies file for bench_fig5_per_workload.
# This may be replaced when dependencies are built.
