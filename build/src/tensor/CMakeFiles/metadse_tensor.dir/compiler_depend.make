# Empty compiler generated dependencies file for metadse_tensor.
# This may be replaced when dependencies are built.
