file(REMOVE_RECURSE
  "CMakeFiles/metadse_tensor.dir/gradcheck.cpp.o"
  "CMakeFiles/metadse_tensor.dir/gradcheck.cpp.o.d"
  "CMakeFiles/metadse_tensor.dir/guard.cpp.o"
  "CMakeFiles/metadse_tensor.dir/guard.cpp.o.d"
  "CMakeFiles/metadse_tensor.dir/ops.cpp.o"
  "CMakeFiles/metadse_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/metadse_tensor.dir/rng.cpp.o"
  "CMakeFiles/metadse_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/metadse_tensor.dir/tensor.cpp.o"
  "CMakeFiles/metadse_tensor.dir/tensor.cpp.o.d"
  "libmetadse_tensor.a"
  "libmetadse_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
