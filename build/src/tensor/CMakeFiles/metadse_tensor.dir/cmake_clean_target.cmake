file(REMOVE_RECURSE
  "libmetadse_tensor.a"
)
