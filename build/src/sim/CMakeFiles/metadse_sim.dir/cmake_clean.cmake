file(REMOVE_RECURSE
  "CMakeFiles/metadse_sim.dir/branch_predictor.cpp.o"
  "CMakeFiles/metadse_sim.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/metadse_sim.dir/cache.cpp.o"
  "CMakeFiles/metadse_sim.dir/cache.cpp.o.d"
  "CMakeFiles/metadse_sim.dir/cpu_model.cpp.o"
  "CMakeFiles/metadse_sim.dir/cpu_model.cpp.o.d"
  "CMakeFiles/metadse_sim.dir/fault_injection.cpp.o"
  "CMakeFiles/metadse_sim.dir/fault_injection.cpp.o.d"
  "CMakeFiles/metadse_sim.dir/pipeline_sim.cpp.o"
  "CMakeFiles/metadse_sim.dir/pipeline_sim.cpp.o.d"
  "CMakeFiles/metadse_sim.dir/power_model.cpp.o"
  "CMakeFiles/metadse_sim.dir/power_model.cpp.o.d"
  "CMakeFiles/metadse_sim.dir/trace.cpp.o"
  "CMakeFiles/metadse_sim.dir/trace.cpp.o.d"
  "libmetadse_sim.a"
  "libmetadse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
