file(REMOVE_RECURSE
  "libmetadse_sim.a"
)
