# Empty compiler generated dependencies file for metadse_sim.
# This may be replaced when dependencies are built.
