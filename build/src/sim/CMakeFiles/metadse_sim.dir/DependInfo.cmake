
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/branch_predictor.cpp" "src/sim/CMakeFiles/metadse_sim.dir/branch_predictor.cpp.o" "gcc" "src/sim/CMakeFiles/metadse_sim.dir/branch_predictor.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/metadse_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/metadse_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/cpu_model.cpp" "src/sim/CMakeFiles/metadse_sim.dir/cpu_model.cpp.o" "gcc" "src/sim/CMakeFiles/metadse_sim.dir/cpu_model.cpp.o.d"
  "/root/repo/src/sim/fault_injection.cpp" "src/sim/CMakeFiles/metadse_sim.dir/fault_injection.cpp.o" "gcc" "src/sim/CMakeFiles/metadse_sim.dir/fault_injection.cpp.o.d"
  "/root/repo/src/sim/pipeline_sim.cpp" "src/sim/CMakeFiles/metadse_sim.dir/pipeline_sim.cpp.o" "gcc" "src/sim/CMakeFiles/metadse_sim.dir/pipeline_sim.cpp.o.d"
  "/root/repo/src/sim/power_model.cpp" "src/sim/CMakeFiles/metadse_sim.dir/power_model.cpp.o" "gcc" "src/sim/CMakeFiles/metadse_sim.dir/power_model.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/metadse_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/metadse_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/metadse_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/metadse_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
