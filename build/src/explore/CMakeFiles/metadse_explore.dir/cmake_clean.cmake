file(REMOVE_RECURSE
  "CMakeFiles/metadse_explore.dir/explorer.cpp.o"
  "CMakeFiles/metadse_explore.dir/explorer.cpp.o.d"
  "CMakeFiles/metadse_explore.dir/pareto.cpp.o"
  "CMakeFiles/metadse_explore.dir/pareto.cpp.o.d"
  "libmetadse_explore.a"
  "libmetadse_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
