file(REMOVE_RECURSE
  "libmetadse_explore.a"
)
