# Empty dependencies file for metadse_explore.
# This may be replaced when dependencies are built.
