file(REMOVE_RECURSE
  "CMakeFiles/metadse_data.dir/dataset.cpp.o"
  "CMakeFiles/metadse_data.dir/dataset.cpp.o.d"
  "libmetadse_data.a"
  "libmetadse_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
