# Empty dependencies file for metadse_data.
# This may be replaced when dependencies are built.
