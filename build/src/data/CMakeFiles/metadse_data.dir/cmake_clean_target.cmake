file(REMOVE_RECURSE
  "libmetadse_data.a"
)
