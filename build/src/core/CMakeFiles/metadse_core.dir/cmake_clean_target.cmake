file(REMOVE_RECURSE
  "libmetadse_core.a"
)
