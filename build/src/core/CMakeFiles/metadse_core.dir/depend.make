# Empty dependencies file for metadse_core.
# This may be replaced when dependencies are built.
