file(REMOVE_RECURSE
  "CMakeFiles/metadse_core.dir/metadse.cpp.o"
  "CMakeFiles/metadse_core.dir/metadse.cpp.o.d"
  "libmetadse_core.a"
  "libmetadse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
