# Empty compiler generated dependencies file for metadse_arch.
# This may be replaced when dependencies are built.
