file(REMOVE_RECURSE
  "libmetadse_arch.a"
)
