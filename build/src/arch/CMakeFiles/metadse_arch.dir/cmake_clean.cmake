file(REMOVE_RECURSE
  "CMakeFiles/metadse_arch.dir/design_space.cpp.o"
  "CMakeFiles/metadse_arch.dir/design_space.cpp.o.d"
  "libmetadse_arch.a"
  "libmetadse_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
