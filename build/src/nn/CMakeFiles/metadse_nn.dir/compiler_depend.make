# Empty compiler generated dependencies file for metadse_nn.
# This may be replaced when dependencies are built.
