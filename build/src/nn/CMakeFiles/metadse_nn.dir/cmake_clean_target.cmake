file(REMOVE_RECURSE
  "libmetadse_nn.a"
)
