file(REMOVE_RECURSE
  "CMakeFiles/metadse_nn.dir/attention.cpp.o"
  "CMakeFiles/metadse_nn.dir/attention.cpp.o.d"
  "CMakeFiles/metadse_nn.dir/layers.cpp.o"
  "CMakeFiles/metadse_nn.dir/layers.cpp.o.d"
  "CMakeFiles/metadse_nn.dir/module.cpp.o"
  "CMakeFiles/metadse_nn.dir/module.cpp.o.d"
  "CMakeFiles/metadse_nn.dir/optim.cpp.o"
  "CMakeFiles/metadse_nn.dir/optim.cpp.o.d"
  "CMakeFiles/metadse_nn.dir/serialize.cpp.o"
  "CMakeFiles/metadse_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/metadse_nn.dir/transformer.cpp.o"
  "CMakeFiles/metadse_nn.dir/transformer.cpp.o.d"
  "libmetadse_nn.a"
  "libmetadse_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
