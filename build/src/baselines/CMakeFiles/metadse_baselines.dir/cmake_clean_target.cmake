file(REMOVE_RECURSE
  "libmetadse_baselines.a"
)
