# Empty dependencies file for metadse_baselines.
# This may be replaced when dependencies are built.
