file(REMOVE_RECURSE
  "CMakeFiles/metadse_baselines.dir/decision_tree.cpp.o"
  "CMakeFiles/metadse_baselines.dir/decision_tree.cpp.o.d"
  "CMakeFiles/metadse_baselines.dir/ensembles.cpp.o"
  "CMakeFiles/metadse_baselines.dir/ensembles.cpp.o.d"
  "CMakeFiles/metadse_baselines.dir/linear_fit.cpp.o"
  "CMakeFiles/metadse_baselines.dir/linear_fit.cpp.o.d"
  "CMakeFiles/metadse_baselines.dir/signature.cpp.o"
  "CMakeFiles/metadse_baselines.dir/signature.cpp.o.d"
  "CMakeFiles/metadse_baselines.dir/trendse.cpp.o"
  "CMakeFiles/metadse_baselines.dir/trendse.cpp.o.d"
  "libmetadse_baselines.a"
  "libmetadse_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
