file(REMOVE_RECURSE
  "libmetadse_meta.a"
)
