# Empty dependencies file for metadse_meta.
# This may be replaced when dependencies are built.
