file(REMOVE_RECURSE
  "CMakeFiles/metadse_meta.dir/ensemble_adapt.cpp.o"
  "CMakeFiles/metadse_meta.dir/ensemble_adapt.cpp.o.d"
  "CMakeFiles/metadse_meta.dir/maml.cpp.o"
  "CMakeFiles/metadse_meta.dir/maml.cpp.o.d"
  "CMakeFiles/metadse_meta.dir/wam.cpp.o"
  "CMakeFiles/metadse_meta.dir/wam.cpp.o.d"
  "libmetadse_meta.a"
  "libmetadse_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
