file(REMOVE_RECURSE
  "libmetadse_workload.a"
)
