# Empty dependencies file for metadse_workload.
# This may be replaced when dependencies are built.
