file(REMOVE_RECURSE
  "CMakeFiles/metadse_workload.dir/spec_suite.cpp.o"
  "CMakeFiles/metadse_workload.dir/spec_suite.cpp.o.d"
  "libmetadse_workload.a"
  "libmetadse_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
