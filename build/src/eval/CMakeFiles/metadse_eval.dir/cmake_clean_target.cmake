file(REMOVE_RECURSE
  "libmetadse_eval.a"
)
