file(REMOVE_RECURSE
  "CMakeFiles/metadse_eval.dir/metrics.cpp.o"
  "CMakeFiles/metadse_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/metadse_eval.dir/table.cpp.o"
  "CMakeFiles/metadse_eval.dir/table.cpp.o.d"
  "libmetadse_eval.a"
  "libmetadse_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadse_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
