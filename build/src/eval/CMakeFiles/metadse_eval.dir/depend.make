# Empty dependencies file for metadse_eval.
# This may be replaced when dependencies are built.
