#include "serve/session.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/chaos.hpp"
#include "core/io.hpp"
#include "core/parallel.hpp"
#include "nn/plan.hpp"

namespace metadse::serve {

MetaDseSessionEngine::MetaDseSessionEngine(
    const core::MetaDseFramework& framework, size_t replicas, Options options)
    : framework_(framework), options_(std::move(options)) {
  if (replicas == 0) {
    throw std::invalid_argument(
        "MetaDseSessionEngine: need at least one replica");
  }
  generators_.reserve(replicas);
  for (size_t r = 0; r < replicas; ++r) {
    generators_.emplace_back(framework_.space());
  }
}

void MetaDseSessionEngine::add_workload(const std::string& name,
                                        const data::Dataset& support) {
  WorkloadEntry entry;
  entry.support = &support;
  entry.predictors.reserve(generators_.size());
  for (size_t r = 0; r < generators_.size(); ++r) {
    // adapt_to is const and deterministic: every replica gets a
    // bitwise-identical clone of the adapted model.
    entry.predictors.push_back(framework_.adapt_to(support));
  }
  if (options_.coalesce) {
    // One more identical clone, reserved for fused cross-session batches.
    // Any clone produces the same bits for any row, so which model answers
    // a prediction — and what else rides in its batch — cannot change a
    // session's values.
    entry.fused_predictor = std::make_unique<core::AdaptedPredictor>(
        framework_.adapt_to(support));
    entry.coalescer = std::make_unique<BatchCoalescer>(
        *options_.coalesce,
        [model = entry.fused_predictor.get()](const BatchCoalescer::Rows&
                                                  rows) {
          // The flushing thread may be the ticker (no serial region yet) or
          // a session worker (already serial): pin the fused forward to the
          // inline schedule either way so its kernels match the
          // uncoalesced per-session path bitwise.
          core::SerialRegionGuard serial;
          return model->predict_batch(rows);
        });
  }
  workloads_[name] = std::move(entry);
}

void MetaDseSessionEngine::rebuild_replica(size_t replica) {
  if (replica >= generators_.size()) {
    throw std::out_of_range("rebuild_replica: replica id out of range");
  }
  generators_[replica] = data::DatasetGenerator(framework_.space());
  for (auto& [name, entry] : workloads_) {
    entry.predictors[replica] = framework_.adapt_to(*entry.support);
  }
}

SessionExecutor MetaDseSessionEngine::executor() {
  return [this](const SessionRequest& request, const ExecContext& ctx) {
    return run_session(request, ctx);
  };
}

std::string MetaDseSessionEngine::front_path(uint64_t session_id) const {
  if (options_.front_dir.empty()) {
    throw std::logic_error("MetaDseSessionEngine: front_dir not configured");
  }
  return options_.front_dir + "/front_" + std::to_string(session_id) + ".txt";
}

std::string MetaDseSessionEngine::format_front(
    const arch::DesignSpace& space, const explore::ParetoArchive& archive) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const auto& e : archive.entries()) {
    os << space.encode(e.config) << ' ' << e.objective.ipc << ' '
       << e.objective.power << '\n';
  }
  return os.str();
}

ExecResult MetaDseSessionEngine::run_session(const SessionRequest& request,
                                             const ExecContext& ctx) {
  // Everything this session does — predictions, journal writes, plan
  // compiles, front publication — runs under its chaos scope, so a chaos
  // plan can target a deterministic subset of sessions (scope_mod /
  // scope_match) and leave the rest provably untouched.
  const core::chaos::ChaosScope chaos_scope(request.id);
  if (core::chaos::fire("replica.fail")) {
    throw ReplicaFault("injected replica fault (chaos kill of replica " +
                       std::to_string(ctx.replica) + ")");
  }
  const auto it = workloads_.find(request.workload);
  if (it == workloads_.end()) {
    throw std::runtime_error("serve: workload \"" + request.workload +
                             "\" is not registered with the session engine");
  }
  if (ctx.replica >= generators_.size()) {
    throw std::logic_error("serve: replica id " +
                           std::to_string(ctx.replica) +
                           " out of range (engine has " +
                           std::to_string(generators_.size()) + ")");
  }

  core::MetaDseFramework::DseOptions dse = options_.dse;
  dse.journal_path = request.journal_path;
  dse.resume = request.resume;
  dse.budget = ctx.budget;
  dse.guard.start_level = ctx.start_level;
  dse.explorer.seed = request.seed;
  dse.explorer.stop_check = ctx.stop_requested;
  // Chaos wedge: the session stalls inside an evaluation attempt exactly
  // like a hung simulator would, spinning until the watchdog (or shutdown)
  // cancels its budget. Wrapping the template's hook keeps any rehearsal
  // hook the caller installed.
  dse.pre_eval_hook = [base = options_.dse.pre_eval_hook,
                       budget = ctx.budget, stop = ctx.stop_requested] {
    if (base) base();
    if (core::chaos::fire("replica.wedge")) {
      while (!(budget && (budget->cancelled() || budget->exhausted())) &&
             !(stop && stop())) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      throw explore::ExplorationAborted(
          "exploration aborted: injected replica wedge (budget cancelled by "
          "the watchdog; journal preserves progress)");
    }
  };
  // The coalescer's fused predictor always answers at fp32 (its bitwise-
  // equality contract with predict_batch is what makes cross-session
  // batching safe); a reduced-precision session therefore serves its own
  // forwards instead of riding fused batches.
  if (it->second.coalescer &&
      dse.precision == tensor::quant::Precision::kFp32) {
    // Route the surrogate-IPC leg through the cross-session coalescer. The
    // wait inside predict() is part of the evaluation attempt's wall-clock,
    // so the guard's ChargeOnExit bills it to the session budget exactly
    // like compute; a cancelled/exhausted budget (watchdog, shutdown,
    // deadline) wakes the wait, drops the rows from the assembling batch
    // and aborts the run — survivors' batches are unperturbed.
    BatchCoalescer* coal = it->second.coalescer.get();
    std::function<bool()> wake;
    if (ctx.budget) {
      wake = [budget = ctx.budget] {
        return budget->cancelled() || budget->exhausted();
      };
    }
    dse.predict_rows = [coal, id = request.id, wake = std::move(wake)](
                           const std::vector<std::vector<float>>& rows) {
      try {
        return coal->predict(id, rows, wake);
      } catch (const CoalesceCancelled&) {
        throw explore::ExplorationAborted(
            "exploration aborted: session budget cancelled or exhausted "
            "while waiting in the cross-session coalescer (journal "
            "preserves progress; resume with a fresh budget)");
      }
    };
  }

  explore::RunReport report;
  const explore::ParetoArchive archive = framework_.run_dse(
      it->second.predictors[ctx.replica], *it->second.support,
      request.workload, dse, generators_[ctx.replica], report);

  ExecResult out;
  out.degraded = report.degraded() || report.cancelled > 0;
  out.detail = report.summary();
  out.cancelled_points = report.cancelled;
  if (dse.precision != tensor::quant::Precision::kFp32) {
    out.quant_fallback = report.quant_contract_tripped;
    out.quantized = !report.quant_contract_tripped;
  }

  // Publication is the session's commit point: the front appears atomically
  // and only after the full run (an interrupted session leaves no front, so
  // a resume pass can find and finish it). A publication that fails leaves
  // no torn file behind; the session still ends kOk — its archive is
  // correct, only the published copy is missing — but is reported degraded
  // so the loss is visible.
  if (!options_.front_dir.empty()) {
    try {
      core::io::atomic_write_file(front_path(request.id),
                                  format_front(framework_.space(), archive),
                                  "front.publish");
    } catch (const core::io::IoError& e) {
      out.degraded = true;
      out.detail += "; front publication failed: " + std::string(e.what());
    }
  }
  return out;
}

CoalesceStats MetaDseSessionEngine::coalesce_stats() const {
  CoalesceStats total;
  for (const auto& [name, entry] : workloads_) {
    if (!entry.coalescer) continue;
    const CoalesceStats s = entry.coalescer->stats();
    total.submitted_requests += s.submitted_requests;
    total.submitted_points += s.submitted_points;
    total.coalesced_batches += s.coalesced_batches;
    total.coalesced_points += s.coalesced_points;
    total.cancelled_points += s.cancelled_points;
    total.failed_points += s.failed_points;
    total.failed_batches += s.failed_batches;
    total.max_batch_points = std::max(total.max_batch_points,
                                      s.max_batch_points);
    total.flush_full += s.flush_full;
    total.flush_tick += s.flush_tick;
    total.flush_barrier += s.flush_barrier;
  }
  return total;
}

const std::vector<float>& MetaDseSessionEngine::workload_calibration(
    const std::string& name) const {
  const auto it = workloads_.find(name);
  if (it == workloads_.end()) {
    throw std::runtime_error("workload_calibration: workload \"" + name +
                             "\" is not registered with the session engine");
  }
  return it->second.predictors.front().model->quant_calibration();
}

PlanExecStats MetaDseSessionEngine::plan_stats() const {
  const nn::plan::PlanStats s = nn::plan::PlanRegistry::instance().stats();
  PlanExecStats out;
  out.plans_compiled = s.plans_compiled;
  out.cache_hits = s.cache_hits;
  out.fallbacks = s.fallbacks;
  out.static_bytes = s.static_bytes;
  return out;
}

}  // namespace metadse::serve
