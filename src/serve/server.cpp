#include "serve/server.hpp"

#include <stdexcept>
#include <utility>

#include "core/parallel.hpp"
#include "explore/explorer.hpp"
#include "explore/guarded.hpp"

namespace metadse::serve {

namespace {

size_t elapsed_ms(std::chrono::steady_clock::time_point start) {
  return static_cast<size_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

ServerCore::ServerCore(ServeOptions options, SessionExecutor executor)
    : options_(options),
      executor_(std::move(executor)),
      pool_(options.replicas),
      active_(options.replicas),
      rebuild_times_(options.replicas) {
  if (!executor_) {
    throw std::invalid_argument("ServerCore: null session executor");
  }
  if (options_.workers == 0) {
    throw std::invalid_argument("ServerCore: workers must be >= 1");
  }
  if (options_.queue_capacity == 0) {
    throw std::invalid_argument("ServerCore: queue_capacity must be >= 1");
  }
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (options_.watchdog_period_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
}

ServerCore::~ServerCore() { stop(StopMode::kNow); }

std::future<SessionResult> ServerCore::submit(SessionRequest request) {
  Pending item;
  item.request = std::move(request);
  item.enqueued = std::chrono::steady_clock::now();
  item.budget = std::make_shared<explore::DeadlineBudget>(
      options_.session_deadline_ms);
  std::future<SessionResult> fut = item.promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);

  std::optional<Pending> victim;  // shed under kShedOldest
  {
    std::unique_lock<std::mutex> lk(m_);
    if (!stopping_ && queue_.size() >= options_.queue_capacity) {
      switch (options_.admission) {
        case AdmissionPolicy::kReject: {
          SessionResult r;
          r.id = item.request.id;
          r.status = SessionStatus::kRejected;
          r.retry_after_ms = options_.retry_after_ms;
          r.detail = "admission queue full";
          lk.unlock();
          settle(item, std::move(r));
          return fut;
        }
        case AdmissionPolicy::kShedOldest:
          victim = std::move(queue_.front());
          queue_.pop_front();
          break;
        case AdmissionPolicy::kBlock:
          space_cv_.wait(lk, [&] {
            return stopping_ || queue_.size() < options_.queue_capacity;
          });
          break;
      }
    }
    if (stopping_) {
      // Either the server was already stopping at entry, or a kBlock wait
      // was woken by shutdown; a shed victim cannot exist on either path
      // (the shed branch never releases the lock).
      SessionResult r;
      r.id = item.request.id;
      r.status = SessionStatus::kRejected;
      r.detail = "server is stopping";
      lk.unlock();
      settle(item, std::move(r));
      return fut;
    }
    queue_.push_back(std::move(item));
    const size_t depth = queue_.size();
    size_t hw = queue_high_water_.load(std::memory_order_relaxed);
    while (depth > hw &&
           !queue_high_water_.compare_exchange_weak(
               hw, depth, std::memory_order_relaxed)) {
    }
  }
  queue_cv_.notify_one();
  if (victim) {
    SessionResult r;
    r.id = victim->request.id;
    r.status = SessionStatus::kShed;
    r.queued_ms = elapsed_ms(victim->enqueued);
    r.total_ms = r.queued_ms;
    r.detail = "shed from the admission queue by a newer session";
    settle(*victim, std::move(r));
  }
  return fut;
}

void ServerCore::worker_loop() {
  for (;;) {
    Pending item;
    size_t depth_after_pop = 0;
    {
      std::unique_lock<std::mutex> lk(m_);
      queue_cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      item = std::move(queue_.front());
      queue_.pop_front();
      depth_after_pop = queue_.size();
    }
    space_cv_.notify_one();
    serve_one(std::move(item), depth_after_pop);
  }
}

void ServerCore::serve_one(Pending item, size_t depth_after_pop) {
  SessionResult result;
  result.id = item.request.id;
  result.queued_ms = elapsed_ms(item.enqueued);
  item.budget->charge(result.queued_ms);

  if (stop_now_.load(std::memory_order_relaxed)) {
    result.status = SessionStatus::kStopped;
    result.total_ms = result.queued_ms;
    result.detail = "server stopped before the session was dispatched";
    settle(item, std::move(result));
    return;
  }
  if (item.budget->exhausted()) {
    result.status = SessionStatus::kDeadline;
    result.total_ms = result.queued_ms;
    result.detail = "session deadline expired while queued (" +
                    std::to_string(result.queued_ms) + " ms of " +
                    std::to_string(item.budget->total_ms()) + ")";
    settle(item, std::move(result));
    return;
  }

  // Load-aware degradation: a deep backlog at dispatch forces the session
  // onto the cheap baseline rung so the queue drains instead of growing.
  const double fill =
      static_cast<double>(depth_after_pop) /
      static_cast<double>(options_.queue_capacity);
  const bool forced_baseline = fill >= options_.degrade_at;

  auto lease = pool_.acquire(
      [this] { return stop_now_.load(std::memory_order_relaxed); });
  if (!lease) {
    if (pool_.all_quarantined()) {
      result.status = SessionStatus::kFailed;
      result.total_ms = elapsed_ms(item.enqueued);
      result.detail = "every replica is quarantined; the pool cannot serve";
    } else {
      result.status = SessionStatus::kStopped;
      result.total_ms = elapsed_ms(item.enqueued);
      result.detail = "server stopped while waiting for a replica";
    }
    settle(item, std::move(result));
    return;
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    active_[lease->id()] = item.budget;
  }

  ExecContext ctx;
  ctx.replica = lease->id();
  ctx.budget = item.budget;
  ctx.stop_requested = [this] {
    return stop_now_.load(std::memory_order_relaxed);
  };
  ctx.start_level = forced_baseline ? explore::DegradeLevel::kBaseline
                                    : explore::DegradeLevel::kSurrogate;

  const auto service_start = std::chrono::steady_clock::now();
  try {
    // Per-session compute is serial: the replica's nested parallel regions
    // run inline, so N sessions on N replicas never contend for the global
    // single-batch thread pool.
    core::SerialRegionGuard serial;
    ExecResult exec = executor_(item.request, ctx);
    result.status = SessionStatus::kOk;
    // A blown-deadline batch cancellation served some points off the cheap
    // rung: fold it into degraded so the stats self-check
    // (cancelled_points > 0 implies degraded > 0) holds at the serve layer,
    // not just inside the guard's report.
    result.degraded =
        forced_baseline || exec.degraded || exec.cancelled_points > 0;
    result.detail = std::move(exec.detail);
    cancelled_points_.fetch_add(exec.cancelled_points,
                                std::memory_order_relaxed);
    if (exec.quantized) quant_sessions_.fetch_add(1, std::memory_order_relaxed);
    if (exec.quant_fallback) {
      quant_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const explore::StopRequested& e) {
    result.status = SessionStatus::kStopped;
    result.detail = e.what();
  } catch (const ReplicaFault& e) {
    // The executor reported the *replica* broken, not just the session:
    // condemn the slot now, while the lease is still held, so releasing it
    // parks the slot for the supervisor instead of re-admitting it.
    condemn_replica(lease->id());
    result.status = SessionStatus::kFailed;
    result.detail = e.what();
  } catch (const explore::ExplorationAborted& e) {
    result.status = (item.budget->cancelled() || item.budget->exhausted())
                        ? SessionStatus::kDeadline
                        : SessionStatus::kFailed;
    result.detail = e.what();
  } catch (const std::exception& e) {
    result.status = SessionStatus::kFailed;
    result.detail = e.what();
  }
  result.service_ms = elapsed_ms(service_start);
  result.total_ms = elapsed_ms(item.enqueued);

  {
    std::lock_guard<std::mutex> lk(m_);
    active_[lease->id()].reset();
  }
  settle(item, std::move(result));
}

void ServerCore::watchdog_loop() {
  std::unique_lock<std::mutex> lk(m_);
  while (!watchdog_exit_.load(std::memory_order_relaxed)) {
    watchdog_cv_.wait_for(
        lk, std::chrono::milliseconds(options_.watchdog_period_ms));
    if (watchdog_exit_.load(std::memory_order_relaxed)) return;
    if (options_.wedged_after_ms == 0) continue;
    lk.unlock();
    for (const auto& info : pool_.busy_slots()) {
      if (info.busy_ms <= options_.wedged_after_ms) continue;
      if (!condemn_replica(info.replica)) continue;
      // Transition to wedged: trip the breaker once and cancel the
      // session's budget so it aborts at its next cooperative check; the
      // slot parks for the supervisor when that lease ends.
      watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> inner(m_);
      if (active_[info.replica]) active_[info.replica]->cancel();
    }
    lk.lock();
  }
}

bool ServerCore::condemn_replica(size_t replica) {
  if (!pool_.condemn(replica)) return false;
  replicas_condemned_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ServerCore::supervisor_loop() {
  for (;;) {
    auto id = pool_.take_for_rebuild(
        [this] { return supervisor_exit_.load(std::memory_order_relaxed); });
    if (!id) return;

    // Quarantine circuit breaker: a slot that keeps dying faster than the
    // window allows is not worth rebuilding forever.
    const auto now = std::chrono::steady_clock::now();
    auto& times = rebuild_times_[*id];
    const auto window = std::chrono::milliseconds(
        options_.replica_rebuild_window_ms);
    std::erase_if(times, [&](auto t) { return now - t > window; });
    if (options_.replica_rebuild_limit > 0 &&
        times.size() >= options_.replica_rebuild_limit) {
      replicas_quarantined_.fetch_add(1, std::memory_order_relaxed);
      pool_.quarantine(*id);
      continue;
    }

    bool ok = true;
    if (rebuilder_) {
      try {
        ok = rebuilder_(*id);
      } catch (...) {
        ok = false;
      }
    }
    if (ok) {
      times.push_back(now);
      // Count before readmitting: anything observing the slot back in
      // rotation must already see it in the rebuilt bucket.
      replicas_rebuilt_.fetch_add(1, std::memory_order_relaxed);
      pool_.readmit(*id);
    } else {
      // A rebuild that failed outright leaves the slot unusable no matter
      // what the rate limit says.
      replicas_quarantined_.fetch_add(1, std::memory_order_relaxed);
      pool_.quarantine(*id);
    }
  }
}

void ServerCore::settle(Pending& item, SessionResult result) {
  switch (result.status) {
    case SessionStatus::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      if (result.degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionStatus::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionStatus::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionStatus::kDeadline:
      deadline_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionStatus::kStopped:
      stopped_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionStatus::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  item.promise.set_value(std::move(result));
}

void ServerCore::stop(StopMode mode) {
  std::vector<Pending> flushed;
  bool do_join = false;
  {
    std::lock_guard<std::mutex> lk(m_);
    stopping_ = true;
    if (mode == StopMode::kNow) {
      stop_now_.store(true, std::memory_order_relaxed);
      while (!queue_.empty()) {
        flushed.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      for (auto& budget : active_) {
        if (budget) budget->cancel();
      }
    }
    if (!joined_) {
      joined_ = true;
      do_join = true;
    }
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& item : flushed) {
    SessionResult r;
    r.id = item.request.id;
    r.status = SessionStatus::kStopped;
    r.queued_ms = elapsed_ms(item.enqueued);
    r.total_ms = r.queued_ms;
    r.detail = "server stopped before the session was dispatched";
    settle(item, std::move(r));
  }
  if (!do_join) return;
  for (auto& w : workers_) w.join();
  watchdog_exit_.store(true, std::memory_order_relaxed);
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // Supervisor last: workers have released every lease by now, so any slot
  // condemned during the drain gets its rebuild before serving ends. Slots
  // still pending when the exit flag lands stay pending (abandoned) and are
  // visible as replicas_pending_rebuild.
  supervisor_exit_.store(true, std::memory_order_relaxed);
  if (supervisor_.joinable()) supervisor_.join();
}

ServerStats ServerCore::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.deadline = deadline_.load(std::memory_order_relaxed);
  s.stopped = stopped_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  s.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
  s.cancelled_points = cancelled_points_.load(std::memory_order_relaxed);
  s.quant_sessions = quant_sessions_.load(std::memory_order_relaxed);
  s.quant_fallbacks = quant_fallbacks_.load(std::memory_order_relaxed);
  s.replicas_condemned = replicas_condemned_.load(std::memory_order_relaxed);
  s.replicas_rebuilt = replicas_rebuilt_.load(std::memory_order_relaxed);
  s.replicas_quarantined =
      replicas_quarantined_.load(std::memory_order_relaxed);
  s.replicas_pending_rebuild = pool_.pending_rebuilds();
  if (coalesce_source_) {
    const CoalesceStats c = coalesce_source_();
    s.coalesced_batches = c.coalesced_batches;
    s.coalesced_points = c.coalesced_points;
  }
  if (plan_source_) {
    const PlanExecStats p = plan_source_();
    s.plans_compiled = p.plans_compiled;
    s.plan_cache_hits = p.cache_hits;
    s.plan_fallbacks = p.fallbacks;
    s.plan_static_bytes = p.static_bytes;
  }
  return s;
}

size_t ServerCore::queue_depth() const {
  std::lock_guard<std::mutex> lk(m_);
  return queue_.size();
}

}  // namespace metadse::serve
