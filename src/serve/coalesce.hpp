// BatchCoalescer: a cross-session batching queue. Concurrent sessions submit
// small predict requests (a few feature rows each); the coalescer assembles
// them into one large fused batch per flush and executes a single
// predict_batch call instead of many small ones — the cuBERT-style
// multi-instance payoff the ROADMAP names. Because predict_batch guarantees
// element i is bitwise identical to predict_one(rows[i]) regardless of what
// else is in the batch, fusing rows from unrelated sessions cannot change any
// session's values: coalesced fronts are bitwise-identical to uncoalesced
// ones (pinned by the CoalesceEquivalence suite).
//
// Flush policy (deterministic given the submit/tick sequence):
//   1. max-batch  — a submit that brings the assembling batch to >= max_batch
//      points flushes immediately; the submitting thread is the leader and
//      executes the fused call inline.
//   2. wait-ticks — tick() advances logical time; a batch whose oldest
//      request has aged wait_ticks ticks is flushed by the ticking thread.
//      With tick_ms > 0 an internal ticker thread calls tick() periodically;
//      tick_ms == 0 leaves ticking to the caller (tests).
//   3. barrier    — flush() force-flushes whatever is assembled.
// At flush, requests are ordered by (session_id, seq) — seq is a per-session
// counter assigned at submit — so assembly order is reproducible no matter
// which thread won the race to submit first.
//
// Cancellation: a cancel while the request is still assembling removes its
// rows from the batch before execution (survivors' values are untouched —
// row independence again); a cancel after the batch went in-flight lets the
// fused call finish (results for the cancelled request are discarded).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace metadse::serve {

/// Coalescing knobs. Defaults suit serving; tests use tick_ms = 0 and drive
/// tick()/flush() by hand for deterministic schedules.
struct CoalesceOptions {
  /// Flush as soon as the assembling batch holds this many points (>= 1).
  size_t max_batch = 64;
  /// Flush a non-empty batch once its oldest request has waited this many
  /// ticks (>= 1) — bounds the latency a lone straggler can add.
  size_t wait_ticks = 2;
  /// Ticker thread period; 0 disables the ticker (manual tick()/flush()).
  size_t tick_ms = 1;
};

/// Monotonic accounting. Once every submitted request has resolved (drained):
///   submitted_points == coalesced_points + cancelled_points + failed_points
///   coalesced_batches == flush_full + flush_tick + flush_barrier
struct CoalesceStats {
  size_t submitted_requests = 0;
  size_t submitted_points = 0;
  size_t coalesced_batches = 0;   ///< successful fused executor calls
  size_t coalesced_points = 0;    ///< points answered by fused calls
  size_t cancelled_points = 0;    ///< points removed from assembly by cancel
  size_t failed_points = 0;       ///< points in batches whose executor threw
  size_t failed_batches = 0;      ///< fused calls whose executor threw
  size_t max_batch_points = 0;    ///< largest successful fused batch
  size_t flush_full = 0;          ///< flushes triggered by max_batch
  size_t flush_tick = 0;          ///< flushes triggered by wait_ticks aging
  size_t flush_barrier = 0;       ///< flushes triggered by flush()

  double mean_batch_points() const {
    return coalesced_batches == 0
               ? 0.0
               : static_cast<double>(coalesced_points) /
                     static_cast<double>(coalesced_batches);
  }
};

/// Thrown to a waiter whose request was cancelled (its own cancel predicate
/// fired, cancel_session() dropped it, or the coalescer shut down).
class CoalesceCancelled : public std::runtime_error {
 public:
  explicit CoalesceCancelled(const std::string& what)
      : std::runtime_error(what) {}
};

class BatchCoalescer {
 public:
  using Rows = std::vector<std::vector<float>>;
  /// The fused call: must return exactly one float per input row, row i
  /// independent of the other rows (the predict_batch contract).
  using Executor = std::function<std::vector<float>(const Rows&)>;

  /// Validates options (max_batch/wait_ticks >= 1, executor non-null) and,
  /// when tick_ms > 0, starts the ticker thread.
  BatchCoalescer(CoalesceOptions options, Executor executor);

  /// Cancels every request still assembling, waits for an in-flight fused
  /// call to finish, and joins the ticker. The caller must guarantee no
  /// thread is inside submit/wait/predict when destruction starts (the
  /// serving engine destroys the coalescer only after ServerCore joined).
  ~BatchCoalescer();

  BatchCoalescer(const BatchCoalescer&) = delete;
  BatchCoalescer& operator=(const BatchCoalescer&) = delete;

  /// Handle to one submitted request; wait() redeems it.
  class Ticket {
   public:
    Ticket() = default;
    bool valid() const { return req_ != nullptr; }

   private:
    friend class BatchCoalescer;
    std::shared_ptr<struct CoalesceRequest> req_;
  };

  /// Enqueues @p rows for session @p session_id (non-blocking apart from an
  /// inline fused execution when this submit fills the batch). Empty rows
  /// resolve immediately with an empty result.
  Ticket submit(uint64_t session_id, Rows rows);

  /// Blocks until the ticket's request resolves. Returns one float per
  /// submitted row, in row order. @p cancel, when set, is polled while
  /// waiting; once it returns true the request is cancelled (dropped from
  /// the assembling batch, or its in-flight result discarded) and
  /// CoalesceCancelled is thrown. Executor exceptions are rethrown verbatim.
  std::vector<float> wait(const Ticket& ticket,
                          const std::function<bool()>& cancel = {});

  /// submit + wait in one call — what the session evaluators use.
  std::vector<float> predict(uint64_t session_id, Rows rows,
                             const std::function<bool()>& cancel = {});

  /// Advances logical time by one tick and flushes an over-age batch.
  void tick();

  /// Session barrier: flushes whatever is assembled right now (no-op when
  /// the batch is empty).
  void flush();

  /// Drops every assembling request of @p session_id (their waiters get
  /// CoalesceCancelled) and marks its in-flight requests for discard.
  void cancel_session(uint64_t session_id);

  CoalesceStats stats() const;
  const CoalesceOptions& options() const { return options_; }

 private:
  enum class FlushCause { kFull, kTick, kBarrier };

  /// Precondition: @p lk holds m_. Executes the assembled batch (releasing
  /// m_ around the fused call, serialized by exec_m_) and scatters results.
  void flush_locked(std::unique_lock<std::mutex>& lk, FlushCause cause);
  /// Precondition: m_ held. Cancels one request according to its state.
  void cancel_locked(const std::shared_ptr<CoalesceRequest>& req);
  void ticker_loop();

  CoalesceOptions options_;
  Executor executor_;

  mutable std::mutex m_;
  std::condition_variable cv_;  ///< waiters: request resolved / shutdown
  std::mutex exec_m_;  ///< serializes fused executor calls (one model)
  std::vector<std::shared_ptr<CoalesceRequest>> assembling_;
  /// Requests whose fused batch is currently executing (m_ released around
  /// the call): cancel_session must still be able to find and mark them.
  std::vector<std::shared_ptr<CoalesceRequest>> in_flight_;
  size_t assembled_points_ = 0;
  uint64_t tick_now_ = 0;   ///< logical clock
  uint64_t open_tick_ = 0;  ///< tick when the oldest assembling request landed
  std::map<uint64_t, uint64_t> next_seq_;  ///< per-session submit counters
  bool stopping_ = false;
  CoalesceStats stats_;

  std::thread ticker_;
  std::condition_variable ticker_cv_;  ///< ticker: shutdown wake-up
};

}  // namespace metadse::serve
