#include "serve/replica.hpp"

#include <stdexcept>

namespace metadse::serve {

ReplicaPool::ReplicaPool(size_t n) : slots_(n) {
  if (n == 0) {
    throw std::invalid_argument("ReplicaPool: need at least one replica");
  }
}

std::optional<ReplicaPool::Lease> ReplicaPool::acquire(
    const std::function<bool()>& abort) {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    // Round-robin sweep: first free healthy slot at or after the cursor.
    for (size_t k = 0; k < slots_.size(); ++k) {
      const size_t i = (rr_ + k) % slots_.size();
      Slot& s = slots_[i];
      if (!s.busy && s.healthy) {
        s.busy = true;
        s.busy_since = std::chrono::steady_clock::now();
        rr_ = (i + 1) % slots_.size();
        return Lease(this, i);
      }
    }
    if (abort && abort()) return std::nullopt;
    // Timed wait so the abort probe is polled even if no release ever
    // arrives (e.g. the whole pool is wedged during shutdown).
    free_cv_.wait_for(lk, std::chrono::milliseconds(10));
  }
}

void ReplicaPool::release(size_t id) {
  {
    std::lock_guard<std::mutex> lk(m_);
    Slot& s = slots_[id];
    s.busy = false;
    s.healthy = true;
  }
  free_cv_.notify_one();
}

bool ReplicaPool::mark_unhealthy(size_t id) {
  std::lock_guard<std::mutex> lk(m_);
  if (id >= slots_.size() || !slots_[id].healthy) return false;
  slots_[id].healthy = false;
  return true;
}

bool ReplicaPool::healthy(size_t id) const {
  std::lock_guard<std::mutex> lk(m_);
  return id < slots_.size() && slots_[id].healthy;
}

std::vector<ReplicaPool::BusyInfo> ReplicaPool::busy_slots() const {
  std::lock_guard<std::mutex> lk(m_);
  const auto now = std::chrono::steady_clock::now();
  std::vector<BusyInfo> out;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (!s.busy || !s.healthy) continue;
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now - s.busy_since)
                        .count();
    out.push_back({i, static_cast<size_t>(ms)});
  }
  return out;
}

}  // namespace metadse::serve
