#include "serve/replica.hpp"

#include <stdexcept>

namespace metadse::serve {

ReplicaPool::ReplicaPool(size_t n) : slots_(n) {
  if (n == 0) {
    throw std::invalid_argument("ReplicaPool: need at least one replica");
  }
}

std::optional<ReplicaPool::Lease> ReplicaPool::acquire(
    const std::function<bool()>& abort) {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    // Round-robin sweep: first idle slot at or after the cursor.
    for (size_t k = 0; k < slots_.size(); ++k) {
      const size_t i = (rr_ + k) % slots_.size();
      Slot& s = slots_[i];
      if (s.state == SlotState::kIdle) {
        s.state = SlotState::kBusy;
        s.busy_since = std::chrono::steady_clock::now();
        rr_ = (i + 1) % slots_.size();
        return Lease(this, i);
      }
    }
    // No point waiting on a pool that can never serve again.
    bool any_alive = false;
    for (const Slot& s : slots_) {
      if (s.state != SlotState::kQuarantined) any_alive = true;
    }
    if (!any_alive) return std::nullopt;
    if (abort && abort()) return std::nullopt;
    // Timed wait so the abort probe is polled even if no release ever
    // arrives (e.g. the whole pool is wedged during shutdown).
    free_cv_.wait_for(lk, std::chrono::milliseconds(10));
  }
}

void ReplicaPool::release(size_t id) {
  bool parked = false;
  {
    std::lock_guard<std::mutex> lk(m_);
    Slot& s = slots_[id];
    if (s.state == SlotState::kCondemnedBusy) {
      s.state = SlotState::kAwaitingRebuild;
      parked = true;
    } else {
      s.state = SlotState::kIdle;
    }
  }
  if (parked) {
    rebuild_cv_.notify_one();
  } else {
    free_cv_.notify_one();
  }
}

bool ReplicaPool::condemn(size_t id) {
  bool parked = false;
  {
    std::lock_guard<std::mutex> lk(m_);
    if (id >= slots_.size()) return false;
    Slot& s = slots_[id];
    switch (s.state) {
      case SlotState::kBusy:
        s.state = SlotState::kCondemnedBusy;
        break;
      case SlotState::kIdle:
        s.state = SlotState::kAwaitingRebuild;
        parked = true;
        break;
      default:
        return false;  // already condemned, rebuilding, or quarantined
    }
  }
  if (parked) rebuild_cv_.notify_one();
  return true;
}

std::optional<size_t> ReplicaPool::take_for_rebuild(
    const std::function<bool()>& abort) {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].state == SlotState::kAwaitingRebuild) {
        slots_[i].state = SlotState::kRebuilding;
        return i;
      }
    }
    if (abort && abort()) return std::nullopt;
    rebuild_cv_.wait_for(lk, std::chrono::milliseconds(10));
  }
}

void ReplicaPool::readmit(size_t id) {
  {
    std::lock_guard<std::mutex> lk(m_);
    Slot& s = slots_.at(id);
    if (s.state != SlotState::kRebuilding) {
      throw std::logic_error("ReplicaPool: readmit of a slot not rebuilding");
    }
    s.state = SlotState::kIdle;
  }
  free_cv_.notify_one();
}

void ReplicaPool::quarantine(size_t id) {
  {
    std::lock_guard<std::mutex> lk(m_);
    Slot& s = slots_.at(id);
    if (s.state != SlotState::kRebuilding) {
      throw std::logic_error(
          "ReplicaPool: quarantine of a slot not rebuilding");
    }
    s.state = SlotState::kQuarantined;
  }
  // Waiters must re-check: if this was the last live slot, acquire() now
  // fails fast instead of blocking forever.
  free_cv_.notify_all();
}

ReplicaPool::SlotState ReplicaPool::state(size_t id) const {
  std::lock_guard<std::mutex> lk(m_);
  return slots_.at(id).state;
}

bool ReplicaPool::healthy(size_t id) const {
  std::lock_guard<std::mutex> lk(m_);
  if (id >= slots_.size()) return false;
  const SlotState s = slots_[id].state;
  return s == SlotState::kIdle || s == SlotState::kBusy;
}

bool ReplicaPool::all_quarantined() const {
  std::lock_guard<std::mutex> lk(m_);
  for (const Slot& s : slots_) {
    if (s.state != SlotState::kQuarantined) return false;
  }
  return true;
}

size_t ReplicaPool::quarantined_count() const {
  std::lock_guard<std::mutex> lk(m_);
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.state == SlotState::kQuarantined) ++n;
  }
  return n;
}

size_t ReplicaPool::pending_rebuilds() const {
  std::lock_guard<std::mutex> lk(m_);
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.state == SlotState::kCondemnedBusy ||
        s.state == SlotState::kAwaitingRebuild ||
        s.state == SlotState::kRebuilding) {
      ++n;
    }
  }
  return n;
}

std::vector<ReplicaPool::BusyInfo> ReplicaPool::busy_slots() const {
  std::lock_guard<std::mutex> lk(m_);
  const auto now = std::chrono::steady_clock::now();
  std::vector<BusyInfo> out;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.state != SlotState::kBusy) continue;
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now - s.busy_since)
                        .count();
    out.push_back({i, static_cast<size_t>(ms)});
  }
  return out;
}

}  // namespace metadse::serve
