// MetaDseSessionEngine: binds ServerCore's generic SessionExecutor contract
// to the real pipeline. Each registered workload is adapted once per replica
// (adapt_to is deterministic, so the replicas are identical clones — the
// replicated-instance pattern), each replica gets its own DatasetGenerator,
// and each session runs the journaled guarded DSE loop through the
// framework's re-entrant run_dse overload. A finished session publishes its
// Pareto front atomically to "<front_dir>/front_<id>.txt" (hexfloat, so a
// resumed run's bitwise-identical archive produces a byte-identical file).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/metadse.hpp"
#include "serve/coalesce.hpp"
#include "serve/serve.hpp"

namespace metadse::serve {

class MetaDseSessionEngine {
 public:
  struct Options {
    /// Template for every session's DSE run: explorer budgets, guard knobs,
    /// baseline_fallback. Per-session fields (journal_path, resume, budget,
    /// seed, start_level, stop_check) are overwritten at dispatch.
    core::MetaDseFramework::DseOptions dse;
    /// Directory for published fronts; empty disables publication.
    std::string front_dir;
    /// Cross-session batch coalescing: when set, every workload gets a
    /// BatchCoalescer backed by a dedicated (bitwise-identical) predictor
    /// clone, and sessions route their surrogate-IPC predictions through it
    /// (DseOptions::predict_rows) instead of their replica's predictor.
    /// Values — and therefore fronts and journals — are unchanged; only the
    /// GEMM granularity is (see DESIGN.md §12). nullopt = per-session
    /// forwards, the PR 6 behaviour.
    std::optional<CoalesceOptions> coalesce;
  };

  /// @p framework must outlive the engine and be pretrained (or loaded).
  MetaDseSessionEngine(const core::MetaDseFramework& framework,
                       size_t replicas, Options options);

  /// Adapts @p support for every replica and registers the workload. Not
  /// thread-safe; call before serving starts.
  void add_workload(const std::string& name, const data::Dataset& support);

  /// Rebuilds one replica slot from scratch: a fresh simulator generator
  /// and a fresh adapt_to clone of every registered workload (warm — the
  /// pretrained model is shared, so the cost is one adaptation per
  /// workload; no checkpoint reload). adapt_to is deterministic, so the
  /// rebuilt replica is bitwise-identical to the original. Intended as the
  /// ServerCore replica rebuilder; must only run while the slot is out of
  /// dispatch (the supervisor guarantees this).
  void rebuild_replica(size_t replica);

  /// The bound executor (captures `this`; the engine must outlive the
  /// ServerCore using it).
  SessionExecutor executor();

  /// Where a session's front is published (front_dir must be non-empty).
  std::string front_path(uint64_t session_id) const;

  /// Serializes an archive in the published-front format (one
  /// "config_id ipc power" hexfloat line per entry, insertion order).
  static std::string format_front(const arch::DesignSpace& space,
                                  const explore::ParetoArchive& archive);

  /// Coalescing accounting summed over every workload's coalescer (all
  /// zeros when coalescing is disabled). Thread-safe.
  CoalesceStats coalesce_stats() const;
  bool coalescing() const { return options_.coalesce.has_value(); }

  /// Static-execution-plan counters from the process-wide plan registry
  /// (replicas share compiled programs through it). Thread-safe.
  PlanExecStats plan_stats() const;

  /// The int8 activation-calibration table captured when @p name was
  /// adapted (replica 0's — all replicas are bitwise-identical clones, so
  /// the tables match). Empty when no calibration was captured. Not
  /// thread-safe against add_workload; throws if @p name is unregistered.
  const std::vector<float>& workload_calibration(const std::string& name)
      const;

 private:
  struct WorkloadEntry {
    const data::Dataset* support;
    /// One adapted predictor per replica, all bitwise-identical.
    std::vector<core::AdaptedPredictor> predictors;
    /// Coalescing only: one more identical clone, owned by the coalescer's
    /// fused executor so cross-session batches never contend with a
    /// replica's own (uncoalesced) predictor use.
    std::unique_ptr<core::AdaptedPredictor> fused_predictor;
    std::unique_ptr<BatchCoalescer> coalescer;
  };

  ExecResult run_session(const SessionRequest& request,
                         const ExecContext& ctx);

  const core::MetaDseFramework& framework_;
  Options options_;
  std::map<std::string, WorkloadEntry> workloads_;
  /// One simulator generator per replica: a replica serves one session at a
  /// time, so its generator is never used concurrently.
  std::vector<data::DatasetGenerator> generators_;
};

}  // namespace metadse::serve
