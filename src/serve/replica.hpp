// Replicated-instance pool: N predictor slots, each leased to at most one
// session at a time. Dispatch is round-robin with a try-acquire sweep (the
// cuBERT BertM pattern): start at the slot after the last one handed out,
// take the first free idle slot, and only block when every dispatchable
// slot is busy.
//
// Fault domain (DESIGN.md §14): a slot that misbehaves — wedged past the
// watchdog threshold, or killed by an executor fault — is *condemned*. A
// condemned slot leaves the dispatch rotation and, once its current lease
// (if any) is released, parks in kAwaitingRebuild for the supervisor, which
// takes it (kRebuilding), rebuilds the replica, and either readmits it
// (kIdle) or quarantines it permanently (kQuarantined). acquire() fails
// fast — instead of blocking forever — once every slot is quarantined.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

namespace metadse::serve {

class ReplicaPool {
 public:
  /// Lifecycle of one replica slot.
  enum class SlotState {
    kIdle,            ///< dispatchable
    kBusy,            ///< leased to a session
    kCondemnedBusy,   ///< condemned mid-session; parks when the lease ends
    kAwaitingRebuild, ///< condemned and free; waiting for the supervisor
    kRebuilding,      ///< the supervisor is rebuilding the replica
    kQuarantined,     ///< permanently out of rotation
  };

  explicit ReplicaPool(size_t n);

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  /// Exclusive hold on one replica slot; releasing wakes one waiter (or
  /// hands a condemned slot to the supervisor).
  class Lease {
   public:
    Lease(Lease&& other) noexcept : pool_(other.pool_), id_(other.id_) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (pool_ != nullptr) pool_->release(id_);
    }
    size_t id() const { return id_; }

   private:
    friend class ReplicaPool;
    Lease(ReplicaPool* pool, size_t id) : pool_(pool), id_(id) {}
    ReplicaPool* pool_;
    size_t id_;
  };

  /// Leases a free idle slot, blocking while none is available. Polls
  /// @p abort (when set) while waiting and returns nullopt once it reports
  /// true — the shutdown path out of a fully-wedged pool. Also returns
  /// nullopt immediately when every slot is quarantined (the pool can never
  /// serve again; distinguish via all_quarantined()).
  std::optional<Lease> acquire(const std::function<bool()>& abort = {});

  /// Removes @p id from dispatch: kBusy -> kCondemnedBusy (it parks for the
  /// supervisor when its lease ends), kIdle -> kAwaitingRebuild (parked
  /// right away). Returns true when this call made the transition, so the
  /// caller can count condemnations exactly once; slots already condemned,
  /// rebuilding, or quarantined return false.
  bool condemn(size_t id);

  /// Supervisor intake: blocks until a slot reaches kAwaitingRebuild, moves
  /// it to kRebuilding and returns its id. Polls @p abort (when set) and
  /// returns nullopt once it reports true (shutdown).
  std::optional<size_t> take_for_rebuild(const std::function<bool()>& abort);

  /// kRebuilding -> kIdle: the rebuilt replica rejoins the rotation.
  void readmit(size_t id);

  /// kRebuilding -> kQuarantined: permanently out of rotation.
  void quarantine(size_t id);

  SlotState state(size_t id) const;
  /// Dispatchable-or-serving (kIdle or kBusy) — the pre-fault notion of a
  /// healthy slot.
  bool healthy(size_t id) const;
  bool all_quarantined() const;
  size_t quarantined_count() const;
  /// Slots condemned but not yet readmitted or quarantined (kCondemnedBusy,
  /// kAwaitingRebuild, or kRebuilding) — the in-flight part of the
  /// condemned == rebuilt + quarantined + pending accounting.
  size_t pending_rebuilds() const;
  size_t size() const { return slots_.size(); }

  /// How long each currently-busy slot has held its lease — the watchdog's
  /// wedge probe. Already-condemned busy slots are excluded (their wedge
  /// was handled; counting them again would double-trip).
  struct BusyInfo {
    size_t replica;
    size_t busy_ms;
  };
  std::vector<BusyInfo> busy_slots() const;

 private:
  struct Slot {
    SlotState state = SlotState::kIdle;
    std::chrono::steady_clock::time_point busy_since{};
  };

  void release(size_t id);

  mutable std::mutex m_;
  std::condition_variable free_cv_;     ///< acquire(): a slot became idle
  std::condition_variable rebuild_cv_;  ///< supervisor: a slot parked
  std::vector<Slot> slots_;
  size_t rr_ = 0;  ///< slot after the last one leased (round-robin start)
};

}  // namespace metadse::serve
