// Replicated-instance pool: N predictor slots, each leased to at most one
// session at a time. Dispatch is round-robin with a try-acquire sweep (the
// cuBERT BertM pattern): start at the slot after the last one handed out,
// take the first free healthy slot, and only block when every healthy slot
// is busy. A watchdog can mark a slot unhealthy (wedged); unhealthy slots
// are skipped by the sweep and rejoin the rotation when their current lease
// is released.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

namespace metadse::serve {

class ReplicaPool {
 public:
  explicit ReplicaPool(size_t n);

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  /// Exclusive hold on one replica slot; releasing re-marks the slot
  /// healthy (a wedged replica that finally finished its session is
  /// presumed usable again) and wakes one waiter.
  class Lease {
   public:
    Lease(Lease&& other) noexcept : pool_(other.pool_), id_(other.id_) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (pool_ != nullptr) pool_->release(id_);
    }
    size_t id() const { return id_; }

   private:
    friend class ReplicaPool;
    Lease(ReplicaPool* pool, size_t id) : pool_(pool), id_(id) {}
    ReplicaPool* pool_;
    size_t id_;
  };

  /// Leases a free healthy slot, blocking while none is available. Polls
  /// @p abort (when set) while waiting and returns nullopt once it reports
  /// true — the shutdown path out of a fully-wedged pool.
  std::optional<Lease> acquire(const std::function<bool()>& abort = {});

  /// Excludes @p id from dispatch until its current lease is released.
  /// Returns true when this call made the transition (already-unhealthy
  /// slots return false, so the caller can count trips exactly once).
  bool mark_unhealthy(size_t id);

  bool healthy(size_t id) const;
  size_t size() const { return slots_.size(); }

  /// How long each currently-busy healthy slot has held its lease —
  /// the watchdog's wedge probe.
  struct BusyInfo {
    size_t replica;
    size_t busy_ms;
  };
  std::vector<BusyInfo> busy_slots() const;

 private:
  struct Slot {
    bool busy = false;
    bool healthy = true;
    std::chrono::steady_clock::time_point busy_since{};
  };

  void release(size_t id);

  mutable std::mutex m_;
  std::condition_variable free_cv_;
  std::vector<Slot> slots_;
  size_t rr_ = 0;  ///< slot after the last one leased (round-robin start)
};

}  // namespace metadse::serve
