// Shared vocabulary of the serving subsystem: what a session request looks
// like, every terminal status a session can reach, the server's tuning knobs
// (admission policy, degradation thresholds, watchdog), and the executor
// contract that binds the generic ServerCore to an actual session engine
// (the MetaDSE DSE loop in production, a synthetic sleeper in the bench).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "explore/guarded.hpp"
#include "explore/run_report.hpp"

namespace metadse::serve {

/// Thrown by a session executor to report that the *replica* it ran on is
/// broken (crashed model state, poisoned cache, chaos kill) — as opposed to
/// an ordinary session failure. The server condemns the slot so the
/// supervisor rebuilds it; the session itself lands in kFailed.
class ReplicaFault : public std::runtime_error {
 public:
  explicit ReplicaFault(const std::string& what) : std::runtime_error(what) {}
};

/// What the admission queue does when a request arrives and it is full.
enum class AdmissionPolicy {
  kBlock,      ///< the submitter waits for space (closed-loop clients)
  kReject,     ///< fail fast with kRejected + a retry-after hint
  kShedOldest, ///< evict the oldest queued session (kShed) to admit the new
};

inline const char* to_string(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kBlock: return "block";
    case AdmissionPolicy::kReject: return "reject";
    case AdmissionPolicy::kShedOldest: return "shed";
  }
  return "?";
}

/// Server tuning knobs. Defaults suit tests; the CLI and bench override.
struct ServeOptions {
  size_t replicas = 1;        ///< predictor instances (>= 1)
  size_t workers = 2;         ///< session worker threads (>= 1)
  size_t queue_capacity = 64; ///< bounded admission queue (>= 1)
  AdmissionPolicy admission = AdmissionPolicy::kReject;
  /// Queue fill fraction (depth/capacity, sampled at dequeue) at or above
  /// which a session is forced to start on the baseline rung of the
  /// degradation ladder — overload pays the cheap forest, not the
  /// transformer. > 1.0 disables load-aware degradation.
  double degrade_at = 0.75;
  /// Per-session wall-clock allowance in ms (queue wait + evaluation +
  /// retry backoff all charge it); 0 = unlimited.
  size_t session_deadline_ms = 0;
  /// Retry-after hint attached to kRejected results.
  size_t retry_after_ms = 50;
  /// Watchdog scan period; 0 disables the watchdog thread.
  size_t watchdog_period_ms = 100;
  /// A replica continuously busy longer than this is declared wedged: it is
  /// condemned (excluded from dispatch, handed to the supervisor for a
  /// rebuild once its lease ends) and its session's budget is cancelled
  /// (cooperative — the session aborts at its next budget check). 0
  /// disables wedge detection.
  size_t wedged_after_ms = 0;
  /// Self-healing circuit breaker: a slot rebuilt more than this many times
  /// within replica_rebuild_window_ms is quarantined (permanently out of
  /// rotation) instead of readmitted — a replica that keeps dying is not
  /// worth rebuilding forever. 0 disables quarantine (every condemned slot
  /// is rebuilt and readmitted, without limit).
  size_t replica_rebuild_limit = 0;
  /// Sliding window for replica_rebuild_limit.
  size_t replica_rebuild_window_ms = 60000;
};

/// One session submitted to the server.
struct SessionRequest {
  uint64_t id = 0;            ///< caller-assigned, unique per session
  std::string workload = {};  ///< target workload name
  uint64_t seed = 0;          ///< explorer seed for this session
  std::string journal_path = {};  ///< per-session WAL; empty = unjournaled
  bool resume = false;        ///< replay an existing journal
};

/// Terminal status of one session.
enum class SessionStatus {
  kOk,        ///< ran to completion (possibly degraded)
  kRejected,  ///< refused at admission (queue full, policy kReject)
  kShed,      ///< evicted from the queue (policy kShedOldest)
  kDeadline,  ///< session budget exhausted or cancelled before completion
  kStopped,   ///< server shutdown interrupted it (journal flushed if any)
  kFailed,    ///< executor error
};

inline const char* to_string(SessionStatus s) {
  switch (s) {
    case SessionStatus::kOk: return "ok";
    case SessionStatus::kRejected: return "rejected";
    case SessionStatus::kShed: return "shed";
    case SessionStatus::kDeadline: return "deadline";
    case SessionStatus::kStopped: return "stopped";
    case SessionStatus::kFailed: return "failed";
  }
  return "?";
}

/// What the submitter's future resolves to.
struct SessionResult {
  uint64_t id = 0;
  SessionStatus status = SessionStatus::kFailed;
  /// The session was served below full quality: forced to the baseline
  /// rung at dispatch, or its run degraded/cancelled points en route.
  bool degraded = false;
  size_t queued_ms = 0;   ///< admission-queue wait
  size_t service_ms = 0;  ///< executor wall-clock
  size_t total_ms = 0;    ///< queued + service
  size_t retry_after_ms = 0;  ///< advisory backoff (kRejected only)
  std::string detail;         ///< run summary or error text
};

/// Monotonic accounting over a server's lifetime. Every submitted session
/// lands in exactly one terminal bucket:
///   submitted == ok + rejected + shed + deadline + stopped + failed
/// once all futures have resolved.
struct ServerStats {
  size_t submitted = 0;
  size_t ok = 0;
  size_t rejected = 0;
  size_t shed = 0;
  size_t deadline = 0;
  size_t stopped = 0;
  size_t failed = 0;
  size_t degraded = 0;          ///< kOk sessions served degraded
  size_t queue_high_water = 0;  ///< max queue depth observed
  size_t watchdog_trips = 0;    ///< replicas declared wedged
  // -- self-healing replica accounting (DESIGN.md §14). Every condemnation
  // resolves into exactly one of rebuilt / quarantined / still pending:
  //   replicas_condemned ==
  //       replicas_rebuilt + replicas_quarantined + replicas_pending_rebuild
  // (pending covers condemned-busy, awaiting-rebuild, and mid-rebuild slots,
  // including those abandoned by shutdown).
  size_t replicas_condemned = 0;   ///< wedge/fault transitions out of service
  size_t replicas_rebuilt = 0;     ///< rebuilds that readmitted the slot
  size_t replicas_quarantined = 0; ///< slots permanently out of rotation
  size_t replicas_pending_rebuild = 0;  ///< condemned, not yet resolved
  /// Evaluator points diverted down the ladder by blown-deadline batch
  /// cancellation (GuardedEvaluator report.cancelled), summed over kOk
  /// sessions. cancelled_points > 0 implies degraded > 0: a session whose
  /// batch was cancelled mid-flight was not served at full quality.
  size_t cancelled_points = 0;
  /// Fused cross-session predict calls / points answered by them, pulled
  /// from the session engine's BatchCoalescers (0 when coalescing is off).
  size_t coalesced_batches = 0;
  size_t coalesced_points = 0;
  /// Static-execution-plan accounting, pulled from the process-wide plan
  /// registry (all zeros when no plan-stats source is installed). Replicas
  /// share compiled programs, so plans_compiled stays flat as replicas
  /// scale while plan_cache_hits tracks serving volume.
  size_t plans_compiled = 0;
  size_t plan_cache_hits = 0;
  size_t plan_fallbacks = 0;
  size_t plan_static_bytes = 0;
  /// Reduced-precision serving accounting: sessions that ran their DSE loop
  /// at a quantized tier, and sessions that requested one but fell back to
  /// fp32 because the quantization error contract tripped (DESIGN.md §15).
  /// quant_fallbacks counts against quant_sessions' requests, not ok.
  size_t quant_sessions = 0;
  size_t quant_fallbacks = 0;
};

/// Snapshot of the plan registry's counters in serve-layer terms (the
/// CoalesceStats pattern: the engine adapts the registry's struct so
/// ServerCore needs no nn dependency).
struct PlanExecStats {
  size_t plans_compiled = 0;
  size_t cache_hits = 0;
  size_t fallbacks = 0;
  size_t static_bytes = 0;
};

/// Per-dispatch context handed to the session executor.
struct ExecContext {
  size_t replica = 0;  ///< replica slot the session leased
  /// Session budget (never null): pre-charged with the queue wait, cancelled
  /// by the watchdog/shutdown. Pass it into the evaluators.
  std::shared_ptr<explore::DeadlineBudget> budget;
  /// True once the server wants the session to stop at the next safe point
  /// (wire it to ExplorerOptions::stop_check).
  std::function<bool()> stop_requested;
  /// Rung the session must start on (kBaseline under load shedding).
  explore::DegradeLevel start_level = explore::DegradeLevel::kSurrogate;
};

/// What a completed execution reports back (errors are thrown instead:
/// StopRequested -> kStopped, ExplorationAborted -> kDeadline/kFailed,
/// anything else -> kFailed).
struct ExecResult {
  bool degraded = false;
  std::string detail;
  /// Points the guard diverted down the ladder after a blown deadline
  /// (report.cancelled). The server folds this into ServerStats::
  /// cancelled_points and treats any nonzero value as a degraded serve.
  size_t cancelled_points = 0;
  /// The session served its DSE loop at a reduced-precision tier.
  bool quantized = false;
  /// A reduced-precision tier was requested but the quantization error
  /// contract tripped; the session ran at fp32 (ServerStats::
  /// quant_fallbacks). Not a degraded serve — fp32 is full quality.
  bool quant_fallback = false;
};

/// The session engine: runs one session to completion on the leased replica.
/// Called with the worker thread already inside a SerialRegionGuard, so all
/// nested parallelism runs inline — concurrency lives across sessions.
using SessionExecutor =
    std::function<ExecResult(const SessionRequest&, const ExecContext&)>;

}  // namespace metadse::serve
