// ServerCore: the long-lived multi-session serving loop. Sessions enter a
// bounded admission queue (block / reject / shed-oldest on overflow), worker
// threads dequeue them, lease a replica from the ReplicaPool, and run the
// session executor under a SerialRegionGuard — per-session compute is
// serial, concurrency lives across sessions. Each session carries a
// DeadlineBudget charged with its queue wait and evaluation time; a
// watchdog thread declares replicas wedged — condemning the slot and
// cancelling its session's budget cooperatively — and a supervisor thread
// rebuilds condemned replicas in the background (readmitting them, or
// quarantining a slot that keeps dying). stop(kDrain) finishes the queue,
// stop(kNow) flushes it and interrupts running sessions at their next safe
// point (journaled sessions flush and remain resumable).
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "serve/coalesce.hpp"
#include "serve/replica.hpp"
#include "serve/serve.hpp"

namespace metadse::serve {

class ServerCore {
 public:
  /// Validates options (replicas/workers/queue_capacity >= 1) and starts
  /// the worker and watchdog threads immediately.
  ServerCore(ServeOptions options, SessionExecutor executor);

  /// stop(kNow) + join.
  ~ServerCore();

  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  /// Admits one session. Always returns a future that eventually resolves
  /// (possibly immediately, with kRejected/kShed). Under AdmissionPolicy::
  /// kBlock a full queue makes this call wait for space. After stop() every
  /// submission resolves kRejected.
  std::future<SessionResult> submit(SessionRequest request);

  enum class StopMode {
    kDrain,  ///< finish every queued session, then stop
    kNow,    ///< flush the queue (kStopped) and interrupt running sessions
  };

  /// Idempotent; returns once every worker and the watchdog have joined.
  void stop(StopMode mode);

  ServerStats stats() const;
  size_t queue_depth() const;
  const ServeOptions& options() const { return options_; }

  /// Installs the source of coalescing counters surfaced by stats()
  /// (typically MetaDseSessionEngine::coalesce_stats). Call before serving
  /// starts; not thread-safe against concurrent stats().
  void set_coalesce_stats(std::function<CoalesceStats()> source) {
    coalesce_source_ = std::move(source);
  }

  /// Installs the source of static-execution-plan counters surfaced by
  /// stats() (typically MetaDseSessionEngine::plan_stats). Call before
  /// serving starts; not thread-safe against concurrent stats().
  void set_plan_stats(std::function<PlanExecStats()> source) {
    plan_source_ = std::move(source);
  }

  /// Rebuilds one condemned replica so the supervisor can readmit it
  /// (typically MetaDseSessionEngine::rebuild_replica: re-adapt every
  /// workload on the slot — warm, checkpoint-free, one adapt_to per
  /// workload). Returns false (or throws) to report the rebuild failed,
  /// which quarantines the slot. Runs on the supervisor thread while the
  /// slot is out of dispatch, so it may mutate per-replica state freely.
  using ReplicaRebuilder = std::function<bool(size_t replica)>;

  /// Installs the rebuilder. Without one, condemned slots are readmitted
  /// as-is (rebuild = no-op success) — the pre-supervisor behaviour where a
  /// wedged replica that finally finished its session is presumed usable.
  /// Call before serving starts; not thread-safe against serving.
  void set_replica_rebuilder(ReplicaRebuilder rebuilder) {
    rebuilder_ = std::move(rebuilder);
  }

  /// The pool's view of one slot (tests and the CLI status line).
  ReplicaPool::SlotState replica_state(size_t id) const {
    return pool_.state(id);
  }

 private:
  struct Pending {
    SessionRequest request;
    std::promise<SessionResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::shared_ptr<explore::DeadlineBudget> budget;
  };

  void worker_loop();
  void watchdog_loop();
  void supervisor_loop();
  /// Condemns @p replica (wedge or executor-reported fault) and counts the
  /// transition once. Returns true when this call made it.
  bool condemn_replica(size_t replica);
  /// Runs one dequeued session end-to-end and settles its promise.
  void serve_one(Pending item, size_t depth_after_pop);
  /// Resolves @p item's promise with @p result and bumps the status bucket.
  void settle(Pending& item, SessionResult result);

  ServeOptions options_;
  SessionExecutor executor_;
  ReplicaPool pool_;

  mutable std::mutex m_;
  std::condition_variable queue_cv_;  ///< workers: queue non-empty / stopping
  std::condition_variable space_cv_;  ///< blocked submitters: space freed
  std::condition_variable watchdog_cv_;  ///< watchdog: shutdown wake-up
  std::deque<Pending> queue_;
  bool stopping_ = false;  ///< no new admissions
  std::atomic<bool> stop_now_{false};  ///< interrupt running sessions
  std::atomic<bool> watchdog_exit_{false};
  /// Budget of the session currently holding each replica (watchdog target).
  std::vector<std::shared_ptr<explore::DeadlineBudget>> active_;

  // Terminal-status buckets (relaxed atomics; stats() is a snapshot).
  std::atomic<size_t> submitted_{0};
  std::atomic<size_t> ok_{0};
  std::atomic<size_t> rejected_{0};
  std::atomic<size_t> shed_{0};
  std::atomic<size_t> deadline_{0};
  std::atomic<size_t> stopped_{0};
  std::atomic<size_t> failed_{0};
  std::atomic<size_t> degraded_{0};
  std::atomic<size_t> queue_high_water_{0};
  std::atomic<size_t> watchdog_trips_{0};
  std::atomic<size_t> cancelled_points_{0};
  std::atomic<size_t> quant_sessions_{0};
  std::atomic<size_t> quant_fallbacks_{0};
  std::atomic<size_t> replicas_condemned_{0};
  std::atomic<size_t> replicas_rebuilt_{0};
  std::atomic<size_t> replicas_quarantined_{0};

  std::function<CoalesceStats()> coalesce_source_;
  std::function<PlanExecStats()> plan_source_;
  ReplicaRebuilder rebuilder_;
  /// Recent rebuild completion times per slot (supervisor thread only) —
  /// the sliding window behind replica_rebuild_limit.
  std::vector<std::vector<std::chrono::steady_clock::time_point>>
      rebuild_times_;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::thread supervisor_;
  std::atomic<bool> supervisor_exit_{false};
  bool joined_ = false;  ///< guarded by m_
};

}  // namespace metadse::serve
