#include "serve/coalesce.hpp"

#include <algorithm>
#include <chrono>

#include "core/chaos.hpp"
#include "sim/fault_injection.hpp"

namespace metadse::serve {

/// One submitted request's full lifecycle. State transitions (under m_):
///   kAssembling -> kInFlight -> kDone | kFailed
///   kAssembling -> kCancelled            (dropped before execution)
/// cancel_requested marks an in-flight request whose waiter gave up: the
/// fused call still completes (other sessions' rows ride in it), but the
/// waiter throws and the result is discarded.
struct CoalesceRequest {
  uint64_t session_id = 0;
  uint64_t seq = 0;
  BatchCoalescer::Rows rows;
  enum class State { kAssembling, kInFlight, kDone, kFailed, kCancelled };
  State state = State::kAssembling;
  bool cancel_requested = false;
  std::vector<float> result;
  std::exception_ptr error;
};

namespace {

using State = CoalesceRequest::State;

bool resolved(const CoalesceRequest& r) {
  return r.state == State::kDone || r.state == State::kFailed ||
         r.state == State::kCancelled;
}

}  // namespace

BatchCoalescer::BatchCoalescer(CoalesceOptions options, Executor executor)
    : options_(options), executor_(std::move(executor)) {
  if (!executor_) {
    throw std::invalid_argument("BatchCoalescer: null executor");
  }
  if (options_.max_batch == 0) {
    throw std::invalid_argument("BatchCoalescer: max_batch must be >= 1");
  }
  if (options_.wait_ticks == 0) {
    throw std::invalid_argument("BatchCoalescer: wait_ticks must be >= 1");
  }
  if (options_.tick_ms > 0) {
    ticker_ = std::thread([this] { ticker_loop(); });
  }
}

BatchCoalescer::~BatchCoalescer() {
  {
    std::unique_lock<std::mutex> lk(m_);
    stopping_ = true;
    for (auto& req : assembling_) {
      req->state = State::kCancelled;
      stats_.cancelled_points += req->rows.size();
    }
    assembling_.clear();
    assembled_points_ = 0;
  }
  cv_.notify_all();
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  // Wait out an in-flight fused call so the executor never outlives us.
  { std::lock_guard<std::mutex> ex(exec_m_); }
}

BatchCoalescer::Ticket BatchCoalescer::submit(uint64_t session_id,
                                              Rows rows) {
  auto req = std::make_shared<CoalesceRequest>();
  req->session_id = session_id;
  req->rows = std::move(rows);

  std::unique_lock<std::mutex> lk(m_);
  if (stopping_) {
    throw std::logic_error("BatchCoalescer: submit after shutdown");
  }
  req->seq = next_seq_[session_id]++;
  stats_.submitted_requests += 1;
  stats_.submitted_points += req->rows.size();
  if (req->rows.empty()) {
    // Nothing to coalesce; resolve immediately so waiters never block.
    req->state = State::kDone;
  } else {
    if (assembling_.empty()) open_tick_ = tick_now_;
    assembling_.push_back(req);
    assembled_points_ += req->rows.size();
    if (assembled_points_ >= options_.max_batch) {
      flush_locked(lk, FlushCause::kFull);
    }
  }
  Ticket t;
  t.req_ = std::move(req);
  return t;
}

std::vector<float> BatchCoalescer::wait(const Ticket& ticket,
                                        const std::function<bool()>& cancel) {
  if (!ticket.valid()) {
    throw std::logic_error("BatchCoalescer: wait on an invalid ticket");
  }
  const auto& req = ticket.req_;
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    if (resolved(*req)) {
      switch (req->state) {
        case State::kDone:
          if (req->cancel_requested) {
            throw CoalesceCancelled(
                "coalesce: request cancelled while its fused batch was "
                "in flight; result discarded");
          }
          return req->result;
        case State::kFailed:
          std::rethrow_exception(req->error);
        default:  // kCancelled
          throw CoalesceCancelled(
              "coalesce: request dropped from the assembling batch");
      }
    }
    if (cancel && cancel()) {
      cancel_locked(req);
      continue;  // resolves as kCancelled or waits out the in-flight batch
    }
    // Bounded wait so the cancel predicate is polled even when no flush is
    // coming (e.g. the budget was cancelled while this straggler waits).
    cv_.wait_for(lk, std::chrono::milliseconds(1));
  }
}

std::vector<float> BatchCoalescer::predict(uint64_t session_id, Rows rows,
                                           const std::function<bool()>&
                                               cancel) {
  return wait(submit(session_id, std::move(rows)), cancel);
}

void BatchCoalescer::tick() {
  std::unique_lock<std::mutex> lk(m_);
  ++tick_now_;
  if (!assembling_.empty() &&
      tick_now_ - open_tick_ >= options_.wait_ticks) {
    flush_locked(lk, FlushCause::kTick);
  }
}

void BatchCoalescer::flush() {
  std::unique_lock<std::mutex> lk(m_);
  if (!assembling_.empty()) flush_locked(lk, FlushCause::kBarrier);
}

void BatchCoalescer::cancel_session(uint64_t session_id) {
  std::unique_lock<std::mutex> lk(m_);
  // Snapshot first: cancel_locked mutates assembling_.
  std::vector<std::shared_ptr<CoalesceRequest>> mine;
  for (const auto& req : assembling_) {
    if (req->session_id == session_id) mine.push_back(req);
  }
  for (const auto& req : in_flight_) {
    if (req->session_id == session_id) mine.push_back(req);
  }
  for (const auto& req : mine) cancel_locked(req);
  cv_.notify_all();
}

void BatchCoalescer::cancel_locked(
    const std::shared_ptr<CoalesceRequest>& req) {
  switch (req->state) {
    case State::kAssembling: {
      // Remove its rows before the batch executes: survivors' values are
      // unaffected because each row's result is independent of the batch.
      auto it = std::find(assembling_.begin(), assembling_.end(), req);
      if (it != assembling_.end()) assembling_.erase(it);
      assembled_points_ -= req->rows.size();
      stats_.cancelled_points += req->rows.size();
      req->state = State::kCancelled;
      break;
    }
    case State::kInFlight:
      // Too late to pull the rows; discard the result at resolution.
      req->cancel_requested = true;
      break;
    default:
      break;  // already resolved
  }
}

void BatchCoalescer::flush_locked(std::unique_lock<std::mutex>& lk,
                                  FlushCause cause) {
  std::vector<std::shared_ptr<CoalesceRequest>> batch =
      std::move(assembling_);
  assembling_.clear();
  assembled_points_ = 0;
  if (batch.empty()) return;

  // Reproducible assembly order regardless of which thread submitted first.
  std::sort(batch.begin(), batch.end(),
            [](const auto& a, const auto& b) {
              return a->session_id != b->session_id
                         ? a->session_id < b->session_id
                         : a->seq < b->seq;
            });
  Rows fused;
  size_t total = 0;
  for (const auto& req : batch) total += req->rows.size();
  fused.reserve(total);
  for (auto& req : batch) {
    req->state = State::kInFlight;
    in_flight_.push_back(req);
    for (const auto& row : req->rows) fused.push_back(row);
  }

  // The fused call runs outside m_ (submitters/tickers stay unblocked,
  // assembling the next batch) but under exec_m_: one model, one fused
  // forward at a time.
  lk.unlock();
  std::vector<float> results;
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> ex(exec_m_);
    try {
      // Chaos: a failed fused forward. Every waiter in this batch rethrows
      // it and their guards retry/degrade — exactly the executor-throw path.
      if (core::chaos::fire("coalesce.flush")) {
        throw sim::SimulationFailure("injected coalesce flush fault");
      }
      results = executor_(fused);
      if (results.size() != total) {
        throw std::runtime_error(
            "BatchCoalescer: executor returned " +
            std::to_string(results.size()) + " results for " +
            std::to_string(total) + " rows");
      }
    } catch (...) {
      error = std::current_exception();
    }
  }
  lk.lock();
  // Only this batch's entries: a concurrent flush may have its own in
  // flight while m_ was released.
  for (const auto& req : batch) {
    auto it = std::find(in_flight_.begin(), in_flight_.end(), req);
    if (it != in_flight_.end()) in_flight_.erase(it);
  }

  if (error) {
    for (auto& req : batch) {
      req->state = State::kFailed;
      req->error = error;
    }
    stats_.failed_points += total;
    stats_.failed_batches += 1;
  } else {
    size_t offset = 0;
    for (auto& req : batch) {
      req->result.assign(results.begin() + static_cast<std::ptrdiff_t>(offset),
                         results.begin() +
                             static_cast<std::ptrdiff_t>(offset +
                                                         req->rows.size()));
      offset += req->rows.size();
      req->state = State::kDone;
    }
    stats_.coalesced_batches += 1;
    stats_.coalesced_points += total;
    stats_.max_batch_points = std::max(stats_.max_batch_points, total);
    switch (cause) {
      case FlushCause::kFull: stats_.flush_full += 1; break;
      case FlushCause::kTick: stats_.flush_tick += 1; break;
      case FlushCause::kBarrier: stats_.flush_barrier += 1; break;
    }
  }
  cv_.notify_all();
}

CoalesceStats BatchCoalescer::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return stats_;
}

void BatchCoalescer::ticker_loop() {
  std::unique_lock<std::mutex> lk(m_);
  while (!stopping_) {
    ticker_cv_.wait_for(lk, std::chrono::milliseconds(options_.tick_ms));
    if (stopping_) return;
    ++tick_now_;
    if (!assembling_.empty() &&
        tick_now_ - open_tick_ >= options_.wait_ticks) {
      flush_locked(lk, FlushCause::kTick);
    }
  }
}

}  // namespace metadse::serve
