// Deterministic fixed-size thread-pool parallelism for the training and
// simulation hot paths (GEMM row blocks, MAML meta-batch tasks, dataset
// design points, forest trees).
//
// Determinism contract: parallelism here never changes *what* is computed,
// only *where*. Work is split into contiguous index blocks by a pure
// function of (n, grain, thread count); each block is independent and
// touches disjoint state; any cross-block combination happens on the
// calling thread in ascending index order (parallel_map_reduce). Floating
// point results are therefore bitwise identical for every thread count,
// including 1 — a property tests/test_parallel_equivalence.cpp enforces.
//
// There is no work stealing and no persistent task queue: a parallel region
// hands its blocks to the pool, the calling thread works alongside the
// workers, and the region does not return until every block has finished
// (exceptions from blocks are rethrown on the caller). Nested parallel
// regions run inline on the worker they occur on, so composing parallel
// layers (e.g. a parallel MAML task whose forward pass hits parallel GEMM)
// degrades to the serial code path instead of deadlocking.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace metadse::core {

/// Threads the host advertises (>= 1).
size_t hardware_threads();

/// Sets the global compute width. @p n = 0 selects the hardware default
/// (or the METADSE_THREADS environment variable when set); 1 restores the
/// exact single-threaded code path. Takes effect on the next parallel
/// region; not safe to call from inside one.
void set_threads(size_t n);

/// The compute width parallel regions will use (>= 1).
size_t threads();

/// True while the current thread is executing a pool block (nested parallel
/// regions run inline).
bool in_parallel_region();

/// RAII guard that marks the current thread as already inside a parallel
/// region, forcing every parallel primitive it calls to run inline (serial).
/// The global pool has a single in-flight batch slot, so concurrent
/// *top-level* regions from independent threads are unsafe; a server worker
/// executing sessions concurrently holds one of these so its per-session
/// compute is serial and the concurrency lives across sessions instead.
/// Restores the previous thread-local state on destruction (nestable).
class SerialRegionGuard {
 public:
  SerialRegionGuard();
  ~SerialRegionGuard();
  SerialRegionGuard(const SerialRegionGuard&) = delete;
  SerialRegionGuard& operator=(const SerialRegionGuard&) = delete;

 private:
  bool prev_;
};

/// Runs @p body(lo, hi) over a partition of [0, n) into contiguous blocks
/// of at least @p grain indices, at most one block per thread. Blocks run
/// concurrently on the pool plus the calling thread; the call returns after
/// all blocks complete. The partition is a pure function of
/// (n, grain, threads()), and with threads() == 1, n == 0, or
/// n <= grain the body runs inline as body(0, n) with no pool involvement.
/// The first exception thrown by any block is rethrown on the caller.
void parallel_for_blocks(size_t n, size_t grain,
                         const std::function<void(size_t, size_t)>& body);

/// Statically-typed variant of parallel_for_blocks: when the partition would
/// be a single serial block anyway (one thread, nested region, or n <=
/// grain) the body is invoked directly — no std::function construction, and
/// the body inlines into the caller. Otherwise defers to the type-erased
/// overload. The partition, and therefore every result, is identical to
/// parallel_for_blocks for the same (n, grain, threads()).
template <typename Body>
void parallel_for_blocks_static(size_t n, size_t grain, Body&& body) {
  if (n == 0) return;
  const size_t width = in_parallel_region() ? 1 : threads();
  if (width <= 1 || n <= std::max<size_t>(grain, 1)) {
    body(0, n);
    return;
  }
  parallel_for_blocks(n, grain, body);
}

/// Ordered map-reduce: computes map(i) for i in [0, n) in parallel, then
/// applies reduce(i, result) serially on the calling thread in ascending i.
/// This is the primitive behind every "parallel compute, serial bitwise
/// reduction" site (MAML meta-gradients, dataset reports, forest trees).
template <typename T, typename MapFn, typename ReduceFn>
void parallel_map_reduce(size_t n, MapFn&& map, ReduceFn&& reduce) {
  std::vector<T> results(n);
  parallel_for_blocks(n, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) results[i] = map(i);
  });
  for (size_t i = 0; i < n; ++i) reduce(i, std::move(results[i]));
}

}  // namespace metadse::core

namespace metadse {
// Public knobs live at top level: metadse::set_threads(8).
using core::hardware_threads;
using core::set_threads;
using core::threads;
}  // namespace metadse
