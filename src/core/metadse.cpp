#include "core/metadse.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "eval/metrics.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"

namespace metadse::core {

float AdaptedPredictor::predict(const std::vector<float>& features) const {
  const auto scaled = model->predict_one(features);
  return scaler.inverse({scaled.front()}).front();
}

MetaDseFramework::MetaDseFramework(FrameworkOptions options)
    : options_(options),
      space_(&arch::DesignSpace::table1()),
      generator_(*space_) {
  if (options_.predictor.n_tokens != space_->num_params()) {
    throw std::invalid_argument(
        "FrameworkOptions: predictor.n_tokens must equal the design-space "
        "parameter count (" + std::to_string(space_->num_params()) + ")");
  }
}

const data::Dataset& MetaDseFramework::dataset(const std::string& workload) {
  auto it = cache_.find(workload);
  if (it != cache_.end()) return it->second;
  const auto& wl = suite_.by_name(workload);
  // Per-workload deterministic seed so dataset identity is independent of
  // generation order.
  tensor::Rng rng(options_.seed ^ std::hash<std::string>{}(workload));
  auto ds = generator_.generate(wl, options_.samples_per_workload, rng);
  return cache_.emplace(workload, std::move(ds)).first->second;
}

std::vector<data::Dataset> MetaDseFramework::datasets(
    const std::vector<std::string>& names) {
  std::vector<data::Dataset> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(dataset(n));
  return out;
}

void MetaDseFramework::pretrain() {
  const auto train_names = suite_.names(workload::SplitRole::kTrain);
  const auto val_names = suite_.names(workload::SplitRole::kValidation);
  auto train_sets = datasets(train_names);
  auto val_sets = datasets(val_names);
  trainer_ = std::make_unique<meta::MamlTrainer>(options_.predictor,
                                                 options_.maml);
  trainer_->train(train_sets, val_sets);
  mean_attention_ = trainer_->mean_attention();
  wam_mask_ =
      meta::WamGenerator::from_mean_attention(mean_attention_, options_.wam);
  loaded_model_.reset();
  loaded_scaler_.reset();
}

const nn::TransformerRegressor& MetaDseFramework::model() const {
  if (trainer_) return trainer_->model();
  if (loaded_model_) return *loaded_model_;
  throw std::logic_error("MetaDseFramework: pretrain() or load_checkpoint() first");
}

const data::Scaler& MetaDseFramework::scaler() const {
  if (trainer_) return trainer_->scaler();
  if (loaded_scaler_) return *loaded_scaler_;
  throw std::logic_error("MetaDseFramework: pretrain() or load_checkpoint() first");
}

const tensor::Tensor& MetaDseFramework::wam_mask() const {
  if (!wam_mask_.defined()) {
    throw std::logic_error("MetaDseFramework: no WAM (pretrain first)");
  }
  return wam_mask_;
}

const tensor::Tensor& MetaDseFramework::mean_attention() const {
  if (!mean_attention_.defined()) {
    throw std::logic_error(
        "MetaDseFramework: no attention statistic (pretrain or load first)");
  }
  return mean_attention_;
}

void MetaDseFramework::regenerate_wam(const meta::WamOptions& options) {
  wam_mask_ =
      meta::WamGenerator::from_mean_attention(mean_attention(), options);
  options_.wam = options;
}

const std::vector<meta::EpochTrace>& MetaDseFramework::trace() const {
  if (trainer_) return trainer_->trace();
  return loaded_trace_;
}

namespace {
constexpr uint32_t kCkptMagic = 0x4D44'4B32;  // "MDK2"

template <typename T>
void wr(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
T rd(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("checkpoint: truncated file");
  return v;
}
void wr_vec(std::ofstream& os, const std::vector<float>& v) {
  wr(os, static_cast<uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}
std::vector<float> rd_vec(std::ifstream& is) {
  const auto n = rd<uint64_t>(is);
  std::vector<float> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) throw std::runtime_error("checkpoint: truncated vector");
  return v;
}
}  // namespace

void MetaDseFramework::save_checkpoint(const std::string& path) const {
  const auto& m = model();
  const auto& sc = scaler();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("save_checkpoint: cannot open " + path);
  wr(os, kCkptMagic);
  wr(os, static_cast<uint64_t>(options_.predictor.n_tokens));
  wr(os, static_cast<uint64_t>(options_.predictor.d_model));
  wr(os, static_cast<uint64_t>(options_.predictor.n_layers));
  wr_vec(os, sc.mean());
  wr_vec(os, sc.stddev());
  wr_vec(os, mean_attention().data());
  wr_vec(os, m.flatten_parameters());
  if (!os) throw std::runtime_error("save_checkpoint: write failed");
}

bool MetaDseFramework::load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  if (rd<uint32_t>(is) != kCkptMagic) {
    throw std::runtime_error("load_checkpoint: bad magic in " + path);
  }
  if (rd<uint64_t>(is) != options_.predictor.n_tokens ||
      rd<uint64_t>(is) != options_.predictor.d_model ||
      rd<uint64_t>(is) != options_.predictor.n_layers) {
    throw std::runtime_error("load_checkpoint: architecture mismatch in " +
                             path);
  }
  const auto mean = rd_vec(is);
  const auto stddev = rd_vec(is);
  const auto attn = rd_vec(is);
  const auto flat = rd_vec(is);

  data::Scaler sc;
  std::vector<std::vector<float>> rows{mean, mean};  // placeholder fit
  sc.fit(rows);
  // Overwrite with the stored statistics via transform identity trick:
  // Scaler has no setters by design; rebuild from two synthetic rows whose
  // mean/std match the stored values.
  {
    std::vector<std::vector<float>> synth(2, std::vector<float>(mean.size()));
    for (size_t j = 0; j < mean.size(); ++j) {
      synth[0][j] = mean[j] - stddev[j];
      synth[1][j] = mean[j] + stddev[j];
    }
    sc = data::Scaler();
    sc.fit(synth);
  }
  loaded_scaler_ = sc;

  nn::TransformerConfig cfg = options_.predictor;
  cfg.n_outputs = data::target_width(options_.maml.target);
  tensor::Rng rng(0);
  loaded_model_ = std::make_unique<nn::TransformerRegressor>(cfg, rng);
  loaded_model_->unflatten_parameters(flat);
  const size_t n = options_.predictor.n_tokens;
  mean_attention_ = tensor::Tensor::from_vector({n, n}, attn);
  // The WAM is always derived from the stored statistic with the *current*
  // options, so WamOptions changes apply without retraining.
  wam_mask_ =
      meta::WamGenerator::from_mean_attention(mean_attention_, options_.wam);
  trainer_.reset();
  return true;
}

std::unique_ptr<nn::TransformerRegressor> MetaDseFramework::adapt_task(
    const tensor::Tensor& support_x, const tensor::Tensor& support_y_scaled,
    bool use_wam) const {
  meta::AdaptOptions opts = options_.adapt;
  opts.use_wam = use_wam;
  return meta::wam_adapt(model(), use_wam ? wam_mask() : tensor::Tensor(),
                         support_x, support_y_scaled, opts);
}

AdaptedPredictor MetaDseFramework::adapt_to(
    const data::Dataset& target_support) const {
  if (target_support.empty()) {
    throw std::invalid_argument("adapt_to: empty support dataset");
  }
  const size_t n = target_support.size();
  const size_t n_feat = target_support.samples.front().features.size();
  std::vector<float> xs;
  std::vector<float> ys;
  for (const auto& s : target_support.samples) {
    xs.insert(xs.end(), s.features.begin(), s.features.end());
    ys.push_back(data::target_of(s, options_.maml.target).front());
  }
  auto x = tensor::Tensor::from_vector({n, n_feat}, std::move(xs));
  auto y_raw = tensor::Tensor::from_vector({n, 1}, std::move(ys));
  auto y = scaler().transform(y_raw);

  AdaptedPredictor out;
  out.model = adapt_task(x, y, options_.adapt.use_wam);
  out.scaler = scaler();
  return out;
}

std::vector<TaskEval> MetaDseFramework::evaluate(const std::string& workload,
                                                 size_t n_tasks,
                                                 size_t support, size_t query,
                                                 bool use_wam,
                                                 tensor::Rng& rng) {
  const auto& ds = dataset(workload);
  data::TaskSampler sampler(ds, support, query, options_.maml.target);
  std::vector<TaskEval> out;
  out.reserve(n_tasks);
  tensor::Rng fwd(0);
  for (size_t k = 0; k < n_tasks; ++k) {
    auto task = sampler.sample(rng);
    auto sup_y = scaler().transform(task.support_y);
    auto adapted = adapt_task(task.support_x, sup_y, use_wam);
    auto pred_scaled = adapted->forward(task.query_x, fwd);
    auto pred = scaler().inverse(pred_scaled);
    TaskEval ev;
    ev.rmse = eval::rmse(task.query_y.data(), pred.data());
    ev.mape = eval::mape(task.query_y.data(), pred.data());
    ev.ev = eval::explained_variance(task.query_y.data(), pred.data());
    out.push_back(ev);
  }
  return out;
}

}  // namespace metadse::core
