#include "core/metadse.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "baselines/ensembles.hpp"
#include "core/chaos.hpp"
#include "core/parallel.hpp"
#include "eval/metrics.hpp"
#include "nn/plan.hpp"
#include "nn/serialize.hpp"
#include "sim/fault_injection.hpp"
#include "tensor/guard.hpp"
#include "tensor/ops.hpp"

namespace metadse::core {

float AdaptedPredictor::predict(const std::vector<float>& features) const {
  if (chaos::fire("replica.predict")) {
    throw sim::SimulationFailure("injected replica predict fault");
  }
  const auto scaled = model->predict_one(features);
  return scaler.inverse({scaled.front()}).front();
}

std::vector<float> AdaptedPredictor::predict_batch(
    const std::vector<std::vector<float>>& rows) const {
  if (chaos::fire("replica.predict")) {
    throw sim::SimulationFailure("injected replica predict fault");
  }
  const auto scaled = model->predict_batch(rows);
  std::vector<float> out;
  out.reserve(rows.size());
  for (const auto& y : scaled) {
    out.push_back(scaler.inverse({y.front()}).front());
  }
  return out;
}

MetaDseFramework::MetaDseFramework(FrameworkOptions options)
    : options_(options),
      space_(&arch::DesignSpace::table1()),
      generator_(*space_) {
  if (options_.predictor.n_tokens != space_->num_params()) {
    throw std::invalid_argument(
        "FrameworkOptions: predictor.n_tokens must equal the design-space "
        "parameter count (" + std::to_string(space_->num_params()) + ")");
  }
}

const data::Dataset& MetaDseFramework::dataset(const std::string& workload) {
  auto it = cache_.find(workload);
  if (it != cache_.end()) return it->second;
  auto [ds, report] = generate_one(workload);
  if (ds.empty()) {
    throw std::runtime_error("dataset: every design point for '" + workload +
                             "' failed labelling (" + report.summary() + ")");
  }
  reports_[workload] = std::move(report);
  return cache_.emplace(workload, std::move(ds)).first->second;
}

std::pair<data::Dataset, data::GenerationReport>
MetaDseFramework::generate_one(const std::string& workload) const {
  const auto& wl = suite_.by_name(workload);
  // Per-workload deterministic seed so dataset identity is independent of
  // generation order (and of which pool worker generates it).
  tensor::Rng rng(options_.seed ^ std::hash<std::string>{}(workload));
  data::GenerationReport report;
  auto ds = generator_.generate(wl, options_.samples_per_workload, rng,
                                /*latin_hypercube=*/true, &report);
  return {std::move(ds), std::move(report)};
}

void MetaDseFramework::set_fault_plan(const sim::FaultPlan& plan) {
  generator_.set_fault_plan(plan);
}

void MetaDseFramework::set_retry_policy(const data::RetryPolicy& policy) {
  generator_.set_retry_policy(policy);
}

const data::GenerationReport& MetaDseFramework::generation_report(
    const std::string& workload) const {
  return reports_.at(workload);
}

std::vector<data::Dataset> MetaDseFramework::datasets(
    const std::vector<std::string>& names) {
  // Generate the uncached workloads on the pool (each draws from its own
  // per-workload seeded RNG, so results are identical to generating them one
  // at a time), then fold them into the cache in name order — the same
  // datasets, reports, and failure behaviour as the serial loop.
  std::vector<std::string> missing;
  for (const auto& n : names) {
    if (cache_.find(n) == cache_.end() &&
        std::find(missing.begin(), missing.end(), n) == missing.end()) {
      missing.push_back(n);
    }
  }
  core::parallel_map_reduce<std::pair<data::Dataset, data::GenerationReport>>(
      missing.size(), [&](size_t i) { return generate_one(missing[i]); },
      [&](size_t i, std::pair<data::Dataset, data::GenerationReport> r) {
        if (r.first.empty()) {
          throw std::runtime_error("dataset: every design point for '" +
                                   missing[i] + "' failed labelling (" +
                                   r.second.summary() + ")");
        }
        reports_[missing[i]] = std::move(r.second);
        cache_.emplace(missing[i], std::move(r.first));
      });
  std::vector<data::Dataset> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(dataset(n));
  return out;
}

void MetaDseFramework::pretrain() {
  // Resume path: an autosaved run that already finished is loaded outright;
  // an unfinished one warm-starts the trainer at its last completed epoch.
  std::optional<meta::MamlTrainer::WarmStart> warm;
  if (!options_.autosave_path.empty()) {
    warm = load_warm_start(options_.autosave_path);
    if (warm && warm->trace.size() >= options_.maml.epochs) {
      load_checkpoint(options_.autosave_path);
      return;
    }
  }

  const auto train_names = suite_.names(workload::SplitRole::kTrain);
  const auto val_names = suite_.names(workload::SplitRole::kValidation);
  auto train_sets = datasets(train_names);
  auto val_sets = datasets(val_names);
  trainer_ = std::make_unique<meta::MamlTrainer>(options_.predictor,
                                                 options_.maml);
  if (warm) trainer_->set_warm_start(std::move(*warm));
  if (!options_.autosave_path.empty()) {
    const size_t period = options_.autosave_period == 0
                              ? size_t{1}
                              : options_.autosave_period;
    trainer_->set_epoch_callback([this, period](size_t epoch,
                                                const meta::EpochTrace&) {
      if ((epoch + 1) % period != 0 || trainer_->attention_count() == 0) {
        return;
      }
      write_checkpoint(options_.autosave_path,
                       trainer_->best_model().flatten_parameters(),
                       trainer_->scaler(),
                       trainer_->mean_attention().data(),
                       trainer_->attention_count(), trainer_->trace(),
                       trainer_->best_val_loss());
    });
  }
  trainer_->train(train_sets, val_sets);
  mean_attention_ = trainer_->mean_attention();
  wam_mask_ =
      meta::WamGenerator::from_mean_attention(mean_attention_, options_.wam);
  loaded_model_.reset();
  loaded_scaler_.reset();
}

const nn::TransformerRegressor& MetaDseFramework::model() const {
  if (trainer_) return trainer_->model();
  if (loaded_model_) return *loaded_model_;
  throw std::logic_error("MetaDseFramework: pretrain() or load_checkpoint() first");
}

const data::Scaler& MetaDseFramework::scaler() const {
  if (trainer_) return trainer_->scaler();
  if (loaded_scaler_) return *loaded_scaler_;
  throw std::logic_error("MetaDseFramework: pretrain() or load_checkpoint() first");
}

const tensor::Tensor& MetaDseFramework::wam_mask() const {
  if (!wam_mask_.defined()) {
    throw std::logic_error("MetaDseFramework: no WAM (pretrain first)");
  }
  return wam_mask_;
}

const tensor::Tensor& MetaDseFramework::mean_attention() const {
  if (!mean_attention_.defined()) {
    throw std::logic_error(
        "MetaDseFramework: no attention statistic (pretrain or load first)");
  }
  return mean_attention_;
}

void MetaDseFramework::regenerate_wam(const meta::WamOptions& options) {
  wam_mask_ =
      meta::WamGenerator::from_mean_attention(mean_attention(), options);
  options_.wam = options;
}

const std::vector<meta::EpochTrace>& MetaDseFramework::trace() const {
  if (trainer_) return trainer_->trace();
  return loaded_trace_;
}

namespace {
constexpr uint32_t kCkptMagicV1 = 0x4D44'4B32;  // "MDK2": legacy, unchecksummed
constexpr uint32_t kCkptMagicV2 = 0x4D44'4B50;  // "MDKP"
constexpr uint32_t kCkptVersion = 2;
constexpr uint64_t kMaxTraceEpochs = 1'000'000;  // sanity bound before alloc

template <typename T>
void put(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}
void put_vec(std::string& out, const std::vector<float>& v) {
  put(out, static_cast<uint64_t>(v.size()));
  out.append(reinterpret_cast<const char*>(v.data()),
             v.size() * sizeof(float));
}

/// Bounds-checked cursor over an in-memory checkpoint image.
class Cursor {
 public:
  Cursor(const std::string& bytes, std::string context)
      : bytes_(bytes), context_(std::move(context)) {}

  template <typename T>
  T pod() {
    T v{};
    need(sizeof(T));
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Reads a float vector whose announced size must equal @p expected —
  /// validated before any allocation, so a corrupt length cannot OOM.
  std::vector<float> vec(size_t expected, const char* what) {
    const auto n = pod<uint64_t>();
    if (n != expected) {
      throw std::runtime_error(context_ + ": " + what + " size mismatch");
    }
    std::vector<float> v(n);
    need(n * sizeof(float));
    std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return v;
  }

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(size_t n) {
    if (pos_ + n > bytes_.size() || pos_ + n < pos_) {
      throw std::runtime_error(context_ + ": truncated file");
    }
  }

  const std::string& bytes_;
  size_t pos_ = 0;
  std::string context_;
};

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream ss;
  ss << is.rdbuf();
  if (!is) throw std::runtime_error("checkpoint: read failed: " + path);
  return std::move(ss).str();
}

/// Verifies the v2 footer (CRC over everything before the last 4 bytes).
void check_footer(const std::string& bytes, const std::string& path) {
  if (bytes.size() < 12) {
    throw std::runtime_error("load_checkpoint: truncated file " + path);
  }
  uint32_t footer = 0;
  std::memcpy(&footer, bytes.data() + bytes.size() - 4, sizeof(footer));
  if (footer != nn::crc32(bytes.data(), bytes.size() - 4)) {
    throw std::runtime_error("load_checkpoint: checksum mismatch in " + path);
  }
}

/// Rebuilds a Scaler from stored (mean, stddev): Scaler has no setters by
/// design, so fit two synthetic rows whose statistics match.
data::Scaler scaler_from_stats(const std::vector<float>& mean,
                               const std::vector<float>& stddev) {
  std::vector<std::vector<float>> synth(2, std::vector<float>(mean.size()));
  for (size_t j = 0; j < mean.size(); ++j) {
    synth[0][j] = mean[j] - stddev[j];
    synth[1][j] = mean[j] + stddev[j];
  }
  data::Scaler sc;
  sc.fit(synth);
  return sc;
}
}  // namespace

void MetaDseFramework::write_checkpoint(
    const std::string& path, const std::vector<float>& flat_params,
    const data::Scaler& scaler, const std::vector<float>& attention_mean,
    size_t attention_count, const std::vector<meta::EpochTrace>& trace,
    double best_val) const {
  if (tensor::has_nonfinite(flat_params)) {
    throw std::runtime_error(
        "save_checkpoint: refusing to persist non-finite parameters");
  }
  std::string out;
  put(out, kCkptMagicV2);
  put(out, kCkptVersion);
  put(out, static_cast<uint64_t>(options_.predictor.n_tokens));
  put(out, static_cast<uint64_t>(options_.predictor.d_model));
  put(out, static_cast<uint64_t>(options_.predictor.n_layers));
  put(out, static_cast<uint64_t>(data::target_width(options_.maml.target)));
  put(out, best_val);
  put(out, static_cast<uint64_t>(trace.size()));
  for (const auto& tr : trace) {
    put(out, tr.train_meta_loss);
    put(out, tr.val_loss);
    put(out, static_cast<uint64_t>(tr.skipped_tasks));
    put(out, static_cast<uint64_t>(tr.skipped_batches));
    put(out, static_cast<uint8_t>(tr.rolled_back ? 1 : 0));
    put(out, tr.outer_lr);
  }
  put(out, static_cast<uint64_t>(attention_count));
  put_vec(out, scaler.mean());
  put_vec(out, scaler.stddev());
  put_vec(out, attention_mean);
  put_vec(out, flat_params);
  put(out, nn::crc32(out.data(), out.size()));
  nn::atomic_write_file(path, out);
}

void MetaDseFramework::save_checkpoint(const std::string& path) const {
  const size_t attn_count =
      trainer_ ? trainer_->attention_count() : loaded_attention_count_;
  const double best_val =
      trainer_ ? trainer_->best_val_loss() : loaded_best_val_;
  write_checkpoint(path, model().flatten_parameters(), scaler(),
                   mean_attention().data(), attn_count, trace(), best_val);
}

bool MetaDseFramework::load_checkpoint(const std::string& path) {
  const auto bytes = slurp(path);
  if (!bytes) return false;

  Cursor hdr(*bytes, "load_checkpoint");
  const auto magic = hdr.pod<uint32_t>();
  if (magic != kCkptMagicV1 && magic != kCkptMagicV2) {
    throw std::runtime_error("load_checkpoint: bad magic in " + path);
  }
  const bool v2 = magic == kCkptMagicV2;
  if (v2) {
    check_footer(*bytes, path);
    if (hdr.pod<uint32_t>() != kCkptVersion) {
      throw std::runtime_error("load_checkpoint: unsupported version in " +
                               path);
    }
  }
  if (hdr.pod<uint64_t>() != options_.predictor.n_tokens ||
      hdr.pod<uint64_t>() != options_.predictor.d_model ||
      hdr.pod<uint64_t>() != options_.predictor.n_layers) {
    throw std::runtime_error("load_checkpoint: architecture mismatch in " +
                             path);
  }

  nn::TransformerConfig cfg = options_.predictor;
  cfg.n_outputs = data::target_width(options_.maml.target);
  const size_t width = data::target_width(options_.maml.target);
  tensor::Rng rng(0);
  auto model = std::make_unique<nn::TransformerRegressor>(cfg, rng);
  const size_t n = options_.predictor.n_tokens;

  std::vector<meta::EpochTrace> trace;
  size_t attn_count = 0;
  double best_val = 1e300;
  if (v2) {
    if (hdr.pod<uint64_t>() != width) {
      throw std::runtime_error("load_checkpoint: target width mismatch in " +
                               path);
    }
    best_val = hdr.pod<double>();
    const auto n_trace = hdr.pod<uint64_t>();
    if (n_trace > kMaxTraceEpochs) {
      throw std::runtime_error("load_checkpoint: implausible trace length in " +
                               path);
    }
    trace.reserve(n_trace);
    for (uint64_t e = 0; e < n_trace; ++e) {
      meta::EpochTrace tr;
      tr.train_meta_loss = hdr.pod<double>();
      tr.val_loss = hdr.pod<double>();
      tr.skipped_tasks = hdr.pod<uint64_t>();
      tr.skipped_batches = hdr.pod<uint64_t>();
      tr.rolled_back = hdr.pod<uint8_t>() != 0;
      tr.outer_lr = hdr.pod<float>();
      trace.push_back(tr);
    }
    attn_count = hdr.pod<uint64_t>();
  }
  const auto mean = hdr.vec(width, "scaler mean");
  const auto stddev = hdr.vec(width, "scaler stddev");
  const auto attn = hdr.vec(n * n, "attention");
  const auto flat = hdr.vec(model->parameter_count(), "parameters");
  if (v2 && hdr.remaining() != 4) {
    throw std::runtime_error("load_checkpoint: trailing bytes in " + path);
  }
  if (tensor::has_nonfinite(flat) || tensor::has_nonfinite(attn)) {
    throw std::runtime_error("load_checkpoint: non-finite state in " + path);
  }

  loaded_scaler_ = scaler_from_stats(mean, stddev);
  model->unflatten_parameters(flat);
  loaded_model_ = std::move(model);
  loaded_trace_ = std::move(trace);
  loaded_attention_count_ = attn_count;
  loaded_best_val_ = best_val;
  mean_attention_ = tensor::Tensor::from_vector({n, n}, attn);
  // The WAM is always derived from the stored statistic with the *current*
  // options, so WamOptions changes apply without retraining.
  wam_mask_ =
      meta::WamGenerator::from_mean_attention(mean_attention_, options_.wam);
  trainer_.reset();
  return true;
}

std::optional<meta::MamlTrainer::WarmStart>
MetaDseFramework::load_warm_start(const std::string& path) {
  const auto bytes = slurp(path);
  if (!bytes) return std::nullopt;
  Cursor hdr(*bytes, "load_warm_start");
  if (hdr.pod<uint32_t>() != kCkptMagicV2) {
    return std::nullopt;  // legacy v1 files carry no resume state
  }
  // Delegate full parsing/validation to load_checkpoint, then convert the
  // loaded state into trainer resume form.
  if (!load_checkpoint(path)) return std::nullopt;
  meta::MamlTrainer::WarmStart ws;
  ws.parameters = loaded_model_->flatten_parameters();
  ws.trace = loaded_trace_;
  ws.best_val = loaded_best_val_;
  ws.attention_count = loaded_attention_count_;
  if (loaded_attention_count_ > 0) {
    const auto& m = mean_attention_.data();
    ws.attention_sum.resize(m.size());
    for (size_t i = 0; i < m.size(); ++i) {
      ws.attention_sum[i] =
          static_cast<double>(m[i]) *
          static_cast<double>(loaded_attention_count_);
    }
  }
  return ws;
}

std::unique_ptr<nn::TransformerRegressor> MetaDseFramework::adapt_task(
    const tensor::Tensor& support_x, const tensor::Tensor& support_y_scaled,
    bool use_wam) const {
  meta::AdaptOptions opts = options_.adapt;
  opts.use_wam = use_wam;
  return meta::wam_adapt(model(), use_wam ? wam_mask() : tensor::Tensor(),
                         support_x, support_y_scaled, opts);
}

AdaptedPredictor MetaDseFramework::adapt_to(
    const data::Dataset& target_support) const {
  if (target_support.empty()) {
    throw std::invalid_argument("adapt_to: empty support dataset");
  }
  const size_t n = target_support.size();
  const size_t n_feat = target_support.samples.front().features.size();
  std::vector<float> xs;
  std::vector<float> ys;
  for (const auto& s : target_support.samples) {
    xs.insert(xs.end(), s.features.begin(), s.features.end());
    ys.push_back(data::target_of(s, options_.maml.target).front());
  }
  auto x = tensor::Tensor::from_vector({n, n_feat}, std::move(xs));
  auto y_raw = tensor::Tensor::from_vector({n, 1}, std::move(ys));
  auto y = scaler().transform(y_raw);

  AdaptedPredictor out;
  out.model = adapt_task(x, y, options_.adapt.use_wam);
  out.scaler = scaler();
  // Capture the int8 activation-calibration table from the support batch
  // (the only labelled data this workload has at adapt time). One extra
  // no-grad forward; the model's fp32 predictions are untouched. Failure
  // (unplannable forward) just leaves the model uncalibrated, so int8
  // requests downgrade to fp32.
  (void)nn::plan::capture_calibration(*out.model, x.data().data(), n);
  return out;
}

QuantContract check_quant_contract(const AdaptedPredictor& predictor,
                                   const arch::DesignSpace& space,
                                   tensor::quant::Precision precision,
                                   size_t n_points, uint64_t seed,
                                   double min_rho) {
  QuantContract qc;
  qc.min_rho = min_rho;
  qc.n_points = n_points;
  if (precision == tensor::quant::Precision::kFp32 || n_points < 2) return qc;
  tensor::Rng rng(seed);
  const auto configs = space.sample_latin_hypercube(n_points, rng);
  std::vector<std::vector<float>> rows;
  rows.reserve(configs.size());
  for (const auto& c : configs) rows.push_back(space.normalize(c));
  std::vector<float> ref;
  std::vector<float> quantized;
  {
    tensor::quant::PrecisionModeGuard fp32(
        tensor::quant::Precision::kFp32);
    ref = predictor.predict_batch(rows);
  }
  {
    tensor::quant::PrecisionModeGuard reduced(precision);
    quantized = predictor.predict_batch(rows);
  }
  qc.rho = eval::spearman_rho(ref, quantized);
  qc.passed = qc.rho >= min_rho;
  return qc;
}

std::vector<TaskEval> MetaDseFramework::evaluate(const std::string& workload,
                                                 size_t n_tasks,
                                                 size_t support, size_t query,
                                                 bool use_wam,
                                                 tensor::Rng& rng) {
  const auto& ds = dataset(workload);
  data::TaskSampler sampler(ds, support, query, options_.maml.target);
  std::vector<TaskEval> out;
  out.reserve(n_tasks);
  tensor::Rng fwd(0);
  for (size_t k = 0; k < n_tasks; ++k) {
    auto task = sampler.sample(rng);
    auto sup_y = scaler().transform(task.support_y);
    auto adapted = adapt_task(task.support_x, sup_y, use_wam);
    // Adaptation needs the graph; the query prediction does not.
    tensor::NoGradGuard no_grad;
    auto pred_scaled = adapted->forward(task.query_x, fwd);
    auto pred = scaler().inverse(pred_scaled);
    TaskEval ev;
    ev.rmse = eval::rmse(task.query_y.data(), pred.data());
    ev.mape = eval::mape(task.query_y.data(), pred.data());
    ev.ev = eval::explained_variance(task.query_y.data(), pred.data());
    out.push_back(ev);
  }
  return out;
}

explore::ParetoArchive MetaDseFramework::run_dse(
    const AdaptedPredictor& predictor, const data::Dataset& support,
    const std::string& workload, const DseOptions& dse_options) {
  run_report_ = explore::RunReport{};
  return run_dse(predictor, support, workload, dse_options, generator_,
                 run_report_);
}

explore::ParetoArchive MetaDseFramework::run_dse(
    const AdaptedPredictor& predictor, const data::Dataset& support,
    const std::string& workload, const DseOptions& dse_options,
    data::DatasetGenerator& generator, explore::RunReport& report) const {
  const workload::Workload& wl = suite_.by_name(workload);

  // Pre-run error contract for reduced-precision serving: measure the rank
  // agreement between fp32 and quantized predictions and refuse to serve
  // quantized when it is below the threshold — the run still completes,
  // just at fp32, and the trip is visible in the report (DESIGN.md §15).
  tensor::quant::Precision prec = dse_options.precision;
  if (prec != tensor::quant::Precision::kFp32) {
    const QuantContract qc =
        check_quant_contract(predictor, *space_, prec, /*n_points=*/128,
                             /*seed=*/0xC0117AC7,
                             dse_options.quant_contract_min_rho);
    if (!qc.passed) {
      prec = tensor::quant::Precision::kFp32;
      report.quant_contract_tripped = true;
    }
  }

  // Primary evaluator: surrogate IPC + simulated power. The power leg goes
  // through the caller's generator, so an armed fault plan (and its
  // attempt-indexed draws) exercises the retry/breaker machinery exactly as
  // a flaky label farm would. The IPC leg goes through dse_options.
  // predict_rows when set (the serving layer's cross-session coalescer);
  // since any valid predict_rows is pointwise bitwise-equal to the local
  // predictor, the two paths produce identical archives.
  explore::AttemptEvaluator primary =
      [this, &predictor, &wl, &dse_options, &generator,
       prec](const arch::Config& c, size_t attempt) {
        if (dse_options.pre_eval_hook) dse_options.pre_eval_hook();
        float ipc;
        {
          tensor::quant::PrecisionModeGuard qguard(prec);
          ipc = dse_options.predict_rows
                    ? dse_options.predict_rows({space_->normalize(c)}).at(0)
                    : predictor.predict(space_->normalize(c));
        }
        const auto [sim_ipc, sim_power] = generator.evaluate(c, wl, attempt);
        (void)sim_ipc;
        return explore::Objective{static_cast<double>(ipc), sim_power};
      };
  explore::BatchEvaluator batch_primary =
      [this, &predictor, &wl, &dse_options, &generator,
       prec](const std::vector<arch::Config>& batch) {
        if (dse_options.pre_eval_hook) dse_options.pre_eval_hook();
        std::vector<std::vector<float>> feats;
        feats.reserve(batch.size());
        for (const auto& c : batch) feats.push_back(space_->normalize(c));
        tensor::quant::PrecisionModeGuard qguard(prec);
        const auto ipcs = dse_options.predict_rows
                              ? dse_options.predict_rows(feats)
                              : predictor.predict_batch(feats);
        if (ipcs.size() != batch.size()) {
          throw sim::SimulationFailure(
              "predict_rows returned " + std::to_string(ipcs.size()) +
              " values for a batch of " + std::to_string(batch.size()));
        }
        std::vector<explore::Objective> objs;
        objs.reserve(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          const auto [sim_ipc, sim_power] =
              generator.evaluate(batch[i], wl, /*attempt=*/0);
          (void)sim_ipc;
          objs.push_back({static_cast<double>(ipcs[i]), sim_power});
        }
        return objs;
      };

  // Middle rung of the degradation ladder: a forest fitted on the same
  // K-shot support set, with power from a clean (never fault-injected)
  // generator — the reliable fallback the breaker downgrades to.
  explore::Evaluator baseline;
  std::shared_ptr<baselines::RandomForest> forest;
  std::shared_ptr<data::DatasetGenerator> clean_generator;
  if (dse_options.baseline_fallback) {
    baselines::FeatureMatrix x;
    std::vector<float> y;
    x.reserve(support.size());
    y.reserve(support.size());
    for (const auto& s : support.samples) {
      x.push_back(s.features);
      y.push_back(data::target_of(s, options_.maml.target).front());
    }
    forest = std::make_shared<baselines::RandomForest>();
    forest->fit(x, y);
    clean_generator = std::make_shared<data::DatasetGenerator>(*space_);
    baseline = [this, forest, clean_generator,
                &wl](const arch::Config& c) {
      const float ipc = forest->predict(space_->normalize(c));
      const auto [sim_ipc, sim_power] = clean_generator->evaluate(c, wl);
      (void)sim_ipc;
      return explore::Objective{static_cast<double>(ipc), sim_power};
    };
  }

  explore::GuardedEvaluator guard(std::move(primary), dse_options.guard,
                                  &report, std::move(baseline));
  guard.set_batch_primary(std::move(batch_primary));
  if (dse_options.budget) guard.set_session_budget(dse_options.budget);

  explore::EvolutionaryExplorer explorer(dse_options.explorer);
  if (dse_options.journal_path.empty()) {
    return explorer.explore(*space_, guard.as_batch_evaluator());
  }
  const explore::JournalOptions jopts{
      .path = dse_options.journal_path,
      .resume = dse_options.resume,
      .snapshot_period = dse_options.snapshot_period,
      .compact_after_records = dse_options.journal_compact_after};
  return explorer.explore(*space_, guard.as_batch_evaluator(), jopts,
                          &report);
}

}  // namespace metadse::core
