// core::io — the storage fault domain. Every durable byte the system writes
// (journal frames, snapshots, checkpoints, published fronts) goes through
// this shim so (a) the atomic-publication protocol lives in one place
// (tmp + fsync + rename + parent-directory fsync) and (b) the chaos engine
// can make any write short, EIO, or ENOSPC at any byte. Failures surface as
// IoError carrying an errno-style code; callers own the degradation policy
// (the journal falls back to in-memory buffering, a snapshot failure is a
// lost fast path, a checkpoint failure propagates).
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace metadse::core::io {

/// Chaos FaultSpec::kind values understood by this layer.
enum FaultKind : int {
  kEio = 1,        ///< write fails outright, nothing durable
  kEnospc = 2,     ///< disk full: write fails, nothing durable
  kShortWrite = 3, ///< FaultSpec::arg bytes land on disk, then the write
                   ///< fails — a torn frame the recovery path must survive
};

/// Thrown by every failing operation in this layer. `code` is an
/// errno-style value (EIO, ENOSPC, ...) — injected faults and real OS
/// failures are indistinguishable to callers, by design.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what, int code)
      : std::runtime_error(what), code_(code) {}
  int code() const { return code_; }

 private:
  int code_;
};

/// Buffered append-style file handle with a chaos probe on every write.
/// @p chaos_point names the probe its writes traverse (e.g. "journal.write");
/// an empty name opts the file out of fault injection (nothing in the tree
/// does this today, but the escape hatch keeps the shim honest to test).
class File {
 public:
  File() = default;
  /// fopen(path, mode); throws IoError on failure.
  File(const std::string& path, const char* mode, std::string chaos_point);
  ~File();

  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Writes all @p n bytes and flushes to the OS; throws IoError on any
  /// failure (injected or real). An injected short write leaves the torn
  /// prefix on disk before throwing — exactly what a crashed real write
  /// can leave behind.
  void write(const void* data, size_t n);

  /// fsync; throws IoError on failure.
  void sync();

  /// fclose (idempotent). Errors are swallowed: close is only reached on
  /// paths that already flushed or already failed.
  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::string chaos_point_;
};

/// fsync the directory containing @p path, making a just-renamed entry
/// durable (the missing half of tmp+rename atomicity). Best-effort on
/// filesystems that refuse directory fsync; throws nothing.
void fsync_parent_dir(const std::string& path);

/// Durable atomic publication: write "<path>.tmp" through a File probing
/// @p chaos_point, fsync it, rename over @p path (probing "io.rename"),
/// fsync the parent directory. Throws IoError with the tmp file removed on
/// any failure — @p path is either fully replaced and durable, or untouched.
void atomic_write_file(const std::string& path, const std::string& bytes,
                       const std::string& chaos_point = "io.write");

/// Removes "<path>.tmp" if a crashed publication left one behind.
void remove_stale_tmp(const std::string& path);

/// Startup sweep: deletes every "*.tmp" directly inside @p dir (orphans of
/// crashes mid-publication; the rename never happened, so they are garbage
/// by construction). Returns how many were removed. Missing directories
/// sweep zero files.
size_t remove_orphan_tmp_files(const std::string& dir);

}  // namespace metadse::core::io
