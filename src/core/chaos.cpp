#include "core/chaos.hpp"

#include <sstream>

namespace metadse::core::chaos {

namespace {

thread_local bool t_scope_active = false;
thread_local uint64_t t_scope_id = 0;

/// splitmix64 — the same stateless mixer the simulator's FaultInjector
/// uses, so a probability stream is a pure function of (seed, point, hit).
uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t hash_str(const char* s) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (; *s != '\0'; ++s) h = (h ^ static_cast<unsigned char>(*s)) *
                              1099511628211ULL;
  return h;
}

/// Uniform draw in [0, 1) for eligible hit @p i of @p point under @p seed.
double draw(uint64_t seed, const char* point, size_t i) {
  const uint64_t h = mix64(seed ^ mix64(hash_str(point) ^ mix64(i)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

ChaosEngine& ChaosEngine::instance() {
  static ChaosEngine engine;
  return engine;
}

void ChaosEngine::arm(const std::string& point, FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  points_[point] = Entry{rule, PointReport{}};
  armed_.store(true, std::memory_order_relaxed);
}

void ChaosEngine::disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(point);
  armed_.store(!points_.empty(), std::memory_order_relaxed);
}

void ChaosEngine::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

std::optional<FaultSpec> ChaosEngine::fire(const char* point) {
  if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  if (it == points_.end()) return std::nullopt;
  Entry& e = it->second;
  ++e.counts.hits;
  if (e.rule.scope_mod > 0) {
    if (!t_scope_active ||
        t_scope_id % e.rule.scope_mod != e.rule.scope_match) {
      return std::nullopt;
    }
  }
  const size_t i = ++e.counts.eligible;  // 1-based eligible-hit index
  if (e.counts.fired >= e.rule.max_fires) return std::nullopt;

  bool fires = false;
  switch (e.rule.schedule) {
    case FaultRule::Schedule::kNthHit:
      fires = (i == e.rule.n);
      break;
    case FaultRule::Schedule::kEveryNth:
      fires = (e.rule.n > 0 && i % e.rule.n == 0);
      break;
    case FaultRule::Schedule::kProbability:
      fires = draw(e.rule.seed, point, i) < e.rule.probability;
      break;
  }
  if (!fires) return std::nullopt;
  ++e.counts.fired;
  return e.rule.fault;
}

std::map<std::string, PointReport> ChaosEngine::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, PointReport> out;
  for (const auto& [name, e] : points_) out[name] = e.counts;
  return out;
}

bool ChaosEngine::all_armed_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, e] : points_) {
    if (e.counts.fired == 0) return false;
  }
  return true;
}

std::string ChaosEngine::summary() const {
  std::ostringstream os;
  for (const auto& [name, counts] : report()) {
    os << "chaos: " << name << " hits=" << counts.hits
       << " eligible=" << counts.eligible << " fired=" << counts.fired
       << '\n';
  }
  return os.str();
}

ChaosScope::ChaosScope(uint64_t id) {
  had_prev_ = t_scope_active;
  prev_ = t_scope_id;
  t_scope_active = true;
  t_scope_id = id;
}

ChaosScope::~ChaosScope() {
  t_scope_active = had_prev_;
  t_scope_id = prev_;
}

std::optional<uint64_t> ChaosScope::current() {
  if (!t_scope_active) return std::nullopt;
  return t_scope_id;
}

}  // namespace metadse::core::chaos
