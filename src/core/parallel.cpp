#include "core/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace metadse::core {

namespace {

thread_local bool tls_in_region = false;

/// Fixed-size pool. One batch of blocks is in flight at a time; workers and
/// the submitting thread claim blocks from a shared cursor under the pool
/// mutex (blocks are coarse, so the lock is uncontended in practice).
class ThreadPool {
 public:
  explicit ThreadPool(size_t workers) {
    threads_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return threads_.size(); }

  /// Runs fn(0) .. fn(nblocks - 1), caller included, returning once all
  /// blocks (and all workers that joined the batch) are done.
  void run_blocks(size_t nblocks, const std::function<void(size_t)>& fn) {
    Batch batch;
    batch.fn = &fn;
    batch.nblocks = nblocks;
    {
      std::lock_guard<std::mutex> lk(m_);
      batch_ = &batch;
      ++generation_;
    }
    wake_cv_.notify_all();
    work_on(batch);
    {
      std::unique_lock<std::mutex> lk(m_);
      done_cv_.wait(lk, [&] {
        return batch.done == batch.nblocks && batch.entered == batch.exited;
      });
      batch_ = nullptr;
    }
    if (batch.error) std::rethrow_exception(batch.error);
  }

 private:
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t nblocks = 0;
    size_t next = 0;     ///< next unclaimed block (guarded by m_)
    size_t done = 0;     ///< blocks finished (guarded by m_)
    size_t entered = 0;  ///< workers that joined this batch (guarded by m_)
    size_t exited = 0;   ///< workers that left this batch (guarded by m_)
    std::exception_ptr error;  ///< first block failure (guarded by m_)
  };

  void worker_loop() {
    std::unique_lock<std::mutex> lk(m_);
    uint64_t seen = 0;
    for (;;) {
      wake_cv_.wait(lk, [&] {
        return stop_ || (batch_ != nullptr && generation_ != seen);
      });
      if (stop_) return;
      seen = generation_;
      Batch* b = batch_;
      ++b->entered;
      lk.unlock();
      work_on(*b);
      lk.lock();
      ++b->exited;
      done_cv_.notify_all();
    }
  }

  /// Claims and runs blocks until the batch cursor is exhausted. Must be
  /// called without m_ held.
  void work_on(Batch& b) {
    const bool outer = !tls_in_region;
    tls_in_region = true;
    std::unique_lock<std::mutex> lk(m_);
    while (b.next < b.nblocks) {
      const size_t i = b.next++;
      lk.unlock();
      try {
        (*b.fn)(i);
      } catch (...) {
        lk.lock();
        if (!b.error) b.error = std::current_exception();
        lk.unlock();
      }
      lk.lock();
      ++b.done;
    }
    lk.unlock();
    if (outer) tls_in_region = false;
  }

  std::mutex m_;
  std::condition_variable wake_cv_;  ///< workers: a new batch is available
  std::condition_variable done_cv_;  ///< caller: batch progress changed
  Batch* batch_ = nullptr;
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

std::mutex g_config_mutex;
size_t g_threads = 0;  // 0 = not yet resolved (env var / hardware default)
std::unique_ptr<ThreadPool> g_pool;

size_t default_threads() {
  if (const char* env = std::getenv("METADSE_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  return hardware_threads();
}

/// The pool sized for the current thread count, created on first use.
/// Returns nullptr when the configuration is single-threaded.
ThreadPool* pool_for(size_t n) {
  std::lock_guard<std::mutex> lk(g_config_mutex);
  if (n <= 1) return nullptr;
  if (!g_pool || g_pool->workers() != n - 1) {
    g_pool.reset();  // join old workers before spawning the new set
    g_pool = std::make_unique<ThreadPool>(n - 1);
  }
  return g_pool.get();
}

}  // namespace

size_t hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

void set_threads(size_t n) {
  std::lock_guard<std::mutex> lk(g_config_mutex);
  g_threads = n == 0 ? default_threads() : n;
  g_pool.reset();  // re-created at the new width on next use
}

size_t threads() {
  std::lock_guard<std::mutex> lk(g_config_mutex);
  if (g_threads == 0) g_threads = default_threads();
  return g_threads;
}

bool in_parallel_region() { return tls_in_region; }

SerialRegionGuard::SerialRegionGuard() : prev_(tls_in_region) {
  tls_in_region = true;
}

SerialRegionGuard::~SerialRegionGuard() { tls_in_region = prev_; }

void parallel_for_blocks(size_t n, size_t grain,
                         const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t width = tls_in_region ? 1 : threads();
  const size_t max_blocks = (n + grain - 1) / grain;
  const size_t nblocks = std::min(width, max_blocks);
  if (nblocks <= 1) {
    body(0, n);
    return;
  }
  // Even contiguous partition: the first (n % nblocks) blocks get one extra
  // index. Pure function of (n, nblocks) — never of scheduling.
  const size_t base = n / nblocks;
  const size_t extra = n % nblocks;
  ThreadPool* pool = pool_for(width);
  if (pool == nullptr) {  // width changed under us; run inline
    body(0, n);
    return;
  }
  pool->run_blocks(nblocks, [&](size_t b) {
    const size_t lo = b * base + std::min(b, extra);
    const size_t hi = lo + base + (b < extra ? 1 : 0);
    body(lo, hi);
  });
}

}  // namespace metadse::core
