// MetaDseFramework: the public end-to-end API of the library. It owns the
// design space, the workload suite, dataset generation, MAML pre-training,
// WAM generation, per-task adaptation, and evaluation — the full pipeline of
// paper Fig. 3. All benches and examples sit on top of this facade.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "data/dataset.hpp"
#include "explore/guarded.hpp"
#include "meta/maml.hpp"
#include "meta/wam.hpp"
#include "tensor/quant.hpp"

namespace metadse::core {

/// Everything configurable about a MetaDSE run.
struct FrameworkOptions {
  nn::TransformerConfig predictor{.n_tokens = 24,
                                  .d_model = 32,
                                  .n_heads = 4,
                                  .n_layers = 2,
                                  .d_ff = 64,
                                  .n_outputs = 1,
                                  .dropout = 0.0F};
  meta::MamlOptions maml{};
  meta::WamOptions wam{};
  meta::AdaptOptions adapt{};
  /// Labelled design points simulated per workload.
  size_t samples_per_workload = 1200;
  uint64_t seed = 2025;
  /// When non-empty, pretrain() writes the best-so-far model here after
  /// every autosave_period epochs and, when the file already holds an
  /// unfinished run with matching architecture, resumes from it instead of
  /// restarting from scratch.
  std::string autosave_path;
  size_t autosave_period = 1;
};

/// Prediction-quality metrics of one adapted task, in raw label units.
struct TaskEval {
  double rmse = 0.0;
  double mape = 0.0;
  double ev = 0.0;
};

/// Result of one quantization error-contract check (DESIGN.md §15): the
/// measured Spearman rank correlation between fp32 and reduced-precision
/// predictions over a deterministic LHS evaluation batch. DSE consumes the
/// *ordering* of predicted IPC, so rank correlation — not bitwise equality
/// — is the fidelity bar; a trip means the quantized tier must not serve.
struct QuantContract {
  double rho = 1.0;       ///< measured Spearman rank correlation
  double min_rho = 0.99;  ///< contract threshold
  size_t n_points = 0;    ///< evaluation batch size
  bool passed = true;
};

/// A predictor adapted to a target workload, ready for DSE queries.
struct AdaptedPredictor {
  std::unique_ptr<nn::TransformerRegressor> model;
  data::Scaler scaler;

  /// Predicts the target metric (raw units) for a normalized feature vector.
  float predict(const std::vector<float>& features) const;

  /// Batched prediction (raw units): one no-grad [B, n_tokens] forward.
  /// Element i is bitwise identical to predict(rows[i]).
  std::vector<float> predict_batch(
      const std::vector<std::vector<float>>& rows) const;
};

/// Evaluates the quantization error contract for @p predictor at
/// @p precision: predicts a deterministic Latin-hypercube batch of
/// @p n_points designs from @p space under fp32 and under @p precision and
/// compares rankings. fp32 trivially passes. The batch is seeded by
/// @p seed only, so every replica of one workload measures the same rho.
QuantContract check_quant_contract(const AdaptedPredictor& predictor,
                                   const arch::DesignSpace& space,
                                   tensor::quant::Precision precision,
                                   size_t n_points = 128,
                                   uint64_t seed = 0xC0117AC7,
                                   double min_rho = 0.99);

/// The MetaDSE pipeline facade.
class MetaDseFramework {
 public:
  explicit MetaDseFramework(FrameworkOptions options = {});

  // -- substrate access ---------------------------------------------------------
  const arch::DesignSpace& space() const { return *space_; }
  const workload::SpecSuite& suite() const { return suite_; }
  const FrameworkOptions& options() const { return options_; }

  // -- dataset generation (lazy, cached per workload) -----------------------------
  const data::Dataset& dataset(const std::string& workload);
  std::vector<data::Dataset> datasets(const std::vector<std::string>& names);

  /// Arms deterministic fault injection on the dataset generator (see
  /// sim::FaultPlan). Affects datasets generated after this call only.
  void set_fault_plan(const sim::FaultPlan& plan);
  /// Replaces the generator's retry policy.
  void set_retry_policy(const data::RetryPolicy& policy);
  /// Generation accounting for a workload whose dataset() has been built;
  /// throws std::out_of_range otherwise.
  const data::GenerationReport& generation_report(
      const std::string& workload) const;
  /// All generation reports so far, keyed by workload.
  const std::map<std::string, data::GenerationReport>& generation_reports()
      const {
    return reports_;
  }

  // -- pre-training (Algorithm 1) ---------------------------------------------------
  /// Meta-trains on the suite's train split with meta-validation on the
  /// validation split, then generates the WAM from the accumulated
  /// attention. Without an autosave_path this is idempotent (re-running
  /// re-trains from scratch); with one, an unfinished autosaved run is
  /// resumed and a finished one is loaded outright.
  void pretrain();

  bool pretrained() const { return trainer_ != nullptr; }
  const nn::TransformerRegressor& model() const;
  const data::Scaler& scaler() const;
  /// The generated workload-adaptive architectural mask [n_params, n_params].
  const tensor::Tensor& wam_mask() const;
  /// Mean last-layer attention accumulated during pre-training (the WAM's
  /// input statistic); available after pretrain() or load_checkpoint().
  const tensor::Tensor& mean_attention() const;
  /// Rebuilds the WAM from the stored attention statistic with new options
  /// (no retraining needed) and makes it the active mask.
  void regenerate_wam(const meta::WamOptions& options);
  /// Replaces the adaptation hyper-parameters used by adapt_to()/evaluate().
  void set_adapt_options(const meta::AdaptOptions& options) {
    options_.adapt = options;
  }
  /// Per-epoch meta-training trace.
  const std::vector<meta::EpochTrace>& trace() const;

  // -- checkpointing --------------------------------------------------------------
  /// Saves model parameters + scaler + attention statistic + training trace
  /// in the v2 format (CRC-checksummed, written atomically). Throws on I/O
  /// error. See DESIGN.md "Failure semantics" for the on-disk layout.
  void save_checkpoint(const std::string& path) const;
  /// Returns false when @p path does not exist; throws on malformed or
  /// corrupt files. Reads v2 and legacy v1 checkpoints.
  bool load_checkpoint(const std::string& path);

  // -- adaptation & evaluation (Algorithm 2) -------------------------------------------
  /// Adapts the pre-trained model to a target support set (raw labels);
  /// uses the WAM unless options().adapt.use_wam is false.
  AdaptedPredictor adapt_to(const data::Dataset& target_support) const;

  // -- crash-safe DSE (explorer stage of Algorithm 2) -----------------------------------
  /// Knobs for one guarded, optionally journaled exploration run.
  struct DseOptions {
    explore::ExplorerOptions explorer{};
    explore::GuardOptions guard{};
    /// Write-ahead journal path; empty disables durability. The archive
    /// snapshot lives at "<journal_path>.snapshot".
    std::string journal_path;
    /// Replay an existing journal/snapshot instead of refusing to clobber it.
    bool resume = false;
    size_t snapshot_period = 8;
    /// Journal rotation threshold (JournalOptions::compact_after_records):
    /// once a snapshot covers this many durable records the journal is
    /// compacted against it, keeping long-lived sessions disk-bounded.
    /// 0 disables rotation.
    size_t journal_compact_after = 0;
    /// Train a RandomForest on the support set as the degradation ladder's
    /// middle rung (surrogate -> forest -> quarantine-and-skip).
    bool baseline_fallback = true;
    /// Called before every live primary evaluation (per point on the scalar
    /// path, once per batch on the batched path). Hook point for chaos
    /// drills and slow-simulator rehearsal; throwing from it interrupts the
    /// run exactly as a crash would — the journal keeps what finished.
    std::function<void()> pre_eval_hook;
    /// Session-wide deadline budget, shared with the serving layer. When
    /// set, every evaluation attempt and retry backoff charges it, and an
    /// exhausted or cancelled budget aborts the run with
    /// explore::ExplorationAborted (the journal preserves progress; resume
    /// with a fresh budget to finish).
    std::shared_ptr<explore::DeadlineBudget> budget = {};
    /// Overrides the surrogate-IPC leg of the primary evaluator: given the
    /// normalized feature rows of a candidate batch, returns one IPC per
    /// row, in order. The serving layer points this at a cross-session
    /// BatchCoalescer; any implementation must be pointwise bitwise-equal to
    /// predictor.predict_batch(rows) or DSE results change. The simulated
    /// power leg stays on the session's own generator either way.
    /// explore::ExplorationAborted thrown from here aborts the run (the
    /// journal preserves progress); other exceptions are contained by the
    /// guard as ordinary evaluation failures.
    std::function<std::vector<float>(const std::vector<std::vector<float>>&)>
        predict_rows;
    /// Numeric tier of the surrogate's planned forwards (tensor/quant.hpp).
    /// Non-fp32 runs first check the quantization error contract
    /// (check_quant_contract): on a trip the run falls back to fp32 and
    /// RunReport::quant_contract_tripped is set. fp32 runs are untouched.
    tensor::quant::Precision precision = tensor::quant::Precision::kFp32;
    /// Minimum Spearman rank correlation between fp32 and reduced-precision
    /// predictions required to serve at reduced precision.
    double quant_contract_min_rho = 0.99;
  };

  /// Runs the few-shot DSE loop with fault containment: surrogate IPC (one
  /// batched no-grad forward per generation) + simulated power as the
  /// primary evaluator, guarded by deadlines/retries/the circuit breaker,
  /// journaled when journal_path is set. The framework's armed fault plan
  /// (set_fault_plan) applies to the primary's simulator leg, so chaos
  /// drills rehearse the whole ladder. Accounting lands in run_report().
  explore::ParetoArchive run_dse(const AdaptedPredictor& predictor,
                                 const data::Dataset& support,
                                 const std::string& workload,
                                 const DseOptions& dse_options);

  /// Re-entrant form of run_dse for concurrent sessions (the serving core):
  /// the caller supplies the simulator generator (arm a per-session fault
  /// plan on it if wanted) and the report sink, so nothing on the framework
  /// mutates. Safe to call from several threads at once on one framework as
  /// long as each call gets its own generator and report.
  explore::ParetoArchive run_dse(const AdaptedPredictor& predictor,
                                 const data::Dataset& support,
                                 const std::string& workload,
                                 const DseOptions& dse_options,
                                 data::DatasetGenerator& generator,
                                 explore::RunReport& report) const;

  /// Accounting for the most recent run_dse() call.
  const explore::RunReport& run_report() const { return run_report_; }

  /// Samples @p n_tasks (support+query) tasks from @p workload, adapts on
  /// each support set and scores on the query set. @p use_wam toggles the
  /// WAM (for the MetaDSE-w/o-WAM ablation).
  std::vector<TaskEval> evaluate(const std::string& workload, size_t n_tasks,
                                 size_t support, size_t query, bool use_wam,
                                 tensor::Rng& rng);

 private:
  std::unique_ptr<nn::TransformerRegressor> adapt_task(
      const tensor::Tensor& support_x, const tensor::Tensor& support_y_scaled,
      bool use_wam) const;

  /// Generates one workload's dataset from its per-workload seeded RNG.
  /// Const and cache-free, so multiple workloads generate concurrently.
  std::pair<data::Dataset, data::GenerationReport> generate_one(
      const std::string& workload) const;

  /// Serializes one v2 checkpoint image (shared by save_checkpoint and the
  /// per-epoch autosave, which persists the trainer's best-so-far state).
  void write_checkpoint(const std::string& path,
                        const std::vector<float>& flat_params,
                        const data::Scaler& scaler,
                        const std::vector<float>& attention_mean,
                        size_t attention_count,
                        const std::vector<meta::EpochTrace>& trace,
                        double best_val) const;
  /// Parses @p path into resume state; returns nullopt when the file does
  /// not exist. Throws on corruption or architecture mismatch.
  std::optional<meta::MamlTrainer::WarmStart> load_warm_start(
      const std::string& path);

  FrameworkOptions options_;
  const arch::DesignSpace* space_;
  workload::SpecSuite suite_;
  data::DatasetGenerator generator_;
  std::map<std::string, data::Dataset> cache_;
  std::map<std::string, data::GenerationReport> reports_;
  std::unique_ptr<meta::MamlTrainer> trainer_;
  explore::RunReport run_report_;
  tensor::Tensor wam_mask_;
  tensor::Tensor mean_attention_;
  // Set when state came from a checkpoint instead of a live trainer.
  std::unique_ptr<nn::TransformerRegressor> loaded_model_;
  std::optional<data::Scaler> loaded_scaler_;
  std::vector<meta::EpochTrace> loaded_trace_;
  size_t loaded_attention_count_ = 0;
  double loaded_best_val_ = 1e300;
};

}  // namespace metadse::core
