// MetaDseFramework: the public end-to-end API of the library. It owns the
// design space, the workload suite, dataset generation, MAML pre-training,
// WAM generation, per-task adaptation, and evaluation — the full pipeline of
// paper Fig. 3. All benches and examples sit on top of this facade.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "data/dataset.hpp"
#include "meta/maml.hpp"
#include "meta/wam.hpp"

namespace metadse::core {

/// Everything configurable about a MetaDSE run.
struct FrameworkOptions {
  nn::TransformerConfig predictor{.n_tokens = 24,
                                  .d_model = 32,
                                  .n_heads = 4,
                                  .n_layers = 2,
                                  .d_ff = 64,
                                  .n_outputs = 1,
                                  .dropout = 0.0F};
  meta::MamlOptions maml{};
  meta::WamOptions wam{};
  meta::AdaptOptions adapt{};
  /// Labelled design points simulated per workload.
  size_t samples_per_workload = 1200;
  uint64_t seed = 2025;
};

/// Prediction-quality metrics of one adapted task, in raw label units.
struct TaskEval {
  double rmse = 0.0;
  double mape = 0.0;
  double ev = 0.0;
};

/// A predictor adapted to a target workload, ready for DSE queries.
struct AdaptedPredictor {
  std::unique_ptr<nn::TransformerRegressor> model;
  data::Scaler scaler;

  /// Predicts the target metric (raw units) for a normalized feature vector.
  float predict(const std::vector<float>& features) const;
};

/// The MetaDSE pipeline facade.
class MetaDseFramework {
 public:
  explicit MetaDseFramework(FrameworkOptions options = {});

  // -- substrate access ---------------------------------------------------------
  const arch::DesignSpace& space() const { return *space_; }
  const workload::SpecSuite& suite() const { return suite_; }
  const FrameworkOptions& options() const { return options_; }

  // -- dataset generation (lazy, cached per workload) -----------------------------
  const data::Dataset& dataset(const std::string& workload);
  std::vector<data::Dataset> datasets(const std::vector<std::string>& names);

  // -- pre-training (Algorithm 1) ---------------------------------------------------
  /// Meta-trains on the suite's train split with meta-validation on the
  /// validation split, then generates the WAM from the accumulated
  /// attention. Idempotent: re-running re-trains from scratch.
  void pretrain();

  bool pretrained() const { return trainer_ != nullptr; }
  const nn::TransformerRegressor& model() const;
  const data::Scaler& scaler() const;
  /// The generated workload-adaptive architectural mask [n_params, n_params].
  const tensor::Tensor& wam_mask() const;
  /// Mean last-layer attention accumulated during pre-training (the WAM's
  /// input statistic); available after pretrain() or load_checkpoint().
  const tensor::Tensor& mean_attention() const;
  /// Rebuilds the WAM from the stored attention statistic with new options
  /// (no retraining needed) and makes it the active mask.
  void regenerate_wam(const meta::WamOptions& options);
  /// Replaces the adaptation hyper-parameters used by adapt_to()/evaluate().
  void set_adapt_options(const meta::AdaptOptions& options) {
    options_.adapt = options;
  }
  /// Per-epoch meta-training trace.
  const std::vector<meta::EpochTrace>& trace() const;

  // -- checkpointing --------------------------------------------------------------
  /// Saves model parameters + scaler + WAM. Throws on I/O error.
  void save_checkpoint(const std::string& path) const;
  /// Returns false when @p path does not exist; throws on malformed files.
  bool load_checkpoint(const std::string& path);

  // -- adaptation & evaluation (Algorithm 2) -------------------------------------------
  /// Adapts the pre-trained model to a target support set (raw labels);
  /// uses the WAM unless options().adapt.use_wam is false.
  AdaptedPredictor adapt_to(const data::Dataset& target_support) const;

  /// Samples @p n_tasks (support+query) tasks from @p workload, adapts on
  /// each support set and scores on the query set. @p use_wam toggles the
  /// WAM (for the MetaDSE-w/o-WAM ablation).
  std::vector<TaskEval> evaluate(const std::string& workload, size_t n_tasks,
                                 size_t support, size_t query, bool use_wam,
                                 tensor::Rng& rng);

 private:
  std::unique_ptr<nn::TransformerRegressor> adapt_task(
      const tensor::Tensor& support_x, const tensor::Tensor& support_y_scaled,
      bool use_wam) const;

  FrameworkOptions options_;
  const arch::DesignSpace* space_;
  workload::SpecSuite suite_;
  data::DatasetGenerator generator_;
  std::map<std::string, data::Dataset> cache_;
  std::unique_ptr<meta::MamlTrainer> trainer_;
  tensor::Tensor wam_mask_;
  tensor::Tensor mean_attention_;
  // Set when state came from a checkpoint instead of a live trainer.
  std::unique_ptr<nn::TransformerRegressor> loaded_model_;
  std::optional<data::Scaler> loaded_scaler_;
  std::vector<meta::EpochTrace> loaded_trace_;
};

}  // namespace metadse::core
