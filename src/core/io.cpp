#include "core/io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "core/chaos.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace metadse::core::io {

namespace {

const char* fault_name(int kind) {
  switch (kind) {
    case kEio: return "EIO";
    case kEnospc: return "ENOSPC";
    case kShortWrite: return "short write";
  }
  return "fault";
}

int fault_code(int kind) {
  switch (kind) {
    case kEnospc: return ENOSPC;
    default: return EIO;
  }
}

}  // namespace

File::File(const std::string& path, const char* mode, std::string chaos_point)
    : path_(path), chaos_point_(std::move(chaos_point)) {
  file_ = std::fopen(path.c_str(), mode);
  if (file_ == nullptr) {
    throw IoError("io: cannot open " + path + ": " + std::strerror(errno),
                  errno != 0 ? errno : EIO);
  }
}

File::~File() { close(); }

File::File(File&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      chaos_point_(std::move(other.chaos_point_)) {
  other.file_ = nullptr;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    close();
    file_ = other.file_;
    path_ = std::move(other.path_);
    chaos_point_ = std::move(other.chaos_point_);
    other.file_ = nullptr;
  }
  return *this;
}

void File::write(const void* data, size_t n) {
  if (file_ == nullptr) {
    throw IoError("io: write to closed file " + path_, EBADF);
  }
  if (!chaos_point_.empty()) {
    if (const auto fault = chaos::fire(chaos_point_.c_str())) {
      if (fault->kind == kShortWrite) {
        // Land a torn prefix before failing, like a crash mid-write would.
        const size_t torn = std::min<size_t>(fault->arg, n);
        if (torn > 0) {
          std::fwrite(data, 1, torn, file_);
          std::fflush(file_);
        }
      }
      throw IoError("io: injected " + std::string(fault_name(fault->kind)) +
                        " writing " + path_ + " (chaos point \"" +
                        chaos_point_ + "\")",
                    fault_code(fault->kind));
    }
  }
  if (std::fwrite(data, 1, n, file_) != n || std::fflush(file_) != 0) {
    throw IoError("io: write of " + std::to_string(n) + " bytes to " + path_ +
                      " failed: " + std::strerror(errno),
                  errno != 0 ? errno : EIO);
  }
}

void File::sync() {
  if (file_ == nullptr) return;
  if (std::fflush(file_) != 0) {
    throw IoError("io: flush of " + path_ + " failed", EIO);
  }
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(fileno(file_)) != 0) {
    throw IoError("io: fsync of " + path_ + " failed: " +
                      std::strerror(errno),
                  errno != 0 ? errno : EIO);
  }
#endif
}

void File::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void fsync_parent_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);  // best-effort: some filesystems refuse directory fsync
    ::close(fd);
  }
#else
  (void)path;
#endif
}

void atomic_write_file(const std::string& path, const std::string& bytes,
                       const std::string& chaos_point) {
  const std::string tmp = path + ".tmp";
  try {
    File f(tmp, "wb", chaos_point);
    f.write(bytes.data(), bytes.size());
    f.sync();
    f.close();
    if (const auto fault = chaos::fire("io.rename")) {
      throw IoError("io: injected " + std::string(fault_name(fault->kind)) +
                        " renaming " + tmp + " (chaos point \"io.rename\")",
                    fault_code(fault->kind));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw IoError("io: rename of " + tmp + " to " + path + " failed: " +
                        std::strerror(errno),
                    errno != 0 ? errno : EIO);
    }
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  // A renamed entry is only durable once its directory is: crash before
  // this and the old file can legally reappear (which atomicity permits —
  // old or new, never a mix).
  fsync_parent_dir(path);
}

void remove_stale_tmp(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path + ".tmp", ec);
}

size_t remove_orphan_tmp_files(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;
  size_t removed = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != ".tmp") continue;
    if (std::filesystem::remove(entry.path(), ec)) ++removed;
  }
  return removed;
}

}  // namespace metadse::core::io
