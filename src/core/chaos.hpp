// ChaosEngine: a process-wide registry of named fault points, armed by a
// seeded deterministic schedule. Production code drops a named probe where a
// fault could occur (`chaos::fire("journal.write")`); tests arm a plan that
// makes chosen probes fail on a reproducible schedule and afterwards read a
// hit-count report to assert every armed fault actually fired. Mirrors the
// sim::FaultInjector contract one level up: fault decisions are a pure
// function of (rule seed, point name, eligible-hit index), never of wall
// clock or thread identity.
//
// Disarmed cost is one relaxed atomic load — the engine is compiled in
// unconditionally and safe to probe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace metadse::core::chaos {

/// What an armed probe injects when it fires. `kind` and `arg` are
/// interpreted by the call site (e.g. core::io uses kind = FaultKind and
/// arg = short-write byte count); the engine just delivers them.
struct FaultSpec {
  int kind = 0;
  uint64_t arg = 0;
};

/// When an armed probe fires. All schedules are deterministic: the decision
/// for eligible hit i depends only on the rule, never on timing.
struct FaultRule {
  enum class Schedule {
    kNthHit,       ///< fire once, on the n-th eligible hit (1-based)
    kEveryNth,     ///< fire on hits n, 2n, 3n, ... (1-based)
    kProbability,  ///< fire per-hit from a seeded hash stream
  };

  FaultSpec fault;
  Schedule schedule = Schedule::kNthHit;
  size_t n = 1;             ///< the n of kNthHit / kEveryNth (>= 1)
  double probability = 0.0; ///< kProbability fire rate in [0, 1]
  uint64_t seed = 0xC4A05;  ///< kProbability stream seed
  size_t max_fires = SIZE_MAX;  ///< total firing budget for the rule

  /// Session scoping: when scope_mod > 0 the rule only sees hits made under
  /// a ChaosScope whose id satisfies id % scope_mod == scope_match; hits
  /// outside any scope (or not matching) are counted but never eligible.
  /// Sessions outside the scope are provably untouched by the rule.
  uint64_t scope_mod = 0;
  uint64_t scope_match = 0;
};

/// Per-point accounting: total probe traversals, eligible (in-scope) hits,
/// and how many times the rule actually fired.
struct PointReport {
  size_t hits = 0;
  size_t eligible = 0;
  size_t fired = 0;
};

class ChaosEngine {
 public:
  static ChaosEngine& instance();

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  /// Arms (or re-arms, resetting its counters) the rule for @p point.
  void arm(const std::string& point, FaultRule rule);
  void disarm(const std::string& point);
  /// Disarms every point and clears all counters (test teardown).
  void reset();

  /// True when any point is armed — the fast-path gate.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Probe: counts a hit on @p point and returns the fault to inject when
  /// the armed schedule says this hit fires, nullopt otherwise (including
  /// the disarmed fast path). Thread-safe.
  std::optional<FaultSpec> fire(const char* point);

  /// Accounting for every point armed since the last reset().
  std::map<std::string, PointReport> report() const;
  /// True when every armed point has fired at least once — the soak's
  /// "chaos plan was actually exercised" check.
  bool all_armed_fired() const;
  /// Multi-line "chaos: <point> hits=H eligible=E fired=F" summary.
  std::string summary() const;

 private:
  ChaosEngine() = default;

  struct Entry {
    FaultRule rule;
    PointReport counts;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::map<std::string, Entry> points_;
};

/// RAII thread-local scope tag (typically the session id) consulted by
/// scoped rules. Nestable; the innermost scope wins.
class ChaosScope {
 public:
  explicit ChaosScope(uint64_t id);
  ~ChaosScope();
  ChaosScope(const ChaosScope&) = delete;
  ChaosScope& operator=(const ChaosScope&) = delete;

  /// The innermost active scope on this thread, if any.
  static std::optional<uint64_t> current();

 private:
  bool had_prev_ = false;
  uint64_t prev_ = 0;
};

/// Convenience probe: `if (auto f = chaos::fire("plan.compile")) ...`.
inline std::optional<FaultSpec> fire(const char* point) {
  ChaosEngine& e = ChaosEngine::instance();
  if (!e.armed()) return std::nullopt;
  return e.fire(point);
}

}  // namespace metadse::core::chaos
