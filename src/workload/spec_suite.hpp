// The SPEC CPU 2017 substitute: 17 named workload profiles whose
// characteristic vectors mimic the published behaviour of the real programs
// (memory-bound mcf, branchy perlbench/xalancbmk, streaming-FP lbm, ...),
// plus SimPoint-style phase decomposition (<= 30 weighted clusters per
// workload, each a deterministic perturbation of the base profile).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/workload_characteristics.hpp"
#include "tensor/rng.hpp"

namespace metadse::workload {

using sim::WorkloadCharacteristics;
using tensor::Rng;

/// One SimPoint cluster: a behaviour vector and its execution weight.
struct Phase {
  WorkloadCharacteristics behavior;
  double weight = 1.0;  ///< fraction of dynamic instructions in this phase
};

/// A named workload: base characteristics plus its phase decomposition.
class Workload {
 public:
  /// Builds the workload's phases deterministically from its name
  /// (the SimPoint substitute). @p max_phases caps the cluster count,
  /// mirroring the paper's "at most 30 clusters".
  Workload(std::string name, WorkloadCharacteristics base,
           size_t max_phases = 30);

  const std::string& name() const { return name_; }
  const WorkloadCharacteristics& base() const { return base_; }
  const std::vector<Phase>& phases() const { return phases_; }

 private:
  std::string name_;
  WorkloadCharacteristics base_;
  std::vector<Phase> phases_;
};

/// Role of a workload in the paper's dataset split.
enum class SplitRole { kTrain, kValidation, kTest };

/// The 17-workload suite with the paper's test set
/// (600.perlbench_s, 605.mcf_s, 620.omnetpp_s, 623.xalancbmk_s, 627.cam4_s).
class SpecSuite {
 public:
  /// Constructs all 17 profiles (deterministic).
  SpecSuite();

  const std::vector<Workload>& workloads() const { return workloads_; }
  size_t size() const { return workloads_.size(); }

  /// Lookup by SPEC name; throws std::out_of_range when absent.
  const Workload& by_name(std::string_view name) const;
  /// Index by SPEC name; throws std::out_of_range when absent.
  size_t index_of(std::string_view name) const;

  /// The paper's split: 7 train / 5 validation / 5 test.
  std::vector<std::string> names(SplitRole role) const;

  /// Role of a named workload.
  SplitRole role_of(std::string_view name) const;

 private:
  std::vector<Workload> workloads_;
  std::vector<SplitRole> roles_;
};

}  // namespace metadse::workload
