#include "workload/spec_suite.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace metadse::workload {

namespace {

/// Normalizes the instruction-mix fields to sum exactly to 1.
WorkloadCharacteristics normalize_mix(WorkloadCharacteristics w) {
  const double s = w.f_int_alu + w.f_int_mul + w.f_fp_alu + w.f_fp_mul +
                   w.f_load + w.f_store + w.f_branch;
  w.f_int_alu /= s;
  w.f_int_mul /= s;
  w.f_fp_alu /= s;
  w.f_fp_mul /= s;
  w.f_load /= s;
  w.f_store /= s;
  w.f_branch /= s;
  return w;
}

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Deterministic per-name seed (stable across platforms: FNV-1a).
uint64_t name_seed(std::string_view name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Perturbs a base profile into one phase (SimPoint cluster): capacities
/// move multiplicatively, unit-interval knobs additively, and the mix is
/// re-normalized. Perturbation scales reflect how much real program phases
/// differ from the whole-program average.
WorkloadCharacteristics perturb(const WorkloadCharacteristics& base,
                                Rng& rng) {
  WorkloadCharacteristics p = base;
  auto logn = [&](double v, double sigma) {
    return v * std::exp(rng.normal(0.0F, static_cast<float>(sigma)));
  };
  p.f_int_alu = logn(base.f_int_alu, 0.15);
  p.f_int_mul = logn(base.f_int_mul, 0.25);
  p.f_fp_alu = logn(base.f_fp_alu, 0.25);
  p.f_fp_mul = logn(base.f_fp_mul, 0.25);
  p.f_load = logn(base.f_load, 0.15);
  p.f_store = logn(base.f_store, 0.20);
  p.f_branch = logn(base.f_branch, 0.15);
  p.branch_entropy = clamp01(base.branch_entropy + rng.normal(0.0F, 0.06F));
  p.indirect_frac = clamp01(base.indirect_frac + rng.normal(0.0F, 0.04F));
  p.call_depth = std::max(2.0, logn(base.call_depth, 0.20));
  p.btb_footprint = std::max(32.0, logn(base.btb_footprint, 0.30));
  p.dcache_ws_kb = std::max(2.0, logn(base.dcache_ws_kb, 0.35));
  p.dcache_ws2_kb = std::max(32.0, logn(base.dcache_ws2_kb, 0.35));
  p.streaming = clamp01(base.streaming + rng.normal(0.0F, 0.08F));
  p.icache_ws_kb = std::max(2.0, logn(base.icache_ws_kb, 0.20));
  p.ilp = std::clamp(logn(base.ilp, 0.15), 1.0, 8.0);
  p.mlp = std::clamp(logn(base.mlp, 0.20), 1.0, 10.0);
  p.dep_chain = clamp01(base.dep_chain + rng.normal(0.0F, 0.06F));
  return normalize_mix(p);
}

}  // namespace

Workload::Workload(std::string name, WorkloadCharacteristics base,
                   size_t max_phases)
    : name_(std::move(name)), base_(normalize_mix(base)) {
  base_.validate();
  Rng rng(name_seed(name_));
  // "Each workload is divided into at most 30 clusters."
  const size_t n_phases = 10 + rng.uniform_index(std::max<size_t>(1, max_phases - 9));
  phases_.reserve(n_phases);
  double total = 0.0;
  std::vector<double> raw(n_phases);
  for (auto& w : raw) {
    w = std::exp(rng.normal(0.0F, 0.8F));
    total += w;
  }
  for (size_t i = 0; i < n_phases; ++i) {
    Phase ph;
    ph.behavior = perturb(base_, rng);
    ph.behavior.validate();
    ph.weight = raw[i] / total;
    phases_.push_back(std::move(ph));
  }
}

SpecSuite::SpecSuite() {
  auto add = [&](std::string name, SplitRole role,
                 WorkloadCharacteristics w) {
    workloads_.emplace_back(std::move(name), w);
    roles_.push_back(role);
  };
  using R = SplitRole;
  WorkloadCharacteristics w;

  // ---- test workloads (the paper's five evaluation datasets) -----------------
  // 600.perlbench_s: interpreter — branchy, indirect-call heavy, big code.
  w = {};
  w.f_int_alu = 0.44; w.f_int_mul = 0.02; w.f_fp_alu = 0.01; w.f_fp_mul = 0.01;
  w.f_load = 0.24; w.f_store = 0.10; w.f_branch = 0.18;
  w.branch_entropy = 0.42; w.indirect_frac = 0.30; w.call_depth = 22;
  w.btb_footprint = 2200; w.dcache_ws_kb = 40; w.dcache_ws2_kb = 700;
  w.streaming = 0.12; w.icache_ws_kb = 52; w.ilp = 2.2; w.mlp = 1.8;
  w.dep_chain = 0.45;
  add("600.perlbench_s", R::kTest, w);

  // 605.mcf_s: pointer-chasing graph optimizer — memory-latency bound.
  w = {};
  w.f_int_alu = 0.38; w.f_int_mul = 0.01; w.f_fp_alu = 0.01; w.f_fp_mul = 0.01;
  w.f_load = 0.35; w.f_store = 0.12; w.f_branch = 0.12;
  w.branch_entropy = 0.38; w.indirect_frac = 0.05; w.call_depth = 6;
  w.btb_footprint = 300; w.dcache_ws_kb = 140; w.dcache_ws2_kb = 4200;
  w.streaming = 0.08; w.icache_ws_kb = 8; w.ilp = 1.5; w.mlp = 1.3;
  w.dep_chain = 0.70;
  add("605.mcf_s", R::kTest, w);

  // 620.omnetpp_s: discrete-event simulator — pointer heavy, virtual calls.
  w = {};
  w.f_int_alu = 0.40; w.f_int_mul = 0.02; w.f_fp_alu = 0.02; w.f_fp_mul = 0.01;
  w.f_load = 0.28; w.f_store = 0.12; w.f_branch = 0.15;
  w.branch_entropy = 0.40; w.indirect_frac = 0.26; w.call_depth = 18;
  w.btb_footprint = 1600; w.dcache_ws_kb = 90; w.dcache_ws2_kb = 2600;
  w.streaming = 0.10; w.icache_ws_kb = 40; w.ilp = 1.9; w.mlp = 1.6;
  w.dep_chain = 0.55;
  add("620.omnetpp_s", R::kTest, w);

  // 623.xalancbmk_s: XSLT processor — branchy, large code footprint.
  w = {};
  w.f_int_alu = 0.43; w.f_int_mul = 0.01; w.f_fp_alu = 0.01; w.f_fp_mul = 0.01;
  w.f_load = 0.27; w.f_store = 0.09; w.f_branch = 0.18;
  w.branch_entropy = 0.34; w.indirect_frac = 0.22; w.call_depth = 20;
  w.btb_footprint = 1900; w.dcache_ws_kb = 60; w.dcache_ws2_kb = 1800;
  w.streaming = 0.15; w.icache_ws_kb = 60; w.ilp = 2.1; w.mlp = 2.0;
  w.dep_chain = 0.50;
  add("623.xalancbmk_s", R::kTest, w);

  // 627.cam4_s: community atmosphere model — FP, mixed locality.
  w = {};
  w.f_int_alu = 0.28; w.f_int_mul = 0.02; w.f_fp_alu = 0.22; w.f_fp_mul = 0.14;
  w.f_load = 0.20; w.f_store = 0.08; w.f_branch = 0.06;
  w.branch_entropy = 0.18; w.indirect_frac = 0.08; w.call_depth = 12;
  w.btb_footprint = 900; w.dcache_ws_kb = 95; w.dcache_ws2_kb = 3200;
  w.streaming = 0.50; w.icache_ws_kb = 44; w.ilp = 3.2; w.mlp = 3.5;
  w.dep_chain = 0.30;
  add("627.cam4_s", R::kTest, w);

  // ---- training workloads -------------------------------------------------------
  // 602.gcc_s: compiler — branchy integer, large code.
  w = {};
  w.f_int_alu = 0.45; w.f_int_mul = 0.02; w.f_fp_alu = 0.01; w.f_fp_mul = 0.01;
  w.f_load = 0.25; w.f_store = 0.10; w.f_branch = 0.16;
  w.branch_entropy = 0.38; w.indirect_frac = 0.18; w.call_depth = 16;
  w.btb_footprint = 1800; w.dcache_ws_kb = 55; w.dcache_ws2_kb = 1500;
  w.streaming = 0.15; w.icache_ws_kb = 64; w.ilp = 2.3; w.mlp = 2.0;
  w.dep_chain = 0.45;
  add("602.gcc_s", R::kTrain, w);

  // 625.x264_s: video encoder — high ILP, data-parallel, predictable.
  w = {};
  w.f_int_alu = 0.50; w.f_int_mul = 0.06; w.f_fp_alu = 0.02; w.f_fp_mul = 0.01;
  w.f_load = 0.24; w.f_store = 0.09; w.f_branch = 0.08;
  w.branch_entropy = 0.18; w.indirect_frac = 0.06; w.call_depth = 8;
  w.btb_footprint = 500; w.dcache_ws_kb = 34; w.dcache_ws2_kb = 900;
  w.streaming = 0.55; w.icache_ws_kb = 24; w.ilp = 4.2; w.mlp = 3.0;
  w.dep_chain = 0.20;
  add("625.x264_s", R::kTrain, w);

  // 631.deepsjeng_s: chess engine — hard-to-predict branches, small WS.
  w = {};
  w.f_int_alu = 0.48; w.f_int_mul = 0.03; w.f_fp_alu = 0.01; w.f_fp_mul = 0.01;
  w.f_load = 0.23; w.f_store = 0.08; w.f_branch = 0.16;
  w.branch_entropy = 0.52; w.indirect_frac = 0.10; w.call_depth = 24;
  w.btb_footprint = 700; w.dcache_ws_kb = 28; w.dcache_ws2_kb = 700;
  w.streaming = 0.10; w.icache_ws_kb = 20; w.ilp = 2.4; w.mlp = 1.8;
  w.dep_chain = 0.40;
  add("631.deepsjeng_s", R::kTrain, w);

  // 641.leela_s: Go MCTS — branchy, pointer-based tree walks.
  w = {};
  w.f_int_alu = 0.46; w.f_int_mul = 0.03; w.f_fp_alu = 0.03; w.f_fp_mul = 0.02;
  w.f_load = 0.25; w.f_store = 0.07; w.f_branch = 0.14;
  w.branch_entropy = 0.50; w.indirect_frac = 0.12; w.call_depth = 18;
  w.btb_footprint = 800; w.dcache_ws_kb = 38; w.dcache_ws2_kb = 1000;
  w.streaming = 0.10; w.icache_ws_kb = 22; w.ilp = 2.2; w.mlp = 1.6;
  w.dep_chain = 0.45;
  add("641.leela_s", R::kTrain, w);

  // 657.xz_s: compression — data-dependent branches, large dictionary.
  w = {};
  w.f_int_alu = 0.46; w.f_int_mul = 0.02; w.f_fp_alu = 0.01; w.f_fp_mul = 0.01;
  w.f_load = 0.28; w.f_store = 0.09; w.f_branch = 0.13;
  w.branch_entropy = 0.48; w.indirect_frac = 0.04; w.call_depth = 6;
  w.btb_footprint = 350; w.dcache_ws_kb = 75; w.dcache_ws2_kb = 3000;
  w.streaming = 0.25; w.icache_ws_kb = 12; w.ilp = 1.9; w.mlp = 2.2;
  w.dep_chain = 0.55;
  add("657.xz_s", R::kTrain, w);

  // 619.lbm_s: lattice Boltzmann — pure streaming FP stencil.
  w = {};
  w.f_int_alu = 0.18; w.f_int_mul = 0.01; w.f_fp_alu = 0.28; w.f_fp_mul = 0.20;
  w.f_load = 0.20; w.f_store = 0.10; w.f_branch = 0.03;
  w.branch_entropy = 0.05; w.indirect_frac = 0.02; w.call_depth = 4;
  w.btb_footprint = 80; w.dcache_ws_kb = 220; w.dcache_ws2_kb = 6000;
  w.streaming = 0.90; w.icache_ws_kb = 6; w.ilp = 3.6; w.mlp = 6.0;
  w.dep_chain = 0.18;
  add("619.lbm_s", R::kTrain, w);

  // 638.imagick_s: image processing — compute-bound FP kernels.
  w = {};
  w.f_int_alu = 0.26; w.f_int_mul = 0.03; w.f_fp_alu = 0.26; w.f_fp_mul = 0.16;
  w.f_load = 0.18; w.f_store = 0.06; w.f_branch = 0.05;
  w.branch_entropy = 0.10; w.indirect_frac = 0.04; w.call_depth = 8;
  w.btb_footprint = 250; w.dcache_ws_kb = 26; w.dcache_ws2_kb = 600;
  w.streaming = 0.55; w.icache_ws_kb = 14; w.ilp = 3.9; w.mlp = 3.2;
  w.dep_chain = 0.22;
  add("638.imagick_s", R::kTrain, w);

  // ---- validation workloads -------------------------------------------------------
  // 603.bwaves_s: blast-wave CFD — streaming FP with high MLP.
  w = {};
  w.f_int_alu = 0.20; w.f_int_mul = 0.01; w.f_fp_alu = 0.27; w.f_fp_mul = 0.18;
  w.f_load = 0.23; w.f_store = 0.07; w.f_branch = 0.04;
  w.branch_entropy = 0.08; w.indirect_frac = 0.02; w.call_depth = 5;
  w.btb_footprint = 120; w.dcache_ws_kb = 160; w.dcache_ws2_kb = 6500;
  w.streaming = 0.80; w.icache_ws_kb = 8; w.ilp = 3.4; w.mlp = 5.2;
  w.dep_chain = 0.22;
  add("603.bwaves_s", R::kValidation, w);

  // 607.cactuBSSN_s: numerical relativity — FP stencil, big code.
  w = {};
  w.f_int_alu = 0.22; w.f_int_mul = 0.02; w.f_fp_alu = 0.26; w.f_fp_mul = 0.18;
  w.f_load = 0.21; w.f_store = 0.06; w.f_branch = 0.05;
  w.branch_entropy = 0.10; w.indirect_frac = 0.03; w.call_depth = 8;
  w.btb_footprint = 400; w.dcache_ws_kb = 110; w.dcache_ws2_kb = 3800;
  w.streaming = 0.60; w.icache_ws_kb = 56; w.ilp = 3.1; w.mlp = 3.8;
  w.dep_chain = 0.28;
  add("607.cactuBSSN_s", R::kValidation, w);

  // 621.wrf_s: weather forecasting — mixed FP, moderate everything.
  w = {};
  w.f_int_alu = 0.27; w.f_int_mul = 0.02; w.f_fp_alu = 0.23; w.f_fp_mul = 0.13;
  w.f_load = 0.21; w.f_store = 0.07; w.f_branch = 0.07;
  w.branch_entropy = 0.20; w.indirect_frac = 0.07; w.call_depth = 12;
  w.btb_footprint = 800; w.dcache_ws_kb = 85; w.dcache_ws2_kb = 2800;
  w.streaming = 0.45; w.icache_ws_kb = 48; w.ilp = 2.9; w.mlp = 3.0;
  w.dep_chain = 0.32;
  add("621.wrf_s", R::kValidation, w);

  // 644.nab_s: molecular dynamics — compute-bound FP, small WS.
  w = {};
  w.f_int_alu = 0.24; w.f_int_mul = 0.02; w.f_fp_alu = 0.28; w.f_fp_mul = 0.20;
  w.f_load = 0.17; w.f_store = 0.05; w.f_branch = 0.04;
  w.branch_entropy = 0.08; w.indirect_frac = 0.03; w.call_depth = 6;
  w.btb_footprint = 150; w.dcache_ws_kb = 22; w.dcache_ws2_kb = 500;
  w.streaming = 0.30; w.icache_ws_kb = 10; w.ilp = 3.3; w.mlp = 2.4;
  w.dep_chain = 0.30;
  add("644.nab_s", R::kValidation, w);

  // 649.fotonik3d_s: photonics FDTD — streaming FP, very high MLP.
  w = {};
  w.f_int_alu = 0.19; w.f_int_mul = 0.01; w.f_fp_alu = 0.28; w.f_fp_mul = 0.19;
  w.f_load = 0.22; w.f_store = 0.08; w.f_branch = 0.03;
  w.branch_entropy = 0.05; w.indirect_frac = 0.02; w.call_depth = 4;
  w.btb_footprint = 90; w.dcache_ws_kb = 190; w.dcache_ws2_kb = 7000;
  w.streaming = 0.85; w.icache_ws_kb = 7; w.ilp = 3.5; w.mlp = 5.6;
  w.dep_chain = 0.20;
  add("649.fotonik3d_s", R::kValidation, w);
}

const Workload& SpecSuite::by_name(std::string_view name) const {
  return workloads_.at(index_of(name));
}

size_t SpecSuite::index_of(std::string_view name) const {
  for (size_t i = 0; i < workloads_.size(); ++i) {
    if (workloads_[i].name() == name) return i;
  }
  throw std::out_of_range("SpecSuite: unknown workload '" + std::string(name) +
                          "'");
}

std::vector<std::string> SpecSuite::names(SplitRole role) const {
  std::vector<std::string> out;
  for (size_t i = 0; i < workloads_.size(); ++i) {
    if (roles_[i] == role) out.push_back(workloads_[i].name());
  }
  return out;
}

SplitRole SpecSuite::role_of(std::string_view name) const {
  return roles_.at(index_of(name));
}

}  // namespace metadse::workload
