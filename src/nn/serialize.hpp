// Binary checkpointing of module parameters, hardened against the ways a
// checkpoint actually dies in production: torn writes (atomic tmp+rename),
// bit rot (per-tensor CRC32 + whole-file footer checksum), and adversarially
// corrupt headers (rank/extent validation against the receiving module
// before any allocation). Format v2; v1 files (no checksums) still load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace metadse::nn {

/// CRC-32 (IEEE 802.3, reflected) over @p n bytes, continuing from @p crc.
/// Pass the previous return value to checksum a file incrementally.
uint32_t crc32(const void* data, size_t n, uint32_t crc = 0);

/// Writes @p bytes to @p path atomically: the payload goes to "<path>.tmp",
/// is flushed and fsync'd, then renamed over @p path and the parent
/// directory is fsync'd, so readers see either the old file or the complete
/// new one — never a torn write — and the rename survives power loss.
/// Thin wrapper over core::io::atomic_write_file (chaos point
/// "checkpoint.write"); throws core::io::IoError (a std::runtime_error) on
/// any I/O failure, injected or real (the tmp file is removed).
void atomic_write_file(const std::string& path, const std::string& bytes);

/// Writes all parameters of @p m (shapes + float32 values, little-endian as
/// the host) to @p path in format v2 (checksummed, atomically). Throws
/// std::runtime_error on I/O failure.
void save_parameters(const Module& m, const std::string& path);

/// Loads parameters saved by save_parameters (v1 or v2) into @p m; throws
/// std::runtime_error on I/O failure, any shape/count mismatch, or (v2) any
/// checksum mismatch. Shapes are validated against @p m before any
/// data-dependent allocation, so a corrupt file cannot trigger an OOM.
void load_parameters(Module& m, const std::string& path);

/// Writes an int8 activation-calibration table (per-gemm absmax, compiled-
/// plan schedule order) to @p path — atomically, CRC-checksummed. The table
/// lives in its own "<checkpoint>.calib" sidecar so the v2 checkpoint
/// format is untouched and older builds load the checkpoint unchanged.
void save_calibration(const std::vector<float>& table,
                      const std::string& path);

/// Loads a table written by save_calibration; throws std::runtime_error on
/// I/O failure, bad magic/version, an implausible entry count, or checksum
/// mismatch.
std::vector<float> load_calibration(const std::string& path);

}  // namespace metadse::nn
