// Binary checkpointing of module parameters (shape-checked on load), so a
// meta-trained predictor can be saved once and adapted many times.
#pragma once

#include <string>

#include "nn/module.hpp"

namespace metadse::nn {

/// Writes all parameters of @p m (shapes + float32 values, little-endian as
/// the host) to @p path. Throws std::runtime_error on I/O failure.
void save_parameters(const Module& m, const std::string& path);

/// Loads parameters saved by save_parameters into @p m; throws
/// std::runtime_error on I/O failure or any shape/count mismatch.
void load_parameters(Module& m, const std::string& path);

}  // namespace metadse::nn
