#include "nn/fused.hpp"

namespace metadse::nn {

namespace {

thread_local bool g_fused_enabled = true;

}  // namespace

bool FusedKernels::enabled() { return g_fused_enabled; }

void FusedKernels::set_enabled(bool on) { g_fused_enabled = on; }

}  // namespace metadse::nn
