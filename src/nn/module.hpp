// Module base class: a named parameter registry with deterministic ordering,
// supporting the clone/copy operations the MAML inner loop depends on.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace metadse::nn {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Base class for trainable components. Parameters registered by a module and
/// its children are exposed in registration order, which is identical across
/// two instances constructed with the same configuration — the property that
/// makes copy_parameters_from / optimizer state / serialization line up.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = delete;
  Module& operator=(Module&&) = delete;
  virtual ~Module() = default;

  /// All trainable parameters: own parameters first, then each child's,
  /// depth-first in registration order.
  std::vector<Tensor> parameters() const;

  /// Zeroes the gradient buffers of every parameter.
  void zero_grad();

  /// Total number of trainable scalars.
  size_t parameter_count() const;

  /// Copies parameter *values* from @p other (same architecture required;
  /// throws std::invalid_argument on any shape mismatch).
  void copy_parameters_from(const Module& other);

  /// Concatenation of all parameter values (for Reptile-style arithmetic
  /// and serialization).
  std::vector<float> flatten_parameters() const;

  /// Writes @p flat back into the parameters; size must match exactly.
  void unflatten_parameters(std::span<const float> flat);

 protected:
  /// Registers @p t as a trainable parameter of this module.
  Tensor register_parameter(Tensor t);
  /// Registers @p child so its parameters are exposed through this module.
  void register_child(Module& child);

 private:
  std::vector<Tensor> params_;
  std::vector<Module*> children_;
};

}  // namespace metadse::nn
