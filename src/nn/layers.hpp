// Elementary trainable layers: Linear and LayerNorm (with affine).
#pragma once

#include "nn/module.hpp"

namespace metadse::nn {

/// Fully connected layer: y = x W + b, x is [..., in_features].
class Linear : public Module {
 public:
  /// Glorot-uniform initialized weights; zero bias.
  Linear(size_t in_features, size_t out_features, Rng& rng);

  /// Applies the affine map to the trailing dimension of @p x.
  Tensor forward(const Tensor& x) const;

  /// forward() followed by GELU, dispatched through the fused bias+GELU
  /// kernel when FusedKernels is enabled (bitwise-equal either way).
  Tensor forward_gelu(const Tensor& x) const;

  size_t in_features() const { return in_; }
  size_t out_features() const { return out_; }
  const Tensor& weight() const { return w_; }
  const Tensor& bias() const { return b_; }

 private:
  size_t in_;
  size_t out_;
  Tensor w_;  ///< [in, out]
  Tensor b_;  ///< [out]
};

/// Layer normalization over the trailing dimension with learnable gain/bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(size_t features, float eps = 1e-5F);

  /// Normalizes the trailing dimension of @p x, then applies gamma/beta.
  Tensor forward(const Tensor& x) const;

  const Tensor& gamma() const { return gamma_; }
  const Tensor& beta() const { return beta_; }

 private:
  Tensor gamma_;  ///< [features], initialized to 1
  Tensor beta_;   ///< [features], initialized to 0
  float eps_;
};

}  // namespace metadse::nn
