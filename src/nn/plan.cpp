#include "nn/plan.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/chaos.hpp"
#include "core/parallel.hpp"
#include "nn/fused.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/pool.hpp"

namespace metadse::nn::plan {

namespace t = metadse::tensor;
namespace tp = metadse::tensor::plan;
namespace kern = metadse::tensor::kern;
namespace quant = metadse::tensor::quant;

// -- PlanMode ----------------------------------------------------------------

namespace {
thread_local constinit bool g_plan_mode = true;
}  // namespace

bool PlanMode::enabled() { return g_plan_mode; }
void PlanMode::set_enabled(bool on) { g_plan_mode = on; }

// -- PlanRegistry ------------------------------------------------------------

struct PlanRegistry::Impl {
  mutable std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<const tp::CompiledProgram>>
      progs;
  std::atomic<uint64_t> compiled{0};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> fallbacks{0};
  std::atomic<uint64_t> static_bytes{0};
};

PlanRegistry::Impl& PlanRegistry::impl() const {
  static Impl impl;
  return impl;
}

PlanRegistry& PlanRegistry::instance() {
  static PlanRegistry reg;
  return reg;
}

std::shared_ptr<const tp::CompiledProgram> PlanRegistry::find(
    const std::string& key) const {
  auto& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.progs.find(key);
  return it == im.progs.end() ? nullptr : it->second;
}

std::shared_ptr<const tp::CompiledProgram> PlanRegistry::insert(
    const std::string& key,
    std::shared_ptr<const tp::CompiledProgram> prog) {
  auto& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto [it, fresh] = im.progs.emplace(key, std::move(prog));
  if (fresh) {
    im.compiled.fetch_add(1, std::memory_order_relaxed);
    im.static_bytes.fetch_add(it->second->static_bytes(),
                              std::memory_order_relaxed);
  }
  return it->second;
}

void PlanRegistry::note_hit() {
  impl().hits.fetch_add(1, std::memory_order_relaxed);
}

void PlanRegistry::note_fallback() {
  impl().fallbacks.fetch_add(1, std::memory_order_relaxed);
}

void PlanRegistry::note_tape_compiled() {
  impl().compiled.fetch_add(1, std::memory_order_relaxed);
}

PlanStats PlanRegistry::stats() const {
  auto& im = impl();
  PlanStats s;
  s.plans_compiled = im.compiled.load(std::memory_order_relaxed);
  s.cache_hits = im.hits.load(std::memory_order_relaxed);
  s.fallbacks = im.fallbacks.load(std::memory_order_relaxed);
  s.static_bytes = im.static_bytes.load(std::memory_order_relaxed);
  return s;
}

void PlanRegistry::reset() {
  auto& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.progs.clear();
  im.compiled.store(0, std::memory_order_relaxed);
  im.hits.store(0, std::memory_order_relaxed);
  im.fallbacks.store(0, std::memory_order_relaxed);
  im.static_bytes.store(0, std::memory_order_relaxed);
}

// -- predict plans -----------------------------------------------------------

std::string predict_plan_key(const TransformerRegressor& model, size_t batch,
                             bool fuse, quant::Precision prec) {
  const auto& c = model.config();
  std::string k = "predict:nt" + std::to_string(c.n_tokens) + ":dm" +
                  std::to_string(c.d_model) + ":h" +
                  std::to_string(c.n_heads) + ":l" +
                  std::to_string(c.n_layers) + ":ff" +
                  std::to_string(c.d_ff) + ":o" +
                  std::to_string(c.n_outputs) + ":B" + std::to_string(batch) +
                  ":m";
  for (size_t i = 0; i < model.layer_count(); ++i) {
    k += model.attention_layer(i).has_mask() ? '1' : '0';
  }
  k += fuse ? ":f1" : ":f0";
  if (prec == quant::Precision::kBf16) k += ":qb";
  if (prec == quant::Precision::kInt8) k += ":q8";
  return k;
}

std::shared_ptr<const tp::CompiledProgram> compile_predict(
    TransformerRegressor& model, size_t batch, bool fuse, std::string* why) {
  if (batch == 0) {
    if (why != nullptr) *why = "empty batch";
    return nullptr;
  }
  if (core::chaos::fire("plan.compile")) {
    // An injected compile failure exercises the fallback contract: the
    // caller negative-caches the key and serves the bitwise-identical eager
    // path forever after — degraded throughput, unchanged values.
    if (why != nullptr) *why = "injected plan-compile fault";
    return nullptr;
  }
  std::unordered_map<const t::Node*, tp::LeafBinding> leaves;
  uint32_t slot = 0;
  for (const auto& p : model.parameters()) {
    leaves[p.node().get()] = {tp::LeafBinding::Kind::kExternal, slot++};
  }
  for (size_t i = 0; i < model.layer_count(); ++i) {
    const auto& attn = model.attention_layer(i);
    if (attn.has_mask()) {
      leaves[attn.mask().node().get()] = {tp::LeafBinding::Kind::kExternal,
                                          slot++};
    }
  }
  // Values of the probe input are irrelevant — the trace only records
  // shapes, op identities, and leaf addresses.
  auto x = t::Tensor::zeros({batch, model.config().n_tokens});
  leaves[x.node().get()] = {tp::LeafBinding::Kind::kInput, 0};

  t::NoGradGuard no_grad;
  FusedKernelsGuard fused(fuse);
  tp::Tracer tracer;
  t::Rng rng(0);
  t::Tensor y = model.forward(x, rng, /*train=*/false);
  tp::CompileOptions opt;
  opt.fuse = fuse;
  return tp::compile(tracer, leaves, y.node().get(), opt, why);
}

// -- PredictPlanner ----------------------------------------------------------

struct PredictPlanner::Impl {
  explicit Impl(TransformerRegressor& m) : model(m) {
    for (const auto& p : model.parameters()) {
      param_nodes.push_back(p.node().get());
    }
  }

  struct Entry {
    std::unique_ptr<tp::ProgramExec> exec;  // null => negative (unplannable)
    // Per external slot: source node (params, then masks in layer order),
    // last bound data pointer, and expected element count. Revalidated each
    // run so parameter updates in place cost nothing and buffer reallocation
    // or mask replacement only triggers a rebind.
    std::vector<const t::Node*> ext_nodes;
    std::vector<const float*> bound;
    std::vector<size_t> ext_size;
    size_t n_params = 0;
    // int8 entries: model calibration generation the executor was fed, so a
    // re-captured table reaches an already-bound executor on the next run.
    uint64_t calib_gen = 0;
  };

  // batch, fuse, mask bits, precision
  using Key = std::tuple<size_t, bool, uint64_t, uint8_t>;

  TransformerRegressor& model;
  std::vector<const t::Node*> param_nodes;
  std::mutex mu;
  std::map<Key, Entry> entries;

  static constexpr size_t kMaxEntries = 16;

  uint64_t mask_bits() const {
    uint64_t bits = 0;
    const size_t n = std::min<size_t>(model.layer_count(), 64);
    for (size_t i = 0; i < n; ++i) {
      if (model.attention_layer(i).has_mask()) bits |= uint64_t{1} << i;
    }
    return bits;
  }

  /// Current mask nodes in layer order (only layers that have one).
  void collect_masks(std::vector<const t::Node*>& out) const {
    out.clear();
    for (size_t i = 0; i < model.layer_count(); ++i) {
      const auto& attn = model.attention_layer(i);
      if (attn.has_mask()) out.push_back(attn.mask().node().get());
    }
  }

  bool bind_entry(Entry& e) {
    std::vector<const t::Node*> masks;
    collect_masks(masks);
    if (e.ext_nodes.size() != e.n_params + masks.size()) return false;
    for (size_t i = 0; i < e.ext_nodes.size(); ++i) {
      const t::Node* node =
          i < e.n_params ? param_nodes[i] : masks[i - e.n_params];
      const float* p = node->value.data();
      if (node != e.ext_nodes[i] || p != e.bound[i]) {
        if (node->value.size() != e.ext_size[i]) return false;
        e.exec->bind_external(static_cast<uint32_t>(i), p);
        e.ext_nodes[i] = node;
        e.bound[i] = p;
      }
    }
    return true;
  }
};

PredictPlanner::PredictPlanner(TransformerRegressor& model)
    : impl_(std::make_unique<Impl>(model)) {}

PredictPlanner::~PredictPlanner() = default;

bool PredictPlanner::run(size_t batch, const float* in, float* out) {
  auto& im = *impl_;
  auto& reg = PlanRegistry::instance();
  if (batch == 0) return false;
  if (im.model.last_attention_layer().capture_attention()) {
    reg.note_fallback();
    return false;
  }
  // Concurrent predicts on one model serialize on the arena; a contended
  // caller runs the bitwise-identical eager path instead of waiting.
  std::unique_lock<std::mutex> lock(im.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    reg.note_fallback();
    return false;
  }
  const bool fuse = FusedKernels::enabled();
  // Effective precision for this run: int8 without a captured calibration
  // table downgrades to fp32 (serving before adapt-time calibration, or a
  // model whose calibration failed to capture).
  quant::Precision prec = quant::PrecisionMode::mode();
  if (prec == quant::Precision::kInt8 &&
      !im.model.has_quant_calibration()) {
    prec = quant::Precision::kFp32;
  }
  const Impl::Key key{batch, fuse, im.mask_bits(),
                      static_cast<uint8_t>(prec)};
  auto it = im.entries.find(key);
  if (it == im.entries.end()) {
    if (im.entries.size() >= Impl::kMaxEntries) im.entries.clear();
    Impl::Entry e;
    const std::string rkey = predict_plan_key(im.model, batch, fuse, prec);
    auto prog = reg.find(rkey);
    const bool from_registry = prog != nullptr;
    if (!prog) {
      std::string why;
      prog = compile_predict(im.model, batch, fuse, &why);
      if (prog) prog = reg.insert(rkey, std::move(prog));
    }
    if (prog) {
      e.exec = std::make_unique<tp::ProgramExec>(prog);
      e.n_params = im.param_nodes.size();
      std::vector<const t::Node*> masks;
      im.collect_masks(masks);
      e.ext_nodes = im.param_nodes;
      e.ext_nodes.insert(e.ext_nodes.end(), masks.begin(), masks.end());
      if (e.ext_nodes.size() == prog->n_external) {
        for (size_t i = 0; i < e.ext_nodes.size(); ++i) {
          e.bound.push_back(e.ext_nodes[i]->value.data());
          e.ext_size.push_back(e.ext_nodes[i]->value.size());
          e.exec->bind_external(static_cast<uint32_t>(i), e.bound.back());
        }
        e.exec->set_precision(prec);
        if (prec == quant::Precision::kInt8) {
          // A schedule-order mismatch (e.g. a calibration captured under a
          // different fusion setting) makes int8 unservable for this key;
          // negative-cache it and let callers fall back to eager fp32.
          if (e.exec->set_calibration(im.model.quant_calibration())) {
            e.calib_gen = im.model.quant_calibration_gen();
          } else {
            e.exec.reset();
          }
        }
      } else {
        e.exec.reset();  // leaf classification drifted; never plan this key
      }
    }
    it = im.entries.emplace(key, std::move(e)).first;
    if (!it->second.exec) {
      reg.note_fallback();
      return false;
    }
    it->second.exec->run(in, out);
    // A run served by a program another replica already registered is a
    // cache hit; only the compiling run itself isn't.
    if (from_registry) reg.note_hit();
    return true;
  }
  Impl::Entry& e = it->second;
  if (!e.exec || !im.bind_entry(e)) {
    reg.note_fallback();
    return false;
  }
  if (prec == quant::Precision::kInt8 &&
      e.calib_gen != im.model.quant_calibration_gen()) {
    if (!e.exec->set_calibration(im.model.quant_calibration())) {
      reg.note_fallback();
      return false;
    }
    e.calib_gen = im.model.quant_calibration_gen();
  }
  e.exec->run(in, out);
  reg.note_hit();
  return true;
}

// -- calibration capture -----------------------------------------------------

bool capture_calibration(TransformerRegressor& model, const float* in,
                         size_t batch) {
  std::string why;
  const bool fuse = FusedKernels::enabled();
  const std::string rkey = predict_plan_key(model, batch, fuse);
  auto& reg = PlanRegistry::instance();
  auto prog = reg.find(rkey);
  if (!prog) {
    prog = compile_predict(model, batch, fuse, &why);
    if (prog) prog = reg.insert(rkey, std::move(prog));
  }
  if (!prog) return false;
  tp::ProgramExec exec(prog);
  uint32_t slot = 0;
  for (const auto& p : model.parameters()) {
    exec.bind_external(slot++, p.node()->value.data());
  }
  for (size_t i = 0; i < model.layer_count(); ++i) {
    const auto& attn = model.attention_layer(i);
    if (attn.has_mask()) {
      exec.bind_external(slot++, attn.mask().node()->value.data());
    }
  }
  if (slot != prog->n_external) return false;
  std::vector<float> table;
  exec.capture_absmax(&table);
  std::vector<float> out(batch * model.config().n_outputs);
  exec.run(in, out.data());
  model.set_quant_calibration(std::move(table));
  return true;
}

// -- TapePlan ----------------------------------------------------------------

namespace {

/// One lowered replay step over pinned graph nodes. All addressing metadata
/// is resolved at capture; replay only streams values.
struct RStep {
  tp::OpKind kind{};
  uint8_t fn = 0;
  bool flag = false;  // matmul: nt; reduce: mean
  float eps = 0.0F;
  t::Node* out = nullptr;
  t::Node* a = nullptr;
  t::Node* b = nullptr;
  t::Node* c = nullptr;
  float* stash0 = nullptr;
  float* stash1 = nullptr;
  size_t n = 0, L = 0, rows = 0, R = 0;
  size_t M = 0, K = 0, N = 0;
  std::vector<size_t> aoff, boff;      // gemm batch bases
  size_t outer = 0, ax = 0, inner = 0;  // reduce_axis
  uint8_t bmode = 0;  // binary: 0 same / 1 b-suffix / 2 a-suffix / 3 general
  std::vector<size_t> sa, sb;  // binary mode 3: broadcast strides
  t::Shape oshape;             // binary mode 3 out / permute outer extents
  std::vector<size_t> pstr;    // permute: src stride per outer out dim
  size_t prun = 1;             // permute: contiguous run length
};

/// Mirrors ops.cpp's trailing-suffix broadcast test.
bool is_trailing_suffix(const t::Shape& small, const t::Shape& big) {
  if (small.size() > big.size()) return false;
  const size_t d0 = big.size() - small.size();
  for (size_t d = 0; d < small.size(); ++d) {
    if (small[d] != big[d0 + d]) return false;
  }
  return true;
}

bool lower_rec(const tp::TraceRec& r, RStep& s) {
  s.kind = r.kind;
  s.fn = r.fn;
  s.eps = r.f0;
  s.out = r.out.get();
  s.a = r.a ? r.a.get() : nullptr;
  s.b = r.b ? r.b.get() : nullptr;
  s.c = r.c ? r.c.get() : nullptr;
  s.stash0 = r.stash0;
  s.stash1 = r.stash1;
  switch (r.kind) {
    case tp::OpKind::kConst:
      return true;  // leaf value persists in the node; nothing to replay
    case tp::OpKind::kBinary: {
      const auto& as = s.a->shape;
      const auto& bs = s.b->shape;
      if (as == bs) {
        s.bmode = 0;
        s.n = s.a->value.size();
      } else if (!s.b->value.empty() && is_trailing_suffix(bs, as)) {
        s.bmode = 1;
        s.n = s.a->value.size();
        s.L = s.b->value.size();
      } else if (!s.a->value.empty() && is_trailing_suffix(as, bs)) {
        s.bmode = 2;
        s.n = s.b->value.size();
        s.L = s.a->value.size();
      } else {
        s.bmode = 3;
        s.oshape = t::broadcast_shape(as, bs);
        if (s.oshape.size() > 8) return false;  // odometer register bound
        s.sa = t::broadcast_strides(as, s.oshape);
        s.sb = t::broadcast_strides(bs, s.oshape);
        s.n = t::numel(s.oshape);
      }
      return true;
    }
    case tp::OpKind::kUnary:
      s.n = s.a->value.size();
      return true;
    case tp::OpKind::kMatmul: {
      s.flag = r.flag;  // nt
      const auto& as = s.a->shape;
      const auto& bs = s.b->shape;
      if (as.size() < 2 || bs.size() < 2) return false;
      s.M = as[as.size() - 2];
      s.K = as.back();
      if (!r.flag) {
        s.N = bs.back();
        tp::batch_offsets_for(as, bs, s.M * s.K, s.K * s.N, s.aoff, s.boff);
      } else {
        s.N = bs[bs.size() - 2];
        tp::batch_offsets_for(as, bs, s.M * s.K, s.N * s.K, s.aoff, s.boff);
      }
      return true;
    }
    case tp::OpKind::kSoftmax:
      s.L = s.a->shape.back();
      s.rows = s.a->value.size() / s.L;
      return true;
    case tp::OpKind::kSoftmaxMasked:
      if (s.stash0 == nullptr || s.stash1 == nullptr) return false;
      s.L = s.a->shape.back();
      s.R = s.a->shape[s.a->shape.size() - 2];
      s.rows = s.a->value.size() / s.L;
      return true;
    case tp::OpKind::kLayerNorm:
      if (s.stash0 == nullptr) return false;
      s.L = s.a->shape.back();
      s.rows = s.a->value.size() / s.L;
      return true;
    case tp::OpKind::kLayerNormAffine:
      if (s.stash0 == nullptr || s.stash1 == nullptr) return false;
      s.L = s.a->shape.back();
      s.rows = s.a->value.size() / s.L;
      return true;
    case tp::OpKind::kBiasGelu:
      s.n = s.a->value.size();
      s.L = s.b->value.size();
      return true;
    case tp::OpKind::kReduceAll:
      s.flag = r.fn != 0;  // mean
      s.n = s.a->value.size();
      return true;
    case tp::OpKind::kReduceAxis: {
      s.flag = r.fn != 0;  // mean
      const auto& as = s.a->shape;
      if (r.axis >= as.size()) return false;
      s.outer = 1;
      s.inner = 1;
      for (size_t d = 0; d < r.axis; ++d) s.outer *= as[d];
      for (size_t d = r.axis + 1; d < as.size(); ++d) s.inner *= as[d];
      s.ax = as[r.axis];
      return true;
    }
    case tp::OpKind::kReshape:
      s.n = s.a->value.size();
      return true;
    case tp::OpKind::kPermute: {
      const auto& as = s.a->shape;
      const auto& os = s.out->shape;
      if (r.perm.size() != as.size()) return false;
      const auto in_strides = t::row_major_strides(as);
      const bool last_fixed =
          !r.perm.empty() && r.perm.back() == as.size() - 1 && as.back() > 1;
      s.prun = last_fixed ? as.back() : 1;
      const size_t outer_rank = last_fixed ? os.size() - 1 : os.size();
      if (outer_rank > 8) return false;  // odometer register bound
      s.pstr.resize(outer_rank);
      s.oshape.assign(os.begin(),
                      os.begin() + static_cast<std::ptrdiff_t>(outer_rank));
      for (size_t d = 0; d < outer_rank; ++d) {
        s.pstr[d] = in_strides[r.perm[d]];
      }
      s.n = s.out->value.size();
      return true;
    }
  }
  return false;
}

template <typename F>
void binary_apply(const RStep& s, F fwd) {
  const float* pa = s.a->value.data();
  const float* pb = s.b->value.data();
  float* po = s.out->value.data();
  switch (s.bmode) {
    case 0:
      for (size_t i = 0; i < s.n; ++i) po[i] = fwd(pa[i], pb[i]);
      break;
    case 1:
      if (s.L == 1) {
        const float bv = pb[0];
        for (size_t i = 0; i < s.n; ++i) po[i] = fwd(pa[i], bv);
      } else {
        for (size_t i0 = 0; i0 < s.n; i0 += s.L) {
          for (size_t j = 0; j < s.L; ++j) {
            po[i0 + j] = fwd(pa[i0 + j], pb[j]);
          }
        }
      }
      break;
    case 2:
      if (s.L == 1) {
        const float av = pa[0];
        for (size_t i = 0; i < s.n; ++i) po[i] = fwd(av, pb[i]);
      } else {
        for (size_t i0 = 0; i0 < s.n; i0 += s.L) {
          for (size_t j = 0; j < s.L; ++j) {
            po[i0 + j] = fwd(pa[j], pb[i0 + j]);
          }
        }
      }
      break;
    default: {
      const size_t rank = s.oshape.size();
      size_t idx[8] = {};
      size_t oa = 0;
      size_t ob = 0;
      for (size_t i = 0; i < s.n; ++i) {
        po[i] = fwd(pa[oa], pb[ob]);
        for (size_t d = rank; d-- > 0;) {
          ++idx[d];
          oa += s.sa[d];
          ob += s.sb[d];
          if (idx[d] < s.oshape[d]) break;
          oa -= idx[d] * s.sa[d];
          ob -= idx[d] * s.sb[d];
          idx[d] = 0;
        }
      }
    }
  }
}

void replay_binary(const RStep& s) {
  switch (static_cast<tp::BinFn>(s.fn)) {
    case tp::BinFn::kAdd:
      binary_apply(s, [](float x, float y) { return x + y; });
      break;
    case tp::BinFn::kSub:
      binary_apply(s, [](float x, float y) { return x - y; });
      break;
    case tp::BinFn::kMul:
      binary_apply(s, [](float x, float y) { return x * y; });
      break;
    case tp::BinFn::kDiv:
      binary_apply(s, [](float x, float y) { return x / y; });
      break;
  }
}

void replay_unary(const RStep& s) {
  const float* pa = s.a->value.data();
  float* po = s.out->value.data();
  auto apply = [&](auto fn) {
    for (size_t i = 0; i < s.n; ++i) po[i] = fn(pa[i]);
  };
  switch (static_cast<tp::UnFn>(s.fn)) {
    case tp::UnFn::kNeg:
      apply([](float x) { return -x; });
      break;
    case tp::UnFn::kRelu:
      apply([](float x) { return x > 0.0F ? x : 0.0F; });
      break;
    case tp::UnFn::kGelu:
      apply([](float x) { return kern::gelu_fwd(x); });
      break;
    case tp::UnFn::kTanh:
      apply([](float x) { return std::tanh(x); });
      break;
    case tp::UnFn::kSigmoid:
      apply([](float x) { return 1.0F / (1.0F + std::exp(-x)); });
      break;
    case tp::UnFn::kExp:
      apply([](float x) { return std::exp(x); });
      break;
    case tp::UnFn::kLog:
      apply([](float x) { return std::log(x); });
      break;
    case tp::UnFn::kSquare:
      apply([](float x) { return x * x; });
      break;
    case tp::UnFn::kAbs:
      apply([](float x) { return std::fabs(x); });
      break;
  }
}

/// Same loop structure (and therefore the same bits and the same thread-count
/// invariance) as ops.cpp's gemm_forward / gemm_nt_forward.
void replay_gemm(const RStep& s) {
  const float* a = s.a->value.data();
  const float* b = s.b->value.data();
  float* c = s.out->value.data();
  const size_t nb = s.aoff.size();
  const size_t o_mat = s.M * s.N;
  if (!s.flag) {
    core::parallel_for_blocks_static(
        s.M, kern::gemm_row_grain(s.K * s.N * nb), [&](size_t m0, size_t m1) {
          for (size_t bi = 0; bi < nb; ++bi) {
            const float* pa = a + s.aoff[bi];
            const float* pb = b + s.boff[bi];
            float* po = c + bi * o_mat;
            kern::gemm_rows<true>(pa, pb, po, m0, m1, 0,
                                  std::min(s.K, kern::kGemmKTile), s.K, s.N);
            for (size_t k0 = kern::kGemmKTile; k0 < s.K;
                 k0 += kern::kGemmKTile) {
              kern::gemm_rows<false>(pa, pb, po, m0, m1, k0,
                                     std::min(s.K, k0 + kern::kGemmKTile),
                                     s.K, s.N);
            }
          }
        });
    return;
  }
  const size_t b_mat = s.K * s.N;
  std::vector<float> bt = t::BufferPool::acquire(nb * b_mat);
  for (size_t bi = 0; bi < nb; ++bi) {
    const float* pb = b + s.boff[bi];
    float* pt = bt.data() + bi * b_mat;
    for (size_t n = 0; n < s.N; ++n) {
      for (size_t k = 0; k < s.K; ++k) pt[k * s.N + n] = pb[n * s.K + k];
    }
  }
  core::parallel_for_blocks_static(
      s.M, kern::gemm_row_grain(s.K * s.N * nb), [&](size_t m0, size_t m1) {
        for (size_t bi = 0; bi < nb; ++bi) {
          kern::gemm_rows<true>(a + s.aoff[bi], bt.data() + bi * b_mat,
                                c + bi * o_mat, m0, m1, 0, s.K, s.K, s.N);
        }
      });
  t::BufferPool::release(std::move(bt));
}

void replay_reduce_axis(const RStep& s) {
  const float* pa = s.a->value.data();
  float* po = s.out->value.data();
  std::fill(po, po + s.outer * s.inner, 0.0F);
  for (size_t o = 0; o < s.outer; ++o) {
    for (size_t x = 0; x < s.ax; ++x) {
      const float* src = pa + (o * s.ax + x) * s.inner;
      float* dst = po + o * s.inner;
      for (size_t i = 0; i < s.inner; ++i) dst[i] += src[i];
    }
  }
  if (s.flag) {
    const float nax = static_cast<float>(s.ax);
    for (size_t i = 0; i < s.outer * s.inner; ++i) po[i] /= nax;
  }
}

void replay_permute(const RStep& s) {
  const float* src = s.a->value.data();
  float* dst = s.out->value.data();
  const size_t rank = s.oshape.size();
  size_t idx[8] = {};
  size_t off = 0;
  for (size_t o = 0; o < s.n; o += s.prun) {
    if (s.prun == 1) {
      dst[o] = src[off];
    } else {
      std::copy(src + off, src + off + s.prun, dst + o);
    }
    for (size_t d = rank; d-- > 0;) {
      ++idx[d];
      off += s.pstr[d];
      if (idx[d] < s.oshape[d]) break;
      off -= idx[d] * s.pstr[d];
      idx[d] = 0;
    }
  }
}

void replay_step(const RStep& s) {
  switch (s.kind) {
    case tp::OpKind::kConst:
      break;
    case tp::OpKind::kBinary:
      replay_binary(s);
      break;
    case tp::OpKind::kUnary:
      replay_unary(s);
      break;
    case tp::OpKind::kMatmul:
      replay_gemm(s);
      break;
    case tp::OpKind::kSoftmax: {
      const float* pa = s.a->value.data();
      float* po = s.out->value.data();
      for (size_t r = 0; r < s.rows; ++r) {
        kern::softmax_row(pa + r * s.L, po + r * s.L, s.L);
      }
      break;
    }
    case tp::OpKind::kSoftmaxMasked: {
      const float* pa = s.a->value.data();
      const float* mk = s.b->value.data();
      float* po = s.out->value.data();
      for (size_t r = 0; r < s.rows; ++r) {
        float* y = s.stash0 + r * s.L;
        kern::softmax_row(pa + r * s.L, y, s.L);
        s.stash1[r] = kern::masked_renorm_row(y, mk + (r % s.R) * s.L,
                                              po + r * s.L, s.L, s.eps);
      }
      break;
    }
    case tp::OpKind::kLayerNorm: {
      const float* pa = s.a->value.data();
      float* po = s.out->value.data();
      for (size_t r = 0; r < s.rows; ++r) {
        s.stash0[r] =
            kern::layer_norm_row(pa + r * s.L, po + r * s.L, s.L, s.eps);
      }
      break;
    }
    case tp::OpKind::kLayerNormAffine: {
      const float* pa = s.a->value.data();
      const float* pg = s.b->value.data();
      const float* pb = s.c->value.data();
      float* po = s.out->value.data();
      for (size_t r = 0; r < s.rows; ++r) {
        s.stash1[r] = kern::layer_norm_affine_row(
            pa + r * s.L, pg, pb, po + r * s.L, s.stash0 + r * s.L, s.L,
            s.eps);
      }
      break;
    }
    case tp::OpKind::kBiasGelu:
      kern::bias_gelu_rows(s.a->value.data(), s.b->value.data(),
                           s.out->value.data(), s.n, s.L);
      break;
    case tp::OpKind::kReduceAll: {
      const float* pa = s.a->value.data();
      float acc = 0.0F;
      for (size_t i = 0; i < s.n; ++i) acc += pa[i];
      s.out->value[0] = s.flag ? acc / static_cast<float>(s.n) : acc;
      break;
    }
    case tp::OpKind::kReduceAxis:
      replay_reduce_axis(s);
      break;
    case tp::OpKind::kReshape:
      std::copy(s.a->value.begin(), s.a->value.end(),
                s.out->value.begin());
      break;
    case tp::OpKind::kPermute:
      replay_permute(s);
      break;
  }
}

}  // namespace

struct TapePlan::Impl {
  enum class State : uint8_t { kEmpty, kReady, kDead };
  State state = State::kEmpty;
  const TransformerRegressor* model = nullptr;
  const t::Node* xn = nullptr;
  const t::Node* yn = nullptr;
  t::Tensor root;                  // pins the captured graph
  std::vector<tp::TraceRec> recs;  // pins no-grad intermediates + stashes
  std::vector<RStep> steps;
  std::vector<t::Node*> topo;           // Tensor::backward post-order
  std::vector<t::Node*> closure_nodes;  // grads reset to "fresh" each replay

  /// Replicates Tensor::backward's iterative post-order topo sort.
  void build_topo() {
    topo.clear();
    std::vector<std::pair<t::Node*, size_t>> stack;
    std::unordered_set<const t::Node*> visited;
    t::Node* rn = root.node().get();
    stack.emplace_back(rn, 0);
    visited.insert(rn);
    while (!stack.empty()) {
      auto& [node, next_child] = stack.back();
      if (next_child < node->parents.size()) {
        t::Node* child = node->parents[next_child++].get();
        if (visited.insert(child).second) stack.emplace_back(child, 0);
      } else {
        topo.push_back(node);
        stack.pop_back();
      }
    }
  }

  /// Every non-leaf node reachable from the loss must be the output of a
  /// replayable record, otherwise a replay would reuse stale values.
  bool validate() {
    std::unordered_set<const t::Node*> outs;
    for (const auto& r : recs) outs.insert(r.out.get());
    for (const t::Node* n : topo) {
      if ((n->backward_fn || !n->parents.empty()) && outs.count(n) == 0) {
        return false;
      }
    }
    closure_nodes.clear();
    for (t::Node* n : topo) {
      if (n->backward_fn) closure_nodes.push_back(n);
    }
    return true;
  }
};

TapePlan::TapePlan() : impl_(std::make_unique<Impl>()) {}
TapePlan::~TapePlan() = default;

bool TapePlan::replaying() const {
  return impl_->state == Impl::State::kReady;
}

bool TapePlan::step(TransformerRegressor& model, const t::Tensor& x,
                    const t::Tensor& y, t::Rng& rng, float& loss,
                    bool skip_backward_nonfinite) {
  auto& im = *impl_;
  auto& reg = PlanRegistry::instance();
  if (!PlanMode::enabled()) return false;
  if (im.state == Impl::State::kDead) {
    reg.note_fallback();
    return false;
  }
  if (im.state == Impl::State::kEmpty) {
    // Capture: run the step eagerly under a tracer. The step is always
    // performed; only whether future steps can replay is decided here.
    im.model = &model;
    im.xn = x.node().get();
    im.yn = y.node().get();
    tp::Tracer tracer;
    t::Tensor lt = t::mse_loss(model.forward(x, rng, /*train=*/true), y);
    loss = lt.item();
    if (!(skip_backward_nonfinite && !std::isfinite(loss))) lt.backward();
    bool ok = !tracer.failed();
    if (ok) {
      im.recs = std::move(tracer.records());
      im.steps.reserve(im.recs.size());
      for (const auto& r : im.recs) {
        if (r.kind == tp::OpKind::kConst) continue;
        RStep s;
        if (!lower_rec(r, s)) {
          ok = false;
          break;
        }
        im.steps.push_back(std::move(s));
      }
    }
    if (ok) {
      im.root = lt;
      im.build_topo();
      ok = im.validate();
    }
    if (ok) {
      im.state = Impl::State::kReady;
      reg.note_tape_compiled();
    } else {
      im.state = Impl::State::kDead;
      im.root = {};
      im.recs.clear();
      im.steps.clear();
      im.topo.clear();
    }
    return true;
  }
  // Replay: only valid for the exact traced (model, x, y) triple.
  if (&model != im.model || x.node().get() != im.xn ||
      y.node().get() != im.yn) {
    reg.note_fallback();
    return false;
  }
  for (const auto& s : im.steps) replay_step(s);
  t::Node* rn = im.root.node().get();
  loss = rn->value[0];
  reg.note_hit();
  if (skip_backward_nonfinite && !std::isfinite(loss)) return true;
  // Reset non-leaf gradients to the "freshly built tape" state the eager
  // loop sees every step; leaf (parameter / input) grads keep their eager
  // lifecycle — the optimizer zeroes exactly the ones it always has.
  for (t::Node* n : im.closure_nodes) {
    if (!n->grad.empty()) std::fill(n->grad.begin(), n->grad.end(), 0.0F);
  }
  rn->ensure_grad();
  rn->grad[0] = 1.0F;
  for (auto it = im.topo.rbegin(); it != im.topo.rend(); ++it) {
    t::Node* node = *it;
    if (node->backward_fn && node->requires_grad) {
      node->ensure_grad();
      node->backward_fn(*node);
    }
  }
  return true;
}

}  // namespace metadse::nn::plan
