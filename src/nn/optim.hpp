// Optimizers and learning-rate schedules used by the MAML inner loop (SGD),
// the outer loop (Adam), and the WAM adaptation (SGD + cosine annealing),
// matching the paper's training recipe (§VI-A).
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace metadse::nn {

/// Plain stochastic gradient descent: p <- p - lr * grad(p).
class Sgd {
 public:
  explicit Sgd(std::vector<tensor::Tensor> params, float lr);

  /// Applies one update from the currently accumulated gradients.
  void step();
  /// Global-norm gradient clipping fused into the update: bitwise identical
  /// to tensor::clip_global_grad_norm(params, max_norm) followed by step(),
  /// including the scaled gradients it leaves behind, but with one pass over
  /// each buffer instead of three. Returns the pre-clip global norm.
  double clip_and_step(float max_norm);
  /// Zeroes gradients of the managed parameters.
  void zero_grad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  std::vector<tensor::Tensor> params_;
  float lr_;
};

/// Adam (Kingma & Ba) with bias correction; state is keyed by parameter
/// position, so the parameter list must stay fixed for the optimizer's life.
class Adam {
 public:
  explicit Adam(std::vector<tensor::Tensor> params, float lr,
                float beta1 = 0.9F, float beta2 = 0.999F, float eps = 1e-8F);

  /// Applies one update from the currently accumulated gradients.
  void step();
  /// Clip + update in one pass; see Sgd::clip_and_step for the contract.
  double clip_and_step(float max_norm);
  /// Zeroes gradients of the managed parameters.
  void zero_grad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  size_t step_count() const { return t_; }

 private:
  std::vector<tensor::Tensor> params_;
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  size_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Cosine-annealing schedule: lr(t) = min + 0.5 (max - min)(1 + cos(pi t/T)).
class CosineAnnealing {
 public:
  CosineAnnealing(float base_lr, size_t total_steps, float min_lr = 0.0F);

  /// Learning rate for step @p t (clamped to [0, total_steps]).
  float lr_at(size_t t) const;

 private:
  float base_lr_;
  float min_lr_;
  size_t total_steps_;
};

}  // namespace metadse::nn
