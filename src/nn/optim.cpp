#include "nn/optim.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "tensor/guard.hpp"

namespace metadse::nn {

namespace {

/// Shared clip decision: the exact guard of clip_global_grad_norm. Returns
/// the scale to fold into the update, or 1.0F when no clipping applies.
float clip_scale(double norm, float max_norm, bool* clip) {
  *clip = !(max_norm <= 0.0F || !std::isfinite(norm) ||
            norm <= static_cast<double>(max_norm));
  return *clip ? max_norm / static_cast<float>(norm) : 1.0F;
}

}  // namespace

Sgd::Sgd(std::vector<tensor::Tensor> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  if (params_.empty()) throw std::invalid_argument("Sgd: empty parameter list");
}

void Sgd::step() {
  for (auto& p : params_) {
    auto& v = p.data();
    auto& g = p.grad();
    for (size_t i = 0; i < v.size(); ++i) v[i] -= lr_ * g[i];
  }
}

double Sgd::clip_and_step(float max_norm) {
  const double norm = tensor::global_grad_norm(params_);
  bool clip = false;
  const float scale = clip_scale(norm, max_norm, &clip);
  for (auto& p : params_) {
    auto& v = p.data();
    auto& g = p.grad();
    if (clip) {
      for (size_t i = 0; i < v.size(); ++i) {
        g[i] *= scale;
        v[i] -= lr_ * g[i];
      }
    } else {
      for (size_t i = 0; i < v.size(); ++i) v[i] -= lr_ * g[i];
    }
  }
  return norm;
}

void Sgd::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

Adam::Adam(std::vector<tensor::Tensor> params, float lr, float beta1,
           float beta2, float eps)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  if (params_.empty()) throw std::invalid_argument("Adam: empty parameter list");
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].size(), 0.0F);
    v_[i].assign(params_[i].size(), 0.0F);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& val = params_[i].data();
    auto& g = params_[i].grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < val.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0F - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0F - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      val[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

double Adam::clip_and_step(float max_norm) {
  const double norm = tensor::global_grad_norm(params_);
  bool clip = false;
  const float scale = clip_scale(norm, max_norm, &clip);
  ++t_;
  const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& val = params_[i].data();
    auto& g = params_[i].grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < val.size(); ++j) {
      if (clip) g[j] *= scale;
      m[j] = beta1_ * m[j] + (1.0F - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0F - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      val[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
  return norm;
}

void Adam::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

CosineAnnealing::CosineAnnealing(float base_lr, size_t total_steps,
                                 float min_lr)
    : base_lr_(base_lr), min_lr_(min_lr), total_steps_(total_steps) {
  if (total_steps == 0) {
    throw std::invalid_argument("CosineAnnealing: total_steps must be > 0");
  }
}

float CosineAnnealing::lr_at(size_t t) const {
  const float progress =
      std::min(1.0F, static_cast<float>(t) / static_cast<float>(total_steps_));
  const float cosv = std::cos(std::numbers::pi_v<float> * progress);
  return min_lr_ + 0.5F * (base_lr_ - min_lr_) * (1.0F + cosv);
}

}  // namespace metadse::nn
