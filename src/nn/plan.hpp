// Policy layer over the static-execution-plan mechanism (tensor/plan.hpp):
// decides which trace leaves are parameters vs masks vs the batch input,
// keys compiled programs so replicas share them, caches per-model executors,
// and replays captured training tapes for the MAML inner loop.
//
// Two planning paths exist:
//  - PredictPlanner: eval-mode (no-grad) forwards. One CompiledProgram per
//    (model shape, batch size, mask structure, fusion flag) key, shared
//    process-wide through the PlanRegistry; each model owns ProgramExec
//    instances bound to its parameter storage. Steady-state planned predicts
//    perform zero allocations and build no graph.
//  - TapePlan: one training step (forward + backward). The first step runs
//    eagerly under a Tracer and pins the resulting autodiff graph; later
//    steps replay the recorded schedule into the same nodes (refreshing the
//    pooled backward stashes in place) and then walk the captured closures
//    in the exact order Tensor::backward() would, so weights after every
//    step are bitwise identical to the eager loop.
//
// Any shape/op the compiler cannot handle falls back to the eager path;
// planning is an optimization, never a semantic switch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "nn/transformer.hpp"
#include "tensor/plan.hpp"

namespace metadse::nn::plan {

/// Thread-local master switch for planned execution; on by default. While
/// disabled, predict_* and the MAML inner loop run the eager path
/// unconditionally (the A/B axis of the PlanEquivalence suite).
class PlanMode {
 public:
  static bool enabled();
  static void set_enabled(bool on);
};

/// RAII scope for PlanMode (tests, benchmarks). Nests.
class PlanModeGuard {
 public:
  explicit PlanModeGuard(bool on) : prev_(PlanMode::enabled()) {
    PlanMode::set_enabled(on);
  }
  ~PlanModeGuard() { PlanMode::set_enabled(prev_); }
  PlanModeGuard(const PlanModeGuard&) = delete;
  PlanModeGuard& operator=(const PlanModeGuard&) = delete;

 private:
  bool prev_;
};

/// Process-wide plan counters (surfaced through ServerStats / `metadse
/// serve`). cache_hits counts executions served by an already-compiled plan
/// (predict runs and tape replays); fallbacks counts requests that had to
/// run eagerly.
struct PlanStats {
  uint64_t plans_compiled = 0;
  uint64_t cache_hits = 0;
  uint64_t fallbacks = 0;
  uint64_t static_bytes = 0;  ///< sum over registered compiled programs
};

/// Global keyed store of compiled predict programs. Keys are structural
/// (model dims, batch, mask layout, fusion flag) and contain no parameter
/// values, so any number of model replicas with the same architecture share
/// one immutable CompiledProgram per workload shape.
class PlanRegistry {
 public:
  static PlanRegistry& instance();

  std::shared_ptr<const tensor::plan::CompiledProgram> find(
      const std::string& key) const;
  /// Registers @p prog under @p key; first writer wins on a race and the
  /// winning program is returned.
  std::shared_ptr<const tensor::plan::CompiledProgram> insert(
      const std::string& key,
      std::shared_ptr<const tensor::plan::CompiledProgram> prog);

  void note_hit();
  void note_fallback();
  /// Records a TapePlan capture (a compiled plan with no shared registry
  /// entry; contributes to plans_compiled only).
  void note_tape_compiled();

  PlanStats stats() const;
  /// Drops every registered program and zeroes the counters (tests).
  void reset();

 private:
  PlanRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Structural registry key for an eval-mode predict plan of @p model at
/// @p batch rows with plan-time fusion @p fuse. Non-fp32 precisions append
/// a ":q*" suffix so per-precision program variants register separately
/// (fp32 keys are byte-identical to the pre-quantization format).
std::string predict_plan_key(
    const TransformerRegressor& model, size_t batch, bool fuse,
    tensor::quant::Precision prec = tensor::quant::Precision::kFp32);

/// Compiles a predict plan for @p batch rows of @p in ([batch, n_tokens]
/// row-major), runs it once in absmax-capture mode, and installs the
/// resulting per-gemm activation scale table in @p model
/// (set_quant_calibration). Called at adapt time on the support batch.
/// Returns false (leaving the model uncalibrated, so int8 requests
/// downgrade to fp32) when the forward is unplannable.
bool capture_calibration(TransformerRegressor& model, const float* in,
                         size_t batch);

/// Traces one eval-mode forward of @p model at batch size @p batch and
/// compiles it (parameters and installed masks become external slots, the
/// feature matrix the input). Returns null and sets @p why when the forward
/// is unplannable (e.g. attention capture enabled).
std::shared_ptr<const tensor::plan::CompiledProgram> compile_predict(
    TransformerRegressor& model, size_t batch, bool fuse, std::string* why);

/// Per-model cache of bound predict-plan executors, keyed by (batch, mask
/// structure, fusion flag, precision). The thread-local PrecisionMode
/// selects the variant: bf16/int8 entries run reduced-precision GEMM panels
/// (tensor/quant.hpp); an int8 request on a model without a calibration
/// table downgrades to the fp32 variant, and any unplannable shape still
/// falls back to eager fp32. Negative-caches unplannable keys; revalidates
/// external storage pointers every run and rebinds after parameter
/// reallocation
/// or mask replacement. Concurrent run() calls on one model serialize via
/// try-lock — a contended caller simply falls back to the (bitwise
/// identical) eager path.
class PredictPlanner {
 public:
  explicit PredictPlanner(TransformerRegressor& model);
  ~PredictPlanner();
  PredictPlanner(const PredictPlanner&) = delete;
  PredictPlanner& operator=(const PredictPlanner&) = delete;

  /// Runs the planned no-grad forward of @p batch rows from @p in
  /// ([batch, n_tokens] row-major) into @p out ([batch, n_outputs]).
  /// Returns false when the caller must run the eager path instead.
  bool run(size_t batch, const float* in, float* out);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Capture/replay of one training step: loss = mse(model(x), y) plus
/// backward. One instance per inner loop; the captured tape is valid only
/// for the exact (model, x, y) triple it was traced from.
class TapePlan {
 public:
  TapePlan();
  ~TapePlan();
  TapePlan(const TapePlan&) = delete;
  TapePlan& operator=(const TapePlan&) = delete;

  /// Performs one forward+backward step and stores the loss in @p loss.
  /// First call: runs eagerly under a tracer (capturing the tape) — always
  /// performs the step. Later calls: replays the tape. Returns false when
  /// the step was NOT performed and the caller must run it eagerly (capture
  /// failed earlier, PlanMode off, or the inputs changed).
  /// With @p skip_backward_nonfinite, a non-finite loss skips the backward
  /// pass (mirrors MamlTrainer::run_task's divergence check).
  bool step(TransformerRegressor& model, const tensor::Tensor& x,
            const tensor::Tensor& y, tensor::Rng& rng, float& loss,
            bool skip_backward_nonfinite = false);

  /// True once a capture validated and replays are active (tests).
  bool replaying() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace metadse::nn::plan
