// The MetaDSE surrogate predictor: a transformer encoder over architectural-
// parameter tokens (one token per design-space parameter), following the
// AttentionDSE-style predictor the paper adopts. Exposes the last encoder
// layer's attention for WAM generation and a mask slot for WAM adaptation.
#pragma once

#include <memory>
#include <vector>

#include "nn/attention.hpp"

namespace metadse::nn::plan {
class PredictPlanner;
}  // namespace metadse::nn::plan

namespace metadse::nn {

/// Hyper-parameters of the transformer predictor.
struct TransformerConfig {
  size_t n_tokens = 24;   ///< sequence length = number of architectural params
  size_t d_model = 32;    ///< embedding width
  size_t n_heads = 4;     ///< attention heads
  size_t n_layers = 2;    ///< encoder layers
  size_t d_ff = 64;       ///< feed-forward hidden width
  size_t n_outputs = 1;   ///< regression targets (IPC, or IPC+power)
  float dropout = 0.0F;   ///< dropout prob in FFN (0 disables)
};

/// One pre-LayerNorm transformer encoder block.
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(const TransformerConfig& cfg, Rng& rng);

  /// x: [batch, seq, d_model] -> same shape.
  Tensor forward(const Tensor& x, Rng& rng, bool train);

  MultiHeadSelfAttention& attention() { return attn_; }
  const MultiHeadSelfAttention& attention() const { return attn_; }

 private:
  MultiHeadSelfAttention attn_;
  LayerNorm ln1_;
  LayerNorm ln2_;
  Linear ff1_;
  Linear ff2_;
  float dropout_;
};

/// Transformer regression model mapping a normalized design-point feature
/// vector (one scalar per architectural parameter) to one or more metrics.
class TransformerRegressor : public Module {
 public:
  TransformerRegressor(const TransformerConfig& cfg, Rng& rng);
  ~TransformerRegressor() override;  // out-of-line: owns the predict planner

  /// x: [batch, n_tokens] normalized features -> [batch, n_outputs].
  Tensor forward(const Tensor& x, Rng& rng, bool train = false);

  /// Convenience single-design-point prediction (eval mode, no-grad).
  std::vector<float> predict_one(const std::vector<float>& features);

  /// Batched eval-mode prediction: one no-grad [B, n_tokens] forward. Row i
  /// of the result is bitwise identical to predict_one(rows[i]) — every op in
  /// the forward is per-row independent with deterministic accumulation.
  std::vector<std::vector<float>> predict_batch(
      const std::vector<std::vector<float>>& rows);

  const TransformerConfig& config() const { return cfg_; }

  /// The final encoder layer's attention module — the WAM attachment point.
  MultiHeadSelfAttention& last_attention_layer();
  const MultiHeadSelfAttention& last_attention_layer() const;

  /// Attention module of encoder layer @p i (0-based).
  MultiHeadSelfAttention& attention_layer(size_t i);
  const MultiHeadSelfAttention& attention_layer(size_t i) const;
  size_t layer_count() const { return layers_.size(); }

  /// Installs (a copy of) @p mask in every encoder layer's attention.
  void install_mask_all_layers(const Tensor& mask);
  /// Removes masks from every layer.
  void clear_masks();

  /// Parameters of the regression head only (for ANIL-style inner loops
  /// that freeze the encoder during task adaptation).
  std::vector<Tensor> head_parameters() const;

  /// Enables attention capture on the final encoder layer.
  void set_capture_attention(bool on);

  /// Deep copy: same architecture, copied parameter values; an installed
  /// mask on the last layer is copied by value (as a plain constant). The
  /// quantization calibration table (if any) is copied too.
  std::unique_ptr<TransformerRegressor> clone() const;

  /// Per-gemm activation absmax table for int8 serving, in compiled-plan
  /// schedule order (see tensor/plan.hpp quant_gemms()). Captured from the
  /// support batch at adapt time (nn::plan::capture_calibration); empty
  /// until then — int8 requests downgrade to fp32 while empty.
  const std::vector<float>& quant_calibration() const { return quant_calib_; }
  bool has_quant_calibration() const { return !quant_calib_.empty(); }
  void set_quant_calibration(std::vector<float> table) {
    quant_calib_ = std::move(table);
    ++quant_calib_gen_;
  }
  /// Bumped on every set_quant_calibration; planner entries revalidate
  /// against it so a re-captured table reaches already-bound executors.
  uint64_t quant_calibration_gen() const { return quant_calib_gen_; }

 private:
  TransformerConfig cfg_;
  Tensor value_embed_;  ///< [n_tokens, d_model]: per-parameter value direction
  Tensor param_embed_;  ///< [n_tokens, d_model]: per-parameter identity embed
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  LayerNorm final_ln_;
  Linear head1_;
  Linear head2_;
  Rng eval_rng_{0};  ///< inert rng for eval-mode forwards
  std::vector<float> quant_calib_;  ///< int8 activation absmax (plan order)
  uint64_t quant_calib_gen_ = 0;
  /// Lazily built cache of compiled predict plans (nn/plan.hpp). The eager
  /// forward() path never touches it; predict_one/predict_batch consult it
  /// first and fall back to eager for unplannable shapes.
  std::unique_ptr<plan::PredictPlanner> planner_;
};

}  // namespace metadse::nn
