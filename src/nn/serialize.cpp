#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace metadse::nn {

namespace {
constexpr uint32_t kMagic = 0x4D44'5345;  // "MDSE"
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("load_parameters: truncated file");
  return v;
}
}  // namespace

void save_parameters(const Module& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("save_parameters: cannot open " + path);
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  const auto params = m.parameters();
  write_pod(os, static_cast<uint64_t>(params.size()));
  for (const auto& p : params) {
    const auto& shape = p.shape();
    write_pod(os, static_cast<uint32_t>(shape.size()));
    for (size_t d : shape) write_pod(os, static_cast<uint64_t>(d));
    const auto& data = p.data();
    os.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("save_parameters: write failed: " + path);
}

void load_parameters(Module& m, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_parameters: cannot open " + path);
  if (read_pod<uint32_t>(is) != kMagic) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  if (read_pod<uint32_t>(is) != kVersion) {
    throw std::runtime_error("load_parameters: unsupported version in " + path);
  }
  auto params = m.parameters();
  const auto count = read_pod<uint64_t>(is);
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (auto& p : params) {
    const auto rank = read_pod<uint32_t>(is);
    tensor::Shape shape(rank);
    for (auto& d : shape) d = static_cast<size_t>(read_pod<uint64_t>(is));
    if (shape != p.shape()) {
      throw std::runtime_error("load_parameters: shape mismatch");
    }
    auto& data = p.data();
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!is) throw std::runtime_error("load_parameters: truncated tensor data");
  }
}

}  // namespace metadse::nn
