#include "nn/serialize.hpp"

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/io.hpp"

namespace metadse::nn {

namespace {

constexpr uint32_t kMagic = 0x4D44'5345;  // "MDSE"
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;

std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

template <typename T>
void put_pod(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Bounds-checked cursor over an in-memory file image; every read throws
/// "truncated" instead of running off the end.
class Reader {
 public:
  Reader(const char* data, size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  template <typename T>
  T pod() {
    T v{};
    if (pos_ + sizeof(T) > size_) {
      throw std::runtime_error(context_ + ": truncated file");
    }
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void bytes(void* dst, size_t n) {
    if (pos_ + n > size_ || pos_ + n < pos_) {
      throw std::runtime_error(context_ + ": truncated file");
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  std::string context_;
};

std::string read_file(const std::string& path, const char* context) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error(std::string(context) + ": cannot open " + path);
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  if (!is) {
    throw std::runtime_error(std::string(context) + ": read failed: " + path);
  }
  return std::move(ss).str();
}

}  // namespace

uint32_t crc32(const void* data, size_t n, uint32_t crc) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFU;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

void atomic_write_file(const std::string& path, const std::string& bytes) {
  // Delegates to the storage fault domain: tmp + fsync + rename + parent
  // directory fsync, with chaos probes on the write and rename.
  core::io::atomic_write_file(path, bytes, "checkpoint.write");
}

void save_parameters(const Module& m, const std::string& path) {
  std::string out;
  put_pod(out, kMagic);
  put_pod(out, kVersionV2);
  const auto params = m.parameters();
  put_pod(out, static_cast<uint64_t>(params.size()));
  for (const auto& p : params) {
    const size_t record_start = out.size();
    const auto& shape = p.shape();
    put_pod(out, static_cast<uint32_t>(shape.size()));
    for (size_t d : shape) put_pod(out, static_cast<uint64_t>(d));
    const auto& data = p.data();
    out.append(reinterpret_cast<const char*>(data.data()),
               data.size() * sizeof(float));
    put_pod(out, crc32(out.data() + record_start, out.size() - record_start));
  }
  // Footer: checksum of everything above, so truncation anywhere is caught
  // even when it lands between records.
  put_pod(out, crc32(out.data(), out.size()));
  atomic_write_file(path, out);
}

namespace {

/// Shared v1/v2 body: one shape-validated tensor record per parameter.
/// Expected shapes come from the receiving module, so nothing read from
/// disk ever sizes an allocation.
void load_records(Reader& r, std::vector<tensor::Tensor>& params,
                  bool checksummed, const std::string& file_bytes) {
  const auto count = r.pod<uint64_t>();
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (auto& p : params) {
    const size_t record_start = r.pos();
    const auto rank = r.pod<uint32_t>();
    if (rank != p.shape().size()) {
      throw std::runtime_error("load_parameters: rank mismatch");
    }
    for (size_t d : p.shape()) {
      if (r.pod<uint64_t>() != d) {
        throw std::runtime_error("load_parameters: shape mismatch");
      }
    }
    auto& data = p.data();
    r.bytes(data.data(), data.size() * sizeof(float));
    if (checksummed) {
      const uint32_t expect =
          crc32(file_bytes.data() + record_start, r.pos() - record_start);
      if (r.pod<uint32_t>() != expect) {
        throw std::runtime_error("load_parameters: tensor checksum mismatch");
      }
    }
  }
}

}  // namespace

void load_parameters(Module& m, const std::string& path) {
  const std::string bytes = read_file(path, "load_parameters");
  auto params = m.parameters();

  if (bytes.size() >= 8) {
    uint32_t version = 0;
    std::memcpy(&version, bytes.data() + 4, sizeof(version));
    if (version == kVersionV2) {
      // Verify the footer before trusting any structure.
      if (bytes.size() < 12) {
        throw std::runtime_error("load_parameters: truncated file");
      }
      uint32_t footer = 0;
      std::memcpy(&footer, bytes.data() + bytes.size() - 4, sizeof(footer));
      if (footer != crc32(bytes.data(), bytes.size() - 4)) {
        throw std::runtime_error("load_parameters: file checksum mismatch in " +
                                 path);
      }
    }
  }

  Reader r(bytes.data(), bytes.size(), "load_parameters");
  if (r.pod<uint32_t>() != kMagic) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  const auto version = r.pod<uint32_t>();
  if (version != kVersionV1 && version != kVersionV2) {
    throw std::runtime_error("load_parameters: unsupported version in " + path);
  }
  load_records(r, params, version == kVersionV2, bytes);
  if (version == kVersionV2 && r.remaining() != 4) {
    throw std::runtime_error("load_parameters: trailing bytes in " + path);
  }
}

namespace {
constexpr uint32_t kCalibMagic = 0x4D44'5143;  // "MDQC"
constexpr uint32_t kCalibVersion = 1;
// A predict plan of this model family has a handful of quantizable gemms
// per layer; anything beyond this is a corrupt count, not a real table.
constexpr uint64_t kCalibMaxEntries = 1U << 20;
}  // namespace

void save_calibration(const std::vector<float>& table,
                      const std::string& path) {
  std::string out;
  put_pod(out, kCalibMagic);
  put_pod(out, kCalibVersion);
  put_pod(out, static_cast<uint64_t>(table.size()));
  out.append(reinterpret_cast<const char*>(table.data()),
             table.size() * sizeof(float));
  put_pod(out, crc32(out.data(), out.size()));
  atomic_write_file(path, out);
}

std::vector<float> load_calibration(const std::string& path) {
  const std::string bytes = read_file(path, "load_calibration");
  if (bytes.size() < 4 + 4 + 8 + 4) {
    throw std::runtime_error("load_calibration: truncated file " + path);
  }
  uint32_t footer = 0;
  std::memcpy(&footer, bytes.data() + bytes.size() - 4, sizeof(footer));
  if (footer != crc32(bytes.data(), bytes.size() - 4)) {
    throw std::runtime_error("load_calibration: checksum mismatch in " + path);
  }
  Reader r(bytes.data(), bytes.size(), "load_calibration");
  if (r.pod<uint32_t>() != kCalibMagic) {
    throw std::runtime_error("load_calibration: bad magic in " + path);
  }
  if (r.pod<uint32_t>() != kCalibVersion) {
    throw std::runtime_error("load_calibration: unsupported version in " +
                             path);
  }
  const auto count = r.pod<uint64_t>();
  if (count > kCalibMaxEntries) {
    throw std::runtime_error("load_calibration: implausible entry count in " +
                             path);
  }
  std::vector<float> table(count);
  r.bytes(table.data(), table.size() * sizeof(float));
  if (r.remaining() != 4) {
    throw std::runtime_error("load_calibration: trailing bytes in " + path);
  }
  return table;
}

}  // namespace metadse::nn
