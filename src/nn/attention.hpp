// Multi-head self-attention with two MetaDSE-specific hooks:
//  * attention-map capture (feeds the WAM generator during pre-training), and
//  * an optional multiplicative architectural mask applied to the attention
//    weights (the WAM slot of Algorithm 2), which may itself be trainable.
#pragma once

#include <optional>

#include "nn/layers.hpp"

namespace metadse::nn {

/// Multi-head scaled-dot-product self-attention over [batch, seq, d_model].
class MultiHeadSelfAttention : public Module {
 public:
  /// @p d_model must be divisible by @p n_heads.
  MultiHeadSelfAttention(size_t d_model, size_t n_heads, Rng& rng);

  /// Attention forward pass. When a mask is installed, attention weights are
  /// multiplied elementwise by the mask (broadcast over batch and heads) and
  /// re-normalized so each row still sums to one.
  Tensor forward(const Tensor& x);

  /// Enables/disables recording of attention maps during forward.
  void set_capture_attention(bool on) { capture_ = on; }
  bool capture_attention() const { return capture_; }

  /// The attention map of the most recent forward with capture enabled:
  /// [seq, seq], averaged over batch and heads, detached from the graph.
  /// Throws std::logic_error if nothing has been captured yet.
  const Tensor& last_attention() const;

  /// Installs the workload-adaptive architectural mask ([seq, seq],
  /// strictly positive entries). The mask is *not* part of parameters();
  /// callers that want it trainable (Algorithm 2) set requires_grad on it
  /// and include mask() in their optimizer's parameter list.
  void install_mask(Tensor mask);
  /// Removes the mask (attention reverts to plain softmax weights).
  void clear_mask() { mask_.reset(); }
  bool has_mask() const { return mask_.has_value(); }
  /// The installed mask; throws std::logic_error when absent.
  Tensor& mask();
  const Tensor& mask() const;

  size_t d_model() const { return d_model_; }
  size_t n_heads() const { return n_heads_; }

 private:
  size_t d_model_;
  size_t n_heads_;
  size_t d_head_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
  bool capture_ = false;
  Tensor last_attention_;
  std::optional<Tensor> mask_;
};

}  // namespace metadse::nn
