// Thread-local dispatch switch between the fused training kernels
// (tensor::layer_norm_affine, tensor::softmax_masked_lastdim,
// tensor::bias_gelu) and the composed op chains they replace. The fused
// kernels are bitwise-equal to the compositions, so the switch exists for
// verification, not semantics: the equivalence suite runs both paths and
// asserts identical weights, and a regression in either path shows up as a
// mismatch rather than silent drift.
#pragma once

namespace metadse::nn {

/// Thread-local toggle; fused kernels are on by default.
class FusedKernels {
 public:
  static bool enabled();
  static void set_enabled(bool on);
};

/// RAII scope for the toggle (tests, A/B benchmarks). Nests.
class FusedKernelsGuard {
 public:
  explicit FusedKernelsGuard(bool on) : prev_(FusedKernels::enabled()) {
    FusedKernels::set_enabled(on);
  }
  ~FusedKernelsGuard() { FusedKernels::set_enabled(prev_); }
  FusedKernelsGuard(const FusedKernelsGuard&) = delete;
  FusedKernelsGuard& operator=(const FusedKernelsGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace metadse::nn
