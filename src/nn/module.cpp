#include "nn/module.hpp"

#include <stdexcept>

namespace metadse::nn {

std::vector<Tensor> Module::parameters() const {
  std::vector<Tensor> out = params_;
  for (const Module* c : children_) {
    auto sub = c->parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void Module::zero_grad() {
  for (auto p : parameters()) p.zero_grad();
}

size_t Module::parameter_count() const {
  size_t n = 0;
  for (const auto& p : parameters()) n += p.size();
  return n;
}

void Module::copy_parameters_from(const Module& other) {
  auto dst = parameters();
  auto src = other.parameters();
  if (dst.size() != src.size()) {
    throw std::invalid_argument("copy_parameters_from: parameter count " +
                                std::to_string(src.size()) + " vs " +
                                std::to_string(dst.size()));
  }
  for (size_t i = 0; i < dst.size(); ++i) {
    if (dst[i].shape() != src[i].shape()) {
      throw std::invalid_argument("copy_parameters_from: shape mismatch at " +
                                  std::to_string(i));
    }
    dst[i].data() = src[i].data();
  }
}

std::vector<float> Module::flatten_parameters() const {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (const auto& p : parameters()) {
    flat.insert(flat.end(), p.data().begin(), p.data().end());
  }
  return flat;
}

void Module::unflatten_parameters(std::span<const float> flat) {
  if (flat.size() != parameter_count()) {
    throw std::invalid_argument("unflatten_parameters: size mismatch");
  }
  size_t off = 0;
  for (auto p : parameters()) {
    auto& d = p.data();
    std::copy(flat.begin() + off, flat.begin() + off + d.size(), d.begin());
    off += d.size();
  }
}

Tensor Module::register_parameter(Tensor t) {
  t.set_requires_grad(true);
  params_.push_back(t);
  return t;
}

void Module::register_child(Module& child) { children_.push_back(&child); }

}  // namespace metadse::nn
