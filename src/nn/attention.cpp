#include "nn/attention.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "nn/fused.hpp"
#include "tensor/ops.hpp"
#include "tensor/plan.hpp"

namespace metadse::nn {

namespace t = metadse::tensor;

MultiHeadSelfAttention::MultiHeadSelfAttention(size_t d_model, size_t n_heads,
                                               Rng& rng)
    : d_model_(d_model),
      n_heads_(n_heads),
      d_head_(n_heads == 0 ? 0 : d_model / n_heads),
      wq_(d_model, d_model, rng),
      wk_(d_model, d_model, rng),
      wv_(d_model, d_model, rng),
      wo_(d_model, d_model, rng) {
  if (n_heads == 0 || d_model % n_heads != 0) {
    throw std::invalid_argument(
        "MultiHeadSelfAttention: d_model must be divisible by n_heads");
  }
  register_child(wq_);
  register_child(wk_);
  register_child(wv_);
  register_child(wo_);
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x) {
  if (x.rank() != 3 || x.dim(2) != d_model_) {
    throw std::invalid_argument(
        "MultiHeadSelfAttention::forward: expected [batch, seq, d_model]");
  }
  const size_t B = x.dim(0);
  const size_t S = x.dim(1);
  const size_t H = n_heads_;
  const size_t Dh = d_head_;

  auto split_heads = [&](const Tensor& proj) {
    // [B,S,D] -> [B,S,H,Dh] -> [B,H,S,Dh] -> [B*H,S,Dh]
    auto r = t::reshape(proj, {B, S, H, Dh});
    auto p = t::permute(r, {0, 2, 1, 3});
    return t::reshape(std::move(p), {B * H, S, Dh});
  };

  auto q = split_heads(wq_.forward(x));
  auto k = split_heads(wk_.forward(x));
  auto v = split_heads(wv_.forward(x));

  // matmul_nt is q · kᵀ without materializing the permuted copy of k; the
  // result is bitwise identical to matmul(q, transpose_last(k)).
  auto scores = t::div(t::matmul_nt(q, k),
                       std::sqrt(static_cast<float>(Dh)));
  Tensor attn;  // [B*H, S, S]
  if (mask_) {
    if (mask_->shape() != Shape{S, S}) {
      throw std::invalid_argument(
          "MultiHeadSelfAttention: mask shape must be [seq, seq]");
    }
    if (FusedKernels::enabled()) {
      // Softmax, mask, and row renormalization in one node; gradients reach
      // the mask when it is trainable (Algorithm 2) exactly as the chain
      // below would deliver them.
      attn = t::softmax_masked_lastdim(scores, *mask_);
    } else {
      attn = t::softmax_lastdim(scores);
      auto masked = t::mul(attn, *mask_);  // broadcast over B*H
      auto row_sum = t::add(t::sum_axis(masked, 2, /*keepdim=*/true), 1e-6F);
      attn = t::div(masked, row_sum);
    }
  } else {
    attn = t::softmax_lastdim(scores);
  }

  if (capture_) {
    // Average over batch*heads -> [S, S], detached (analysis only). The
    // detach side effect cannot be replayed from a static schedule, so a
    // capturing forward stays eager.
    t::plan::trace_unplannable("attention capture");
    auto avg = t::mean_axis(attn, 0);
    last_attention_ = avg.detach();
  }

  auto ctx = t::matmul(attn, v);  // [B*H, S, Dh]
  auto merged = t::reshape(
      t::permute(t::reshape(ctx, {B, H, S, Dh}), {0, 2, 1, 3}),
      {B, S, d_model_});
  return wo_.forward(merged);
}

const Tensor& MultiHeadSelfAttention::last_attention() const {
  if (!last_attention_.defined()) {
    throw std::logic_error(
        "MultiHeadSelfAttention: no attention captured yet (enable "
        "set_capture_attention and run forward)");
  }
  return last_attention_;
}

void MultiHeadSelfAttention::install_mask(Tensor mask) {
  if (mask.rank() != 2 || mask.dim(0) != mask.dim(1)) {
    throw std::invalid_argument(
        "MultiHeadSelfAttention: mask must be square [seq, seq]");
  }
  mask_ = std::move(mask);
}

Tensor& MultiHeadSelfAttention::mask() {
  if (!mask_) throw std::logic_error("MultiHeadSelfAttention: no mask installed");
  return *mask_;
}

const Tensor& MultiHeadSelfAttention::mask() const {
  if (!mask_) throw std::logic_error("MultiHeadSelfAttention: no mask installed");
  return *mask_;
}

}  // namespace metadse::nn
