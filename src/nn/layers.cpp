#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/fused.hpp"
#include "tensor/ops.hpp"

namespace metadse::nn {

Linear::Linear(size_t in_features, size_t out_features, Rng& rng)
    : in_(in_features), out_(out_features) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("Linear: features must be positive");
  }
  const float bound =
      std::sqrt(6.0F / static_cast<float>(in_features + out_features));
  w_ = register_parameter(
      Tensor::uniform({in_features, out_features}, rng, -bound, bound));
  b_ = register_parameter(Tensor::zeros({out_features}));
}

Tensor Linear::forward(const Tensor& x) const {
  if (x.shape().empty() || x.shape().back() != in_) {
    throw std::invalid_argument("Linear::forward: trailing dim " +
                                tensor::shape_str(x.shape()) + " != in=" +
                                std::to_string(in_));
  }
  return tensor::add(tensor::matmul(x, w_), b_);
}

Tensor Linear::forward_gelu(const Tensor& x) const {
  if (x.shape().empty() || x.shape().back() != in_) {
    throw std::invalid_argument("Linear::forward_gelu: trailing dim " +
                                tensor::shape_str(x.shape()) + " != in=" +
                                std::to_string(in_));
  }
  if (FusedKernels::enabled()) {
    return tensor::bias_gelu(tensor::matmul(x, w_), b_);
  }
  return tensor::gelu(tensor::add(tensor::matmul(x, w_), b_));
}

LayerNorm::LayerNorm(size_t features, float eps) : eps_(eps) {
  if (features == 0) {
    throw std::invalid_argument("LayerNorm: features must be positive");
  }
  gamma_ = register_parameter(Tensor::full({features}, 1.0F));
  beta_ = register_parameter(Tensor::zeros({features}));
}

Tensor LayerNorm::forward(const Tensor& x) const {
  if (x.shape().empty() || x.shape().back() != gamma_.dim(0)) {
    throw std::invalid_argument("LayerNorm::forward: trailing dim mismatch");
  }
  if (FusedKernels::enabled()) {
    return tensor::layer_norm_affine(x, gamma_, beta_, eps_);
  }
  auto normed = tensor::layer_norm_lastdim(x, eps_);
  return tensor::add(tensor::mul(normed, gamma_), beta_);
}

}  // namespace metadse::nn
