#include "nn/transformer.hpp"

#include <stdexcept>

#include "nn/plan.hpp"
#include "tensor/ops.hpp"

namespace metadse::nn {

namespace t = metadse::tensor;

TransformerEncoderLayer::TransformerEncoderLayer(const TransformerConfig& cfg,
                                                 Rng& rng)
    : attn_(cfg.d_model, cfg.n_heads, rng),
      ln1_(cfg.d_model),
      ln2_(cfg.d_model),
      ff1_(cfg.d_model, cfg.d_ff, rng),
      ff2_(cfg.d_ff, cfg.d_model, rng),
      dropout_(cfg.dropout) {
  register_child(attn_);
  register_child(ln1_);
  register_child(ln2_);
  register_child(ff1_);
  register_child(ff2_);
}

Tensor TransformerEncoderLayer::forward(const Tensor& x, Rng& rng,
                                        bool train) {
  auto h = t::add(x, attn_.forward(ln1_.forward(x)));
  auto ff = ff2_.forward(ff1_.forward_gelu(ln2_.forward(h)));
  if (dropout_ > 0.0F) ff = t::dropout(ff, dropout_, rng, train);
  return t::add(h, ff);
}

TransformerRegressor::TransformerRegressor(const TransformerConfig& cfg,
                                           Rng& rng)
    : cfg_(cfg),
      final_ln_(cfg.d_model),
      head1_(cfg.d_model, cfg.d_model, rng),
      head2_(cfg.d_model, cfg.n_outputs, rng) {
  if (cfg.n_tokens == 0 || cfg.n_outputs == 0 || cfg.n_layers == 0) {
    throw std::invalid_argument("TransformerRegressor: zero-sized config");
  }
  value_embed_ = register_parameter(
      Tensor::randn({cfg.n_tokens, cfg.d_model}, rng, 0.5F));
  param_embed_ = register_parameter(
      Tensor::randn({cfg.n_tokens, cfg.d_model}, rng, 0.1F));
  layers_.reserve(cfg.n_layers);
  for (size_t i = 0; i < cfg.n_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(cfg, rng));
    register_child(*layers_.back());
  }
  register_child(final_ln_);
  register_child(head1_);
  register_child(head2_);
}

TransformerRegressor::~TransformerRegressor() = default;

Tensor TransformerRegressor::forward(const Tensor& x, Rng& rng, bool train) {
  if (x.rank() != 2 || x.dim(1) != cfg_.n_tokens) {
    throw std::invalid_argument(
        "TransformerRegressor::forward: expected [batch, n_tokens], got " +
        t::shape_str(x.shape()));
  }
  const size_t B = x.dim(0);
  // Token embedding: scalar feature scales a learned direction, plus a
  // learned per-parameter identity embedding.
  auto xs = t::reshape(x, {B, cfg_.n_tokens, 1});
  auto tokens = t::add(t::mul(xs, value_embed_), param_embed_);
  Tensor h = tokens;
  for (auto& layer : layers_) h = layer->forward(h, rng, train);
  h = final_ln_.forward(h);
  auto pooled = t::mean_axis(h, 1);  // [B, d_model]
  auto hidden = head1_.forward_gelu(pooled);
  return head2_.forward(hidden);
}

std::vector<float> TransformerRegressor::predict_one(
    const std::vector<float>& features) {
  if (plan::PlanMode::enabled() && features.size() == cfg_.n_tokens) {
    if (!planner_) planner_ = std::make_unique<plan::PredictPlanner>(*this);
    std::vector<float> out(cfg_.n_outputs);
    if (planner_->run(1, features.data(), out.data())) return out;
  }
  t::NoGradGuard no_grad;
  auto x = Tensor::from_vector({1, cfg_.n_tokens},
                               std::vector<float>(features));
  auto y = forward(x, eval_rng_, /*train=*/false);
  return y.data();
}

std::vector<std::vector<float>> TransformerRegressor::predict_batch(
    const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return {};
  t::NoGradGuard no_grad;
  std::vector<float> flat;
  flat.reserve(rows.size() * cfg_.n_tokens);
  for (const auto& r : rows) {
    if (r.size() != cfg_.n_tokens) {
      throw std::invalid_argument(
          "TransformerRegressor::predict_batch: feature row size mismatch");
    }
    flat.insert(flat.end(), r.begin(), r.end());
  }
  const size_t no = cfg_.n_outputs;
  std::vector<std::vector<float>> out(rows.size());
  if (plan::PlanMode::enabled()) {
    if (!planner_) planner_ = std::make_unique<plan::PredictPlanner>(*this);
    std::vector<float> flat_out(rows.size() * no);
    if (planner_->run(rows.size(), flat.data(), flat_out.data())) {
      for (size_t i = 0; i < rows.size(); ++i) {
        out[i].assign(
            flat_out.begin() + static_cast<std::ptrdiff_t>(i * no),
            flat_out.begin() + static_cast<std::ptrdiff_t>((i + 1) * no));
      }
      return out;
    }
  }
  auto x = Tensor::from_vector({rows.size(), cfg_.n_tokens}, std::move(flat));
  auto y = forward(x, eval_rng_, /*train=*/false);
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i].assign(y.data().begin() + static_cast<std::ptrdiff_t>(i * no),
                  y.data().begin() + static_cast<std::ptrdiff_t>((i + 1) * no));
  }
  return out;
}

MultiHeadSelfAttention& TransformerRegressor::last_attention_layer() {
  return layers_.back()->attention();
}

const MultiHeadSelfAttention& TransformerRegressor::last_attention_layer()
    const {
  return layers_.back()->attention();
}

void TransformerRegressor::set_capture_attention(bool on) {
  last_attention_layer().set_capture_attention(on);
}

MultiHeadSelfAttention& TransformerRegressor::attention_layer(size_t i) {
  return layers_.at(i)->attention();
}

const MultiHeadSelfAttention& TransformerRegressor::attention_layer(
    size_t i) const {
  return layers_.at(i)->attention();
}

void TransformerRegressor::install_mask_all_layers(const Tensor& mask) {
  for (auto& layer : layers_) {
    layer->attention().install_mask(mask.detach());
  }
}

void TransformerRegressor::clear_masks() {
  for (auto& layer : layers_) layer->attention().clear_mask();
}

std::vector<Tensor> TransformerRegressor::head_parameters() const {
  auto p1 = head1_.parameters();
  auto p2 = head2_.parameters();
  p1.insert(p1.end(), p2.begin(), p2.end());
  return p1;
}

std::unique_ptr<TransformerRegressor> TransformerRegressor::clone() const {
  // Initialization draws are overwritten immediately by the copy below, so
  // skip the (surprisingly costly) normal/uniform sampling entirely.
  Rng scratch = Rng::null_stream();
  auto copy = std::make_unique<TransformerRegressor>(cfg_, scratch);
  copy->copy_parameters_from(*this);
  for (size_t i = 0; i < layers_.size(); ++i) {
    const auto& src_attn = layers_[i]->attention();
    if (src_attn.has_mask()) {
      copy->layers_[i]->attention().install_mask(src_attn.mask().detach());
    }
  }
  copy->quant_calib_ = quant_calib_;
  if (!quant_calib_.empty()) ++copy->quant_calib_gen_;
  return copy;
}

}  // namespace metadse::nn
