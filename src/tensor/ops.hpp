// Differentiable tensor operations. Every function builds a graph node whose
// backward closure accumulates into parents that require gradients, so any
// composition is trainable end-to-end via Tensor::backward().
//
// Broadcasting follows NumPy rules (right-aligned; extents must match or be 1)
// for the elementwise binary ops and for the batch dimensions of matmul.
#pragma once

#include "tensor/tensor.hpp"

namespace metadse::tensor {

// -- elementwise binary (broadcasting) ---------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

/// Scalar conveniences (the scalar is a constant, not a graph leaf).
Tensor add(const Tensor& a, float b);
Tensor sub(const Tensor& a, float b);
Tensor mul(const Tensor& a, float b);
Tensor div(const Tensor& a, float b);

/// Elementwise negation.
Tensor neg(const Tensor& a);

// -- matrix multiply ----------------------------------------------------------

/// Batched matrix product: a is [..., M, K], b is [..., K, N]; the leading
/// (batch) dimensions broadcast. Result is [batch..., M, N]. Rank-2 inputs are
/// the plain matrix product.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Transpose-aware product: a is [..., M, K], b is [..., N, K]; computes
/// a · bᵀ without materializing the transpose. Bitwise identical to
/// matmul(a, transpose_last(b)) — both accumulate each output element's
/// reduction terms in ascending k order.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// -- activations / pointwise ---------------------------------------------------

Tensor relu(const Tensor& a);
/// GELU with the tanh approximation (as used by standard transformer stacks).
Tensor gelu(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor exp(const Tensor& a);
/// Natural log; inputs must be positive.
Tensor log(const Tensor& a);
/// Elementwise square.
Tensor square(const Tensor& a);

// -- normalization -------------------------------------------------------------

/// Softmax over the last dimension.
Tensor softmax_lastdim(const Tensor& a);

/// Layer normalization over the last dimension (no affine; compose with
/// mul/add for gamma/beta). @p eps stabilizes the variance.
Tensor layer_norm_lastdim(const Tensor& a, float eps = 1e-5F);

// -- fused kernels -------------------------------------------------------------
//
// Each fused op builds ONE graph node for a composition the training loop
// executes constantly, replicating the composed ops' arithmetic (same
// operations, same rounding, same per-accumulator summation order), so
// forward values and accumulated gradients are bitwise identical to the
// composition it replaces. The win is tape overhead: fewer nodes, fewer
// closures, no materialized intermediates, one pass over the data in
// backward instead of one per op.

/// Affine layer norm in one node: bitwise-equal to
/// `add(mul(layer_norm_lastdim(x, eps), gamma), beta)` with
/// gamma/beta of shape [x.shape().back()].
Tensor layer_norm_affine(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, float eps = 1e-5F);

/// Masked, renormalized softmax over the last dimension in one node:
/// bitwise-equal to
///   attn = softmax_lastdim(scores);            // [..., R, L]
///   masked = mul(attn, mask);                  // mask [R, L], broadcast
///   attn = div(masked, add(sum_axis(masked, rank-1, true), eps));
/// Gradients flow to both scores and (when trainable) the mask.
Tensor softmax_masked_lastdim(const Tensor& scores, const Tensor& mask,
                              float eps = 1e-6F);

/// Bias add + tanh-approximated GELU in one node: bitwise-equal to
/// `gelu(add(x, b))` with b of shape [x.shape().back()]. Recomputes the
/// pre-activation in backward, so nothing is stashed.
Tensor bias_gelu(const Tensor& x, const Tensor& b);

// -- reductions ----------------------------------------------------------------

/// Sum of all elements (scalar result).
Tensor sum(const Tensor& a);
/// Mean of all elements (scalar result).
Tensor mean(const Tensor& a);
/// Sum over one axis; when @p keepdim the axis is retained with extent 1.
Tensor sum_axis(const Tensor& a, size_t axis, bool keepdim = false);
/// Mean over one axis; when @p keepdim the axis is retained with extent 1.
Tensor mean_axis(const Tensor& a, size_t axis, bool keepdim = false);

// -- shape manipulation ----------------------------------------------------------

/// Copying reshape; numel must be preserved.
Tensor reshape(const Tensor& a, Shape shape);
/// Reshape of a sole-owner temporary: in no-grad mode the value buffer is
/// stolen instead of copied (falls back to the copying overload otherwise).
Tensor reshape(Tensor&& a, Shape shape);
/// Generalized transpose: output dim i takes input dim perm[i].
Tensor permute(const Tensor& a, const std::vector<size_t>& perm);
/// Swap the last two dimensions (rank >= 2).
Tensor transpose_last(const Tensor& a);
/// Concatenate along the first dimension; all other extents must match.
Tensor concat_rows(const std::vector<Tensor>& parts);

// -- losses & regularization -----------------------------------------------------

/// Mean squared error between same-shaped tensors (scalar result).
Tensor mse_loss(const Tensor& pred, const Tensor& target);
/// Mean absolute (L1) error between same-shaped tensors (scalar result).
Tensor l1_loss(const Tensor& pred, const Tensor& target);

/// Inverted dropout: zeroes entries w.p. @p p and rescales survivors by
/// 1/(1-p) when @p train; identity otherwise.
Tensor dropout(const Tensor& a, float p, Rng& rng, bool train);

}  // namespace metadse::tensor
