#include "tensor/ops.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "core/parallel.hpp"
#include "tensor/kernels.hpp"
#include "tensor/plan.hpp"
#include "tensor/pool.hpp"

namespace metadse::tensor {

namespace {

// The forward compute kernels (GEMM panels, fast_expf/tanhf, GELU, softmax /
// layer-norm rows) live in tensor/kernels.hpp, shared verbatim with the
// static-plan executor so the two paths cannot drift bitwise.
using kern::gelu_dfn;
using kern::gelu_fwd;

/// Op-output allocation: always drawn from the thread-local BufferPool. In
/// no-grad mode buffers cycle back as soon as the handle dies (inference
/// fast path); in grad mode they ride the tape — finish_op_result_grad marks
/// the node pooled, so the whole tape's storage returns to the pool when the
/// graph dies and the next training step re-acquires it.
std::vector<float> alloc_out(size_t n) { return BufferPool::acquire(n); }

std::vector<float> alloc_out_zero(size_t n) {
  return BufferPool::acquire_zero(n);
}

/// A pooled constant node for the scalar op overloads: same value, same
/// requires_grad=false leaf semantics as Tensor::scalar, but the node block
/// and 1-element buffer recycle instead of hitting the heap per call.
Tensor pooled_scalar(float v) {
  std::vector<float> out = BufferPool::acquire(1);
  out[0] = v;
  Tensor r = detail::make_inference_result({}, std::move(out));
  plan::trace_const(r);
  return r;
}

// -- blocked GEMM kernels ----------------------------------------------------
//
// The three kernels below (C = A*B, dA = dC*B^T, dB = A^T*dC) partition one
// index axis into contiguous row blocks across the thread pool and tile the
// reduction axis for cache reuse. Every output element accumulates its
// reduction terms in ascending order regardless of block boundaries or tile
// size, so results are bitwise identical to the serial triple loop for any
// thread count. The gradient kernels give each thread exclusive ownership of
// an output row *across all batches* (batch iterated innermost-serially):
// when a broadcast batch maps several batch indices onto the same gradient
// matrix, the accumulation order per element still matches the serial
// bi-major order.

using kern::gemm_row_grain;
using kern::kGemmKTile;

/// C[bi] = A[bi] * B[bi] for all batches, rows split across the pool. The
/// first K-slice writes through zero-initialized accumulators, so c does NOT
/// need to be pre-zeroed.
void gemm_forward(const float* a, const float* b, float* c,
                  const std::vector<size_t>& aoff,
                  const std::vector<size_t>& boff, size_t M, size_t K,
                  size_t N) {
  const size_t nb = aoff.size();
  const size_t o_mat = M * N;
  core::parallel_for_blocks_static(M, gemm_row_grain(K * N * nb), [&](size_t m0,
                                                               size_t m1) {
    for (size_t bi = 0; bi < nb; ++bi) {
      const float* pa = a + aoff[bi];
      const float* pb = b + boff[bi];
      float* po = c + bi * o_mat;
      kern::gemm_rows<true>(pa, pb, po, m0, m1, 0, std::min(K, kGemmKTile), K,
                            N);
      for (size_t k0 = kGemmKTile; k0 < K; k0 += kGemmKTile) {
        kern::gemm_rows<false>(pa, pb, po, m0, m1, k0,
                               std::min(K, k0 + kGemmKTile), K, N);
      }
    }
  });
}

/// Width-T block of one gradient row kept in registers while @p n
/// coefficient/row pairs stream over it: acc[j] += coef(i) * row(i)[j] for
/// i ascending. This is the backward-pass dual of gemm_row_panel — each dst
/// element still receives one rounded mul+add per i in ascending order, so
/// results are bitwise equal to the plain saxpy loop it replaces; only where
/// the running partial lives (registers vs. the gradient row) changes. The
/// backward kernels never fuse into FMA (plain += under -ffp-contract=off),
/// matching the composed arithmetic they must reproduce. Returns the next
/// unprocessed column.
template <size_t T, typename CoefFn, typename RowFn>
size_t saxpy_panel(float* __restrict dst, size_t j0, size_t J, size_t n,
                   CoefFn coef, RowFn row) {
  for (; j0 + T <= J; j0 += T) {
    float acc[T];
    for (size_t j = 0; j < T; ++j) acc[j] = dst[j0 + j];
    for (size_t i = 0; i < n; ++i) {
      const float cv = coef(i);
      const float* __restrict r = row(i) + j0;
      for (size_t j = 0; j < T; ++j) acc[j] += cv * r[j];
    }
    for (size_t j = 0; j < T; ++j) dst[j0 + j] = acc[j];
  }
  return j0;
}

/// Full gradient row update dst[j] += sum_i coef(i) * row(i)[j] via
/// register panels of descending width plus a scalar tail.
template <typename CoefFn, typename RowFn>
void saxpy_row(float* __restrict dst, size_t J, size_t n, CoefFn coef,
               RowFn row) {
  size_t j0 = saxpy_panel<16>(dst, 0, J, n, coef, row);
  j0 = saxpy_panel<8>(dst, j0, J, n, coef, row);
  j0 = saxpy_panel<4>(dst, j0, J, n, coef, row);
  for (; j0 < J; ++j0) {
    float acc = dst[j0];
    for (size_t i = 0; i < n; ++i) acc += coef(i) * row(i)[j0];
    dst[j0] = acc;
  }
}

/// dA[bi] += dC[bi] * B[bi]^T; a thread owns rows [m0, m1) of dA for every
/// batch, so broadcast-shared dA rows accumulate in serial bi-major order.
/// B is packed into B^T once (pooled scratch) so the saxpy inner loop reads
/// contiguously — same terms, same ascending-n order per element, just a
/// different address pattern. The __restrict qualifiers are sound: go/b/da
/// are always three distinct buffers (an op output's grad, a parent's value,
/// a parent's grad).
void gemm_backward_a(const float* __restrict go, const float* __restrict b,
                     float* __restrict da, const std::vector<size_t>& aoff,
                     const std::vector<size_t>& boff, size_t M, size_t K,
                     size_t N) {
  const size_t nb = aoff.size();
  const size_t o_mat = M * N;
  const size_t b_mat = K * N;
  std::vector<float> btv = BufferPool::acquire(nb * b_mat);
  float* __restrict bt = btv.data();
  for (size_t bi = 0; bi < nb; ++bi) {
    const float* pb = b + boff[bi];
    float* pt = bt + bi * b_mat;
    for (size_t n = 0; n < N; ++n) {
      for (size_t k = 0; k < K; ++k) pt[n * K + k] = pb[k * N + n];
    }
  }
  core::parallel_for_blocks_static(M, gemm_row_grain(K * N * nb), [&](size_t m0,
                                                               size_t m1) {
    for (size_t bi = 0; bi < nb; ++bi) {
      const float* __restrict pbt = bt + bi * b_mat;
      const float* __restrict g = go + bi * o_mat;
      float* __restrict pda = da + aoff[bi];
      for (size_t m = m0; m < m1; ++m) {
        const float* gm = g + m * N;
        saxpy_row(
            pda + m * K, K, N, [&](size_t n) { return gm[n]; },
            [&](size_t n) { return pbt + n * K; });
      }
    }
  });
  BufferPool::release(std::move(btv));
}

/// dB[bi] += A[bi]^T * dC[bi]; a thread owns rows [k0, k1) of dB for every
/// batch (same broadcast-safety argument as gemm_backward_a).
void gemm_backward_b(const float* __restrict a, const float* __restrict go,
                     float* __restrict db, const std::vector<size_t>& aoff,
                     const std::vector<size_t>& boff, size_t M, size_t K,
                     size_t N) {
  const size_t nb = aoff.size();
  const size_t o_mat = M * N;
  core::parallel_for_blocks_static(K, gemm_row_grain(M * N * nb), [&](size_t k0,
                                                               size_t k1) {
    for (size_t bi = 0; bi < nb; ++bi) {
      const float* __restrict pa = a + aoff[bi];
      const float* __restrict g = go + bi * o_mat;
      float* __restrict pdb = db + boff[bi];
      for (size_t k = k0; k < k1; ++k) {
        saxpy_row(
            pdb + k * N, N, M, [&](size_t m) { return pa[m * K + k]; },
            [&](size_t m) { return g + m * N; });
      }
    }
  });
}

// -- transpose-aware GEMM (C = A * B^T with B stored row-major [N, K]) --------

/// C[bi][m,n] = sum_k A[bi][m,k] * B[bi][n,k]. Packs each batch's B into
/// B^T once (O(N*K) moves against O(M*N*K) multiply-adds) and runs the same
/// register-panel kernel as gemm_forward; the ascending-k accumulation makes
/// every output element bitwise equal to matmul(a, transpose_last(b)), which
/// accumulates the same terms in the same order. Like gemm_forward, c does
/// not need to be pre-zeroed.
void gemm_nt_forward(const float* a, const float* b, float* c,
                     const std::vector<size_t>& aoff,
                     const std::vector<size_t>& boff, size_t M, size_t K,
                     size_t N) {
  const size_t nb = aoff.size();
  const size_t o_mat = M * N;
  const size_t b_mat = K * N;
  std::vector<float> bt = alloc_out(nb * b_mat);
  for (size_t bi = 0; bi < nb; ++bi) {
    const float* pb = b + boff[bi];
    float* pt = bt.data() + bi * b_mat;
    for (size_t n = 0; n < N; ++n) {
      for (size_t k = 0; k < K; ++k) pt[k * N + n] = pb[n * K + k];
    }
  }
  core::parallel_for_blocks_static(M, gemm_row_grain(K * N * nb), [&](size_t m0,
                                                               size_t m1) {
    for (size_t bi = 0; bi < nb; ++bi) {
      kern::gemm_rows<true>(a + aoff[bi], bt.data() + bi * b_mat,
                            c + bi * o_mat, m0, m1, 0, K, K, N);
    }
  });
  // Hand the packed panel back to the pool: the next matmul_nt of this shape
  // (the same attention score product, one inner-loop step later) re-packs
  // into the identical storage instead of allocating.
  BufferPool::release(std::move(bt));
}

/// dA[bi][m,k] += sum_n dC[bi][m,n] * B[bi][n,k]; a thread owns rows
/// [m0, m1) of dA for every batch — ascending-n accumulation matches the
/// serial order for any thread count.
void gemm_nt_backward_a(const float* __restrict go, const float* __restrict b,
                        float* __restrict da, const std::vector<size_t>& aoff,
                        const std::vector<size_t>& boff, size_t M, size_t K,
                        size_t N) {
  const size_t nb = aoff.size();
  const size_t o_mat = M * N;
  core::parallel_for_blocks_static(M, gemm_row_grain(K * N * nb), [&](size_t m0,
                                                               size_t m1) {
    for (size_t bi = 0; bi < nb; ++bi) {
      const float* __restrict pb = b + boff[bi];
      const float* __restrict g = go + bi * o_mat;
      float* __restrict pda = da + aoff[bi];
      for (size_t m = m0; m < m1; ++m) {
        const float* gm = g + m * N;
        saxpy_row(
            pda + m * K, K, N, [&](size_t n) { return gm[n]; },
            [&](size_t n) { return pb + n * K; });
      }
    }
  });
}

/// dB[bi][n,k] += sum_m dC[bi][m,n] * A[bi][m,k]; a thread owns rows
/// [n0, n1) of dB for every batch.
void gemm_nt_backward_b(const float* __restrict go, const float* __restrict a,
                        float* __restrict db, const std::vector<size_t>& aoff,
                        const std::vector<size_t>& boff, size_t M, size_t K,
                        size_t N) {
  const size_t nb = aoff.size();
  const size_t o_mat = M * N;
  core::parallel_for_blocks_static(N, gemm_row_grain(M * K * nb), [&](size_t n0,
                                                               size_t n1) {
    for (size_t bi = 0; bi < nb; ++bi) {
      const float* __restrict pa = a + aoff[bi];
      const float* __restrict g = go + bi * o_mat;
      float* __restrict pdb = db + boff[bi];
      for (size_t n = n0; n < n1; ++n) {
        saxpy_row(
            pdb + n * K, K, M, [&](size_t m) { return g[m * N + n]; },
            [&](size_t m) { return pa + m * K; });
      }
    }
  });
}

/// Per-batch base offsets for broadcast batch dims; @p a_mat / @p b_mat are
/// the per-matrix element counts the batch indices scale by. The offset
/// tables come from the index pool (callers hand them back, or park them in
/// a backward closure via PooledIdx). Rank-2 x rank-2 — the Linear layers,
/// i.e. most matmuls — skips the broadcast machinery entirely.
void batch_offsets(const Shape& a_shape, const Shape& b_shape, size_t a_mat,
                   size_t b_mat, std::vector<size_t>& aoff,
                   std::vector<size_t>& boff, Shape& batch) {
  if (a_shape.size() == 2 && b_shape.size() == 2) {
    aoff = BufferPool::acquire_idx(1);
    boff = BufferPool::acquire_idx(1);
    aoff[0] = 0;
    boff[0] = 0;
    batch.clear();
    return;
  }
  const Shape a_batch(a_shape.begin(), a_shape.end() - 2);
  const Shape b_batch(b_shape.begin(), b_shape.end() - 2);
  batch = broadcast_shape(a_batch, b_batch);
  const auto sa = broadcast_strides(a_batch, batch);
  const auto sb = broadcast_strides(b_batch, batch);
  const size_t nb = numel(batch);
  aoff = BufferPool::acquire_idx(nb);
  boff = BufferPool::acquire_idx(nb);
  std::vector<size_t> idx = BufferPool::acquire_idx(batch.size());
  std::fill(idx.begin(), idx.end(), 0);
  for (size_t i = 0; i < nb; ++i) {
    size_t oa = 0;
    size_t ob = 0;
    for (size_t d = 0; d < batch.size(); ++d) {
      oa += idx[d] * sa[d];
      ob += idx[d] * sb[d];
    }
    aoff[i] = oa * a_mat;
    boff[i] = ob * b_mat;
    for (size_t d = batch.size(); d-- > 0;) {
      if (++idx[d] < batch[d]) break;
      idx[d] = 0;
    }
  }
  BufferPool::release_idx(std::move(idx));
}

/// Iterates the linear indices of two inputs broadcast to a common output
/// shape. Offsets are maintained incrementally in advance() — O(1) amortized
/// per element instead of an O(rank) dot product per lookup.
struct BcastIter {
  Shape out;
  std::vector<size_t> sa, sb, idx;
  size_t n;

  BcastIter(const Shape& a, const Shape& b)
      : out(broadcast_shape(a, b)),
        sa(broadcast_strides(a, out)),
        sb(broadcast_strides(b, out)),
        idx(out.size(), 0),
        n(numel(out)) {}

  size_t offset_a() const { return oa_; }
  size_t offset_b() const { return ob_; }

  void advance() {
    for (size_t d = out.size(); d-- > 0;) {
      ++idx[d];
      oa_ += sa[d];
      ob_ += sb[d];
      if (idx[d] < out[d]) return;
      oa_ -= idx[d] * sa[d];
      ob_ -= idx[d] * sb[d];
      idx[d] = 0;
    }
  }

 private:
  size_t oa_ = 0, ob_ = 0;
};

void accumulate_into(const std::shared_ptr<Node>& p, size_t off, float g) {
  p->grad[off] += g;
}

/// True when @p small is exactly the trailing dims of @p big, so broadcasting
/// reduces to `offset_small = i % numel(small)` (covers the scalar case).
bool is_trailing_suffix(const Shape& small, const Shape& big) {
  if (small.size() > big.size()) return false;
  const size_t d0 = big.size() - small.size();
  for (size_t d = 0; d < small.size(); ++d) {
    if (small[d] != big[d0 + d]) return false;
  }
  return true;
}

/// Generic broadcast binary op. fwd(x,y) computes the value; dfa/dfb compute
/// d out/d a and d out/d b given (a_val, b_val, out_val). The same-shape and
/// trailing-suffix fast paths below visit elements in the identical ascending
/// output order as the general BcastIter walk, so values and accumulated
/// gradients are bitwise independent of which path runs.
template <typename Fwd, typename Dfa, typename Dfb>
Tensor binary_bcast(const Tensor& a, const Tensor& b, Fwd fwd, Dfa dfa,
                    Dfb dfb) {
  auto an = a.node();
  auto bn = b.node();
  // Fast path: identical shapes — both offsets equal the output index.
  if (an->shape == bn->shape) {
    const size_t n = an->value.size();
    std::vector<float> out = alloc_out(n);
    for (size_t i = 0; i < n; ++i) out[i] = fwd(an->value[i], bn->value[i]);
    return make_op_result(
        an->shape, std::move(out), {an, bn}, [an, bn, dfa, dfb](Node& self) {
          const bool ga = an->requires_grad;
          const bool gb = bn->requires_grad;
          if (ga) an->ensure_grad();
          if (gb) bn->ensure_grad();
          for (size_t i = 0; i < self.value.size(); ++i) {
            const float av = an->value[i];
            const float bv = bn->value[i];
            const float go = self.grad[i];
            if (ga) an->grad[i] += go * dfa(av, bv, self.value[i]);
            if (gb) bn->grad[i] += go * dfb(av, bv, self.value[i]);
          }
        });
  }
  // Fast path: b is a right-aligned suffix of a (bias adds, scalar operands).
  // n is an exact multiple of L, so the walk is whole blocks of L; the block
  // loops visit the same ascending output order as the modular-index walk
  // they replace while keeping the inner trip count branch-free.
  if (!bn->value.empty() && is_trailing_suffix(bn->shape, an->shape)) {
    const size_t n = an->value.size();
    const size_t L = bn->value.size();
    std::vector<float> out = alloc_out(n);
    if (L == 1) {
      const float bv = bn->value[0];
      for (size_t i = 0; i < n; ++i) out[i] = fwd(an->value[i], bv);
    } else {
      for (size_t i0 = 0; i0 < n; i0 += L) {
        const float* pa = an->value.data() + i0;
        float* po = out.data() + i0;
        for (size_t j = 0; j < L; ++j) po[j] = fwd(pa[j], bn->value[j]);
      }
    }
    return make_op_result(
        an->shape, std::move(out), {an, bn},
        [an, bn, L, dfa, dfb](Node& self) {
          const bool ga = an->requires_grad;
          const bool gb = bn->requires_grad;
          if (ga) an->ensure_grad();
          if (gb) bn->ensure_grad();
          for (size_t i0 = 0; i0 < self.value.size(); i0 += L) {
            for (size_t j = 0; j < L; ++j) {
              const float av = an->value[i0 + j];
              const float bv = bn->value[j];
              const float go = self.grad[i0 + j];
              if (ga) an->grad[i0 + j] += go * dfa(av, bv, self.value[i0 + j]);
              if (gb) bn->grad[j] += go * dfb(av, bv, self.value[i0 + j]);
            }
          }
        });
  }
  // Mirror fast path: a is a right-aligned suffix of b.
  if (!an->value.empty() && is_trailing_suffix(an->shape, bn->shape)) {
    const size_t n = bn->value.size();
    const size_t L = an->value.size();
    std::vector<float> out = alloc_out(n);
    if (L == 1) {
      const float av = an->value[0];
      for (size_t i = 0; i < n; ++i) out[i] = fwd(av, bn->value[i]);
    } else {
      for (size_t i0 = 0; i0 < n; i0 += L) {
        const float* pb = bn->value.data() + i0;
        float* po = out.data() + i0;
        for (size_t j = 0; j < L; ++j) po[j] = fwd(an->value[j], pb[j]);
      }
    }
    return make_op_result(
        bn->shape, std::move(out), {an, bn},
        [an, bn, L, dfa, dfb](Node& self) {
          const bool ga = an->requires_grad;
          const bool gb = bn->requires_grad;
          if (ga) an->ensure_grad();
          if (gb) bn->ensure_grad();
          for (size_t i0 = 0; i0 < self.value.size(); i0 += L) {
            for (size_t j = 0; j < L; ++j) {
              const float av = an->value[j];
              const float bv = bn->value[i0 + j];
              const float go = self.grad[i0 + j];
              if (ga) an->grad[j] += go * dfa(av, bv, self.value[i0 + j]);
              if (gb) bn->grad[i0 + j] += go * dfb(av, bv, self.value[i0 + j]);
            }
          }
        });
  }
  BcastIter f(an->shape, bn->shape);
  std::vector<float> out = alloc_out(f.n);
  for (size_t i = 0; i < f.n; ++i, f.advance()) {
    out[i] = fwd(an->value[f.offset_a()], bn->value[f.offset_b()]);
  }
  Shape out_shape = f.out;
  return make_op_result(
      out_shape, std::move(out), {an, bn},
      [an, bn, dfa, dfb](Node& self) {
        BcastIter g(an->shape, bn->shape);
        const bool ga = an->requires_grad;
        const bool gb = bn->requires_grad;
        if (ga) an->ensure_grad();
        if (gb) bn->ensure_grad();
        for (size_t i = 0; i < g.n; ++i, g.advance()) {
          const float av = an->value[g.offset_a()];
          const float bv = bn->value[g.offset_b()];
          const float go = self.grad[i];
          if (ga) accumulate_into(an, g.offset_a(), go * dfa(av, bv, self.value[i]));
          if (gb) accumulate_into(bn, g.offset_b(), go * dfb(av, bv, self.value[i]));
        }
      });
}

/// Generic elementwise unary op; dfn receives (x, y) and returns dy/dx.
template <typename Fwd, typename Dfn>
Tensor unary(const Tensor& a, Fwd fwd, Dfn dfn) {
  auto an = a.node();
  const size_t n = an->value.size();
  std::vector<float> out = alloc_out(n);
  // Raw noalias pointers: the freshly acquired out buffer cannot alias the
  // input, and spelling that out lets the elementwise loop vectorize.
  const float* __restrict src = an->value.data();
  float* __restrict dst = out.data();
  for (size_t i = 0; i < n; ++i) dst[i] = fwd(src[i]);
  return make_op_result(an->shape, std::move(out), {an},
                        [an, dfn](Node& self) {
                          if (!an->requires_grad) return;
                          an->ensure_grad();
                          for (size_t i = 0; i < self.value.size(); ++i) {
                            an->grad[i] +=
                                self.grad[i] * dfn(an->value[i], self.value[i]);
                          }
                        });
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor r = binary_bcast(
      a, b, [](float x, float y) { return x + y; },
      [](float, float, float) { return 1.0F; },
      [](float, float, float) { return 1.0F; });
  plan::trace_binary(plan::BinFn::kAdd, r, a, b);
  return r;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor r = binary_bcast(
      a, b, [](float x, float y) { return x - y; },
      [](float, float, float) { return 1.0F; },
      [](float, float, float) { return -1.0F; });
  plan::trace_binary(plan::BinFn::kSub, r, a, b);
  return r;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor r = binary_bcast(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y, float) { return y; },
      [](float x, float, float) { return x; });
  plan::trace_binary(plan::BinFn::kMul, r, a, b);
  return r;
}

Tensor div(const Tensor& a, const Tensor& b) {
  Tensor r = binary_bcast(
      a, b, [](float x, float y) { return x / y; },
      [](float, float y, float) { return 1.0F / y; },
      [](float x, float y, float) { return -x / (y * y); });
  plan::trace_binary(plan::BinFn::kDiv, r, a, b);
  return r;
}

Tensor add(const Tensor& a, float b) { return add(a, pooled_scalar(b)); }
Tensor sub(const Tensor& a, float b) { return sub(a, pooled_scalar(b)); }
Tensor mul(const Tensor& a, float b) { return mul(a, pooled_scalar(b)); }
Tensor div(const Tensor& a, float b) { return div(a, pooled_scalar(b)); }

Tensor neg(const Tensor& a) {
  Tensor r = unary(a, [](float x) { return -x; },
                   [](float, float) { return -1.0F; });
  plan::trace_unary(plan::UnFn::kNeg, r, a);
  return r;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  auto an = a.node();
  auto bn = b.node();
  if (an->shape.size() < 2 || bn->shape.size() < 2) {
    throw std::invalid_argument("matmul: inputs must have rank >= 2");
  }
  const size_t M = an->shape[an->shape.size() - 2];
  const size_t K = an->shape[an->shape.size() - 1];
  const size_t Kb = bn->shape[bn->shape.size() - 2];
  const size_t N = bn->shape[bn->shape.size() - 1];
  if (K != Kb) {
    throw std::invalid_argument("matmul: inner dims differ (" +
                                shape_str(an->shape) + " x " +
                                shape_str(bn->shape) + ")");
  }
  Shape batch;
  std::vector<size_t> aoff, boff;
  batch_offsets(an->shape, bn->shape, M * K, K * N, aoff, boff, batch);
  const size_t nb = aoff.size();
  const size_t o_mat = M * N;

  Shape out_shape = std::move(batch);
  out_shape.push_back(M);
  out_shape.push_back(N);
  std::vector<float> out = alloc_out(nb * o_mat);
  gemm_forward(an->value.data(), bn->value.data(), out.data(), aoff, boff, M,
               K, N);

  Tensor r = make_op_result(
      std::move(out_shape), std::move(out), {an, bn},
      [an, bn, aoff = PooledIdx(std::move(aoff)),
       boff = PooledIdx(std::move(boff)), M, K, N](Node& self) {
        const bool ga = an->requires_grad;
        const bool gb = bn->requires_grad;
        if (ga) an->ensure_grad();
        if (gb) bn->ensure_grad();
        if (ga) {
          // dA = dOut * B^T
          gemm_backward_a(self.grad.data(), bn->value.data(),
                          an->grad.data(), aoff.get(), boff.get(), M, K, N);
        }
        if (gb) {
          // dB = A^T * dOut
          gemm_backward_b(an->value.data(), self.grad.data(),
                          bn->grad.data(), aoff.get(), boff.get(), M, K, N);
        }
      });
  plan::trace_matmul(false, r, a, b);
  return r;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  auto an = a.node();
  auto bn = b.node();
  if (an->shape.size() < 2 || bn->shape.size() < 2) {
    throw std::invalid_argument("matmul_nt: inputs must have rank >= 2");
  }
  const size_t M = an->shape[an->shape.size() - 2];
  const size_t K = an->shape[an->shape.size() - 1];
  const size_t N = bn->shape[bn->shape.size() - 2];
  const size_t Kb = bn->shape[bn->shape.size() - 1];
  if (K != Kb) {
    throw std::invalid_argument("matmul_nt: inner dims differ (" +
                                shape_str(an->shape) + " x " +
                                shape_str(bn->shape) + "^T)");
  }
  Shape batch;
  std::vector<size_t> aoff, boff;
  batch_offsets(an->shape, bn->shape, M * K, N * K, aoff, boff, batch);
  const size_t nb = aoff.size();
  const size_t o_mat = M * N;

  Shape out_shape = std::move(batch);
  out_shape.push_back(M);
  out_shape.push_back(N);
  std::vector<float> out = alloc_out(nb * o_mat);
  gemm_nt_forward(an->value.data(), bn->value.data(), out.data(), aoff, boff,
                  M, K, N);

  Tensor r = make_op_result(
      std::move(out_shape), std::move(out), {an, bn},
      [an, bn, aoff = PooledIdx(std::move(aoff)),
       boff = PooledIdx(std::move(boff)), M, K, N](Node& self) {
        const bool ga = an->requires_grad;
        const bool gb = bn->requires_grad;
        if (ga) an->ensure_grad();
        if (gb) bn->ensure_grad();
        if (ga) {
          // dA = dOut * B
          gemm_nt_backward_a(self.grad.data(), bn->value.data(),
                             an->grad.data(), aoff.get(), boff.get(), M, K, N);
        }
        if (gb) {
          // dB = dOut^T * A
          gemm_nt_backward_b(self.grad.data(), an->value.data(),
                             bn->grad.data(), aoff.get(), boff.get(), M, K, N);
        }
      });
  plan::trace_matmul(true, r, a, b);
  return r;
}

Tensor relu(const Tensor& a) {
  Tensor r = unary(a, [](float x) { return x > 0.0F ? x : 0.0F; },
                   [](float x, float) { return x > 0.0F ? 1.0F : 0.0F; });
  plan::trace_unary(plan::UnFn::kRelu, r, a);
  return r;
}

Tensor gelu(const Tensor& a) {
  Tensor r = unary(a, [](float x) { return gelu_fwd(x); },
                   [](float x, float) { return gelu_dfn(x); });
  plan::trace_unary(plan::UnFn::kGelu, r, a);
  return r;
}

Tensor tanh(const Tensor& a) {
  Tensor r = unary(a, [](float x) { return std::tanh(x); },
                   [](float, float y) { return 1.0F - y * y; });
  plan::trace_unary(plan::UnFn::kTanh, r, a);
  return r;
}

Tensor sigmoid(const Tensor& a) {
  Tensor r = unary(a, [](float x) { return 1.0F / (1.0F + std::exp(-x)); },
                   [](float, float y) { return y * (1.0F - y); });
  plan::trace_unary(plan::UnFn::kSigmoid, r, a);
  return r;
}

Tensor exp(const Tensor& a) {
  Tensor r = unary(a, [](float x) { return std::exp(x); },
                   [](float, float y) { return y; });
  plan::trace_unary(plan::UnFn::kExp, r, a);
  return r;
}

Tensor log(const Tensor& a) {
  Tensor r = unary(a, [](float x) { return std::log(x); },
                   [](float x, float) { return 1.0F / x; });
  plan::trace_unary(plan::UnFn::kLog, r, a);
  return r;
}

Tensor square(const Tensor& a) {
  Tensor r = unary(a, [](float x) { return x * x; },
                   [](float x, float) { return 2.0F * x; });
  plan::trace_unary(plan::UnFn::kSquare, r, a);
  return r;
}

Tensor softmax_lastdim(const Tensor& a) {
  auto an = a.node();
  if (an->shape.empty()) {
    throw std::invalid_argument("softmax_lastdim: rank must be >= 1");
  }
  const size_t L = an->shape.back();
  const size_t rows = an->value.size() / L;
  std::vector<float> out = alloc_out(an->value.size());
  for (size_t r = 0; r < rows; ++r) {
    kern::softmax_row(an->value.data() + r * L, out.data() + r * L, L);
  }
  Tensor r = make_op_result(
      an->shape, std::move(out), {an}, [an, L, rows](Node& self) {
        if (!an->requires_grad) return;
        an->ensure_grad();
        for (size_t r = 0; r < rows; ++r) {
          const float* y = self.value.data() + r * L;
          const float* g = self.grad.data() + r * L;
          float* dx = an->grad.data() + r * L;
          float dot = 0.0F;
          for (size_t i = 0; i < L; ++i) dot += y[i] * g[i];
          for (size_t i = 0; i < L; ++i) dx[i] += y[i] * (g[i] - dot);
        }
      });
  plan::trace_softmax(r, a);
  return r;
}

Tensor layer_norm_lastdim(const Tensor& a, float eps) {
  auto an = a.node();
  if (an->shape.empty()) {
    throw std::invalid_argument("layer_norm_lastdim: rank must be >= 1");
  }
  const size_t L = an->shape.back();
  const size_t rows = an->value.size() / L;
  // inv_std only feeds the backward closure; skip the stash when no graph is
  // being recorded.
  const bool rec = GradMode::enabled() && an->requires_grad;
  std::vector<float> out = alloc_out(an->value.size());
  std::vector<float> inv_std = rec ? BufferPool::acquire(rows)
                                   : std::vector<float>{};
  for (size_t r = 0; r < rows; ++r) {
    const float is =
        kern::layer_norm_row(an->value.data() + r * L, out.data() + r * L, L,
                             eps);
    if (rec) inv_std[r] = is;
  }
  // The stash's heap buffer survives the PooledVec move below, so the traced
  // pointer stays valid for the training-plan replay to refresh in place.
  float* ivp = rec ? inv_std.data() : nullptr;
  Tensor r = make_op_result(
      an->shape, std::move(out), {an},
      [an, L, rows, inv_std = PooledVec(std::move(inv_std))](Node& self) {
        if (!an->requires_grad) return;
        an->ensure_grad();
        const float invL = 1.0F / static_cast<float>(L);
        for (size_t r = 0; r < rows; ++r) {
          const float* y = self.value.data() + r * L;
          const float* g = self.grad.data() + r * L;
          float* dx = an->grad.data() + r * L;
          float gmean = 0.0F;
          float gymean = 0.0F;
          for (size_t i = 0; i < L; ++i) {
            gmean += g[i];
            gymean += g[i] * y[i];
          }
          gmean *= invL;
          gymean *= invL;
          for (size_t i = 0; i < L; ++i) {
            dx[i] += inv_std[r] * (g[i] - gmean - y[i] * gymean);
          }
        }
      });
  plan::trace_layer_norm(r, a, eps, ivp);
  return r;
}

// The fused kernels below replace the hot op chains of the transformer
// forward with single graph nodes. Bitwise equivalence with the composed
// chains is load-bearing (the meta-training equivalence suite asserts it),
// so every kernel reproduces the composed ops' exact rounding steps and the
// exact order in which each gradient accumulator receives its contributions;
// reordering is only applied across *independent* accumulators.

Tensor layer_norm_affine(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, float eps) {
  auto an = x.node();
  auto gn = gamma.node();
  auto bn = beta.node();
  if (an->shape.empty()) {
    throw std::invalid_argument("layer_norm_affine: rank must be >= 1");
  }
  const size_t L = an->shape.back();
  if (gn->shape != Shape{L} || bn->shape != Shape{L}) {
    throw std::invalid_argument(
        "layer_norm_affine: gamma/beta must have shape [" + std::to_string(L) +
        "]");
  }
  const size_t rows = an->value.size() / L;
  const bool rec = GradMode::enabled() &&
                   (an->requires_grad || gn->requires_grad ||
                    bn->requires_grad);
  std::vector<float> out = alloc_out(an->value.size());
  // Backward needs the normalized activations and each row's 1/std; the
  // composed chain kept them as a whole intermediate node — here they are
  // pooled stashes that die with the closure.
  std::vector<float> normed =
      rec ? BufferPool::acquire(an->value.size()) : std::vector<float>{};
  std::vector<float> inv_std =
      rec ? BufferPool::acquire(rows) : std::vector<float>{};
  for (size_t r = 0; r < rows; ++r) {
    const float is = kern::layer_norm_affine_row(
        an->value.data() + r * L, gn->value.data(), bn->value.data(),
        out.data() + r * L, rec ? normed.data() + r * L : nullptr, L, eps);
    if (rec) inv_std[r] = is;
  }
  float* np = rec ? normed.data() : nullptr;
  float* ivp = rec ? inv_std.data() : nullptr;
  Tensor r = make_op_result(
      an->shape, std::move(out), {an, gn, bn},
      [an, gn, bn, L, rows, normed = PooledVec(std::move(normed)),
       inv_std = PooledVec(std::move(inv_std))](Node& self) {
        const bool ga = an->requires_grad;
        const bool gg = gn->requires_grad;
        const bool gb = bn->requires_grad;
        if (ga) an->ensure_grad();
        if (gg) gn->ensure_grad();
        if (gb) bn->ensure_grad();
        const float invL = 1.0F / static_cast<float>(L);
        for (size_t r = 0; r < rows; ++r) {
          const float* y = normed.data() + r * L;
          const float* go = self.grad.data() + r * L;
          // One pass gathers the row's beta/gamma contributions and the two
          // means the input gradient needs. Per accumulator the contribution
          // order is the composed chain's flat ascending walk.
          float gmean = 0.0F;
          float gymean = 0.0F;
          for (size_t i = 0; i < L; ++i) {
            const float g0 = go[i];
            if (gb) bn->grad[i] += g0 * 1.0F;
            if (gg) gn->grad[i] += g0 * y[i];
            const float gy = g0 * gn->value[i];
            gmean += gy;
            gymean += gy * y[i];
          }
          if (ga) {
            gmean *= invL;
            gymean *= invL;
            float* dx = an->grad.data() + r * L;
            const float is = inv_std[r];
            for (size_t i = 0; i < L; ++i) {
              const float gy = go[i] * gn->value[i];
              dx[i] += is * (gy - gmean - y[i] * gymean);
            }
          }
        }
      });
  plan::trace_layer_norm_affine(r, x, gamma, beta, eps, np, ivp);
  return r;
}

Tensor softmax_masked_lastdim(const Tensor& scores, const Tensor& mask,
                              float eps) {
  auto an = scores.node();
  auto mn = mask.node();
  if (an->shape.size() < 2) {
    throw std::invalid_argument("softmax_masked_lastdim: rank must be >= 2");
  }
  const size_t L = an->shape.back();
  const size_t R = an->shape[an->shape.size() - 2];
  if (mn->shape != Shape{R, L}) {
    throw std::invalid_argument(
        "softmax_masked_lastdim: mask must match the trailing [" +
        std::to_string(R) + ", " + std::to_string(L) + "] of scores");
  }
  const size_t rows = an->value.size() / L;
  const bool rec = GradMode::enabled() &&
                   (an->requires_grad || mn->requires_grad);
  std::vector<float> out = alloc_out(an->value.size());
  // Stash the pre-mask softmax (the composed chain's intermediate node) and
  // each row's regularized mass; backward rebuilds everything else.
  std::vector<float> ystash =
      rec ? BufferPool::acquire(an->value.size()) : std::vector<float>{};
  std::vector<float> s2stash =
      rec ? BufferPool::acquire(rows) : std::vector<float>{};
  for (size_t r = 0; r < rows; ++r) {
    const float* x = an->value.data() + r * L;
    float* po = out.data() + r * L;
    // Softmax exactly as softmax_lastdim; when no graph is recorded the
    // output row doubles as the y scratch (masked_renorm_row is in-place
    // safe).
    float* y = rec ? ystash.data() + r * L : po;
    kern::softmax_row(x, y, L);
    const float s2 = kern::masked_renorm_row(
        y, mn->value.data() + (r % R) * L, po, L, eps);
    if (rec) s2stash[r] = s2;
  }
  float* yp = rec ? ystash.data() : nullptr;
  float* s2p = rec ? s2stash.data() : nullptr;
  Tensor res = make_op_result(
      an->shape, std::move(out), {an, mn},
      [an, mn, L, R, rows, ystash = PooledVec(std::move(ystash)),
       s2stash = PooledVec(std::move(s2stash))](Node& self) {
        const bool ga = an->requires_grad;
        const bool gm = mn->requires_grad;
        if (ga) an->ensure_grad();
        if (gm) mn->ensure_grad();
        std::vector<float> dy = BufferPool::acquire(L);
        for (size_t r = 0; r < rows; ++r) {
          const float* y = ystash.data() + r * L;
          const float* go = self.grad.data() + r * L;
          const size_t mrow = (r % R) * L;
          const float* mk = mn->value.data() + mrow;
          const float s2 = s2stash[r];
          const float s2sq = s2 * s2;
          // d(row mass): the div op's dfb terms in ascending order.
          float drs = 0.0F;
          for (size_t i = 0; i < L; ++i) {
            const float m = y[i] * mk[i];
            drs += go[i] * (-m / s2sq);
          }
          const float inv = 1.0F / s2;
          float dot = 0.0F;
          float* dmk = gm ? mn->grad.data() + mrow : nullptr;
          for (size_t i = 0; i < L; ++i) {
            float dm = go[i] * inv;  // div dfa term ...
            dm += drs;               // ... then the sum_axis broadcast-back
            dy[i] = dm * mk[i];
            if (gm) dmk[i] += dm * y[i];
            dot += y[i] * dy[i];
          }
          if (ga) {
            float* dx = an->grad.data() + r * L;
            for (size_t i = 0; i < L; ++i) dx[i] += y[i] * (dy[i] - dot);
          }
        }
        BufferPool::release(std::move(dy));
      });
  plan::trace_softmax_masked(res, scores, mask, eps, yp, s2p);
  return res;
}

Tensor bias_gelu(const Tensor& x, const Tensor& b) {
  auto an = x.node();
  auto bn = b.node();
  if (an->shape.empty()) {
    throw std::invalid_argument("bias_gelu: rank must be >= 1");
  }
  const size_t L = an->shape.back();
  if (bn->shape != Shape{L}) {
    throw std::invalid_argument("bias_gelu: bias must have shape [" +
                                std::to_string(L) + "]");
  }
  const size_t n = an->value.size();
  std::vector<float> out = alloc_out(n);
  kern::bias_gelu_rows(an->value.data(), bn->value.data(), out.data(), n, L);
  Tensor r = make_op_result(
      an->shape, std::move(out), {an, bn}, [an, bn, L](Node& self) {
        const bool ga = an->requires_grad;
        const bool gb = bn->requires_grad;
        if (ga) an->ensure_grad();
        if (gb) bn->ensure_grad();
        const size_t total = self.value.size();
        // Recompute the pre-activation (float add is deterministic, so it
        // matches the forward's bits) instead of stashing it, and stage the
        // shared d-term in a fresh scratch row so the gelu_dfn polynomial
        // runs in a single-store loop the compiler vectorizes; the pooled
        // scratch cannot alias any node buffer. The accumulation passes then
        // deliver contributions in the same flat ascending order as before.
        std::vector<float> dv = BufferPool::acquire(total);
        float* __restrict d = dv.data();
        const float* __restrict px = an->value.data();
        const float* __restrict pg = self.grad.data();
        for (size_t i0 = 0; i0 < total; i0 += L) {
          const float* pb = bn->value.data();
          for (size_t j = 0; j < L; ++j) {
            const float u = px[i0 + j] + pb[j];
            d[i0 + j] = pg[i0 + j] * gelu_dfn(u);
          }
        }
        if (ga) {
          float* __restrict dx = an->grad.data();
          for (size_t i = 0; i < total; ++i) dx[i] += d[i] * 1.0F;
        }
        if (gb) {
          float* __restrict db = bn->grad.data();
          for (size_t i0 = 0; i0 < total; i0 += L) {
            for (size_t j = 0; j < L; ++j) db[j] += d[i0 + j] * 1.0F;
          }
        }
        BufferPool::release(std::move(dv));
      });
  plan::trace_bias_gelu(r, x, b);
  return r;
}

Tensor sum(const Tensor& a) {
  auto an = a.node();
  float s = 0.0F;
  for (float v : an->value) s += v;
  std::vector<float> out = alloc_out(1);
  out[0] = s;
  Tensor r = make_op_result({}, std::move(out), {an}, [an](Node& self) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    const float g = self.grad[0];
    for (auto& dv : an->grad) dv += g;
  });
  plan::trace_reduce_all(false, r, a);
  return r;
}

Tensor mean(const Tensor& a) {
  // Direct scaled reduction — no div(sum(a), scalar) subgraph. The value
  // (s / n) and the backward contribution (g * (1/n)) reproduce the exact
  // float ops of the old composition, so results are bitwise unchanged.
  auto an = a.node();
  const float n = static_cast<float>(an->value.size());
  float s = 0.0F;
  for (float v : an->value) s += v;
  std::vector<float> out = alloc_out(1);
  out[0] = s / n;
  Tensor r = make_op_result({}, std::move(out), {an}, [an, n](Node& self) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    const float g = self.grad[0] * (1.0F / n);
    for (auto& dv : an->grad) dv += g;
  });
  plan::trace_reduce_all(true, r, a);
  return r;
}

Tensor sum_axis(const Tensor& a, size_t axis, bool keepdim) {
  auto an = a.node();
  const Shape& s = an->shape;
  if (axis >= s.size()) throw std::invalid_argument("sum_axis: bad axis");
  size_t outer = 1;
  size_t inner = 1;
  for (size_t d = 0; d < axis; ++d) outer *= s[d];
  for (size_t d = axis + 1; d < s.size(); ++d) inner *= s[d];
  const size_t ax = s[axis];
  Shape out_shape;
  for (size_t d = 0; d < s.size(); ++d) {
    if (d == axis) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(s[d]);
    }
  }
  std::vector<float> out = alloc_out_zero(outer * inner);
  for (size_t o = 0; o < outer; ++o) {
    for (size_t x = 0; x < ax; ++x) {
      const float* src = an->value.data() + (o * ax + x) * inner;
      float* dst = out.data() + o * inner;
      for (size_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  Tensor r = make_op_result(std::move(out_shape), std::move(out), {an},
                            [an, outer, inner, ax](Node& self) {
                              if (!an->requires_grad) return;
                              an->ensure_grad();
                              for (size_t o = 0; o < outer; ++o) {
                                const float* g = self.grad.data() + o * inner;
                                for (size_t x = 0; x < ax; ++x) {
                                  float* dst =
                                      an->grad.data() + (o * ax + x) * inner;
                                  for (size_t i = 0; i < inner; ++i) {
                                    dst[i] += g[i];
                                  }
                                }
                              }
                            });
  plan::trace_reduce_axis(false, r, a, axis, keepdim);
  return r;
}

Tensor mean_axis(const Tensor& a, size_t axis, bool keepdim) {
  // Direct scaled sum_axis (same bitwise argument as mean()).
  auto an = a.node();
  const Shape& s = an->shape;
  if (axis >= s.size()) throw std::invalid_argument("mean_axis: bad axis");
  size_t outer = 1;
  size_t inner = 1;
  for (size_t d = 0; d < axis; ++d) outer *= s[d];
  for (size_t d = axis + 1; d < s.size(); ++d) inner *= s[d];
  const size_t ax = s[axis];
  const float nax = static_cast<float>(ax);
  Shape out_shape;
  for (size_t d = 0; d < s.size(); ++d) {
    if (d == axis) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(s[d]);
    }
  }
  std::vector<float> out = alloc_out_zero(outer * inner);
  for (size_t o = 0; o < outer; ++o) {
    for (size_t x = 0; x < ax; ++x) {
      const float* src = an->value.data() + (o * ax + x) * inner;
      float* dst = out.data() + o * inner;
      for (size_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  for (auto& v : out) v /= nax;
  Tensor r = make_op_result(std::move(out_shape), std::move(out), {an},
                            [an, outer, inner, ax, nax](Node& self) {
                              if (!an->requires_grad) return;
                              an->ensure_grad();
                              const float inv = 1.0F / nax;
                              for (size_t o = 0; o < outer; ++o) {
                                const float* g = self.grad.data() + o * inner;
                                for (size_t x = 0; x < ax; ++x) {
                                  float* dst =
                                      an->grad.data() + (o * ax + x) * inner;
                                  for (size_t i = 0; i < inner; ++i) {
                                    dst[i] += g[i] * inv;
                                  }
                                }
                              }
                            });
  plan::trace_reduce_axis(true, r, a, axis, keepdim);
  return r;
}

Tensor reshape(const Tensor& a, Shape shape) {
  auto an = a.node();
  if (numel(shape) != an->value.size()) {
    throw std::invalid_argument("reshape: numel mismatch " +
                                shape_str(an->shape) + " -> " +
                                shape_str(shape));
  }
  std::vector<float> out = alloc_out(an->value.size());
  std::copy(an->value.begin(), an->value.end(), out.begin());
  Tensor r = make_op_result(std::move(shape), std::move(out), {an},
                            [an](Node& self) {
                              if (!an->requires_grad) return;
                              an->ensure_grad();
                              for (size_t i = 0; i < self.grad.size(); ++i) {
                                an->grad[i] += self.grad[i];
                              }
                            });
  plan::trace_reshape(r, a);
  return r;
}

Tensor reshape(Tensor&& a, Shape shape) {
  // Alias-style reshape for sole-owner temporaries in no-grad mode: steal the
  // value buffer instead of copying it. Only the rvalue handle references the
  // node (use_count == 1) and no graph edge will point at it, so emptying it
  // is unobservable. Disabled while tracing: the trace must see distinct,
  // live nodes on both sides of every reshape.
  const auto& an = a.node();
  if (an && !GradMode::enabled() && !plan::tracing() && an.use_count() == 1 &&
      numel(shape) == an->value.size()) {
    return detail::make_inference_result(std::move(shape),
                                         std::move(an->value));
  }
  return reshape(static_cast<const Tensor&>(a), std::move(shape));
}

Tensor permute(const Tensor& a, const std::vector<size_t>& perm) {
  auto an = a.node();
  const Shape& s = an->shape;
  if (perm.size() != s.size()) {
    throw std::invalid_argument("permute: perm rank mismatch");
  }
  Shape out_shape(s.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] >= s.size()) throw std::invalid_argument("permute: bad index");
    out_shape[i] = s[perm[i]];
  }
  const auto in_strides = row_major_strides(s);
  const size_t n = an->value.size();
  // Gather with an incrementally-maintained source offset — no O(n) src_of
  // table in either mode. When the innermost dim stays innermost (every
  // permute the attention head split/merge does), copy whole contiguous runs
  // instead of single elements. The backward walks the identical index
  // sequence, so grads scatter in exactly the ascending-output order the old
  // table-based closure used.
  const bool last_fixed =
      !perm.empty() && perm.back() == s.size() - 1 && s.back() > 1;
  const size_t run = last_fixed ? s.back() : 1;
  const size_t outer_rank =
      last_fixed ? out_shape.size() - 1 : out_shape.size();
  // Source stride of each outer output dim; parked in the closure (pooled).
  std::vector<size_t> ostr = BufferPool::acquire_idx(outer_rank);
  for (size_t d = 0; d < outer_rank; ++d) ostr[d] = in_strides[perm[d]];
  std::vector<float> out = alloc_out(n);
  {
    std::vector<size_t> idx = BufferPool::acquire_idx(outer_rank);
    std::fill(idx.begin(), idx.end(), 0);
    size_t off = 0;
    const float* __restrict src = an->value.data();
    float* __restrict dst = out.data();
    for (size_t i = 0; i < n; i += run) {
      for (size_t j = 0; j < run; ++j) dst[i + j] = src[off + j];
      for (size_t d = outer_rank; d-- > 0;) {
        ++idx[d];
        off += ostr[d];
        if (idx[d] < out_shape[d]) break;
        off -= out_shape[d] * ostr[d];
        idx[d] = 0;
      }
    }
    BufferPool::release_idx(std::move(idx));
  }
  Tensor r = make_op_result(
      std::move(out_shape), std::move(out), {an},
      [an, run, outer_rank, ostr = PooledIdx(std::move(ostr))](Node& self) {
        if (!an->requires_grad) return;
        an->ensure_grad();
        std::vector<size_t> idx = BufferPool::acquire_idx(outer_rank);
        std::fill(idx.begin(), idx.end(), 0);
        size_t off = 0;
        const size_t n2 = self.grad.size();
        for (size_t i = 0; i < n2; i += run) {
          for (size_t j = 0; j < run; ++j) {
            an->grad[off + j] += self.grad[i + j];
          }
          for (size_t d = outer_rank; d-- > 0;) {
            ++idx[d];
            off += ostr[d];
            if (idx[d] < self.shape[d]) break;
            off -= self.shape[d] * ostr[d];
            idx[d] = 0;
          }
        }
        BufferPool::release_idx(std::move(idx));
      });
  plan::trace_permute(r, a, perm);
  return r;
}

Tensor transpose_last(const Tensor& a) {
  const size_t r = a.rank();
  if (r < 2) throw std::invalid_argument("transpose_last: rank must be >= 2");
  std::vector<size_t> perm(r);
  for (size_t i = 0; i < r; ++i) perm[i] = i;
  std::swap(perm[r - 1], perm[r - 2]);
  return permute(a, perm);
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_rows: empty input");
  const Shape& first = parts[0].shape();
  if (first.empty()) throw std::invalid_argument("concat_rows: rank >= 1");
  Shape out_shape = first;
  size_t rows = 0;
  size_t row_elems = numel(first) / first[0];
  NodeList parents;
  for (const auto& p : parts) {
    const Shape& s = p.shape();
    if (s.size() != first.size() || numel(s) / s[0] != row_elems) {
      throw std::invalid_argument("concat_rows: trailing shape mismatch");
    }
    rows += s[0];
    parents.push_back(p.node());
  }
  out_shape[0] = rows;
  // Multi-parent concatenation has no plan instruction; a trace crossing it
  // falls back to eager permanently.
  plan::trace_unplannable("concat_rows");
  std::vector<float> out = alloc_out(rows * row_elems);
  size_t woff = 0;
  for (const auto& p : parents) {
    std::copy(p->value.begin(), p->value.end(), out.begin() + woff);
    woff += p->value.size();
  }
  return make_op_result(std::move(out_shape), std::move(out), parents,
                        [parents](Node& self) {
                          size_t off = 0;
                          for (const auto& p : parents) {
                            if (p->requires_grad) {
                              p->ensure_grad();
                              for (size_t i = 0; i < p->value.size(); ++i) {
                                p->grad[i] += self.grad[off + i];
                              }
                            }
                            off += p->value.size();
                          }
                        });
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  if (pred.shape() != target.shape()) {
    throw std::invalid_argument("mse_loss: shape mismatch " +
                                shape_str(pred.shape()) + " vs " +
                                shape_str(target.shape()));
  }
  return mean(square(sub(pred, target)));
}

Tensor l1_loss(const Tensor& pred, const Tensor& target) {
  if (pred.shape() != target.shape()) {
    throw std::invalid_argument("l1_loss: shape mismatch");
  }
  Tensor d = sub(pred, target);
  Tensor absd = unary(d, [](float x) { return std::fabs(x); },
                      [](float x, float) { return x >= 0.0F ? 1.0F : -1.0F; });
  plan::trace_unary(plan::UnFn::kAbs, absd, d);
  return mean(absd);
}

Tensor dropout(const Tensor& a, float p, Rng& rng, bool train) {
  if (p < 0.0F || p >= 1.0F) {
    throw std::invalid_argument("dropout: p must be in [0, 1)");
  }
  if (!train || p == 0.0F) return a;  // identity: invisible to a trace
  // An active dropout draws fresh randomness per call — not replayable from
  // a static schedule.
  plan::trace_unplannable("dropout");
  auto an = a.node();
  const float scale = 1.0F / (1.0F - p);
  std::vector<float> mask = alloc_out(an->value.size());
  for (auto& m : mask) m = rng.uniform() < p ? 0.0F : scale;
  std::vector<float> out = alloc_out(an->value.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = an->value[i] * mask[i];
  return make_op_result(an->shape, std::move(out), {an},
                        [an, mask = PooledVec(std::move(mask))](Node& self) {
                          if (!an->requires_grad) return;
                          an->ensure_grad();
                          for (size_t i = 0; i < self.grad.size(); ++i) {
                            an->grad[i] += self.grad[i] * mask[i];
                          }
                        });
}

}  // namespace metadse::tensor
