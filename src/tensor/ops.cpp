#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"

namespace metadse::tensor {

namespace {

constexpr float kGeluC = 0.7978845608028654F;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715F;

// -- blocked GEMM kernels ----------------------------------------------------
//
// The three kernels below (C = A*B, dA = dC*B^T, dB = A^T*dC) partition one
// index axis into contiguous row blocks across the thread pool and tile the
// reduction axis for cache reuse. Every output element accumulates its
// reduction terms in ascending order regardless of block boundaries or tile
// size, so results are bitwise identical to the serial triple loop for any
// thread count. The gradient kernels give each thread exclusive ownership of
// an output row *across all batches* (batch iterated innermost-serially):
// when a broadcast batch maps several batch indices onto the same gradient
// matrix, the accumulation order per element still matches the serial
// bi-major order.

/// Reduction-axis tile: K-slices of B this wide stay resident in L1/L2
/// while a row block streams over them.
constexpr size_t kGemmKTile = 64;

/// Minimum multiply-adds worth shipping to a worker; below this a block is
/// not worth the handoff and the grain forces the inline path.
constexpr size_t kGemmGrainFlops = 1 << 14;

size_t gemm_row_grain(size_t flops_per_row) {
  return std::max<size_t>(1, kGemmGrainFlops / std::max<size_t>(1, flops_per_row));
}

/// C[bi] += A[bi] * B[bi] for all batches, rows split across the pool.
void gemm_forward(const float* a, const float* b, float* c,
                  const std::vector<size_t>& aoff,
                  const std::vector<size_t>& boff, size_t M, size_t K,
                  size_t N) {
  const size_t nb = aoff.size();
  const size_t o_mat = M * N;
  core::parallel_for_blocks(M, gemm_row_grain(K * N * nb), [&](size_t m0,
                                                               size_t m1) {
    for (size_t bi = 0; bi < nb; ++bi) {
      const float* pa = a + aoff[bi];
      const float* pb = b + boff[bi];
      float* po = c + bi * o_mat;
      for (size_t k0 = 0; k0 < K; k0 += kGemmKTile) {
        const size_t k1 = std::min(K, k0 + kGemmKTile);
        for (size_t m = m0; m < m1; ++m) {
          const float* pam = pa + m * K;
          float* pom = po + m * N;
          for (size_t k = k0; k < k1; ++k) {
            const float av = pam[k];
            const float* pbk = pb + k * N;
            for (size_t n = 0; n < N; ++n) pom[n] += av * pbk[n];
          }
        }
      }
    }
  });
}

/// dA[bi] += dC[bi] * B[bi]^T; a thread owns rows [m0, m1) of dA for every
/// batch, so broadcast-shared dA rows accumulate in serial bi-major order.
void gemm_backward_a(const float* go, const float* b, float* da,
                     const std::vector<size_t>& aoff,
                     const std::vector<size_t>& boff, size_t M, size_t K,
                     size_t N) {
  const size_t nb = aoff.size();
  const size_t o_mat = M * N;
  core::parallel_for_blocks(M, gemm_row_grain(K * N * nb), [&](size_t m0,
                                                               size_t m1) {
    for (size_t bi = 0; bi < nb; ++bi) {
      const float* pb = b + boff[bi];
      const float* g = go + bi * o_mat;
      float* pda = da + aoff[bi];
      for (size_t m = m0; m < m1; ++m) {
        const float* gm = g + m * N;
        float* dam = pda + m * K;
        for (size_t n = 0; n < N; ++n) {
          const float gv = gm[n];
          const float* pbn = pb + n;
          for (size_t k = 0; k < K; ++k) dam[k] += gv * pbn[k * N];
        }
      }
    }
  });
}

/// dB[bi] += A[bi]^T * dC[bi]; a thread owns rows [k0, k1) of dB for every
/// batch (same broadcast-safety argument as gemm_backward_a).
void gemm_backward_b(const float* a, const float* go, float* db,
                     const std::vector<size_t>& aoff,
                     const std::vector<size_t>& boff, size_t M, size_t K,
                     size_t N) {
  const size_t nb = aoff.size();
  const size_t o_mat = M * N;
  core::parallel_for_blocks(K, gemm_row_grain(M * N * nb), [&](size_t k0,
                                                               size_t k1) {
    for (size_t bi = 0; bi < nb; ++bi) {
      const float* pa = a + aoff[bi];
      const float* g = go + bi * o_mat;
      float* pdb = db + boff[bi];
      for (size_t k = k0; k < k1; ++k) {
        float* dbk = pdb + k * N;
        for (size_t m = 0; m < M; ++m) {
          const float av = pa[m * K + k];
          const float* gm = g + m * N;
          for (size_t n = 0; n < N; ++n) dbk[n] += av * gm[n];
        }
      }
    }
  });
}

/// Iterates the linear indices of two inputs broadcast to a common output
/// shape. Offsets are recomputed per element from the multi-index; shapes in
/// this library are small enough that clarity wins over stride tricks.
struct BcastIter {
  Shape out;
  std::vector<size_t> sa, sb, idx;
  size_t n;

  BcastIter(const Shape& a, const Shape& b)
      : out(broadcast_shape(a, b)),
        sa(broadcast_strides(a, out)),
        sb(broadcast_strides(b, out)),
        idx(out.size(), 0),
        n(numel(out)) {}

  size_t offset_a() const { return dot(sa); }
  size_t offset_b() const { return dot(sb); }

  void advance() {
    for (size_t d = out.size(); d-- > 0;) {
      if (++idx[d] < out[d]) return;
      idx[d] = 0;
    }
  }

 private:
  size_t dot(const std::vector<size_t>& st) const {
    size_t off = 0;
    for (size_t d = 0; d < idx.size(); ++d) off += idx[d] * st[d];
    return off;
  }
};

void accumulate_into(const std::shared_ptr<Node>& p, size_t off, float g) {
  p->grad[off] += g;
}

/// Generic broadcast binary op. fwd(x,y) computes the value; dfa/dfb compute
/// d out/d a and d out/d b given (a_val, b_val, out_val).
template <typename Fwd, typename Dfa, typename Dfb>
Tensor binary_bcast(const Tensor& a, const Tensor& b, Fwd fwd, Dfa dfa,
                    Dfb dfb) {
  auto an = a.node();
  auto bn = b.node();
  BcastIter it(an->shape, bn->shape);
  std::vector<float> out(it.n);
  {
    BcastIter f(an->shape, bn->shape);
    for (size_t i = 0; i < f.n; ++i, f.advance()) {
      out[i] = fwd(an->value[f.offset_a()], bn->value[f.offset_b()]);
    }
  }
  Shape out_shape = it.out;
  return make_op_result(
      out_shape, std::move(out), {an, bn},
      [an, bn, dfa, dfb](Node& self) {
        BcastIter g(an->shape, bn->shape);
        const bool ga = an->requires_grad;
        const bool gb = bn->requires_grad;
        if (ga) an->ensure_grad();
        if (gb) bn->ensure_grad();
        for (size_t i = 0; i < g.n; ++i, g.advance()) {
          const float av = an->value[g.offset_a()];
          const float bv = bn->value[g.offset_b()];
          const float go = self.grad[i];
          if (ga) accumulate_into(an, g.offset_a(), go * dfa(av, bv, self.value[i]));
          if (gb) accumulate_into(bn, g.offset_b(), go * dfb(av, bv, self.value[i]));
        }
      });
}

/// Generic elementwise unary op; dfn receives (x, y) and returns dy/dx.
template <typename Fwd, typename Dfn>
Tensor unary(const Tensor& a, Fwd fwd, Dfn dfn) {
  auto an = a.node();
  std::vector<float> out(an->value.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = fwd(an->value[i]);
  return make_op_result(an->shape, std::move(out), {an},
                        [an, dfn](Node& self) {
                          if (!an->requires_grad) return;
                          an->ensure_grad();
                          for (size_t i = 0; i < self.value.size(); ++i) {
                            an->grad[i] +=
                                self.grad[i] * dfn(an->value[i], self.value[i]);
                          }
                        });
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_bcast(
      a, b, [](float x, float y) { return x + y; },
      [](float, float, float) { return 1.0F; },
      [](float, float, float) { return 1.0F; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_bcast(
      a, b, [](float x, float y) { return x - y; },
      [](float, float, float) { return 1.0F; },
      [](float, float, float) { return -1.0F; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_bcast(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y, float) { return y; },
      [](float x, float, float) { return x; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binary_bcast(
      a, b, [](float x, float y) { return x / y; },
      [](float, float y, float) { return 1.0F / y; },
      [](float x, float y, float) { return -x / (y * y); });
}

Tensor add(const Tensor& a, float b) { return add(a, Tensor::scalar(b)); }
Tensor sub(const Tensor& a, float b) { return sub(a, Tensor::scalar(b)); }
Tensor mul(const Tensor& a, float b) { return mul(a, Tensor::scalar(b)); }
Tensor div(const Tensor& a, float b) { return div(a, Tensor::scalar(b)); }

Tensor neg(const Tensor& a) {
  return unary(a, [](float x) { return -x; },
               [](float, float) { return -1.0F; });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  auto an = a.node();
  auto bn = b.node();
  if (an->shape.size() < 2 || bn->shape.size() < 2) {
    throw std::invalid_argument("matmul: inputs must have rank >= 2");
  }
  const size_t M = an->shape[an->shape.size() - 2];
  const size_t K = an->shape[an->shape.size() - 1];
  const size_t Kb = bn->shape[bn->shape.size() - 2];
  const size_t N = bn->shape[bn->shape.size() - 1];
  if (K != Kb) {
    throw std::invalid_argument("matmul: inner dims differ (" +
                                shape_str(an->shape) + " x " +
                                shape_str(bn->shape) + ")");
  }
  const Shape a_batch(an->shape.begin(), an->shape.end() - 2);
  const Shape b_batch(bn->shape.begin(), bn->shape.end() - 2);
  const Shape batch = broadcast_shape(a_batch, b_batch);
  const auto sa = broadcast_strides(a_batch, batch);
  const auto sb = broadcast_strides(b_batch, batch);
  const size_t nb = numel(batch);
  const size_t a_mat = M * K;
  const size_t b_mat = K * N;
  const size_t o_mat = M * N;

  // Per-batch base offsets for a and b (matrix strides folded in).
  std::vector<size_t> aoff(nb), boff(nb);
  {
    std::vector<size_t> idx(batch.size(), 0);
    for (size_t i = 0; i < nb; ++i) {
      size_t oa = 0;
      size_t ob = 0;
      for (size_t d = 0; d < batch.size(); ++d) {
        oa += idx[d] * sa[d];
        ob += idx[d] * sb[d];
      }
      aoff[i] = oa * a_mat;
      boff[i] = ob * b_mat;
      for (size_t d = batch.size(); d-- > 0;) {
        if (++idx[d] < batch[d]) break;
        idx[d] = 0;
      }
    }
  }

  Shape out_shape = batch;
  out_shape.push_back(M);
  out_shape.push_back(N);
  std::vector<float> out(nb * o_mat, 0.0F);
  gemm_forward(an->value.data(), bn->value.data(), out.data(), aoff, boff, M,
               K, N);

  return make_op_result(
      std::move(out_shape), std::move(out), {an, bn},
      [an, bn, aoff, boff, M, K, N](Node& self) {
        const bool ga = an->requires_grad;
        const bool gb = bn->requires_grad;
        if (ga) an->ensure_grad();
        if (gb) bn->ensure_grad();
        if (ga) {
          // dA = dOut * B^T
          gemm_backward_a(self.grad.data(), bn->value.data(),
                          an->grad.data(), aoff, boff, M, K, N);
        }
        if (gb) {
          // dB = A^T * dOut
          gemm_backward_b(an->value.data(), self.grad.data(),
                          bn->grad.data(), aoff, boff, M, K, N);
        }
      });
}

Tensor relu(const Tensor& a) {
  return unary(a, [](float x) { return x > 0.0F ? x : 0.0F; },
               [](float x, float) { return x > 0.0F ? 1.0F : 0.0F; });
}

Tensor gelu(const Tensor& a) {
  return unary(
      a,
      [](float x) {
        const float t = std::tanh(kGeluC * (x + kGeluA * x * x * x));
        return 0.5F * x * (1.0F + t);
      },
      [](float x, float) {
        const float u = kGeluC * (x + kGeluA * x * x * x);
        const float t = std::tanh(u);
        const float du = kGeluC * (1.0F + 3.0F * kGeluA * x * x);
        return 0.5F * (1.0F + t) + 0.5F * x * (1.0F - t * t) * du;
      });
}

Tensor tanh(const Tensor& a) {
  return unary(a, [](float x) { return std::tanh(x); },
               [](float, float y) { return 1.0F - y * y; });
}

Tensor sigmoid(const Tensor& a) {
  return unary(a, [](float x) { return 1.0F / (1.0F + std::exp(-x)); },
               [](float, float y) { return y * (1.0F - y); });
}

Tensor exp(const Tensor& a) {
  return unary(a, [](float x) { return std::exp(x); },
               [](float, float y) { return y; });
}

Tensor log(const Tensor& a) {
  return unary(a, [](float x) { return std::log(x); },
               [](float x, float) { return 1.0F / x; });
}

Tensor square(const Tensor& a) {
  return unary(a, [](float x) { return x * x; },
               [](float x, float) { return 2.0F * x; });
}

Tensor softmax_lastdim(const Tensor& a) {
  auto an = a.node();
  if (an->shape.empty()) {
    throw std::invalid_argument("softmax_lastdim: rank must be >= 1");
  }
  const size_t L = an->shape.back();
  const size_t rows = an->value.size() / L;
  std::vector<float> out(an->value.size());
  for (size_t r = 0; r < rows; ++r) {
    const float* x = an->value.data() + r * L;
    float* y = out.data() + r * L;
    float mx = x[0];
    for (size_t i = 1; i < L; ++i) mx = std::max(mx, x[i]);
    float denom = 0.0F;
    for (size_t i = 0; i < L; ++i) {
      y[i] = std::exp(x[i] - mx);
      denom += y[i];
    }
    for (size_t i = 0; i < L; ++i) y[i] /= denom;
  }
  return make_op_result(
      an->shape, std::move(out), {an}, [an, L, rows](Node& self) {
        if (!an->requires_grad) return;
        an->ensure_grad();
        for (size_t r = 0; r < rows; ++r) {
          const float* y = self.value.data() + r * L;
          const float* g = self.grad.data() + r * L;
          float* dx = an->grad.data() + r * L;
          float dot = 0.0F;
          for (size_t i = 0; i < L; ++i) dot += y[i] * g[i];
          for (size_t i = 0; i < L; ++i) dx[i] += y[i] * (g[i] - dot);
        }
      });
}

Tensor layer_norm_lastdim(const Tensor& a, float eps) {
  auto an = a.node();
  if (an->shape.empty()) {
    throw std::invalid_argument("layer_norm_lastdim: rank must be >= 1");
  }
  const size_t L = an->shape.back();
  const size_t rows = an->value.size() / L;
  std::vector<float> out(an->value.size());
  std::vector<float> inv_std(rows);
  for (size_t r = 0; r < rows; ++r) {
    const float* x = an->value.data() + r * L;
    float* y = out.data() + r * L;
    float mu = 0.0F;
    for (size_t i = 0; i < L; ++i) mu += x[i];
    mu /= static_cast<float>(L);
    float var = 0.0F;
    for (size_t i = 0; i < L; ++i) var += (x[i] - mu) * (x[i] - mu);
    var /= static_cast<float>(L);
    const float is = 1.0F / std::sqrt(var + eps);
    inv_std[r] = is;
    for (size_t i = 0; i < L; ++i) y[i] = (x[i] - mu) * is;
  }
  return make_op_result(
      an->shape, std::move(out), {an},
      [an, L, rows, inv_std = std::move(inv_std)](Node& self) {
        if (!an->requires_grad) return;
        an->ensure_grad();
        const float invL = 1.0F / static_cast<float>(L);
        for (size_t r = 0; r < rows; ++r) {
          const float* y = self.value.data() + r * L;
          const float* g = self.grad.data() + r * L;
          float* dx = an->grad.data() + r * L;
          float gmean = 0.0F;
          float gymean = 0.0F;
          for (size_t i = 0; i < L; ++i) {
            gmean += g[i];
            gymean += g[i] * y[i];
          }
          gmean *= invL;
          gymean *= invL;
          for (size_t i = 0; i < L; ++i) {
            dx[i] += inv_std[r] * (g[i] - gmean - y[i] * gymean);
          }
        }
      });
}

Tensor sum(const Tensor& a) {
  auto an = a.node();
  float s = 0.0F;
  for (float v : an->value) s += v;
  return make_op_result({}, {s}, {an}, [an](Node& self) {
    if (!an->requires_grad) return;
    an->ensure_grad();
    const float g = self.grad[0];
    for (auto& dv : an->grad) dv += g;
  });
}

Tensor mean(const Tensor& a) { return div(sum(a), static_cast<float>(a.size())); }

Tensor sum_axis(const Tensor& a, size_t axis, bool keepdim) {
  auto an = a.node();
  const Shape& s = an->shape;
  if (axis >= s.size()) throw std::invalid_argument("sum_axis: bad axis");
  size_t outer = 1;
  size_t inner = 1;
  for (size_t d = 0; d < axis; ++d) outer *= s[d];
  for (size_t d = axis + 1; d < s.size(); ++d) inner *= s[d];
  const size_t ax = s[axis];
  Shape out_shape;
  for (size_t d = 0; d < s.size(); ++d) {
    if (d == axis) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(s[d]);
    }
  }
  std::vector<float> out(outer * inner, 0.0F);
  for (size_t o = 0; o < outer; ++o) {
    for (size_t x = 0; x < ax; ++x) {
      const float* src = an->value.data() + (o * ax + x) * inner;
      float* dst = out.data() + o * inner;
      for (size_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  return make_op_result(std::move(out_shape), std::move(out), {an},
                        [an, outer, inner, ax](Node& self) {
                          if (!an->requires_grad) return;
                          an->ensure_grad();
                          for (size_t o = 0; o < outer; ++o) {
                            const float* g = self.grad.data() + o * inner;
                            for (size_t x = 0; x < ax; ++x) {
                              float* dst =
                                  an->grad.data() + (o * ax + x) * inner;
                              for (size_t i = 0; i < inner; ++i) dst[i] += g[i];
                            }
                          }
                        });
}

Tensor mean_axis(const Tensor& a, size_t axis, bool keepdim) {
  const float n = static_cast<float>(a.shape().at(axis));
  return div(sum_axis(a, axis, keepdim), n);
}

Tensor reshape(const Tensor& a, Shape shape) {
  auto an = a.node();
  if (numel(shape) != an->value.size()) {
    throw std::invalid_argument("reshape: numel mismatch " +
                                shape_str(an->shape) + " -> " +
                                shape_str(shape));
  }
  std::vector<float> out = an->value;
  return make_op_result(std::move(shape), std::move(out), {an},
                        [an](Node& self) {
                          if (!an->requires_grad) return;
                          an->ensure_grad();
                          for (size_t i = 0; i < self.grad.size(); ++i) {
                            an->grad[i] += self.grad[i];
                          }
                        });
}

Tensor permute(const Tensor& a, const std::vector<size_t>& perm) {
  auto an = a.node();
  const Shape& s = an->shape;
  if (perm.size() != s.size()) {
    throw std::invalid_argument("permute: perm rank mismatch");
  }
  Shape out_shape(s.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] >= s.size()) throw std::invalid_argument("permute: bad index");
    out_shape[i] = s[perm[i]];
  }
  const auto in_strides = row_major_strides(s);
  const auto out_strides = row_major_strides(out_shape);
  const size_t n = an->value.size();
  // src linear offset for each out linear offset
  std::vector<size_t> src_of(n);
  std::vector<size_t> idx(out_shape.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    size_t off = 0;
    for (size_t d = 0; d < idx.size(); ++d) off += idx[d] * in_strides[perm[d]];
    src_of[i] = off;
    for (size_t d = idx.size(); d-- > 0;) {
      if (++idx[d] < out_shape[d]) break;
      idx[d] = 0;
    }
  }
  std::vector<float> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = an->value[src_of[i]];
  return make_op_result(std::move(out_shape), std::move(out), {an},
                        [an, src_of = std::move(src_of)](Node& self) {
                          if (!an->requires_grad) return;
                          an->ensure_grad();
                          for (size_t i = 0; i < self.grad.size(); ++i) {
                            an->grad[src_of[i]] += self.grad[i];
                          }
                        });
}

Tensor transpose_last(const Tensor& a) {
  const size_t r = a.rank();
  if (r < 2) throw std::invalid_argument("transpose_last: rank must be >= 2");
  std::vector<size_t> perm(r);
  for (size_t i = 0; i < r; ++i) perm[i] = i;
  std::swap(perm[r - 1], perm[r - 2]);
  return permute(a, perm);
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_rows: empty input");
  const Shape& first = parts[0].shape();
  if (first.empty()) throw std::invalid_argument("concat_rows: rank >= 1");
  Shape out_shape = first;
  size_t rows = 0;
  size_t row_elems = numel(first) / first[0];
  std::vector<std::shared_ptr<Node>> parents;
  for (const auto& p : parts) {
    const Shape& s = p.shape();
    if (s.size() != first.size() || numel(s) / s[0] != row_elems) {
      throw std::invalid_argument("concat_rows: trailing shape mismatch");
    }
    rows += s[0];
    parents.push_back(p.node());
  }
  out_shape[0] = rows;
  std::vector<float> out;
  out.reserve(rows * row_elems);
  for (const auto& p : parents) {
    out.insert(out.end(), p->value.begin(), p->value.end());
  }
  return make_op_result(std::move(out_shape), std::move(out), parents,
                        [parents](Node& self) {
                          size_t off = 0;
                          for (const auto& p : parents) {
                            if (p->requires_grad) {
                              p->ensure_grad();
                              for (size_t i = 0; i < p->value.size(); ++i) {
                                p->grad[i] += self.grad[off + i];
                              }
                            }
                            off += p->value.size();
                          }
                        });
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  if (pred.shape() != target.shape()) {
    throw std::invalid_argument("mse_loss: shape mismatch " +
                                shape_str(pred.shape()) + " vs " +
                                shape_str(target.shape()));
  }
  return mean(square(sub(pred, target)));
}

Tensor l1_loss(const Tensor& pred, const Tensor& target) {
  if (pred.shape() != target.shape()) {
    throw std::invalid_argument("l1_loss: shape mismatch");
  }
  Tensor d = sub(pred, target);
  Tensor absd = unary(d, [](float x) { return std::fabs(x); },
                      [](float x, float) { return x >= 0.0F ? 1.0F : -1.0F; });
  return mean(absd);
}

Tensor dropout(const Tensor& a, float p, Rng& rng, bool train) {
  if (p < 0.0F || p >= 1.0F) {
    throw std::invalid_argument("dropout: p must be in [0, 1)");
  }
  if (!train || p == 0.0F) return a;
  auto an = a.node();
  const float scale = 1.0F / (1.0F - p);
  std::vector<float> mask(an->value.size());
  for (auto& m : mask) m = rng.uniform() < p ? 0.0F : scale;
  std::vector<float> out(an->value.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = an->value[i] * mask[i];
  return make_op_result(an->shape, std::move(out), {an},
                        [an, mask = std::move(mask)](Node& self) {
                          if (!an->requires_grad) return;
                          an->ensure_grad();
                          for (size_t i = 0; i < self.grad.size(); ++i) {
                            an->grad[i] += self.grad[i] * mask[i];
                          }
                        });
}

}  // namespace metadse::tensor
