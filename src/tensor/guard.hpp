// Numerical guards for the training path: non-finite detection and
// global-norm gradient clipping. MAML's nested optimization amplifies any
// NaN/Inf produced by a bad sample or an exploding inner loop, so every
// gradient step in src/meta runs through these helpers.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace metadse::tensor {

/// True iff @p v contains a NaN or an infinity.
bool has_nonfinite(const std::vector<float>& v);

/// True iff the tensor's value buffer contains a NaN or an infinity.
bool has_nonfinite(const Tensor& t);

/// True iff any tensor's value buffer contains a NaN or an infinity.
bool any_nonfinite(const std::vector<Tensor>& tensors);

/// L2 norm over the concatenated gradient buffers of @p params. Parameters
/// whose gradient was never touched contribute zero. Returns NaN/Inf when a
/// gradient buffer holds non-finite entries (callers use this as a
/// combined magnitude + sanity probe).
double global_grad_norm(const std::vector<Tensor>& params);

/// Scales every gradient buffer of @p params by max_norm / global_norm when
/// the global norm exceeds @p max_norm (a no-op otherwise, including when
/// max_norm <= 0, which disables clipping). Returns the pre-clip global
/// norm. Non-finite norms are left untouched — detection, not repair, is
/// the divergence monitor's job.
double clip_global_grad_norm(const std::vector<Tensor>& params,
                             float max_norm);

}  // namespace metadse::tensor
