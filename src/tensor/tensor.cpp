#include "tensor/tensor.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace metadse::tensor {

void Node::ensure_grad() {
  if (grad.size() == value.size()) return;
  if (pooled) {
    BufferPool::release(std::move(grad));
    grad = BufferPool::acquire_zero(value.size());
  } else {
    grad.assign(value.size(), 0.0F);
  }
}

Node::~Node() {
  if (pooled) {
    BufferPool::release(std::move(value));
    BufferPool::release(std::move(grad));
  }
}

namespace {

thread_local bool g_grad_enabled = true;

}  // namespace

bool GradMode::enabled() { return g_grad_enabled; }

void GradMode::set_enabled(bool on) { g_grad_enabled = on; }

namespace {

std::shared_ptr<Node> make_leaf(Shape shape, std::vector<float> value,
                                bool requires_grad) {
  if (value.size() != numel(shape)) {
    throw std::invalid_argument("Tensor: data size " +
                                std::to_string(value.size()) +
                                " does not match shape " + shape_str(shape));
  }
  auto n = std::make_shared<Node>();
  n->shape = std::move(shape);
  n->value = std::move(value);
  n->requires_grad = requires_grad;
  return n;
}

}  // namespace

Tensor Tensor::zeros(Shape shape, bool requires_grad) {
  std::vector<float> v(numel(shape), 0.0F);
  return Tensor(make_leaf(std::move(shape), std::move(v), requires_grad));
}

Tensor Tensor::full(Shape shape, float val, bool requires_grad) {
  std::vector<float> v(numel(shape), val);
  return Tensor(make_leaf(std::move(shape), std::move(v), requires_grad));
}

Tensor Tensor::from_vector(Shape shape, std::vector<float> data,
                           bool requires_grad) {
  return Tensor(make_leaf(std::move(shape), std::move(data), requires_grad));
}

Tensor Tensor::scalar(float v, bool requires_grad) {
  return from_vector({}, {v}, requires_grad);
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev, bool requires_grad) {
  std::vector<float> v(numel(shape));
  for (auto& x : v) x = rng.normal(0.0F, stddev);
  return Tensor(make_leaf(std::move(shape), std::move(v), requires_grad));
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi,
                       bool requires_grad) {
  std::vector<float> v(numel(shape));
  for (auto& x : v) x = rng.uniform(lo, hi);
  return Tensor(make_leaf(std::move(shape), std::move(v), requires_grad));
}

const Shape& Tensor::shape() const {
  if (!n_) throw std::logic_error("Tensor: undefined");
  return n_->shape;
}

std::vector<float>& Tensor::data() {
  if (!n_) throw std::logic_error("Tensor: undefined");
  return n_->value;
}

const std::vector<float>& Tensor::data() const {
  if (!n_) throw std::logic_error("Tensor: undefined");
  return n_->value;
}

std::vector<float>& Tensor::grad() {
  if (!n_) throw std::logic_error("Tensor: undefined");
  n_->ensure_grad();
  return n_->grad;
}

bool Tensor::requires_grad() const { return n_ && n_->requires_grad; }

void Tensor::set_requires_grad(bool rg) {
  if (!n_) throw std::logic_error("Tensor: undefined");
  n_->requires_grad = rg;
}

float Tensor::item() const {
  if (size() != 1) {
    throw std::logic_error("Tensor::item: tensor has " +
                           std::to_string(size()) + " elements");
  }
  return data()[0];
}

float Tensor::at(std::initializer_list<size_t> idx) const {
  const Shape& s = shape();
  if (idx.size() != s.size()) {
    throw std::invalid_argument("Tensor::at: rank mismatch");
  }
  const auto strides = row_major_strides(s);
  size_t off = 0;
  size_t d = 0;
  for (size_t i : idx) {
    if (i >= s[d]) throw std::out_of_range("Tensor::at: index out of range");
    off += i * strides[d];
    ++d;
  }
  return data()[off];
}

namespace {

/// Open-addressing pointer set with the same membership semantics as the
/// unordered_set<Node*> it replaces, but with flat reusable storage: inserts
/// never allocate once the table has grown to the largest graph seen on this
/// thread, so steady-state backward() calls stay off the heap. Marks live in
/// the scratch table, never in the (possibly cross-thread shared) nodes.
struct VisitedSet {
  std::vector<Node*> slots;  ///< power-of-two table, nullptr = empty
  size_t count = 0;

  void reset() {
    if (slots.empty()) {
      slots.assign(1024, nullptr);
    } else {
      std::fill(slots.begin(), slots.end(), nullptr);
    }
    count = 0;
  }

  static size_t slot_hash(const Node* p) {
    return static_cast<size_t>(
        (reinterpret_cast<uintptr_t>(p) >> 4) * 0x9E3779B97F4A7C15ULL);
  }

  /// True when @p p was newly inserted (mirrors unordered_set::insert).
  bool insert(Node* p) {
    if (2 * (count + 1) > slots.size()) grow();
    const size_t mask = slots.size() - 1;
    for (size_t i = slot_hash(p) & mask;; i = (i + 1) & mask) {
      if (slots[i] == p) return false;
      if (slots[i] == nullptr) {
        slots[i] = p;
        ++count;
        return true;
      }
    }
  }

  void grow() {
    std::vector<Node*> old = std::move(slots);
    slots.assign(old.size() * 2, nullptr);
    const size_t mask = slots.size() - 1;
    for (Node* p : old) {
      if (p == nullptr) continue;
      size_t i = slot_hash(p) & mask;
      while (slots[i] != nullptr) i = (i + 1) & mask;
      slots[i] = p;
    }
  }
};

/// Per-thread backward() scratch, cleared (not freed) per call.
struct BackwardScratch {
  std::vector<Node*> topo;
  std::vector<std::pair<Node*, size_t>> stack;
  VisitedSet visited;
};

}  // namespace

void Tensor::backward() {
  if (!n_) throw std::logic_error("Tensor::backward: undefined tensor");
  if (size() != 1) {
    throw std::logic_error("Tensor::backward: root must be scalar-sized");
  }
  // Iterative post-order topological sort (recursion-free: graphs from the
  // MAML unrolled loops can be deep). The scratch is thread-local so the
  // inner-loop steps of an adaptation reuse its capacity.
  static thread_local BackwardScratch scratch;
  auto& topo = scratch.topo;
  auto& stack = scratch.stack;
  auto& visited = scratch.visited;
  topo.clear();
  stack.clear();
  visited.reset();
  stack.emplace_back(n_.get(), 0);
  visited.insert(n_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child++].get();
      if (visited.insert(child)) stack.emplace_back(child, 0);
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }
  n_->ensure_grad();
  n_->grad[0] = 1.0F;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->requires_grad) {
      node->ensure_grad();
      node->backward_fn(*node);
    }
  }
}

void Tensor::zero_grad() {
  if (!n_) return;
  if (!n_->grad.empty()) n_->grad.assign(n_->value.size(), 0.0F);
}

Tensor Tensor::detach() const {
  if (!n_) return {};
  return from_vector(n_->shape, n_->value, false);
}

namespace detail {

bool any_requires_grad(const NodeList& parents) {
  for (const auto& p : parents) {
    if (p && p->requires_grad) return true;
  }
  return false;
}

Tensor finish_op_result_grad(Shape shape, std::vector<float> value,
                             NodeList parents, BackwardFn backward_fn) {
  auto n = std::allocate_shared<Node>(PoolAlloc<Node>{});
  n->shape = std::move(shape);
  n->value = std::move(value);
  n->requires_grad = true;
  n->pooled = true;
  n->parents = std::move(parents);
  n->backward_fn = std::move(backward_fn);
  return Tensor(std::move(n));
}

Tensor make_inference_result(Shape shape, std::vector<float> value) {
  auto n = std::allocate_shared<Node>(PoolAlloc<Node>{});
  n->shape = std::move(shape);
  n->value = std::move(value);
  n->pooled = true;
  return Tensor(std::move(n));
}

}  // namespace detail

}  // namespace metadse::tensor
