#include "tensor/pool.hpp"

#include <new>
#include <utility>

namespace metadse::tensor {

namespace {

/// Free vectors newer than this many entries back are considered for reuse;
/// a deeper scan costs more than a fresh allocation saves.
constexpr size_t kScanDepth = 16;
/// Free-list bound: a forward pass of the repo's models keeps well under
/// this many buffers live, and the cap keeps a pathological workload from
/// hoarding memory.
constexpr size_t kMaxFreeVectors = 256;
constexpr size_t kMaxFreeBlocksPerSize = 1024;

struct PoolState {
  std::vector<std::vector<float>> vecs;  ///< LIFO free list
  /// Node blocks come in one or two distinct sizes (allocate_shared of Node),
  /// so a tiny size-keyed table beats a hash map.
  std::vector<std::pair<size_t, std::vector<void*>>> blocks;
  BufferPool::Stats stats;

  ~PoolState() {
    for (auto& [size, list] : blocks) {
      for (void* p : list) ::operator delete(p);
    }
  }

  std::vector<void*>* block_list(size_t bytes) {
    for (auto& [size, list] : blocks) {
      if (size == bytes) return &list;
    }
    blocks.emplace_back(bytes, std::vector<void*>{});
    return &blocks.back().second;
  }
};

PoolState& pool() {
  static thread_local PoolState state;
  return state;
}

/// Pops the most recent free vector with capacity >= n (bounded scan);
/// returns an empty vector when none qualifies.
std::vector<float> take_fitting(PoolState& p, size_t n) {
  auto& vecs = p.vecs;
  const size_t lo = vecs.size() > kScanDepth ? vecs.size() - kScanDepth : 0;
  for (size_t i = vecs.size(); i-- > lo;) {
    if (vecs[i].capacity() >= n) {
      std::vector<float> v = std::move(vecs[i]);
      vecs[i] = std::move(vecs.back());
      vecs.pop_back();
      return v;
    }
  }
  return {};
}

}  // namespace

std::vector<float> BufferPool::acquire(size_t n) {
  auto& p = pool();
  std::vector<float> v = take_fitting(p, n);
  if (v.capacity() >= n && n > 0) {
    ++p.stats.vec_reused;
    v.resize(n);
    return v;
  }
  ++p.stats.vec_allocated;
  return std::vector<float>(n);
}

std::vector<float> BufferPool::acquire_zero(size_t n) {
  auto& p = pool();
  std::vector<float> v = take_fitting(p, n);
  if (v.capacity() >= n && n > 0) {
    ++p.stats.vec_reused;
    v.assign(n, 0.0F);
    return v;
  }
  ++p.stats.vec_allocated;
  return std::vector<float>(n, 0.0F);
}

void BufferPool::release(std::vector<float>&& v) {
  if (v.capacity() == 0) return;
  auto& p = pool();
  if (p.vecs.size() >= kMaxFreeVectors) return;  // drop: vector frees itself
  p.vecs.push_back(std::move(v));
}

void* BufferPool::alloc_block(size_t bytes) {
  auto& p = pool();
  auto* list = p.block_list(bytes);
  if (!list->empty()) {
    void* b = list->back();
    list->pop_back();
    ++p.stats.block_reused;
    return b;
  }
  ++p.stats.block_allocated;
  return ::operator new(bytes);
}

void BufferPool::free_block(void* ptr, size_t bytes) {
  auto& p = pool();
  auto* list = p.block_list(bytes);
  if (list->size() >= kMaxFreeBlocksPerSize) {
    ::operator delete(ptr);
    return;
  }
  list->push_back(ptr);
}

void BufferPool::clear() {
  auto& p = pool();
  p.vecs.clear();
  for (auto& [size, list] : p.blocks) {
    for (void* ptr : list) ::operator delete(ptr);
    list.clear();
  }
}

BufferPool::Stats BufferPool::stats() { return pool().stats; }

void BufferPool::reset_stats() { pool().stats = {}; }

}  // namespace metadse::tensor
