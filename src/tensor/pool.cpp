#include "tensor/pool.hpp"

#include <algorithm>
#include <new>
#include <utility>

namespace metadse::tensor {

namespace {

/// Free vectors newer than this many entries back are considered for reuse;
/// a deeper scan costs more than a fresh allocation saves.
constexpr size_t kScanDepth = 32;
/// Free-list bound. Grad-mode graphs release every value + grad buffer of a
/// tape at once when the graph dies (a transformer fwd+bwd step returns a
/// couple hundred buffers), so the cap sits comfortably above that while
/// still keeping a pathological workload from hoarding memory.
constexpr size_t kMaxFreeVectors = 512;
constexpr size_t kMaxFreeIdxVectors = 256;
constexpr size_t kMaxFreeBlocksPerSize = 1024;

/// One capacity class of the float free list (LIFO within the class).
struct VecBucket {
  size_t capacity = 0;
  std::vector<std::vector<float>> vecs;
};

struct PoolState {
  /// Float buffers bucketed by exact capacity, sorted ascending. A training
  /// tape recycles a fixed set of sizes every step, so the exact-capacity
  /// lookup always hits in steady state; a flat newest-first scan would
  /// leave the step's few large buffers buried under the hundreds of small
  /// tape buffers released after them and re-allocate them forever.
  std::vector<VecBucket> vec_buckets;
  size_t free_vecs = 0;                   ///< total across all buckets
  std::vector<std::vector<size_t>> idxs;  ///< LIFO free list (index scratch)
  /// Node blocks come in a handful of distinct sizes (allocate_shared of
  /// Node, spilled closures), so a tiny size-keyed table beats a hash map.
  std::vector<std::pair<size_t, std::vector<void*>>> blocks;
  BufferPool::Stats stats;

  ~PoolState() {
    for (auto& [size, list] : blocks) {
      for (void* p : list) ::operator delete(p);
    }
  }

  std::vector<void*>* block_list(size_t bytes) {
    for (auto& [size, list] : blocks) {
      if (size == bytes) return &list;
    }
    blocks.emplace_back(bytes, std::vector<void*>{});
    return &blocks.back().second;
  }
};

PoolState& pool() {
  static thread_local PoolState state;
  return state;
}

/// Pops the most recent free vector with capacity >= n (bounded scan);
/// returns an empty vector when none qualifies.
template <typename V>
V take_fitting(std::vector<V>& vecs, size_t n) {
  const size_t lo = vecs.size() > kScanDepth ? vecs.size() - kScanDepth : 0;
  for (size_t i = vecs.size(); i-- > lo;) {
    if (vecs[i].capacity() >= n) {
      V v = std::move(vecs[i]);
      vecs[i] = std::move(vecs.back());
      vecs.pop_back();
      return v;
    }
  }
  return {};
}

/// Pops a free float vector with capacity >= n: the exact-capacity bucket
/// when it has stock, else the smallest larger one. Empty vector when the
/// pool has nothing big enough.
std::vector<float> take_vec(PoolState& p, size_t n) {
  auto it = std::lower_bound(
      p.vec_buckets.begin(), p.vec_buckets.end(), n,
      [](const VecBucket& bkt, size_t cap) { return bkt.capacity < cap; });
  for (; it != p.vec_buckets.end(); ++it) {
    if (it->vecs.empty()) continue;
    std::vector<float> v = std::move(it->vecs.back());
    it->vecs.pop_back();
    --p.free_vecs;
    return v;
  }
  return {};
}

}  // namespace

std::vector<float> BufferPool::acquire(size_t n) {
  if (n == 0) return {};  // no storage involved either way
  auto& p = pool();
  std::vector<float> v = take_vec(p, n);
  if (v.capacity() >= n) {
    ++p.stats.vec_reused;
    v.resize(n);
    return v;
  }
  ++p.stats.vec_allocated;
  return std::vector<float>(n);
}

std::vector<float> BufferPool::acquire_zero(size_t n) {
  if (n == 0) return {};
  auto& p = pool();
  std::vector<float> v = take_vec(p, n);
  if (v.capacity() >= n) {
    ++p.stats.vec_reused;
    v.assign(n, 0.0F);
    return v;
  }
  ++p.stats.vec_allocated;
  return std::vector<float>(n, 0.0F);
}

void BufferPool::release(std::vector<float>&& v) {
  if (v.capacity() == 0) return;
  auto& p = pool();
  if (p.free_vecs >= kMaxFreeVectors) return;  // drop: vector frees itself
  auto it = std::lower_bound(
      p.vec_buckets.begin(), p.vec_buckets.end(), v.capacity(),
      [](const VecBucket& bkt, size_t cap) { return bkt.capacity < cap; });
  if (it == p.vec_buckets.end() || it->capacity != v.capacity()) {
    it = p.vec_buckets.insert(it, VecBucket{v.capacity(), {}});
  }
  it->vecs.push_back(std::move(v));
  ++p.free_vecs;
}

std::vector<size_t> BufferPool::acquire_idx(size_t n) {
  if (n == 0) return {};
  auto& p = pool();
  std::vector<size_t> v = take_fitting(p.idxs, n);
  if (v.capacity() >= n) {
    ++p.stats.idx_reused;
    v.resize(n);
    return v;
  }
  ++p.stats.idx_allocated;
  return std::vector<size_t>(n);
}

void BufferPool::release_idx(std::vector<size_t>&& v) {
  if (v.capacity() == 0) return;
  auto& p = pool();
  if (p.idxs.size() >= kMaxFreeIdxVectors) return;
  p.idxs.push_back(std::move(v));
}

void* BufferPool::alloc_block(size_t bytes) {
  auto& p = pool();
  auto* list = p.block_list(bytes);
  if (!list->empty()) {
    void* b = list->back();
    list->pop_back();
    ++p.stats.block_reused;
    return b;
  }
  ++p.stats.block_allocated;
  return ::operator new(bytes);
}

void BufferPool::free_block(void* ptr, size_t bytes) {
  auto& p = pool();
  auto* list = p.block_list(bytes);
  if (list->size() >= kMaxFreeBlocksPerSize) {
    ::operator delete(ptr);
    return;
  }
  list->push_back(ptr);
}

void BufferPool::clear() {
  auto& p = pool();
  p.vec_buckets.clear();
  p.free_vecs = 0;
  p.idxs.clear();
  for (auto& [size, list] : p.blocks) {
    for (void* ptr : list) ::operator delete(ptr);
    list.clear();
  }
}

BufferPool::Stats BufferPool::stats() { return pool().stats; }

void BufferPool::reset_stats() { pool().stats = {}; }

}  // namespace metadse::tensor
