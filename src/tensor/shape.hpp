// Shape utilities: row-major strides, NumPy-style broadcasting, formatting.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace metadse::tensor {

/// A tensor shape: extents per dimension, outermost first (row-major).
using Shape = std::vector<size_t>;

/// Total number of elements described by @p s (1 for a scalar / empty shape).
inline size_t numel(const Shape& s) {
  size_t n = 1;
  for (size_t d : s) n *= d;
  return n;
}

/// Row-major strides for @p s (stride of the last dim is 1).
inline std::vector<size_t> row_major_strides(const Shape& s) {
  std::vector<size_t> st(s.size(), 1);
  for (size_t i = s.size(); i-- > 1;) st[i - 1] = st[i] * s[i];
  return st;
}

/// Human-readable "[a, b, c]" rendering of a shape.
inline std::string shape_str(const Shape& s) {
  std::string out = "[";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(s[i]);
  }
  return out + "]";
}

/// NumPy-style broadcast of two shapes; throws std::invalid_argument when the
/// shapes are incompatible (a dim must match or be 1 after right-alignment).
inline Shape broadcast_shape(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  Shape out(rank, 1);
  for (size_t i = 0; i < rank; ++i) {
    const size_t da = i < a.size() ? a[a.size() - 1 - i] : 1;
    const size_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    if (da != db && da != 1 && db != 1) {
      throw std::invalid_argument("broadcast_shape: incompatible shapes " +
                                  shape_str(a) + " vs " + shape_str(b));
    }
    out[rank - 1 - i] = std::max(da, db);
  }
  return out;
}

/// Strides for reading a tensor of shape @p in as if broadcast to @p out:
/// broadcast dimensions get stride 0. @p in must be broadcastable to @p out.
inline std::vector<size_t> broadcast_strides(const Shape& in, const Shape& out) {
  const auto in_st = row_major_strides(in);
  std::vector<size_t> st(out.size(), 0);
  for (size_t i = 0; i < out.size(); ++i) {
    const size_t ri = out.size() - 1 - i;  // aligned from the right
    if (i < in.size()) {
      const size_t din = in[in.size() - 1 - i];
      if (din == out[ri]) {
        st[ri] = in_st[in.size() - 1 - i];
      } else if (din == 1) {
        st[ri] = 0;
      } else {
        throw std::invalid_argument("broadcast_strides: cannot broadcast " +
                                    shape_str(in) + " to " + shape_str(out));
      }
    }
  }
  return st;
}

}  // namespace metadse::tensor
