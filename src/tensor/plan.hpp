// Static execution plans: trace one eager forward into a fixed op schedule,
// compile it once (fusion passes + static memory plan with buffer
// lifetime/aliasing analysis), then execute it with zero allocations and
// zero graph construction.
//
// Layering: this file is pure mechanism and knows nothing about models. The
// eager ops in ops.cpp call the trace_* hooks (no-ops unless a Tracer is
// installed on this thread), producing a linear SSA record of the forward.
// compile() turns those records plus a caller-supplied leaf binding
// (input / external slots) into an immutable CompiledProgram; ProgramExec
// binds one program to concrete parameter pointers and runs it. Policy —
// which leaves are parameters, plan keys, caches, the training tape replay —
// lives in nn/plan.hpp.
//
// Bitwise policy: the executor calls the same inline kernels (kernels.hpp)
// as the eager ops, and every fusion pass preserves each output element's
// exact rounding sequence (see DESIGN.md §13), so planned execution is
// bitwise identical to the eager path at any thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"

namespace metadse::tensor::plan {

// -- trace records -----------------------------------------------------------

enum class OpKind : uint8_t {
  kConst,
  kBinary,
  kUnary,
  kMatmul,    // flag distinguishes nt
  kSoftmax,
  kSoftmaxMasked,
  kLayerNorm,
  kLayerNormAffine,
  kBiasGelu,
  kReduceAll,   // fn: 0 sum, 1 mean
  kReduceAxis,  // fn: 0 sum, 1 mean
  kReshape,
  kPermute,
};

enum class BinFn : uint8_t { kAdd, kSub, kMul, kDiv };
enum class UnFn : uint8_t {
  kNeg,
  kRelu,
  kGelu,
  kTanh,
  kSigmoid,
  kExp,
  kLog,
  kSquare,
  kAbs,
};

/// One traced op. Holds shared_ptrs to its nodes so no-grad intermediates
/// stay alive (and distinguishable by address) until compile() runs; this
/// also disables the rvalue-reshape buffer steal during a trace, which is
/// harmless — the compiler aliases reshapes anyway.
struct TraceRec {
  OpKind kind{};
  uint8_t fn = 0;      // BinFn / UnFn / reduce mean flag
  bool flag = false;   // matmul: nt; reduce_axis: keepdim
  float f0 = 0.0F;     // eps
  size_t axis = 0;     // reduce_axis
  std::vector<size_t> perm;
  std::shared_ptr<Node> out;
  std::shared_ptr<Node> a, b, c;
  // Raw pointers into the pooled backward-closure stashes (normed/inv_std,
  // pre-mask softmax/regularized mass). The training replay refreshes these
  // in place so the captured closures keep seeing current values. Null when
  // the op recorded no stash (no-grad, or operand does not require grad).
  float* stash0 = nullptr;
  float* stash1 = nullptr;
};

/// RAII trace scope: installing a Tracer makes every eager op on this thread
/// append a TraceRec. Single-level (no nesting); the destructor restores the
/// previous (normally null) tracer.
class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool failed() const { return failed_; }
  const std::string& reason() const { return reason_; }
  std::vector<TraceRec>& records() { return recs_; }
  const std::vector<TraceRec>& records() const { return recs_; }

  /// Marks the trace unusable (op with side effects or untraceable
  /// semantics, e.g. attention capture). Recording continues but compile()
  /// of a failed trace always declines.
  void fail(const std::string& why);

 private:
  friend struct Hooks;
  std::vector<TraceRec> recs_;
  bool failed_ = false;
  std::string reason_;
  Tracer* prev_ = nullptr;
};

namespace detail {
extern thread_local constinit Tracer* g_tracer;
}  // namespace detail

/// True when a Tracer is installed on this thread. This is the only cost the
/// eager fast path pays when no trace is running: one thread-local load.
inline bool tracing() { return detail::g_tracer != nullptr; }

// Out-of-line recorders; the inline wrappers below keep the not-tracing case
// branch-only at every op call site.
struct Hooks {
  static void rec_const(const Tensor& out);
  static void rec_binary(BinFn fn, const Tensor& out, const Tensor& a,
                         const Tensor& b);
  static void rec_unary(UnFn fn, const Tensor& out, const Tensor& a);
  static void rec_matmul(bool nt, const Tensor& out, const Tensor& a,
                         const Tensor& b);
  static void rec_softmax(const Tensor& out, const Tensor& a);
  static void rec_softmax_masked(const Tensor& out, const Tensor& a,
                                 const Tensor& m, float eps, float* ystash,
                                 float* s2stash);
  static void rec_layer_norm(const Tensor& out, const Tensor& a, float eps,
                             float* inv_std);
  static void rec_layer_norm_affine(const Tensor& out, const Tensor& x,
                                    const Tensor& g, const Tensor& b,
                                    float eps, float* normed, float* inv_std);
  static void rec_bias_gelu(const Tensor& out, const Tensor& x,
                            const Tensor& b);
  static void rec_reduce_all(bool mean, const Tensor& out, const Tensor& a);
  static void rec_reduce_axis(bool mean, const Tensor& out, const Tensor& a,
                              size_t axis, bool keepdim);
  static void rec_reshape(const Tensor& out, const Tensor& a);
  static void rec_permute(const Tensor& out, const Tensor& a,
                          const std::vector<size_t>& perm);
  static void rec_fail(const char* why);
};

inline void trace_const(const Tensor& out) {
  if (tracing()) Hooks::rec_const(out);
}
inline void trace_binary(BinFn fn, const Tensor& out, const Tensor& a,
                         const Tensor& b) {
  if (tracing()) Hooks::rec_binary(fn, out, a, b);
}
inline void trace_unary(UnFn fn, const Tensor& out, const Tensor& a) {
  if (tracing()) Hooks::rec_unary(fn, out, a);
}
inline void trace_matmul(bool nt, const Tensor& out, const Tensor& a,
                         const Tensor& b) {
  if (tracing()) Hooks::rec_matmul(nt, out, a, b);
}
inline void trace_softmax(const Tensor& out, const Tensor& a) {
  if (tracing()) Hooks::rec_softmax(out, a);
}
inline void trace_softmax_masked(const Tensor& out, const Tensor& a,
                                 const Tensor& m, float eps, float* ystash,
                                 float* s2stash) {
  if (tracing()) Hooks::rec_softmax_masked(out, a, m, eps, ystash, s2stash);
}
inline void trace_layer_norm(const Tensor& out, const Tensor& a, float eps,
                             float* inv_std) {
  if (tracing()) Hooks::rec_layer_norm(out, a, eps, inv_std);
}
inline void trace_layer_norm_affine(const Tensor& out, const Tensor& x,
                                    const Tensor& g, const Tensor& b,
                                    float eps, float* normed, float* inv_std) {
  if (tracing()) {
    Hooks::rec_layer_norm_affine(out, x, g, b, eps, normed, inv_std);
  }
}
inline void trace_bias_gelu(const Tensor& out, const Tensor& x,
                            const Tensor& b) {
  if (tracing()) Hooks::rec_bias_gelu(out, x, b);
}
inline void trace_reduce_all(bool mean, const Tensor& out, const Tensor& a) {
  if (tracing()) Hooks::rec_reduce_all(mean, out, a);
}
inline void trace_reduce_axis(bool mean, const Tensor& out, const Tensor& a,
                              size_t axis, bool keepdim) {
  if (tracing()) Hooks::rec_reduce_axis(mean, out, a, axis, keepdim);
}
inline void trace_reshape(const Tensor& out, const Tensor& a) {
  if (tracing()) Hooks::rec_reshape(out, a);
}
inline void trace_permute(const Tensor& out, const Tensor& a,
                          const std::vector<size_t>& perm) {
  if (tracing()) Hooks::rec_permute(out, a, perm);
}
inline void trace_unplannable(const char* why) {
  if (tracing()) Hooks::rec_fail(why);
}

// -- compiled program --------------------------------------------------------

/// Executable instruction kinds. The kGeneric* set mirrors the eager ops
/// one-to-one; the kF* set are plan-time fusions of multi-op patterns whose
/// per-element rounding sequences are provably identical to the composed
/// chain (DESIGN.md §13).
enum class IKind : uint8_t {
  kBinary,
  kUnary,
  kGemm,            // flag: nt
  kSoftmax,
  kSoftmaxMasked,
  kLayerNorm,
  kLayerNormAffine,
  kBiasGelu,
  kReduceAll,       // mode: 0 sum, 1 mean
  kReduceAxis,      // mode: 0 sum, 1 mean
  kCopy,
  kPermute,
  kFEmbed,          // out[b,s,:] = x[b,s] * ve[s,:] + pe[s,:] (two roundings)
  kFAttn,           // full attention core on [B,S,H*Dh] projections
  kFGemmBias,       // gemm then += bias row
  kFGemmBiasRes,    // gemm, += bias, residual add
  kFGemmBiasGelu,   // gemm then gelu(acc + bias)
};

/// Where a cell's storage comes from at execution time.
enum class CellKind : uint8_t {
  kTemp,      // arena, offset assigned by the memory planner
  kInput,     // arena, written by run() from the caller's input rows
  kExternal,  // caller-bound pointer (parameters, masks)
  kConst,     // snapshot in CompiledProgram::consts
};

struct Cell {
  CellKind kind = CellKind::kTemp;
  Shape shape;
  size_t size = 0;       // element count
  size_t offset = 0;     // kTemp/kInput: float offset into the arena
  uint32_t slot = 0;     // kExternal: caller slot; kConst: offset into consts
};

/// One executable instruction over cell ids. All addressing metadata
/// (batch offsets, permute strides, broadcast strides) is precomputed at
/// compile time; run() only reads it. Field use by kind:
///   kBinary       fn=BinFn, mode 0 same / 1 b-suffix / 2 a-suffix /
///                 3 general (tbl = a-strides ++ b-strides over so), r0=L
///   kUnary        fn=UnFn, n=numel
///   kGemm         m/kk/n, aoff/boff per batch, flag=nt
///   kSoftmax      m=rows, n=L
///   kSoftmaxMasked m=rows, n=L, r0=R, f0=eps, b=mask
///   kLayerNorm[Affine] m=rows, n=L, f0=eps [, b=gamma, c=beta]
///   kBiasGelu     m=total, n=L, b=bias
///   kReduceAll    n=numel, mode=mean
///   kReduceAxis   r0=outer, r1=ax, r2=inner, mode=mean
///   kCopy         n=numel
///   kPermute      tbl=src strides per outer out dim, r0=run, r1=outer_rank
///   kFEmbed       a=x [B,S], b=ve, c=pe, r0=B, r1=S, kk=D
///   kFAttn        a/b/c=q/k/v [B,S,H*Dh], d=mask (flag), m=S, kk=Dh,
///                 n=H*Dh, r0=B, r1=H, f0=scale, f1=eps
///   kFGemmBias*   a=x, b=w, c=bias, d=residual (Res), m/kk/n, aoff/boff
struct Instr {
  IKind k{};
  uint8_t fn = 0;
  uint8_t mode = 0;
  bool flag = false;
  uint32_t out = 0;
  uint32_t a = 0, b = 0, c = 0, d = 0;
  size_t m = 0, kk = 0, n = 0;
  size_t r0 = 0, r1 = 0, r2 = 0;
  float f0 = 0.0F;
  float f1 = 0.0F;
  std::vector<size_t> aoff, boff;
  std::vector<size_t> tbl;
  Shape so;
};

/// How the caller classifies a leaf node of the trace.
struct LeafBinding {
  enum class Kind : uint8_t { kInput, kExternal };
  Kind kind = Kind::kExternal;
  uint32_t slot = 0;
};

struct CompileOptions {
  bool fuse = true;  // run the fusion passes (off: generic 1:1 schedule)
};

/// Immutable compiled plan. Shareable across model replicas: contains no
/// pointers, only cell ids, external slot numbers and snapshot constants.
/// Execution state (arena, bound pointers) lives in ProgramExec.
struct CompiledProgram {
  std::vector<Cell> cells;
  std::vector<Instr> instrs;
  uint32_t input_cell = 0;
  uint32_t output_cell = 0;
  size_t arena_floats = 0;
  size_t n_external = 0;
  std::vector<float> consts;
  Shape in_shape;
  Shape out_shape;
  size_t fused_instrs = 0;  // how many kF* instructions the passes emitted

  /// Static bytes of the plan: arena + constant snapshot.
  size_t static_bytes() const {
    return (arena_floats + consts.size()) * sizeof(float);
  }

  /// Instruction indices of the quantizable GEMMs — plain (non-transposed)
  /// or fused-epilogue gemms whose weight operand is an external cell and
  /// whose batch count is 1 — in schedule order. This ordering is the key
  /// space of an activation calibration table (ProgramExec::set_calibration):
  /// entry i of the table belongs to instruction quant_gemms()[i]. It
  /// depends only on plan structure, so tables are stable across replicas
  /// and batch sizes of one architecture.
  std::vector<size_t> quant_gemms() const;

  /// Static bytes at a reduced precision: the fp32 footprint (the arena is
  /// planned in fp32 cells either way) plus the quant sidecar — packed
  /// weights, per-column compensation and the quantized-activation scratch
  /// for int8, bf16 weight copies for bf16.
  size_t static_bytes(quant::Precision p) const;

  /// Human-readable schedule + buffer reuse map (plan-dump CLI). Each
  /// instruction is tagged with the dtype it executes at under @p p
  /// (quantizable gemms run i8/bf16, everything else stays f32), and the
  /// footer reports static bytes for every precision tier.
  void dump(std::ostream& os,
            quant::Precision p = quant::Precision::kFp32) const;
};

/// Compiles a trace into a program. @p leaves maps every leaf node the
/// caller knows about (input, parameters, masks); traced consts are
/// snapshotted automatically. Returns null and sets @p why when the trace
/// failed, hit an unknown leaf, or used an op the executor cannot replay.
std::shared_ptr<const CompiledProgram> compile(
    const Tracer& tracer,
    const std::unordered_map<const Node*, LeafBinding>& leaves,
    const Node* output, const CompileOptions& opt, std::string* why);

/// Executes one CompiledProgram against bound external pointers. One
/// instance per (model, plan); the shared program itself is never mutated.
/// run() performs zero heap allocations and builds no graph.
class ProgramExec {
 public:
  explicit ProgramExec(std::shared_ptr<const CompiledProgram> prog);
  ~ProgramExec();
  ProgramExec(const ProgramExec&) = delete;
  ProgramExec& operator=(const ProgramExec&) = delete;

  const CompiledProgram& program() const { return *prog_; }

  /// Binds external slot @p slot to @p p (parameter / mask storage). The
  /// pointer must stay valid across run() calls; rebind after anything that
  /// reallocates the underlying buffer. Rebinding invalidates the packed
  /// quantized weights (they are re-derived on the next reduced-precision
  /// run), so weight quantization happens once per replica in steady state.
  void bind_external(uint32_t slot, const float* p);

  /// Selects the precision tier for subsequent run() calls. fp32 (the
  /// default) is bitwise-identical to the eager path. int8 additionally
  /// requires a calibration table; without one run() executes fp32.
  void set_precision(quant::Precision p);
  quant::Precision precision() const { return precision_; }

  /// Installs the per-quantizable-gemm activation absmax table (schedule
  /// order, see CompiledProgram::quant_gemms). Returns false on a size
  /// mismatch, leaving the exec in fp32-capable state.
  bool set_calibration(std::vector<float> absmax);
  bool has_calibration() const { return calibrated_; }

  /// Calibration capture: while @p out is non-null, run() executes fp32 and
  /// folds each quantizable gemm's activation absmax into (*out)[i]
  /// (max-accumulate; the vector is sized and zeroed on installation).
  /// Pass nullptr to stop capturing.
  void capture_absmax(std::vector<float>* out);

  /// Runs the plan: copies numel(in_shape) floats from @p in, executes the
  /// schedule, copies numel(out_shape) floats to @p out.
  void run(const float* in, float* out);

 private:
  struct QuantGemm;  // packed weight sidecar, one per quantizable gemm
  std::shared_ptr<const CompiledProgram> prog_;
  std::vector<float> arena_;
  std::vector<const float*> external_;
  std::vector<float*> ptrs_;  // per cell, resolved once (externals patched)
  void resolve_();
  bool resolved_ = false;
  quant::Precision precision_ = quant::Precision::kFp32;
  std::vector<float> calib_;
  bool calibrated_ = false;
  std::vector<float>* capture_ = nullptr;
  std::vector<QuantGemm> qgemms_;
  std::vector<uint8_t> qscratch_;  // quantized-activation rows
  bool qready_ = false;
  void prepare_quant_();
};

/// Replicates ops.cpp's batch_offsets without touching the BufferPool:
/// per-batch base offsets for (possibly broadcast) batched matmul operands.
/// Exposed for the training tape replay in nn/plan.cpp.
void batch_offsets_for(const Shape& a_shape, const Shape& b_shape,
                       size_t a_mat, size_t b_mat, std::vector<size_t>& aoff,
                       std::vector<size_t>& boff);

}  // namespace metadse::tensor::plan
