// Shared forward compute kernels: the single implementation behind both the
// eager ops (ops.cpp) and the static-plan executor (plan.cpp). The bitwise
// policy of PRs 3/5 — explicit __FMA__-gated MACs, ascending-k accumulation,
// lane-split max only, sequential FP sums, polynomial expf/tanhf — lives
// here once, so the planned and eager paths cannot drift apart: they call
// the very same inline functions, compiled with the same flags.
//
// Stride-generalized GEMM row kernels (lda/ldb/ldo) exist so plan-fused
// attention can read head tiles directly out of the [B, S, H*Dh] projection
// buffers: per output element the accumulation chain (one rounded MAC per k,
// ascending) is identical to the contiguous form, so strided addressing
// changes where operands are loaded from, never the arithmetic.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace metadse::tensor::kern {

constexpr float kGeluC = 0.7978845608028654F;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715F;

/// Reduction-axis tile: K-slices of B this wide stay resident in L1/L2
/// while a row block streams over them.
constexpr size_t kGemmKTile = 64;

/// Minimum multiply-adds worth shipping to a worker; below this a block is
/// not worth the handoff and the grain forces the inline path.
constexpr size_t kGemmGrainFlops = 1 << 14;

inline size_t gemm_row_grain(size_t flops_per_row) {
  return std::max<size_t>(1,
                          kGemmGrainFlops / std::max<size_t>(1, flops_per_row));
}

/// One multiply-accumulate step of the forward GEMM kernels. When the target
/// has hardware FMA the kernels opt into it explicitly: every forward path
/// (panel widths, scalar tails, both kernels) fuses the same way, so all the
/// within-binary bitwise-equivalence guarantees (grad vs no-grad, batched vs
/// scalar, matmul_nt vs matmul∘transpose, any thread count) hold unchanged.
/// Without hardware FMA this is a plain rounded mul+add — never the libm
/// soft-fma path.
inline float gemm_mac(float acc, float a, float b) {
#if defined(__FMA__)
  return __builtin_fmaf(a, b, acc);
#else
  return acc + a * b;
#endif
}

/// Width-T panel of one output row kept in registers while a K-slice streams
/// over it. Each output element still receives one rounded MAC per k in
/// ascending order — bitwise identical to the saxpy form this replaces; only
/// where the running float32 partial lives (registers vs. the output row)
/// changes. Init: this is the first K-slice, so start the accumulators at
/// zero instead of loading the (then never pre-zeroed) output row.
/// @p ldb is the row stride of B (= N for a packed row-major operand).
template <size_t T, bool Init>
void gemm_row_panel(const float* pam, const float* pb, float* pom, size_t k0,
                    size_t k1, size_t ldb) {
  float acc[T];
  for (size_t j = 0; j < T; ++j) acc[j] = Init ? 0.0F : pom[j];
  for (size_t k = k0; k < k1; ++k) {
    const float av = pam[k];
    const float* pbk = pb + k * ldb;
    for (size_t j = 0; j < T; ++j) acc[j] = gemm_mac(acc[j], av, pbk[j]);
  }
  for (size_t j = 0; j < T; ++j) pom[j] = acc[j];
}

/// R-row x width-T register tile: R output rows advance through the same
/// K-slice together, so each B panel row is loaded once and reused R times,
/// and the tile holds R x T independent accumulator chains — enough to cover
/// FMA latency, where a single row's T chains leave the units idle. Each
/// output element still receives one rounded MAC per k in ascending order
/// (the per-row inner loops run row 0, then row 1, ... for every k, which
/// never reorders any single element's chain) — bitwise identical to the
/// one-row-at-a-time sweep.
template <size_t R, size_t T, bool Init>
void gemm_row_tile(const float* pa, size_t lda, const float* pb, float* po,
                   size_t ldo, size_t k0, size_t k1, size_t ldb) {
  float acc[R][T];
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < T; ++j) acc[r][j] = Init ? 0.0F : po[r * ldo + j];
  }
  for (size_t k = k0; k < k1; ++k) {
    const float* pbk = pb + k * ldb;
    for (size_t r = 0; r < R; ++r) {
      const float av = pa[r * lda + k];
      float* ar = acc[r];
      for (size_t j = 0; j < T; ++j) ar[j] = gemm_mac(ar[j], av, pbk[j]);
    }
  }
  for (size_t r = 0; r < R; ++r) {
    for (size_t j = 0; j < T; ++j) po[r * ldo + j] = acc[r][j];
  }
}

/// Row [m0, m1) x column-panel sweep of one C tile for K-slice [k0, k1) with
/// explicit row strides for A (lda), B (ldb) and C (ldo); Init as in
/// gemm_row_panel. Rows advance four at a time through register tiles
/// (gemm_row_tile) with single-row panels mopping up the remainder. Tile and
/// panel widths only change which independent accumulators share registers —
/// every output element's MAC chain is unchanged, so any (R, T) blocking is
/// bitwise identical.
template <bool Init>
void gemm_rows_ld(const float* pa, size_t lda, const float* pb, size_t ldb,
                  float* po, size_t ldo, size_t m0, size_t m1, size_t k0,
                  size_t k1, size_t N) {
  constexpr size_t R = 4;
  size_t m = m0;
  // Narrow outputs (attention-sized: N < 32, so the wide tile never engages)
  // run the single-row panel sweep directly — the R-row narrow tile spills
  // and measures ~6x slower there, while both orders keep every element's
  // ascending-k chain.
  if (N >= 32) {
    for (; m + R <= m1; m += R) {
      const float* pam = pa + m * lda;
      float* pom = po + m * ldo;
      size_t n0 = 0;
      for (; n0 + 32 <= N; n0 += 32) {
        gemm_row_tile<R, 32, Init>(pam, lda, pb + n0, pom + n0, ldo, k0, k1,
                                   ldb);
      }
      for (; n0 + 8 <= N; n0 += 8) {
        gemm_row_tile<R, 8, Init>(pam, lda, pb + n0, pom + n0, ldo, k0, k1,
                                  ldb);
      }
      for (; n0 < N; ++n0) {
        for (size_t r = 0; r < R; ++r) {
          float acc = Init ? 0.0F : pom[r * ldo + n0];
          for (size_t k = k0; k < k1; ++k) {
            acc = gemm_mac(acc, pam[r * lda + k], pb[k * ldb + n0]);
          }
          pom[r * ldo + n0] = acc;
        }
      }
    }
  }
  for (; m < m1; ++m) {
    const float* pam = pa + m * lda;
    float* pom = po + m * ldo;
    size_t n0 = 0;
    for (; n0 + 32 <= N; n0 += 32) {
      gemm_row_panel<32, Init>(pam, pb + n0, pom + n0, k0, k1, ldb);
    }
    for (; n0 + 8 <= N; n0 += 8) {
      gemm_row_panel<8, Init>(pam, pb + n0, pom + n0, k0, k1, ldb);
    }
    for (; n0 < N; ++n0) {
      float acc = Init ? 0.0F : pom[n0];
      for (size_t k = k0; k < k1; ++k) {
        acc = gemm_mac(acc, pam[k], pb[k * ldb + n0]);
      }
      pom[n0] = acc;
    }
  }
}

/// Contiguous row-major form: A rows stride K, B rows stride N, C rows
/// stride N (the layout every eager op uses).
template <bool Init>
void gemm_rows(const float* pa, const float* pb, float* po, size_t m0,
               size_t m1, size_t k0, size_t k1, size_t K, size_t N) {
  gemm_rows_ld<Init>(pa, K, pb, N, po, N, m0, m1, k0, k1, N);
}

/// Branch-free Cephes-style expf (range-reduced degree-5 polynomial, ~2 ulp
/// vs. libm). softmax spends essentially its whole budget in exp, and the
/// libm call blocks vectorization; this form auto-vectorizes. Only pure
/// rounded float ops, so results are identical at any vector width.
inline float fast_expf(float x) {
  constexpr float kLog2e = 1.442695040888963F;
  constexpr float kLn2Hi = 0.693359375F;
  constexpr float kLn2Lo = -2.12194440e-4F;
  // Round to nearest via the 1.5*2^23 magic constant: exact for |z| < 2^22
  // and, unlike std::floor, it auto-vectorizes.
  constexpr float kRound = 12582912.0F;
  x = std::min(88.3762626647949F, std::max(-87.3365478515625F, x));
  const float n = (x * kLog2e + kRound) - kRound;
  x -= n * kLn2Hi;
  x -= n * kLn2Lo;
  float p = 1.9875691500e-4F;
  p = p * x + 1.3981999507e-3F;
  p = p * x + 8.3334519073e-3F;
  p = p * x + 4.1665795894e-2F;
  p = p * x + 1.6666665459e-1F;
  p = p * x + 5.0000001201e-1F;
  const float r = p * x * x + x + 1.0F;
  const auto ni = static_cast<int32_t>(n);
  return r * std::bit_cast<float>((ni + 127) << 23);
}

/// tanh through fast_expf: tanh(u) = 1 - 2/(exp(2u) + 1). Saturates cleanly
/// to ±1 at the exp clamp. Used by the hot gelu path, where the libm tanh
/// call dominated the whole activation and blocked vectorization.
inline float fast_tanhf(float u) {
  return 1.0F - 2.0F / (fast_expf(2.0F * u) + 1.0F);
}

/// GELU value/derivative shared by gelu(), the fused bias_gelu, and the plan
/// executor so every path evaluates the identical expression tree.
inline float gelu_fwd(float x) {
  const float t = fast_tanhf(kGeluC * (x + kGeluA * x * x * x));
  return 0.5F * x * (1.0F + t);
}

inline float gelu_dfn(float x) {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  const float t = fast_tanhf(u);
  const float du = kGeluC * (1.0F + 3.0F * kGeluA * x * x);
  return 0.5F * (1.0F + t) + 0.5F * x * (1.0F - t * t) * du;
}

/// Row max with the lane-split reduction softmax uses: max is exact and
/// associative, so splitting across 8 lanes (which vectorizes) returns the
/// identical value to the sequential scan.
inline float row_max(const float* x, size_t L) {
  float mx = x[0];
  if (L >= 16) {
    float lane[8];
    for (size_t j = 0; j < 8; ++j) lane[j] = x[j];
    size_t i = 8;
    for (; i + 8 <= L; i += 8) {
      for (size_t j = 0; j < 8; ++j) lane[j] = std::max(lane[j], x[i + j]);
    }
    mx = lane[0];
    for (size_t j = 1; j < 8; ++j) mx = std::max(mx, lane[j]);
    for (; i < L; ++i) mx = std::max(mx, x[i]);
  } else {
    for (size_t i = 1; i < L; ++i) mx = std::max(mx, x[i]);
  }
  return mx;
}

/// One softmax row: y = softmax(x) over L entries, exactly the rounding
/// sequence of softmax_lastdim (lane-split max, fast_expf, sequential denom
/// sum, per-element divide). Safe with y == x (each pass element-local).
inline void softmax_row(const float* x, float* y, size_t L) {
  const float mx = row_max(x, L);
  for (size_t i = 0; i < L; ++i) y[i] = fast_expf(x[i] - mx);
  float denom = 0.0F;
  for (size_t i = 0; i < L; ++i) denom += y[i];
  for (size_t i = 0; i < L; ++i) y[i] /= denom;
}

/// Masked, renormalized tail applied to an already-softmaxed row @p y:
/// out[i] = (y[i] * mk[i]) / (sum_i y[i]*mk[i] + eps), the exact float ops
/// of softmax_masked_lastdim. In-place safe when y aliases out (each element
/// is read before written). Returns the regularized mass s2 (the backward
/// stash value).
inline float masked_renorm_row(const float* y, const float* mk, float* out,
                               size_t L, float eps) {
  float srow = 0.0F;
  for (size_t i = 0; i < L; ++i) srow += y[i] * mk[i];
  const float s2 = srow + eps;
  for (size_t i = 0; i < L; ++i) out[i] = (y[i] * mk[i]) / s2;
  return s2;
}

/// One affine layer-norm row: po = (x - mean)/std * gamma + beta with the
/// exact reduction and rounding order of layer_norm_affine. When @p normed
/// is non-null the normalized activations are stashed there (the backward
/// stash); returns the row's 1/std.
inline float layer_norm_affine_row(const float* px, const float* pg,
                                   const float* pbeta, float* po,
                                   float* normed, size_t L, float eps) {
  float mu = 0.0F;
  for (size_t i = 0; i < L; ++i) mu += px[i];
  mu /= static_cast<float>(L);
  float var = 0.0F;
  for (size_t i = 0; i < L; ++i) var += (px[i] - mu) * (px[i] - mu);
  var /= static_cast<float>(L);
  const float is = 1.0F / std::sqrt(var + eps);
  if (normed != nullptr) {
    for (size_t i = 0; i < L; ++i) {
      const float y = (px[i] - mu) * is;
      normed[i] = y;
      const float m = y * pg[i];
      po[i] = m + pbeta[i];
    }
  } else {
    for (size_t i = 0; i < L; ++i) {
      const float y = (px[i] - mu) * is;
      const float m = y * pg[i];
      po[i] = m + pbeta[i];
    }
  }
  return is;
}

/// One plain layer-norm row (no affine): y = (x - mean)/std; returns 1/std.
inline float layer_norm_row(const float* x, float* y, size_t L, float eps) {
  float mu = 0.0F;
  for (size_t i = 0; i < L; ++i) mu += x[i];
  mu /= static_cast<float>(L);
  float var = 0.0F;
  for (size_t i = 0; i < L; ++i) var += (x[i] - mu) * (x[i] - mu);
  var /= static_cast<float>(L);
  const float is = 1.0F / std::sqrt(var + eps);
  for (size_t i = 0; i < L; ++i) y[i] = (x[i] - mu) * is;
  return is;
}

/// Bias + GELU over rows of length L: po[j] = gelu(px[j] + b[j]), the exact
/// expression of bias_gelu's forward.
inline void bias_gelu_rows(const float* px, const float* b, float* po,
                           size_t n, size_t L) {
  for (size_t i0 = 0; i0 < n; i0 += L) {
    const float* pr = px + i0;
    float* pw = po + i0;
    for (size_t j = 0; j < L; ++j) pw[j] = gelu_fwd(pr[j] + b[j]);
  }
}

}  // namespace metadse::tensor::kern
