// Finite-difference gradient verification used by the test suite to certify
// every differentiable op and module against its backward implementation.
#pragma once

#include <functional>
#include <vector>

#include "tensor/tensor.hpp"

namespace metadse::tensor {

/// Result of a gradient check. An element passes when
/// |analytic - numeric| <= atol + rtol * max(|analytic|, |numeric|);
/// worst_score is the largest observed ratio of the left side to the right
/// side (<= 1 means every element passed).
struct GradCheckResult {
  double max_abs_err = 0.0;
  double worst_score = 0.0;
  size_t violations = 0;
  bool ok() const { return violations == 0; }
};

/// Verifies the analytic gradients of @p loss_fn with respect to @p params.
/// @p loss_fn must rebuild its computation graph from the *current* values of
/// the parameter tensors on every call and return a scalar loss.
/// @p eps is the central-difference step; @p atol and @p rtol bound the
/// accepted float32 finite-difference noise.
GradCheckResult grad_check(const std::function<Tensor()>& loss_fn,
                           const std::vector<Tensor>& params,
                           float eps = 1e-3F, double atol = 5e-3,
                           double rtol = 5e-2);

}  // namespace metadse::tensor
