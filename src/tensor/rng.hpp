// Deterministic random number generation shared by every stochastic component
// (weight init, task sampling, workload phase synthesis, dropout).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace metadse::tensor {

/// Seedable pseudo-random source. All randomness in the library flows through
/// an explicitly passed Rng so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) : engine_(seed) {}

  /// An Rng whose draws are the cheapest deterministic values (normal →
  /// mean, uniform → lo, uniform_index → 0) without running the engine.
  /// For constructing modules whose parameters are overwritten immediately
  /// afterwards (clone()), where real sampling is pure waste. The cursor
  /// still advances, so draw accounting stays consistent.
  static Rng null_stream() {
    Rng r;
    r.null_ = true;
    return r;
  }

  /// Standard normal sample scaled by @p stddev around @p mean.
  float normal(float mean = 0.0F, float stddev = 1.0F);

  /// Uniform sample in [lo, hi).
  float uniform(float lo = 0.0F, float hi = 1.0F);

  /// Uniform integer in [0, n). @p n must be positive.
  size_t uniform_index(size_t n);

  /// Fisher-Yates shuffle of @p v.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// A fresh Rng deterministically derived from this one (for forking
  /// independent streams, e.g. one per workload).
  Rng fork();

  /// Draws consumed since construction (normal/uniform/uniform_index/fork
  /// each count one; shuffle counts one per swap). Crash-safe consumers
  /// (the exploration journal) persist this as a stream cursor to verify a
  /// deterministic replay stayed aligned with the original run.
  uint64_t cursor() const { return draws_; }

  /// Serializes engine state + cursor as one text line. restore_state() on
  /// any Rng reproduces the exact stream position (bitwise-identical draws);
  /// throws std::runtime_error on a malformed string.
  std::string save_state() const;
  void restore_state(const std::string& state);

  /// Underlying engine, for interop with <random> distributions. Draws made
  /// directly on the engine bypass cursor accounting.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t draws_ = 0;
  bool null_ = false;  ///< null_stream(): draws return fixed values
};

}  // namespace metadse::tensor
