// Deterministic random number generation shared by every stochastic component
// (weight init, task sampling, workload phase synthesis, dropout).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace metadse::tensor {

/// Seedable pseudo-random source. All randomness in the library flows through
/// an explicitly passed Rng so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) : engine_(seed) {}

  /// Standard normal sample scaled by @p stddev around @p mean.
  float normal(float mean = 0.0F, float stddev = 1.0F);

  /// Uniform sample in [lo, hi).
  float uniform(float lo = 0.0F, float hi = 1.0F);

  /// Uniform integer in [0, n). @p n must be positive.
  size_t uniform_index(size_t n);

  /// Fisher-Yates shuffle of @p v.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// A fresh Rng deterministically derived from this one (for forking
  /// independent streams, e.g. one per workload).
  Rng fork();

  /// Underlying engine, for interop with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace metadse::tensor
