#include "tensor/guard.hpp"

#include <cmath>

namespace metadse::tensor {

bool has_nonfinite(const std::vector<float>& v) {
  for (float x : v) {
    if (!std::isfinite(x)) return true;
  }
  return false;
}

bool has_nonfinite(const Tensor& t) {
  return t.defined() && has_nonfinite(t.data());
}

bool any_nonfinite(const std::vector<Tensor>& tensors) {
  for (const auto& t : tensors) {
    if (has_nonfinite(t)) return true;
  }
  return false;
}

double global_grad_norm(const std::vector<Tensor>& params) {
  double sq = 0.0;
  for (const auto& p : params) {
    if (!p.defined()) continue;
    const auto& g = p.node()->grad;
    for (float x : g) sq += static_cast<double>(x) * static_cast<double>(x);
  }
  return std::sqrt(sq);
}

double clip_global_grad_norm(const std::vector<Tensor>& params,
                             float max_norm) {
  const double norm = global_grad_norm(params);
  if (max_norm <= 0.0F || !std::isfinite(norm) ||
      norm <= static_cast<double>(max_norm)) {
    return norm;
  }
  const float scale = max_norm / static_cast<float>(norm);
  for (const auto& p : params) {
    if (!p.defined()) continue;
    for (float& x : p.node()->grad) x *= scale;
  }
  return norm;
}

}  // namespace metadse::tensor
