#include "tensor/plan.hpp"

#include <algorithm>
#include <ostream>

#include "core/parallel.hpp"
#include "tensor/kernels.hpp"
#include "tensor/pool.hpp"

namespace metadse::tensor::plan {

namespace detail {
thread_local constinit Tracer* g_tracer = nullptr;
}  // namespace detail

// -- tracer ------------------------------------------------------------------

Tracer::Tracer() {
  prev_ = detail::g_tracer;
  detail::g_tracer = this;
}

Tracer::~Tracer() { detail::g_tracer = prev_; }

void Tracer::fail(const std::string& why) {
  if (!failed_) {
    failed_ = true;
    reason_ = why;
  }
}

namespace {

TraceRec& push(OpKind kind, const Tensor& out) {
  Tracer* t = detail::g_tracer;
  t->records().emplace_back();
  TraceRec& r = t->records().back();
  r.kind = kind;
  r.out = out.node();
  return r;
}

}  // namespace

void Hooks::rec_const(const Tensor& out) { push(OpKind::kConst, out); }

void Hooks::rec_binary(BinFn fn, const Tensor& out, const Tensor& a,
                       const Tensor& b) {
  TraceRec& r = push(OpKind::kBinary, out);
  r.fn = static_cast<uint8_t>(fn);
  r.a = a.node();
  r.b = b.node();
}

void Hooks::rec_unary(UnFn fn, const Tensor& out, const Tensor& a) {
  TraceRec& r = push(OpKind::kUnary, out);
  r.fn = static_cast<uint8_t>(fn);
  r.a = a.node();
}

void Hooks::rec_matmul(bool nt, const Tensor& out, const Tensor& a,
                       const Tensor& b) {
  TraceRec& r = push(OpKind::kMatmul, out);
  r.flag = nt;
  r.a = a.node();
  r.b = b.node();
}

void Hooks::rec_softmax(const Tensor& out, const Tensor& a) {
  TraceRec& r = push(OpKind::kSoftmax, out);
  r.a = a.node();
}

void Hooks::rec_softmax_masked(const Tensor& out, const Tensor& a,
                               const Tensor& m, float eps, float* ystash,
                               float* s2stash) {
  TraceRec& r = push(OpKind::kSoftmaxMasked, out);
  r.a = a.node();
  r.b = m.node();
  r.f0 = eps;
  r.stash0 = ystash;
  r.stash1 = s2stash;
}

void Hooks::rec_layer_norm(const Tensor& out, const Tensor& a, float eps,
                           float* inv_std) {
  TraceRec& r = push(OpKind::kLayerNorm, out);
  r.a = a.node();
  r.f0 = eps;
  r.stash1 = inv_std;
}

void Hooks::rec_layer_norm_affine(const Tensor& out, const Tensor& x,
                                  const Tensor& g, const Tensor& b, float eps,
                                  float* normed, float* inv_std) {
  TraceRec& r = push(OpKind::kLayerNormAffine, out);
  r.a = x.node();
  r.b = g.node();
  r.c = b.node();
  r.f0 = eps;
  r.stash0 = normed;
  r.stash1 = inv_std;
}

void Hooks::rec_bias_gelu(const Tensor& out, const Tensor& x,
                          const Tensor& b) {
  TraceRec& r = push(OpKind::kBiasGelu, out);
  r.a = x.node();
  r.b = b.node();
}

void Hooks::rec_reduce_all(bool mean, const Tensor& out, const Tensor& a) {
  TraceRec& r = push(OpKind::kReduceAll, out);
  r.fn = mean ? 1 : 0;
  r.a = a.node();
}

void Hooks::rec_reduce_axis(bool mean, const Tensor& out, const Tensor& a,
                            size_t axis, bool keepdim) {
  TraceRec& r = push(OpKind::kReduceAxis, out);
  r.fn = mean ? 1 : 0;
  r.a = a.node();
  r.axis = axis;
  r.flag = keepdim;
}

void Hooks::rec_reshape(const Tensor& out, const Tensor& a) {
  TraceRec& r = push(OpKind::kReshape, out);
  r.a = a.node();
}

void Hooks::rec_permute(const Tensor& out, const Tensor& a,
                        const std::vector<size_t>& perm) {
  TraceRec& r = push(OpKind::kPermute, out);
  r.a = a.node();
  r.perm = perm;
}

void Hooks::rec_fail(const char* why) { detail::g_tracer->fail(why); }

// -- shared helpers ----------------------------------------------------------

void batch_offsets_for(const Shape& a_shape, const Shape& b_shape,
                       size_t a_mat, size_t b_mat, std::vector<size_t>& aoff,
                       std::vector<size_t>& boff) {
  if (a_shape.size() == 2 && b_shape.size() == 2) {
    aoff.assign(1, 0);
    boff.assign(1, 0);
    return;
  }
  const Shape a_batch(a_shape.begin(), a_shape.end() - 2);
  const Shape b_batch(b_shape.begin(), b_shape.end() - 2);
  const Shape batch = broadcast_shape(a_batch, b_batch);
  const auto sa = broadcast_strides(a_batch, batch);
  const auto sb = broadcast_strides(b_batch, batch);
  const size_t nb = numel(batch);
  aoff.assign(nb, 0);
  boff.assign(nb, 0);
  std::vector<size_t> idx(batch.size(), 0);
  for (size_t i = 0; i < nb; ++i) {
    size_t oa = 0;
    size_t ob = 0;
    for (size_t d = 0; d < batch.size(); ++d) {
      oa += idx[d] * sa[d];
      ob += idx[d] * sb[d];
    }
    aoff[i] = oa * a_mat;
    boff[i] = ob * b_mat;
    for (size_t d = batch.size(); d-- > 0;) {
      if (++idx[d] < batch[d]) break;
      idx[d] = 0;
    }
  }
}

namespace {

constexpr size_t kAlignFloats = 16;     // 64-byte arena alignment
constexpr size_t kMaxRank = 8;          // odometer stack-array bound
constexpr size_t kAttnMaxS = 64;        // kFAttn stack-tile bounds
constexpr size_t kAttnMaxDh = 32;

size_t align_up(size_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

bool is_trailing_suffix(const Shape& small, const Shape& big) {
  if (small.size() > big.size()) return false;
  const size_t d0 = big.size() - small.size();
  for (size_t d = 0; d < small.size(); ++d) {
    if (small[d] != big[d0 + d]) return false;
  }
  return true;
}

/// Mutable program state the compile passes operate on.
struct Build {
  std::vector<Cell> cells;
  std::vector<Instr> instrs;
  std::vector<std::vector<size_t>> perms;  // per instr: kPermute's perm
  std::vector<uint32_t> root;              // alias union: cell -> storage root
  std::vector<float> consts;
  uint32_t input_cell = 0;
  uint32_t output_cell = 0;
  size_t n_external = 0;
  size_t fused = 0;

  uint32_t resolve(uint32_t v) const {
    while (root[v] != v) v = root[v];
    return v;
  }
};

template <typename F>
void for_each_in(const Instr& ins, F&& f) {
  switch (ins.k) {
    case IKind::kUnary:
    case IKind::kSoftmax:
    case IKind::kLayerNorm:
    case IKind::kReduceAll:
    case IKind::kReduceAxis:
    case IKind::kCopy:
    case IKind::kPermute:
      f(ins.a);
      break;
    case IKind::kBinary:
    case IKind::kGemm:
    case IKind::kSoftmaxMasked:
    case IKind::kBiasGelu:
      f(ins.a);
      f(ins.b);
      break;
    case IKind::kLayerNormAffine:
    case IKind::kFEmbed:
    case IKind::kFGemmBias:
    case IKind::kFGemmBiasGelu:
      f(ins.a);
      f(ins.b);
      f(ins.c);
      break;
    case IKind::kFGemmBiasRes:
      f(ins.a);
      f(ins.b);
      f(ins.c);
      f(ins.d);
      break;
    case IKind::kFAttn:
      f(ins.a);
      f(ins.b);
      f(ins.c);
      if (ins.flag) f(ins.d);
      break;
  }
}

/// Producer instr / reader instrs per storage root, recomputed per pass.
struct Analysis {
  std::vector<int> producer;               // per cell root, instr idx or -1
  std::vector<std::vector<int>> readers;   // per cell root, instr idxs
  size_t uses(const Build& b, uint32_t cell) const {
    uint32_t r = b.resolve(cell);
    return readers[r].size() + (b.resolve(b.output_cell) == r ? 1 : 0);
  }
};

Analysis analyze(const Build& b) {
  Analysis an;
  an.producer.assign(b.cells.size(), -1);
  an.readers.assign(b.cells.size(), {});
  for (size_t i = 0; i < b.instrs.size(); ++i) {
    an.producer[b.resolve(b.instrs[i].out)] = static_cast<int>(i);
    for_each_in(b.instrs[i], [&](uint32_t v) {
      an.readers[b.resolve(v)].push_back(static_cast<int>(i));
    });
  }
  return an;
}

/// The single reader of @p cell, or -1 if it has != 1 readers or is also the
/// program output.
int sole_reader(const Build& b, const Analysis& an, uint32_t cell) {
  const uint32_t r = b.resolve(cell);
  if (an.readers[r].size() != 1) return -1;
  if (b.resolve(b.output_cell) == r) return -1;
  return an.readers[r][0];
}

void erase_instrs(Build& b, const std::vector<size_t>& idxs) {
  std::vector<char> dead(b.instrs.size(), 0);
  for (size_t i : idxs) dead[i] = 1;
  std::vector<Instr> ni;
  std::vector<std::vector<size_t>> np;
  ni.reserve(b.instrs.size());
  np.reserve(b.instrs.size());
  for (size_t i = 0; i < b.instrs.size(); ++i) {
    if (!dead[i]) {
      ni.push_back(std::move(b.instrs[i]));
      np.push_back(std::move(b.perms[i]));
    }
  }
  b.instrs = std::move(ni);
  b.perms = std::move(np);
}

// -- lowering ----------------------------------------------------------------

/// Lowers one trace record into a generic instruction. Returns false (with
/// @p why) for shapes the executor cannot replay.
bool lower(Build& b, const TraceRec& rec, uint32_t out, uint32_t va,
           uint32_t vb, uint32_t vc, std::string* why) {
  Instr ins;
  ins.out = out;
  ins.a = va;
  ins.b = vb;
  ins.c = vc;
  const Shape& as = rec.a ? rec.a->shape : Shape{};
  const Shape& os = rec.out->shape;
  switch (rec.kind) {
    case OpKind::kConst:
      return true;  // no instruction; value snapshotted in the cell
    case OpKind::kBinary: {
      ins.k = IKind::kBinary;
      ins.fn = rec.fn;
      const Shape& bs = rec.b->shape;
      const size_t an_n = numel(as);
      const size_t bn_n = numel(bs);
      if (as == bs) {
        ins.mode = 0;
        ins.n = an_n;
      } else if (bn_n != 0 && is_trailing_suffix(bs, as)) {
        ins.mode = 1;
        ins.n = an_n;
        ins.r0 = bn_n;
      } else if (an_n != 0 && is_trailing_suffix(as, bs)) {
        ins.mode = 2;
        ins.n = bn_n;
        ins.r0 = an_n;
      } else {
        ins.mode = 3;
        ins.so = os;
        ins.n = numel(os);
        if (os.size() > kMaxRank) {
          *why = "binary broadcast rank too large";
          return false;
        }
        const auto sa = broadcast_strides(as, os);
        const auto sb = broadcast_strides(bs, os);
        ins.tbl.reserve(sa.size() + sb.size());
        ins.tbl.insert(ins.tbl.end(), sa.begin(), sa.end());
        ins.tbl.insert(ins.tbl.end(), sb.begin(), sb.end());
      }
      break;
    }
    case OpKind::kUnary:
      ins.k = IKind::kUnary;
      ins.fn = rec.fn;
      ins.n = numel(as);
      break;
    case OpKind::kMatmul: {
      ins.k = IKind::kGemm;
      ins.flag = rec.flag;
      const Shape& bs = rec.b->shape;
      ins.m = as[as.size() - 2];
      ins.kk = as[as.size() - 1];
      ins.n = rec.flag ? bs[bs.size() - 2] : bs[bs.size() - 1];
      const size_t b_mat = ins.kk * ins.n;
      batch_offsets_for(as, bs, ins.m * ins.kk, b_mat, ins.aoff, ins.boff);
      break;
    }
    case OpKind::kSoftmax:
      ins.k = IKind::kSoftmax;
      ins.n = as.back();
      ins.m = numel(as) / ins.n;
      break;
    case OpKind::kSoftmaxMasked:
      ins.k = IKind::kSoftmaxMasked;
      ins.n = as.back();
      ins.m = numel(as) / ins.n;
      ins.r0 = as[as.size() - 2];
      ins.f0 = rec.f0;
      break;
    case OpKind::kLayerNorm:
      ins.k = IKind::kLayerNorm;
      ins.n = as.back();
      ins.m = numel(as) / ins.n;
      ins.f0 = rec.f0;
      break;
    case OpKind::kLayerNormAffine:
      ins.k = IKind::kLayerNormAffine;
      ins.n = as.back();
      ins.m = numel(as) / ins.n;
      ins.f0 = rec.f0;
      break;
    case OpKind::kBiasGelu:
      ins.k = IKind::kBiasGelu;
      ins.n = as.back();
      ins.m = numel(as);
      break;
    case OpKind::kReduceAll:
      ins.k = IKind::kReduceAll;
      ins.mode = rec.fn;
      ins.n = numel(as);
      break;
    case OpKind::kReduceAxis: {
      ins.k = IKind::kReduceAxis;
      ins.mode = rec.fn;
      size_t outer = 1;
      size_t inner = 1;
      for (size_t d = 0; d < rec.axis; ++d) outer *= as[d];
      for (size_t d = rec.axis + 1; d < as.size(); ++d) inner *= as[d];
      ins.r0 = outer;
      ins.r1 = as[rec.axis];
      ins.r2 = inner;
      break;
    }
    case OpKind::kReshape:
      ins.k = IKind::kCopy;
      ins.n = numel(as);
      break;
    case OpKind::kPermute: {
      ins.k = IKind::kPermute;
      if (os.size() > kMaxRank) {
        *why = "permute rank too large";
        return false;
      }
      const auto in_strides = row_major_strides(as);
      const bool last_fixed =
          !rec.perm.empty() && rec.perm.back() == as.size() - 1 &&
          as.back() > 1;
      ins.r0 = last_fixed ? as.back() : 1;
      ins.r1 = last_fixed ? os.size() - 1 : os.size();
      ins.tbl.resize(ins.r1);
      for (size_t d = 0; d < ins.r1; ++d) ins.tbl[d] = in_strides[rec.perm[d]];
      ins.n = numel(os);
      ins.so = os;
      break;
    }
  }
  b.instrs.push_back(std::move(ins));
  b.perms.push_back(rec.perm);
  return true;
}

// -- fusion passes -----------------------------------------------------------

/// Reshape outputs alias their input's storage (same numel, same layout):
/// zero-copy views, removed from the schedule.
void pass_alias_reshapes(Build& b) {
  std::vector<size_t> dead;
  for (size_t i = 0; i < b.instrs.size(); ++i) {
    if (b.instrs[i].k == IKind::kCopy) {
      b.root[b.instrs[i].out] = b.resolve(b.instrs[i].a);
      dead.push_back(i);
    }
  }
  erase_instrs(b, dead);
}

bool perm_is_0213(const std::vector<size_t>& p) {
  return p.size() == 4 && p[0] == 0 && p[1] == 2 && p[2] == 1 && p[3] == 3;
}

/// Matches the attention core — three head-split permutes feeding
/// scores = softmax[(q k^T)/c] (optionally masked), ctx = scores*v, and the
/// head-merge permute — and replaces all of it with one kFAttn instruction
/// that reads the q/k/v projections [B,S,H*Dh] directly via strides and
/// writes the merged context strided. Every eliminated op was pure data
/// movement or is reproduced with the identical per-element rounding
/// sequence inside the fused kernel.
void pass_fuse_attention(Build& b) {
  bool changed = true;
  while (changed) {
    changed = false;
    Analysis an = analyze(b);
    for (size_t i = 0; i < b.instrs.size() && !changed; ++i) {
      Instr& mm = b.instrs[i];
      if (mm.k != IKind::kGemm || !mm.flag) continue;
      // producers of q/k must be 0213 head-split permutes, solely consumed
      const int pq = an.producer[b.resolve(mm.a)];
      const int pk = an.producer[b.resolve(mm.b)];
      if (pq < 0 || pk < 0) continue;
      if (b.instrs[pq].k != IKind::kPermute || !perm_is_0213(b.perms[pq])) {
        continue;
      }
      if (b.instrs[pk].k != IKind::kPermute || !perm_is_0213(b.perms[pk])) {
        continue;
      }
      if (sole_reader(b, an, b.instrs[pq].out) != static_cast<int>(i)) continue;
      if (sole_reader(b, an, b.instrs[pk].out) != static_cast<int>(i)) continue;
      // scores -> div by const scalar
      const int di = sole_reader(b, an, mm.out);
      if (di < 0) continue;
      const Instr& dv = b.instrs[di];
      if (dv.k != IKind::kBinary || dv.fn != static_cast<uint8_t>(BinFn::kDiv) ||
          dv.mode != 1 || dv.r0 != 1) {
        continue;
      }
      const Cell& ccell = b.cells[b.resolve(dv.b)];
      if (ccell.kind != CellKind::kConst) continue;
      const float scale = b.consts[ccell.slot];
      // div -> softmax (optionally masked)
      const int si = sole_reader(b, an, dv.out);
      if (si < 0) continue;
      const Instr& sm = b.instrs[si];
      const bool masked = sm.k == IKind::kSoftmaxMasked;
      if (!masked && sm.k != IKind::kSoftmax) continue;
      // softmax -> ctx = attn * v, v from a 0213 permute
      const int ci = sole_reader(b, an, sm.out);
      if (ci < 0) continue;
      const Instr& ctx = b.instrs[ci];
      if (ctx.k != IKind::kGemm || ctx.flag ||
          b.resolve(ctx.a) != b.resolve(sm.out)) {
        continue;
      }
      const int pv = an.producer[b.resolve(ctx.b)];
      if (pv < 0 || b.instrs[pv].k != IKind::kPermute ||
          !perm_is_0213(b.perms[pv])) {
        continue;
      }
      if (sole_reader(b, an, b.instrs[pv].out) != ci) continue;
      // ctx -> head-merge permute
      const int mi = sole_reader(b, an, ctx.out);
      if (mi < 0) continue;
      const Instr& mg = b.instrs[mi];
      if (mg.k != IKind::kPermute || !perm_is_0213(b.perms[mi])) continue;
      // dimensions from the projection [B,S,D] and split [B,H,S,Dh] shapes
      const Cell& qproj = b.cells[b.resolve(b.instrs[pq].a)];
      const Cell& qsplit = b.cells[b.instrs[pq].out];
      if (qproj.shape.size() != 3 || qsplit.shape.size() != 4) continue;
      const size_t B = qproj.shape[0];
      const size_t S = qproj.shape[1];
      const size_t D = qproj.shape[2];
      const size_t H = qsplit.shape[1];
      const size_t Dh = qsplit.shape[3];
      if (D != H * Dh || S > kAttnMaxS || Dh > kAttnMaxDh || S < 1) continue;
      if (mm.m != S || mm.kk != Dh || mm.n != S) continue;
      uint32_t mask_cell = 0;
      float eps = 0.0F;
      if (masked) {
        const Cell& mc = b.cells[b.resolve(sm.b)];
        if (mc.shape != Shape{S, S}) continue;
        mask_cell = sm.b;
        eps = sm.f0;
      }
      Instr fa;
      fa.k = IKind::kFAttn;
      fa.flag = masked;
      fa.out = mg.out;
      fa.a = b.instrs[pq].a;
      fa.b = b.instrs[pk].a;
      fa.c = b.instrs[pv].a;
      fa.d = mask_cell;
      fa.m = S;
      fa.kk = Dh;
      fa.n = D;
      fa.r0 = B;
      fa.r1 = H;
      fa.f0 = scale;
      fa.f1 = eps;
      b.instrs[mi] = std::move(fa);
      b.perms[mi].clear();
      erase_instrs(b, {static_cast<size_t>(pq), static_cast<size_t>(pk),
                       static_cast<size_t>(pv), i, static_cast<size_t>(di),
                       static_cast<size_t>(si), static_cast<size_t>(ci)});
      b.fused++;
      changed = true;
    }
  }
}

/// x[B,S] * ve[S,D] + pe[S,D] -> kFEmbed (the token-embedding preamble).
void pass_fuse_embed(Build& b) {
  Analysis an = analyze(b);
  for (size_t i = 0; i < b.instrs.size(); ++i) {
    const Instr& ml = b.instrs[i];
    if (ml.k != IKind::kBinary || ml.fn != static_cast<uint8_t>(BinFn::kMul) ||
        ml.mode != 3) {
      continue;
    }
    // Shapes come from the referenced cells: after pass_alias_reshapes the
    // x operand is a [B, S, 1] alias of the rank-2 input root, and resolving
    // first would drop the reshape.
    const Cell& xa = b.cells[ml.a];
    const Cell& ve = b.cells[ml.b];
    if (xa.shape.size() != 3 || xa.shape[2] != 1 || ve.shape.size() != 2) {
      continue;
    }
    const size_t B = xa.shape[0];
    const size_t S = xa.shape[1];
    const size_t D = ve.shape[1];
    if (ve.shape[0] != S || ml.so != Shape{B, S, D}) continue;
    const int ai = sole_reader(b, an, ml.out);
    if (ai < 0) continue;
    const Instr& ad = b.instrs[ai];
    if (ad.k != IKind::kBinary || ad.fn != static_cast<uint8_t>(BinFn::kAdd) ||
        ad.mode != 1 || ad.r0 != S * D || b.resolve(ad.a) != b.resolve(ml.out)) {
      continue;
    }
    Instr fe;
    fe.k = IKind::kFEmbed;
    fe.out = ad.out;
    fe.a = ml.a;
    fe.b = ml.b;
    fe.c = ad.b;
    fe.r0 = B;
    fe.r1 = S;
    fe.kk = D;
    b.instrs[ai] = std::move(fe);
    erase_instrs(b, {i});
    b.fused++;
    return pass_fuse_embed(b);  // indices shifted; rescan
  }
}

/// GEMM epilogue fusions: gemm→(+bias) → kFGemmBias; gemm→bias_gelu →
/// kFGemmBiasGelu; kFGemmBias→(+residual, same shape) → kFGemmBiasRes.
/// The epilogue applies after each output element's full K accumulation, so
/// the rounding sequence equals the separate eager ops'.
void pass_fuse_gemm_epilogues(Build& b) {
  bool changed = true;
  while (changed) {
    changed = false;
    Analysis an = analyze(b);
    for (size_t i = 0; i < b.instrs.size() && !changed; ++i) {
      const Instr& g = b.instrs[i];
      if (g.k == IKind::kGemm && !g.flag) {
        const int ri = sole_reader(b, an, g.out);
        if (ri < 0) continue;
        const Instr& nx = b.instrs[ri];
        if (nx.k == IKind::kBinary &&
            nx.fn == static_cast<uint8_t>(BinFn::kAdd) && nx.mode == 1 &&
            nx.r0 == g.n && g.n > 1 && b.resolve(nx.a) == b.resolve(g.out)) {
          Instr f = g;
          f.k = IKind::kFGemmBias;
          f.out = nx.out;
          f.c = nx.b;
          b.instrs[ri] = std::move(f);
          erase_instrs(b, {i});
          b.fused++;
          changed = true;
        } else if (nx.k == IKind::kBiasGelu &&
                   b.resolve(nx.a) == b.resolve(g.out) && nx.n == g.n) {
          Instr f = g;
          f.k = IKind::kFGemmBiasGelu;
          f.out = nx.out;
          f.c = nx.b;
          b.instrs[ri] = std::move(f);
          erase_instrs(b, {i});
          b.fused++;
          changed = true;
        }
      } else if (g.k == IKind::kFGemmBias) {
        const int ri = sole_reader(b, an, g.out);
        if (ri < 0) continue;
        const Instr& nx = b.instrs[ri];
        if (nx.k != IKind::kBinary ||
            nx.fn != static_cast<uint8_t>(BinFn::kAdd) || nx.mode != 0) {
          continue;
        }
        // float add is commutative bitwise, so either operand may carry the
        // residual
        uint32_t res = 0;
        if (b.resolve(nx.a) == b.resolve(g.out)) {
          res = nx.b;
        } else if (b.resolve(nx.b) == b.resolve(g.out)) {
          res = nx.a;
        } else {
          continue;
        }
        Instr f = g;
        f.k = IKind::kFGemmBiasRes;
        f.out = nx.out;
        f.d = res;
        b.instrs[ri] = std::move(f);
        erase_instrs(b, {i});
        b.fused++;
        changed = true;
      }
    }
  }
}

/// Batched GEMM over contiguous a-batches of a rank-2 b collapses to one
/// M*nb GEMM: same per-element ascending-k chains, better row parallelism.
void pass_flatten_gemms(Build& b) {
  for (Instr& g : b.instrs) {
    if (g.k != IKind::kGemm && g.k != IKind::kFGemmBias &&
        g.k != IKind::kFGemmBiasRes && g.k != IKind::kFGemmBiasGelu) {
      continue;
    }
    if (g.flag || g.aoff.size() <= 1) continue;
    bool contiguous = true;
    for (size_t bi = 0; bi < g.aoff.size(); ++bi) {
      if (g.aoff[bi] != bi * g.m * g.kk || g.boff[bi] != 0) {
        contiguous = false;
        break;
      }
    }
    if (!contiguous) continue;
    g.m *= g.aoff.size();
    g.aoff.assign(1, 0);
    g.boff.assign(1, 0);
  }
}

/// Drops instructions whose output no one reads (leftover scale consts etc.).
void pass_dce(Build& b) {
  std::vector<char> needed(b.cells.size(), 0);
  needed[b.resolve(b.output_cell)] = 1;
  std::vector<size_t> dead;
  for (size_t i = b.instrs.size(); i-- > 0;) {
    if (!needed[b.resolve(b.instrs[i].out)]) {
      dead.push_back(i);
      continue;
    }
    for_each_in(b.instrs[i],
                [&](uint32_t v) { needed[b.resolve(v)] = 1; });
  }
  erase_instrs(b, dead);
}

// -- memory planner ----------------------------------------------------------

/// Linear-scan lifetime analysis + best-fit arena assignment over storage
/// roots. Returns the arena size in floats.
size_t plan_memory(Build& b) {
  const size_t nc = b.cells.size();
  const int ni = static_cast<int>(b.instrs.size());
  std::vector<int> def(nc, -2);   // -1: input (live before instr 0)
  std::vector<int> last(nc, -2);
  const uint32_t in_root = b.resolve(b.input_cell);
  const uint32_t out_root = b.resolve(b.output_cell);
  if (b.cells[in_root].kind == CellKind::kInput) def[in_root] = -1;
  for (int i = 0; i < ni; ++i) {
    const uint32_t o = b.resolve(b.instrs[i].out);
    if (def[o] == -2) def[o] = i;
    for_each_in(b.instrs[i], [&](uint32_t v) {
      const uint32_t r = b.resolve(v);
      last[r] = std::max(last[r], i);
    });
  }
  last[out_root] = ni;  // read by the final output copy
  last[in_root] = std::max(last[in_root], def[in_root]);

  struct Block {
    size_t off, len;
  };
  std::vector<Block> free_list;
  size_t top = 0;
  auto alloc = [&](size_t len) -> size_t {
    len = align_up(len);
    int best = -1;
    for (size_t f = 0; f < free_list.size(); ++f) {
      if (free_list[f].len >= len &&
          (best < 0 || free_list[f].len < free_list[static_cast<size_t>(best)].len)) {
        best = static_cast<int>(f);
      }
    }
    if (best >= 0) {
      Block& blk = free_list[static_cast<size_t>(best)];
      const size_t off = blk.off;
      blk.off += len;
      blk.len -= len;
      if (blk.len == 0) free_list.erase(free_list.begin() + best);
      return off;
    }
    const size_t off = top;
    top += len;
    return off;
  };
  auto release = [&](size_t off, size_t len) {
    len = align_up(len);
    // insert sorted by offset, coalescing with neighbours
    size_t f = 0;
    while (f < free_list.size() && free_list[f].off < off) ++f;
    free_list.insert(free_list.begin() + static_cast<int>(f), {off, len});
    if (f + 1 < free_list.size() &&
        free_list[f].off + free_list[f].len == free_list[f + 1].off) {
      free_list[f].len += free_list[f + 1].len;
      free_list.erase(free_list.begin() + static_cast<int>(f) + 1);
    }
    if (f > 0 &&
        free_list[f - 1].off + free_list[f - 1].len == free_list[f].off) {
      free_list[f - 1].len += free_list[f].len;
      free_list.erase(free_list.begin() + static_cast<int>(f));
    }
  };

  auto is_arena = [&](uint32_t r) {
    return b.cells[r].kind == CellKind::kTemp ||
           b.cells[r].kind == CellKind::kInput;
  };
  for (int t = -1; t < ni; ++t) {
    // allocate outputs defined at t
    for (uint32_t r = 0; r < nc; ++r) {
      if (b.root[r] == r && is_arena(r) && def[r] == t) {
        b.cells[r].offset = alloc(b.cells[r].size);
      }
    }
    // then release roots last read at t (never overlaps same-instr outputs)
    for (uint32_t r = 0; r < nc; ++r) {
      if (b.root[r] == r && is_arena(r) && last[r] == t && def[r] >= -1) {
        release(b.cells[r].offset, b.cells[r].size);
      }
    }
  }
  return top;
}

}  // namespace

// -- compile -----------------------------------------------------------------

std::shared_ptr<const CompiledProgram> compile(
    const Tracer& tracer,
    const std::unordered_map<const Node*, LeafBinding>& leaves,
    const Node* output, const CompileOptions& opt, std::string* why) {
  std::string local_why;
  if (why == nullptr) why = &local_why;
  if (tracer.failed()) {
    *why = tracer.reason();
    return nullptr;
  }
  Build b;
  std::unordered_map<const Node*, uint32_t> vid;
  bool have_input = false;

  auto add_cell = [&](const Node* n, CellKind kind, uint32_t slot) {
    Cell c;
    c.kind = kind;
    c.shape = n->shape;
    c.size = n->value.size();
    c.slot = slot;
    const auto id = static_cast<uint32_t>(b.cells.size());
    b.cells.push_back(std::move(c));
    b.root.push_back(id);
    vid.emplace(n, id);
    return id;
  };
  auto map_leaf = [&](const std::shared_ptr<Node>& n) -> int64_t {
    auto it = vid.find(n.get());
    if (it != vid.end()) return it->second;
    auto lb = leaves.find(n.get());
    if (lb == leaves.end()) return -1;
    if (lb->second.kind == LeafBinding::Kind::kInput) {
      have_input = true;
      const uint32_t id = add_cell(n.get(), CellKind::kInput, 0);
      b.input_cell = id;
      return id;
    }
    b.n_external = std::max<size_t>(b.n_external, lb->second.slot + 1);
    return add_cell(n.get(), CellKind::kExternal, lb->second.slot);
  };

  for (const TraceRec& rec : tracer.records()) {
    if (vid.count(rec.out.get()) != 0) {
      *why = "node produced twice in trace";
      return nullptr;
    }
    if (rec.kind == OpKind::kConst) {
      Cell c;
      c.kind = CellKind::kConst;
      c.shape = rec.out->shape;
      c.size = rec.out->value.size();
      c.slot = static_cast<uint32_t>(b.consts.size());
      b.consts.insert(b.consts.end(), rec.out->value.begin(),
                      rec.out->value.end());
      const auto id = static_cast<uint32_t>(b.cells.size());
      b.cells.push_back(std::move(c));
      b.root.push_back(id);
      vid.emplace(rec.out.get(), id);
      continue;
    }
    int64_t va = -1;
    int64_t vb = 0;
    int64_t vc = 0;
    if (rec.a) va = map_leaf(rec.a);
    if (rec.b) vb = map_leaf(rec.b);
    if (rec.c) vc = map_leaf(rec.c);
    if (va < 0 || vb < 0 || vc < 0) {
      *why = "trace reads a node no eager op produced (unknown leaf)";
      return nullptr;
    }
    const uint32_t out = add_cell(rec.out.get(), CellKind::kTemp, 0);
    if (!lower(b, rec, out, static_cast<uint32_t>(va),
               static_cast<uint32_t>(vb), static_cast<uint32_t>(vc), why)) {
      return nullptr;
    }
  }
  auto oit = vid.find(output);
  if (!have_input || oit == vid.end()) {
    *why = have_input ? "output node was not traced" : "input never consumed";
    return nullptr;
  }
  b.output_cell = oit->second;

  pass_alias_reshapes(b);
  if (opt.fuse) {
    pass_fuse_attention(b);
    pass_fuse_embed(b);
    pass_fuse_gemm_epilogues(b);
    pass_flatten_gemms(b);
  }
  pass_dce(b);
  const size_t arena = plan_memory(b);

  auto prog = std::make_shared<CompiledProgram>();
  // resolve every operand to its storage root so the executor never chases
  // aliases
  for (Instr& ins : b.instrs) {
    ins.out = b.resolve(ins.out);
    ins.a = b.resolve(ins.a);
    ins.b = b.resolve(ins.b);
    ins.c = b.resolve(ins.c);
    ins.d = b.resolve(ins.d);
  }
  prog->in_shape = b.cells[b.resolve(b.input_cell)].shape;
  prog->out_shape = b.cells[b.output_cell].shape;
  prog->input_cell = b.resolve(b.input_cell);
  prog->output_cell = b.resolve(b.output_cell);
  prog->cells = std::move(b.cells);
  prog->instrs = std::move(b.instrs);
  prog->arena_floats = arena;
  prog->n_external = b.n_external;
  prog->consts = std::move(b.consts);
  prog->fused_instrs = b.fused;
  // propagate root storage offsets to alias cells for introspection
  for (size_t i = 0; i < prog->cells.size(); ++i) {
    uint32_t r = static_cast<uint32_t>(i);
    while (b.root[r] != r) r = b.root[r];
    if (r != i) {
      prog->cells[i].kind = prog->cells[r].kind;
      prog->cells[i].offset = prog->cells[r].offset;
      prog->cells[i].slot = prog->cells[r].slot;
    }
  }
  return prog;
}

// -- executor ----------------------------------------------------------------

// -- quantizable-gemm classification -----------------------------------------

namespace {

/// A gemm the reduced-precision tier can take over: plain (non-transposed)
/// or fused-epilogue, single batch, with an external (parameter) weight
/// operand. Everything else — attention cores, normalizations, transposed
/// gemms — stays fp32 under every precision tier.
bool quantizable_gemm(const CompiledProgram& p, const Instr& ins) {
  switch (ins.k) {
    case IKind::kGemm:
      if (ins.flag) return false;
      break;
    case IKind::kFGemmBias:
    case IKind::kFGemmBiasRes:
    case IKind::kFGemmBiasGelu:
      break;
    default:
      return false;
  }
  return p.cells[ins.b].kind == CellKind::kExternal &&
         ins.aoff.size() == 1 && ins.boff.size() == 1;
}

}  // namespace

std::vector<size_t> CompiledProgram::quant_gemms() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < instrs.size(); ++i) {
    if (quantizable_gemm(*this, instrs[i])) out.push_back(i);
  }
  return out;
}

size_t CompiledProgram::static_bytes(quant::Precision p) const {
  size_t total = static_bytes();
  if (p == quant::Precision::kFp32) return total;
  size_t scratch = 0;
  for (const size_t i : quant_gemms()) {
    const Instr& ins = instrs[i];
    if (p == quant::Precision::kInt8) {
      const size_t k4 = (ins.kk + 3) / 4;
      total += k4 * 4 * ins.n;                // packed int8 weight
      total += ins.n * sizeof(int32_t);       // per-column compensation
      scratch = std::max(scratch, ins.m * k4 * 4);  // u8 activation rows
    } else {
      total += ins.kk * ins.n * sizeof(uint16_t);  // bf16 weight copy
    }
  }
  return total + scratch;
}

/// Packed-weight sidecar for one quantizable gemm. Rebuilt whenever an
/// external rebinds (weights changed) or the calibration table is replaced;
/// in steady-state serving that is once per replica.
struct ProgramExec::QuantGemm {
  size_t instr = 0;
  quant::QuantizedWeight w8;   // int8 tier
  quant::Bf16Weight wb;        // bf16 tier
  float act_scale = 1.0F;      // int8: calibrated activation scale
};

ProgramExec::ProgramExec(std::shared_ptr<const CompiledProgram> prog)
    : prog_(std::move(prog)) {
  arena_.resize(prog_->arena_floats);
  external_.assign(prog_->n_external, nullptr);
  ptrs_.assign(prog_->cells.size(), nullptr);
}

ProgramExec::~ProgramExec() = default;

void ProgramExec::bind_external(uint32_t slot, const float* p) {
  external_[slot] = p;
  resolved_ = false;
  qready_ = false;
}

void ProgramExec::set_precision(quant::Precision p) {
  if (precision_ == p) return;
  precision_ = p;
  qready_ = false;
}

bool ProgramExec::set_calibration(std::vector<float> absmax) {
  if (absmax.size() != prog_->quant_gemms().size()) return false;
  calib_ = std::move(absmax);
  calibrated_ = true;
  qready_ = false;
  return true;
}

void ProgramExec::capture_absmax(std::vector<float>* out) {
  capture_ = out;
  if (capture_ != nullptr) {
    capture_->assign(prog_->quant_gemms().size(), 0.0F);
  }
}

void ProgramExec::prepare_quant_() {
  if (!resolved_) resolve_();
  const std::vector<size_t> idxs = prog_->quant_gemms();
  qgemms_.clear();
  qgemms_.reserve(idxs.size());
  size_t scratch = 0;
  for (size_t qi = 0; qi < idxs.size(); ++qi) {
    const Instr& ins = prog_->instrs[idxs[qi]];
    QuantGemm qg;
    qg.instr = idxs[qi];
    const float* wsrc = ptrs_[ins.b] + ins.boff[0];
    if (precision_ == quant::Precision::kInt8) {
      quant::quantize_weight_kn(wsrc, ins.kk, ins.n, &qg.w8);
      qg.act_scale = quant::scale_for(calib_[qi]);
      scratch = std::max(scratch, ins.m * qg.w8.K4 * 4);
    } else {
      quant::bf16_pack_weight(wsrc, ins.kk, ins.n, &qg.wb);
    }
    qgemms_.push_back(std::move(qg));
  }
  qscratch_.resize(scratch);
  qready_ = true;
}

void ProgramExec::resolve_() {
  for (size_t i = 0; i < prog_->cells.size(); ++i) {
    const Cell& c = prog_->cells[i];
    switch (c.kind) {
      case CellKind::kTemp:
      case CellKind::kInput:
        ptrs_[i] = arena_.data() + c.offset;
        break;
      case CellKind::kExternal:
        // written through only for cells that are instruction outputs, which
        // externals never are
        ptrs_[i] = const_cast<float*>(external_[c.slot]);
        break;
      case CellKind::kConst:
        ptrs_[i] = const_cast<float*>(prog_->consts.data()) + c.slot;
        break;
    }
  }
  resolved_ = true;
}

namespace {

using kern::gelu_fwd;

/// Elementwise binary dispatch reproducing binary_bcast's forward loops
/// (same per-element ops; mode picked at compile time the same way the
/// eager shape tests pick a path).
template <typename F>
void run_binary(const Instr& ins, const float* a, const float* bb, float* o,
                F fwd) {
  switch (ins.mode) {
    case 0:
      for (size_t i = 0; i < ins.n; ++i) o[i] = fwd(a[i], bb[i]);
      break;
    case 1: {
      const size_t L = ins.r0;
      if (L == 1) {
        const float bv = bb[0];
        for (size_t i = 0; i < ins.n; ++i) o[i] = fwd(a[i], bv);
      } else {
        for (size_t i0 = 0; i0 < ins.n; i0 += L) {
          const float* pa = a + i0;
          float* po = o + i0;
          for (size_t j = 0; j < L; ++j) po[j] = fwd(pa[j], bb[j]);
        }
      }
      break;
    }
    case 2: {
      const size_t L = ins.r0;
      if (L == 1) {
        const float av = a[0];
        for (size_t i = 0; i < ins.n; ++i) o[i] = fwd(av, bb[i]);
      } else {
        for (size_t i0 = 0; i0 < ins.n; i0 += L) {
          const float* pb = bb + i0;
          float* po = o + i0;
          for (size_t j = 0; j < L; ++j) po[j] = fwd(a[j], pb[j]);
        }
      }
      break;
    }
    default: {
      // general broadcast: incremental odometer over the output shape
      const size_t rank = ins.so.size();
      const size_t* sa = ins.tbl.data();
      const size_t* sb = ins.tbl.data() + rank;
      size_t idx[kMaxRank] = {0};
      size_t oa = 0;
      size_t ob = 0;
      for (size_t i = 0; i < ins.n; ++i) {
        o[i] = fwd(a[oa], bb[ob]);
        for (size_t d = rank; d-- > 0;) {
          ++idx[d];
          oa += sa[d];
          ob += sb[d];
          if (idx[d] < ins.so[d]) break;
          oa -= idx[d] * sa[d];
          ob -= idx[d] * sb[d];
          idx[d] = 0;
        }
      }
      break;
    }
  }
}

/// Batched GEMM with an optional per-row epilogue applied after each output
/// element's complete K accumulation (epi 0: none, 1: +bias, 2: +bias then
/// +residual, 3: gelu(+bias)) — the same rounded steps as the separate ops.
void run_gemm(const Instr& ins, const float* a, const float* w, float* o,
              const float* bias, const float* res, int epi) {
  const size_t M = ins.m;
  const size_t K = ins.kk;
  const size_t N = ins.n;
  const size_t nb = ins.aoff.size();
  const size_t o_mat = M * N;
  core::parallel_for_blocks_static(
      M, kern::gemm_row_grain(K * N * nb), [&](size_t m0, size_t m1) {
        for (size_t bi = 0; bi < nb; ++bi) {
          const float* pa = a + ins.aoff[bi];
          const float* pb = w + ins.boff[bi];
          float* po = o + bi * o_mat;
          kern::gemm_rows<true>(pa, pb, po, m0, m1, 0,
                                std::min(K, kern::kGemmKTile), K, N);
          for (size_t k0 = kern::kGemmKTile; k0 < K; k0 += kern::kGemmKTile) {
            kern::gemm_rows<false>(pa, pb, po, m0, m1, k0,
                                   std::min(K, k0 + kern::kGemmKTile), K, N);
          }
          if (epi == 0) continue;
          for (size_t m = m0; m < m1; ++m) {
            float* prow = po + m * N;
            if (epi == 1) {
              for (size_t j = 0; j < N; ++j) prow[j] = prow[j] + bias[j];
            } else if (epi == 2) {
              const float* rrow = res + bi * o_mat + m * N;
              for (size_t j = 0; j < N; ++j) {
                const float t = prow[j] + bias[j];
                prow[j] = rrow[j] + t;
              }
            } else {
              for (size_t j = 0; j < N; ++j) {
                prow[j] = gelu_fwd(prow[j] + bias[j]);
              }
            }
          }
        }
      });
}

/// C = A * B^T via the same pack-then-panel scheme as gemm_nt_forward
/// (pooled pack buffer; pool reuse, no steady-state allocation after
/// warmup).
void run_gemm_nt(const Instr& ins, const float* a, const float* bsrc,
                 float* c) {
  const size_t M = ins.m;
  const size_t K = ins.kk;
  const size_t N = ins.n;
  const size_t nb = ins.aoff.size();
  const size_t o_mat = M * N;
  const size_t b_mat = K * N;
  std::vector<float> bt = BufferPool::acquire(nb * b_mat);
  for (size_t bi = 0; bi < nb; ++bi) {
    const float* pb = bsrc + ins.boff[bi];
    float* pt = bt.data() + bi * b_mat;
    for (size_t n = 0; n < N; ++n) {
      for (size_t k = 0; k < K; ++k) pt[k * N + n] = pb[n * K + k];
    }
  }
  core::parallel_for_blocks_static(
      M, kern::gemm_row_grain(K * N * nb), [&](size_t m0, size_t m1) {
        for (size_t bi = 0; bi < nb; ++bi) {
          kern::gemm_rows<true>(a + ins.aoff[bi], bt.data() + bi * b_mat,
                                c + bi * o_mat, m0, m1, 0, K, K, N);
        }
      });
  BufferPool::release(std::move(bt));
}

/// Fused attention core over the [B,S,H*Dh] projections: per (b,h) group,
/// pack k^T into a stack tile, scores via the shared GEMM panels
/// (ascending-d chains, identical to gemm_nt_forward), scale each element
/// after its full accumulation (the eager div op), shared softmax / masked
/// renorm row routines, then ctx GEMM with v rows read at stride D and the
/// merged output written strided — eliminating every permute/reshape.
/// Body of one contiguous range of (b, h) attention groups. CS/CDh are
/// compile-time seq-length / head-dim hints (0 = use the runtime value):
/// constant trip counts let the packs, panel GEMMs and softmax rows fully
/// unroll, which measures ~3x over the one generic instantiation on the
/// paper shapes. Every specialization executes the same rounded float ops in
/// the same per-element order as the generic form, so outputs are bitwise
/// identical whichever instantiation the dispatcher picks.
template <size_t CS, size_t CDh>
void fattn_groups_impl(size_t rt_s, size_t rt_dh, size_t D, size_t H,
                       float scale, float eps, const float* q, const float* k,
                       const float* v, const float* mask, float* o, size_t g0,
                       size_t g1) {
  const size_t S = CS != 0 ? CS : rt_s;
  const size_t Dh = CDh != 0 ? CDh : rt_dh;
  float kt[kAttnMaxDh * kAttnMaxS];
  float sc[kAttnMaxS * kAttnMaxS];
  for (size_t g = g0; g < g1; ++g) {
    const size_t bb = g / H;
    const size_t h = g % H;
    const float* qs = q + bb * S * D + h * Dh;
    const float* ks = k + bb * S * D + h * Dh;
    const float* vs = v + bb * S * D + h * Dh;
    float* os = o + bb * S * D + h * Dh;
    for (size_t s = 0; s < S; ++s) {
      for (size_t d = 0; d < Dh; ++d) kt[d * S + s] = ks[s * D + d];
    }
    // At these tiny extents (K = Dh, N = S) the register-blocked gemm path
    // loses to straight per-row 8-wide panels — same ascending-k chains, so
    // bitwise identical — by ~6x; use panels whenever the specialized dims
    // divide evenly and fall back to the shared blocked kernel otherwise.
    if constexpr (CS != 0 && CS % 8 == 0 && CDh != 0) {
      for (size_t m = 0; m < S; ++m) {
        const float* qr = qs + m * D;
        float* pom = sc + m * S;
        for (size_t n0 = 0; n0 < S; n0 += 8) {
          kern::gemm_row_panel<8, true>(qr, kt + n0, pom + n0, 0, Dh, S);
        }
      }
    } else {
      kern::gemm_rows_ld<true>(qs, D, kt, S, sc, S, 0, S, 0, Dh, S);
    }
    for (size_t si = 0; si < S; ++si) {
      float* row = sc + si * S;
      for (size_t j = 0; j < S; ++j) row[j] = row[j] / scale;
      kern::softmax_row(row, row, S);
      if (mask != nullptr) {
        kern::masked_renorm_row(row, mask + si * S, row, S, eps);
      }
    }
    if constexpr (CDh != 0 && CDh % 8 == 0) {
      for (size_t si = 0; si < S; ++si) {
        const float* ar = sc + si * S;
        float* orow = os + si * D;
        for (size_t n0 = 0; n0 < Dh; n0 += 8) {
          kern::gemm_row_panel<8, true>(ar, vs + n0, orow + n0, 0, S, D);
        }
      }
    } else {
      kern::gemm_rows_ld<true>(sc, S, vs, D, os, D, 0, S, 0, S, Dh);
    }
  }
}

/// Shape dispatcher: route the common (S, Dh) pairs (the paper's 24-token
/// config and the small test configs) to fully-specialized instantiations,
/// everything else to the generic one.
void fattn_groups(size_t S, size_t Dh, size_t D, size_t H, float scale,
                  float eps, const float* q, const float* k, const float* v,
                  const float* mask, float* o, size_t g0, size_t g1) {
  if (Dh == 8) {
    switch (S) {
      case 24:
        return fattn_groups_impl<24, 8>(S, Dh, D, H, scale, eps, q, k, v,
                                        mask, o, g0, g1);
      case 16:
        return fattn_groups_impl<16, 8>(S, Dh, D, H, scale, eps, q, k, v,
                                        mask, o, g0, g1);
      case 8:
        return fattn_groups_impl<8, 8>(S, Dh, D, H, scale, eps, q, k, v,
                                       mask, o, g0, g1);
      default:
        return fattn_groups_impl<0, 8>(S, Dh, D, H, scale, eps, q, k, v,
                                       mask, o, g0, g1);
    }
  }
  fattn_groups_impl<0, 0>(S, Dh, D, H, scale, eps, q, k, v, mask, o, g0, g1);
}

void run_fattn(const Instr& ins, const float* q, const float* k,
               const float* v, const float* mask, float* o) {
  const size_t S = ins.m;
  const size_t Dh = ins.kk;
  const size_t D = ins.n;
  const size_t B = ins.r0;
  const size_t H = ins.r1;
  const size_t G = B * H;
  const float scale = ins.f0;
  const float eps = ins.f1;
  const size_t grain = std::max<size_t>(
      1, kern::kGemmGrainFlops / std::max<size_t>(1, S * S * Dh));
  core::parallel_for_blocks_static(G, grain, [&](size_t g0, size_t g1) {
    fattn_groups(S, Dh, D, H, scale, eps, q, k, v, mask, o, g0, g1);
  });
}

}  // namespace

void ProgramExec::run(const float* in, float* out) {
  if (!resolved_) resolve_();
  const CompiledProgram& p = *prog_;
  // Reduced-precision execution only engages off the default path: never
  // during calibration capture (which must observe fp32 activations), and
  // int8 never without a calibration table.
  const bool quant_run =
      precision_ != quant::Precision::kFp32 && capture_ == nullptr &&
      (precision_ != quant::Precision::kInt8 || calibrated_);
  if (quant_run && !qready_) prepare_quant_();
  size_t next_q = 0;  // cursor over quantizable gemms, schedule order
  // int8 activation-quantization cache: the q/k/v projections read the same
  // layer-norm output with the same calibrated scale, so the offset-u8 rows
  // in qscratch_ can be reused across consecutive gemms.
  const float* qact_src = nullptr;
  float qact_scale = 0.0F;
  size_t qact_m = 0;
  size_t qact_k = 0;
  // Takes over a gemm for capture or reduced-precision execution. Returns
  // true when the caller must skip the fp32 kernel (the quant tier ran it).
  auto maybe_quant = [&](const Instr& ins, const float* a, const float* bias,
                         const float* res, float* o, int epi) -> bool {
    if ((capture_ == nullptr && !quant_run) || !quantizable_gemm(p, ins)) {
      return false;
    }
    if (capture_ != nullptr) {
      (*capture_)[next_q] =
          std::max((*capture_)[next_q],
                   quant::absmax(a + ins.aoff[0], ins.m * ins.kk));
      ++next_q;
      return false;  // capture observes the fp32 execution
    }
    QuantGemm& qg = qgemms_[next_q++];
    const float* pa = a + ins.aoff[0];
    const size_t grain = kern::gemm_row_grain(ins.kk * ins.n);
    if (precision_ == quant::Precision::kInt8) {
      const size_t ldq = qg.w8.K4 * 4;
      if (pa != qact_src || qg.act_scale != qact_scale || ins.m != qact_m ||
          ins.kk != qact_k) {
        quant::quantize_act_u8(pa, ins.m, ins.kk, qg.act_scale,
                               qscratch_.data(), ldq);
        qact_src = pa;
        qact_scale = qg.act_scale;
        qact_m = ins.m;
        qact_k = ins.kk;
      }
      const float dq = qg.act_scale * qg.w8.scale;
      core::parallel_for_blocks_static(
          ins.m, grain, [&](size_t m0, size_t m1) {
            quant::gemm_u8s8(qscratch_.data(), ldq, qg.w8, dq, bias, res,
                             ins.n, epi, o, m0, m1);
          });
    } else {
      core::parallel_for_blocks_static(
          ins.m, grain, [&](size_t m0, size_t m1) {
            quant::gemm_bf16(pa, qg.wb, bias, res, ins.n, epi, o, m0, m1);
          });
    }
    return true;
  };
  std::copy(in, in + numel(p.in_shape),
            ptrs_[p.input_cell]);
  for (const Instr& ins : p.instrs) {
    const float* a = ptrs_[ins.a];
    const float* bb = ptrs_[ins.b];
    const float* cc = ptrs_[ins.c];
    float* o = ptrs_[ins.out];
    switch (ins.k) {
      case IKind::kBinary:
        switch (static_cast<BinFn>(ins.fn)) {
          case BinFn::kAdd:
            run_binary(ins, a, bb, o, [](float x, float y) { return x + y; });
            break;
          case BinFn::kSub:
            run_binary(ins, a, bb, o, [](float x, float y) { return x - y; });
            break;
          case BinFn::kMul:
            run_binary(ins, a, bb, o, [](float x, float y) { return x * y; });
            break;
          case BinFn::kDiv:
            run_binary(ins, a, bb, o, [](float x, float y) { return x / y; });
            break;
        }
        break;
      case IKind::kUnary: {
        // the exact scalar expressions of the eager unary ops
        const size_t n = ins.n;
        switch (static_cast<UnFn>(ins.fn)) {
          case UnFn::kNeg:
            for (size_t i = 0; i < n; ++i) o[i] = -a[i];
            break;
          case UnFn::kRelu:
            for (size_t i = 0; i < n; ++i) o[i] = a[i] > 0.0F ? a[i] : 0.0F;
            break;
          case UnFn::kGelu:
            for (size_t i = 0; i < n; ++i) o[i] = gelu_fwd(a[i]);
            break;
          case UnFn::kTanh:
            for (size_t i = 0; i < n; ++i) o[i] = std::tanh(a[i]);
            break;
          case UnFn::kSigmoid:
            for (size_t i = 0; i < n; ++i) {
              o[i] = 1.0F / (1.0F + std::exp(-a[i]));
            }
            break;
          case UnFn::kExp:
            for (size_t i = 0; i < n; ++i) o[i] = std::exp(a[i]);
            break;
          case UnFn::kLog:
            for (size_t i = 0; i < n; ++i) o[i] = std::log(a[i]);
            break;
          case UnFn::kSquare:
            for (size_t i = 0; i < n; ++i) o[i] = a[i] * a[i];
            break;
          case UnFn::kAbs:
            for (size_t i = 0; i < n; ++i) o[i] = std::fabs(a[i]);
            break;
        }
        break;
      }
      case IKind::kGemm:
        if (ins.flag) {
          run_gemm_nt(ins, a, bb, o);
        } else if (!maybe_quant(ins, a, nullptr, nullptr, o, 0)) {
          run_gemm(ins, a, bb, o, nullptr, nullptr, 0);
        }
        break;
      case IKind::kFGemmBias:
        if (!maybe_quant(ins, a, cc, nullptr, o, 1)) {
          run_gemm(ins, a, bb, o, cc, nullptr, 1);
        }
        break;
      case IKind::kFGemmBiasRes:
        if (!maybe_quant(ins, a, cc, ptrs_[ins.d], o, 2)) {
          run_gemm(ins, a, bb, o, cc, ptrs_[ins.d], 2);
        }
        break;
      case IKind::kFGemmBiasGelu:
        if (!maybe_quant(ins, a, cc, nullptr, o, 3)) {
          run_gemm(ins, a, bb, o, cc, nullptr, 3);
        }
        break;
      case IKind::kSoftmax:
        for (size_t r = 0; r < ins.m; ++r) {
          kern::softmax_row(a + r * ins.n, o + r * ins.n, ins.n);
        }
        break;
      case IKind::kSoftmaxMasked:
        // no-grad form of softmax_masked_lastdim: the output row doubles as
        // the softmax scratch
        for (size_t r = 0; r < ins.m; ++r) {
          float* po = o + r * ins.n;
          kern::softmax_row(a + r * ins.n, po, ins.n);
          kern::masked_renorm_row(po, bb + (r % ins.r0) * ins.n, po, ins.n,
                                  ins.f0);
        }
        break;
      case IKind::kLayerNorm:
        for (size_t r = 0; r < ins.m; ++r) {
          kern::layer_norm_row(a + r * ins.n, o + r * ins.n, ins.n, ins.f0);
        }
        break;
      case IKind::kLayerNormAffine:
        if (quant_run) {
          quant::layer_norm_affine_rows_fast(a, bb, cc, o, ins.m, ins.n,
                                             ins.f0);
        } else {
          for (size_t r = 0; r < ins.m; ++r) {
            kern::layer_norm_affine_row(a + r * ins.n, bb, cc, o + r * ins.n,
                                        nullptr, ins.n, ins.f0);
          }
        }
        break;
      case IKind::kBiasGelu:
        kern::bias_gelu_rows(a, bb, o, ins.m, ins.n);
        break;
      case IKind::kReduceAll: {
        float s = 0.0F;
        for (size_t i = 0; i < ins.n; ++i) s += a[i];
        o[0] = ins.mode != 0 ? s / static_cast<float>(ins.n) : s;
        break;
      }
      case IKind::kReduceAxis: {
        const size_t outer = ins.r0;
        const size_t ax = ins.r1;
        const size_t inner = ins.r2;
        std::fill(o, o + outer * inner, 0.0F);
        for (size_t oo = 0; oo < outer; ++oo) {
          for (size_t x = 0; x < ax; ++x) {
            const float* src = a + (oo * ax + x) * inner;
            float* dst = o + oo * inner;
            for (size_t i = 0; i < inner; ++i) dst[i] += src[i];
          }
        }
        if (ins.mode != 0) {
          const float nax = static_cast<float>(ax);
          for (size_t i = 0; i < outer * inner; ++i) o[i] /= nax;
        }
        break;
      }
      case IKind::kCopy:
        std::copy(a, a + ins.n, o);
        break;
      case IKind::kPermute: {
        const size_t run = ins.r0;
        const size_t outer_rank = ins.r1;
        size_t idx[kMaxRank] = {0};
        size_t off = 0;
        for (size_t i = 0; i < ins.n; i += run) {
          for (size_t j = 0; j < run; ++j) o[i + j] = a[off + j];
          for (size_t d = outer_rank; d-- > 0;) {
            ++idx[d];
            off += ins.tbl[d];
            if (idx[d] < ins.so[d]) break;
            off -= ins.so[d] * ins.tbl[d];
            idx[d] = 0;
          }
        }
        break;
      }
      case IKind::kFEmbed: {
        const size_t B = ins.r0;
        const size_t S = ins.r1;
        const size_t D = ins.kk;
        for (size_t bi = 0; bi < B; ++bi) {
          for (size_t s = 0; s < S; ++s) {
            const float xv = a[bi * S + s];
            const float* vr = bb + s * D;
            const float* pr = cc + s * D;
            float* orow = o + (bi * S + s) * D;
            // two rounded steps, exactly the eager mul then add
            for (size_t j = 0; j < D; ++j) {
              const float t = xv * vr[j];
              orow[j] = t + pr[j];
            }
          }
        }
        break;
      }
      case IKind::kFAttn:
        if (quant_run) {
          const float* mk = ins.flag ? ptrs_[ins.d] : nullptr;
          const size_t G = ins.r0 * ins.r1;
          const size_t grain = std::max<size_t>(
              1, kern::kGemmGrainFlops /
                     std::max<size_t>(1, ins.m * ins.m * ins.kk));
          core::parallel_for_blocks_static(G, grain, [&](size_t g0,
                                                         size_t g1) {
            quant::fattn_rows_fast(ins.m, ins.kk, ins.n, ins.r1, ins.f0,
                                   ins.f1, a, bb, cc, mk, o, g0, g1);
          });
        } else {
          run_fattn(ins, a, bb, cc, ins.flag ? ptrs_[ins.d] : nullptr, o);
        }
        break;
    }
    // cells are reused across instructions: a write into the cached
    // activation buffer invalidates its quantized image
    if (o == qact_src) qact_src = nullptr;
  }
  const float* src = ptrs_[p.output_cell];
  std::copy(src, src + numel(p.out_shape), out);
}

// -- introspection -----------------------------------------------------------

namespace {

const char* ikind_name(IKind k) {
  switch (k) {
    case IKind::kBinary: return "binary";
    case IKind::kUnary: return "unary";
    case IKind::kGemm: return "gemm";
    case IKind::kSoftmax: return "softmax";
    case IKind::kSoftmaxMasked: return "softmax_masked";
    case IKind::kLayerNorm: return "layer_norm";
    case IKind::kLayerNormAffine: return "layer_norm_affine";
    case IKind::kBiasGelu: return "bias_gelu";
    case IKind::kReduceAll: return "reduce_all";
    case IKind::kReduceAxis: return "reduce_axis";
    case IKind::kCopy: return "copy";
    case IKind::kPermute: return "permute";
    case IKind::kFEmbed: return "fused_embed";
    case IKind::kFAttn: return "fused_attention";
    case IKind::kFGemmBias: return "fused_gemm_bias";
    case IKind::kFGemmBiasRes: return "fused_gemm_bias_residual";
    case IKind::kFGemmBiasGelu: return "fused_gemm_bias_gelu";
  }
  return "?";
}

const char* binfn_name(uint8_t fn) {
  switch (static_cast<BinFn>(fn)) {
    case BinFn::kAdd: return "add";
    case BinFn::kSub: return "sub";
    case BinFn::kMul: return "mul";
    case BinFn::kDiv: return "div";
  }
  return "?";
}

void dump_cell(std::ostream& os, const CompiledProgram& p, uint32_t v) {
  const Cell& c = p.cells[v];
  os << "%" << v << shape_str(c.shape);
  switch (c.kind) {
    case CellKind::kTemp:
      os << "@" << c.offset;
      break;
    case CellKind::kInput:
      os << ":in@" << c.offset;
      break;
    case CellKind::kExternal:
      os << ":ext" << c.slot;
      break;
    case CellKind::kConst:
      os << ":const(" << p.consts[c.slot] << ")";
      break;
  }
}

}  // namespace

void CompiledProgram::dump(std::ostream& os, quant::Precision p) const {
  std::vector<bool> quantized(instrs.size(), false);
  if (p != quant::Precision::kFp32) {
    for (const size_t i : quant_gemms()) quantized[i] = true;
  }
  const char* qtag = p == quant::Precision::kInt8 ? "i8" : "bf16";
  os << "schedule (" << instrs.size() << " instrs, " << fused_instrs
     << " fused):\n";
  for (size_t i = 0; i < instrs.size(); ++i) {
    const Instr& ins = instrs[i];
    os << "  [" << i << "] " << ikind_name(ins.k);
    if (ins.k == IKind::kBinary) os << "." << binfn_name(ins.fn);
    if (ins.k == IKind::kGemm && ins.flag) os << ".nt";
    if (ins.k == IKind::kFAttn && ins.flag) os << ".masked";
    os << " {" << (quantized[i] ? qtag : "f32") << "}";
    os << " ";
    dump_cell(os, *this, ins.out);
    os << " <- ";
    bool first = true;
    // replicate operand order via the same enumeration the passes use
    const Instr& cins = ins;
    auto show = [&](uint32_t v) {
      if (!first) os << ", ";
      first = false;
      dump_cell(os, *this, v);
    };
    switch (cins.k) {
      case IKind::kUnary:
      case IKind::kSoftmax:
      case IKind::kLayerNorm:
      case IKind::kReduceAll:
      case IKind::kReduceAxis:
      case IKind::kCopy:
      case IKind::kPermute:
        show(cins.a);
        break;
      case IKind::kBinary:
      case IKind::kGemm:
      case IKind::kSoftmaxMasked:
      case IKind::kBiasGelu:
        show(cins.a);
        show(cins.b);
        break;
      case IKind::kLayerNormAffine:
      case IKind::kFEmbed:
      case IKind::kFGemmBias:
      case IKind::kFGemmBiasGelu:
        show(cins.a);
        show(cins.b);
        show(cins.c);
        break;
      case IKind::kFGemmBiasRes:
        show(cins.a);
        show(cins.b);
        show(cins.c);
        show(cins.d);
        break;
      case IKind::kFAttn:
        show(cins.a);
        show(cins.b);
        show(cins.c);
        if (cins.flag) show(cins.d);
        break;
    }
    os << "\n";
  }
  os << "arena: " << arena_floats << " floats ("
     << arena_floats * sizeof(float) << " bytes), consts: " << consts.size()
     << " floats\n";
  os << "buffer reuse map (arena offset -> cells):\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    if (c.kind != CellKind::kTemp && c.kind != CellKind::kInput) continue;
    os << "  @" << c.offset << " +" << c.size << "  %" << i
       << shape_str(c.shape) << (c.kind == CellKind::kInput ? " (input)" : "")
       << "\n";
  }
  os << "static bytes: " << static_bytes() << "\n";
  os << "static bytes (bf16): " << static_bytes(quant::Precision::kBf16)
     << " (arena + consts + bf16 weight copies)\n";
  os << "static bytes (int8): " << static_bytes(quant::Precision::kInt8)
     << " (arena + consts + packed weights + compensation + u8 scratch)\n";
}

}  // namespace metadse::tensor::plan
