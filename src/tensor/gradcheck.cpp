#include "tensor/gradcheck.hpp"

#include <cmath>
#include <stdexcept>

namespace metadse::tensor {

GradCheckResult grad_check(const std::function<Tensor()>& loss_fn,
                           const std::vector<Tensor>& params, float eps,
                           double atol, double rtol) {
  // Analytic pass.
  for (auto p : params) {
    if (!p.requires_grad()) {
      throw std::invalid_argument("grad_check: param must require grad");
    }
    p.zero_grad();
  }
  Tensor loss = loss_fn();
  loss.backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(params.size());
  for (auto p : params) analytic.push_back(p.grad());

  GradCheckResult res;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor p = params[pi];
    auto& v = p.data();
    for (size_t i = 0; i < v.size(); ++i) {
      const float keep = v[i];
      v[i] = keep + eps;
      const double lp = loss_fn().item();
      v[i] = keep - eps;
      const double lm = loss_fn().item();
      v[i] = keep;
      const double numeric = (lp - lm) / (2.0 * static_cast<double>(eps));
      const double a = static_cast<double>(analytic[pi][i]);
      const double abs_err = std::fabs(a - numeric);
      const double allowed =
          atol + rtol * std::max(std::fabs(a), std::fabs(numeric));
      res.max_abs_err = std::max(res.max_abs_err, abs_err);
      res.worst_score = std::max(res.worst_score, abs_err / allowed);
      if (abs_err > allowed) ++res.violations;
    }
  }
  return res;
}

}  // namespace metadse::tensor
