// A small reverse-mode automatic-differentiation engine operating at tensor
// granularity. Tensors are cheap handles to shared graph nodes; every op in
// ops.hpp records a backward closure so Tensor::backward() can propagate
// gradients through arbitrary compositions (the MAML inner/outer loops, the
// masked-attention transformer, ...).
//
// Grad-mode allocations are pooled (the "tape arena", see pool.hpp): graph
// nodes, parents vectors, op outputs, backward closures, and gradient
// buffers of non-leaf nodes all recycle through the thread-local BufferPool,
// so a steady-state training loop rebuilds its tape without touching the
// heap.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "tensor/pool.hpp"
#include "tensor/rng.hpp"
#include "tensor/shape.hpp"

namespace metadse::tensor {

struct Node;

/// Move-only type-erased callable `void(Node&)` — the backward closure slot
/// of a graph node. Closures up to kInlineBytes (every op in ops.cpp) live
/// inline in the node; larger ones spill to a pooled block. Unlike
/// std::function this supports move-only captures (PooledVec stashes) and
/// never heap-allocates in steady state.
class BackwardFn {
 public:
  BackwardFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BackwardFn>>>
  BackwardFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    void* where = nullptr;
    if constexpr (sizeof(Fn) <= kInlineBytes) {
      where = buf_;
      relocate_ = [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      };
    } else {
      heap_bytes_ = sizeof(Fn);
      heap_ = BufferPool::alloc_block(heap_bytes_);
      where = heap_;
    }
    ::new (where) Fn(std::forward<F>(f));
    invoke_ = [](void* t, Node& n) { (*static_cast<Fn*>(t))(n); };
    destroy_ = [](void* t) { static_cast<Fn*>(t)->~Fn(); };
  }

  BackwardFn(BackwardFn&& o) noexcept
      : heap_(o.heap_),
        heap_bytes_(o.heap_bytes_),
        invoke_(o.invoke_),
        destroy_(o.destroy_),
        relocate_(o.relocate_) {
    if (invoke_ && heap_ == nullptr) relocate_(buf_, o.buf_);
    o.invoke_ = nullptr;
    o.destroy_ = nullptr;
    o.relocate_ = nullptr;
    o.heap_ = nullptr;
    o.heap_bytes_ = 0;
  }

  BackwardFn& operator=(BackwardFn&& o) noexcept {
    if (this != &o) {
      reset();
      heap_ = o.heap_;
      heap_bytes_ = o.heap_bytes_;
      invoke_ = o.invoke_;
      destroy_ = o.destroy_;
      relocate_ = o.relocate_;
      if (invoke_ && heap_ == nullptr) relocate_(buf_, o.buf_);
      o.invoke_ = nullptr;
      o.destroy_ = nullptr;
      o.relocate_ = nullptr;
      o.heap_ = nullptr;
      o.heap_bytes_ = 0;
    }
    return *this;
  }

  BackwardFn(const BackwardFn&) = delete;
  BackwardFn& operator=(const BackwardFn&) = delete;
  ~BackwardFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }
  void operator()(Node& self) { invoke_(target(), self); }

 private:
  /// Sized to the largest op closure in ops.cpp (fused LayerNorm: three
  /// parent handles plus two pooled stashes plus extents).
  static constexpr size_t kInlineBytes = 136;

  void* target() { return heap_ != nullptr ? heap_ : static_cast<void*>(buf_); }

  void reset() {
    if (invoke_ != nullptr) destroy_(target());
    if (heap_ != nullptr) BufferPool::free_block(heap_, heap_bytes_);
    invoke_ = nullptr;
    destroy_ = nullptr;
    relocate_ = nullptr;
    heap_ = nullptr;
    heap_bytes_ = 0;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* heap_ = nullptr;
  size_t heap_bytes_ = 0;
  void (*invoke_)(void*, Node&) = nullptr;
  void (*destroy_)(void*) = nullptr;
  void (*relocate_)(void* dst, void* src) = nullptr;
};

/// Parents list of a graph node; storage recycles through the BufferPool so
/// tape bookkeeping is allocation-free in steady state.
using NodeList = std::vector<std::shared_ptr<Node>, PoolAlloc<std::shared_ptr<Node>>>;

/// One vertex of the autodiff graph. Library users interact with Tensor;
/// Node is exposed only for op implementations and tests.
struct Node {
  Shape shape;                ///< logical extents, row-major
  std::vector<float> value;   ///< numel(shape) elements
  std::vector<float> grad;    ///< same length as value once touched by backward
  bool requires_grad = false; ///< participates in gradient propagation
  bool pooled = false;        ///< value/grad buffers return to BufferPool on death
  NodeList parents;           ///< inputs of the producing op
  /// Accumulates this node's grad into its parents' grads. Empty for leaves.
  BackwardFn backward_fn;

  Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  ~Node();  ///< releases pooled value/grad buffers back to the thread-local pool

  /// Allocate (zero-filled) grad storage if absent.
  void ensure_grad();
};

/// Thread-local autograd switch. While disabled, every op skips graph
/// construction entirely: no parents are captured, no backward closure is
/// built, and op outputs draw their buffers from the thread-local
/// BufferPool. Forward values are bitwise identical either way — grad mode
/// changes bookkeeping, never arithmetic.
class GradMode {
 public:
  /// True (the default) when ops should record the autodiff graph.
  static bool enabled();
  /// Sets the calling thread's grad mode (prefer NoGradGuard for scoping).
  static void set_enabled(bool on);
};

/// RAII scope that disables grad mode on the current thread — the inference
/// fast path. Nests: the previous mode is restored on destruction.
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::enabled()) { GradMode::set_enabled(false); }
  ~NoGradGuard() { GradMode::set_enabled(prev_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// Value-semantics handle to a graph node. Copying a Tensor aliases the node;
/// use detach()/clone semantics via the factory functions for deep copies.
class Tensor {
 public:
  /// An empty (undefined) tensor; defined() is false.
  Tensor() = default;

  /// Wrap an existing node (op-implementation constructor).
  explicit Tensor(std::shared_ptr<Node> n) : n_(std::move(n)) {}

  // -- factories ------------------------------------------------------------

  /// All-zero tensor of @p shape.
  static Tensor zeros(Shape shape, bool requires_grad = false);
  /// Tensor of @p shape filled with @p v.
  static Tensor full(Shape shape, float v, bool requires_grad = false);
  /// Tensor adopting @p data (size must equal numel(shape)).
  static Tensor from_vector(Shape shape, std::vector<float> data,
                            bool requires_grad = false);
  /// Rank-0 convenience: a scalar.
  static Tensor scalar(float v, bool requires_grad = false);
  /// I.i.d. normal entries with standard deviation @p stddev.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0F,
                      bool requires_grad = false);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi,
                        bool requires_grad = false);

  // -- inspection -----------------------------------------------------------

  bool defined() const { return n_ != nullptr; }
  const Shape& shape() const;
  size_t rank() const { return shape().size(); }
  size_t size() const { return numel(shape()); }
  /// Extent of dimension @p i.
  size_t dim(size_t i) const { return shape().at(i); }

  std::vector<float>& data();
  const std::vector<float>& data() const;
  /// Gradient buffer; allocated on demand (zeros).
  std::vector<float>& grad();

  bool requires_grad() const;
  /// Mark/unmark as a differentiable leaf.
  void set_requires_grad(bool rg);

  /// Value of a rank-0/size-1 tensor; throws otherwise.
  float item() const;
  /// Element access by multi-index (bounds-checked).
  float at(std::initializer_list<size_t> idx) const;

  // -- autograd -------------------------------------------------------------

  /// Backpropagate from this scalar tensor: seeds d(self)/d(self)=1 and runs
  /// the recorded closures in reverse topological order, accumulating into
  /// every reachable requires_grad node. Throws if *this is not scalar-sized.
  void backward();

  /// Zero this node's grad buffer (if allocated).
  void zero_grad();

  /// A new leaf tensor holding a copy of the values, cut from the graph.
  Tensor detach() const;

  /// Underlying node (op implementations / tests).
  const std::shared_ptr<Node>& node() const { return n_; }

 private:
  std::shared_ptr<Node> n_;
};

namespace detail {

/// True iff any parent participates in gradient propagation.
bool any_requires_grad(const NodeList& parents);

/// Grad-mode tail of make_op_result: records parents and the backward
/// closure exactly as the engine always has. The node itself and its grad
/// buffer recycle through the BufferPool.
Tensor finish_op_result_grad(Shape shape, std::vector<float> value,
                             NodeList parents, BackwardFn backward_fn);

/// Inference tail: a parentless, closure-free node whose allocation block and
/// value buffer are recycled through the thread-local BufferPool.
Tensor make_inference_result(Shape shape, std::vector<float> value);

}  // namespace detail

/// Build a node for an op result. Gradients flow iff grad mode is on and any
/// parent requires them; otherwise the graph is not recorded at all — the
/// backward callable is never converted to a BackwardFn and parents are
/// dropped so intermediates free eagerly.
template <typename F>
Tensor make_op_result(Shape shape, std::vector<float> value, NodeList parents,
                      F&& backward_fn) {
  if (!GradMode::enabled() || !detail::any_requires_grad(parents)) {
    return detail::make_inference_result(std::move(shape), std::move(value));
  }
  return detail::finish_op_result_grad(std::move(shape), std::move(value),
                                       std::move(parents),
                                       BackwardFn(std::forward<F>(backward_fn)));
}

}  // namespace metadse::tensor
