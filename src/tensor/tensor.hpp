// A small reverse-mode automatic-differentiation engine operating at tensor
// granularity. Tensors are cheap handles to shared graph nodes; every op in
// ops.hpp records a backward closure so Tensor::backward() can propagate
// gradients through arbitrary compositions (the MAML inner/outer loops, the
// masked-attention transformer, ...).
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/shape.hpp"

namespace metadse::tensor {

/// One vertex of the autodiff graph. Library users interact with Tensor;
/// Node is exposed only for op implementations and tests.
struct Node {
  Shape shape;                ///< logical extents, row-major
  std::vector<float> value;   ///< numel(shape) elements
  std::vector<float> grad;    ///< same length as value once touched by backward
  bool requires_grad = false; ///< participates in gradient propagation
  std::vector<std::shared_ptr<Node>> parents;  ///< inputs of the producing op
  /// Accumulates this node's grad into its parents' grads. Empty for leaves.
  std::function<void(Node&)> backward_fn;

  /// Allocate (zero-filled) grad storage if absent.
  void ensure_grad();
};

/// Value-semantics handle to a graph node. Copying a Tensor aliases the node;
/// use detach()/clone semantics via the factory functions for deep copies.
class Tensor {
 public:
  /// An empty (undefined) tensor; defined() is false.
  Tensor() = default;

  /// Wrap an existing node (op-implementation constructor).
  explicit Tensor(std::shared_ptr<Node> n) : n_(std::move(n)) {}

  // -- factories ------------------------------------------------------------

  /// All-zero tensor of @p shape.
  static Tensor zeros(Shape shape, bool requires_grad = false);
  /// Tensor of @p shape filled with @p v.
  static Tensor full(Shape shape, float v, bool requires_grad = false);
  /// Tensor adopting @p data (size must equal numel(shape)).
  static Tensor from_vector(Shape shape, std::vector<float> data,
                            bool requires_grad = false);
  /// Rank-0 convenience: a scalar.
  static Tensor scalar(float v, bool requires_grad = false);
  /// I.i.d. normal entries with standard deviation @p stddev.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0F,
                      bool requires_grad = false);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi,
                        bool requires_grad = false);

  // -- inspection -----------------------------------------------------------

  bool defined() const { return n_ != nullptr; }
  const Shape& shape() const;
  size_t rank() const { return shape().size(); }
  size_t size() const { return numel(shape()); }
  /// Extent of dimension @p i.
  size_t dim(size_t i) const { return shape().at(i); }

  std::vector<float>& data();
  const std::vector<float>& data() const;
  /// Gradient buffer; allocated on demand (zeros).
  std::vector<float>& grad();

  bool requires_grad() const;
  /// Mark/unmark as a differentiable leaf.
  void set_requires_grad(bool rg);

  /// Value of a rank-0/size-1 tensor; throws otherwise.
  float item() const;
  /// Element access by multi-index (bounds-checked).
  float at(std::initializer_list<size_t> idx) const;

  // -- autograd -------------------------------------------------------------

  /// Backpropagate from this scalar tensor: seeds d(self)/d(self)=1 and runs
  /// the recorded closures in reverse topological order, accumulating into
  /// every reachable requires_grad node. Throws if *this is not scalar-sized.
  void backward();

  /// Zero this node's grad buffer (if allocated).
  void zero_grad();

  /// A new leaf tensor holding a copy of the values, cut from the graph.
  Tensor detach() const;

  /// Underlying node (op implementations / tests).
  const std::shared_ptr<Node>& node() const { return n_; }

 private:
  std::shared_ptr<Node> n_;
};

/// Build a node for an op result. Gradients flow iff any parent requires them.
Tensor make_op_result(Shape shape, std::vector<float> value,
                      std::vector<std::shared_ptr<Node>> parents,
                      std::function<void(Node&)> backward_fn);

}  // namespace metadse::tensor
