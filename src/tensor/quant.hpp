// Reduced-precision serving kernels: bf16 storage conversion and per-tensor
// symmetric int8 quantization with i8×i8→i32 GEMM panels (fp32 dequant
// epilogue). Opt-in via the thread-local PrecisionMode policy, mirroring
// FusedKernelsGuard: fp32 stays the default and remains bitwise-governed by
// the kernels.hpp contract; bf16/int8 trade bitwise equality for throughput
// under an explicit rank-correlation error contract (DESIGN.md §15).
//
// Determinism: the int8 path accumulates in exact int32 arithmetic (order-
// independent) and the bf16 path keeps fp32 accumulation in a fixed
// ascending-k order per output element, so both produce identical bits at
// any thread count — the threads-1/2/8 equivalence discipline survives even
// though the values differ from fp32.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace metadse::tensor::quant {

/// Numeric tier of a planned forward. fp32 is the bitwise reference; bf16
/// stores weights in bfloat16 (fp32 accumulate); int8 runs quantized GEMMs
/// against a calibrated per-tensor activation scale.
enum class Precision : uint8_t { kFp32 = 0, kBf16 = 1, kInt8 = 2 };

const char* to_string(Precision p);
/// Parses "fp32" / "bf16" / "int8"; returns false on anything else.
bool parse_precision(const std::string& s, Precision* out);

/// Thread-local precision policy consulted by the predict planner; fp32 by
/// default. Training and equivalence paths never read it.
class PrecisionMode {
 public:
  static Precision mode();
  static void set_mode(Precision p);
};

/// RAII scope for PrecisionMode (serving sessions, benches, tests). Nests.
class PrecisionModeGuard {
 public:
  explicit PrecisionModeGuard(Precision p) : prev_(PrecisionMode::mode()) {
    PrecisionMode::set_mode(p);
  }
  ~PrecisionModeGuard() { PrecisionMode::set_mode(prev_); }
  PrecisionModeGuard(const PrecisionModeGuard&) = delete;
  PrecisionModeGuard& operator=(const PrecisionModeGuard&) = delete;

 private:
  Precision prev_;
};

// -- bf16 storage conversion -------------------------------------------------

/// fp32 -> bf16 with round-to-nearest-even; NaNs are quieted so a payload
/// truncated to zero cannot turn a NaN into Inf.
inline uint16_t bf16_from_f32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  if ((bits & 0x7F800000U) == 0x7F800000U && (bits & 0x007FFFFFU) != 0U) {
    return static_cast<uint16_t>((bits >> 16) | 0x0040U);
  }
  const uint32_t rounding = 0x7FFFU + ((bits >> 16) & 1U);
  return static_cast<uint16_t>((bits + rounding) >> 16);
}

inline float f32_from_bf16(uint16_t v) {
  const uint32_t bits = static_cast<uint32_t>(v) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

void bf16_encode(const float* src, size_t n, uint16_t* dst);
void bf16_decode(const uint16_t* src, size_t n, float* dst);

/// bf16-stored weight matrix, row-major [K, N].
struct Bf16Weight {
  size_t K = 0;
  size_t N = 0;
  std::vector<uint16_t> w;

  size_t bytes() const { return w.size() * sizeof(uint16_t); }
};

void bf16_pack_weight(const float* w, size_t K, size_t N, Bf16Weight* out);

// -- int8 quantization -------------------------------------------------------

float absmax(const float* x, size_t n);

/// Per-tensor symmetric scale mapping |x| <= amax onto [-127, 127].
inline float scale_for(float amax) { return amax > 0.0F ? amax / 127.0F : 1.0F; }

/// Per-tensor symmetric int8 weight, packed for 4-way dot products:
/// packed[(k/4)*N*4 + n*4 + (k%4)] holds w_q[k][n], with k padded to a
/// multiple of 4 by zeros. col_comp[n] = 128 * sum_k w_q[k][n] removes the
/// +128 offset the u8 activation encoding introduces (see gemm_u8s8).
struct QuantizedWeight {
  size_t K = 0;
  size_t N = 0;
  size_t K4 = 0;  ///< ceil(K/4): packed k-groups
  float scale = 0.0F;
  std::vector<int8_t> packed;
  std::vector<int32_t> col_comp;

  size_t bytes() const {
    return packed.size() + col_comp.size() * sizeof(int32_t);
  }
};

/// Quantizes a row-major [K, N] fp32 weight (absmax calibration over the
/// whole tensor) into the packed layout above.
void quantize_weight_kn(const float* w, size_t K, size_t N,
                        QuantizedWeight* out);

/// Quantizes fp32 activation rows [M, K] into offset-u8 rows [M, K4*4]:
/// q = clamp(round(x / scale), -127, 127) + 128, padding bytes 128 (== 0
/// after offset removal). @p ldq must be K4*4 of the matching weight.
void quantize_act_u8(const float* a, size_t M, size_t K, float scale,
                     uint8_t* out, size_t ldq);

/// Rows [m0, m1) of O[M, N] = dequant(A_q × W_q) with the plan executor's
/// fp32 epilogue rounding steps (epi 0: none, 1: +bias, 2: +bias then
/// +residual, 3: gelu(+bias)). @p dq = act_scale * w.scale. Accumulation is
/// exact int32, so the result is independent of row partitioning.
void gemm_u8s8(const uint8_t* aq, size_t ldq, const QuantizedWeight& w,
               float dq, const float* bias, const float* res, size_t ldr,
               int epi, float* o, size_t m0, size_t m1);

/// Rows [m0, m1) of O[M, N] = A[M, K] × bf16(W)[K, N], fp32 FMA accumulate
/// in ascending-k order, same epilogue contract as gemm_u8s8.
void gemm_bf16(const float* a, const Bf16Weight& w, const float* bias,
               const float* res, size_t ldr, int epi, float* o, size_t m0,
               size_t m1);

// -- fast fp32 row kernels (reduced-precision tiers only) --------------------
//
// The ops below compute in fp32 but vectorize with reassociated reductions
// and a vector exp, so their final-ulp rounding differs from the bitwise
// eager kernels. They run ONLY when a quantized tier is active — the tier's
// rank-correlation error contract covers them — never on the fp32 path.
// Each row is processed in a fixed lane order by exactly one caller, so
// results are deterministic and thread-count-invariant.

/// In-place gelu(row + bias) over one output row (the epi-3 epilogue).
void gelu_bias_row_fast(float* row, const float* bias, size_t n);

/// Affine layer norm over @p rows contiguous rows of width @p n:
/// o = (x - mean)/sqrt(var + eps) * gamma + beta.
void layer_norm_affine_rows_fast(const float* x, const float* gamma,
                                 const float* beta, float* o, size_t rows,
                                 size_t n, float eps);

/// Attention groups [g0, g1) over [B, S, H*Dh] projections (group g =
/// (batch, head) pair, same layout as the planner's fused attention op):
/// scores = q·kᵀ/scale, softmax, optional mask renorm (eps-regularized),
/// then ctx = p·v written back strided into the merged [S, H*Dh] output.
void fattn_rows_fast(size_t S, size_t Dh, size_t D, size_t H, float scale,
                     float eps, const float* q, const float* k,
                     const float* v, const float* mask, float* o, size_t g0,
                     size_t g1);

}  // namespace metadse::tensor::quant
