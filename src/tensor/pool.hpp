// Thread-local buffer reuse for the inference fast path. In no-grad mode
// (see GradMode in tensor.hpp) every op result's value buffer is drawn from
// and returned to this pool, so a steady-state prediction loop performs no
// heap allocation per forward: intermediate nodes die as soon as their
// handles go out of scope (no parents are captured without grad), their
// buffers cycle straight back, and the next op reuses them.
//
// Everything here is thread-local: pool workers and the main thread each own
// an independent free list, so there is no synchronization and no data race.
// Buffers may migrate between threads (allocated on one, released on the one
// that destroys the node) — that only moves capacity around, never sharing.
#pragma once

#include <cstddef>
#include <vector>

namespace metadse::tensor {

/// Thread-local free lists for op-output vectors and graph-node blocks.
/// All members are static; state lives in per-thread storage.
class BufferPool {
 public:
  /// A float buffer of exactly @p n elements with unspecified contents —
  /// reused from the free list when a large-enough buffer is available.
  static std::vector<float> acquire(size_t n);
  /// Like acquire() but zero-filled.
  static std::vector<float> acquire_zero(size_t n);
  /// Returns a buffer to the free list (drops it when the list is full).
  static void release(std::vector<float>&& v);

  /// Raw block reuse for pooled graph-node allocations (allocate_shared).
  static void* alloc_block(size_t bytes);
  static void free_block(void* p, size_t bytes);

  /// Frees every cached buffer and block on the calling thread.
  static void clear();

  /// Allocation accounting (per thread; used by tests to prove the hot loop
  /// is allocation-free at steady state).
  struct Stats {
    size_t vec_reused = 0;     ///< acquire() served from the free list
    size_t vec_allocated = 0;  ///< acquire() had to heap-allocate
    size_t block_reused = 0;
    size_t block_allocated = 0;
  };
  static Stats stats();
  static void reset_stats();
};

}  // namespace metadse::tensor
