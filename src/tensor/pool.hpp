// Thread-local buffer reuse for the engine's two fast paths.
//
// Inference (PR 3): in no-grad mode every op result's value buffer is drawn
// from and returned to this pool, so a steady-state prediction loop performs
// no heap allocation per forward.
//
// Training (tape arena): in grad mode the pool additionally backs the
// autograd tape — graph-node blocks (allocate_shared via PoolAlloc), op
// output buffers, saved activations stashed for backward (PooledVec),
// gradient buffers of non-leaf nodes, index scratch such as GEMM batch
// offsets (PooledIdx), and heap-spilled backward closures. Nothing is freed
// when a graph dies: every buffer cycles back to the free lists, so the next
// inner-loop step of a MAML adaptation re-acquires the identical storage —
// the arena is reset, not released, between steps.
//
// Lifetime: everything here is thread-local. Pool workers and the main
// thread each own an independent free list, so there is no synchronization
// and no data race. Buffers may migrate between threads (allocated on one,
// released on the thread that destroys the node) — that only moves capacity
// around, never sharing. Each thread's free lists live until thread exit;
// clear() drops the calling thread's cached storage early. Objects that
// release into the pool (pooled Nodes, PooledVec/PooledIdx) must therefore
// be destroyed before their thread exits — true for everything the library
// builds, since graphs are function-local.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace metadse::tensor {

/// Thread-local free lists for op-output vectors, index scratch, and
/// raw blocks (graph nodes, spilled closures). All members are static;
/// state lives in per-thread storage.
class BufferPool {
 public:
  /// A float buffer of exactly @p n elements with unspecified contents —
  /// reused from the free list when a large-enough buffer is available.
  static std::vector<float> acquire(size_t n);
  /// Like acquire() but zero-filled.
  static std::vector<float> acquire_zero(size_t n);
  /// Returns a buffer to the free list (drops it when the list is full).
  static void release(std::vector<float>&& v);

  /// Index-vector twin of acquire()/release(): GEMM batch offsets, permute
  /// stride tables, and iterator scratch cycle through their own free list.
  static std::vector<size_t> acquire_idx(size_t n);
  static void release_idx(std::vector<size_t>&& v);

  /// Raw block reuse for pooled graph-node allocations (allocate_shared)
  /// and heap-spilled backward closures.
  static void* alloc_block(size_t bytes);
  static void free_block(void* p, size_t bytes);

  /// Frees every cached buffer and block on the calling thread.
  static void clear();

  /// Allocation accounting (per thread). Tests call reset_stats() after a
  /// warm-up phase and then assert `*_allocated == 0` over the steady-state
  /// window, proving the hot loop never touches the heap through the pool.
  /// Counters are cumulative per thread between resets.
  struct Stats {
    size_t vec_reused = 0;     ///< acquire() served from the free list
    size_t vec_allocated = 0;  ///< acquire() had to heap-allocate
    size_t idx_reused = 0;
    size_t idx_allocated = 0;
    size_t block_reused = 0;
    size_t block_allocated = 0;
  };
  static Stats stats();
  /// Zeroes the calling thread's counters (per-phase measurement); cached
  /// buffers are untouched, so a warm pool stays warm.
  static void reset_stats();
};

/// STL allocator over BufferPool blocks; backs allocate_shared<Node> and the
/// parents vectors of graph nodes so tape bookkeeping recycles with the tape.
template <typename T>
struct PoolAlloc {
  using value_type = T;
  PoolAlloc() = default;
  template <typename U>
  PoolAlloc(const PoolAlloc<U>& /*other*/) {}  // NOLINT(google-explicit-constructor)
  T* allocate(size_t n) {
    return static_cast<T*>(BufferPool::alloc_block(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { BufferPool::free_block(p, n * sizeof(T)); }
  template <typename U>
  bool operator==(const PoolAlloc<U>& /*other*/) const {
    return true;
  }
};

/// Move-only holder of a pooled float buffer: backward closures stash saved
/// activations in one of these, so the buffer returns to the pool when the
/// closure dies with its graph — whether or not backward ever ran.
class PooledVec {
 public:
  PooledVec() = default;
  explicit PooledVec(std::vector<float>&& v) : v_(std::move(v)) {}
  PooledVec(PooledVec&& o) noexcept : v_(std::move(o.v_)) {}
  PooledVec& operator=(PooledVec&& o) noexcept {
    if (this != &o) {
      BufferPool::release(std::move(v_));
      v_ = std::move(o.v_);
    }
    return *this;
  }
  PooledVec(const PooledVec&) = delete;
  PooledVec& operator=(const PooledVec&) = delete;
  ~PooledVec() { BufferPool::release(std::move(v_)); }

  const std::vector<float>& get() const { return v_; }
  const float* data() const { return v_.data(); }
  float operator[](size_t i) const { return v_[i]; }

 private:
  std::vector<float> v_;
};

/// Index-vector twin of PooledVec (GEMM batch offsets, stride tables).
class PooledIdx {
 public:
  PooledIdx() = default;
  explicit PooledIdx(std::vector<size_t>&& v) : v_(std::move(v)) {}
  PooledIdx(PooledIdx&& o) noexcept : v_(std::move(o.v_)) {}
  PooledIdx& operator=(PooledIdx&& o) noexcept {
    if (this != &o) {
      BufferPool::release_idx(std::move(v_));
      v_ = std::move(o.v_);
    }
    return *this;
  }
  PooledIdx(const PooledIdx&) = delete;
  PooledIdx& operator=(const PooledIdx&) = delete;
  ~PooledIdx() { BufferPool::release_idx(std::move(v_)); }

  const std::vector<size_t>& get() const { return v_; }
  const size_t* data() const { return v_.data(); }
  size_t operator[](size_t i) const { return v_[i]; }

 private:
  std::vector<size_t> v_;
};

}  // namespace metadse::tensor
